// Command benchgate records and enforces benchmark baselines. It
// reads `go test -bench -benchmem` output on stdin, reduces each
// benchmark to its best sample across -count repeats (min ns/op, min
// B/op, min allocs/op — the least-noise estimate of the code's true
// cost), and either writes that reduction as a JSON baseline or
// compares it against a committed one.
//
//	go test -run '^$' -bench Fig11 -benchmem -count 5 . | benchgate -record BENCH_fig11.json
//	go test -run '^$' -bench Fig11 -benchmem -count 5 . | benchgate -compare BENCH_fig11.json
//
// Compare fails (exit 1) when a baselined benchmark is missing, its
// ns/op regresses by more than -tolerance (default 10%), or its
// allocs/op increases by more than -allocslack (default 0) —
// and -compare additionally reports the measured parallel speedup of
// any benchmark family with domains= variants (ns/op of domains=1
// over the widest split); -minspeedup turns that report into a gate
// on machines with at least four cores —
// allocation counts in a deterministic simulation are a property of
// the code, not the machine, so any increase is a real regression.
// The slack exists for benchmarks whose alloc count carries a few
// counts of irreducible runtime noise (Go randomizes each map's hash
// seed, so overflow-bucket allocation wobbles run to run); set it far
// below the smallest regression worth catching. ns/op comparisons
// across different machines are inherently loose; the tolerance is
// tuned for same-class hardware (a CI runner against a baseline
// recorded on one).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Bench is one benchmark's best-of-N reduction.
type Bench struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"b_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	Samples     int     `json:"samples"`
}

// Baseline is the committed artifact.
type Baseline struct {
	Recorded   string           `json:"recorded"`
	GoVersion  string           `json:"go_version"`
	Benchmarks map[string]Bench `json:"benchmarks"`
}

func main() {
	record := flag.String("record", "", "write the baseline JSON to this file")
	compare := flag.String("compare", "", "compare stdin against this baseline JSON")
	tolerance := flag.Float64("tolerance", 0.10, "allowed relative ns/op regression")
	allocSlack := flag.Float64("allocslack", 0, "allowed absolute allocs/op increase")
	minSpeedup := flag.Float64("minspeedup", 0, "minimum required domains=1/domains=N ns/op ratio (0 = report only; enforced only at GOMAXPROCS >= 4)")
	flag.Parse()
	if (*record == "") == (*compare == "") {
		fmt.Fprintln(os.Stderr, "benchgate: exactly one of -record or -compare is required")
		os.Exit(2)
	}

	got, procs, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	if procs == 0 {
		procs = 1 // go test omits the -N name suffix at GOMAXPROCS=1
	}
	if len(got) == 0 {
		fmt.Fprintln(os.Stderr, "benchgate: no benchmark lines on stdin")
		os.Exit(2)
	}

	if *record != "" {
		b := Baseline{
			Recorded:   time.Now().UTC().Format(time.RFC3339),
			GoVersion:  runtime.Version(),
			Benchmarks: got,
		}
		out, err := json.MarshalIndent(b, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(2)
		}
		if err := os.WriteFile(*record, append(out, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(2)
		}
		fmt.Printf("benchgate: recorded %d benchmark(s) to %s\n", len(got), *record)
		return
	}

	raw, err := os.ReadFile(*compare)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	var base Baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %s: %v\n", *compare, err)
		os.Exit(2)
	}
	failures := diff(base.Benchmarks, got, *tolerance, *allocSlack)
	failures = append(failures, checkSpeedups(got, procs, *minSpeedup)...)
	for _, f := range failures {
		fmt.Println("FAIL:", f)
	}
	report(base.Benchmarks, got)
	if len(failures) > 0 {
		os.Exit(1)
	}
	fmt.Printf("benchgate: %d benchmark(s) within tolerance of %s\n", len(base.Benchmarks), *compare)
}

// checkSpeedups prints the measured parallel speedup for every
// benchmark family with domains= variants (ns/op of domains=1 over
// the family's widest split) and, when min > 0, returns a failure for
// each family below it. A barrier-synchronized cluster cannot express
// a 2× speedup without cores to run the domains on, so enforcement
// needs GOMAXPROCS >= 4; narrower machines get a notice instead of a
// vacuous failure — the recorded CI gate machine is the arbiter.
func checkSpeedups(got map[string]Bench, procs int, min float64) []string {
	var fails []string
	for _, s := range speedups(got) {
		fmt.Printf("  %s: parallel speedup %.2fx (domains=1 vs domains=%d, GOMAXPROCS=%d)\n",
			s.family, s.ratio, s.n, procs)
		if min <= 0 {
			continue
		}
		if procs < 4 {
			fmt.Printf("  %s: -minspeedup %.1f not enforced at GOMAXPROCS=%d (< 4)\n", s.family, min, procs)
			continue
		}
		if s.ratio < min {
			fails = append(fails, fmt.Sprintf("%s: parallel speedup %.2fx below required %.1fx (domains=1 vs domains=%d)",
				s.family, s.ratio, min, s.n))
		}
	}
	return fails
}

// speedup is one family's domains=1 vs widest-split ns/op ratio.
type speedup struct {
	family string
	n      int
	ratio  float64
}

// speedups groups benchmarks by the name prefix before "/domains="
// and computes each family's ratio at its largest domain count.
func speedups(got map[string]Bench) []speedup {
	type fam struct {
		mono float64 // ns/op at domains=1
		n    int
		ns   float64 // ns/op at domains=n
	}
	fams := make(map[string]*fam)
	for name, b := range got {
		i := strings.LastIndex(name, "/domains=")
		if i < 0 {
			continue
		}
		n, err := strconv.Atoi(name[i+len("/domains="):])
		if err != nil {
			continue
		}
		f := fams[name[:i]]
		if f == nil {
			f = &fam{}
			fams[name[:i]] = f
		}
		if n == 1 {
			f.mono = b.NsPerOp
		} else if n > f.n {
			f.n, f.ns = n, b.NsPerOp
		}
	}
	var out []speedup
	for name, f := range fams {
		if f.mono > 0 && f.n > 1 && f.ns > 0 {
			out = append(out, speedup{family: name, n: f.n, ratio: f.mono / f.ns})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].family < out[j].family })
	return out
}

// benchLine matches `go test -bench` result rows:
//
//	BenchmarkName/sub-8   	 100	  123456 ns/op	  12 B/op	 3 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+(.*)$`)

// stripProcs removes the trailing -GOMAXPROCS suffix so baselines
// recorded on an N-core machine match runs on an M-core one.
func stripProcs(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// parse reduces bench output to best-of-N per benchmark. The second
// return is the GOMAXPROCS the run executed with, recovered from the
// benchmark names' -N suffix (0 when no name carries one).
func parse(r io.Reader) (map[string]Bench, int, error) {
	out := make(map[string]Bench)
	procs := 0
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		name := stripProcs(m[1])
		if name != m[1] {
			if p, err := strconv.Atoi(m[1][len(name)+1:]); err == nil && p > procs {
				procs = p
			}
		}
		var ns, bytes, allocs float64
		ns = -1
		fields := strings.Fields(m[2])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				ns = v
			case "B/op":
				bytes = v
			case "allocs/op":
				allocs = v
			}
		}
		if ns < 0 {
			continue
		}
		b, seen := out[name]
		if !seen || ns < b.NsPerOp {
			b.NsPerOp = ns
		}
		if !seen || bytes < b.BytesPerOp {
			b.BytesPerOp = bytes
		}
		if !seen || allocs < b.AllocsPerOp {
			b.AllocsPerOp = allocs
		}
		b.Samples++
		out[name] = b
	}
	return out, procs, sc.Err()
}

// diff returns the failure list comparing got against base.
func diff(base, got map[string]Bench, tolerance, allocSlack float64) []string {
	var fails []string
	for _, name := range keys(base) {
		b := base[name]
		g, ok := got[name]
		if !ok {
			fails = append(fails, fmt.Sprintf("%s: missing from this run", name))
			continue
		}
		if b.NsPerOp > 0 && g.NsPerOp > b.NsPerOp*(1+tolerance) {
			fails = append(fails, fmt.Sprintf("%s: ns/op %.0f exceeds baseline %.0f by %.1f%% (tolerance %.0f%%)",
				name, g.NsPerOp, b.NsPerOp, 100*(g.NsPerOp/b.NsPerOp-1), 100*tolerance))
		}
		if g.AllocsPerOp > b.AllocsPerOp+allocSlack {
			fails = append(fails, fmt.Sprintf("%s: allocs/op %.0f exceeds baseline %.0f (slack %.0f)",
				name, g.AllocsPerOp, b.AllocsPerOp, allocSlack))
		}
	}
	return fails
}

// report prints the side-by-side table.
func report(base, got map[string]Bench) {
	for _, name := range keys(base) {
		b := base[name]
		g, ok := got[name]
		if !ok {
			continue
		}
		delta := 0.0
		if b.NsPerOp > 0 {
			delta = 100 * (g.NsPerOp/b.NsPerOp - 1)
		}
		fmt.Printf("  %-50s ns/op %12.0f -> %12.0f (%+.1f%%)  allocs/op %8.0f -> %8.0f\n",
			name, b.NsPerOp, g.NsPerOp, delta, b.AllocsPerOp, g.AllocsPerOp)
	}
}

func keys(m map[string]Bench) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
