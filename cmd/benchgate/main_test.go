package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: suss
BenchmarkFig11FCTvsFlowSize-8   	       1	1200000000 ns/op	        22.50 small-flow-improvement-%	 5000000 B/op	   60000 allocs/op
BenchmarkFig11FCTvsFlowSize-8   	       1	1100000000 ns/op	        22.50 small-flow-improvement-%	 5100000 B/op	   59000 allocs/op
BenchmarkSchedulerChurn/levels=1-8         	 2000000	       550.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkSchedulerChurn/levels=1-8         	 2000000	       540.0 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	suss	2.5s
`

func TestParseBestOfN(t *testing.T) {
	got, procs, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if procs != 8 {
		t.Errorf("procs = %d, want 8 (from the -8 name suffix)", procs)
	}
	fig := got["BenchmarkFig11FCTvsFlowSize"]
	if fig.Samples != 2 {
		t.Fatalf("samples = %d, want 2", fig.Samples)
	}
	if fig.NsPerOp != 1.1e9 {
		t.Errorf("ns/op = %v, want min 1.1e9", fig.NsPerOp)
	}
	if fig.AllocsPerOp != 59000 {
		t.Errorf("allocs/op = %v, want min 59000", fig.AllocsPerOp)
	}
	churn := got["BenchmarkSchedulerChurn/levels=1"]
	if churn.NsPerOp != 540 || churn.AllocsPerOp != 0 {
		t.Errorf("churn = %+v", churn)
	}
}

func TestStripProcs(t *testing.T) {
	cases := map[string]string{
		"BenchmarkX-8":           "BenchmarkX",
		"BenchmarkX-16":          "BenchmarkX",
		"BenchmarkX/workers=2-8": "BenchmarkX/workers=2",
		"BenchmarkNoSuffix":      "BenchmarkNoSuffix",
	}
	for in, want := range cases {
		if got := stripProcs(in); got != want {
			t.Errorf("stripProcs(%q) = %q, want %q", in, got, want)
		}
	}
	if got := stripProcs("BenchmarkX/sub-case"); got != "BenchmarkX/sub-case" {
		t.Errorf("non-numeric suffix must be kept, got %q", got)
	}
}

func TestDiffPassesWithinTolerance(t *testing.T) {
	base := map[string]Bench{"B": {NsPerOp: 1000, AllocsPerOp: 10}}
	got := map[string]Bench{"B": {NsPerOp: 1080, AllocsPerOp: 10}}
	if f := diff(base, got, 0.10, 0); len(f) != 0 {
		t.Fatalf("unexpected failures: %v", f)
	}
}

func TestDiffFailsOnNsRegression(t *testing.T) {
	base := map[string]Bench{"B": {NsPerOp: 1000, AllocsPerOp: 10}}
	got := map[string]Bench{"B": {NsPerOp: 1200, AllocsPerOp: 10}}
	f := diff(base, got, 0.10, 0)
	if len(f) != 1 || !strings.Contains(f[0], "ns/op") {
		t.Fatalf("want one ns/op failure, got %v", f)
	}
}

func TestDiffFailsOnAnyAllocRegression(t *testing.T) {
	base := map[string]Bench{"B": {NsPerOp: 1000, AllocsPerOp: 10}}
	got := map[string]Bench{"B": {NsPerOp: 900, AllocsPerOp: 11}}
	f := diff(base, got, 0.10, 0)
	if len(f) != 1 || !strings.Contains(f[0], "allocs/op") {
		t.Fatalf("want one allocs/op failure, got %v", f)
	}
}

func TestDiffAllocSlackAbsorbsNoise(t *testing.T) {
	base := map[string]Bench{"B": {NsPerOp: 1000, AllocsPerOp: 33754}}
	got := map[string]Bench{"B": {NsPerOp: 900, AllocsPerOp: 33760}}
	if f := diff(base, got, 0.10, 64); len(f) != 0 {
		t.Fatalf("slack 64 must absorb +6 allocs, got %v", f)
	}
	got["B"] = Bench{NsPerOp: 900, AllocsPerOp: 33900}
	if f := diff(base, got, 0.10, 64); len(f) != 1 || !strings.Contains(f[0], "allocs/op") {
		t.Fatalf("+146 allocs must still fail with slack 64, got %v", f)
	}
}

func TestSpeedupsPicksWidestSplit(t *testing.T) {
	got := map[string]Bench{
		"BenchmarkTree/domains=1":  {NsPerOp: 4000},
		"BenchmarkTree/domains=4":  {NsPerOp: 2000},
		"BenchmarkTree/domains=10": {NsPerOp: 1000},
		"BenchmarkOther":           {NsPerOp: 500},
	}
	s := speedups(got)
	if len(s) != 1 || s[0].family != "BenchmarkTree" || s[0].n != 10 || s[0].ratio != 4.0 {
		t.Fatalf("speedups = %+v, want BenchmarkTree 4.0x at domains=10", s)
	}
}

func TestCheckSpeedupsEnforcesOnlyWithCores(t *testing.T) {
	got := map[string]Bench{
		"BenchmarkTree/domains=1":  {NsPerOp: 1000},
		"BenchmarkTree/domains=10": {NsPerOp: 900},
	}
	if f := checkSpeedups(got, 1, 2.0); len(f) != 0 {
		t.Fatalf("GOMAXPROCS=1 must not enforce -minspeedup, got %v", f)
	}
	f := checkSpeedups(got, 8, 2.0)
	if len(f) != 1 || !strings.Contains(f[0], "speedup") {
		t.Fatalf("GOMAXPROCS=8 below 2.0x must fail, got %v", f)
	}
}

func TestDiffFailsOnMissingBenchmark(t *testing.T) {
	base := map[string]Bench{"B": {NsPerOp: 1000}}
	f := diff(base, map[string]Bench{}, 0.10, 0)
	if len(f) != 1 || !strings.Contains(f[0], "missing") {
		t.Fatalf("want one missing failure, got %v", f)
	}
}
