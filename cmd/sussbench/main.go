// Command sussbench regenerates the paper's evaluation: every figure
// and table of §6 plus the appendix experiments, printed as rows
// shaped like the paper's plots.
//
// Usage:
//
//	sussbench                 # everything at default fidelity
//	sussbench -only fig11     # one experiment
//	sussbench -iters 10       # more repetitions per data point
//	sussbench -quick          # reduced sweep for a fast smoke pass
//	sussbench -parallel 8     # worker pool size (0 = GOMAXPROCS)
//	sussbench -only fig11 -counters   # cross-layer loss accounting
//	sussbench -only fleet -domains 6  # parallel event domains per simulation
//	sussbench -cpuprofile cpu.pprof -memprofile mem.pprof
//	sussbench -blockprofile block.pprof -mutexprofile mutex.pprof
//
// Sweep experiments fan their independent simulations out over a
// bounded worker pool (internal/runner). Results are collected by job
// index and every simulation is instance-seeded, so the rows printed
// are identical at any -parallel value; only the wall clock changes.
// A progress line is written to stderr, each experiment reports its
// own wall-clock time, and the process exits nonzero if any
// simulation failed to complete.
//
// Experiment ids: fig01 fig02 fig09 fig11 fig13 fig14 fig15 fig16
// table1 matrix (= fig17+fig18) ablations webmix fleet futurework
// appendixB.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"suss/internal/experiments"
	"suss/internal/scenarios"
)

func main() {
	// run does the actual work; main only translates its code into
	// os.Exit after the profile defers inside run have flushed (an
	// os.Exit inline would truncate the pprof files).
	os.Exit(run())
}

func run() int {
	only := flag.String("only", "", "run a single experiment id (empty = all)")
	iters := flag.Int("iters", 5, "iterations per stochastic data point")
	seed := flag.Int64("seed", 1, "base RNG seed")
	quick := flag.Bool("quick", false, "smaller sweeps for a fast pass")
	outDir := flag.String("out", "", "also write CSV data files to this directory (fig11, matrix)")
	parallel := flag.Int("parallel", 0, "worker pool size for sweep experiments (0 = GOMAXPROCS)")
	noProgress := flag.Bool("no-progress", false, "suppress the stderr progress line")
	counters := flag.Bool("counters", false, "attach flight recorders and print cross-layer loss accounting (fig11)")
	domains := flag.Int("domains", 0, "run each simulation as this many parallel event domains (0/1 = single-threaded; output is identical at any count)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write an allocation profile to this file at exit")
	blockProfile := flag.String("blockprofile", "", "write a goroutine blocking profile to this file at exit (cluster barrier waits show up here)")
	mutexProfile := flag.String("mutexprofile", "", "write a mutex contention profile to this file at exit")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cannot create -cpuprofile: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cannot start CPU profile: %v\n", err)
			f.Close()
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
			fmt.Fprintf(os.Stderr, "wrote CPU profile to %s\n", *cpuProfile)
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "cannot create -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle live heap so the snapshot is meaningful
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintf(os.Stderr, "cannot write -memprofile: %v\n", err)
				return
			}
			fmt.Fprintf(os.Stderr, "wrote allocation profile to %s\n", *memProfile)
		}()
	}
	// Block and mutex profiling carry a runtime cost, so the rates are
	// raised from their zero defaults only when a profile was requested.
	if *blockProfile != "" {
		runtime.SetBlockProfileRate(1)
		defer writeProfile("block", *blockProfile)
	}
	if *mutexProfile != "" {
		runtime.SetMutexProfileFraction(1)
		defer writeProfile("mutex", *mutexProfile)
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "cannot create -out dir: %v\n", err)
			return 1
		}
	}
	writeCSV := func(name string, fn func(io.Writer) error) {
		if *outDir == "" {
			return
		}
		path := filepath.Join(*outDir, name)
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "csv %s: %v\n", name, err)
			return
		}
		defer f.Close()
		if err := fn(f); err != nil {
			fmt.Fprintf(os.Stderr, "csv %s: %v\n", name, err)
			return
		}
		fmt.Printf("wrote %s\n", path)
	}

	run := func(id string) bool {
		return *only == "" || strings.EqualFold(*only, id)
	}
	start := time.Now()
	ran := 0
	incomplete := 0

	// opts builds the sweep options for one experiment: the shared
	// worker bound plus a stderr progress line tagged with the id.
	opts := func(id string) []experiments.Option {
		o := []experiments.Option{experiments.WithWorkers(*parallel), experiments.WithDomains(*domains)}
		if !*noProgress {
			o = append(o, experiments.WithProgress(func(done, total int) {
				fmt.Fprintf(os.Stderr, "\r[%s] %d/%d jobs", id, done, total)
				if done == total {
					fmt.Fprintln(os.Stderr)
				}
			}))
		}
		return o
	}
	// timed runs one experiment's body and prints its own wall clock,
	// so -parallel speedups are visible per experiment, not just in
	// the final total.
	timed := func(id string, fn func()) {
		ran++
		t0 := time.Now()
		fn()
		fmt.Printf("[%s] finished in %v\n\n", id, time.Since(t0).Round(time.Millisecond))
	}

	sizes := experiments.DefaultSizes
	matrixSizes := []int64{1 << 20, 2 << 20, 4 << 20, 8 << 20, 12 << 20}
	fig14Sizes := []int64{2 << 20, 4 << 20, 8 << 20, 16 << 20, 24 << 20, 40 << 20}
	large := int64(100 << 20)
	joinAt, horizon := 30*time.Second, 75*time.Second
	if *quick {
		sizes = []int64{512 << 10, 2 << 20, 8 << 20}
		matrixSizes = []int64{2 << 20, 8 << 20}
		fig14Sizes = []int64{2 << 20, 8 << 20, 24 << 20}
		large = 40 << 20
		joinAt, horizon = 15*time.Second, 40*time.Second
	}

	if run("fig01") {
		timed("fig01", func() {
			emit(experiments.RunFig01(60<<20, *seed).Render())
		})
	}
	if run("fig02") {
		timed("fig02", func() {
			// The BBR panel uses the v2-lite model: our BBRv1 model keeps
			// the buffer pinned and starves late joiners (the known
			// BBRv1-vs-droptail pathology); v2's loss-bounded inflight
			// reproduces the paper's Fig. 2(b) convergence. See
			// EXPERIMENTS.md.
			for _, algo := range []experiments.Algo{experiments.Cubic, experiments.BBR2} {
				emit(experiments.RunFig02(algo, 100*time.Millisecond, 1, joinAt, horizon).Render())
			}
		})
	}
	if run("fig09") || run("fig10") {
		timed("fig09", func() {
			emit(experiments.RunFig09(25<<20, *seed).Render())
		})
	}
	if run("fig11") || run("fig12") {
		timed("fig11", func() {
			o := opts("fig11")
			if *counters {
				o = append(o, experiments.WithLossAccounting())
			}
			r := experiments.RunFig11(scenarios.GoogleTokyo, sizes, *iters, *seed, o...)
			incomplete += r.Incomplete
			emit(r.Render())
			writeCSV("fig11.csv", r.WriteCSV)
		})
	}
	if run("fig13") {
		timed("fig13", func() {
			emit(experiments.RunFig13(*seed).Render())
		})
	}
	if run("fig14") {
		timed("fig14", func() {
			r := experiments.RunFig14(fig14Sizes, *iters, *seed, opts("fig14")...)
			incomplete += r.Incomplete
			emit(r.Render())
		})
	}
	if run("fig15") {
		timed("fig15", func() {
			cfgs := experiments.Fig15Configs()
			if *quick {
				cfgs = cfgs[:4]
			}
			for _, cfg := range cfgs {
				emit(experiments.RunFig15(cfg, joinAt, horizon).Render())
			}
		})
	}
	if run("fig16") {
		timed("fig16", func() {
			emit(experiments.RunFig16(experiments.Cubic, experiments.Suss, 100*time.Millisecond, 1, large).Render())
		})
	}
	if run("table1") {
		timed("table1", func() {
			algos := []experiments.Algo{experiments.Cubic, experiments.BBR, experiments.BBR2}
			if *quick {
				algos = algos[:1]
			}
			for _, la := range algos {
				r := experiments.RunTable1(la, large, opts("table1")...)
				incomplete += len(r.Failed)
				emit(r.Render())
			}
		})
	}
	if run("matrix") || run("fig17") || run("fig18") {
		timed("matrix", func() {
			r := experiments.RunMatrix(matrixSizes, *iters, *seed, opts("matrix")...)
			incomplete += r.Incomplete()
			emit(r.Render())
			writeCSV("matrix.csv", r.WriteCSV)
		})
	}
	if run("ablations") {
		timed("ablations", func() {
			mech := experiments.RunAblationMechanisms(4<<20, *iters, *seed, opts("ablations")...)
			incomplete += mech.Incomplete
			emit(mech.Render())
			kmax := experiments.RunAblationKmax(8<<20, *iters, *seed, opts("ablations")...)
			incomplete += kmax.Incomplete
			emit(kmax.Render())
			exit := experiments.RunSlowStartExitComparison(2<<20, *iters, *seed, opts("ablations")...)
			incomplete += exit.Incomplete
			emit(exit.Render())
			aqm := experiments.RunAQMComparison(4<<20, *iters, *seed, opts("ablations")...)
			incomplete += aqm.Incomplete
			emit(aqm.Render())
		})
	}
	if run("webmix") {
		timed("webmix", func() {
			nflows := 120
			if *quick {
				nflows = 40
			}
			emit(experiments.RunWebMix(nflows, 3, *seed).Render())
		})
	}
	if run("fleet") {
		timed("fleet", func() {
			fc := experiments.DefaultFleetConfig(*seed)
			if *quick {
				fc.Flows = 2000
			}
			o := opts("fleet")
			if *counters {
				o = append(o, experiments.WithLossAccounting())
			}
			r := experiments.RunFleet(fc, o...)
			incomplete += len(r.Errs)
			emit(r.Render())
			writeCSV("fleet.csv", r.WriteCSV)
		})
	}
	if run("futurework") {
		timed("futurework", func() {
			r := experiments.RunFutureWorkBBRSuss([]int64{512 << 10, 2 << 20, 8 << 20}, *iters, *seed, opts("futurework")...)
			incomplete += r.Incomplete
			emit(r.Render())
		})
	}
	if run("appendixB") {
		timed("appendixB", func() {
			for _, dir := range []string{"drop", "rise"} {
				r := experiments.RunBtlBwVariation(dir, 8<<20, *seed, opts("appendixB")...)
				incomplete += len(r.Failed)
				emit(r.Render())
			}
		})
	}

	if ran == 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *only)
		return 2
	}
	workers := *parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	fmt.Printf("completed in %v (wall clock, %d workers)\n", time.Since(start).Round(time.Millisecond), workers)
	if incomplete > 0 {
		fmt.Fprintf(os.Stderr, "ERROR: %d simulation(s) did not complete\n", incomplete)
		return 1
	}
	return 0
}

func emit(s string) {
	fmt.Println(s)
}

// writeProfile dumps a named runtime profile ("block", "mutex") at
// exit, mirroring the -memprofile flow.
func writeProfile(name, path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cannot create -%sprofile: %v\n", name, err)
		return
	}
	defer f.Close()
	if err := pprof.Lookup(name).WriteTo(f, 0); err != nil {
		fmt.Fprintf(os.Stderr, "cannot write -%sprofile: %v\n", name, err)
		return
	}
	fmt.Fprintf(os.Stderr, "wrote %s profile to %s\n", name, path)
}
