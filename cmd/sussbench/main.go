// Command sussbench regenerates the paper's evaluation: every figure
// and table of §6 plus the appendix experiments, printed as rows
// shaped like the paper's plots.
//
// Usage:
//
//	sussbench                 # everything at default fidelity
//	sussbench -only fig11     # one experiment
//	sussbench -iters 10       # more repetitions per data point
//	sussbench -quick          # reduced sweep for a fast smoke pass
//
// Experiment ids: fig01 fig02 fig09 fig11 fig13 fig14 fig15 fig16
// table1 matrix (= fig17+fig18) ablations webmix futurework appendixB.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"suss/internal/experiments"
	"suss/internal/scenarios"
)

func main() {
	only := flag.String("only", "", "run a single experiment id (empty = all)")
	iters := flag.Int("iters", 5, "iterations per stochastic data point")
	seed := flag.Int64("seed", 1, "base RNG seed")
	quick := flag.Bool("quick", false, "smaller sweeps for a fast pass")
	outDir := flag.String("out", "", "also write CSV data files to this directory (fig11, matrix)")
	flag.Parse()

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "cannot create -out dir: %v\n", err)
			os.Exit(1)
		}
	}
	writeCSV := func(name string, fn func(io.Writer) error) {
		if *outDir == "" {
			return
		}
		path := filepath.Join(*outDir, name)
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "csv %s: %v\n", name, err)
			return
		}
		defer f.Close()
		if err := fn(f); err != nil {
			fmt.Fprintf(os.Stderr, "csv %s: %v\n", name, err)
			return
		}
		fmt.Printf("wrote %s\n", path)
	}

	run := func(id string) bool {
		return *only == "" || strings.EqualFold(*only, id)
	}
	start := time.Now()
	ran := 0

	sizes := experiments.DefaultSizes
	matrixSizes := []int64{1 << 20, 2 << 20, 4 << 20, 8 << 20, 12 << 20}
	fig14Sizes := []int64{2 << 20, 4 << 20, 8 << 20, 16 << 20, 24 << 20, 40 << 20}
	large := int64(100 << 20)
	joinAt, horizon := 30*time.Second, 75*time.Second
	if *quick {
		sizes = []int64{512 << 10, 2 << 20, 8 << 20}
		matrixSizes = []int64{2 << 20, 8 << 20}
		fig14Sizes = []int64{2 << 20, 8 << 20, 24 << 20}
		large = 40 << 20
		joinAt, horizon = 15*time.Second, 40*time.Second
	}

	if run("fig01") {
		ran++
		emit(experiments.RunFig01(60<<20, *seed).Render())
	}
	if run("fig02") {
		ran++
		// The BBR panel uses the v2-lite model: our BBRv1 model keeps
		// the buffer pinned and starves late joiners (the known
		// BBRv1-vs-droptail pathology); v2's loss-bounded inflight
		// reproduces the paper's Fig. 2(b) convergence. See
		// EXPERIMENTS.md.
		for _, algo := range []experiments.Algo{experiments.Cubic, experiments.BBR2} {
			emit(experiments.RunFig02(algo, 100*time.Millisecond, 1, joinAt, horizon).Render())
		}
	}
	if run("fig09") || run("fig10") {
		ran++
		emit(experiments.RunFig09(25<<20, *seed).Render())
	}
	if run("fig11") || run("fig12") {
		ran++
		r := experiments.RunFig11(scenarios.GoogleTokyo, sizes, *iters, *seed)
		emit(r.Render())
		writeCSV("fig11.csv", r.WriteCSV)
	}
	if run("fig13") {
		ran++
		emit(experiments.RunFig13(*seed).Render())
	}
	if run("fig14") {
		ran++
		emit(experiments.RunFig14(fig14Sizes, *iters, *seed).Render())
	}
	if run("fig15") {
		ran++
		cfgs := experiments.Fig15Configs()
		if *quick {
			cfgs = cfgs[:4]
		}
		for _, cfg := range cfgs {
			emit(experiments.RunFig15(cfg, joinAt, horizon).Render())
		}
	}
	if run("fig16") {
		ran++
		emit(experiments.RunFig16(experiments.Cubic, experiments.Suss, 100*time.Millisecond, 1, large).Render())
	}
	if run("table1") {
		ran++
		algos := []experiments.Algo{experiments.Cubic, experiments.BBR, experiments.BBR2}
		if *quick {
			algos = algos[:1]
		}
		for _, la := range algos {
			emit(experiments.RunTable1(la, large).Render())
		}
	}
	if run("matrix") || run("fig17") || run("fig18") {
		ran++
		r := experiments.RunMatrix(matrixSizes, *iters, *seed)
		emit(r.Render())
		writeCSV("matrix.csv", r.WriteCSV)
	}
	if run("ablations") {
		ran++
		emit(experiments.RunAblationMechanisms(4<<20, *iters, *seed).Render())
		emit(experiments.RunAblationKmax(8<<20, *iters, *seed).Render())
		emit(experiments.RunSlowStartExitComparison(2<<20, *iters, *seed).Render())
		emit(experiments.RunAQMComparison(4<<20, *iters, *seed).Render())
	}
	if run("webmix") {
		ran++
		nflows := 120
		if *quick {
			nflows = 40
		}
		emit(experiments.RunWebMix(nflows, 3, *seed).Render())
	}
	if run("futurework") {
		ran++
		emit(experiments.RunFutureWorkBBRSuss([]int64{512 << 10, 2 << 20, 8 << 20}, *iters, *seed).Render())
	}
	if run("appendixB") {
		ran++
		emit(experiments.RunBtlBwVariation("drop", 8<<20, *seed).Render())
		emit(experiments.RunBtlBwVariation("rise", 8<<20, *seed).Render())
	}

	if ran == 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *only)
		os.Exit(2)
	}
	fmt.Printf("completed in %v (wall clock)\n", time.Since(start).Round(time.Millisecond))
}

func emit(s string) {
	fmt.Println(s)
}
