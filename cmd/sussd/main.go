// Command sussd is the warm experiment daemon: the same sweeps
// cmd/sussbench and cmd/sussim run, kept resident behind an HTTP/JSON
// API with content-addressed result caching. Submitting a job matrix
// the daemon has already simulated — in any earlier batch, under any
// spelling of the defaulted fields — returns the identical CSV with
// zero simulator runs. With -cachefile the cache also survives
// restarts and kill -9: results are appended to a checksummed record
// log that startup replays (truncating any torn tail), so a recovered
// daemon re-simulates only the cells that were in flight when it died.
//
// Usage:
//
//	sussd -addr 127.0.0.1:7077 -cachefile /var/tmp/sussd.cache
//	curl -s localhost:7077/v1/stats
//	curl -s localhost:7077/readyz
//	sussim -submit http://127.0.0.1:7077 -spec '{"kind":"fig11","iters":3}'
//	curl -s -X DELETE localhost:7077/v1/jobs/j1   # cancel a batch
//
// On SIGINT/SIGTERM the daemon drains: /readyz flips to 503, new
// submissions are refused, every running batch is cancelled (finished
// cells stay cached), and the process exits once the executors seal
// their batches or the drain timeout expires.
//
// See internal/service for the API and DESIGN.md for the cache-keying
// and recovery rules.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"suss/internal/service"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7077", "listen address (port 0 picks a free port)")
	workers := flag.Int("workers", 0, "max concurrently simulating cells (0 = GOMAXPROCS)")
	wallLimit := flag.Duration("walllimit", 0, "per-cell wall-clock watchdog; a stalled cell errors instead of hanging the batch (0 = off)")
	cacheFile := flag.String("cachefile", "", "append-only result log; replayed at startup so the cache survives restarts and kill -9 (empty = memory-only)")
	maxQueue := flag.Int("maxqueue", 0, "max queued-but-unsimulated cells before submits get 429 (0 = default, negative = unlimited)")
	retain := flag.Int("retain", 0, "terminal batches kept before the oldest are evicted (0 = default, negative = unlimited)")
	drainTimeout := flag.Duration("draintimeout", 15*time.Second, "max wait for running batches to seal during shutdown")
	flag.Parse()

	srv, err := service.New(service.Config{
		Workers:        *workers,
		WallLimit:      *wallLimit,
		CacheFile:      *cacheFile,
		MaxQueuedCells: *maxQueue,
		RetainBatches:  *retain,
	})
	if err != nil {
		log.Fatal(err)
	}
	if *cacheFile != "" {
		fmt.Fprintf(os.Stderr, "sussd: cache replay: %s\n", srv.Recovery())
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	// The resolved address line is the startup handshake: wrappers (the
	// sussd smoke and fault tests, scripts using port 0) parse it to
	// find the port.
	fmt.Printf("sussd listening on %s\n", ln.Addr())

	hs := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		log.Fatal(err)
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "sussd: %v, draining\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		// Drain first: unready, refuse submits, cancel running batches
		// and wait for them to seal — stream/result watchers observe the
		// terminal "canceled" snapshots through the still-open listener.
		if err := srv.Drain(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "sussd: drain: %v\n", err)
		}
		if err := hs.Shutdown(ctx); err != nil {
			hs.Close()
		}
	}
}
