// Command sussd is the warm experiment daemon: the same sweeps
// cmd/sussbench and cmd/sussim run, kept resident behind an HTTP/JSON
// API with content-addressed result caching. Submitting a job matrix
// the daemon has already simulated — in any earlier batch, under any
// spelling of the defaulted fields — returns the identical CSV with
// zero simulator runs.
//
// Usage:
//
//	sussd -addr 127.0.0.1:7077
//	curl -s localhost:7077/v1/stats
//	sussim -submit http://127.0.0.1:7077 -spec '{"kind":"fig11","iters":3}'
//
// See internal/service for the API and DESIGN.md for the cache-keying
// rules.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"suss/internal/service"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7077", "listen address (port 0 picks a free port)")
	workers := flag.Int("workers", 0, "max concurrently simulating cells (0 = GOMAXPROCS)")
	wallLimit := flag.Duration("walllimit", 0, "per-cell wall-clock watchdog; a stalled cell errors instead of hanging the batch (0 = off)")
	flag.Parse()

	srv := service.New(service.Config{Workers: *workers, WallLimit: *wallLimit})
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	// The resolved address line is the startup handshake: wrappers (the
	// sussd smoke test, scripts using port 0) parse it to find the port.
	fmt.Printf("sussd listening on %s\n", ln.Addr())

	hs := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		log.Fatal(err)
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "sussd: %v, draining\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			hs.Close()
		}
	}
}
