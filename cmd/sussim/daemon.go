package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"suss/internal/service"
)

// runDaemon runs the experiment service in-process — the same server
// cmd/sussd wraps, exposed here so one binary can play both sides of a
// two-process smoke or fault-injection test.
func runDaemon(addr string, workers int, cacheFile string) error {
	srv, err := service.New(service.Config{Workers: workers, CacheFile: cacheFile})
	if err != nil {
		return err
	}
	if cacheFile != "" {
		fmt.Fprintf(os.Stderr, "sussd: cache replay: %s\n", srv.Recovery())
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Printf("sussd listening on %s\n", ln.Addr())
	return http.Serve(ln, srv.Handler())
}

// Client resilience knobs. Every non-blocking call (submit, status,
// stats, stream dial) gets a per-request timeout; only the blocking
// result?wait=1 read is unbounded, and it turns a dead daemon into a
// clear error instead of hanging. Transient failures — connection
// refused/reset, 429 with Retry-After, 503 during drain — are retried
// with exponential backoff plus jitter.
const (
	unaryTimeout  = 15 * time.Second
	retryBase     = 150 * time.Millisecond
	retryCap      = 3 * time.Second
	maxAttempts   = 6
	streamRedials = 10
)

// daemonClient is the sussd HTTP client behind sussim -submit.
type daemonClient struct {
	base  string
	unary *http.Client // bounded: submit, status, stats, cancel
	wait  *http.Client // unbounded: result?wait=1 and the progress stream
}

func newDaemonClient(baseURL string) *daemonClient {
	return &daemonClient{
		base:  strings.TrimRight(baseURL, "/"),
		unary: &http.Client{Timeout: unaryTimeout},
		wait:  &http.Client{},
	}
}

// backoff returns the jittered exponential delay for attempt n
// (0-based): base·2ⁿ capped, then uniformly jittered in [d/2, d).
func backoff(n int) time.Duration {
	d := retryBase << n
	if d > retryCap {
		d = retryCap
	}
	return d/2 + time.Duration(rand.Int63n(int64(d/2)))
}

// retryAfter honors an explicit Retry-After header when the server
// sent one, falling back to the client's own backoff.
func retryAfter(resp *http.Response, attempt int) time.Duration {
	if s := resp.Header.Get("Retry-After"); s != "" {
		if secs, err := strconv.Atoi(s); err == nil && secs > 0 {
			return time.Duration(secs) * time.Second
		}
	}
	return backoff(attempt)
}

// retriableStatus marks responses worth retrying: admission-control
// pushback and drain refusals.
func retriableStatus(code int) bool {
	return code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable
}

// do issues fn (which must build a fresh request each call) with
// retries on transport errors and retriable statuses. The returned
// response, if any, is non-retriable; its body is open.
func (c *daemonClient) do(what string, fn func() (*http.Response, error)) (*http.Response, error) {
	var lastErr error
	for attempt := 0; attempt < maxAttempts; attempt++ {
		resp, err := fn()
		if err != nil {
			lastErr = err
			time.Sleep(backoff(attempt))
			continue
		}
		if retriableStatus(resp.StatusCode) && attempt < maxAttempts-1 {
			body, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
			resp.Body.Close()
			wait := retryAfter(resp, attempt)
			fmt.Fprintf(os.Stderr, "%s: daemon busy (HTTP %d: %s), retrying in %v\n",
				what, resp.StatusCode, strings.TrimSpace(string(body)), wait.Round(time.Millisecond))
			time.Sleep(wait)
			continue
		}
		return resp, nil
	}
	return nil, fmt.Errorf("%s: giving up after %d attempts: %w", what, maxAttempts, lastErr)
}

func (c *daemonClient) getJSON(what, path string, out any) error {
	resp, err := c.do(what, func() (*http.Response, error) { return c.unary.Get(c.base + path) })
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		return fmt.Errorf("%s: HTTP %d: %s", what, resp.StatusCode, strings.TrimSpace(string(raw)))
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// runSubmit is the daemon client: submit a JSON job spec, follow
// progress, write the result CSV to stdout (or -o file), and print a
// machine-parseable summary line to stderr:
//
//	cells=48 cached=48 sim_runs=96 cache_hits=48 cache_misses=48
//
// sim_runs is the daemon's process-wide simulator-run counter; a warm
// resubmission leaves it unchanged.
func runSubmit(baseURL, spec, outPath string) error {
	c := newDaemonClient(baseURL)
	if err := waitHTTP(c.base, 10*time.Second); err != nil {
		return err
	}

	var req service.SubmitRequest
	if err := json.Unmarshal([]byte(spec), &req); err != nil {
		return fmt.Errorf("bad -spec JSON: %w", err)
	}
	body, _ := json.Marshal(req)
	resp, err := c.do("submit", func() (*http.Response, error) {
		return c.unary.Post(c.base+"/v1/jobs", "application/json", strings.NewReader(string(body)))
	})
	if err != nil {
		return err
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("submit: HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(raw)))
	}
	var sub service.SubmitResponse
	if err := json.Unmarshal(raw, &sub); err != nil {
		return fmt.Errorf("submit response %q: %w", raw, err)
	}
	fmt.Fprintf(os.Stderr, "submitted %s: %s, %d cells (%d already cached)\n", sub.ID, sub.Kind, sub.Cells, sub.Cached)

	streamDone := make(chan struct{})
	go streamProgress(c, sub.ID, streamDone)

	csv, err := c.awaitResult(sub.ID)
	close(streamDone)
	if err != nil {
		return err
	}

	if outPath != "" && outPath != "-" {
		if err := os.WriteFile(outPath, csv, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", outPath)
	} else {
		os.Stdout.Write(csv)
	}

	var st service.JobStatus
	if err := c.getJSON("status", "/v1/jobs/"+sub.ID, &st); err != nil {
		return err
	}
	var stats service.Stats
	if err := c.getJSON("stats", "/v1/stats", &stats); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "cells=%d cached=%d sim_runs=%d cache_hits=%d cache_misses=%d\n",
		st.Cells, st.Cached, stats.SimRuns, stats.CacheHits, stats.CacheMisses)
	if st.Errors > 0 {
		return fmt.Errorf("%d cell(s) failed", st.Errors)
	}
	return nil
}

// awaitResult blocks on result?wait=1. The wait itself has no
// timeout — a cold sweep legitimately takes as long as it takes — but
// a daemon dying mid-wait surfaces as a clear error: the dropped
// connection is retried a few times (the daemon may be restarting),
// and a daemon that restarted without the job (or stays unreachable)
// is reported instead of hanging silently.
func (c *daemonClient) awaitResult(id string) ([]byte, error) {
	path := c.base + "/v1/jobs/" + id + "/result?wait=1"
	var lastErr error
	for attempt := 0; attempt < maxAttempts; attempt++ {
		resp, err := c.wait.Get(path)
		if err != nil {
			lastErr = err
			time.Sleep(backoff(attempt))
			continue
		}
		raw, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			// The daemon died mid-response; retry against its successor.
			lastErr = rerr
			time.Sleep(backoff(attempt))
			continue
		}
		switch resp.StatusCode {
		case http.StatusOK:
			return raw, nil
		case http.StatusNotFound:
			return nil, fmt.Errorf("result: job %s is gone — the daemon likely restarted and lost its batch registry; resubmit the spec (persisted cells will be cache hits)", id)
		case http.StatusGone:
			return nil, fmt.Errorf("result: job %s was canceled: %s", id, strings.TrimSpace(string(raw)))
		default:
			return nil, fmt.Errorf("result: HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(raw)))
		}
	}
	return nil, fmt.Errorf("result: daemon became unreachable while waiting for job %s: %w", id, lastErr)
}

// streamProgress mirrors the batch's NDJSON progress stream onto
// stderr; best-effort (the result call is the authoritative wait), but
// it re-dials dropped streams so a transient hiccup doesn't silence
// the rest of a long sweep.
func streamProgress(c *daemonClient, id string, done <-chan struct{}) {
	for redial := 0; redial < streamRedials; redial++ {
		select {
		case <-done:
			return
		default:
		}
		resp, err := c.wait.Get(c.base + "/v1/jobs/" + id + "/stream")
		if err != nil {
			time.Sleep(backoff(redial))
			continue
		}
		terminal := streamSnapshots(resp.Body, id)
		resp.Body.Close()
		if terminal {
			return
		}
		time.Sleep(backoff(redial))
	}
}

// streamSnapshots prints snapshots until the stream ends, reporting
// whether a terminal state was seen (false = the connection dropped
// mid-batch and is worth re-dialing).
func streamSnapshots(body io.Reader, id string) bool {
	dec := json.NewDecoder(body)
	for {
		var st service.JobStatus
		if err := dec.Decode(&st); err != nil {
			return false
		}
		fmt.Fprintf(os.Stderr, "\r[%s] %d/%d cells (cached %d, running %d)", id,
			st.Done+st.Cached+st.Errors+st.Skipped, st.Cells, st.Cached, st.Running)
		if st.State != "running" {
			fmt.Fprintln(os.Stderr)
			return true
		}
	}
}

// waitHTTP polls the daemon's liveness endpoint until it answers —
// startup synchronization for scripted two-process runs.
func waitHTTP(baseURL string, d time.Duration) error {
	hc := &http.Client{Timeout: 2 * time.Second}
	deadline := time.Now().Add(d)
	for {
		resp, err := hc.Get(strings.TrimRight(baseURL, "/") + "/healthz")
		if err == nil {
			resp.Body.Close()
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("daemon at %s not answering: %w", baseURL, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}
