package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"suss/internal/service"
)

// runDaemon runs the experiment service in-process — the same server
// cmd/sussd wraps, exposed here so one binary can play both sides of a
// two-process smoke test.
func runDaemon(addr string, workers int) error {
	srv := service.New(service.Config{Workers: workers})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Printf("sussd listening on %s\n", ln.Addr())
	return http.Serve(ln, srv.Handler())
}

// runSubmit is the daemon client: submit a JSON job spec, follow
// progress, write the result CSV to stdout (or -o file), and print a
// machine-parseable summary line to stderr:
//
//	cells=48 cached=48 sim_runs=96 cache_hits=48 cache_misses=48
//
// sim_runs is the daemon's process-wide simulator-run counter; a warm
// resubmission leaves it unchanged.
func runSubmit(baseURL, spec, outPath string) error {
	baseURL = strings.TrimRight(baseURL, "/")
	if err := waitHTTP(baseURL, 10*time.Second); err != nil {
		return err
	}
	hc := &http.Client{} // no timeout: the result call blocks until the batch finishes

	var req service.SubmitRequest
	if err := json.Unmarshal([]byte(spec), &req); err != nil {
		return fmt.Errorf("bad -spec JSON: %w", err)
	}
	body, _ := json.Marshal(req)
	resp, err := hc.Post(baseURL+"/v1/jobs", "application/json", strings.NewReader(string(body)))
	if err != nil {
		return err
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("submit: HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(raw)))
	}
	var sub service.SubmitResponse
	if err := json.Unmarshal(raw, &sub); err != nil {
		return fmt.Errorf("submit response %q: %w", raw, err)
	}
	fmt.Fprintf(os.Stderr, "submitted %s: %s, %d cells (%d already cached)\n", sub.ID, sub.Kind, sub.Cells, sub.Cached)

	go streamProgress(hc, baseURL, sub.ID)

	resp, err = hc.Get(baseURL + "/v1/jobs/" + sub.ID + "/result?wait=1")
	if err != nil {
		return err
	}
	csv, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("result: HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(csv)))
	}

	if outPath != "" && outPath != "-" {
		if err := os.WriteFile(outPath, csv, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", outPath)
	} else {
		os.Stdout.Write(csv)
	}

	st, err := finalStatus(hc, baseURL, sub.ID)
	if err != nil {
		return err
	}
	stats, err := daemonStats(hc, baseURL)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "cells=%d cached=%d sim_runs=%d cache_hits=%d cache_misses=%d\n",
		st.Cells, st.Cached, stats.SimRuns, stats.CacheHits, stats.CacheMisses)
	if st.Errors > 0 {
		return fmt.Errorf("%d cell(s) failed", st.Errors)
	}
	return nil
}

// streamProgress mirrors the batch's NDJSON progress stream onto
// stderr; best-effort (the result call is the authoritative wait).
func streamProgress(hc *http.Client, baseURL, id string) {
	resp, err := hc.Get(baseURL + "/v1/jobs/" + id + "/stream")
	if err != nil {
		return
	}
	defer resp.Body.Close()
	dec := json.NewDecoder(resp.Body)
	for {
		var st service.JobStatus
		if err := dec.Decode(&st); err != nil {
			return
		}
		fmt.Fprintf(os.Stderr, "\r[%s] %d/%d cells (cached %d, running %d)", id,
			st.Done+st.Cached+st.Errors, st.Cells, st.Cached, st.Running)
		if st.State != "running" {
			fmt.Fprintln(os.Stderr)
			return
		}
	}
}

func finalStatus(hc *http.Client, baseURL, id string) (service.JobStatus, error) {
	var st service.JobStatus
	resp, err := hc.Get(baseURL + "/v1/jobs/" + id)
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	return st, json.NewDecoder(resp.Body).Decode(&st)
}

func daemonStats(hc *http.Client, baseURL string) (service.Stats, error) {
	var st service.Stats
	resp, err := hc.Get(baseURL + "/v1/stats")
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	return st, json.NewDecoder(resp.Body).Decode(&st)
}

// waitHTTP polls the daemon's stats endpoint until it answers —
// startup synchronization for scripted two-process runs.
func waitHTTP(baseURL string, d time.Duration) error {
	deadline := time.Now().Add(d)
	for {
		resp, err := http.Get(strings.TrimRight(baseURL, "/") + "/v1/stats")
		if err == nil {
			resp.Body.Close()
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("daemon at %s not answering: %w", baseURL, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}
