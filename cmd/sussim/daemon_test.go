package main

import (
	"bufio"
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"suss/internal/experiments"
	"suss/internal/scenarios"
)

// submitSummary is the parsed trailer line a -submit run prints to
// stderr: cells=N cached=K sim_runs=M cache_hits=H cache_misses=S.
type submitSummary struct {
	cells, cached         int
	simRuns, hits, misses int64
}

func parseSummary(t *testing.T, stderr string) submitSummary {
	t.Helper()
	var line string
	for _, l := range strings.Split(stderr, "\n") {
		if strings.HasPrefix(strings.TrimSpace(l), "cells=") {
			line = strings.TrimSpace(l)
		}
	}
	if line == "" {
		t.Fatalf("no cells= summary line in stderr:\n%s", stderr)
	}
	s := submitSummary{}
	for _, f := range strings.Fields(line) {
		k, v, ok := strings.Cut(f, "=")
		if !ok {
			t.Fatalf("bad summary field %q in %q", f, line)
		}
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			t.Fatalf("bad summary value %q: %v", f, err)
		}
		switch k {
		case "cells":
			s.cells = int(n)
		case "cached":
			s.cached = int(n)
		case "sim_runs":
			s.simRuns = n
		case "cache_hits":
			s.hits = n
		case "cache_misses":
			s.misses = n
		}
	}
	return s
}

// TestSussdSmoke is the two-process end-to-end: build the binary with
// -race, run a daemon, submit the same small fig11 matrix twice from a
// separate client process, and require the second pass to be 100 %
// cache hits with zero additional simulator runs and byte-identical
// CSV — which must also match the in-process sweep's CSV.
func TestSussdSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("two-process smoke skipped in -short")
	}
	bin := filepath.Join(t.TempDir(), "sussim")
	build := exec.Command("go", "build", "-race", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build -race: %v\n%s", err, out)
	}

	daemon := exec.Command(bin, "-daemon", "127.0.0.1:0")
	daemon.Stderr = os.Stderr
	stdout, err := daemon.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := daemon.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		daemon.Process.Kill()
		daemon.Wait()
	})
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		t.Fatalf("daemon printed no listen line (err=%v)", sc.Err())
	}
	line := sc.Text()
	const marker = "listening on "
	i := strings.Index(line, marker)
	if i < 0 {
		t.Fatalf("unexpected daemon startup line %q", line)
	}
	url := "http://" + strings.TrimSpace(line[i+len(marker):])

	spec := `{"kind":"fig11","sizes":[262144,524288],"iters":2,"seed":1}`
	const wantCells = 4 * 2 * 3 * 2 // links × sizes × algos × iters

	submit := func(pass int) ([]byte, submitSummary) {
		cmd := exec.Command(bin, "-submit", url, "-spec", spec)
		var outBuf, errBuf bytes.Buffer
		cmd.Stdout, cmd.Stderr = &outBuf, &errBuf
		if err := cmd.Run(); err != nil {
			t.Fatalf("pass %d: -submit: %v\nstderr:\n%s", pass, err, errBuf.String())
		}
		return outBuf.Bytes(), parseSummary(t, errBuf.String())
	}

	csv1, sum1 := submit(1)
	if sum1.cells != wantCells {
		t.Fatalf("pass 1: %d cells, want %d", sum1.cells, wantCells)
	}
	if sum1.cached != 0 {
		t.Errorf("pass 1 on a cold daemon reported %d cached cells", sum1.cached)
	}

	csv2, sum2 := submit(2)
	if sum2.cached != wantCells {
		t.Errorf("pass 2: %d/%d cells cached, want all", sum2.cached, wantCells)
	}
	if sum2.simRuns != sum1.simRuns {
		t.Errorf("pass 2 ran %d extra simulations (sim_runs %d → %d), want 0",
			sum2.simRuns-sum1.simRuns, sum1.simRuns, sum2.simRuns)
	}
	if sum2.hits-sum1.hits != int64(wantCells) {
		t.Errorf("pass 2 recorded %d cache hits, want %d", sum2.hits-sum1.hits, wantCells)
	}
	if !bytes.Equal(csv1, csv2) {
		t.Errorf("cached CSV differs from simulated CSV:\npass1:\n%s\npass2:\n%s", csv1, csv2)
	}

	// The daemon's CSV is the CLI's CSV: byte-identical to the
	// in-process sweep for the same config.
	direct := experiments.RunFig11(scenarios.GoogleTokyo, []int64{262144, 524288}, 2, 1)
	var buf bytes.Buffer
	if err := direct.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(csv1, buf.Bytes()) {
		t.Errorf("daemon CSV differs from in-process sweep:\ndaemon:\n%s\ndirect:\n%s", csv1, buf.Bytes())
	}
	fmt.Printf("sussd smoke: %d cells, pass2 cached=%d sim_runs delta=%d\n",
		wantCells, sum2.cached, sum2.simRuns-sum1.simRuns)
}
