package main

import (
	"testing"

	"suss"
)

func TestParseSize(t *testing.T) {
	cases := map[string]int64{
		"2MB":   2 << 20,
		"512KB": 512 << 10,
		"1GB":   1 << 30,
		"100B":  100,
		"100":   100,
		"1.5MB": 1.5 * (1 << 20),
		" 4mb ": 4 << 20,
	}
	for in, want := range cases {
		got, err := parseSize(in)
		if err != nil {
			t.Errorf("parseSize(%q) error: %v", in, err)
			continue
		}
		if got != want {
			t.Errorf("parseSize(%q) = %d, want %d", in, got, want)
		}
	}
	for _, bad := range []string{"", "MB", "-1MB", "0", "xMB"} {
		if _, err := parseSize(bad); err == nil {
			t.Errorf("parseSize(%q) should fail", bad)
		}
	}
}

func TestParseAlgo(t *testing.T) {
	cases := map[string]suss.Algorithm{
		"cubic":      suss.CUBIC,
		"suss":       suss.CUBICWithSUSS,
		"cubic+suss": suss.CUBICWithSUSS,
		"BBR":        suss.BBRv1,
		"bbrv1":      suss.BBRv1,
		"bbr2":       suss.BBRv2Lite,
		"BBRv2":      suss.BBRv2Lite,
		"reno":       suss.Reno,
	}
	for in, want := range cases {
		got, err := parseAlgo(in)
		if err != nil {
			t.Errorf("parseAlgo(%q) error: %v", in, err)
			continue
		}
		if got != want {
			t.Errorf("parseAlgo(%q) = %v, want %v", in, got, want)
		}
	}
	if _, err := parseAlgo("vegas"); err == nil {
		t.Error("unknown algorithm should fail")
	}
}
