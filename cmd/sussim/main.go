// Command sussim runs a single simulated download and prints the
// outcome, optionally dumping the cwnd/RTT/delivered trace as CSV —
// the userspace equivalent of the paper's kernel-log instrumentation.
//
// Usage:
//
//	sussim -algo suss -size 4MB -rate 100 -rtt 100ms
//	sussim -scenario google-tokyo/4g -algo cubic -size 2MB
//	sussim -algo suss -size 8MB -trace trace.csv
//	sussim -algo suss -size 2MB -events events.jsonl -counters
//	sussim -chaos
//	sussim -fleet -flows 10000 -shards 4
//	sussim -fleet -flows 10000 -shards 1 -domains 6
//	sussim -daemon 127.0.0.1:7077
//	sussim -submit http://127.0.0.1:7077 -spec '{"kind":"fig11","iters":3}'
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"suss"
	"suss/internal/chaos"
	"suss/internal/experiments"
)

func main() {
	algoName := flag.String("algo", "suss", "cubic | suss | bbr | bbr2 | reno")
	sizeStr := flag.String("size", "2MB", "transfer size (e.g. 512KB, 4MB)")
	rate := flag.Float64("rate", 100, "last-hop mean rate in Mbit/s (custom path)")
	rtt := flag.Duration("rtt", 100*time.Millisecond, "propagation RTT (custom path)")
	buffer := flag.Float64("buffer", 0, "bottleneck buffer in BDP (0 = link default)")
	link := flag.String("link", "wired", "wired | wifi | 4g | 5g (custom path)")
	scenario := flag.String("scenario", "", "run a named internet scenario instead (see -list)")
	list := flag.Bool("list", false, "list internet scenarios and exit")
	seed := flag.Int64("seed", 1, "impairment RNG seed")
	kmax := flag.Int("kmax", 0, "SUSS growth exponent bound (0 = paper default 1)")
	tracePath := flag.String("trace", "", "write cwnd/RTT/delivered CSV to this file")
	eventsPath := flag.String("events", "", "record the flight-recorder event log to this file (.jsonl | .csv | anything else = timeline text; \"-\" = timeline to stdout)")
	counters := flag.Bool("counters", false, "dump the flight-recorder flow/link counters after the run")
	chaosRun := flag.Bool("chaos", false, "run the chaos impairment matrix (catalog × algos × seeds) and exit non-zero on any failure")
	fleetRun := flag.Bool("fleet", false, "run a sharded flow population over the shared bottleneck tree, SUSS off vs on, and print per-class FCTs")
	fleetFlows := flag.Int("flows", 0, "with -fleet: total population size (0 = default 10000)")
	fleetShards := flag.Int("shards", 0, "with -fleet: independent tree shards (0 = default 4)")
	fleetArrival := flag.Float64("arrival", 0, "with -fleet: per-shard Poisson arrival rate in flows/s (0 = default)")
	fleetFull := flag.Bool("fullmix", false, "with -fleet: use the full heavy-tailed class mix (64 MB elephants) instead of the CI-sized smoke mix")
	fleetCSV := flag.String("fleetcsv", "", "with -fleet: write the merged per-class FCT CDFs to this CSV file")
	domains := flag.Int("domains", 0, "with -fleet: run each shard as this many parallel event domains (0/1 = single-threaded; results are identical at any count)")
	serveAddr := flag.String("serve", "", "serve -size bytes over a real UDP socket on this address (e.g. 127.0.0.1:7000); pair with a -fetch process")
	fetchAddr := flag.String("fetch", "", "fetch -size bytes from a -serve process at this address")
	wireLoss := flag.Float64("wireloss", 0, "with -serve: fraction of outgoing frames to erase at the wire (e.g. 0.05)")
	daemonAddr := flag.String("daemon", "", "run the experiment service (sussd) in-process on this address (e.g. 127.0.0.1:0)")
	submitURL := flag.String("submit", "", "submit -spec to a sussd daemon at this base URL (e.g. http://127.0.0.1:7077), wait, and print the result CSV")
	spec := flag.String("spec", "", `with -submit: the job matrix as JSON, e.g. {"kind":"fig11","sizes":[262144],"iters":2,"seed":1}`)
	outPath := flag.String("o", "", "with -submit: write the result CSV here instead of stdout")
	workers := flag.Int("workers", 0, "with -daemon: max concurrently simulating cells (0 = GOMAXPROCS)")
	cacheFile := flag.String("cachefile", "", "with -daemon: append-only result log replayed at startup (empty = memory-only)")
	flag.Parse()

	if *daemonAddr != "" {
		if err := runDaemon(*daemonAddr, *workers, *cacheFile); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *submitURL != "" {
		if *spec == "" {
			log.Fatal("-submit needs -spec (a JSON job matrix)")
		}
		if err := runSubmit(*submitURL, *spec, *outPath); err != nil {
			log.Fatal(err)
		}
		return
	}

	if *chaosRun {
		m := chaos.Run(context.Background(), chaos.DefaultOptions())
		fmt.Print(m.Render())
		if len(m.Failures()) > 0 {
			os.Exit(1)
		}
		return
	}

	if *fleetRun {
		if err := runFleet(*seed, *fleetFlows, *fleetShards, *fleetArrival, *fleetFull, *fleetCSV, *domains); err != nil {
			log.Fatal(err)
		}
		return
	}

	if *list {
		for _, s := range suss.Scenarios() {
			fmt.Println(s)
		}
		return
	}

	algo, err := parseAlgo(*algoName)
	if err != nil {
		log.Fatal(err)
	}
	size, err := parseSize(*sizeStr)
	if err != nil {
		log.Fatal(err)
	}

	if *serveAddr != "" {
		if err := serveFlow(*serveAddr, algo, size, *wireLoss, *seed); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *fetchAddr != "" {
		if err := fetchFlow(*fetchAddr, size); err != nil {
			log.Fatal(err)
		}
		return
	}

	observe := *eventsPath != "" || *counters
	var res suss.Result
	var pts []suss.TracePoint
	var rec *suss.FlightRecorder
	if *scenario != "" {
		if observe {
			log.Fatal("-events/-counters are only available for custom paths (-rate/-rtt), not -scenario")
		}
		res, err = suss.RunScenario(suss.InternetScenario(*scenario), algo, size, *seed)
	} else {
		cfg := suss.PathConfig{
			RateMbps:  *rate,
			RTT:       *rtt,
			BufferBDP: *buffer,
			Link:      suss.LinkType(*link),
			Seed:      *seed,
			Kmax:      *kmax,
		}
		if observe {
			res, pts, rec, err = suss.RunTraceObserved(cfg, algo, size, time.Millisecond)
		} else {
			res, pts, err = suss.RunTrace(cfg, algo, size, time.Millisecond)
		}
	}
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("algo=%s size=%s\n", algo, *sizeStr)
	fmt.Printf("  FCT           %v\n", res.FCT.Round(time.Microsecond))
	fmt.Printf("  goodput       %.2f Mbit/s\n", float64(res.DeliveredBytes)*8/res.FCT.Seconds()/1e6)
	fmt.Printf("  retrans/RTOs  %d / %d\n", res.Retransmissions, res.RTOs)
	fmt.Printf("  loss rate     %.3f%%\n", 100*res.LossRate)
	if algo == suss.CUBICWithSUSS {
		fmt.Printf("  SUSS          max G=%d, %d accelerated rounds\n", res.MaxG, res.AcceleratedRounds)
	}

	if *tracePath != "" {
		if pts == nil {
			log.Fatal("tracing is only available for custom paths (-rate/-rtt), not -scenario")
		}
		f, err := os.Create(*tracePath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		fmt.Fprintln(f, "t_ms,cwnd_bytes,srtt_ms,delivered_bytes")
		for _, p := range pts {
			fmt.Fprintf(f, "%.3f,%d,%.3f,%d\n",
				float64(p.T)/1e6, p.CwndBytes, float64(p.SRTT)/1e6, p.Delivered)
		}
		fmt.Printf("  trace         %d samples → %s\n", len(pts), *tracePath)
	}

	if *eventsPath != "" {
		if err := writeEvents(rec, *eventsPath); err != nil {
			log.Fatal(err)
		}
	}
	if *counters {
		fmt.Println()
		if err := rec.WriteCounters(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
}

// runFleet drives the population-scale experiment: the flow fleet is
// sharded over independent bottleneck trees and run twice (SUSS off,
// then on) over the identical population.
func runFleet(seed int64, flows, shards int, arrival float64, fullMix bool, csvPath string, domains int) error {
	fc := experiments.DefaultFleetConfig(seed)
	if flows > 0 {
		fc.Flows = flows
	}
	if shards > 0 {
		fc.Shards = shards
	}
	if arrival > 0 {
		fc.ArrivalRate = arrival
	}
	if fullMix {
		fc.Mix = nil // RunFleet falls back to workload.DefaultMix
	}
	r := experiments.RunFleet(fc, experiments.WithDomains(domains), experiments.WithProgress(func(done, total int) {
		fmt.Fprintf(os.Stderr, "\r[fleet] %d/%d shards", done, total)
		if done == total {
			fmt.Fprintln(os.Stderr)
		}
	}))
	fmt.Print(r.Render())
	if csvPath != "" {
		f, err := os.Create(csvPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := r.WriteCSV(f); err != nil {
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", csvPath)
	}
	if len(r.Errs) > 0 {
		return fmt.Errorf("%d shard(s) failed", len(r.Errs))
	}
	return nil
}

// writeEvents dumps the flight-recorder event log; the format follows
// the file extension (.jsonl, .csv, anything else = timeline text) and
// "-" streams the timeline to stdout.
func writeEvents(rec *suss.FlightRecorder, path string) error {
	if path == "-" {
		return rec.WriteTimeline(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	switch {
	case strings.HasSuffix(path, ".jsonl"):
		err = rec.WriteEventsJSONL(f)
	case strings.HasSuffix(path, ".csv"):
		err = rec.WriteEventsCSV(f)
	default:
		err = rec.WriteTimeline(f)
	}
	if err != nil {
		return err
	}
	return f.Close()
}

func parseAlgo(s string) (suss.Algorithm, error) {
	switch strings.ToLower(s) {
	case "cubic":
		return suss.CUBIC, nil
	case "suss", "cubic+suss":
		return suss.CUBICWithSUSS, nil
	case "bbr", "bbrv1":
		return suss.BBRv1, nil
	case "bbr2", "bbrv2":
		return suss.BBRv2Lite, nil
	case "reno":
		return suss.Reno, nil
	default:
		return 0, fmt.Errorf("unknown algorithm %q", s)
	}
}

func parseSize(s string) (int64, error) {
	s = strings.ToUpper(strings.TrimSpace(s))
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "MB"):
		mult, s = 1<<20, strings.TrimSuffix(s, "MB")
	case strings.HasSuffix(s, "KB"):
		mult, s = 1<<10, strings.TrimSuffix(s, "KB")
	case strings.HasSuffix(s, "GB"):
		mult, s = 1<<30, strings.TrimSuffix(s, "GB")
	case strings.HasSuffix(s, "B"):
		s = strings.TrimSuffix(s, "B")
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil || v <= 0 {
		return 0, fmt.Errorf("bad size %q", s)
	}
	return int64(v * float64(mult)), nil
}
