package main

import (
	"fmt"
	"math/rand"
	"time"

	"suss"
	"suss/internal/cc"
	"suss/internal/netem"
	"suss/internal/netsim"
	"suss/internal/runner"
	"suss/internal/tcp"
	"suss/internal/wire/udpbackend"
)

// handshakeTimeout bounds how long the demo endpoints wait for the
// other process to show up.
const handshakeTimeout = 10 * time.Minute

// runnerAlgo maps the public algorithm enum onto the runner catalog so
// the wire demo can build controllers directly.
func runnerAlgo(a suss.Algorithm) runner.Algo {
	switch a {
	case suss.CUBIC:
		return runner.Cubic
	case suss.CUBICWithSUSS:
		return runner.Suss
	case suss.BBRv1:
		return runner.BBR
	case suss.BBRv2Lite:
		return runner.BBR2
	case suss.Reno:
		return runner.Reno
	default:
		panic("sussim: unknown algorithm")
	}
}

// serveFlow is the server half of the two-process UDP demo: bind addr,
// wait for a fetch's SYN, then push size bytes through the unmodified
// transport over the UDP underlay. wireLoss > 0 erases that fraction
// of outgoing frames at the sending edge (the same Bernoulli stage
// simulator links use), so recovery runs over real datagrams.
func serveFlow(addr string, algo suss.Algorithm, size int64, wireLoss float64, seed int64) error {
	cfg := udpbackend.Config{}
	if wireLoss > 0 {
		cfg.Impair = netsim.NewImpairments(
			netem.Erasure{Fn: netem.Bernoulli(wireLoss, rand.New(rand.NewSource(seed)))})
	}
	ep, err := udpbackend.ListenConfig(addr, cfg)
	if err != nil {
		return err
	}
	defer ep.Close()
	fmt.Printf("serving %d bytes (%s) on %s; waiting for -fetch...\n", size, algo, ep.Addr())

	conn, peer, err := ep.Accept(1, handshakeTimeout)
	if err != nil {
		return err
	}
	fmt.Printf("flow accepted: peer MSS=%d wscale=%d sack=%v\n", peer.MSS, peer.WScale, peer.SackPermitted)

	snd := tcp.NewSender(conn, tcp.DefaultConfig(), 1, size, nil)
	conn.SetHandler(snd.HandleAck)
	r := ep.Reactor()
	start := time.Now()
	r.DoWait(func() {
		var ctrl cc.Controller = runner.NewController(runnerAlgo(algo), snd)
		snd.SetController(ctrl)
		sim := r.Sim()
		sim.ScheduleAt(sim.Now(), snd.Start)
	})

	for {
		var fin, failed bool
		r.DoWait(func() { fin, failed = snd.Finished(), snd.Failed() })
		if fin {
			break
		}
		if failed {
			var ferr error
			r.DoWait(func() { ferr = snd.Err() })
			return fmt.Errorf("transfer failed: %w", ferr)
		}
		time.Sleep(20 * time.Millisecond)
	}
	elapsed := time.Since(start)
	var st tcp.SenderStats
	r.DoWait(func() { st = snd.Stats() })
	ws := ep.Stats()
	fmt.Printf("done: %d bytes fully acked in %v\n", st.Delivered, elapsed.Round(time.Millisecond))
	fmt.Printf("  segments      %d (%d retrans, %d RTOs)\n", st.SegmentsSent, st.Retransmissions, st.RTOs)
	fmt.Printf("  wire          %d frames out / %d in, %d injected drops\n", ws.FramesOut, ws.FramesIn, ws.ImpairDrops)
	return nil
}

// fetchFlow is the client half: handshake with a -serve process at
// raddr and receive size bytes (the two processes must agree on size —
// the demo has no application-layer length header).
func fetchFlow(raddr string, size int64) error {
	ep, err := udpbackend.Dial(raddr)
	if err != nil {
		return err
	}
	defer ep.Close()

	start := time.Now()
	conn, peer, err := ep.Connect(1)
	if err != nil {
		return err
	}
	fmt.Printf("connected to %s in %v: MSS=%d wscale=%d sack=%v\n",
		raddr, time.Since(start).Round(time.Microsecond), peer.MSS, peer.WScale, peer.SackPermitted)

	rcv := tcp.NewReceiver(conn, tcp.DefaultConfig(), 1, size)
	done := make(chan struct{})
	ep.Reactor().DoWait(func() {
		rcv.OnComplete = func(time.Duration) { close(done) }
	})
	conn.SetHandler(rcv.Handle)

	select {
	case <-done:
	case <-time.After(handshakeTimeout):
		var recvd int64
		ep.Reactor().DoWait(func() { recvd = rcv.Received() })
		return fmt.Errorf("fetch timed out with %d/%d bytes", recvd, size)
	}
	fct := time.Since(start)
	var recvd int64
	ep.Reactor().DoWait(func() { recvd = rcv.Received() })
	ws := ep.Stats()
	fmt.Printf("fetched %d bytes in %v (%.2f Mbit/s)\n",
		recvd, fct.Round(time.Millisecond), float64(recvd)*8/fct.Seconds()/1e6)
	fmt.Printf("  wire          %d frames in / %d out, %d decode drops\n", ws.FramesIn, ws.FramesOut, ws.DecodeDrops)
	return nil
}
