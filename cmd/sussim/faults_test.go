package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"suss/internal/experiments"
	"suss/internal/scenarios"
	"suss/internal/service"
)

// buildSussim compiles the binary once per test with the race detector
// on — both the daemon and the client side of the fault tests run it.
func buildSussim(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "sussim")
	build := exec.Command("go", "build", "-race", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build -race: %v\n%s", err, out)
	}
	return bin
}

// startDaemon launches `bin -daemon 127.0.0.1:0 args...` and returns
// its base URL (parsed from the startup handshake line) plus the
// process handle. The caller kills it; a cleanup reaps stragglers.
func startDaemon(t *testing.T, bin string, args ...string) (string, *exec.Cmd) {
	t.Helper()
	cmd := exec.Command(bin, append([]string{"-daemon", "127.0.0.1:0"}, args...)...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		t.Fatalf("daemon printed no listen line (err=%v)", sc.Err())
	}
	line := sc.Text()
	const marker = "listening on "
	i := strings.Index(line, marker)
	if i < 0 {
		t.Fatalf("unexpected daemon startup line %q", line)
	}
	return "http://" + strings.TrimSpace(line[i+len(marker):]), cmd
}

func daemonStats(t *testing.T, url string) service.Stats {
	t.Helper()
	resp, err := http.Get(url + "/v1/stats")
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	defer resp.Body.Close()
	var st service.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func postJob(t *testing.T, url, spec string) service.SubmitResponse {
	t.Helper()
	resp, err := http.Post(url+"/v1/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sub service.SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	return sub
}

func submitCLI(t *testing.T, bin, url, spec string) ([]byte, submitSummary) {
	t.Helper()
	cmd := exec.Command(bin, "-submit", url, "-spec", spec)
	var outBuf, errBuf bytes.Buffer
	cmd.Stdout, cmd.Stderr = &outBuf, &errBuf
	if err := cmd.Run(); err != nil {
		t.Fatalf("-submit: %v\nstderr:\n%s", err, errBuf.String())
	}
	return outBuf.Bytes(), parseSummary(t, errBuf.String())
}

// TestSussdFaultRecovery is the kill-the-daemon harness: a daemon with
// a cache file is SIGKILL'd mid-batch (one worker, cells persisted as
// they finish), restarted on the same file, and the resubmission must
// find every persisted cell warm — re-simulating only what was in
// flight or unstarted at the kill — and still produce byte-identical
// CSV to the in-process sweep.
func TestSussdFaultRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("two-process fault test skipped in -short")
	}
	bin := buildSussim(t)
	cacheFile := filepath.Join(t.TempDir(), "sussd.cache")
	spec := `{"kind":"fig11","sizes":[4194304],"iters":2,"seed":1}`
	const wantCells = 4 * 1 * 3 * 2 // links × sizes × algos × iters

	url1, daemon1 := startDaemon(t, bin, "-workers", "1", "-cachefile", cacheFile)
	sub := postJob(t, url1, spec)
	if sub.Cells != wantCells || sub.Cached != 0 {
		t.Fatalf("cold submit: cells=%d cached=%d, want %d/0", sub.Cells, sub.Cached, wantCells)
	}

	// Wait until a few cells have been simulated AND persisted, then
	// kill -9. With one worker the batch is serial, so at kill time the
	// cache file holds the finished prefix and nothing else.
	deadline := time.Now().Add(60 * time.Second)
	for daemonStats(t, url1).CacheEntries < 3 {
		if time.Now().After(deadline) {
			t.Fatal("daemon simulated fewer than 3 cells in 60s")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := daemon1.Process.Kill(); err != nil { // SIGKILL: no drain, no flush, no goodbye
		t.Fatal(err)
	}
	daemon1.Wait()

	// Restart on the same cache file. Replay must recover at least the
	// cells we saw persisted before the kill.
	url2, _ := startDaemon(t, bin, "-workers", "1", "-cachefile", cacheFile)
	st := daemonStats(t, url2)
	if st.CacheReplayed < 3 {
		t.Fatalf("restarted daemon replayed %d cells, want >= 3", st.CacheReplayed)
	}
	if st.CacheReplayed > wantCells {
		t.Fatalf("restarted daemon replayed %d cells, more than the %d submitted", st.CacheReplayed, wantCells)
	}
	t.Logf("killed daemon mid-batch; replay recovered %d/%d cells (dropped %d bytes: %s)",
		st.CacheReplayed, wantCells, st.CacheDroppedBytes, st.CacheDropReason)

	// Resubmit the identical spec through the CLI client. Every
	// persisted cell must be a cache hit; the fresh process's sim_runs
	// counter counts exactly the re-simulated remainder.
	csv, sum := submitCLI(t, bin, url2, spec)
	if sum.cells != wantCells {
		t.Fatalf("resubmit: %d cells, want %d", sum.cells, wantCells)
	}
	if sum.cached != st.CacheReplayed {
		t.Errorf("resubmit found %d cells cached, want the %d replayed", sum.cached, st.CacheReplayed)
	}
	if want := int64(wantCells - sum.cached); sum.simRuns != want {
		t.Errorf("resubmit ran %d simulations, want exactly the %d un-persisted cells", sum.simRuns, want)
	}

	// The recovered-and-completed CSV is byte-identical to a run that
	// never crashed.
	direct := experiments.RunFig11(scenarios.GoogleTokyo, []int64{4194304}, 2, 1)
	var buf bytes.Buffer
	if err := direct.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(csv, buf.Bytes()) {
		t.Errorf("post-recovery CSV differs from the in-process sweep:\nrecovered:\n%s\ndirect:\n%s", csv, buf.Bytes())
	}
	fmt.Printf("sussd faults: killed at %d/%d persisted, resubmit cached=%d sim_runs=%d\n",
		st.CacheReplayed, wantCells, sum.cached, sum.simRuns)
}

// TestSussdCorruptCacheRecovery: a cache file with a torn tail (the
// exact artifact a crash mid-append leaves) must not take the daemon
// down — startup truncates the tail, reports what it dropped, and every
// intact record still serves as a cache hit.
func TestSussdCorruptCacheRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("two-process fault test skipped in -short")
	}
	bin := buildSussim(t)
	cacheFile := filepath.Join(t.TempDir(), "sussd.cache")
	spec := `{"kind":"fig11","sizes":[262144],"iters":1,"seed":1}`
	const wantCells = 4 * 1 * 3 * 1

	// Fill the cache with one clean batch, then kill the daemon.
	url1, daemon1 := startDaemon(t, bin, "-cachefile", cacheFile)
	sub := postJob(t, url1, spec)
	resp, err := http.Get(url1 + "/v1/jobs/" + sub.ID + "/result?wait=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result: HTTP %d", resp.StatusCode)
	}
	daemon1.Process.Kill()
	daemon1.Wait()

	// Tear the tail: a frame promising 500 payload bytes, delivering 7.
	f, err := os.OpenFile(cacheFile, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	torn := append([]byte{0, 0, 1, 0xf4}, bytes.Repeat([]byte{0xAB}, 32+7)...)
	if _, err := f.Write(torn); err != nil {
		t.Fatal(err)
	}
	f.Close()

	url2, _ := startDaemon(t, bin, "-cachefile", cacheFile)
	st := daemonStats(t, url2)
	if st.CacheReplayed != wantCells {
		t.Errorf("replay recovered %d cells, want all %d intact records", st.CacheReplayed, wantCells)
	}
	if st.CacheDroppedBytes != int64(len(torn)) {
		t.Errorf("replay dropped %d bytes, want the %d torn ones", st.CacheDroppedBytes, len(torn))
	}

	// The truncated file serves: full cache hits, zero simulations in
	// the fresh process.
	_, sum := submitCLI(t, bin, url2, spec)
	if sum.cached != wantCells {
		t.Errorf("resubmit on repaired cache: %d/%d cached", sum.cached, wantCells)
	}
	if sum.simRuns != 0 {
		t.Errorf("resubmit on repaired cache ran %d simulations, want 0", sum.simRuns)
	}
}
