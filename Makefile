GO ?= go

# Benchmark comparison knobs (see bench-baseline / bench-compare).
BENCH ?= BenchmarkFig11FCTvsFlowSize
BENCH_PKG ?= .
BENCH_COUNT ?= 5
BENCH_BASELINE ?= bench.baseline.txt
BENCH_HEAD ?= bench.head.txt
# Allowed relative ns/op regression for bench-gate (allocs/op always
# gates at zero increase).
BENCH_TOL ?= 0.10

.PHONY: check build vet test testdebug race allocgate chaos interop fuzz-short fleet-smoke fleet-chaos sussd-smoke sussd-faults domains bench bench-sched bench-baseline bench-compare bench-record bench-gate clean

# The full gate CI runs: build + vet + tests (including the
# AllocsPerRun zero-allocation gates in internal/netsim) + the
# sussdebug lifecycle-detector pass + race pass over the
# concurrency-bearing packages.
check: build vet test testdebug race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The sussdebug build tag arms the packet-lifecycle detector
# (double-release and use-after-release panic; the pool sequesters
# instead of recycling). The pooled hot-path packages get a pass with
# it on.
testdebug:
	$(GO) test -tags sussdebug ./internal/netsim ./internal/tcp

# The worker pool, the experiment sweeps built on it, and the
# experiment service (concurrent batch executors, watchers, the shared
# persistent cache) get a dedicated race pass.
race:
	$(GO) test -race ./internal/runner ./internal/experiments ./internal/service

# Zero-allocation gates, run explicitly and WITHOUT -race: race
# instrumentation inserts allocations of its own, so AllocsPerRun is
# only meaningful on an uninstrumented build. Covers the flight
# recorder (internal/obs), the event/packet arenas (internal/netsim),
# the wire codec and the simulator backend's send/deliver path.
allocgate:
	$(GO) test -run 'Alloc' -v ./internal/obs ./internal/netsim ./internal/wire ./internal/wire/simbackend

# Chaos matrix under -race: every impairment × CC algo × seed must
# complete (or error cleanly) with a balanced loss ledger, and a wedged
# simulation is killed by the per-job wall-clock watchdog instead of
# hanging the suite. Set CHAOS_DUMP=<file> to capture the matrix
# summary (with flight-recorder stall tails) on failure — CI uploads it
# as an artifact.
chaos:
	$(GO) test -race -timeout 300s -v ./internal/chaos

# Wire-backend interop under -race: the same transport over the
# in-memory pipe and the UDP loopback, wall-clock timers, real frames
# between goroutines (including lossy cells recovering by
# retransmission). The timeout is a hang backstop — the lossy tests
# poll with their own deadlines.
interop:
	$(GO) test -race -timeout 180s ./internal/wire/...

# Short fuzz pass over the strict segment decoder: enough iterations
# to catch parser regressions in CI without open-ended fuzzing.
fuzz-short:
	$(GO) test -run '^$$' -fuzz FuzzDecodeSegment -fuzztime 30s ./internal/wire

# Population smoke under -race: a 10k-flow fleet over 4 shared
# bottleneck trees, SUSS off vs on over the identical population, run
# at two worker counts — the merged per-class FCT CDF CSV must be
# byte-identical (the sharding determinism contract) and the small-flow
# FCT delta is reported in the -v log.
fleet-smoke:
	$(GO) test -race -timeout 900s -run 'TestFleetSmoke' -v ./internal/experiments

# Chaos-on-the-fleet under -race: the population comparison with
# impairments composed onto the tree links (netem reordering on every
# aggregation downlink, a hard mid-run outage on the core bottleneck)
# under the wall-clock watchdog. Gates resilience: no stalls, no shard
# errors, >= 95% flow completion, and the impairments demonstrably
# engaged (outage drops in the per-cause link stats).
fleet-chaos:
	$(GO) test -race -timeout 600s -run 'TestFleetChaos' -v ./internal/experiments

# Experiment-service smoke under -race, two real processes: a sussd
# daemon (run via sussim -daemon) and a sussim -submit client sending
# the same fig11 matrix twice. The second pass must be 100% cache hits
# with zero additional simulator runs, and both passes' CSV must be
# byte-identical to the in-process sweep — the content-addressed
# caching contract end to end over the wire.
sussd-smoke:
	$(GO) test -race -timeout 300s -run 'TestSussdSmoke' -v ./cmd/sussim

# Daemon fault harness under -race, two real processes: SIGKILL a sussd
# mid-batch and restart it on the same cache file — the resubmission
# must be warm for every persisted cell, re-simulate only what was in
# flight, and produce byte-identical CSV; plus recovery from a cache
# file with a torn tail (the artifact a crash mid-append leaves).
sussd-faults:
	$(GO) test -race -timeout 600s -run 'TestSussdFaultRecovery|TestSussdCorruptCacheRecovery' -v ./cmd/sussim

# Parallel-event-domain determinism under -race: the cluster protocol
# tests plus every differential that replays the same workload
# monolithically and split across domains (trees, fleet shards, the
# chaos catalog, the fig11/fleet sweeps) and requires identical bytes.
domains:
	$(GO) test -race -timeout 600s -run 'Domain|Cluster' ./internal/netsim ./internal/runner ./internal/chaos ./internal/experiments

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# Scheduler microbenchmarks: timer churn (arm/cancel/rearm, the TCP
# hot path) and cross-level cascading. benchstat-friendly: -count 6+
# gives it enough samples for a confidence interval.
bench-sched:
	$(GO) test -run '^$$' -bench 'BenchmarkScheduler(Churn|Cascade)' -benchmem -count $(BENCH_COUNT) ./internal/netsim

# bench-baseline records $(BENCH) in $(BENCH_PKG) on the current tree
# (run it on the base commit); bench-compare reruns it on HEAD and
# diffs the two with benchstat when available. For the scheduler
# microbenchmarks: BENCH='BenchmarkScheduler(Churn|Cascade)'
# BENCH_PKG=./internal/netsim.
bench-baseline:
	$(GO) test -run '^$$' -bench '$(BENCH)' -benchmem -count $(BENCH_COUNT) $(BENCH_PKG) | tee $(BENCH_BASELINE)

bench-compare:
	@test -f $(BENCH_BASELINE) || { \
		echo "missing $(BENCH_BASELINE): check out the base commit and run 'make bench-baseline' first"; exit 1; }
	$(GO) test -run '^$$' -bench '$(BENCH)' -benchmem -count $(BENCH_COUNT) $(BENCH_PKG) | tee $(BENCH_HEAD)
	@if command -v benchstat >/dev/null 2>&1; then \
		benchstat $(BENCH_BASELINE) $(BENCH_HEAD); \
	else \
		echo "benchstat not installed; compare $(BENCH_BASELINE) and $(BENCH_HEAD) by hand:"; \
		grep -h '^Benchmark' $(BENCH_BASELINE) $(BENCH_HEAD); \
	fi

# bench-record refreshes the committed JSON baselines (BENCH_fig11.json,
# BENCH_sched.json); bench-gate reruns the same benchmarks and fails on
# a >10% ns/op regression or ANY allocs/op increase (see cmd/benchgate).
# The fig11 gate runs the single-worker sweep: the parallel variant's
# ns/op and allocs/op wobble with goroutine scheduling, while the
# serial one is a deterministic replay whose alloc count is exact.
# Both gates reduce -count samples to best-of-N, so run them on a quiet
# machine, and re-record deliberately when a change legitimately shifts
# the cost profile.
FIG11_BENCH = 'BenchmarkFig11ParallelVsSequential/workers=1$$'
# benchtime stays at 1x: each sample is one full sweep, so allocs/op
# is an exact count (longer benchtimes amortize setup allocations and
# introduce ±1 rounding jitter); the high -count tightens best-of-N.
# Like the fleet gate, the alloc half is the precision instrument:
# best-of-12 wall clock for the one-shot sweep still wobbles ~20%
# process-to-process on a shared 1-vCPU runner, so the ns half only
# backstops structural blowups.
FIG11_FLAGS = -benchmem -benchtime 1x -count 12
FIG11_NS_TOL = 0.50
SCHED_BENCH = 'BenchmarkScheduler(Churn|Cascade)'
SCHED_FLAGS = -benchmem -count 8
# The fleet gate replays one deterministic 400-flow shard per sample:
# serial, fully seeded, one simulation per op at 1x like the fig11
# gate. Its alloc count carries ±~10 counts of map hash-seed noise
# (each demux map's overflow-bucket allocation depends on Go's
# per-map random seed), so the gate allows 64 allocs of absolute
# slack — far below a real regression, which is per-flow and so shows
# up 400× (one extra alloc per flow = +400 allocs/op). The alloc half
# is the precision instrument; best-of-10 wall clock for a ~25 ms
# one-shot replay wobbles close to 2× between processes on a shared
# 1-vCPU runner, so the ns half only backstops order-of-magnitude
# blowups (an event-loop livelock, an accidental O(n²) merge).
FLEET_BENCH = 'BenchmarkFleetShard$$'
FLEET_FLAGS = -benchmem -benchtime 1x -count 10
FLEET_ALLOC_SLACK = 64
FLEET_NS_TOL = 1.0
# The domains gate replays the same 600-flow shard monolithically
# (domains=1) and across a 10-way partition. The domains=1 half
# inherits the fleet gate's tolerances (deterministic serial replay,
# map hash-seed alloc noise); the domains=10 half additionally wobbles
# with goroutine scheduling, so the ns tolerance is shared and loose.
# -minspeedup is the parallel gate proper: the domains=1 / domains=10
# ns/op ratio must reach 2x — enforced only when the machine reports
# GOMAXPROCS >= 4 (a barrier-synchronized cluster cannot express the
# speedup without cores), reported as a notice otherwise.
DOMAINS_BENCH = 'BenchmarkTreeDomains$$'
DOMAINS_FLAGS = -benchmem -benchtime 1x -count 6
DOMAINS_ALLOC_SLACK = 96
DOMAINS_NS_TOL = 1.0
DOMAINS_MIN_SPEEDUP = 2.0

bench-record:
	$(GO) test -run '^$$' -bench $(FIG11_BENCH) $(FIG11_FLAGS) . > bench.fig11.txt
	$(GO) run ./cmd/benchgate -record BENCH_fig11.json < bench.fig11.txt
	$(GO) test -run '^$$' -bench $(SCHED_BENCH) $(SCHED_FLAGS) ./internal/netsim > bench.sched.txt
	$(GO) run ./cmd/benchgate -record BENCH_sched.json < bench.sched.txt
	$(GO) test -run '^$$' -bench $(FLEET_BENCH) $(FLEET_FLAGS) ./internal/runner > bench.fleet.txt
	$(GO) run ./cmd/benchgate -record BENCH_fleet.json < bench.fleet.txt
	$(GO) test -run '^$$' -bench $(DOMAINS_BENCH) $(DOMAINS_FLAGS) ./internal/runner > bench.domains.txt
	$(GO) run ./cmd/benchgate -record BENCH_domains.json < bench.domains.txt

bench-gate:
	$(GO) test -run '^$$' -bench $(FIG11_BENCH) $(FIG11_FLAGS) . > bench.fig11.txt
	$(GO) run ./cmd/benchgate -tolerance $(FIG11_NS_TOL) -compare BENCH_fig11.json < bench.fig11.txt
	$(GO) test -run '^$$' -bench $(SCHED_BENCH) $(SCHED_FLAGS) ./internal/netsim > bench.sched.txt
	$(GO) run ./cmd/benchgate -tolerance $(BENCH_TOL) -compare BENCH_sched.json < bench.sched.txt
	$(GO) test -run '^$$' -bench $(FLEET_BENCH) $(FLEET_FLAGS) ./internal/runner > bench.fleet.txt
	$(GO) run ./cmd/benchgate -tolerance $(FLEET_NS_TOL) -allocslack $(FLEET_ALLOC_SLACK) -compare BENCH_fleet.json < bench.fleet.txt
	$(GO) test -run '^$$' -bench $(DOMAINS_BENCH) $(DOMAINS_FLAGS) ./internal/runner > bench.domains.txt
	$(GO) run ./cmd/benchgate -tolerance $(DOMAINS_NS_TOL) -allocslack $(DOMAINS_ALLOC_SLACK) -minspeedup $(DOMAINS_MIN_SPEEDUP) -compare BENCH_domains.json < bench.domains.txt

clean:
	$(GO) clean ./...
	rm -f bench.fig11.txt bench.sched.txt bench.fleet.txt bench.domains.txt
