GO ?= go

# Benchmark comparison knobs (see bench-baseline / bench-compare).
BENCH ?= BenchmarkFig11FCTvsFlowSize
BENCH_PKG ?= .
BENCH_COUNT ?= 5
BENCH_BASELINE ?= bench.baseline.txt
BENCH_HEAD ?= bench.head.txt
# Allowed relative ns/op regression for bench-gate (allocs/op always
# gates at zero increase).
BENCH_TOL ?= 0.10

.PHONY: check build vet test testdebug race allocgate chaos interop fuzz-short bench bench-sched bench-baseline bench-compare bench-record bench-gate clean

# The full gate CI runs: build + vet + tests (including the
# AllocsPerRun zero-allocation gates in internal/netsim) + the
# sussdebug lifecycle-detector pass + race pass over the
# concurrency-bearing packages.
check: build vet test testdebug race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The sussdebug build tag arms the packet-lifecycle detector
# (double-release and use-after-release panic; the pool sequesters
# instead of recycling). The pooled hot-path packages get a pass with
# it on.
testdebug:
	$(GO) test -tags sussdebug ./internal/netsim ./internal/tcp

# The worker pool and the experiment sweeps built on it are the only
# packages that spawn goroutines; they get a dedicated race pass.
race:
	$(GO) test -race ./internal/runner ./internal/experiments

# Zero-allocation gates, run explicitly and WITHOUT -race: race
# instrumentation inserts allocations of its own, so AllocsPerRun is
# only meaningful on an uninstrumented build. Covers the flight
# recorder (internal/obs), the event/packet arenas (internal/netsim),
# the wire codec and the simulator backend's send/deliver path.
allocgate:
	$(GO) test -run 'Alloc' -v ./internal/obs ./internal/netsim ./internal/wire ./internal/wire/simbackend

# Chaos matrix under -race: every impairment × CC algo × seed must
# complete (or error cleanly) with a balanced loss ledger, and a wedged
# simulation is killed by the per-job wall-clock watchdog instead of
# hanging the suite. Set CHAOS_DUMP=<file> to capture the matrix
# summary (with flight-recorder stall tails) on failure — CI uploads it
# as an artifact.
chaos:
	$(GO) test -race -timeout 300s -v ./internal/chaos

# Wire-backend interop under -race: the same transport over the
# in-memory pipe and the UDP loopback, wall-clock timers, real frames
# between goroutines (including lossy cells recovering by
# retransmission). The timeout is a hang backstop — the lossy tests
# poll with their own deadlines.
interop:
	$(GO) test -race -timeout 180s ./internal/wire/...

# Short fuzz pass over the strict segment decoder: enough iterations
# to catch parser regressions in CI without open-ended fuzzing.
fuzz-short:
	$(GO) test -run '^$$' -fuzz FuzzDecodeSegment -fuzztime 30s ./internal/wire

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# Scheduler microbenchmarks: timer churn (arm/cancel/rearm, the TCP
# hot path) and cross-level cascading. benchstat-friendly: -count 6+
# gives it enough samples for a confidence interval.
bench-sched:
	$(GO) test -run '^$$' -bench 'BenchmarkScheduler(Churn|Cascade)' -benchmem -count $(BENCH_COUNT) ./internal/netsim

# bench-baseline records $(BENCH) in $(BENCH_PKG) on the current tree
# (run it on the base commit); bench-compare reruns it on HEAD and
# diffs the two with benchstat when available. For the scheduler
# microbenchmarks: BENCH='BenchmarkScheduler(Churn|Cascade)'
# BENCH_PKG=./internal/netsim.
bench-baseline:
	$(GO) test -run '^$$' -bench '$(BENCH)' -benchmem -count $(BENCH_COUNT) $(BENCH_PKG) | tee $(BENCH_BASELINE)

bench-compare:
	@test -f $(BENCH_BASELINE) || { \
		echo "missing $(BENCH_BASELINE): check out the base commit and run 'make bench-baseline' first"; exit 1; }
	$(GO) test -run '^$$' -bench '$(BENCH)' -benchmem -count $(BENCH_COUNT) $(BENCH_PKG) | tee $(BENCH_HEAD)
	@if command -v benchstat >/dev/null 2>&1; then \
		benchstat $(BENCH_BASELINE) $(BENCH_HEAD); \
	else \
		echo "benchstat not installed; compare $(BENCH_BASELINE) and $(BENCH_HEAD) by hand:"; \
		grep -h '^Benchmark' $(BENCH_BASELINE) $(BENCH_HEAD); \
	fi

# bench-record refreshes the committed JSON baselines (BENCH_fig11.json,
# BENCH_sched.json); bench-gate reruns the same benchmarks and fails on
# a >10% ns/op regression or ANY allocs/op increase (see cmd/benchgate).
# The fig11 gate runs the single-worker sweep: the parallel variant's
# ns/op and allocs/op wobble with goroutine scheduling, while the
# serial one is a deterministic replay whose alloc count is exact.
# Both gates reduce -count samples to best-of-N, so run them on a quiet
# machine, and re-record deliberately when a change legitimately shifts
# the cost profile.
FIG11_BENCH = 'BenchmarkFig11ParallelVsSequential/workers=1$$'
# benchtime stays at 1x: each sample is one full sweep, so allocs/op
# is an exact count (longer benchtimes amortize setup allocations and
# introduce ±1 rounding jitter); the high -count tightens best-of-N.
FIG11_FLAGS = -benchmem -benchtime 1x -count 12
SCHED_BENCH = 'BenchmarkScheduler(Churn|Cascade)'
SCHED_FLAGS = -benchmem -count 8

bench-record:
	$(GO) test -run '^$$' -bench $(FIG11_BENCH) $(FIG11_FLAGS) . > bench.fig11.txt
	$(GO) run ./cmd/benchgate -record BENCH_fig11.json < bench.fig11.txt
	$(GO) test -run '^$$' -bench $(SCHED_BENCH) $(SCHED_FLAGS) ./internal/netsim > bench.sched.txt
	$(GO) run ./cmd/benchgate -record BENCH_sched.json < bench.sched.txt

bench-gate:
	$(GO) test -run '^$$' -bench $(FIG11_BENCH) $(FIG11_FLAGS) . > bench.fig11.txt
	$(GO) run ./cmd/benchgate -tolerance $(BENCH_TOL) -compare BENCH_fig11.json < bench.fig11.txt
	$(GO) test -run '^$$' -bench $(SCHED_BENCH) $(SCHED_FLAGS) ./internal/netsim > bench.sched.txt
	$(GO) run ./cmd/benchgate -tolerance $(BENCH_TOL) -compare BENCH_sched.json < bench.sched.txt

clean:
	$(GO) clean ./...
	rm -f bench.fig11.txt bench.sched.txt
