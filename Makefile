GO ?= go

.PHONY: check build vet test race bench clean

# The full gate CI runs: build + vet + tests + race pass over the
# concurrency-bearing packages.
check: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The worker pool and the experiment sweeps built on it are the only
# packages that spawn goroutines; they get a dedicated race pass.
race:
	$(GO) test -race ./internal/runner ./internal/experiments

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

clean:
	$(GO) clean ./...
