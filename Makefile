GO ?= go

# Benchmark comparison knobs (see bench-baseline / bench-compare).
BENCH ?= BenchmarkFig11FCTvsFlowSize
BENCH_PKG ?= .
BENCH_COUNT ?= 5
BENCH_BASELINE ?= bench.baseline.txt
BENCH_HEAD ?= bench.head.txt

.PHONY: check build vet test testdebug race allocgate chaos bench bench-sched bench-baseline bench-compare clean

# The full gate CI runs: build + vet + tests (including the
# AllocsPerRun zero-allocation gates in internal/netsim) + the
# sussdebug lifecycle-detector pass + race pass over the
# concurrency-bearing packages.
check: build vet test testdebug race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The sussdebug build tag arms the packet-lifecycle detector
# (double-release and use-after-release panic; the pool sequesters
# instead of recycling). The pooled hot-path packages get a pass with
# it on.
testdebug:
	$(GO) test -tags sussdebug ./internal/netsim ./internal/tcp

# The worker pool and the experiment sweeps built on it are the only
# packages that spawn goroutines; they get a dedicated race pass.
race:
	$(GO) test -race ./internal/runner ./internal/experiments

# Zero-allocation gates, run explicitly and WITHOUT -race: race
# instrumentation inserts allocations of its own, so AllocsPerRun is
# only meaningful on an uninstrumented build. Covers the flight
# recorder (internal/obs) and the event/packet arenas
# (internal/netsim).
allocgate:
	$(GO) test -run 'Alloc' -v ./internal/obs ./internal/netsim

# Chaos matrix under -race: every impairment × CC algo × seed must
# complete (or error cleanly) with a balanced loss ledger, and a wedged
# simulation is killed by the per-job wall-clock watchdog instead of
# hanging the suite. Set CHAOS_DUMP=<file> to capture the matrix
# summary (with flight-recorder stall tails) on failure — CI uploads it
# as an artifact.
chaos:
	$(GO) test -race -timeout 300s -v ./internal/chaos

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# Scheduler microbenchmarks: timer churn (arm/cancel/rearm, the TCP
# hot path) and cross-level cascading. benchstat-friendly: -count 6+
# gives it enough samples for a confidence interval.
bench-sched:
	$(GO) test -run '^$$' -bench 'BenchmarkScheduler(Churn|Cascade)' -benchmem -count $(BENCH_COUNT) ./internal/netsim

# bench-baseline records $(BENCH) in $(BENCH_PKG) on the current tree
# (run it on the base commit); bench-compare reruns it on HEAD and
# diffs the two with benchstat when available. For the scheduler
# microbenchmarks: BENCH='BenchmarkScheduler(Churn|Cascade)'
# BENCH_PKG=./internal/netsim.
bench-baseline:
	$(GO) test -run '^$$' -bench '$(BENCH)' -benchmem -count $(BENCH_COUNT) $(BENCH_PKG) | tee $(BENCH_BASELINE)

bench-compare:
	@test -f $(BENCH_BASELINE) || { \
		echo "missing $(BENCH_BASELINE): check out the base commit and run 'make bench-baseline' first"; exit 1; }
	$(GO) test -run '^$$' -bench '$(BENCH)' -benchmem -count $(BENCH_COUNT) $(BENCH_PKG) | tee $(BENCH_HEAD)
	@if command -v benchstat >/dev/null 2>&1; then \
		benchstat $(BENCH_BASELINE) $(BENCH_HEAD); \
	else \
		echo "benchstat not installed; compare $(BENCH_BASELINE) and $(BENCH_HEAD) by hand:"; \
		grep -h '^Benchmark' $(BENCH_BASELINE) $(BENCH_HEAD); \
	fi

clean:
	$(GO) clean ./...
