package cc

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestMinRTTTracker(t *testing.T) {
	var m MinRTTTracker
	if m.Get() != 0 {
		t.Fatal("zero tracker should report 0")
	}
	if !m.Update(100*time.Millisecond, time.Second) {
		t.Fatal("first sample should lower the minimum")
	}
	if m.Update(150*time.Millisecond, 2*time.Second) {
		t.Fatal("larger sample should not lower the minimum")
	}
	if !m.Update(80*time.Millisecond, 3*time.Second) {
		t.Fatal("smaller sample should lower the minimum")
	}
	if m.Get() != 80*time.Millisecond {
		t.Errorf("min = %v, want 80ms", m.Get())
	}
	if m.SetAt() != 3*time.Second {
		t.Errorf("setAt = %v, want 3s", m.SetAt())
	}
	if m.Update(0, 4*time.Second) {
		t.Fatal("zero sample must be ignored")
	}
}

func TestWindowedMaxBasics(t *testing.T) {
	w := NewWindowedMax(10)
	w.Update(100, 1)
	if w.Get() != 100 {
		t.Fatalf("Get = %v, want 100", w.Get())
	}
	w.Update(50, 2) // lower sample keeps the max
	if w.Get() != 100 {
		t.Fatalf("Get = %v, want 100", w.Get())
	}
	w.Update(200, 3) // higher sample replaces immediately
	if w.Get() != 200 {
		t.Fatalf("Get = %v, want 200", w.Get())
	}
}

func TestWindowedMaxExpiry(t *testing.T) {
	w := NewWindowedMax(10)
	w.Update(200, 0)
	for tick := uint64(1); tick <= 25; tick++ {
		w.Update(50, tick)
	}
	if w.Get() != 50 {
		t.Fatalf("stale max survived: Get = %v, want 50", w.Get())
	}
}

// Property: the filter never reports a value larger than the largest
// sample seen in the window, and never smaller than the most recent
// sample.
func TestWindowedMaxProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w := NewWindowedMax(10)
		var history []maxSample
		for tick := uint64(0); tick < 100; tick++ {
			v := rng.Float64()*100 + 1
			w.Update(v, tick)
			history = append(history, maxSample{v, tick})

			// Max over the full history is an upper bound; the latest
			// sample is a lower bound.
			var hi float64
			for _, s := range history {
				if s.v > hi {
					hi = s.v
				}
			}
			got := w.Get()
			if got > hi+1e-9 || got < v-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestWindowedMinRTT(t *testing.T) {
	w := NewWindowedMinRTT(10 * time.Second)
	w.Update(100*time.Millisecond, 0)
	w.Update(200*time.Millisecond, time.Second)
	if w.Get() != 100*time.Millisecond {
		t.Fatalf("min = %v, want 100ms", w.Get())
	}
	if w.Expired(5 * time.Second) {
		t.Fatal("not expired at 5s")
	}
	if !w.Expired(11 * time.Second) {
		t.Fatal("should be expired at 11s")
	}
	// After expiry, the next sample is adopted even if larger.
	w.Update(300*time.Millisecond, 12*time.Second)
	if w.Get() != 300*time.Millisecond {
		t.Fatalf("post-expiry min = %v, want 300ms", w.Get())
	}
}

func TestWindowedMinRTTIgnoresZero(t *testing.T) {
	w := NewWindowedMinRTT(time.Second)
	w.Update(0, 0)
	if w.Get() != 0 {
		t.Fatal("zero sample should be ignored")
	}
}
