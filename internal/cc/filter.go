package cc

import "time"

// WindowedMax tracks the maximum of a series over a sliding window of
// "rounds" (or any monotonic tick), keeping the best three estimates
// the way BBR's windowed max filter (and quic-go's) does, so the
// estimate degrades gracefully as old samples age out.
type WindowedMax struct {
	window uint64 // length in ticks
	best   [3]maxSample
}

type maxSample struct {
	v float64
	t uint64
}

// NewWindowedMax creates a filter with the given window length in
// ticks (e.g. 10 round trips for BBR's bandwidth filter).
func NewWindowedMax(windowTicks uint64) *WindowedMax {
	return &WindowedMax{window: windowTicks}
}

// Update folds in sample v at tick t (t must be non-decreasing).
func (w *WindowedMax) Update(v float64, t uint64) {
	if w.best[0].v == 0 || v >= w.best[0].v || t-w.best[2].t > w.window {
		w.best[0] = maxSample{v, t}
		w.best[1] = w.best[0]
		w.best[2] = w.best[0]
		return
	}
	if v >= w.best[1].v {
		w.best[1] = maxSample{v, t}
		w.best[2] = w.best[1]
	} else if v >= w.best[2].v {
		w.best[2] = maxSample{v, t}
	}
	// Expire stale estimates.
	if t-w.best[0].t > w.window {
		w.best[0] = w.best[1]
		w.best[1] = w.best[2]
		w.best[2] = maxSample{v, t}
		if t-w.best[0].t > w.window {
			w.best[0] = w.best[1]
			w.best[1] = w.best[2]
		}
		return
	}
	if w.best[1].t == w.best[0].t && t-w.best[0].t > w.window/4 {
		w.best[1] = maxSample{v, t}
		w.best[2] = w.best[1]
		return
	}
	if w.best[2].t == w.best[1].t && t-w.best[1].t > w.window/2 {
		w.best[2] = maxSample{v, t}
	}
}

// Get returns the current windowed maximum (0 before any sample).
func (w *WindowedMax) Get() float64 { return w.best[0].v }

// WindowedMinRTT tracks the minimum RTT over a sliding wall-clock
// window (BBR uses 10 s).
type WindowedMinRTT struct {
	window time.Duration
	min    time.Duration
	setAt  time.Duration
}

// NewWindowedMinRTT creates the filter.
func NewWindowedMinRTT(window time.Duration) *WindowedMinRTT {
	return &WindowedMinRTT{window: window}
}

// Update folds in a sample at virtual time now.
func (w *WindowedMinRTT) Update(sample, now time.Duration) {
	if sample <= 0 {
		return
	}
	if w.min == 0 || sample <= w.min || now-w.setAt > w.window {
		w.min = sample
		w.setAt = now
	}
}

// Get returns the windowed minimum (0 before any sample).
func (w *WindowedMinRTT) Get() time.Duration { return w.min }

// Expired reports whether the current estimate is older than the
// window at time now.
func (w *WindowedMinRTT) Expired(now time.Duration) bool {
	return w.min != 0 && now-w.setAt > w.window
}
