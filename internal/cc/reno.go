package cc

import (
	"math"
	"time"
)

// RenoOptions configures the classic AIMD controller.
type RenoOptions struct {
	// IW is the initial window in segments (default 10, RFC 6928 —
	// matching the other controllers so cross-algorithm comparisons
	// isolate the growth policy, not the first flight).
	IW int
}

// DefaultRenoOptions returns the defaults.
func DefaultRenoOptions() RenoOptions { return RenoOptions{IW: 10} }

// Reno is classic NewReno-style AIMD (RFC 5681): slow start doubles
// the window each round, congestion avoidance adds one segment per
// round trip, fast retransmit halves, a timeout collapses to one
// segment. It is the yardstick baseline — every other controller in
// the tree (CUBIC, SUSS, BBR) is positioned against exactly this
// growth curve, so the experiments matrix and the chaos catalog carry
// it to make "how much faster than stock AIMD" a measured number
// instead of folklore.
type Reno struct {
	env Env
	opt RenoOptions

	cwnd     float64 // segments
	ssthresh float64 // segments

	// undo snapshots the pre-RTO window for Undoer (F-RTO/Eifel).
	undoValid              bool
	undoCwnd, undoSsthresh float64
}

// NewReno creates the controller bound to the transport environment.
func NewReno(env Env, opt RenoOptions) *Reno {
	if opt.IW <= 0 {
		opt.IW = 10
	}
	return &Reno{
		env:      env,
		opt:      opt,
		cwnd:     float64(opt.IW),
		ssthresh: math.MaxFloat64,
	}
}

// Name implements Controller.
func (r *Reno) Name() string { return "reno" }

// CwndBytes implements Controller.
func (r *Reno) CwndBytes() int64 { return int64(r.cwnd * float64(r.env.MSS())) }

// CwndSegments returns the window in segments (tests).
func (r *Reno) CwndSegments() float64 { return r.cwnd }

// SsthreshSegments returns the slow-start threshold in segments.
func (r *Reno) SsthreshSegments() float64 { return r.ssthresh }

// PacingRate implements Controller: Reno is purely ACK-clocked.
func (r *Reno) PacingRate() float64 { return 0 }

// InSlowStart implements Controller.
func (r *Reno) InSlowStart() bool { return r.cwnd < r.ssthresh }

// OnPacketSent implements Controller.
func (r *Reno) OnPacketSent(now time.Duration, size int, seq int64, retrans bool) {}

// OnAck implements Controller: +1 segment per acked segment in slow
// start, +1 segment per window of ACKs in congestion avoidance
// (RFC 5681 §3.1, the byte-counting form). Growth freezes during fast
// recovery, matching the transport's one-loss-event-per-round
// contract.
func (r *Reno) OnAck(ev AckEvent) {
	if ev.InRecovery {
		return
	}
	acked := float64(ev.AckedBytes) / float64(r.env.MSS())
	if r.InSlowStart() {
		r.cwnd += acked
		if r.cwnd > r.ssthresh {
			r.cwnd = r.ssthresh // no overshoot past the threshold
		}
		return
	}
	r.cwnd += acked / r.cwnd
}

// OnLoss implements Controller: multiplicative decrease to half the
// flight, floor of two segments.
func (r *Reno) OnLoss(ev LossEvent) {
	r.undoValid = false // real congestion: the pre-RTO snapshot is stale
	half := float64(ev.Inflight) / float64(r.env.MSS()) / 2
	if half < 2 {
		half = 2
	}
	r.ssthresh = half
	r.cwnd = half
}

// OnRTO implements Controller: loss window of one segment, slow start
// back toward half the pre-timeout window.
func (r *Reno) OnRTO(now time.Duration) {
	r.undoValid = true
	r.undoCwnd, r.undoSsthresh = r.cwnd, r.ssthresh
	half := r.cwnd / 2
	if half < 2 {
		half = 2
	}
	r.ssthresh = half
	r.cwnd = 1
}

// UndoRTO implements Undoer: restore the snapshot taken by the most
// recent OnRTO. No-op once the window closed (an OnLoss since, or
// already undone).
func (r *Reno) UndoRTO(now time.Duration) {
	if !r.undoValid {
		return
	}
	r.undoValid = false
	r.cwnd, r.undoCwnd = r.undoCwnd, 0
	r.ssthresh, r.undoSsthresh = r.undoSsthresh, 0
}
