package cc

import (
	"testing"
	"time"
)

// renoEnv is a minimal Env for driving the controller directly.
type renoEnv struct{}

func (renoEnv) Now() time.Duration                   { return 0 }
func (renoEnv) Schedule(time.Duration, func()) Timer { return nil }
func (renoEnv) Kick()                                {}
func (renoEnv) MSS() int                             { return 1448 }

func ack(bytes int, inRecovery bool) AckEvent {
	return AckEvent{AckedBytes: bytes, InRecovery: inRecovery}
}

func TestRenoSlowStartDoubles(t *testing.T) {
	r := NewReno(renoEnv{}, DefaultRenoOptions())
	if !r.InSlowStart() || r.CwndSegments() != 10 {
		t.Fatalf("initial state: ss=%v cwnd=%v", r.InSlowStart(), r.CwndSegments())
	}
	// Acking a full window in slow start doubles it.
	for i := 0; i < 10; i++ {
		r.OnAck(ack(1448, false))
	}
	if got := r.CwndSegments(); got != 20 {
		t.Fatalf("cwnd after one slow-start round = %v, want 20", got)
	}
}

func TestRenoCongestionAvoidanceLinear(t *testing.T) {
	r := NewReno(renoEnv{}, DefaultRenoOptions())
	r.ssthresh = 10 // start in CA at cwnd 10
	if r.InSlowStart() {
		t.Fatal("should be in congestion avoidance")
	}
	// One full window of ACKs adds ~one segment.
	for i := 0; i < 10; i++ {
		r.OnAck(ack(1448, false))
	}
	if got := r.CwndSegments(); got < 10.9 || got > 11.1 {
		t.Fatalf("cwnd after one CA round = %v, want ≈11", got)
	}
}

func TestRenoSlowStartCapsAtSsthresh(t *testing.T) {
	r := NewReno(renoEnv{}, DefaultRenoOptions())
	r.ssthresh = 12
	r.OnAck(ack(10*1448, false)) // would jump to 20 uncapped
	if got := r.CwndSegments(); got != 12 {
		t.Fatalf("cwnd = %v, want capped at ssthresh 12", got)
	}
}

func TestRenoHalvesOnLoss(t *testing.T) {
	r := NewReno(renoEnv{}, DefaultRenoOptions())
	r.cwnd, r.ssthresh = 40, 30
	r.OnLoss(LossEvent{Inflight: 40 * 1448})
	if r.CwndSegments() != 20 || r.SsthreshSegments() != 20 {
		t.Fatalf("after loss: cwnd=%v ssthresh=%v, want 20/20", r.CwndSegments(), r.SsthreshSegments())
	}
	if r.InSlowStart() {
		t.Fatal("halving must land in congestion avoidance")
	}
	// Floor at two segments.
	r.OnLoss(LossEvent{Inflight: 1448})
	if r.CwndSegments() != 2 {
		t.Fatalf("cwnd floor = %v, want 2", r.CwndSegments())
	}
}

func TestRenoRecoveryFreezesGrowth(t *testing.T) {
	r := NewReno(renoEnv{}, DefaultRenoOptions())
	before := r.CwndSegments()
	r.OnAck(ack(5*1448, true))
	if r.CwndSegments() != before {
		t.Fatal("window grew during recovery")
	}
}

func TestRenoRTOAndUndo(t *testing.T) {
	r := NewReno(renoEnv{}, DefaultRenoOptions())
	r.cwnd, r.ssthresh = 40, 30
	r.OnRTO(0)
	if r.CwndSegments() != 1 || r.SsthreshSegments() != 20 {
		t.Fatalf("after RTO: cwnd=%v ssthresh=%v, want 1/20", r.CwndSegments(), r.SsthreshSegments())
	}
	r.UndoRTO(0)
	if r.CwndSegments() != 40 || r.SsthreshSegments() != 30 {
		t.Fatalf("undo did not restore: cwnd=%v ssthresh=%v", r.CwndSegments(), r.SsthreshSegments())
	}
	// The undo window is closed now.
	r.UndoRTO(0)
	if r.CwndSegments() != 40 {
		t.Fatal("double undo changed state")
	}

	// A real loss after an RTO invalidates the snapshot.
	r.OnRTO(0)
	r.OnLoss(LossEvent{Inflight: 4 * 1448})
	got := r.CwndSegments()
	r.UndoRTO(0)
	if r.CwndSegments() != got {
		t.Fatal("undo fired after a real loss closed the window")
	}
}

// Interface compliance.
var (
	_ Controller = (*Reno)(nil)
	_ Undoer     = (*Reno)(nil)
)
