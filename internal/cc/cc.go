// Package cc defines the congestion-control hook interface between the
// transport sender (internal/tcp) and pluggable congestion controllers
// (internal/cubic, internal/core, internal/bbr), plus the windowed
// min/max filters those controllers share.
//
// The interface is modeled on the Linux tcp_congestion_ops / quic-go
// SendAlgorithm hooks: the transport reports sends, ACKs and losses;
// the controller answers with a congestion window and an optional
// pacing rate.
package cc

import "time"

// Timer is a cancellable scheduled event. netsim.Timer satisfies it.
type Timer interface {
	// Stop cancels the timer, reporting whether it prevented the fire.
	Stop() bool
	// Active reports whether the timer is still pending.
	Active() bool
}

// Env is the runtime the transport lends to a controller: a clock, a
// scheduler for controller-driven events (pacing ticks), and a Kick to
// make the sender re-evaluate transmission opportunities after the
// controller changes state asynchronously.
type Env interface {
	Now() time.Duration
	Schedule(d time.Duration, fn func()) Timer
	// Kick asks the sender to try sending now (e.g. after the
	// controller opened the window outside an ACK callback).
	Kick()
	// MSS returns the maximum segment payload size in bytes.
	MSS() int
}

// AckEvent carries everything a controller may need when an ACK
// advances the flow.
type AckEvent struct {
	Now time.Duration
	// AckedBytes is the volume newly acknowledged (cumulative + SACK)
	// by this ACK.
	AckedBytes int
	// CumAck is the cumulative acknowledgment point (bytes).
	CumAck int64
	// SndNxt is the highest sequence the sender has sent so far.
	SndNxt int64
	// RTT is this ACK's round-trip sample; zero when the ACK carried
	// no usable sample (e.g. for a retransmitted segment).
	RTT time.Duration
	// Inflight is bytes outstanding after processing this ACK.
	Inflight int64
	// Delivered is the total bytes delivered so far (monotonic).
	Delivered int64
	// AppLimited reports that the sender had no data waiting when the
	// acked segment was sent, so rate samples underestimate capacity.
	AppLimited bool
	// InRecovery reports that the transport is in fast-retransmit loss
	// recovery. Loss-based controllers freeze window growth; model-based
	// controllers (BBR) may keep estimating bandwidth.
	InRecovery bool
	// BW is a delivery-rate sample in bits/sec for a segment newly
	// acknowledged by this ACK — (delivered_now − delivered_at_send) /
	// flight_time, never from retransmitted segments. Zero when the
	// ACK produced no usable sample.
	BW float64
}

// LossEvent describes a fast-retransmit congestion event (not an RTO).
type LossEvent struct {
	Now time.Duration
	// Inflight is bytes outstanding when the loss was detected.
	Inflight int64
	// LostBytes is the volume newly marked lost.
	LostBytes int
	// SndNxt is the highest sequence sent.
	SndNxt int64
}

// Controller is a pluggable congestion-control algorithm.
type Controller interface {
	// Name identifies the algorithm in traces ("cubic", "cubic+suss",
	// "bbr", "bbr2").
	Name() string
	// OnPacketSent is invoked for every data transmission.
	OnPacketSent(now time.Duration, size int, seq int64, retrans bool)
	// OnAck is invoked for every ACK that makes progress.
	OnAck(ev AckEvent)
	// OnLoss is invoked when fast retransmit detects loss; the
	// transport guarantees at most one call per round trip.
	OnLoss(ev LossEvent)
	// OnRTO is invoked when the retransmission timer fires.
	OnRTO(now time.Duration)
	// CwndBytes returns the congestion window in bytes.
	CwndBytes() int64
	// PacingRate returns the send pacing rate in bits/sec; zero means
	// no pacing (pure window/ACK-clocked release).
	PacingRate() float64
	// InSlowStart reports whether the algorithm is in its startup
	// phase (used for tracing and experiment cut-offs).
	InSlowStart() bool
}

// Undoer is implemented by controllers that can revert the state
// collapse of their most recent OnRTO when the transport proves the
// timeout spurious (F-RTO / Eifel detection). The undo window closes
// at the next OnLoss or OnRTO: controllers only keep one snapshot, and
// a real congestion signal after the timeout makes the pre-RTO state
// stale. UndoRTO after the window closes is a no-op.
type Undoer interface {
	UndoRTO(now time.Duration)
}

// MinRTTTracker maintains the connection-lifetime minimum RTT, which
// HyStart, SUSS and BBR's ProbeRTT all key off.
type MinRTTTracker struct {
	min   time.Duration
	setAt time.Duration
}

// Update folds in a sample, returning true if the minimum decreased
// (or was first set).
func (m *MinRTTTracker) Update(sample, now time.Duration) bool {
	if sample <= 0 {
		return false
	}
	if m.min == 0 || sample < m.min {
		m.min = sample
		m.setAt = now
		return true
	}
	return false
}

// Get returns the current minimum (zero if no samples yet).
func (m *MinRTTTracker) Get() time.Duration { return m.min }

// SetAt returns when the minimum was last lowered.
func (m *MinRTTTracker) SetAt() time.Duration { return m.setAt }
