package service

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

// The durable half of the content-addressed cache: an append-only
// record log. Put appends one framed record per new cell; New replays
// the whole file at startup. Because every record carries its own
// length and SHA-256 checksum, a daemon killed mid-write (kill -9,
// OOM, power loss short of losing the page cache) costs at most the
// records that never reached the file: replay stops at the first torn
// or corrupt record, truncates the tail there, and reports what was
// dropped. Everything before the truncation point is served as cache
// hits with zero simulator runs.
//
// File layout:
//
//	header  "sussdcache/1\n"
//	record  u32(BE) payload length
//	        [32]byte sha256(payload)
//	        payload = u16(BE) key length | key | value
//
// Records are immutable and never rewritten (a key is a hash of
// everything that determines the value), so append is the only write
// path and replay order is irrelevant beyond last-write-wins.

const (
	cacheMagic = "sussdcache/1\n"
	// maxRecordLen bounds one record's payload: a fleet shard cell is
	// the largest record (per-flow JSON), well under this.
	maxRecordLen = 1 << 26
	frameLen     = 4 + sha256.Size
)

// RecoveryInfo reports what replaying a cache file found at startup.
type RecoveryInfo struct {
	// Entries is the number of records replayed into the cache.
	Entries int `json:"entries"`
	// Truncated is set when a torn or corrupt tail was cut off.
	Truncated bool `json:"truncated,omitempty"`
	// DroppedBytes counts the truncated tail.
	DroppedBytes int64 `json:"dropped_bytes,omitempty"`
	// Reason says why truncation happened ("" when the file was clean).
	Reason string `json:"reason,omitempty"`
}

func (ri RecoveryInfo) String() string {
	if !ri.Truncated {
		return fmt.Sprintf("%d record(s) replayed, file clean", ri.Entries)
	}
	return fmt.Sprintf("%d record(s) replayed, %d tail byte(s) dropped (%s)",
		ri.Entries, ri.DroppedBytes, ri.Reason)
}

// cacheLog is an open cache file positioned for appends. Callers
// serialize access (the Cache's mutex).
type cacheLog struct {
	f   *os.File
	buf []byte // reusable record scratch
}

// openCacheLog opens (or creates) the log at path, replays every
// intact record into entries, and truncates the file at the first bad
// record so subsequent appends extend a known-good prefix.
func openCacheLog(path string, entries map[string][]byte) (*cacheLog, RecoveryInfo, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, RecoveryInfo{}, err
	}
	info, good, err := replay(f, entries)
	if err != nil {
		f.Close()
		return nil, info, err
	}
	if info.Truncated {
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, info, fmt.Errorf("truncating corrupt tail of %s: %w", path, err)
		}
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, info, err
	}
	if good == 0 {
		if _, err := f.WriteString(cacheMagic); err != nil {
			f.Close()
			return nil, info, err
		}
	}
	return &cacheLog{f: f}, info, nil
}

// replay scans the file and fills entries, returning the offset of the
// last intact record's end. It never errors on corruption — that is
// reported in RecoveryInfo and handled by truncation — only on I/O.
func replay(f *os.File, entries map[string][]byte) (RecoveryInfo, int64, error) {
	var info RecoveryInfo
	st, err := f.Stat()
	if err != nil {
		return info, 0, err
	}
	size := st.Size()
	if size == 0 {
		return info, 0, nil
	}
	r := bufio.NewReaderSize(f, 1<<20)
	hdr := make([]byte, len(cacheMagic))
	if _, err := io.ReadFull(r, hdr); err != nil {
		// Shorter than the header: a daemon died during file creation.
		info.Truncated, info.DroppedBytes, info.Reason = true, size, "torn header"
		return info, 0, nil
	}
	if string(hdr) != cacheMagic {
		// A full-length header that is not ours is somebody else's file;
		// refusing beats silently destroying it.
		return info, 0, fmt.Errorf("cache file has bad magic %q (not a sussd cache)", hdr)
	}
	good := int64(len(cacheMagic))
	frame := make([]byte, frameLen)
	for {
		if _, err := io.ReadFull(r, frame); err != nil {
			if err != io.EOF {
				info.Truncated, info.Reason = true, "torn record frame"
			}
			break
		}
		n := binary.BigEndian.Uint32(frame[:4])
		if n < 2 || n > maxRecordLen {
			info.Truncated, info.Reason = true, fmt.Sprintf("implausible record length %d", n)
			break
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			info.Truncated, info.Reason = true, "torn record payload"
			break
		}
		sum := sha256.Sum256(payload)
		if !bytes.Equal(sum[:], frame[4:]) {
			info.Truncated, info.Reason = true, "record checksum mismatch"
			break
		}
		klen := int(binary.BigEndian.Uint16(payload[:2]))
		if 2+klen > len(payload) {
			info.Truncated, info.Reason = true, "record key overruns payload"
			break
		}
		entries[string(payload[2:2+klen])] = payload[2+klen:]
		good += int64(frameLen) + int64(n)
		info.Entries++
	}
	if info.Truncated {
		info.DroppedBytes = size - good
	}
	return info, good, nil
}

// append writes one record in a single Write call, so a crash leaves
// either a complete record or a torn tail the next replay truncates.
func (l *cacheLog) append(key string, val []byte) error {
	n := 2 + len(key) + len(val)
	if n > maxRecordLen {
		return fmt.Errorf("cache record for %s is %d bytes, over the %d limit", key, n, maxRecordLen)
	}
	need := frameLen + n
	if cap(l.buf) < need {
		l.buf = make([]byte, 0, need*2)
	}
	b := l.buf[:0]
	b = binary.BigEndian.AppendUint32(b, uint32(n))
	b = append(b, make([]byte, sha256.Size)...) // checksum placeholder
	b = binary.BigEndian.AppendUint16(b, uint16(len(key)))
	b = append(b, key...)
	b = append(b, val...)
	sum := sha256.Sum256(b[frameLen:])
	copy(b[4:frameLen], sum[:])
	l.buf = b
	_, err := l.f.Write(b)
	return err
}

func (l *cacheLog) Close() error {
	if l == nil {
		return nil
	}
	return l.f.Close()
}
