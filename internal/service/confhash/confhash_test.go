package confhash

import (
	"strings"
	"testing"
	"time"

	"suss/internal/core"
	"suss/internal/experiments"
	"suss/internal/netem"
	"suss/internal/runner"
	"suss/internal/scenarios"
	"suss/internal/tcp"
	"suss/internal/workload"
)

func mustJobKey(t *testing.T, j runner.Job) string {
	t.Helper()
	k, err := JobKey(j)
	if err != nil {
		t.Fatalf("JobKey(%+v): %v", j, err)
	}
	return k
}

func mustFleetKey(t *testing.T, j runner.FleetJob) string {
	t.Helper()
	k, err := FleetKey(j)
	if err != nil {
		t.Fatalf("FleetKey: %v", err)
	}
	return k
}

func baseJob() runner.Job {
	return runner.Job{
		Scenario: scenarios.New(scenarios.GoogleTokyo, netem.LTE4G, 1),
		Algo:     runner.Suss,
		Size:     1 << 20,
	}
}

// The cache-correctness heart: a config relying on defaults and one
// spelling every default out must be the same key, field by field.
func TestJobKeyDefaultedEqualsExplicit(t *testing.T) {
	short := baseJob()
	long := baseJob()
	long.Backend = "sim"
	long.Horizon = runner.DefaultHorizon
	cfg := tcp.DefaultConfig()
	long.Transport = &cfg
	opt := core.DefaultOptions()
	long.SussOpt = &opt

	if got, want := mustJobKey(t, long), mustJobKey(t, short); got != want {
		t.Errorf("explicit defaults hash differently:\n defaulted %s\n explicit  %s", want, got)
	}
}

// Execution knobs the determinism contract covers must not key the
// cache: worker/domain parallelism and the watchdog produce identical
// records.
func TestJobKeyIgnoresExecutionKnobs(t *testing.T) {
	j := baseJob()
	base := mustJobKey(t, j)

	j.Domains = 8
	if mustJobKey(t, j) != base {
		t.Error("Domains changed the key: parallel domains are byte-identical by contract")
	}
	j.Domains = 0

	// WallLimit folds into Observe: a guarded job is an observed job.
	j.WallLimit = time.Minute
	withWall := mustJobKey(t, j)
	j.WallLimit = 0
	j.Observe = true
	if withWall != mustJobKey(t, j) {
		t.Error("WallLimit>0 must hash like Observe=true (the runner attaches the recorder for both)")
	}
}

func TestJobKeySemanticFieldsChangeKey(t *testing.T) {
	base := mustJobKey(t, baseJob())
	mutate := []struct {
		name string
		fn   func(*runner.Job)
	}{
		{"algo", func(j *runner.Job) { j.Algo = runner.Cubic }},
		{"size", func(j *runner.Job) { j.Size = 2 << 20 }},
		{"iter", func(j *runner.Job) { j.Iter = 1 }},
		{"seed", func(j *runner.Job) { j.Scenario.Seed++ }},
		{"rtt", func(j *runner.Job) { j.Scenario.RTT += time.Millisecond }},
		{"horizon", func(j *runner.Job) { j.Horizon = time.Minute }},
		{"observe", func(j *runner.Job) { j.Observe = true }},
		{"kmax", func(j *runner.Job) {
			opt := core.DefaultOptions()
			opt.Kmax = 3
			j.SussOpt = &opt
		}},
		{"transport", func(j *runner.Job) {
			cfg := tcp.DefaultConfig()
			cfg.FRTO = true
			j.Transport = &cfg
		}},
	}
	for _, m := range mutate {
		j := baseJob()
		m.fn(&j)
		if mustJobKey(t, j) == base {
			t.Errorf("%s: semantic change did not change the key", m.name)
		}
	}
}

// SussOpt only feeds the controller when Algo is Suss; for every other
// algorithm it must not key the cache.
func TestJobKeySussOptIgnoredForNonSuss(t *testing.T) {
	j := baseJob()
	j.Algo = runner.BBR
	base := mustJobKey(t, j)
	opt := core.DefaultOptions()
	opt.Kmax = 4
	j.SussOpt = &opt
	if mustJobKey(t, j) != base {
		t.Error("SussOpt keyed a non-Suss job the runner ignores it for")
	}
}

func TestJobKeyRejectsUncacheable(t *testing.T) {
	j := baseJob()
	j.Impair = func(runner.ChaosEnv) {}
	if _, err := JobKey(j); err == nil {
		t.Error("Impair hook accepted: arbitrary code is not content-addressable")
	}
	j = baseJob()
	j.Backend = "pipe"
	if _, err := JobKey(j); err == nil || !strings.Contains(err.Error(), "pipe") {
		t.Errorf("pipe backend accepted (err=%v): wall-clock results must not be cached", err)
	}
}

func baseFleetJob() runner.FleetJob {
	fc := experiments.DefaultFleetConfig(1)
	jobs := experiments.FleetJobs(fc)
	return jobs[0]
}

func TestFleetKeyDefaultedEqualsExplicit(t *testing.T) {
	short := baseFleetJob()
	short.Pop.Mix = nil // rely on workload.Shard's default
	short.Pop.Arrivals = nil
	short.Horizon = 0

	long := short
	long.Pop.Mix = workload.DefaultMix()
	long.Pop.Arrivals = workload.PoissonArrivals{Rate: 100}
	long.Horizon = runner.DefaultHorizon
	cfg := tcp.DefaultConfig()
	long.Transport = &cfg

	if got, want := mustFleetKey(t, long), mustFleetKey(t, short); got != want {
		t.Errorf("explicit fleet defaults hash differently:\n defaulted %s\n explicit  %s", want, got)
	}
}

func TestFleetKeySemanticFieldsChangeKey(t *testing.T) {
	base := mustFleetKey(t, baseFleetJob())
	mutate := []struct {
		name string
		fn   func(*runner.FleetJob)
	}{
		{"shard", func(j *runner.FleetJob) { j.Shard = 1 }},
		{"shards", func(j *runner.FleetJob) { j.Shards++ }},
		{"algo", func(j *runner.FleetJob) { j.Algo = runner.Suss }},
		{"flows", func(j *runner.FleetJob) { j.Pop.Flows++ }},
		{"seed", func(j *runner.FleetJob) { j.Pop.Seed++ }},
		{"rate", func(j *runner.FleetJob) { j.Pop.Arrivals = workload.PoissonArrivals{Rate: 42} }},
		{"tree", func(j *runner.FleetJob) { j.Fleet.HostsPerGroup++ }},
		{"mix", func(j *runner.FleetJob) { j.Pop.Mix = workload.DefaultMix() }}, // base uses SmokeMix
	}
	for _, m := range mutate {
		j := baseFleetJob()
		m.fn(&j)
		if mustFleetKey(t, j) == base {
			t.Errorf("%s: semantic change did not change the key", m.name)
		}
	}
}

// The arrival process's concrete type is part of the identity even when
// the rendered fields could collide.
func TestFleetKeyArrivalTypeTagged(t *testing.T) {
	j := baseFleetJob()
	j.Pop.Arrivals = workload.PoissonArrivals{Rate: 100}
	poisson := mustFleetKey(t, j)
	j.Pop.Arrivals = workload.LognormalArrivals{Mu: 100} // same leading float
	if mustFleetKey(t, j) == poisson {
		t.Error("different arrival process types collided")
	}
}

// Canonical must not depend on how a value was reached: pointer vs
// value, and map iteration order.
func TestCanonicalStability(t *testing.T) {
	type inner struct{ B, A int }
	v := inner{A: 1, B: 2}
	c1, err := Canonical(v)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := Canonical(&v)
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Errorf("pointer changed rendering: %q vs %q", c1, c2)
	}
	if c1 != "{A:1,B:2}" {
		t.Errorf("fields not sorted by name: %q", c1)
	}

	m := map[string]int{"z": 26, "a": 1, "m": 13}
	want := `{"a":1,"m":13,"z":26}`
	for i := 0; i < 20; i++ { // map order is randomized per iteration
		got, err := Canonical(m)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("map rendering unstable: %q", got)
		}
	}

	if _, err := Canonical(struct{ F func() }{F: func() {}}); err == nil {
		t.Error("non-nil func rendered canonically")
	}
}
