// Package confhash computes canonical, content-addressed keys for
// experiment job configurations. The experiment service caches results
// under these keys, so the contract is semantic identity: two configs
// that would produce byte-identical simulation results must hash
// identically, and any config difference that could change a result
// must change the hash.
//
// Two mechanisms deliver that:
//
//   - Canonicalization: a config is rendered into a deterministic
//     textual form by reflection — struct fields sorted by name, maps
//     sorted by key, pointers dereferenced (nil renders as null),
//     interface values tagged with their concrete type, floats in
//     shortest round-trip form. The rendering depends only on field
//     names and values, never on declaration order or on how the
//     caller spelled the literal.
//
//   - Normalization: before hashing, every defaulted field is replaced
//     by the value the runner would actually use (zero Horizon becomes
//     runner.DefaultHorizon, a nil Transport becomes tcp.DefaultConfig,
//     an empty population mix becomes workload.DefaultMix, …), so a
//     config relying on defaults and one spelling them out are the same
//     key. Execution-only knobs that the determinism contract proves
//     cannot change results — Domains, the worker pool — are excluded.
//
// Configurations whose outcome is not a pure function of the config are
// rejected rather than mis-cached: a non-nil Impair hook (arbitrary
// code) and the wall-clock "pipe" backend are not hashable.
package confhash

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"reflect"
	"sort"
	"strconv"
	"strings"

	"suss/internal/core"
	"suss/internal/runner"
	"suss/internal/tcp"
	"suss/internal/workload"
)

// Canonical renders v into the deterministic textual form described in
// the package comment. It errors on values that cannot be canonically
// rendered: non-nil funcs, channels, unsafe pointers.
func Canonical(v any) (string, error) {
	var b strings.Builder
	if err := render(&b, reflect.ValueOf(v)); err != nil {
		return "", err
	}
	return b.String(), nil
}

// Sum returns the hex SHA-256 of Canonical(v).
func Sum(v any) (string, error) {
	c, err := Canonical(v)
	if err != nil {
		return "", err
	}
	h := sha256.Sum256([]byte(c))
	return hex.EncodeToString(h[:]), nil
}

func render(b *strings.Builder, v reflect.Value) error {
	if !v.IsValid() {
		b.WriteString("null")
		return nil
	}
	switch v.Kind() {
	case reflect.Pointer:
		if v.IsNil() {
			b.WriteString("null")
			return nil
		}
		return render(b, v.Elem())
	case reflect.Interface:
		if v.IsNil() {
			b.WriteString("null")
			return nil
		}
		// The concrete type is part of the identity: two arrival
		// processes with coincidentally equal field renderings must not
		// collide.
		b.WriteByte('<')
		b.WriteString(v.Elem().Type().String())
		b.WriteByte('>')
		return render(b, v.Elem())
	case reflect.Struct:
		t := v.Type()
		names := make([]string, 0, t.NumField())
		byName := make(map[string]reflect.Value, t.NumField())
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if f.PkgPath != "" { // unexported: not part of a config's identity
				continue
			}
			names = append(names, f.Name)
			byName[f.Name] = v.Field(i)
		}
		sort.Strings(names)
		b.WriteByte('{')
		for i, n := range names {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(n)
			b.WriteByte(':')
			if err := render(b, byName[n]); err != nil {
				return fmt.Errorf("%s.%s: %w", t, n, err)
			}
		}
		b.WriteByte('}')
		return nil
	case reflect.Map:
		keys := v.MapKeys()
		type kv struct{ k, val string }
		ents := make([]kv, 0, len(keys))
		for _, k := range keys {
			var kb, vb strings.Builder
			if err := render(&kb, k); err != nil {
				return err
			}
			if err := render(&vb, v.MapIndex(k)); err != nil {
				return err
			}
			ents = append(ents, kv{kb.String(), vb.String()})
		}
		sort.Slice(ents, func(i, j int) bool { return ents[i].k < ents[j].k })
		b.WriteByte('{')
		for i, e := range ents {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(e.k)
			b.WriteByte(':')
			b.WriteString(e.val)
		}
		b.WriteByte('}')
		return nil
	case reflect.Slice, reflect.Array:
		// A nil slice and an empty one render identically: both mean
		// "nothing here", and normalization decides what that defaults to.
		b.WriteByte('[')
		for i := 0; i < v.Len(); i++ {
			if i > 0 {
				b.WriteByte(',')
			}
			if err := render(b, v.Index(i)); err != nil {
				return err
			}
		}
		b.WriteByte(']')
		return nil
	case reflect.String:
		b.WriteString(strconv.Quote(v.String()))
		return nil
	case reflect.Bool:
		b.WriteString(strconv.FormatBool(v.Bool()))
		return nil
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		b.WriteString(strconv.FormatInt(v.Int(), 10))
		return nil
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr:
		b.WriteString(strconv.FormatUint(v.Uint(), 10))
		return nil
	case reflect.Float32, reflect.Float64:
		// Shortest round-trip form: exact, platform-independent.
		b.WriteString(strconv.FormatFloat(v.Float(), 'g', -1, 64))
		return nil
	case reflect.Func:
		if v.IsNil() {
			b.WriteString("null")
			return nil
		}
		return errors.New("func value has no canonical form")
	default:
		return fmt.Errorf("%s value has no canonical form", v.Kind())
	}
}

// JobKey returns the cache key of a single-download job. The job is
// normalized first (see NormalizeJob); jobs whose outcome is not a pure
// function of the config error instead of producing a key.
func JobKey(j runner.Job) (string, error) {
	n, err := NormalizeJob(j)
	if err != nil {
		return "", err
	}
	s, err := Sum(n)
	if err != nil {
		return "", err
	}
	return "job:" + s, nil
}

// FleetKey returns the cache key of one fleet shard job.
func FleetKey(j runner.FleetJob) (string, error) {
	n, err := NormalizeFleetJob(j)
	if err != nil {
		return "", err
	}
	s, err := Sum(n)
	if err != nil {
		return "", err
	}
	return "fleet:" + s, nil
}

// NormalizeJob maps a download job onto its canonical representative:
// every field the runner would default is filled with that default, and
// execution knobs that provably cannot change the result are cleared.
//
//   - Backend "" becomes "sim"; any other backend ("pipe") measures
//     wall clock and is rejected.
//   - Horizon 0 becomes runner.DefaultHorizon.
//   - A nil Transport becomes tcp.DefaultConfig.
//   - SussOpt: nil becomes core.DefaultOptions when Algo is Suss (the
//     runner's controller default), and is cleared entirely for every
//     other algorithm, which ignores it.
//   - A positive WallLimit is folded into Observe (a wall-limited job
//     runs with the flight recorder attached) and then cleared: the
//     watchdog only matters on stalled runs, which are never cached.
//   - Domains is cleared: the parallel-domain determinism contract
//     guarantees identical results at any domain count.
//   - A non-nil Impair hook is arbitrary code and rejects the job.
func NormalizeJob(j runner.Job) (runner.Job, error) {
	if j.Impair != nil {
		return j, errors.New("confhash: job with an Impair hook is not cacheable")
	}
	switch j.Backend {
	case "":
		j.Backend = "sim"
	case "sim":
	default:
		return j, fmt.Errorf("confhash: backend %q measures wall clock and is not cacheable", j.Backend)
	}
	if j.Horizon <= 0 {
		j.Horizon = runner.DefaultHorizon
	}
	if j.Transport == nil {
		cfg := tcp.DefaultConfig()
		j.Transport = &cfg
	}
	if j.Algo == runner.Suss {
		if j.SussOpt == nil {
			opt := core.DefaultOptions()
			j.SussOpt = &opt
		}
	} else {
		j.SussOpt = nil
	}
	j.Observe = j.Observe || j.WallLimit > 0
	j.WallLimit = 0
	j.Domains = 0
	return j, nil
}

// NormalizeFleetJob is NormalizeJob's fleet-shard counterpart; it
// additionally fills the population defaults workload.Shard applies
// (DefaultMix, Poisson arrivals at 100 flows/s) and clamps Shards to 1.
func NormalizeFleetJob(j runner.FleetJob) (runner.FleetJob, error) {
	if j.Impair != nil {
		return j, errors.New("confhash: fleet job with an Impair hook is not cacheable")
	}
	if j.Shards <= 0 {
		j.Shards = 1
	}
	if j.Shard < 0 || j.Shard >= j.Shards {
		return j, fmt.Errorf("confhash: shard %d out of range [0,%d)", j.Shard, j.Shards)
	}
	if j.Horizon <= 0 {
		j.Horizon = runner.DefaultHorizon
	}
	if j.Transport == nil {
		cfg := tcp.DefaultConfig()
		j.Transport = &cfg
	}
	if j.Algo == runner.Suss {
		if j.SussOpt == nil {
			opt := core.DefaultOptions()
			j.SussOpt = &opt
		}
	} else {
		j.SussOpt = nil
	}
	j.Observe = j.Observe || j.WallLimit > 0
	j.WallLimit = 0
	j.Domains = 0
	if len(j.Pop.Mix) == 0 {
		j.Pop.Mix = workload.DefaultMix()
	}
	if j.Pop.Arrivals == nil {
		j.Pop.Arrivals = workload.PoissonArrivals{Rate: 100}
	}
	return j, nil
}
