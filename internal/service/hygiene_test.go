package service

import (
	"context"
	"errors"
	"io"
	"net/http"
	"runtime"
	"sync"
	"testing"
	"time"
)

// Watchers of a batch that never finishes — progress streams and
// blocking result?wait=1 reads — must not outlive their clients: when
// the client disconnects, the handler goroutine exits. Run under -race
// in CI; the settle check fails if handlers leak.
func TestNoGoroutineLeakOnClientDisconnect(t *testing.T) {
	s, c := newServerClient(t, Config{Workers: 1})

	// A synthetic batch that stays running for the whole test: watchers
	// attached to it can only exit because their client went away.
	b := newBatch("j999", "fig11", make([]string, 4), s.rootCtx)
	s.mu.Lock()
	s.batches[b.id] = b
	s.order = append(s.order, b.id)
	s.mu.Unlock()
	defer b.finish(nil, errors.New("hygiene test over"))

	tr := &http.Transport{}
	hc := &http.Client{Transport: tr}
	baseline := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	const watchers = 8
	for i := 0; i < watchers; i++ {
		for _, path := range []string{"/v1/jobs/j999/stream", "/v1/jobs/j999/result?wait=1"} {
			wg.Add(1)
			go func(p string) {
				defer wg.Done()
				req, _ := http.NewRequestWithContext(ctx, http.MethodGet, c.url+p, nil)
				resp, err := hc.Do(req)
				if err != nil {
					return // cancelled mid-dial: nothing attached
				}
				io.Copy(io.Discard, resp.Body) // blocks until the cancel severs the stream
				resp.Body.Close()
			}(path)
		}
	}

	// Let every watcher attach (the stream handler has written its
	// first snapshot by then), then sever all of them at once.
	time.Sleep(300 * time.Millisecond)
	mid := runtime.NumGoroutine()
	if mid < baseline+watchers {
		t.Logf("only %d goroutines above baseline while %d watchers attached", mid-baseline, 2*watchers)
	}
	cancel()
	wg.Wait()
	tr.CloseIdleConnections()

	// The handlers notice the dead connections (the stream poll ticks
	// every 150ms) and exit; the count settles back to about baseline.
	const slack = 6
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline+slack {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines did not settle: baseline %d, now %d\n%s",
				baseline, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(25 * time.Millisecond)
	}
}
