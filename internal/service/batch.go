package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"suss/internal/experiments"
	"suss/internal/runner"
	"suss/internal/scenarios"
)

// CellStatus is one matrix cell's lifecycle state.
type CellStatus string

const (
	// CellPending: not yet looked up or scheduled.
	CellPending CellStatus = "pending"
	// CellRunning: simulating now.
	CellRunning CellStatus = "running"
	// CellDone: simulated this batch (and cached for the next one).
	CellDone CellStatus = "done"
	// CellCached: served from the content-addressed cache, zero
	// simulator runs.
	CellCached CellStatus = "cached"
	// CellError: the cell carries an error (incomplete flow, stall,
	// panic); it still participates in aggregation the way the CLI
	// sweep treats failed downloads.
	CellError CellStatus = "error"
	// CellSkipped: the batch was cancelled before this cell started;
	// it was never simulated and is not cached.
	CellSkipped CellStatus = "skipped"
)

// CellInfo is one cell's public state: its content-addressed key and
// where it is in the pipeline.
type CellInfo struct {
	Key    string     `json:"key"`
	Status CellStatus `json:"status"`
	Err    string     `json:"err,omitempty"`
}

const (
	stateRunning  = "running"
	stateDone     = "done"
	stateFailed   = "failed"
	stateCanceled = "canceled"
)

// batch is one submitted job matrix: the unit /v1/jobs tracks.
type batch struct {
	id      string
	kind    string
	created time.Time

	// ctx governs the batch's executor; cancel is fired by
	// DELETE /v1/jobs/{id} and by daemon drain. In-flight cells run to
	// completion (a simulation cannot be interrupted mid-run), but no
	// new cell starts once the context is cancelled.
	ctx       context.Context
	cancel    context.CancelFunc
	cancelReq atomic.Bool

	// queuedLeft tracks this batch's share of the server's global
	// queued-cell count: initialized to the submit-time miss estimate,
	// decremented as cells leave the queue (start simulating or are
	// skipped), drained wholesale when the executor exits.
	queuedLeft atomic.Int64

	mu      sync.Mutex
	cells   []CellInfo
	state   string
	csv     []byte
	failure string
	version int // bumped on every visible transition; the stream endpoint polls it

	done chan struct{} // closed exactly once, by finish
}

func newBatch(id, kind string, keys []string, parent context.Context) *batch {
	ctx, cancel := context.WithCancel(parent)
	b := &batch{
		id:      id,
		kind:    kind,
		created: time.Now(),
		ctx:     ctx,
		cancel:  cancel,
		cells:   make([]CellInfo, len(keys)),
		state:   stateRunning,
		done:    make(chan struct{}),
	}
	for i, k := range keys {
		b.cells[i] = CellInfo{Key: k, Status: CellPending}
	}
	return b
}

func (b *batch) setCell(i int, st CellStatus, msg string) {
	b.mu.Lock()
	b.cells[i].Status = st
	b.cells[i].Err = msg
	b.version++
	b.mu.Unlock()
}

// requestCancel asks the batch to stop: no new cells start after it
// returns. Idempotent; a no-op on a terminal batch.
func (b *batch) requestCancel() {
	b.cancelReq.Store(true)
	b.cancel()
}

// terminal reports whether the batch has sealed (any non-running
// state) — the retention GC's eviction criterion.
func (b *batch) terminal() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state != stateRunning
}

// finish seals the batch. Idempotent: a recovery path may call it after
// the normal path already has.
func (b *batch) finish(csv []byte, err error) {
	st := stateDone
	msg := ""
	if err != nil {
		st, msg = stateFailed, err.Error()
		csv = nil
	}
	b.seal(st, csv, msg)
}

// finishCanceled seals a cancelled batch: cells simulated before the
// cancel are cached for the next submission, the rest were skipped.
func (b *batch) finishCanceled(skipped int) {
	b.seal(stateCanceled, nil, fmt.Sprintf("canceled: %d cell(s) skipped", skipped))
}

func (b *batch) seal(state string, csv []byte, failure string) {
	b.mu.Lock()
	if b.state != stateRunning {
		b.mu.Unlock()
		return
	}
	b.state = state
	b.csv = csv
	b.failure = failure
	b.version++
	b.mu.Unlock()
	b.cancel() // release the context; no-op if already cancelled
	close(b.done)
}

// JobStatus is the poll/stream view of a batch.
type JobStatus struct {
	ID      string     `json:"id"`
	Kind    string     `json:"kind"`
	State   string     `json:"state"` // running | done | failed | canceled
	Cells   int        `json:"cells"`
	Pending int        `json:"pending"`
	Running int        `json:"running"`
	Done    int        `json:"done"`
	Cached  int        `json:"cached"`
	Errors  int        `json:"errors"`
	Skipped int        `json:"skipped,omitempty"`
	Error   string     `json:"error,omitempty"`
	Created time.Time  `json:"created"`
	Detail  []CellInfo `json:"cells_detail,omitempty"`
}

// status snapshots the batch; withCells includes the per-cell list.
// The returned version orders snapshots for the stream endpoint.
func (b *batch) status(withCells bool) (JobStatus, int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	st := JobStatus{
		ID:      b.id,
		Kind:    b.kind,
		State:   b.state,
		Cells:   len(b.cells),
		Error:   b.failure,
		Created: b.created,
	}
	for _, c := range b.cells {
		switch c.Status {
		case CellPending:
			st.Pending++
		case CellRunning:
			st.Running++
		case CellDone:
			st.Done++
		case CellCached:
			st.Cached++
		case CellError:
			st.Errors++
		case CellSkipped:
			st.Skipped++
		}
	}
	if withCells {
		st.Detail = append([]CellInfo(nil), b.cells...)
	}
	return st, b.version
}

// cellDownload is the serializable form of one fig11 cell: the subset
// of a download result the figure's aggregation and CSV consume.
// Floats round-trip exactly through encoding/json (shortest-form
// encoding), so a result reassembled from cache produces byte-identical
// CSV output.
type cellDownload struct {
	FCT         time.Duration `json:"fct"`
	LossRate    float64       `json:"loss_rate,omitempty"`
	Delivered   int64         `json:"delivered,omitempty"`
	Segments    int           `json:"segments,omitempty"`
	Retrans     int           `json:"retrans,omitempty"`
	RTOs        int           `json:"rtos,omitempty"`
	Drops       int           `json:"drops,omitempty"`
	PeakQueue   int           `json:"peak_queue,omitempty"`
	MaxG        int           `json:"max_g,omitempty"`
	AccelRounds int           `json:"accel_rounds,omitempty"`
	Completed   bool          `json:"completed"`
	Err         string        `json:"err,omitempty"`
}

func encodeJobCell(r runner.Result) ([]byte, error) {
	c := cellDownload{
		FCT:         r.FCT,
		LossRate:    r.LossRate,
		Delivered:   r.Delivered,
		Segments:    r.Segments,
		Retrans:     r.Retrans,
		RTOs:        r.RTOs,
		Drops:       r.Drops,
		PeakQueue:   r.PeakQueue,
		MaxG:        r.MaxG,
		AccelRounds: r.AccelRounds,
		Completed:   r.Completed,
	}
	if r.Err != nil {
		c.Err = r.Err.Error()
	}
	return json.Marshal(c)
}

func decodeJobCell(j runner.Job, raw []byte) (runner.Result, error) {
	var c cellDownload
	if err := json.Unmarshal(raw, &c); err != nil {
		return runner.Result{}, err
	}
	res := runner.Result{
		Job: j,
		DownloadResult: runner.DownloadResult{
			Algo:        j.Algo,
			Size:        j.Size,
			FCT:         c.FCT,
			LossRate:    c.LossRate,
			Delivered:   c.Delivered,
			Segments:    c.Segments,
			Retrans:     c.Retrans,
			RTOs:        c.RTOs,
			Drops:       c.Drops,
			PeakQueue:   c.PeakQueue,
			MaxG:        c.MaxG,
			AccelRounds: c.AccelRounds,
			Completed:   c.Completed,
		},
	}
	if c.Err != "" {
		res.Err = errors.New(c.Err)
	}
	return res, nil
}

// cellShard is the serializable form of one fleet cell. ShardResult is
// plain data (its error channels are excluded from JSON and a shard is
// only cached when they are nil), so the whole record round-trips.
type cellShard struct {
	Shard runner.ShardResult `json:"shard"`
	Err   string             `json:"err,omitempty"`
}

func encodeShardCell(r runner.FleetResult) ([]byte, error) {
	c := cellShard{Shard: r.ShardResult}
	if r.Err != nil {
		c.Err = r.Err.Error()
	}
	return json.Marshal(c)
}

func decodeShardCell(raw []byte) (runner.FleetResult, error) {
	var c cellShard
	if err := json.Unmarshal(raw, &c); err != nil {
		return runner.FleetResult{}, err
	}
	res := runner.FleetResult{ShardResult: c.Shard}
	if c.Err != "" {
		res.Err = errors.New(c.Err)
	}
	return res, nil
}

// fig11Plan is a validated fig11 submission: the job matrix in
// Fig11Jobs order plus the per-cell cache keys.
type fig11Plan struct {
	server scenarios.Server
	sizes  []int64
	iters  int
	jobs   []runner.Job
	keys   []string
}

// fleetPlan is a validated fleet submission: two variant job templates
// (SUSS off/on); cells are variant-major, cell i = (variant i/Shards,
// shard i%Shards).
type fleetPlan struct {
	fc   experiments.FleetConfig
	jobs [2]runner.FleetJob
	keys []string
}

// skippedByCancel reports whether a pool outcome error means the cell
// never ran because the batch context was cancelled (as opposed to a
// panic captured by the pool).
func skippedByCancel(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// runFig11 executes a fig11 batch: serve every warm cell from the
// cache, simulate the misses on the worker pool, cache what the misses
// produced, and aggregate exactly the way the in-process sweep does.
// Cancellation stops new cells at the pool boundary; whatever finished
// before the cancel stays cached for the next submission.
func (s *Server) runFig11(b *batch, p fig11Plan) {
	defer func() {
		if r := recover(); r != nil {
			b.finish(nil, fmt.Errorf("fig11 executor panicked: %v", r))
		}
	}()
	results := make([]runner.Result, len(p.jobs))
	var miss []int
	for i := range p.jobs {
		if raw, ok := s.cache.Get(b.cells[i].Key); ok {
			if res, err := decodeJobCell(p.jobs[i], raw); err == nil {
				results[i] = res
				b.setCell(i, CellCached, "")
				continue
			}
		}
		miss = append(miss, i)
	}
	outs := runner.Map(b.ctx, miss, func(_ context.Context, _ int, i int) (runner.Result, error) {
		s.dequeueCell(b)
		b.setCell(i, CellRunning, "")
		s.cellRuns.Add(1)
		r := runner.Download(p.jobs[i])
		res := runner.Result{Job: p.jobs[i], DownloadResult: r}
		switch {
		case r.Stall != nil:
			res.Err = r.Stall
		case r.FlowErr != nil:
			res.Err = r.FlowErr
		case !r.Completed:
			res.Err = runner.ErrIncomplete
		}
		// Cache (and with a cache file, persist) the cell the moment it
		// finishes, not when the batch does: a crash or cancel mid-batch
		// then loses only the cells still in flight. Stalls are
		// wall-clock artifacts, not properties of the config; everything
		// else (including a deterministic incomplete flow) is cacheable.
		if res.Stall == nil {
			if raw, err := encodeJobCell(res); err == nil {
				s.cache.Put(b.cells[i].Key, raw)
			}
		}
		if res.Err != nil {
			b.setCell(i, CellError, res.Err.Error())
		} else {
			b.setCell(i, CellDone, "")
		}
		return res, nil
	}, runner.Options{Workers: s.cfg.Workers})
	skipped := 0
	for k, o := range outs {
		i := miss[k]
		if o.Err != nil { // pool-level failure: cancellation skip or captured panic
			if skippedByCancel(o.Err) {
				s.dequeueCell(b)
				b.setCell(i, CellSkipped, "")
				skipped++
			} else {
				b.setCell(i, CellError, o.Err.Error())
			}
			results[i] = runner.Result{Job: p.jobs[i], Err: o.Err}
			continue
		}
		results[i] = o.Value
	}
	if skipped > 0 {
		b.finishCanceled(skipped)
		return
	}
	fig := experiments.Fig11FromResults(p.server, p.sizes, p.iters, results, false)
	var buf bytes.Buffer
	if err := fig.WriteCSV(&buf); err != nil {
		b.finish(nil, err)
		return
	}
	b.finish(buf.Bytes(), nil)
}

// runFleet executes a fleet batch with per-shard caching: each (variant,
// shard) cell is an independent deterministic simulation, so a
// resubmission that only grew the shard count still reuses every shard
// it shares with a previous run.
func (s *Server) runFleet(b *batch, p fleetPlan) {
	defer func() {
		if r := recover(); r != nil {
			b.finish(nil, fmt.Errorf("fleet executor panicked: %v", r))
		}
	}()
	n := p.fc.Shards
	results := [2][]runner.FleetResult{make([]runner.FleetResult, n), make([]runner.FleetResult, n)}
	var miss []int
	for i := range b.cells {
		if raw, ok := s.cache.Get(b.cells[i].Key); ok {
			if res, err := decodeShardCell(raw); err == nil {
				results[i/n][i%n] = res
				b.setCell(i, CellCached, "")
				continue
			}
		}
		miss = append(miss, i)
	}
	outs := runner.Map(b.ctx, miss, func(_ context.Context, _ int, i int) (runner.FleetResult, error) {
		s.dequeueCell(b)
		b.setCell(i, CellRunning, "")
		s.cellRuns.Add(1)
		sj := p.jobs[i/n]
		sj.Shard = i % n
		r := runner.RunFleetShard(sj)
		res := runner.FleetResult{ShardResult: r}
		switch {
		case r.Err != nil:
			res.Err = r.Err
		case r.Stall != nil:
			res.Err = r.Stall
		}
		// Cache per cell as it completes (see runFig11): crash or cancel
		// mid-batch loses only the in-flight shards.
		if res.Err == nil && res.Stall == nil {
			if raw, err := encodeShardCell(res); err == nil {
				s.cache.Put(b.cells[i].Key, raw)
			}
		}
		if res.Err != nil {
			b.setCell(i, CellError, res.Err.Error())
		} else {
			b.setCell(i, CellDone, "")
		}
		return res, nil
	}, runner.Options{Workers: s.cfg.Workers})
	skipped := 0
	for k, o := range outs {
		i := miss[k]
		if o.Err != nil {
			if skippedByCancel(o.Err) {
				s.dequeueCell(b)
				b.setCell(i, CellSkipped, "")
				skipped++
			} else {
				b.setCell(i, CellError, o.Err.Error())
			}
			results[i/n][i%n] = runner.FleetResult{Err: o.Err}
			continue
		}
		results[i/n][i%n] = o.Value
	}
	if skipped > 0 {
		b.finishCanceled(skipped)
		return
	}
	fr := experiments.FleetFromShards(p.fc, results, false)
	var buf bytes.Buffer
	if err := fr.WriteCSV(&buf); err != nil {
		b.finish(nil, err)
		return
	}
	b.finish(buf.Bytes(), nil)
}
