package service

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"suss/internal/runner"
)

// newServerClient exposes the Server alongside its HTTP client so
// robustness tests can reach the internals (queue gauge, drain) the
// API deliberately hides.
func newServerClient(t *testing.T, cfg Config) (*Server, *client) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, &client{t: t, url: ts.URL}
}

func (c *client) get(path string) (*http.Response, []byte) {
	c.t.Helper()
	resp, err := http.Get(c.url + path)
	if err != nil {
		c.t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	return resp, raw
}

func (c *client) cancel(id string) (*http.Response, []byte) {
	c.t.Helper()
	req, _ := http.NewRequest(http.MethodDelete, c.url+"/v1/jobs/"+id, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		c.t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	return resp, raw
}

// Cancelling a running batch stops new cells, keeps what finished in
// the cache, seals the batch "canceled", and serves 410 on result —
// and a resubmission of the same matrix is warm for the finished part.
func TestCancelMidBatch(t *testing.T) {
	s, c := newServerClient(t, Config{Workers: 1})
	// 64 MB cells on one worker: each takes long enough (hundreds of
	// milliseconds) that the cancel below always lands with most of the
	// 48-cell matrix still pending.
	req := SubmitRequest{Kind: "fig11", Sizes: []int64{64 << 20}, Iters: 4, Seed: 11}
	sub := c.submit(req)

	// Wait for at least one simulated cell so "partial results stay
	// cached" is actually exercised, then cancel.
	deadline := time.Now().Add(30 * time.Second)
	for s.cache.Len() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no cell finished within 30s")
		}
		time.Sleep(2 * time.Millisecond)
	}
	resp, _ := c.cancel(sub.ID)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: HTTP %d", resp.StatusCode)
	}

	// The batch seals promptly (the in-flight cell finishes, the rest
	// are skipped at the pool boundary).
	b := s.batch(sub.ID)
	select {
	case <-b.done:
	case <-time.After(30 * time.Second):
		t.Fatal("batch did not seal after cancel")
	}
	st := c.status(sub.ID)
	if st.State != stateCanceled {
		t.Fatalf("state after cancel: %q, want canceled (status %+v)", st.State, st)
	}
	if st.Skipped == 0 {
		t.Error("cancel skipped no cells")
	}
	if st.Done == 0 {
		t.Error("no cell recorded done before the cancel")
	}
	if got := st.Done + st.Cached + st.Errors + st.Skipped + st.Running + st.Pending; got != st.Cells {
		t.Errorf("cell accounting: %d of %d", got, st.Cells)
	}

	// result = 410 Gone with the status body, not a hang or a 500.
	resp, raw := c.get("/v1/jobs/" + sub.ID + "/result?wait=1")
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("result of canceled batch: HTTP %d: %s", resp.StatusCode, raw)
	}
	var gone JobStatus
	if err := json.Unmarshal(raw, &gone); err != nil || gone.State != stateCanceled {
		t.Errorf("410 body: %s (err %v)", raw, err)
	}

	// Cancel is idempotent.
	if resp, _ := c.cancel(sub.ID); resp.StatusCode != http.StatusOK {
		t.Errorf("second cancel: HTTP %d", resp.StatusCode)
	}

	// Partial results survive: the resubmission is warm exactly where
	// the first batch got to. Cancel it too rather than simulating the
	// ~46 remaining slow cells.
	second := c.submit(req)
	if second.Cached == 0 {
		t.Error("resubmission after cancel found nothing cached")
	}
	if second.Cached >= second.Cells {
		t.Errorf("resubmission fully cached (%d/%d) — cancel skipped nothing?", second.Cached, second.Cells)
	}
	c.cancel(second.ID)
	b2 := s.batch(second.ID)
	select {
	case <-b2.done:
	case <-time.After(30 * time.Second):
		t.Fatal("second batch did not seal after cancel")
	}

	// The queue gauge is fully released once both executors exit (the
	// release runs in a deferred step just after the seal).
	deadline = time.Now().Add(5 * time.Second)
	for s.queued.Load() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("queued gauge %d after all batches terminal, want 0", s.queued.Load())
		}
		time.Sleep(time.Millisecond)
	}
}

// Admission control: with a backlog at the cap, a submit that would
// exceed it is refused with 429 + Retry-After, while an idle queue
// admits any batch regardless of size.
func TestAdmissionControl(t *testing.T) {
	s, c := newServerClient(t, Config{Workers: 4, MaxQueuedCells: 8})

	// Simulate a standing backlog (no need to actually run anything —
	// the gauge is the policy input).
	s.queued.Store(8)
	body, _ := json.Marshal(SubmitRequest{Kind: "fig11", Sizes: []int64{256 << 10}, Iters: 1, Seed: 21})
	resp, err := http.Post(c.url+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("submit over cap: HTTP %d: %s, want 429", resp.StatusCode, raw)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Errorf("429 Retry-After header: %q, want a positive number of seconds", ra)
	}
	if stats := c.stats(); stats.QueuedCells != 8 {
		t.Errorf("stats queued_cells %d, want the standing 8", stats.QueuedCells)
	}

	// Drop the backlog: the same submit is admitted, even though the
	// batch itself (12 cells) exceeds the cap of 8 — idle-queue batches
	// are always admitted.
	s.queued.Store(0)
	sub := c.submit(SubmitRequest{Kind: "fig11", Sizes: []int64{256 << 10}, Iters: 1, Seed: 21})
	if sub.Cells <= 8 {
		t.Fatalf("test premise broken: batch has %d cells, want > cap", sub.Cells)
	}
	c.result(sub.ID)
	if q := s.queued.Load(); q != 0 {
		t.Errorf("queued gauge %d after batch done, want 0", q)
	}
}

// Retention: terminal batches beyond the cap are evicted oldest-first;
// evicted IDs 404 and the eviction count survives in stats.
func TestRetentionEviction(t *testing.T) {
	_, c := newServerClient(t, Config{Workers: 4, RetainBatches: 2})
	req := SubmitRequest{Kind: "fig11", Sizes: []int64{256 << 10}, Iters: 1, Seed: 31}
	var ids []string
	for i := 0; i < 4; i++ {
		sub := c.submit(req) // warm after the first — these are fast
		c.result(sub.ID)
		ids = append(ids, sub.ID)
	}

	// GC runs just after the executor seals; poll briefly.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, _ := c.get("/v1/jobs/" + ids[0])
		if resp.StatusCode == http.StatusNotFound {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("oldest batch %s still present, want evicted", ids[0])
		}
		time.Sleep(5 * time.Millisecond)
	}
	if resp, _ := c.get("/v1/jobs/" + ids[1]); resp.StatusCode != http.StatusNotFound {
		t.Errorf("second-oldest batch: HTTP %d, want 404", resp.StatusCode)
	}
	for _, id := range ids[2:] {
		if resp, _ := c.get("/v1/jobs/" + id); resp.StatusCode != http.StatusOK {
			t.Errorf("retained batch %s: HTTP %d, want 200", id, resp.StatusCode)
		}
	}
	st := c.stats()
	if st.EvictedJobs != 2 {
		t.Errorf("stats evicted_jobs %d, want 2", st.EvictedJobs)
	}
	if st.Jobs != 2 {
		t.Errorf("stats jobs %d, want 2 retained", st.Jobs)
	}
}

// Lifecycle endpoints: /healthz always answers, /readyz flips to 503
// once a drain begins, draining refuses submits with 503 + Retry-After,
// and Drain cancels a running batch.
func TestHealthReadyAndDrain(t *testing.T) {
	s, c := newServerClient(t, Config{Workers: 1})

	if resp, raw := c.get("/healthz"); resp.StatusCode != http.StatusOK || string(raw) != "ok\n" {
		t.Errorf("healthz: HTTP %d %q", resp.StatusCode, raw)
	}
	if resp, raw := c.get("/readyz"); resp.StatusCode != http.StatusOK || string(raw) != "ready\n" {
		t.Errorf("readyz: HTTP %d %q", resp.StatusCode, raw)
	}

	// A slow batch (64 MB cells, one worker) to drain out from under.
	sub := c.submit(SubmitRequest{Kind: "fig11", Sizes: []int64{64 << 20}, Iters: 4, Seed: 41})

	s.BeginDrain()
	if resp, _ := c.get("/readyz"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz while draining: HTTP %d, want 503", resp.StatusCode)
	}
	body, _ := json.Marshal(SubmitRequest{Kind: "fig11", Iters: 1})
	resp, err := http.Post(c.url+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("submit while draining: HTTP %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("draining 503 has no Retry-After header")
	}

	ctx, cancelCtx := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancelCtx()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	st := c.status(sub.ID)
	if st.State != stateCanceled {
		t.Errorf("batch state after drain: %q, want canceled", st.State)
	}
	if st.Skipped == 0 {
		t.Error("drained batch skipped no cells")
	}
	// Liveness stays up; readiness stays down.
	if resp, _ := c.get("/healthz"); resp.StatusCode != http.StatusOK {
		t.Errorf("healthz after drain: HTTP %d", resp.StatusCode)
	}
	if resp, _ := c.get("/readyz"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz after drain: HTTP %d", resp.StatusCode)
	}
}

// The persistent cache end to end through a Server: results written by
// one server instance are replayed by its successor on the same file —
// the resubmission is all cache hits, zero simulator runs, identical
// bytes, and stats account the replay.
func TestServerCacheSurvivesRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sussd.cache")
	req := SubmitRequest{Kind: "fig11", Sizes: []int64{256 << 10}, Iters: 2, Seed: 51}

	s1, c1 := newServerClient(t, Config{Workers: 4, CacheFile: path})
	sub1 := c1.submit(req)
	csv1 := c1.result(sub1.ID)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s1.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	s2, c2 := newServerClient(t, Config{Workers: 4, CacheFile: path})
	if info := s2.Recovery(); info.Entries != sub1.Cells || info.Truncated {
		t.Fatalf("recovery %+v, want %d clean entries", info, sub1.Cells)
	}
	simsBefore := runner.SimRuns()
	sub2 := c2.submit(req)
	if sub2.Cached != sub2.Cells {
		t.Errorf("restarted server: %d/%d cells cached", sub2.Cached, sub2.Cells)
	}
	csv2 := c2.result(sub2.ID)
	if d := runner.SimRuns() - simsBefore; d != 0 {
		t.Errorf("restarted server ran %d simulations for a fully persisted matrix", d)
	}
	if !bytes.Equal(csv1, csv2) {
		t.Errorf("CSV across restart differs:\nfirst:\n%s\nsecond:\n%s", csv1, csv2)
	}
	st := c2.stats()
	if st.CacheReplayed != sub1.Cells {
		t.Errorf("stats cache_replayed %d, want %d", st.CacheReplayed, sub1.Cells)
	}
}
