package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"suss/internal/experiments"
	"suss/internal/runner"
	"suss/internal/scenarios"
)

// client wraps an httptest server with the few calls the tests make.
type client struct {
	t   *testing.T
	url string
}

func newClient(t *testing.T) *client {
	t.Helper()
	return newClientWith(t, Config{Workers: 4})
}

func newClientWith(t *testing.T, cfg Config) *client {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return &client{t: t, url: ts.URL}
}

func (c *client) submit(req SubmitRequest) SubmitResponse {
	c.t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(c.url+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		c.t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		c.t.Fatalf("submit: HTTP %d: %s", resp.StatusCode, raw)
	}
	var out SubmitResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		c.t.Fatalf("submit response %q: %v", raw, err)
	}
	return out
}

func (c *client) result(id string) []byte {
	c.t.Helper()
	resp, err := http.Get(c.url + "/v1/jobs/" + id + "/result?wait=1")
	if err != nil {
		c.t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		c.t.Fatalf("result %s: HTTP %d: %s", id, resp.StatusCode, raw)
	}
	return raw
}

func (c *client) status(id string) JobStatus {
	c.t.Helper()
	resp, err := http.Get(c.url + "/v1/jobs/" + id)
	if err != nil {
		c.t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		c.t.Fatal(err)
	}
	return st
}

func (c *client) stats() Stats {
	c.t.Helper()
	resp, err := http.Get(c.url + "/v1/stats")
	if err != nil {
		c.t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		c.t.Fatal(err)
	}
	return st
}

// The tentpole contract end to end: an identical resubmission is 100 %
// cache hits, zero simulator runs, byte-identical CSV — and the CSV
// matches what the in-process CLI sweep emits for the same config.
func TestFig11CacheRoundTrip(t *testing.T) {
	c := newClient(t)
	req := SubmitRequest{Kind: "fig11", Sizes: []int64{256 << 10}, Iters: 1, Seed: 1}
	wantCells := 4 * 1 * 3 * 1 // links × sizes × algos × iters

	first := c.submit(req)
	if first.Cells != wantCells || first.Cached != 0 {
		t.Fatalf("first submit: cells=%d cached=%d, want %d/0", first.Cells, first.Cached, wantCells)
	}
	csv1 := c.result(first.ID)

	simsAfterFirst := runner.SimRuns()
	second := c.submit(req)
	if second.Cached != wantCells {
		t.Errorf("second submit reported %d/%d cells cached", second.Cached, wantCells)
	}
	csv2 := c.result(second.ID)
	if d := runner.SimRuns() - simsAfterFirst; d != 0 {
		t.Errorf("warm resubmission ran %d simulations, want 0", d)
	}
	if !bytes.Equal(csv1, csv2) {
		t.Errorf("cached CSV differs from simulated CSV:\nfirst:\n%s\nsecond:\n%s", csv1, csv2)
	}
	st := c.status(second.ID)
	if st.Cached != wantCells || st.Done != 0 || st.Errors != 0 {
		t.Errorf("second batch status: %+v, want all %d cells cached", st, wantCells)
	}

	// The daemon's CSV is the CLI's CSV: same aggregation, same bytes.
	direct := experiments.RunFig11(scenarios.GoogleTokyo, []int64{256 << 10}, 1, 1)
	var buf bytes.Buffer
	if err := direct.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(csv1, buf.Bytes()) {
		t.Errorf("service CSV differs from in-process sweep:\nservice:\n%s\ndirect:\n%s", csv1, buf.Bytes())
	}
}

// Defaulted and explicit spellings of the same sweep are the same
// cells: a resubmission that spells out the defaults is still warm.
func TestFig11DefaultedFieldsShareCache(t *testing.T) {
	c := newClient(t)
	short := SubmitRequest{Kind: "fig11", Sizes: []int64{256 << 10}, Iters: 1} // seed defaults to 1
	first := c.submit(short)
	c.result(first.ID)

	explicit := SubmitRequest{Kind: "fig11", Server: "google-tokyo", Sizes: []int64{256 << 10}, Iters: 1, Seed: 1}
	second := c.submit(explicit)
	if second.Cached != second.Cells {
		t.Errorf("explicit spelling of defaults missed the cache: %d/%d cached", second.Cached, second.Cells)
	}
}

// A semantic change must miss: different seed, different cells.
func TestFig11SeedChangeMisses(t *testing.T) {
	c := newClient(t)
	first := c.submit(SubmitRequest{Kind: "fig11", Sizes: []int64{256 << 10}, Iters: 1, Seed: 1})
	c.result(first.ID)
	second := c.submit(SubmitRequest{Kind: "fig11", Sizes: []int64{256 << 10}, Iters: 1, Seed: 2})
	if second.Cached != 0 {
		t.Errorf("seed change still hit the cache: %d cells cached", second.Cached)
	}
}

// Fleet batches cache per shard: identical resubmission is warm with
// identical bytes, and growing the matrix reuses the shared cells.
func TestFleetCacheRoundTrip(t *testing.T) {
	c := newClient(t)
	req := SubmitRequest{Kind: "fleet", Flows: 80, Shards: 2, Seed: 7}

	first := c.submit(req)
	if want := 2 * 2; first.Cells != want || first.Cached != 0 {
		t.Fatalf("first submit: cells=%d cached=%d, want %d/0", first.Cells, first.Cached, want)
	}
	csv1 := c.result(first.ID)

	simsAfterFirst := runner.SimRuns()
	second := c.submit(req)
	if second.Cached != second.Cells {
		t.Errorf("second submit: %d/%d cells cached", second.Cached, second.Cells)
	}
	csv2 := c.result(second.ID)
	if d := runner.SimRuns() - simsAfterFirst; d != 0 {
		t.Errorf("warm fleet resubmission ran %d simulations, want 0", d)
	}
	if !bytes.Equal(csv1, csv2) {
		t.Errorf("cached fleet CSV differs:\nfirst:\n%s\nsecond:\n%s", csv1, csv2)
	}
	if !strings.HasPrefix(string(csv1), "variant,class,quantile,fct_s\n") {
		t.Errorf("fleet CSV header missing: %q", string(csv1)[:40])
	}

	// Same population, same tree, one more variant dimension changed:
	// a different seed shares nothing.
	third := c.submit(SubmitRequest{Kind: "fleet", Flows: 80, Shards: 2, Seed: 8})
	if third.Cached != 0 {
		t.Errorf("different fleet seed hit the cache: %d cells", third.Cached)
	}
}

func TestSubmitValidation(t *testing.T) {
	c := newClient(t)
	for _, body := range []string{
		`{"kind":"nope"}`,
		`{"kind":"fig11","server":"mars-base"}`,
		`{"kind":"fig11","sizes":[-1]}`,
		`not json`,
	} {
		resp, err := http.Post(c.url+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("submit %q: HTTP %d, want 400", body, resp.StatusCode)
		}
	}
	resp, err := http.Get(c.url + "/v1/jobs/j999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: HTTP %d, want 404", resp.StatusCode)
	}
}

// The stream endpoint emits NDJSON snapshots ending in a terminal
// state, and /v1/stats accounts hits, misses and runs.
func TestStreamAndStats(t *testing.T) {
	c := newClient(t)
	req := SubmitRequest{Kind: "fig11", Sizes: []int64{256 << 10}, Iters: 1, Seed: 3}
	sub := c.submit(req)

	resp, err := http.Get(c.url + "/v1/jobs/" + sub.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var lastLine []byte
	dec := json.NewDecoder(resp.Body)
	lines := 0
	for {
		var st JobStatus
		if err := dec.Decode(&st); err != nil {
			break
		}
		lines++
		lastLine, _ = json.Marshal(st)
		if st.State != "running" {
			break
		}
	}
	if lines == 0 {
		t.Fatal("stream emitted no snapshots")
	}
	var final JobStatus
	if err := json.Unmarshal(lastLine, &final); err != nil {
		t.Fatal(err)
	}
	if final.State != "done" {
		t.Errorf("final stream state %q, want done", final.State)
	}
	if got := final.Done + final.Cached; got != sub.Cells {
		t.Errorf("final snapshot accounts %d/%d cells", got, sub.Cells)
	}

	st := c.stats()
	if st.CacheEntries == 0 || st.CellRuns == 0 {
		t.Errorf("stats after a run: %+v, want nonzero entries and cell runs", st)
	}
	if st.CacheMisses < int64(sub.Cells) {
		t.Errorf("stats misses %d < first-run cells %d", st.CacheMisses, sub.Cells)
	}
	if st.SimRuns == 0 {
		t.Error("stats sim_runs is zero after simulating")
	}
	if st.Jobs == 0 {
		t.Error("stats jobs is zero")
	}
}
