package service

import (
	"sync"
	"sync/atomic"
)

// Cache is the content-addressed result store: confhash key → encoded
// cell result. Entries are immutable once stored (a key is a hash of
// everything that determines the result, so there is nothing to
// update) and live for the daemon's lifetime — a simulation cell is a
// few hundred bytes, so even a week of sweeps is megabytes.
type Cache struct {
	mu      sync.Mutex
	entries map[string][]byte
	hits    atomic.Int64
	misses  atomic.Int64
}

// NewCache returns an empty cache.
func NewCache() *Cache {
	return &Cache{entries: make(map[string][]byte)}
}

// Get returns the entry for key and counts the lookup as a hit or a
// miss. Executors call it exactly once per cell, so the counters read
// as "cells served from cache" vs "cells that had to simulate".
func (c *Cache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	v, ok := c.entries[key]
	c.mu.Unlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return v, ok
}

// Contains reports presence without touching the hit/miss counters —
// the submit path uses it to report how much of a batch is already
// warm.
func (c *Cache) Contains(key string) bool {
	c.mu.Lock()
	_, ok := c.entries[key]
	c.mu.Unlock()
	return ok
}

// Put stores an entry. Storing the same key twice is harmless: both
// writers computed the value from the same config, so the bytes match.
func (c *Cache) Put(key string, val []byte) {
	c.mu.Lock()
	c.entries[key] = val
	c.mu.Unlock()
}

// Len returns the number of entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Hits returns cells served from cache since startup.
func (c *Cache) Hits() int64 { return c.hits.Load() }

// Misses returns cells that missed since startup.
func (c *Cache) Misses() int64 { return c.misses.Load() }
