package service

import (
	"bytes"
	"sync"
	"sync/atomic"
)

// Cache is the content-addressed result store: confhash key → encoded
// cell result. Entries are immutable once stored (a key is a hash of
// everything that determines the result, so there is nothing to
// update) and live for the daemon's lifetime — a simulation cell is a
// few hundred bytes, so even a week of sweeps is megabytes.
//
// With a backing log (NewPersistentCache) every Put is also appended
// to an append-only record file, and a restarted daemon replays it so
// persisted cells survive kill -9 — see persist.go for the framing and
// recovery rules.
type Cache struct {
	mu          sync.Mutex
	entries     map[string][]byte
	log         *cacheLog // nil = memory-only
	hits        atomic.Int64
	misses      atomic.Int64
	persistErrs atomic.Int64
	persistErr  error // first append failure, for diagnostics
}

// NewCache returns an empty memory-only cache.
func NewCache() *Cache {
	return &Cache{entries: make(map[string][]byte)}
}

// NewPersistentCache opens (or creates) the record log at path,
// replays every intact record, and returns a cache whose Puts are
// appended to the file. A torn or corrupt tail is truncated, not
// fatal; the returned RecoveryInfo says what was kept and dropped.
func NewPersistentCache(path string) (*Cache, RecoveryInfo, error) {
	c := NewCache()
	log, info, err := openCacheLog(path, c.entries)
	if err != nil {
		return nil, info, err
	}
	c.log = log
	return c, info, nil
}

// Get returns the entry for key and counts the lookup as a hit or a
// miss. Executors call it exactly once per cell, so the counters read
// as "cells served from cache" vs "cells that had to simulate".
func (c *Cache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	v, ok := c.entries[key]
	c.mu.Unlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return v, ok
}

// Contains reports presence without touching the hit/miss counters —
// the submit path uses it to report how much of a batch is already
// warm.
func (c *Cache) Contains(key string) bool {
	c.mu.Lock()
	_, ok := c.entries[key]
	c.mu.Unlock()
	return ok
}

// Put stores an entry and, when the cache is persistent, appends it to
// the record log. Storing the same key twice is harmless: both writers
// computed the value from the same config, so the bytes match — and
// the duplicate is not re-appended. A failed append keeps the daemon
// serving from memory; the failure is counted (PersistErrors) rather
// than surfaced per-cell.
func (c *Cache) Put(key string, val []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if old, ok := c.entries[key]; ok && bytes.Equal(old, val) {
		return
	}
	c.entries[key] = val
	if c.log != nil {
		if err := c.log.append(key, val); err != nil {
			if c.persistErr == nil {
				c.persistErr = err
			}
			c.persistErrs.Add(1)
		}
	}
}

// Close releases the backing log (no-op for a memory-only cache).
func (c *Cache) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	err := c.log.Close()
	c.log = nil
	return err
}

// Len returns the number of entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Hits returns cells served from cache since startup.
func (c *Cache) Hits() int64 { return c.hits.Load() }

// Misses returns cells that missed since startup.
func (c *Cache) Misses() int64 { return c.misses.Load() }

// PersistErrors returns the number of failed record appends (0 for a
// healthy or memory-only cache).
func (c *Cache) PersistErrors() int64 { return c.persistErrs.Load() }
