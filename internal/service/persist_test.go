package service

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func tmpCachePath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "cache.log")
}

func mustOpen(t *testing.T, path string) (*Cache, RecoveryInfo) {
	t.Helper()
	c, info, err := NewPersistentCache(path)
	if err != nil {
		t.Fatalf("NewPersistentCache(%s): %v", path, err)
	}
	return c, info
}

func fillCache(t *testing.T, c *Cache, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		c.Put(fmt.Sprintf("key-%04d", i), []byte(fmt.Sprintf(`{"cell":%d}`, i)))
	}
}

// The basic durability contract: everything Put before a clean close
// is served after reopen, with no truncation reported.
func TestPersistRoundTrip(t *testing.T) {
	path := tmpCachePath(t)
	c, info := mustOpen(t, path)
	if info.Entries != 0 || info.Truncated {
		t.Fatalf("fresh file recovery = %+v, want empty and clean", info)
	}
	fillCache(t, c, 20)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	c2, info2 := mustOpen(t, path)
	defer c2.Close()
	if info2.Entries != 20 || info2.Truncated {
		t.Fatalf("reopen recovery = %+v, want 20 clean entries", info2)
	}
	for i := 0; i < 20; i++ {
		v, ok := c2.Get(fmt.Sprintf("key-%04d", i))
		if !ok || string(v) != fmt.Sprintf(`{"cell":%d}`, i) {
			t.Fatalf("key-%04d after reopen: %q ok=%v", i, v, ok)
		}
	}
}

// A torn tail — the write a kill -9 interrupted — is truncated at the
// last intact record, and the file accepts appends again afterwards.
func TestPersistTornTailRecovered(t *testing.T) {
	path := tmpCachePath(t)
	c, _ := mustOpen(t, path)
	fillCache(t, c, 5)
	c.Close()
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Append a frame that promises 500 payload bytes and delivers 7.
	torn := append([]byte(nil), whole...)
	torn = binary.BigEndian.AppendUint32(torn, 500)
	torn = append(torn, make([]byte, sha256.Size)...)
	torn = append(torn, []byte("garbage")...)
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	c2, info := mustOpen(t, path)
	if info.Entries != 5 || !info.Truncated || info.DroppedBytes != int64(len(torn)-len(whole)) {
		t.Fatalf("torn-tail recovery = %+v, want 5 entries and %d dropped bytes", info, len(torn)-len(whole))
	}
	if !strings.Contains(info.Reason, "torn") {
		t.Errorf("recovery reason %q does not mention the torn tail", info.Reason)
	}
	// The truncated file is a valid log again: append and re-replay.
	c2.Put("after-recovery", []byte("v"))
	c2.Close()
	c3, info3 := mustOpen(t, path)
	defer c3.Close()
	if info3.Entries != 6 || info3.Truncated {
		t.Fatalf("post-recovery reopen = %+v, want 6 clean entries", info3)
	}
	if _, ok := c3.Get("after-recovery"); !ok {
		t.Error("record appended after recovery was lost")
	}
}

// A flipped byte inside a record fails its checksum; replay keeps the
// records before it and truncates from the corruption on — including
// any records after it, per the first-bad-record rule.
func TestPersistCorruptRecordTruncatesTail(t *testing.T) {
	path := tmpCachePath(t)
	c, _ := mustOpen(t, path)
	fillCache(t, c, 3)
	sizeAfter3, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	fillCache(t, c, 6) // keys 0..5: three more records appended
	c.Close()

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte of record 4 (the first record past offset
	// sizeAfter3, skipping its frame).
	raw[sizeAfter3.Size()+frameLen+3] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	c2, info := mustOpen(t, path)
	defer c2.Close()
	if info.Entries != 3 || !info.Truncated {
		t.Fatalf("corrupt-record recovery = %+v, want 3 entries with truncation", info)
	}
	if !strings.Contains(info.Reason, "checksum") {
		t.Errorf("recovery reason %q does not mention the checksum", info.Reason)
	}
	if _, ok := c2.Get("key-0002"); !ok {
		t.Error("intact record before the corruption was dropped")
	}
	if c2.Contains("key-0004") || c2.Contains("key-0005") {
		t.Error("records after the corruption survived; replay must stop at the first bad record")
	}
}

// A file shorter than the header (killed during creation) is reset; a
// full-length header that is not ours is refused, not destroyed.
func TestPersistHeaderEdgeCases(t *testing.T) {
	short := tmpCachePath(t)
	if err := os.WriteFile(short, []byte("suss"), 0o644); err != nil {
		t.Fatal(err)
	}
	c, info := mustOpen(t, short)
	if !info.Truncated || info.DroppedBytes != 4 {
		t.Errorf("torn-header recovery = %+v, want 4 dropped bytes", info)
	}
	c.Put("k", []byte("v"))
	c.Close()
	c2, info2 := mustOpen(t, short)
	if info2.Entries != 1 || info2.Truncated {
		t.Errorf("reopen after torn-header reset = %+v, want 1 clean entry", info2)
	}
	c2.Close()

	alien := filepath.Join(t.TempDir(), "notours.log")
	if err := os.WriteFile(alien, []byte("definitely not a sussd cache file\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := NewPersistentCache(alien); err == nil {
		t.Fatal("opening a non-cache file succeeded; want a bad-magic refusal")
	}
	raw, err := os.ReadFile(alien)
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != "definitely not a sussd cache file\n" {
		t.Error("refused file was modified")
	}
}

// Re-putting an identical entry must not grow the file: the content
// address guarantees the bytes match, so the append is skipped.
func TestPersistDuplicatePutNotReappended(t *testing.T) {
	path := tmpCachePath(t)
	c, _ := mustOpen(t, path)
	c.Put("dup", []byte("value"))
	st1, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	c.Put("dup", []byte("value"))
	st2, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Size() != st1.Size() {
		t.Fatalf("duplicate Put grew the log %d → %d bytes", st1.Size(), st2.Size())
	}
	c.Close()
	c2, info := mustOpen(t, path)
	defer c2.Close()
	if info.Entries != 1 {
		t.Fatalf("recovery found %d entries, want 1", info.Entries)
	}
}

// An implausible length field (random garbage where a frame should
// be) truncates instead of attempting a huge allocation.
func TestPersistImplausibleLengthTruncates(t *testing.T) {
	path := tmpCachePath(t)
	c, _ := mustOpen(t, path)
	fillCache(t, c, 2)
	c.Close()
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	garbage := make([]byte, frameLen+16)
	binary.BigEndian.PutUint32(garbage[:4], 1<<31) // 2 GiB "record"
	if _, err := f.Write(garbage); err != nil {
		t.Fatal(err)
	}
	f.Close()

	c2, info := mustOpen(t, path)
	defer c2.Close()
	if info.Entries != 2 || !info.Truncated {
		t.Fatalf("recovery = %+v, want 2 entries with truncation", info)
	}
	if !strings.Contains(info.Reason, "implausible") {
		t.Errorf("recovery reason %q does not mention the length", info.Reason)
	}
}
