// Package service is the warm experiment daemon behind cmd/sussd: the
// same declarative sweeps the CLI runs (the fig11 FCT matrix, the
// population-scale fleet comparison) behind an HTTP/JSON API, with
// every matrix cell content-addressed by a canonical hash of its fully
// defaulted configuration (internal/service/confhash). Because each
// cell is a deterministic simulation — same config, same bytes —
// resubmitting a config the daemon has seen costs zero simulator runs,
// and a changed sweep only simulates the cells that actually changed.
//
// API:
//
//	POST /v1/jobs             submit a matrix  → {id, cells, cached}
//	GET  /v1/jobs             list batches
//	GET  /v1/jobs/{id}        per-cell status
//	GET  /v1/jobs/{id}/stream NDJSON progress until terminal
//	GET  /v1/jobs/{id}/result the CSV the CLI would emit (?wait=1 blocks)
//	GET  /v1/stats            cache hit/miss/run counters
package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"suss/internal/experiments"
	"suss/internal/runner"
	"suss/internal/scenarios"
	"suss/internal/service/confhash"
)

// Config tunes a Server.
type Config struct {
	// Workers bounds concurrently simulating cells (≤0 = GOMAXPROCS).
	Workers int
	// WallLimit arms the per-cell wall-clock watchdog (0 = off). A
	// stalled cell is reported as an error and never cached.
	WallLimit time.Duration
}

// Server is the experiment service. Create with New, expose with
// Handler; safe for concurrent requests.
type Server struct {
	cfg      Config
	cache    *Cache
	start    time.Time
	cellRuns atomic.Int64 // cells this daemon actually simulated

	mu      sync.Mutex
	batches map[string]*batch
	order   []string
	nextID  int
}

// New returns an idle server with an empty cache.
func New(cfg Config) *Server {
	return &Server{
		cfg:     cfg,
		cache:   NewCache(),
		start:   time.Now(),
		batches: make(map[string]*batch),
	}
}

// SubmitRequest is the POST /v1/jobs body. Kind selects the matrix:
//
//   - "fig11": Server (scenario server name, default google-tokyo),
//     Sizes (bytes, default experiments.DefaultSizes), Iters (default
//     3), Seed (default 1). Cells are links × sizes × algos × iters.
//   - "fleet": Flows/Shards/Arrival override the smoke-tier
//     DefaultFleetConfig; FullMix swaps in the heavy-tailed default
//     mix. Cells are 2 variants × shards.
type SubmitRequest struct {
	Kind    string  `json:"kind"`
	Server  string  `json:"server,omitempty"`
	Sizes   []int64 `json:"sizes,omitempty"`
	Iters   int     `json:"iters,omitempty"`
	Seed    int64   `json:"seed,omitempty"`
	Flows   int     `json:"flows,omitempty"`
	Shards  int     `json:"shards,omitempty"`
	Arrival float64 `json:"arrival,omitempty"`
	FullMix bool    `json:"fullmix,omitempty"`
}

// SubmitResponse acknowledges a submission. Cached counts the cells
// already warm at submit time; the batch runs only the rest.
type SubmitResponse struct {
	ID     string `json:"id"`
	Kind   string `json:"kind"`
	Cells  int    `json:"cells"`
	Cached int    `json:"cached"`
}

// Stats is the GET /v1/stats body. SimRuns is the process-wide
// simulator-run counter (runner.SimRuns): on a warm resubmission it
// does not move — the proof the cache served every cell.
type Stats struct {
	CacheHits    int64   `json:"cache_hits"`
	CacheMisses  int64   `json:"cache_misses"`
	CacheEntries int     `json:"cache_entries"`
	CellRuns     int64   `json:"cell_runs"`
	SimRuns      int64   `json:"sim_runs"`
	Jobs         int     `json:"jobs"`
	UptimeSec    float64 `json:"uptime_s"`
}

// Handler returns the service's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleStream)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	resp, err := s.Submit(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// Submit validates a request, registers the batch, and starts it in
// the background. Exposed for in-process embedding (cmd/sussim's
// -daemon mode shares it with the HTTP path).
func (s *Server) Submit(req SubmitRequest) (SubmitResponse, error) {
	seed := req.Seed
	if seed == 0 {
		seed = 1
	}
	var keys []string
	var start func(b *batch)
	switch req.Kind {
	case "fig11":
		p, err := s.planFig11(req, seed)
		if err != nil {
			return SubmitResponse{}, err
		}
		keys = p.keys
		start = func(b *batch) { go s.runFig11(b, p) }
	case "fleet":
		p, err := s.planFleet(req, seed)
		if err != nil {
			return SubmitResponse{}, err
		}
		keys = p.keys
		start = func(b *batch) { go s.runFleet(b, p) }
	default:
		return SubmitResponse{}, fmt.Errorf("unknown kind %q (want fig11 or fleet)", req.Kind)
	}

	cached := 0
	for _, k := range keys {
		if s.cache.Contains(k) {
			cached++
		}
	}
	s.mu.Lock()
	s.nextID++
	id := "j" + strconv.Itoa(s.nextID)
	b := newBatch(id, req.Kind, keys)
	s.batches[id] = b
	s.order = append(s.order, id)
	s.mu.Unlock()
	start(b)
	return SubmitResponse{ID: id, Kind: req.Kind, Cells: len(keys), Cached: cached}, nil
}

func (s *Server) planFig11(req SubmitRequest, seed int64) (fig11Plan, error) {
	srv, err := parseServer(req.Server)
	if err != nil {
		return fig11Plan{}, err
	}
	sizes := req.Sizes
	if len(sizes) == 0 {
		sizes = experiments.DefaultSizes
	}
	for _, sz := range sizes {
		if sz <= 0 {
			return fig11Plan{}, fmt.Errorf("bad size %d: must be positive bytes", sz)
		}
	}
	iters := req.Iters
	if iters <= 0 {
		iters = 3
	}
	jobs := experiments.Fig11Jobs(srv, sizes, iters, seed)
	keys := make([]string, len(jobs))
	for i := range jobs {
		jobs[i].WallLimit = s.cfg.WallLimit
		if keys[i], err = confhash.JobKey(jobs[i]); err != nil {
			return fig11Plan{}, err
		}
	}
	return fig11Plan{server: srv, sizes: sizes, iters: iters, jobs: jobs, keys: keys}, nil
}

func (s *Server) planFleet(req SubmitRequest, seed int64) (fleetPlan, error) {
	fc := experiments.DefaultFleetConfig(seed)
	if req.Flows > 0 {
		fc.Flows = req.Flows
	}
	if req.Shards > 0 {
		fc.Shards = req.Shards
	}
	if req.Arrival > 0 {
		fc.ArrivalRate = req.Arrival
	}
	if req.FullMix {
		fc.Mix = nil // fall back to workload.DefaultMix
	}
	fc = fc.Normalized()
	jobs := experiments.FleetJobs(fc)
	keys := make([]string, 0, 2*fc.Shards)
	for v := range jobs {
		jobs[v].WallLimit = s.cfg.WallLimit
		for shard := 0; shard < fc.Shards; shard++ {
			sj := jobs[v]
			sj.Shard = shard
			k, err := confhash.FleetKey(sj)
			if err != nil {
				return fleetPlan{}, err
			}
			keys = append(keys, k)
		}
	}
	return fleetPlan{fc: fc, jobs: jobs, keys: keys}, nil
}

func parseServer(name string) (scenarios.Server, error) {
	if name == "" {
		return scenarios.GoogleTokyo, nil
	}
	for _, srv := range scenarios.Servers {
		if srv.String() == name {
			return srv, nil
		}
	}
	return 0, fmt.Errorf("unknown server %q", name)
}

func (s *Server) batch(id string) *batch {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.batches[id]
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	s.mu.Unlock()
	out := make([]JobStatus, 0, len(ids))
	for _, id := range ids {
		if b := s.batch(id); b != nil {
			st, _ := b.status(false)
			out = append(out, st)
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": out})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	b := s.batch(r.PathValue("id"))
	if b == nil {
		writeError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	st, _ := b.status(true)
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	b := s.batch(r.PathValue("id"))
	if b == nil {
		writeError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	if r.URL.Query().Get("wait") != "" {
		select {
		case <-b.done:
		case <-r.Context().Done():
			return
		}
	}
	b.mu.Lock()
	state, csv, failure := b.state, b.csv, b.failure
	b.mu.Unlock()
	switch state {
	case stateDone:
		w.Header().Set("Content-Type", "text/csv")
		w.Write(csv)
	case stateFailed:
		writeError(w, http.StatusInternalServerError, "%s", failure)
	default:
		st, _ := b.status(false)
		writeJSON(w, http.StatusConflict, st)
	}
}

func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	b := s.batch(r.PathValue("id"))
	if b == nil {
		writeError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	fl, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	last := -1
	for {
		st, ver := b.status(false)
		if ver != last {
			if err := enc.Encode(st); err != nil {
				return
			}
			if fl != nil {
				fl.Flush()
			}
			last = ver
		}
		if st.State != stateRunning {
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-b.done:
			// loop once more to emit the terminal snapshot
		case <-time.After(150 * time.Millisecond):
		}
	}
}

// ReadStats snapshots the counters (also served at GET /v1/stats).
func (s *Server) ReadStats() Stats {
	s.mu.Lock()
	jobs := len(s.batches)
	s.mu.Unlock()
	return Stats{
		CacheHits:    s.cache.Hits(),
		CacheMisses:  s.cache.Misses(),
		CacheEntries: s.cache.Len(),
		CellRuns:     s.cellRuns.Load(),
		SimRuns:      runner.SimRuns(),
		Jobs:         jobs,
		UptimeSec:    time.Since(s.start).Seconds(),
	}
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.ReadStats())
}
