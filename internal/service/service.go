// Package service is the warm experiment daemon behind cmd/sussd: the
// same declarative sweeps the CLI runs (the fig11 FCT matrix, the
// population-scale fleet comparison) behind an HTTP/JSON API, with
// every matrix cell content-addressed by a canonical hash of its fully
// defaulted configuration (internal/service/confhash). Because each
// cell is a deterministic simulation — same config, same bytes —
// resubmitting a config the daemon has seen costs zero simulator runs,
// and a changed sweep only simulates the cells that actually changed.
//
// The daemon is built to survive operation, not just the happy path:
// the cache can be backed by an append-only record log (Config.
// CacheFile) that a restarted — or kill -9'd — daemon replays, batches
// are cancellable (DELETE /v1/jobs/{id}) and bounded by admission
// control (429 + Retry-After past the queued-cell limit), terminal
// batches are garbage-collected past a retention cap, and /healthz +
// /readyz expose liveness and drain state.
//
// API:
//
//	POST   /v1/jobs             submit a matrix  → {id, cells, cached}
//	GET    /v1/jobs             list batches
//	GET    /v1/jobs/{id}        per-cell status
//	DELETE /v1/jobs/{id}        cancel: no new cells start, done cells stay cached
//	GET    /v1/jobs/{id}/stream NDJSON progress until terminal
//	GET    /v1/jobs/{id}/result the CSV the CLI would emit (?wait=1 blocks)
//	GET    /v1/stats            cache/queue/eviction counters
//	GET    /healthz             liveness (always 200 while serving)
//	GET    /readyz              readiness (503 while draining)
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"suss/internal/experiments"
	"suss/internal/runner"
	"suss/internal/scenarios"
	"suss/internal/service/confhash"
)

// Defaults for the admission-control and retention knobs (Config value
// 0; negative disables the bound entirely).
const (
	DefaultMaxQueuedCells = 4096
	DefaultRetainBatches  = 64
)

// Config tunes a Server.
type Config struct {
	// Workers bounds concurrently simulating cells (≤0 = GOMAXPROCS).
	Workers int
	// WallLimit arms the per-cell wall-clock watchdog (0 = off). A
	// stalled cell is reported as an error and never cached.
	WallLimit time.Duration
	// CacheFile backs the result cache with an append-only record log:
	// Put appends, New replays, a torn/corrupt tail is truncated. Empty
	// = memory-only (a restart re-simulates everything).
	CacheFile string
	// MaxQueuedCells bounds queued-but-unsimulated cells across all
	// batches. A submit that would exceed it is refused with 429 +
	// Retry-After — except on an idle queue, where any single batch is
	// admitted so one big sweep is never unsubmittable. 0 = the
	// default; negative = unlimited.
	MaxQueuedCells int
	// RetainBatches caps terminal (done/failed/canceled) batches kept
	// in the registry; the oldest beyond the cap are evicted and
	// counted in Stats.EvictedJobs. 0 = the default; negative =
	// unlimited.
	RetainBatches int
}

func (c Config) maxQueued() int64 {
	switch {
	case c.MaxQueuedCells < 0:
		return 0 // unlimited
	case c.MaxQueuedCells == 0:
		return DefaultMaxQueuedCells
	default:
		return int64(c.MaxQueuedCells)
	}
}

func (c Config) retainBatches() int {
	switch {
	case c.RetainBatches < 0:
		return -1 // unlimited
	case c.RetainBatches == 0:
		return DefaultRetainBatches
	default:
		return c.RetainBatches
	}
}

// Server is the experiment service. Create with New, expose with
// Handler; safe for concurrent requests.
type Server struct {
	cfg      Config
	cache    *Cache
	recovery RecoveryInfo
	start    time.Time
	cellRuns atomic.Int64 // cells this daemon actually simulated
	queued   atomic.Int64 // cells admitted but not yet simulating
	evicted  atomic.Int64 // terminal batches GC'd from the registry
	draining atomic.Bool

	// rootCtx parents every batch context; Drain cancels it so daemon
	// shutdown stops all running batches. running counts live batch
	// executors.
	rootCtx    context.Context
	rootCancel context.CancelFunc
	running    sync.WaitGroup

	mu      sync.Mutex
	batches map[string]*batch
	order   []string
	nextID  int
}

// New returns an idle server. With Config.CacheFile set it replays the
// record log first — Recovery reports what it found — and every result
// cached from then on survives a crash.
func New(cfg Config) (*Server, error) {
	cache := NewCache()
	var info RecoveryInfo
	if cfg.CacheFile != "" {
		var err error
		cache, info, err = NewPersistentCache(cfg.CacheFile)
		if err != nil {
			return nil, fmt.Errorf("opening cache file: %w", err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{
		cfg:        cfg,
		cache:      cache,
		recovery:   info,
		start:      time.Now(),
		rootCtx:    ctx,
		rootCancel: cancel,
		batches:    make(map[string]*batch),
	}, nil
}

// Recovery reports what replaying the cache file found at startup
// (zero value for a memory-only server).
func (s *Server) Recovery() RecoveryInfo { return s.recovery }

// Ready reports whether the server accepts new work (false once a
// drain has begun) — the /readyz answer.
func (s *Server) Ready() bool { return !s.draining.Load() }

// BeginDrain flips the server unready: /readyz turns 503 and new
// submissions are refused with ErrDraining. Running batches continue.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Drain shuts the server down: stop admitting work, cancel every
// running batch (in-flight cells finish, queued cells are skipped),
// wait for the executors to seal their batches, and close the cache
// log. Returns ctx's error if the executors outlive it.
func (s *Server) Drain(ctx context.Context) error {
	s.BeginDrain()
	s.rootCancel()
	done := make(chan struct{})
	go func() {
		s.running.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
	}
	if cerr := s.cache.Close(); err == nil {
		err = cerr
	}
	return err
}

// ErrDraining refuses submissions during shutdown.
var ErrDraining = errors.New("service is draining, not accepting new jobs")

// OverloadError is the admission-control refusal: the queue of
// unsimulated cells is full. Clients should back off RetryAfter.
type OverloadError struct {
	Queued, Limit int64
	RetryAfter    time.Duration
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("queue full: %d cell(s) queued, limit %d; retry in %v", e.Queued, e.Limit, e.RetryAfter)
}

// retryAfter estimates how long the backlog needs to shrink: the queue
// drains at worker speed, and even a fast cell is tens of
// milliseconds, so a second per 32 queued cells is a usable floor.
func retryAfter(queued int64) time.Duration {
	d := time.Duration(queued/32+1) * time.Second
	if d > time.Minute {
		d = time.Minute
	}
	return d
}

// SubmitRequest is the POST /v1/jobs body. Kind selects the matrix:
//
//   - "fig11": Server (scenario server name, default google-tokyo),
//     Sizes (bytes, default experiments.DefaultSizes), Iters (default
//     3), Seed (default 1). Cells are links × sizes × algos × iters.
//   - "fleet": Flows/Shards/Arrival override the smoke-tier
//     DefaultFleetConfig; FullMix swaps in the heavy-tailed default
//     mix. Cells are 2 variants × shards.
type SubmitRequest struct {
	Kind    string  `json:"kind"`
	Server  string  `json:"server,omitempty"`
	Sizes   []int64 `json:"sizes,omitempty"`
	Iters   int     `json:"iters,omitempty"`
	Seed    int64   `json:"seed,omitempty"`
	Flows   int     `json:"flows,omitempty"`
	Shards  int     `json:"shards,omitempty"`
	Arrival float64 `json:"arrival,omitempty"`
	FullMix bool    `json:"fullmix,omitempty"`
}

// SubmitResponse acknowledges a submission. Cached counts the cells
// already warm at submit time; the batch runs only the rest.
type SubmitResponse struct {
	ID     string `json:"id"`
	Kind   string `json:"kind"`
	Cells  int    `json:"cells"`
	Cached int    `json:"cached"`
}

// Stats is the GET /v1/stats body. SimRuns is the process-wide
// simulator-run counter (runner.SimRuns): on a warm resubmission it
// does not move — the proof the cache served every cell.
type Stats struct {
	CacheHits    int64   `json:"cache_hits"`
	CacheMisses  int64   `json:"cache_misses"`
	CacheEntries int     `json:"cache_entries"`
	CellRuns     int64   `json:"cell_runs"`
	SimRuns      int64   `json:"sim_runs"`
	Jobs         int     `json:"jobs"`
	QueuedCells  int64   `json:"queued_cells"`
	EvictedJobs  int64   `json:"evicted_jobs"`
	Draining     bool    `json:"draining,omitempty"`
	UptimeSec    float64 `json:"uptime_s"`

	// Cache-file accounting: what startup replay found and whether any
	// appends have failed since (0 on a healthy or memory-only cache).
	CacheReplayed     int    `json:"cache_replayed,omitempty"`
	CacheDroppedBytes int64  `json:"cache_dropped_bytes,omitempty"`
	CacheDropReason   string `json:"cache_drop_reason,omitempty"`
	PersistErrors     int64  `json:"cache_persist_errors,omitempty"`
}

// Handler returns the service's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleStream)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	resp, err := s.Submit(req)
	if err != nil {
		var oe *OverloadError
		switch {
		case errors.As(err, &oe):
			w.Header().Set("Retry-After", strconv.Itoa(int(oe.RetryAfter/time.Second)))
			writeError(w, http.StatusTooManyRequests, "%v", err)
		case errors.Is(err, ErrDraining):
			w.Header().Set("Retry-After", "10")
			writeError(w, http.StatusServiceUnavailable, "%v", err)
		default:
			writeError(w, http.StatusBadRequest, "%v", err)
		}
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// Submit validates a request, applies admission control, registers the
// batch, and starts it in the background. Exposed for in-process
// embedding (cmd/sussim's -daemon mode shares it with the HTTP path).
func (s *Server) Submit(req SubmitRequest) (SubmitResponse, error) {
	if s.draining.Load() {
		return SubmitResponse{}, ErrDraining
	}
	seed := req.Seed
	if seed == 0 {
		seed = 1
	}
	var keys []string
	var run func(b *batch)
	switch req.Kind {
	case "fig11":
		p, err := s.planFig11(req, seed)
		if err != nil {
			return SubmitResponse{}, err
		}
		keys = p.keys
		run = func(b *batch) { s.runFig11(b, p) }
	case "fleet":
		p, err := s.planFleet(req, seed)
		if err != nil {
			return SubmitResponse{}, err
		}
		keys = p.keys
		run = func(b *batch) { s.runFleet(b, p) }
	default:
		return SubmitResponse{}, fmt.Errorf("unknown kind %q (want fig11 or fleet)", req.Kind)
	}

	cached := 0
	for _, k := range keys {
		if s.cache.Contains(k) {
			cached++
		}
	}
	// Admission control: bound the backlog of cells that are admitted
	// but not yet simulating. A batch landing on an idle queue is
	// always admitted (otherwise a single batch bigger than the cap
	// could never run); past that, the cap holds within one batch.
	est := int64(len(keys) - cached)
	if cap := s.cfg.maxQueued(); cap > 0 {
		if q := s.queued.Load(); q > 0 && q+est > cap {
			return SubmitResponse{}, &OverloadError{Queued: q, Limit: cap, RetryAfter: retryAfter(q)}
		}
	}
	s.queued.Add(est)

	s.mu.Lock()
	s.nextID++
	id := "j" + strconv.Itoa(s.nextID)
	b := newBatch(id, req.Kind, keys, s.rootCtx)
	b.queuedLeft.Store(est)
	s.batches[id] = b
	s.order = append(s.order, id)
	s.mu.Unlock()

	s.running.Add(1)
	go s.runBatch(b, run)
	return SubmitResponse{ID: id, Kind: req.Kind, Cells: len(keys), Cached: cached}, nil
}

// runBatch wraps a batch executor with the lifecycle bookkeeping every
// kind shares: the drain waitgroup, release of queue slots the
// executor never consumed (cancelled cells, estimate drift), and the
// retention GC once the batch is terminal.
func (s *Server) runBatch(b *batch, run func(*batch)) {
	defer s.running.Done()
	defer s.gcBatches()
	defer s.drainQueue(b)
	run(b)
}

// dequeueCell moves one of b's cells out of the admission queue — it
// is now simulating (or was skipped by cancellation). The guard keeps
// a cell that was never counted (cache estimate drift) from driving
// the global gauge negative.
func (s *Server) dequeueCell(b *batch) {
	if b.queuedLeft.Add(-1) < 0 {
		b.queuedLeft.Add(1)
		return
	}
	s.queued.Add(-1)
}

// drainQueue releases whatever share of the admission queue the batch
// still holds — the executor exited (normally, cancelled, or by
// panic), so nothing of it is queued anymore.
func (s *Server) drainQueue(b *batch) {
	if left := b.queuedLeft.Swap(-1 << 40); left > 0 {
		s.queued.Add(-left)
	}
}

// gcBatches evicts the oldest terminal batches beyond the retention
// cap. Evicted IDs 404 afterwards; the count survives in Stats.
func (s *Server) gcBatches() {
	keep := s.cfg.retainBatches()
	if keep < 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	terminal := 0
	for _, id := range s.order {
		if s.batches[id].terminal() {
			terminal++
		}
	}
	evict := terminal - keep
	if evict <= 0 {
		return
	}
	kept := s.order[:0]
	for _, id := range s.order {
		if evict > 0 && s.batches[id].terminal() {
			delete(s.batches, id)
			s.evicted.Add(1)
			evict--
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

func (s *Server) planFig11(req SubmitRequest, seed int64) (fig11Plan, error) {
	srv, err := parseServer(req.Server)
	if err != nil {
		return fig11Plan{}, err
	}
	sizes := req.Sizes
	if len(sizes) == 0 {
		sizes = experiments.DefaultSizes
	}
	for _, sz := range sizes {
		if sz <= 0 {
			return fig11Plan{}, fmt.Errorf("bad size %d: must be positive bytes", sz)
		}
	}
	iters := req.Iters
	if iters <= 0 {
		iters = 3
	}
	jobs := experiments.Fig11Jobs(srv, sizes, iters, seed)
	keys := make([]string, len(jobs))
	for i := range jobs {
		jobs[i].WallLimit = s.cfg.WallLimit
		if keys[i], err = confhash.JobKey(jobs[i]); err != nil {
			return fig11Plan{}, err
		}
	}
	return fig11Plan{server: srv, sizes: sizes, iters: iters, jobs: jobs, keys: keys}, nil
}

func (s *Server) planFleet(req SubmitRequest, seed int64) (fleetPlan, error) {
	fc := experiments.DefaultFleetConfig(seed)
	if req.Flows > 0 {
		fc.Flows = req.Flows
	}
	if req.Shards > 0 {
		fc.Shards = req.Shards
	}
	if req.Arrival > 0 {
		fc.ArrivalRate = req.Arrival
	}
	if req.FullMix {
		fc.Mix = nil // fall back to workload.DefaultMix
	}
	fc = fc.Normalized()
	jobs := experiments.FleetJobs(fc)
	keys := make([]string, 0, 2*fc.Shards)
	for v := range jobs {
		jobs[v].WallLimit = s.cfg.WallLimit
		for shard := 0; shard < fc.Shards; shard++ {
			sj := jobs[v]
			sj.Shard = shard
			k, err := confhash.FleetKey(sj)
			if err != nil {
				return fleetPlan{}, err
			}
			keys = append(keys, k)
		}
	}
	return fleetPlan{fc: fc, jobs: jobs, keys: keys}, nil
}

func parseServer(name string) (scenarios.Server, error) {
	if name == "" {
		return scenarios.GoogleTokyo, nil
	}
	for _, srv := range scenarios.Servers {
		if srv.String() == name {
			return srv, nil
		}
	}
	return 0, fmt.Errorf("unknown server %q", name)
}

func (s *Server) batch(id string) *batch {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.batches[id]
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	s.mu.Unlock()
	out := make([]JobStatus, 0, len(ids))
	for _, id := range ids {
		if b := s.batch(id); b != nil {
			st, _ := b.status(false)
			out = append(out, st)
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": out})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	b := s.batch(r.PathValue("id"))
	if b == nil {
		writeError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	st, _ := b.status(true)
	writeJSON(w, http.StatusOK, st)
}

// handleCancel is DELETE /v1/jobs/{id}: after it returns, no new cell
// of the batch starts. Cells already simulating finish (and stay
// cached); queued cells are skipped; the batch seals as "canceled".
// Idempotent, and a no-op on an already-terminal batch.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	b := s.batch(r.PathValue("id"))
	if b == nil {
		writeError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	b.requestCancel()
	st, _ := b.status(false)
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	b := s.batch(r.PathValue("id"))
	if b == nil {
		writeError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	if r.URL.Query().Get("wait") != "" {
		select {
		case <-b.done:
		case <-r.Context().Done():
			return
		}
	}
	b.mu.Lock()
	state, csv, failure := b.state, b.csv, b.failure
	b.mu.Unlock()
	switch state {
	case stateDone:
		w.Header().Set("Content-Type", "text/csv")
		w.Write(csv)
	case stateFailed:
		writeError(w, http.StatusInternalServerError, "%s", failure)
	case stateCanceled:
		st, _ := b.status(false)
		writeJSON(w, http.StatusGone, st)
	default:
		st, _ := b.status(false)
		writeJSON(w, http.StatusConflict, st)
	}
}

func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	b := s.batch(r.PathValue("id"))
	if b == nil {
		writeError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	fl, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	last := -1
	for {
		st, ver := b.status(false)
		if ver != last {
			if err := enc.Encode(st); err != nil {
				return
			}
			if fl != nil {
				fl.Flush()
			}
			last = ver
		}
		if st.State != stateRunning {
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-b.done:
			// loop once more to emit the terminal snapshot
		case <-time.After(150 * time.Millisecond):
		}
	}
}

// ReadStats snapshots the counters (also served at GET /v1/stats).
func (s *Server) ReadStats() Stats {
	s.mu.Lock()
	jobs := len(s.batches)
	s.mu.Unlock()
	return Stats{
		CacheHits:         s.cache.Hits(),
		CacheMisses:       s.cache.Misses(),
		CacheEntries:      s.cache.Len(),
		CellRuns:          s.cellRuns.Load(),
		SimRuns:           runner.SimRuns(),
		Jobs:              jobs,
		QueuedCells:       s.queued.Load(),
		EvictedJobs:       s.evicted.Load(),
		Draining:          s.draining.Load(),
		UptimeSec:         time.Since(s.start).Seconds(),
		CacheReplayed:     s.recovery.Entries,
		CacheDroppedBytes: s.recovery.DroppedBytes,
		CacheDropReason:   s.recovery.Reason,
		PersistErrors:     s.cache.PersistErrors(),
	}
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.ReadStats())
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.WriteHeader(http.StatusOK)
	w.Write([]byte("ok\n"))
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if !s.Ready() {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	w.WriteHeader(http.StatusOK)
	w.Write([]byte("ready\n"))
}
