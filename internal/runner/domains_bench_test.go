package runner

import (
	"fmt"
	"testing"
	"time"
)

// BenchmarkTreeDomains is the committed-baseline gate for parallel
// event domains (BENCH_domains.json via cmd/benchgate): the same
// 600-flow shard replayed monolithically (domains=1, the old code
// path) and split across a 10-way partition (four aggregation
// subtrees, the root, and four server blocks, enabled by the positive
// server access delay). The domains=1 variant guards the scheduler's
// composite-key refactor against sequential regressions; the ratio of
// the two variants is the measured parallel speedup, which benchgate's
// -minspeedup enforces when the machine has enough cores to express it
// (the run is skipped with a notice below GOMAXPROCS=4, where a
// barrier-synchronized cluster cannot reach 2×).
func BenchmarkTreeDomains(b *testing.B) {
	for _, n := range []int{1, 10} {
		b.Run(fmt.Sprintf("domains=%d", n), func(b *testing.B) {
			j := testFleetJob(1200) // 2 shards → 600 flows in shard 0
			j.Fleet.ServerAccessDelay = 2 * time.Millisecond
			j.Domains = n
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				r := RunFleetShard(j)
				if got := r.Completed(); got != len(r.Flows) {
					b.Fatalf("only %d/%d flows completed", got, len(r.Flows))
				}
			}
		})
	}
}
