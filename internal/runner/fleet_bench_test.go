package runner

import "testing"

// BenchmarkFleetShard is the committed-baseline gate for the
// population hot path (BENCH_fleet.json via cmd/benchgate): one
// 400-flow shard replayed serially. The job is fully seeded and the
// shard is a deterministic single-threaded simulation, so at
// -benchtime 1x each sample is one full replay and a regression in
// the tree forwarding or population plumbing shows up as a per-flow
// (×400) delta. The alloc count is deterministic up to ±~10 counts of
// map hash-seed noise, which the gate's -allocslack absorbs (see
// Makefile).
func BenchmarkFleetShard(b *testing.B) {
	j := testFleetJob(800) // 2 shards → 400 flows in shard 0
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := RunFleetShard(j)
		if got := r.Completed(); got != len(r.Flows) {
			b.Fatalf("only %d/%d flows completed", got, len(r.Flows))
		}
	}
}
