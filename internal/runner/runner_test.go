package runner

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"suss/internal/netem"
	"suss/internal/scenarios"
)

func TestMapCollectsByIndex(t *testing.T) {
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	out := Map(context.Background(), items, func(_ context.Context, idx int, item int) (int, error) {
		return item * 3, nil
	}, Options{Workers: 8})
	if len(out) != len(items) {
		t.Fatalf("got %d outcomes", len(out))
	}
	for i, o := range out {
		if o.Err != nil {
			t.Fatalf("item %d: %v", i, o.Err)
		}
		if o.Value != i*3 {
			t.Errorf("out[%d] = %d, want %d", i, o.Value, i*3)
		}
	}
}

func TestMapBoundsWorkers(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int32
	items := make([]int, 50)
	Map(context.Background(), items, func(_ context.Context, _ int, _ int) (int, error) {
		n := cur.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		cur.Add(-1)
		return 0, nil
	}, Options{Workers: workers})
	if p := peak.Load(); p > workers {
		t.Errorf("peak concurrency %d exceeds %d workers", p, workers)
	}
}

func TestMapCapturesPanics(t *testing.T) {
	items := []int{0, 1, 2, 3}
	out := Map(context.Background(), items, func(_ context.Context, idx int, _ int) (string, error) {
		if idx == 2 {
			panic("simulated crash")
		}
		return "ok", nil
	}, Options{Workers: 2})
	for i, o := range out {
		if i == 2 {
			var pe *PanicError
			if !errors.As(o.Err, &pe) {
				t.Fatalf("item 2: want PanicError, got %v", o.Err)
			}
			if pe.Index != 2 || pe.Value != "simulated crash" || len(pe.Stack) == 0 {
				t.Errorf("PanicError = %+v", pe)
			}
			continue
		}
		if o.Err != nil || o.Value != "ok" {
			t.Errorf("item %d: %q, %v", i, o.Value, o.Err)
		}
	}
}

func TestMapCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	items := make([]int, 20)
	out := Map(ctx, items, func(_ context.Context, idx int, _ int) (int, error) {
		if idx == 2 {
			cancel()
		}
		return idx, nil
	}, Options{Workers: 1})
	// With one worker, jobs run in index order: the first three finish,
	// everything after the cancellation errors out.
	for i := 0; i <= 2; i++ {
		if out[i].Err != nil {
			t.Errorf("item %d: unexpected error %v", i, out[i].Err)
		}
	}
	errored := 0
	for _, o := range out[3:] {
		if errors.Is(o.Err, context.Canceled) {
			errored++
		}
	}
	if errored != len(items)-3 {
		t.Errorf("%d/%d post-cancel jobs carry ctx error", errored, len(items)-3)
	}
}

func TestMapProgress(t *testing.T) {
	var mu sync.Mutex
	var dones []int
	total := 0
	items := make([]int, 17)
	Map(context.Background(), items, func(_ context.Context, _ int, _ int) (int, error) {
		return 0, nil
	}, Options{Workers: 4, Progress: func(done, tot int) {
		mu.Lock()
		dones = append(dones, done)
		total = tot
		mu.Unlock()
	}})
	if total != len(items) || len(dones) != len(items) {
		t.Fatalf("progress calls = %d, total = %d", len(dones), total)
	}
	for i, d := range dones {
		if d != i+1 {
			t.Fatalf("done sequence not strictly increasing: %v", dones)
		}
	}
}

func TestRunReportsIncomplete(t *testing.T) {
	// 64 MB over a ~300 Mbps wired path cannot finish inside a 100 ms
	// horizon: the job must come back as an ErrIncomplete result, not a
	// panic.
	sc := scenarios.New(scenarios.GoogleTokyo, netem.Wired, 1)
	res := Run(context.Background(), []Job{
		{Scenario: sc, Algo: Cubic, Size: 64 << 20, Horizon: 100 * time.Millisecond},
		{Scenario: sc, Algo: Cubic, Size: 64 << 10},
	}, Options{Workers: 2})
	if !errors.Is(res[0].Err, ErrIncomplete) {
		t.Errorf("short horizon: want ErrIncomplete, got %v", res[0].Err)
	}
	if res[0].Completed {
		t.Error("short horizon flow reported completed")
	}
	if res[1].Err != nil || !res[1].Completed {
		t.Errorf("64 KB flow should complete: %v", res[1].Err)
	}
}

func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	sc := scenarios.New(scenarios.GoogleTokyo, netem.LTE4G, 7)
	var jobs []Job
	for _, algo := range []Algo{Cubic, Suss} {
		for it := 0; it < 3; it++ {
			jobs = append(jobs, Job{Scenario: sc, Algo: algo, Size: 256 << 10, Iter: it})
		}
	}
	seq := Run(context.Background(), jobs, Options{Workers: 1})
	par := Run(context.Background(), jobs, Options{Workers: 4})
	for i := range jobs {
		if seq[i].DownloadResult != par[i].DownloadResult {
			t.Errorf("job %d differs across worker counts:\n  seq: %+v\n  par: %+v",
				i, seq[i].DownloadResult, par[i].DownloadResult)
		}
	}
}

func TestJobIterPerturbsSeed(t *testing.T) {
	sc := scenarios.New(scenarios.GoogleTokyo, netem.LTE4G, 5)
	a := Download(Job{Scenario: sc, Algo: Suss, Size: 1 << 20, Iter: 3})
	b := Download(Job{Scenario: sc, Algo: Suss, Size: 1 << 20, Iter: 3})
	if a != b {
		t.Errorf("same iter differs: %+v vs %+v", a, b)
	}
	c := Download(Job{Scenario: sc, Algo: Suss, Size: 1 << 20, Iter: 4})
	if c.FCT == a.FCT {
		t.Log("different iters gave identical FCT (possible but unlikely on 4G)")
	}
}
