package runner

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"suss/internal/cc"
	"suss/internal/core"
	"suss/internal/netsim"
	"suss/internal/obs"
	"suss/internal/scenarios"
	"suss/internal/tcp"
)

// DefaultHorizon bounds a single download simulation. FCTs in the
// evaluation are seconds, not minutes, so a flow still running at the
// horizon is pathological and reported as incomplete.
const DefaultHorizon = 20 * time.Minute

// ErrIncomplete marks a download whose flow did not finish within the
// horizon.
var ErrIncomplete = errors.New("flow did not complete within the horizon")

// Job declares one seeded file download over an internet-matrix
// scenario: the unit of work every sweep in the evaluation fans out
// over. Iter perturbs the impairment seed so repeated runs sample the
// stochastic wireless models, mirroring the paper's 50 iterations; the
// effective seed depends only on (Scenario.Seed, Iter), never on
// execution order.
type Job struct {
	Scenario scenarios.Scenario
	Algo     Algo
	Size     int64
	Iter     int
	// Backend selects the wire backend carrying the flow's frames:
	// "" or "sim" is the deterministic simulator (default); "pipe"
	// runs the same transport over the in-memory wall-clock pipe
	// (Observe, Impair and WallLimit do not apply there, and results
	// are wall-clock measurements, not deterministic replays).
	Backend string
	// SussOpt overrides the SUSS configuration when Algo == Suss (nil
	// = defaults); ablations use it to disable individual mechanisms.
	SussOpt *core.Options
	// Horizon caps simulated time (0 = DefaultHorizon).
	Horizon time.Duration
	// Observe attaches a flight recorder (sender, receiver, controller
	// and every forward link) and fills DownloadResult.Ledger. Each job
	// gets its own registry, so observed sweeps stay race-free at any
	// worker count.
	Observe bool
	// Transport overrides the TCP configuration (nil = DefaultConfig);
	// chaos runs use it to switch on the hardening knobs (F-RTO,
	// adaptive reordering window, a tighter RTO give-up cap).
	Transport *tcp.Config
	// WallLimit arms a wall-clock watchdog on the simulation: a job
	// that burns this much real time without draining is killed and
	// reported as a *StallError (with a flight-recorder tail when the
	// job is observed). Zero disables the watchdog. A watchdogged job
	// is always observed, so a stall dump is never empty.
	WallLimit time.Duration
	// Impair, when non-nil, runs after the topology is built and before
	// the flow starts — the hook where chaos attaches impairment stages
	// and receiver fault modes.
	Impair func(env ChaosEnv)
	// Domains > 1 partitions the simulation into that many parallel
	// event domains (netsim.Cluster): sender in one, core wire plus
	// impaired last hop plus client in the other. Results are identical
	// to the monolithic run — the cluster's lookahead protocol is
	// deterministic — just computed on more cores. Sim backend only.
	// Observed jobs fall back to a monolithic run: flight recorders are
	// shared rings, and domains running concurrently would race on them.
	Domains int
}

// ChaosEnv is what an Impair hook gets to work with: the simulation,
// the built path, the flow about to start, the scenario's RNG, and the
// derived seed so hooks can build private RNG streams that stay
// decoupled from the scenario's own draws.
//
// In a multi-domain run (Job.Domains > 1) Sim is the event domain that
// owns the impairable end of the path — the last hop and the receiver —
// which is where every catalog impairment attaches. Hooks touching the
// sender side must schedule through Path.Sender.Sim() instead.
type ChaosEnv struct {
	Sim  *netsim.Simulator
	Path *netsim.Path
	Flow *tcp.Flow
	RNG  *rand.Rand
	Seed int64
}

func (j Job) describe() string {
	return fmt.Sprintf("%s %s size=%d iter=%d", j.Scenario.Name(), j.Algo, j.Size, j.Iter)
}

// DownloadResult captures one file download.
type DownloadResult struct {
	Algo        Algo
	Size        int64
	FCT         time.Duration // receiver-side (paper's wget-style FCT)
	Delivered   int64
	Segments    int
	Retrans     int
	RTOs        int
	Drops       int     // bottleneck + last-hop drops (congestion + erasures)
	LossRate    float64 // drops / data packets offered to the last hop
	PeakQueue   int     // max bottleneck queue occupancy (bytes)
	MaxG        int     // SUSS only
	AccelRounds int     // SUSS only
	Completed   bool
	// Ledger is the cross-layer loss accounting (nil unless
	// Job.Observe was set).
	Ledger *obs.LossLedger
	// FlowErr is the transport's terminal error (tcp.ErrRetransLimit
	// when the flow gave up on a dead path); nil for healthy flows.
	FlowErr error
	// Stall is non-nil when the watchdog killed the simulation.
	Stall *StallError
}

// recorderAttacher is implemented by every congestion controller that
// can emit into the flight recorder.
type recorderAttacher interface {
	AttachRecorder(*obs.FlowRecorder)
}

// Result pairs a job with its measurement. Err is non-nil when the
// flow did not complete (wrapping ErrIncomplete), when the simulation
// panicked (*PanicError), or when the batch was cancelled; the
// embedded DownloadResult still carries whatever was measured.
type Result struct {
	Job Job
	DownloadResult
	Err error
}

// Download executes one job synchronously. It is the single-simulation
// primitive all experiment sweeps reduce to.
func Download(j Job) DownloadResult {
	switch j.Backend {
	case "", "sim":
	case "pipe":
		simRuns.Add(1)
		return downloadPipe(j)
	default:
		panic("runner: unknown backend " + j.Backend)
	}
	simRuns.Add(1)
	sc := j.Scenario
	sc.Seed = sc.Seed*1000003 + int64(j.Iter)*7919 + 1
	var (
		eng Engine
		p   *netsim.Path
		rng *rand.Rand
	)
	multi := j.Domains > 1 && !j.Observe
	if multi {
		c := netsim.NewCluster(j.Domains)
		p, rng = sc.BuildOn(c)
		eng = c
	} else {
		sim := netsim.NewSimulator()
		p, rng = sc.Build(sim)
		eng = sim
	}
	cfg := tcp.DefaultConfig()
	if j.Transport != nil {
		cfg = *j.Transport
	}
	f := tcp.NewFlow(p.Sim, cfg, 1, p.Sender, tcp.NewDemux(p.Sender), p.Receiver, tcp.NewDemux(p.Receiver), j.Size, nil)
	var ctrl cc.Controller
	if j.Algo == Suss && j.SussOpt != nil {
		ctrl = core.New(f.Sender, *j.SussOpt)
	} else {
		ctrl = NewController(j.Algo, f.Sender)
	}
	f.Sender.SetController(ctrl)
	var reg *obs.Registry
	if (j.Observe || j.WallLimit > 0) && !multi {
		reg = obs.NewRegistry(0)
		fr := reg.Flow(1)
		f.Sender.AttachRecorder(fr)
		f.Receiver.AttachRecorder(fr)
		if a, ok := ctrl.(recorderAttacher); ok {
			a.AttachRecorder(fr)
		}
		// Every forward link: the ledger needs all data-path drops, not
		// just the last hop's.
		for i, l := range p.Fwd {
			l.AttachRecorder(reg.Link(fmt.Sprintf("fwd%d/%s", i, l.Name())))
		}
	}
	if j.Impair != nil {
		envSim := p.Sim
		if s := p.Receiver.Sim(); s != nil {
			envSim = s
		}
		j.Impair(ChaosEnv{Sim: envSim, Path: p, Flow: f, RNG: rng, Seed: sc.Seed})
	}
	f.StartAt(p.Sim, 0)
	horizon := j.Horizon
	if horizon <= 0 {
		horizon = DefaultHorizon
	}
	var stall *StallError
	if _, err := RunGuarded(eng, reg, horizon, j.WallLimit, j.describe()); err != nil {
		stall = err.(*StallError)
	}

	last := p.Fwd[len(p.Fwd)-1]
	lst := last.Stats()
	res := DownloadResult{
		Algo:      j.Algo,
		Size:      j.Size,
		FCT:       f.FCT(),
		Delivered: f.Sender.Delivered(),
		Segments:  f.Sender.Stats().SegmentsSent,
		Retrans:   f.Sender.Stats().Retransmissions,
		RTOs:      f.Sender.Stats().RTOs,
		Drops:     lst.DroppedPackets + lst.ErasedPackets,
		PeakQueue: lst.MaxQueueBytes,
		Completed: f.Done(),
		FlowErr:   f.Sender.Err(),
		Stall:     stall,
	}
	offered := lst.EnqueuedPackets + lst.DroppedPackets
	if offered > 0 {
		res.LossRate = float64(res.Drops) / float64(offered)
	}
	if s, ok := ctrl.(*core.Suss); ok {
		res.MaxG = s.Stats().MaxG
		res.AccelRounds = s.Stats().AcceleratedRounds
	}
	if reg != nil {
		links := reg.Links()
		lcs := make([]*obs.LinkCounters, len(links))
		for i, l := range links {
			lcs[i] = &l.C
		}
		led := obs.MakeLedger(&reg.Flow(1).C, lcs...)
		res.Ledger = &led
	}
	return res
}

// Run executes a job batch on the worker pool and returns results in
// job order. One pathological job fails loudly as an error-carrying
// result without aborting the rest of the sweep.
func Run(ctx context.Context, jobs []Job, opt Options) []Result {
	outs := Map(ctx, jobs, func(_ context.Context, _ int, j Job) (DownloadResult, error) {
		r := Download(j)
		switch {
		case r.Stall != nil:
			return r, fmt.Errorf("%s: %w", j.describe(), r.Stall)
		case r.FlowErr != nil:
			return r, fmt.Errorf("%s: %w", j.describe(), r.FlowErr)
		case !r.Completed:
			return r, fmt.Errorf("%s: %w", j.describe(), ErrIncomplete)
		}
		return r, nil
	}, opt)
	res := make([]Result, len(jobs))
	for i := range outs {
		res[i] = Result{Job: jobs[i], DownloadResult: outs[i].Value, Err: outs[i].Err}
	}
	return res
}
