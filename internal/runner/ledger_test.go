package runner

import (
	"testing"
	"time"

	"suss/internal/netem"
	"suss/internal/scenarios"
)

// wiredLossy builds a fully deterministic wired path whose only loss
// source is drop-tail overflow at the last hop: no random erasures, no
// jitter, no rate variation, and a buffer well under a BDP so
// slow-start overshoot must drop.
func wiredLossy(seed int64) scenarios.Scenario {
	prof := netem.DefaultProfile(netem.Wired, 20e6)
	prof.BufferBDPs = 0.3
	return scenarios.Scenario{
		Server:   scenarios.GoogleTokyo,
		Link:     netem.Wired,
		RTT:      80 * time.Millisecond,
		LastHop:  prof,
		CoreRate: 1e9,
		Seed:     seed,
	}
}

// TestLedgerConsistencyWiredDroptail is the flight recorder's
// end-to-end books-balance check: on a deterministic wired path where
// the only losses are qdisc tail drops, the sender's loss detector
// must account for exactly the packets the path dropped, and the
// retransmit-cause partition must add up.
func TestLedgerConsistencyWiredDroptail(t *testing.T) {
	for _, algo := range []Algo{Cubic, Suss} {
		t.Run(algo.String(), func(t *testing.T) {
			res := Download(Job{Scenario: wiredLossy(3), Algo: algo, Size: 4 << 20, Observe: true})
			if !res.Completed {
				t.Fatal("flow did not complete")
			}
			l := res.Ledger
			if l == nil {
				t.Fatal("Observe job returned nil ledger")
			}
			for _, p := range l.Check() {
				t.Errorf("ledger inconsistent: %s", p)
			}
			if l.PathErasures != 0 {
				t.Fatalf("wired path recorded %d erasures, want 0", l.PathErasures)
			}
			if l.PathDataDrops == 0 {
				t.Fatal("scenario produced no drops; the consistency check is vacuous")
			}
			if l.SegsRetrans != l.RetransFast+l.RetransRTO+l.RetransTLP {
				t.Errorf("retransmit causes do not partition: retrans=%d fast=%d rto=%d tlp=%d",
					l.SegsRetrans, l.RetransFast, l.RetransRTO, l.RetransTLP)
			}
			// With neither RTOs nor TLP probes, every retransmission is
			// loss-detector driven and every qdisc drop must be seen by
			// the detector exactly once.
			if l.RTOFires == 0 && l.TLPFires == 0 {
				if l.SpuriousRetrans != 0 {
					t.Errorf("deterministic drop-tail run flagged %d spurious retransmits", l.SpuriousRetrans)
				}
				if l.PathDataDrops != l.LossDetected {
					t.Errorf("qdisc drops (%d) != sender-detected losses (%d)", l.PathDataDrops, l.LossDetected)
				}
				if l.SegsRetrans != l.LossDetected {
					t.Errorf("retransmissions (%d) != detected losses (%d)", l.SegsRetrans, l.LossDetected)
				}
			} else {
				t.Logf("recovery used RTO/TLP (rtos=%d tlps=%d); strict drop==detected identity not applicable",
					l.RTOFires, l.TLPFires)
			}
			// The ledger must agree with the legacy per-sender stats: both
			// count the same retransmissions and RTO firings.
			if int(l.SegsRetrans) != res.Retrans {
				t.Errorf("ledger retrans %d != Stats().Retransmissions %d", l.SegsRetrans, res.Retrans)
			}
			if int(l.RTOFires) != res.RTOs {
				t.Errorf("ledger RTO fires %d != Stats().RTOs %d", l.RTOFires, res.RTOs)
			}
		})
	}
}

// TestObserveDoesNotChangeOutcome pins the recorder's zero-overhead
// contract at the result level: attaching it must not perturb the
// simulation.
func TestObserveDoesNotChangeOutcome(t *testing.T) {
	base := Download(Job{Scenario: wiredLossy(3), Algo: Suss, Size: 2 << 20})
	obs := Download(Job{Scenario: wiredLossy(3), Algo: Suss, Size: 2 << 20, Observe: true})
	obs.Ledger = nil
	if base != obs {
		t.Errorf("observed run diverged from unobserved run:\n  base: %+v\n  obs:  %+v", base, obs)
	}
}
