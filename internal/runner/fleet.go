package runner

import (
	"context"
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"

	"suss/internal/core"
	"suss/internal/netsim"
	"suss/internal/obs"
	"suss/internal/scenarios"
	"suss/internal/stats"
	"suss/internal/tcp"
	"suss/internal/workload"
)

// FleetJob declares one shard of a population simulation: a slice of
// the flow population replayed over its own bottleneck tree. Shards
// are fully independent simulations — the runner executes one per
// worker and the experiment layer merges the records — so a fleet
// scales to all cores without any cross-simulator coupling.
type FleetJob struct {
	Fleet scenarios.Fleet
	Algo  Algo
	// Pop describes the whole population; the job simulates shard
	// Shard of Shards.
	Pop    workload.PopulationSpec
	Shard  int
	Shards int
	// SussOpt overrides the SUSS configuration when Algo == Suss.
	SussOpt *core.Options
	// Transport overrides the TCP configuration (nil = DefaultConfig).
	Transport *tcp.Config
	// Horizon caps simulated time past the last arrival (0 =
	// DefaultHorizon). The simulation stops early once every flow
	// completes.
	Horizon time.Duration
	// Observe attaches the flight recorder to every flow and every
	// data-path link and fills ShardResult.Ledger.
	Observe bool
	// WallLimit arms the wall-clock watchdog (see Job.WallLimit).
	WallLimit time.Duration
	// Impair, when non-nil, runs after the tree is built and before
	// any flow starts — the chaos hook for attaching impairment stages
	// to tree links.
	Impair func(env FleetChaosEnv)
	// Domains > 1 runs the shard's tree as a parallel event-domain
	// cluster (netsim.NewTreeOn's partitioner: one domain per
	// aggregation subtree, then the root, then server blocks when
	// Fleet.ServerAccessDelay is positive). Deterministic: records are
	// identical to the monolithic shard at any domain count. Observed
	// jobs fall back to a monolithic run — recorders are shared rings
	// and would race across domains.
	Domains int
}

// FleetChaosEnv is what a fleet Impair hook gets to work with. In a
// multi-domain run Sim is domain 0 (trunk side); hooks must confine
// impairment stages to links whose endpoints live in one domain —
// cross-domain links reject impairment pipelines, because a stage
// could reshape arrivals below the propagation-delay lookahead.
type FleetChaosEnv struct {
	Sim  *netsim.Simulator
	Tree *netsim.Tree
	RNG  *rand.Rand
	Seed int64
}

func (j FleetJob) describe() string {
	return fmt.Sprintf("fleet %s shard=%d/%d flows=%d", j.Algo, j.Shard, j.Shards, j.Pop.ShardFlows(j.Shard, j.Shards))
}

// FlowRecord is one population flow's measurement.
type FlowRecord struct {
	ID        int
	Class     workload.Class
	Size      int64
	Start     time.Duration
	FCT       time.Duration // zero when incomplete
	Completed bool
	Retrans   int
	RTOs      int
}

// ShardResult is one shard's population-level measurement.
type ShardResult struct {
	Shard int
	Algo  Algo
	Flows []FlowRecord

	// Core is the shared bottleneck's link statistics; TotalDataDrops
	// sums congestion drops over every data-path link (server access,
	// core, aggregation, leaf access).
	Core           netsim.LinkStats
	TotalDataDrops int

	// JainGoodput is Jain's index over completed flows' goodputs
	// (size/FCT) — the contention-fairness number the fleet report
	// tracks.
	JainGoodput float64

	// Ledger aggregates cross-layer loss accounting over every flow,
	// with each link counted once (nil unless Observe).
	Ledger *obs.LossLedger

	// SimEnd is the virtual time the shard stopped at.
	SimEnd time.Duration
	// Stall is non-nil when the watchdog killed the shard.
	Stall *StallError
	// Err reports a shard that could not run at all (a degenerate
	// Fleet with no clients or servers); the other fields are zero.
	// Execution failures keep their dedicated channels: watchdog kills
	// land in Stall, panics in FleetResult.Err.
	Err error `json:"-"`
}

// Completed counts finished flows.
func (r ShardResult) Completed() int {
	n := 0
	for _, f := range r.Flows {
		if f.Completed {
			n++
		}
	}
	return n
}

// RunFleetShard executes one shard synchronously: generate the
// shard's population slice, wire its tree, replay every flow at its
// arrival time, and collect the records. Determinism contract: the
// result depends only on the job's spec fields, never on wall clock
// or worker scheduling.
func RunFleetShard(j FleetJob) ShardResult {
	if j.Shards <= 0 {
		j.Shards = 1
	}
	// A degenerate tree has no leaf to place a flow on; the round-robin
	// spread below would divide by zero. Failing up front keeps the
	// root cause readable instead of burying it in panic capture.
	if j.Fleet.Groups <= 0 || j.Fleet.HostsPerGroup <= 0 || j.Fleet.Servers <= 0 {
		return ShardResult{Shard: j.Shard, Algo: j.Algo, Err: fmt.Errorf(
			"runner: degenerate fleet for %s: groups=%d hosts/group=%d servers=%d (all must be positive)",
			j.describe(), j.Fleet.Groups, j.Fleet.HostsPerGroup, j.Fleet.Servers)}
	}
	simRuns.Add(1)
	flows := j.Pop.Shard(j.Shard, j.Shards)

	fl := j.Fleet
	fl.Seed = fl.Seed*1000003 + int64(j.Shard)*7919 + 1
	var (
		eng  Engine
		tree *netsim.Tree
		rng  *rand.Rand
	)
	multi := j.Domains > 1 && !j.Observe
	if multi {
		c := netsim.NewCluster(j.Domains)
		tree, rng = fl.BuildOn(c)
		eng = c
	} else {
		sim := netsim.NewSimulator()
		tree, rng = fl.Build(sim)
		eng = sim
	}

	cfg := tcp.DefaultConfig()
	if j.Transport != nil {
		cfg = *j.Transport
	}

	// One demux per host; every flow registers under its own ID.
	srvMux := make([]*tcp.Demux, len(tree.Servers))
	for s, h := range tree.Servers {
		srvMux[s] = tcp.NewDemux(h)
	}
	cliMux := make([]*tcp.Demux, tree.NumClients())
	for c, h := range tree.Clients {
		cliMux[c] = tcp.NewDemux(h)
	}

	var reg *obs.Registry
	if (j.Observe || j.WallLimit > 0) && !multi {
		reg = obs.NewRegistry(0)
		for i, l := range downPathLinks(tree) {
			l.AttachRecorder(reg.Link(fmt.Sprintf("down%d/%s", i, l.Name())))
		}
	}

	// Flows are spread round-robin: flow i downloads from server
	// i%Servers to client i%NumClients, so every leaf and every branch
	// carries its share of the population.
	tflows := make([]*tcp.Flow, len(flows))
	// Completion is counted atomically: in a cluster every client
	// domain's goroutine fires OnComplete callbacks concurrently.
	var completed atomic.Int64
	for i, fs := range flows {
		s := i % len(tree.Servers)
		c := i % tree.NumClients()
		f := tcp.NewFlow(tree.Sim, cfg, netsim.FlowID(i+1),
			tree.Servers[s], srvMux[s], tree.Clients[c], cliMux[c], fs.Size, nil)
		var ctrl = NewController(j.Algo, f.Sender)
		if j.Algo == Suss && j.SussOpt != nil {
			ctrl = core.New(f.Sender, *j.SussOpt)
		}
		f.Sender.SetController(ctrl)
		if reg != nil {
			fr := reg.Flow(int32(i + 1))
			f.Sender.AttachRecorder(fr)
			f.Receiver.AttachRecorder(fr)
			if a, ok := ctrl.(recorderAttacher); ok {
				a.AttachRecorder(fr)
			}
		}
		prev := f.Receiver.OnComplete
		f.Receiver.OnComplete = func(now time.Duration) {
			prev(now)
			completed.Add(1)
		}
		f.StartAt(tree.Sim, fs.Start)
		tflows[i] = f
	}
	// Stop as soon as the whole population has finished; abandoned
	// flows (dead-path aborts) drain the event queue on their own. A
	// cluster stops at the next window barrier — the deterministic stop
	// point — while a lone simulator stops at the next event.
	allDone := func() bool { return completed.Load() == int64(len(flows)) }
	if c := tree.Cluster; c != nil {
		c.StopAtBarrier(allDone)
		defer c.StopAtBarrier(nil)
	} else {
		eng.StopWhen(allDone)
		defer eng.StopWhen(nil)
	}

	if j.Impair != nil {
		j.Impair(FleetChaosEnv{Sim: tree.Sim, Tree: tree, RNG: rng, Seed: fl.Seed})
	}

	slack := j.Horizon
	if slack <= 0 {
		slack = DefaultHorizon
	}
	horizon := workload.Horizon(flows, slack)
	var stall *StallError
	end, err := RunGuarded(eng, reg, horizon, j.WallLimit, j.describe())
	if err != nil {
		stall = err.(*StallError)
	}

	res := ShardResult{Shard: j.Shard, Algo: j.Algo, Flows: make([]FlowRecord, len(flows)), SimEnd: end, Stall: stall}
	var goodputs []float64
	for i, fs := range flows {
		f := tflows[i]
		st := f.Sender.Stats()
		rec := FlowRecord{
			ID:        fs.ID,
			Class:     fs.Class,
			Size:      fs.Size,
			Start:     fs.Start,
			FCT:       f.FCT(),
			Completed: f.Done(),
			Retrans:   st.Retransmissions,
			RTOs:      st.RTOs,
		}
		res.Flows[i] = rec
		if rec.Completed && rec.FCT > 0 {
			goodputs = append(goodputs, float64(rec.Size)/rec.FCT.Seconds())
		}
	}
	res.JainGoodput = stats.JainIndex(goodputs)
	res.Core = tree.Core.Stats()
	for _, l := range downPathLinks(tree) {
		res.TotalDataDrops += l.Stats().DroppedPackets
	}
	if reg != nil {
		res.Ledger = shardLedger(reg, len(flows))
	}
	return res
}

// downPathLinks lists every link the population's data crosses, each
// exactly once, in a deterministic order (server access, core,
// aggregation, leaf access).
func downPathLinks(t *netsim.Tree) []*netsim.Link {
	out := make([]*netsim.Link, 0, len(t.SrvUp)+1+len(t.AggDown)+len(t.AccessDown))
	out = append(out, t.SrvUp...)
	out = append(out, t.Core)
	out = append(out, t.AggDown...)
	out = append(out, t.AccessDown...)
	return out
}

// shardLedger sums the per-flow ledgers and counts every link once:
// LossLedger.Add is additive over flows, but the shared links would be
// double-counted if added per flow.
func shardLedger(reg *obs.Registry, nflows int) *obs.LossLedger {
	links := reg.Links()
	lcs := make([]*obs.LinkCounters, len(links))
	for i, l := range links {
		lcs[i] = &l.C
	}
	led := obs.MakeLedger(&reg.Flow(1).C, lcs...)
	for id := 2; id <= nflows; id++ {
		led.Add(obs.MakeLedger(&reg.Flow(int32(id)).C))
	}
	return &led
}

// RunFleet executes every shard of the population on the worker pool
// and returns the results in shard order — byte-identical merges at
// any worker count, exactly like Run. A shard that panics or stalls
// carries its error without aborting the rest of the fleet.
func RunFleet(ctx context.Context, j FleetJob, opt Options) []FleetResult {
	if j.Shards <= 0 {
		j.Shards = 1
	}
	shards := make([]int, j.Shards)
	for i := range shards {
		shards[i] = i
	}
	outs := Map(ctx, shards, func(_ context.Context, _ int, shard int) (ShardResult, error) {
		sj := j
		sj.Shard = shard
		r := RunFleetShard(sj)
		switch {
		case r.Err != nil:
			return r, r.Err
		case r.Stall != nil:
			return r, fmt.Errorf("%s: %w", sj.describe(), r.Stall)
		}
		return r, nil
	}, opt)
	res := make([]FleetResult, len(outs))
	for i, o := range outs {
		res[i] = FleetResult{ShardResult: o.Value, Err: o.Err}
	}
	return res
}

// FleetResult pairs a shard result with its execution error (panic,
// stall, or cancellation).
type FleetResult struct {
	ShardResult
	Err error
}
