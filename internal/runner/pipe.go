package runner

import (
	"time"

	"suss/internal/cc"
	"suss/internal/core"
	"suss/internal/tcp"
	"suss/internal/wire/pipebackend"
)

// downloadPipe executes the job over the in-memory pipe backend:
// real encoded frames crossing between two reactor goroutines, with
// transport timers firing at wall-clock pace. The scenario maps onto
// the pipe's small path model — one-way delay RTT/2 and the
// bottleneck's serialization rate — so FCTs are comparable to (not
// identical with) the simulator backend's. Observe, Impair and
// WallLimit are simulator-backend features and do not apply here;
// Horizon bounds wall-clock time (virtual time is pinned to it).
func downloadPipe(j Job) DownloadResult {
	sc := j.Scenario
	be := pipebackend.New(pipebackend.Config{Delay: sc.RTT / 2, Rate: sc.BtlBw()})
	defer be.Close()
	sconn, rconn, err := be.FlowConns(1)
	if err != nil {
		panic("runner: pipe backend rejected flow 1: " + err.Error())
	}

	cfg := tcp.DefaultConfig()
	if j.Transport != nil {
		cfg = *j.Transport
	}
	f := tcp.NewFlowOver(cfg, 1, sconn, rconn, j.Size, nil)
	var ctrl cc.Controller
	if j.Algo == Suss && j.SussOpt != nil {
		ctrl = core.New(f.Sender, *j.SussOpt)
	} else {
		ctrl = NewController(j.Algo, f.Sender)
	}
	f.Sender.SetController(ctrl)

	done := make(chan struct{})
	be.B().Reactor().DoWait(func() {
		complete := f.Receiver.OnComplete // records CompletedAt
		f.Receiver.OnComplete = func(now time.Duration) {
			complete(now)
			close(done)
		}
	})
	be.A().Reactor().DoWait(func() {
		sim := be.A().Reactor().Sim()
		f.StartAt(sim, sim.Now())
	})

	horizon := j.Horizon
	if horizon <= 0 {
		horizon = DefaultHorizon
	}
	completed := false
	select {
	case <-done:
		completed = true
	case <-time.After(horizon):
	}
	// The receiver finishing does not mean the sender saw the final
	// ACK yet; give it a short grace so its counters settle.
	if completed {
		for waited := time.Duration(0); waited < time.Second; waited += 5 * time.Millisecond {
			var fin bool
			be.A().Reactor().DoWait(func() { fin = f.Sender.Finished() })
			if fin {
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	res := DownloadResult{Algo: j.Algo, Size: j.Size, Completed: completed}
	be.A().Reactor().DoWait(func() {
		st := f.Sender.Stats()
		res.Delivered = f.Sender.Delivered()
		res.Segments = st.SegmentsSent
		res.Retrans = st.Retransmissions
		res.RTOs = st.RTOs
		res.FlowErr = f.Sender.Err()
		if s, ok := ctrl.(*core.Suss); ok {
			res.MaxG = s.Stats().MaxG
			res.AccelRounds = s.Stats().AcceleratedRounds
		}
	})
	if completed {
		res.FCT = f.FCT() // written before done closed; safe to read
	}
	ast := be.A().Stats()
	res.Drops = int(ast.ImpairDrops)
	if ast.FramesOut > 0 {
		res.LossRate = float64(ast.ImpairDrops) / float64(ast.FramesOut)
	}
	return res
}
