package runner

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"suss/internal/obs"
)

// stallTailEvents is how many trailing flight-recorder events a
// StallError carries — enough to see what the simulation was doing
// when the watchdog pulled the plug, small enough to read.
const stallTailEvents = 40

// StallError reports a simulation the watchdog killed: it burned its
// wall-clock budget without draining, which in a virtual-time
// simulator means a livelocked event loop (events begetting events at
// a frozen or crawling clock), never a slow scenario.
type StallError struct {
	// Desc identifies the job.
	Desc string
	// Wall is the wall-clock budget that expired.
	Wall time.Duration
	// SimTime is the virtual time the simulation had reached.
	SimTime time.Duration
	// Pending is the event-queue depth at the kill.
	Pending int
	// Events is the tail of the flight-recorder ring at the kill
	// (empty when the job ran unobserved).
	Events []obs.Event
}

// Error implements error.
func (e *StallError) Error() string {
	return fmt.Sprintf("watchdog: %s stalled after %v wall (sim time %v, %d events pending)",
		e.Desc, e.Wall, e.SimTime, e.Pending)
}

// Dump renders the event tail for diagnostics (the chaos harness
// writes it into the CI artifact on failure).
func (e *StallError) Dump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\nlast %d flight-recorder events:\n", e.Error(), len(e.Events))
	for _, ev := range e.Events {
		b.WriteString(obs.FormatEvent(ev))
		b.WriteByte('\n')
	}
	return b.String()
}

// Engine is the simulation driver RunGuarded watches: the
// single-threaded netsim.Simulator or a multi-domain netsim.Cluster.
// Both stop at the next event boundary when the StopWhen predicate
// fires.
type Engine interface {
	Run(until time.Duration) time.Duration
	Pending() int
	StopWhen(pred func() bool)
	// StopPred reads back the installed StopWhen predicate so the
	// watchdog can compose with a caller's stop condition instead of
	// replacing it.
	StopPred() func() bool
}

// RunGuarded runs sim up to the virtual-time horizon under a
// wall-clock watchdog. If the budget expires before the simulation
// drains, the run is stopped at the next event boundary and a
// *StallError is returned carrying the last flight-recorder events
// from reg (nil reg = no tail). wall <= 0 disables the watchdog.
//
// The engine is not safe to halt from another goroutine directly, so
// the expiry crosses goroutines through an atomic flag read by a
// StopWhen predicate — checked after every event, including
// mid-batch, and safe for the concurrent calls a Cluster makes.
func RunGuarded(sim Engine, reg *obs.Registry, horizon, wall time.Duration, desc string) (time.Duration, error) {
	if wall <= 0 {
		return sim.Run(horizon), nil
	}
	// The caller may already have a semantic stop condition installed
	// (RunFleetShard's all-flows-done early exit). The watchdog must not
	// replace it: the run stops when either predicate fires, and the
	// caller's predicate is restored on return.
	caller := sim.StopPred()
	var expired atomic.Bool
	pred := func() bool { return expired.Load() }
	if caller != nil {
		pred = func() bool { return expired.Load() || caller() }
	}
	sim.StopWhen(pred)
	defer sim.StopWhen(caller)
	t := time.AfterFunc(wall, func() { expired.Store(true) })
	end := sim.Run(horizon)
	t.Stop()
	if !expired.Load() {
		return end, nil
	}
	se := &StallError{
		Desc:    desc,
		Wall:    wall,
		SimTime: end,
		Pending: sim.Pending(),
	}
	if reg != nil {
		reg.Events().Do(func(ev obs.Event) bool {
			se.Events = append(se.Events, ev)
			return true
		})
		if len(se.Events) > stallTailEvents {
			se.Events = se.Events[len(se.Events)-stallTailEvents:]
		}
	}
	return end, se
}
