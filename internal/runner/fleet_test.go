package runner

import (
	"context"
	"math"
	"reflect"
	"testing"
	"time"

	"suss/internal/scenarios"
	"suss/internal/workload"
)

// testPop keeps fleet tests seconds-scale: mice-only sizes, brisk
// arrivals.
func testPop(flows int) workload.PopulationSpec {
	return workload.PopulationSpec{
		Flows:    flows,
		Arrivals: workload.PoissonArrivals{Rate: 400},
		Mix: []workload.ClassMix{
			{Class: workload.Web, Weight: 0.8, Sizes: workload.Lognormal{
				Mu: math.Log(20 << 10), Sigma: 1.0, Min: 2 << 10, Max: 256 << 10,
			}},
			{Class: workload.RPC, Weight: 0.2, Sizes: workload.Lognormal{
				Mu: math.Log(4 << 10), Sigma: 0.5, Min: 512, Max: 32 << 10,
			}},
		},
		Seed: 17,
	}
}

func testFleetJob(flows int) FleetJob {
	return FleetJob{
		Fleet:  scenarios.DefaultFleet(5),
		Algo:   Suss,
		Pop:    testPop(flows),
		Shards: 2,
	}
}

func TestFleetShardDeterminism(t *testing.T) {
	j := testFleetJob(200)
	j.Shard = 1
	a := RunFleetShard(j)
	b := RunFleetShard(j)
	if !reflect.DeepEqual(a.Flows, b.Flows) {
		t.Fatal("same shard job produced different flow records")
	}
	if a.Core != b.Core || a.JainGoodput != b.JainGoodput {
		t.Fatal("same shard job produced different aggregates")
	}
}

func TestFleetShardCompletes(t *testing.T) {
	j := testFleetJob(300)
	j.Observe = true
	r := RunFleetShard(j)
	if got := r.Completed(); got != len(r.Flows) {
		t.Fatalf("only %d/%d flows completed by %v", got, len(r.Flows), r.SimEnd)
	}
	if r.JainGoodput <= 0 || r.JainGoodput > 1 {
		t.Errorf("Jain index %v out of (0,1]", r.JainGoodput)
	}
	if r.Core.DeliveredPackets == 0 {
		t.Error("no packets crossed the core bottleneck")
	}
	if r.Ledger == nil {
		t.Fatal("observed shard has no ledger")
	}
	if bad := r.Ledger.Check(); len(bad) > 0 {
		t.Errorf("ledger inconsistent: %v", bad)
	}
	for _, f := range r.Flows {
		if f.FCT <= 0 {
			t.Fatalf("flow %d completed with FCT %v", f.ID, f.FCT)
		}
	}
}

// The merged fleet must not depend on worker count: shard results are
// collected by index and each shard is its own simulator.
func TestFleetWorkerInvariance(t *testing.T) {
	j := testFleetJob(240)
	j.Shards = 4
	seq := RunFleet(context.Background(), j, Options{Workers: 1})
	par := RunFleet(context.Background(), j, Options{Workers: 4})
	if len(seq) != 4 || len(par) != 4 {
		t.Fatalf("got %d/%d shard results, want 4", len(seq), len(par))
	}
	for i := range seq {
		if seq[i].Err != nil || par[i].Err != nil {
			t.Fatalf("shard %d errored: %v / %v", i, seq[i].Err, par[i].Err)
		}
		if !reflect.DeepEqual(seq[i].ShardResult, par[i].ShardResult) {
			t.Fatalf("shard %d differs between 1 and 4 workers", i)
		}
	}
}

// A population under sustained overload still terminates: the horizon
// caps the simulation even when flows cannot finish.
func TestFleetHorizonBoundsOverload(t *testing.T) {
	j := testFleetJob(120)
	j.Fleet.CoreRate = 1e6 // 1 Mbps shared core: hopeless congestion
	j.Fleet.AggRate = 1e6
	j.Horizon = 2 * time.Second
	r := RunFleetShard(j)
	last := workload.Horizon(j.Pop.Shard(j.Shard, j.Shards), 0)
	if r.SimEnd > last+2*time.Second+time.Millisecond {
		t.Fatalf("shard ran to %v, horizon was %v", r.SimEnd, last+2*time.Second)
	}
	if r.TotalDataDrops == 0 {
		t.Error("overloaded core recorded no drops")
	}
}
