package runner

import "sync/atomic"

// simRuns counts simulator executions process-wide: every Download and
// every RunFleetShard that actually builds and runs a simulation. The
// experiment service's cache tests read it to prove that a cache hit
// touched no simulator at all; it never resets, so callers diff
// snapshots instead of comparing absolutes.
var simRuns atomic.Int64

// SimRuns returns the number of simulations this process has executed.
func SimRuns() int64 { return simRuns.Load() }
