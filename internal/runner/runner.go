// Package runner is the evaluation layer's execution engine: a
// declarative job model (one seeded simulation per Job) executed on a
// bounded worker pool with deterministic result collection.
//
// Every data point in the paper's evaluation is an independent
// simulation whose randomness is fully determined by its own seed
// (scenarios.Build seeds a private RNG per simulator instance), so
// jobs can run on any number of workers without changing the numbers.
// The pool guarantees the stronger property the experiment runners
// rely on: results are collected by job index, never by completion
// order, so rendered output is byte-identical at any worker count.
//
// A job that panics becomes an error-carrying result instead of
// killing the sweep, and cancelling the context drains the remaining
// jobs as ctx.Err() results.
package runner

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
)

// Options configures pool execution.
type Options struct {
	// Workers bounds concurrent jobs; ≤ 0 means GOMAXPROCS.
	Workers int
	// Progress, when non-nil, is called after each job finishes with
	// the number of completed jobs and the batch total. Calls are
	// serialized; done is strictly increasing.
	Progress func(done, total int)
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Outcome carries one item's result or the error that replaced it.
type Outcome[R any] struct {
	Value R
	Err   error
}

// PanicError is the error a panicking job is converted into.
type PanicError struct {
	Index int
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("runner: job %d panicked: %v", e.Index, e.Value)
}

// Map runs fn over every item on a bounded worker pool and returns the
// outcomes indexed like items, regardless of completion order. A panic
// in fn becomes a *PanicError outcome; once ctx is cancelled, jobs not
// yet started complete immediately with ctx.Err().
func Map[T, R any](ctx context.Context, items []T, fn func(ctx context.Context, index int, item T) (R, error), opt Options) []Outcome[R] {
	out := make([]Outcome[R], len(items))
	if len(items) == 0 {
		return out
	}
	if ctx == nil {
		ctx = context.Background()
	}
	workers := opt.workers()
	if workers > len(items) {
		workers = len(items)
	}

	var (
		mu   sync.Mutex
		done int
	)
	finish := func() {
		if opt.Progress == nil {
			return
		}
		mu.Lock()
		done++
		opt.Progress(done, len(items))
		mu.Unlock()
	}

	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				if err := ctx.Err(); err != nil {
					out[i] = Outcome[R]{Err: err}
				} else {
					out[i] = runOne(ctx, i, items[i], fn)
				}
				finish()
			}
		}()
	}

dispatch:
	for i := range items {
		select {
		case idx <- i:
		case <-ctx.Done():
			for j := i; j < len(items); j++ {
				out[j] = Outcome[R]{Err: ctx.Err()}
				finish()
			}
			break dispatch
		}
	}
	close(idx)
	wg.Wait()
	return out
}

func runOne[T, R any](ctx context.Context, i int, item T, fn func(ctx context.Context, index int, item T) (R, error)) (o Outcome[R]) {
	defer func() {
		if r := recover(); r != nil {
			o = Outcome[R]{Err: &PanicError{Index: i, Value: r, Stack: debug.Stack()}}
		}
	}()
	v, err := fn(ctx, i, item)
	return Outcome[R]{Value: v, Err: err}
}
