package runner

import (
	"suss/internal/bbr"
	"suss/internal/cc"
	"suss/internal/core"
	"suss/internal/cubic"
	"suss/internal/tcp"
)

// Algo selects a congestion-control algorithm for a flow.
type Algo int

const (
	// Cubic is CUBIC with HyStart, SUSS off (the paper's baseline).
	Cubic Algo = iota
	// Suss is CUBIC with the SUSS add-on enabled.
	Suss
	// BBR is BBRv1.
	BBR
	// BBR2 is the BBRv2-lite variant.
	BBR2
	// CubicHSPP is CUBIC with HyStart++ (RFC 9406) instead of classic
	// HyStart — the related-work slow-start exit the paper positions
	// SUSS against.
	CubicHSPP
	// BBRSuss is the paper's §7 future work: BBRv1 with SUSS-style
	// growth prediction doubling STARTUP's gains.
	BBRSuss
	// Reno is classic AIMD (RFC 5681), the yardstick every other
	// controller's slow-start gains are implicitly measured against.
	Reno
)

func (a Algo) String() string {
	switch a {
	case Cubic:
		return "cubic"
	case Suss:
		return "cubic+suss"
	case BBR:
		return "bbr"
	case BBR2:
		return "bbr2"
	case CubicHSPP:
		return "cubic+hspp"
	case BBRSuss:
		return "bbr+suss"
	case Reno:
		return "reno"
	default:
		return "unknown"
	}
}

// NewController builds a's controller bound to sender s.
func NewController(a Algo, s *tcp.Sender) cc.Controller {
	switch a {
	case Cubic:
		return cubic.New(s, cubic.DefaultOptions())
	case Suss:
		return core.New(s, core.DefaultOptions())
	case BBR:
		return bbr.New(s, bbr.DefaultOptions())
	case BBR2:
		return bbr.New(s, bbr.V2Options())
	case CubicHSPP:
		opt := cubic.DefaultOptions()
		opt.HyStartPP = true
		return cubic.New(s, opt)
	case BBRSuss:
		return bbr.New(s, bbr.SUSSOptions())
	case Reno:
		return cc.NewReno(s, cc.DefaultRenoOptions())
	default:
		panic("runner: unknown algo")
	}
}
