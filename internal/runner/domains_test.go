package runner

import (
	"reflect"
	"testing"
	"time"

	"suss/internal/netem"
	"suss/internal/scenarios"
)

// TestDownloadDomainsDifferential pins the cluster determinism
// contract at the job level: a download split across parallel event
// domains measures exactly what the monolithic simulation measures —
// every field of the result, including the impairment-RNG-sensitive
// loss and retransmission counters.
func TestDownloadDomainsDifferential(t *testing.T) {
	for _, lt := range []netem.LinkType{netem.Wired, netem.LTE4G} {
		for _, algo := range []Algo{Suss, BBR} {
			j := Job{
				Scenario: scenarios.New(scenarios.GoogleTokyo, lt, 7),
				Algo:     algo,
				Size:     1 << 20,
			}
			base := Download(j)
			for _, n := range []int{2, 3} {
				j.Domains = n
				got := Download(j)
				if !reflect.DeepEqual(base, got) {
					t.Errorf("%s/%s: domains=%d result diverged\nbase: %+v\ngot:  %+v", lt, algo, n, base, got)
				}
			}
		}
	}
}

// TestDownloadDomainsObserveFallsBack checks that an observed job runs
// monolithically (recorders cannot span domains) and still produces
// the monolithic numbers, ledger included.
func TestDownloadDomainsObserveFallsBack(t *testing.T) {
	j := Job{
		Scenario: scenarios.New(scenarios.OracleLondon, netem.WiFi, 3),
		Algo:     Suss,
		Size:     512 << 10,
		Observe:  true,
	}
	base := Download(j)
	j.Domains = 4
	got := Download(j)
	if base.Ledger == nil || got.Ledger == nil {
		t.Fatal("observed jobs must carry a ledger")
	}
	if !reflect.DeepEqual(base, got) {
		t.Fatal("Domains on an observed job changed the result")
	}
}

// TestFleetShardDomainsDifferential replays the identical shard
// population monolithically and across cluster partitions of
// increasing width (up to one domain per aggregation subtree plus the
// root plus server blocks) and requires identical per-flow records.
//
// Flow records and their derived fairness number are the contract;
// link counters at an early stop are not compared, because the
// monolithic engine stops on the completing event while the cluster
// finishes the synchronization window it happened in, and the extra
// tail of ACK-path events keeps counting.
//
// The population seed is chosen to avoid the one documented residual
// (see the netsim/cluster.go ordering contract): when two packets from
// different source domains reach a shared queue at an exactly
// identical (deadline, arm-time) instant, the tie breaks by domain ID
// instead of the monolithic global arm order. Such ties are
// deterministic — a colliding seed diverges identically on every run,
// by one serialization quantum on the affected flow — but not
// byte-equal to the monolithic interleave, so the strict equality
// assertion uses a tie-free workload.
func TestFleetShardDomainsDifferential(t *testing.T) {
	j := testFleetJob(200)
	j.Pop.Seed = 18
	j.Fleet.ServerAccessDelay = 2 * time.Millisecond
	j.Shard = 1
	base := RunFleetShard(j)
	if base.Completed() == 0 {
		t.Fatal("baseline shard completed nothing")
	}
	for _, n := range []int{2, 4, 10} {
		j.Domains = n
		got := RunFleetShard(j)
		if !reflect.DeepEqual(base.Flows, got.Flows) {
			t.Errorf("domains=%d: flow records diverged", n)
		}
		if base.JainGoodput != got.JainGoodput {
			t.Errorf("domains=%d: Jain index diverged: %v vs %v", n, base.JainGoodput, got.JainGoodput)
		}
	}
}
