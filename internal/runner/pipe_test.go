package runner

import (
	"testing"
	"time"

	"suss/internal/netem"
	"suss/internal/scenarios"
)

// TestDownloadPipeBackend runs the same Job through the pipe backend:
// identical transport code, wall-clock timers, real frames between
// goroutines. FCT is a wall-clock measurement so the test only sanity
// bounds it.
func TestDownloadPipeBackend(t *testing.T) {
	sc := scenarios.New(scenarios.GoogleTokyo, netem.Wired, 1)
	sc.RTT = 10 * time.Millisecond
	r := Download(Job{
		Scenario: sc,
		Algo:     Suss,
		Size:     256 << 10,
		Backend:  "pipe",
		Horizon:  30 * time.Second,
	})
	if !r.Completed {
		t.Fatalf("pipe download incomplete: delivered %d", r.Delivered)
	}
	if r.Delivered != 256<<10 {
		t.Fatalf("delivered %d, want %d", r.Delivered, 256<<10)
	}
	if r.FCT <= 0 || r.FCT > 30*time.Second {
		t.Fatalf("implausible FCT %v", r.FCT)
	}
	if r.Segments == 0 {
		t.Fatal("no segments counted")
	}
	if r.MaxG == 0 {
		t.Error("SUSS controller stats missing (MaxG=0)")
	}
}

// TestDownloadUnknownBackend pins the failure mode for a typo'd
// backend name: loud, not a silent fallback to the simulator.
func TestDownloadUnknownBackend(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown backend should panic")
		}
	}()
	Download(Job{Scenario: scenarios.New(scenarios.GoogleTokyo, netem.Wired, 1),
		Algo: Cubic, Size: 1 << 10, Backend: "carrier-pigeon"})
}
