package runner

import (
	"context"
	"reflect"
	"strings"
	"testing"
	"time"

	"suss/internal/workload"
)

// fakeEngine lets the watchdog tests observe exactly which predicate is
// installed while Run executes and after RunGuarded returns.
type fakeEngine struct {
	pred    func() bool
	inRun   func(pred func() bool)
	pending int
}

func (f *fakeEngine) Run(until time.Duration) time.Duration {
	if f.inRun != nil {
		f.inRun(f.pred)
	}
	return until
}
func (f *fakeEngine) Pending() int              { return f.pending }
func (f *fakeEngine) StopWhen(pred func() bool) { f.pred = pred }
func (f *fakeEngine) StopPred() func() bool     { return f.pred }

// TestRunGuardedComposesCallerPredicate is the unit half of the
// StopWhen-clobbering regression: a caller-installed stop condition
// must keep firing while the watchdog is armed, and must still be
// installed after RunGuarded returns.
func TestRunGuardedComposesCallerPredicate(t *testing.T) {
	callerFired := false
	callerCalls := 0
	caller := func() bool { callerCalls++; return callerFired }

	eng := &fakeEngine{}
	eng.StopWhen(caller)
	eng.inRun = func(pred func() bool) {
		if pred == nil {
			t.Fatal("watchdog installed no predicate")
		}
		if pred() {
			t.Error("composed predicate fired with neither side true")
		}
		callerFired = true
		if !pred() {
			t.Error("composed predicate ignored the caller's stop condition")
		}
	}
	if _, err := RunGuarded(eng, nil, time.Second, time.Hour, "compose"); err != nil {
		t.Fatalf("unexpected stall: %v", err)
	}
	if callerCalls == 0 {
		t.Fatal("caller predicate was never consulted: it was clobbered")
	}
	// The caller's predicate must be restored, not cleared: firing it
	// again must still work through whatever is installed now.
	if eng.pred == nil {
		t.Fatal("caller predicate cleared after RunGuarded returned")
	}
	callerFired = false
	if eng.pred() {
		t.Error("restored predicate disagrees with caller state (false)")
	}
	callerFired = true
	if !eng.pred() {
		t.Error("restored predicate disagrees with caller state (true)")
	}
}

// TestRunGuardedNoCallerPredicate pins the pre-existing behavior: with
// no caller predicate the watchdog still arms, and a nil predicate is
// restored on return.
func TestRunGuardedNoCallerPredicate(t *testing.T) {
	eng := &fakeEngine{}
	eng.inRun = func(pred func() bool) {
		if pred == nil {
			t.Fatal("watchdog installed no predicate")
		}
		if pred() {
			t.Error("predicate fired before the wall budget expired")
		}
	}
	if _, err := RunGuarded(eng, nil, time.Second, time.Hour, "solo"); err != nil {
		t.Fatalf("unexpected stall: %v", err)
	}
	if eng.pred != nil {
		t.Error("nil caller predicate not restored")
	}
}

// TestFleetShardWallLimitKeepsEarlyExit is the end-to-end regression
// from the issue: a wall-limited single-sim fleet shard must stop at
// population completion, not silently simulate the full horizon, and
// its records must be identical to the unguarded run.
func TestFleetShardWallLimitKeepsEarlyExit(t *testing.T) {
	base := testFleetJob(150)
	base.Shards = 1

	unguarded := RunFleetShard(base)
	if got := unguarded.Completed(); got != len(unguarded.Flows) {
		t.Fatalf("baseline shard incomplete: %d/%d flows", got, len(unguarded.Flows))
	}

	guarded := base
	guarded.WallLimit = 5 * time.Minute // generous: must never expire here
	g := RunFleetShard(guarded)
	if g.Stall != nil {
		t.Fatalf("healthy shard reported a stall: %v", g.Stall)
	}

	horizon := workload.Horizon(base.Pop.Shard(0, 1), DefaultHorizon)
	if g.SimEnd >= horizon {
		t.Fatalf("wall-limited shard ran to the horizon (%v): early-exit predicate was clobbered", g.SimEnd)
	}
	if g.SimEnd != unguarded.SimEnd {
		t.Errorf("SimEnd differs: guarded %v vs unguarded %v", g.SimEnd, unguarded.SimEnd)
	}
	if !reflect.DeepEqual(g.Flows, unguarded.Flows) {
		t.Error("flow records differ between guarded and unguarded runs")
	}
	if g.Core != unguarded.Core || g.JainGoodput != unguarded.JainGoodput {
		t.Error("aggregates differ between guarded and unguarded runs")
	}
}

// TestFleetShardDegenerateFleet: a zero-valued Fleet must come back as
// a descriptive error, not an integer-divide-by-zero panic swallowed by
// the pool's panic capture.
func TestFleetShardDegenerateFleet(t *testing.T) {
	j := FleetJob{Pop: testPop(10), Shards: 1}
	r := RunFleetShard(j)
	if r.Err == nil {
		t.Fatal("degenerate fleet produced no error")
	}
	for _, want := range []string{"degenerate fleet", "groups=0", "servers=0"} {
		if !strings.Contains(r.Err.Error(), want) {
			t.Errorf("error %q does not mention %q", r.Err, want)
		}
	}
	if len(r.Flows) != 0 {
		t.Error("degenerate shard fabricated flow records")
	}

	// Partial degeneracy (servers only) must be caught too.
	j2 := testFleetJob(10)
	j2.Fleet.Servers = 0
	if r2 := RunFleetShard(j2); r2.Err == nil {
		t.Error("zero-server fleet produced no error")
	}
}

// TestRunFleetPropagatesDegenerateError: the pool path surfaces the
// setup error on every shard instead of a panic-shaped failure.
func TestRunFleetPropagatesDegenerateError(t *testing.T) {
	j := FleetJob{Pop: testPop(12), Shards: 2}
	res := RunFleet(context.Background(), j, Options{Workers: 2})
	if len(res) != 2 {
		t.Fatalf("got %d shard results, want 2", len(res))
	}
	for i, r := range res {
		if r.Err == nil {
			t.Fatalf("shard %d: degenerate fleet error not propagated", i)
		}
		if _, isPanic := r.Err.(*PanicError); isPanic {
			t.Fatalf("shard %d: degenerate fleet still surfaces as a panic: %v", i, r.Err)
		}
		if !strings.Contains(r.Err.Error(), "degenerate fleet") {
			t.Errorf("shard %d: error %q is not descriptive", i, r.Err)
		}
	}
}
