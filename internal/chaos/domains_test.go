package chaos

import (
	"math/rand"
	"reflect"
	"testing"

	"suss/internal/netem"
	"suss/internal/runner"
	"suss/internal/scenarios"
)

// TestCatalogDomainsDifferential runs every catalog impairment over
// the hardened transport twice — monolithic and split across event
// domains — and requires identical results. The catalog attaches
// everything to the last hop and the receiver, which the path
// partitioner keeps inside one domain, so every impairment RNG draw
// happens in the same local order and the cluster protocol must not
// change a single counter.
func TestCatalogDomainsDifferential(t *testing.T) {
	cfg := HardenedTransport()
	for _, imp := range Catalog() {
		imp := imp
		t.Run(imp.Name, func(t *testing.T) {
			j := runner.Job{
				Scenario:  scenarios.New(scenarios.GoogleTokyo, netem.WiFi, 11),
				Algo:      runner.Suss,
				Size:      1 << 20,
				Transport: &cfg,
				Impair: func(env runner.ChaosEnv) {
					imp.Attach(env, rand.New(rand.NewSource(env.Seed^0x5eed0fc4a05)))
				},
			}
			base := runner.Download(j)
			j.Domains = 2
			got := runner.Download(j)
			if !reflect.DeepEqual(base, got) {
				t.Errorf("domains=2 diverged\nbase: %+v\ngot:  %+v", base, got)
			}
		})
	}
}
