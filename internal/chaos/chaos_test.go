package chaos

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"os"
	"strings"
	"testing"
	"time"

	"suss/internal/netem"
	"suss/internal/netsim"
	"suss/internal/runner"
	"suss/internal/scenarios"
	"suss/internal/tcp"
)

// TestChaosMatrix is the headline liveness invariant: the full
// catalog × {SUSS, BBR} × 4 seeds, every flow completing (or erroring
// cleanly) with a balanced loss ledger and no watchdog kills.
func TestChaosMatrix(t *testing.T) {
	opt := DefaultOptions()
	m := Run(context.Background(), opt)
	want := len(opt.Impairments) * len(opt.Algos) * len(opt.Seeds)
	if len(m.Cells) != want {
		t.Fatalf("matrix has %d cells, want %d", len(m.Cells), want)
	}
	if fails := m.Failures(); len(fails) > 0 {
		// CI uploads the rendered matrix (including watchdog
		// flight-recorder tails) as an artifact on failure.
		if p := os.Getenv("CHAOS_DUMP"); p != "" {
			if err := os.WriteFile(p, []byte(m.Render()), 0o644); err != nil {
				t.Logf("writing CHAOS_DUMP: %v", err)
			}
		}
		t.Fatalf("%d failing cells:\n%s", len(fails), m.Render())
	}

	// The matrix must actually exercise the hardening paths, not just
	// survive: the reneging cells repair at least one episode, and the
	// impairment counters show the stages fired.
	var renegs, dupSegs int64
	for _, c := range m.Cells {
		l := c.Result.Ledger
		if c.Impairment == "sack-reneg" {
			renegs += l.SackRenegings
		}
		if c.Impairment == "duplicate" {
			dupSegs += l.PathDuplicates
		}
	}
	if renegs == 0 {
		t.Error("sack-reneg cells detected no reneging episodes")
	}
	if dupSegs == 0 {
		t.Error("duplicate cells injected no duplicates")
	}
}

// TestWatchdogKillsWedgedJob pins the watchdog semantics: a job whose
// event loop livelocks (events begetting events at a frozen virtual
// clock) is killed at its wall budget and reported as a *StallError
// with a flight-recorder tail, instead of hanging the suite.
func TestWatchdogKillsWedgedJob(t *testing.T) {
	j := runner.Job{
		Scenario:  scenarios.New(scenarios.OracleLondon, netem.Wired, 1),
		Algo:      runner.Cubic,
		Size:      1 << 20,
		Observe:   true,
		WallLimit: 100 * time.Millisecond,
		Impair: func(env runner.ChaosEnv) {
			// Classic livelock: a zero-delay event that reschedules
			// itself forever, pinning the virtual clock at zero.
			var fn func()
			fn = func() { env.Sim.Schedule(0, fn) }
			env.Sim.Schedule(0, fn)
		},
	}
	res := runner.Download(j)
	if res.Stall == nil {
		t.Fatal("wedged job was not killed by the watchdog")
	}
	if res.Completed {
		t.Fatal("wedged job reported completion")
	}
	if res.Stall.SimTime != 0 {
		t.Errorf("livelocked sim advanced to %v, want pinned at 0", res.Stall.SimTime)
	}
	dump := res.Stall.Dump()
	// The flow's initial window went out at t=0 before the wedge pinned
	// the clock, so the dump must carry real flight-recorder events.
	if !strings.Contains(dump, "SegSent") {
		t.Errorf("stall dump carries no SegSent events:\n%s", dump)
	}

	// The batch runner surfaces the stall as the cell error.
	out := runner.Run(context.Background(), []runner.Job{j}, runner.Options{})
	var se *runner.StallError
	if !errors.As(out[0].Err, &se) {
		t.Fatalf("Run error %v does not wrap *StallError", out[0].Err)
	}
}

// TestInertImpairmentsAreFree pins the acceptance criterion that an
// unattached (or attached-but-inert) pipeline cannot perturb a run:
// the same job with no impairments, with an empty pipeline, and with
// zero-probability stages must produce identical measurements.
func TestInertImpairmentsAreFree(t *testing.T) {
	base := runner.Job{
		Scenario: scenarios.New(scenarios.OracleLondon, netem.Wired, 3),
		Algo:     runner.Suss,
		Size:     2 << 20,
		Observe:  true,
	}
	ref := runner.Download(base)
	if !ref.Completed {
		t.Fatal("reference flow did not complete")
	}

	hooks := map[string]func(env runner.ChaosEnv){
		"empty-pipeline": func(env runner.ChaosEnv) {
			for _, l := range env.Path.Fwd {
				l.AttachImpairments(netsim.NewImpairments())
			}
		},
		"zero-prob-stages": func(env runner.ChaosEnv) {
			// Private stream: zero-probability stages still consume draws,
			// and the contract is that those draws never leak into the
			// scenario's randomness.
			rng := rand.New(rand.NewSource(env.Seed))
			for _, l := range env.Path.Fwd {
				l.AttachImpairments(netsim.NewImpairments(
					netem.NewReorder(0, time.Millisecond, 2*time.Millisecond, rng),
					netem.NewDuplicate(0, time.Millisecond, rng),
					netem.NewCorrupt(0, rng),
					&netem.Outage{},
					&netem.RTTStep{},
				))
			}
		},
	}
	for name, hook := range hooks {
		j := base
		j.Impair = hook
		got := runner.Download(j)
		if got.FCT != ref.FCT || got.Segments != ref.Segments ||
			got.Retrans != ref.Retrans || got.Delivered != ref.Delivered ||
			got.Drops != ref.Drops || got.PeakQueue != ref.PeakQueue {
			t.Errorf("%s perturbed the run:\n got  fct=%v segs=%d retrans=%d delivered=%d drops=%d peakq=%d\n want fct=%v segs=%d retrans=%d delivered=%d drops=%d peakq=%d",
				name,
				got.FCT, got.Segments, got.Retrans, got.Delivered, got.Drops, got.PeakQueue,
				ref.FCT, ref.Segments, ref.Retrans, ref.Delivered, ref.Drops, ref.PeakQueue)
		}
	}
}

// TestGiveUpOnDeadPath pins the consecutive-RTO cap end to end: a
// permanent outage starting early in the flow must yield a clean
// ErrRetransLimit flow error (not an ErrIncomplete timeout at the
// horizon, and certainly not a hang).
func TestGiveUpOnDeadPath(t *testing.T) {
	transport := HardenedTransport()
	transport.MaxConsecRTOs = 3
	j := runner.Job{
		Scenario:  scenarios.New(scenarios.OracleLondon, netem.Wired, 1),
		Algo:      runner.Cubic,
		Size:      1 << 20,
		Observe:   true,
		Transport: &transport,
		WallLimit: 10 * time.Second,
		Impair: func(env runner.ChaosEnv) {
			// Kill the last hop forever from 50 ms on.
			env.Path.Fwd[len(env.Path.Fwd)-1].AttachImpairments(
				netsim.NewImpairments(&netem.Outage{Windows: []netem.Window{
					{Start: 50 * time.Millisecond, End: time.Duration(math.MaxInt64)},
				}}))
		},
	}
	res := runner.Download(j)
	if res.Stall != nil {
		t.Fatalf("dead-path job hit the watchdog instead of giving up: %v", res.Stall)
	}
	if res.Completed {
		t.Fatal("flow completed through a permanent outage")
	}
	if !errors.Is(res.FlowErr, tcp.ErrRetransLimit) {
		t.Fatalf("flow error = %v, want ErrRetransLimit", res.FlowErr)
	}
	if res.Ledger.FlowAborts != 1 {
		t.Errorf("FlowAborts = %d, want 1", res.Ledger.FlowAborts)
	}
	if bad := res.Ledger.Check(); len(bad) > 0 {
		t.Errorf("ledger violations on aborted flow: %v", bad)
	}
}
