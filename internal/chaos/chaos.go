// Package chaos is the liveness-invariant harness: a catalog of
// composable path impairments and a seeded matrix runner that drives
// every impairment against multiple congestion-control algorithms and
// seeds, asserting that each flow either completes or errors cleanly,
// that the cross-layer loss ledger balances, and that no simulation
// livelocks (a per-job wall-clock watchdog kills wedged runs with a
// flight-recorder dump).
//
// Surfaced as `sussim -chaos` and `make chaos`; CI runs the matrix
// under -race.
package chaos

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"suss/internal/netem"
	"suss/internal/netsim"
	"suss/internal/runner"
	"suss/internal/scenarios"
	"suss/internal/tcp"
)

// Impairment is one named chaos mode: Attach installs its stages (or
// receiver fault modes) on a freshly-built simulation. rng is a
// private stream derived from the job's seed, so every impairment's
// schedule is deterministic and decoupled from the scenario's draws.
type Impairment struct {
	Name   string
	Attach func(env runner.ChaosEnv, rng *rand.Rand)
}

// lastFwd returns the flow's last forward (data-direction) link — the
// paper's impaired last hop.
func lastFwd(env runner.ChaosEnv) *netsim.Link {
	return env.Path.Fwd[len(env.Path.Fwd)-1]
}

// Catalog returns the standard impairment set the chaos matrix sweeps:
// reordering, duplication, corruption, burst loss, a scheduled outage,
// random flaps, an abrupt RTT step, and a SACK-reneging receiver.
func Catalog() []Impairment {
	return []Impairment{
		{Name: "reorder", Attach: func(env runner.ChaosEnv, rng *rand.Rand) {
			lastFwd(env).AttachImpairments(netsim.NewImpairments(
				netem.NewReorder(0.03, 2*time.Millisecond, 25*time.Millisecond, rng)))
		}},
		{Name: "duplicate", Attach: func(env runner.ChaosEnv, rng *rand.Rand) {
			lastFwd(env).AttachImpairments(netsim.NewImpairments(
				netem.NewDuplicate(0.02, time.Millisecond, rng)))
		}},
		{Name: "corrupt", Attach: func(env runner.ChaosEnv, rng *rand.Rand) {
			lastFwd(env).AttachImpairments(netsim.NewImpairments(
				netem.NewCorrupt(0.005, rng)))
		}},
		{Name: "burst-loss", Attach: func(env runner.ChaosEnv, rng *rand.Rand) {
			lastFwd(env).AttachImpairments(netsim.NewImpairments(
				netem.Erasure{Fn: netem.NewGilbertElliott(0.003, 0.25, 0, 0.5, rng).Drop}))
		}},
		// The scheduled impairments are timed for the matrix's default
		// download (a few hundred ms of virtual time): every window
		// lands while the flow is alive.
		{Name: "outage", Attach: func(env runner.ChaosEnv, rng *rand.Rand) {
			lastFwd(env).AttachImpairments(netsim.NewImpairments(
				&netem.Outage{Windows: []netem.Window{
					{Start: 60 * time.Millisecond, End: 180 * time.Millisecond},
					{Start: 400 * time.Millisecond, End: 480 * time.Millisecond},
				}}))
		}},
		{Name: "flaps", Attach: func(env runner.ChaosEnv, rng *rand.Rand) {
			lastFwd(env).AttachImpairments(netsim.NewImpairments(
				netem.NewFlaps(350*time.Millisecond, 60*time.Millisecond, rng)))
		}},
		{Name: "rtt-step", Attach: func(env runner.ChaosEnv, rng *rand.Rand) {
			lastFwd(env).AttachImpairments(netsim.NewImpairments(
				&netem.RTTStep{Steps: []netem.DelayStep{
					{At: 100 * time.Millisecond, Delta: 80 * time.Millisecond},
					{At: 350 * time.Millisecond, Delta: -50 * time.Millisecond},
				}}))
		}},
		{Name: "sack-reneg", Attach: func(env runner.ChaosEnv, rng *rand.Rand) {
			env.Flow.Receiver.EnableReneging(50*time.Millisecond, 1.0, rng)
		}},
	}
}

// Options configures a chaos-matrix run.
type Options struct {
	// Impairments to sweep (DefaultOptions: the full Catalog).
	Impairments []Impairment
	// Algos are the congestion controllers each impairment runs under.
	Algos []runner.Algo
	// Seeds perturb every cell's impairment and scenario randomness.
	Seeds []int64
	// Size is the download size per flow.
	Size int64
	// WallLimit is the per-job watchdog budget.
	WallLimit time.Duration
	// Workers bounds parallel jobs (0 = GOMAXPROCS).
	Workers int
}

// DefaultOptions returns the matrix CI runs: full catalog × {SUSS,
// BBR, Reno} × 4 seeds, 4 MB downloads (long enough that every
// scheduled window in the catalog overlaps the flow), 30 s wall
// budget per job.
func DefaultOptions() Options {
	return Options{
		Impairments: Catalog(),
		Algos:       []runner.Algo{runner.Suss, runner.BBR, runner.Reno},
		Seeds:       []int64{1, 2, 3, 4},
		Size:        4 << 20,
		WallLimit:   30 * time.Second,
	}
}

// HardenedTransport is the TCP configuration chaos flows run with:
// everything the robustness work added, switched on.
func HardenedTransport() tcp.Config {
	cfg := tcp.DefaultConfig()
	cfg.FRTO = true
	cfg.AdaptReoWnd = true
	cfg.MaxConsecRTOs = 8
	return cfg
}

// Cell is one matrix entry's outcome.
type Cell struct {
	Impairment string
	Algo       runner.Algo
	Seed       int64
	Result     runner.DownloadResult
	// Violations holds ledger-identity failures (empty = balanced).
	Violations []string
	// Err is the cell's verdict: nil means the flow completed (or gave
	// up cleanly on a dead path) with a balanced ledger and no stall.
	Err error
}

// ok reports whether the cell's flow ended acceptably: completed, or
// failed cleanly with the retransmission-limit give-up (a permanent
// outage is supposed to do that).
func (c *Cell) ok() bool {
	if c.Result.Stall != nil {
		return false
	}
	if len(c.Violations) > 0 {
		return false
	}
	return c.Result.Completed || errors.Is(c.Result.FlowErr, tcp.ErrRetransLimit)
}

// MatrixResult is the full chaos-matrix outcome.
type MatrixResult struct {
	Cells []Cell
}

// Failures returns the cells that did not pass.
func (m *MatrixResult) Failures() []Cell {
	var out []Cell
	for _, c := range m.Cells {
		if c.Err != nil {
			out = append(out, c)
		}
	}
	return out
}

// Render writes a human-readable summary: one line per
// impairment × algo with completion and robustness counters, then any
// failures in full (including watchdog dumps).
func (m *MatrixResult) Render() string {
	type key struct {
		imp  string
		algo runner.Algo
	}
	agg := map[key]*struct {
		n, done, clean int
		undo, reneg    int
		retrans        int
	}{}
	var keys []key
	for _, c := range m.Cells {
		k := key{c.Impairment, c.Algo}
		a := agg[k]
		if a == nil {
			a = &struct {
				n, done, clean int
				undo, reneg    int
				retrans        int
			}{}
			agg[k] = a
			keys = append(keys, k)
		}
		a.n++
		if c.Result.Completed {
			a.done++
		}
		if c.Err == nil {
			a.clean++
		}
		a.retrans += c.Result.Retrans
		if l := c.Result.Ledger; l != nil {
			a.undo += int(l.SpuriousRTOUndos)
			a.reneg += int(l.SackRenegings)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].imp != keys[j].imp {
			return keys[i].imp < keys[j].imp
		}
		return keys[i].algo < keys[j].algo
	})
	var b strings.Builder
	b.WriteString("chaos matrix:\n")
	for _, k := range keys {
		a := agg[k]
		fmt.Fprintf(&b, "  %-11s %-9s %d/%d ok  completed=%d retrans=%d rto_undos=%d renegs=%d\n",
			k.imp, k.algo, a.clean, a.n, a.done, a.retrans, a.undo, a.reneg)
	}
	if fails := m.Failures(); len(fails) > 0 {
		fmt.Fprintf(&b, "%d FAILING cells:\n", len(fails))
		for _, c := range fails {
			fmt.Fprintf(&b, "  %s/%s seed=%d: %v\n", c.Impairment, c.Algo, c.Seed, c.Err)
			for _, v := range c.Violations {
				fmt.Fprintf(&b, "    ledger: %s\n", v)
			}
			if c.Result.Stall != nil {
				b.WriteString(indent(c.Result.Stall.Dump(), "    "))
			}
		}
	}
	return b.String()
}

func indent(s, pre string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, l := range lines {
		lines[i] = pre + l
	}
	return strings.Join(lines, "\n") + "\n"
}

// Run executes the chaos matrix on the worker pool and judges every
// cell: the flow must complete or give up cleanly, the loss ledger
// must balance under the impairment, and the watchdog must not have
// had to intervene.
func Run(ctx context.Context, opt Options) *MatrixResult {
	if len(opt.Impairments) == 0 {
		opt.Impairments = Catalog()
	}
	transport := HardenedTransport()
	type cellKey struct {
		imp  int
		algo runner.Algo
		seed int64
	}
	var jobs []runner.Job
	var keys []cellKey
	for i, imp := range opt.Impairments {
		attach := imp.Attach
		for _, algo := range opt.Algos {
			for _, seed := range opt.Seeds {
				// The paper's London path: 35 ms RTT, 300 Mbit/s, shallow
				// 0.3×BDP bottleneck buffer — enough loss pressure that the
				// impairments interact with real congestion control.
				sc := scenarios.New(scenarios.OracleLondon, netem.Wired, seed)
				jobs = append(jobs, runner.Job{
					Scenario:  sc,
					Algo:      algo,
					Size:      opt.Size,
					Observe:   true,
					Transport: &transport,
					WallLimit: opt.WallLimit,
					Impair: func(env runner.ChaosEnv) {
						// Private stream per cell: decoupled from the
						// scenario RNG and from every other impairment.
						attach(env, rand.New(rand.NewSource(env.Seed^0x5eed0fc4a05)))
					},
				})
				keys = append(keys, cellKey{i, algo, seed})
			}
		}
	}
	results := runner.Run(ctx, jobs, runner.Options{Workers: opt.Workers})
	m := &MatrixResult{Cells: make([]Cell, len(results))}
	for i, r := range results {
		c := Cell{
			Impairment: opt.Impairments[keys[i].imp].Name,
			Algo:       keys[i].algo,
			Seed:       keys[i].seed,
			Result:     r.DownloadResult,
		}
		if l := r.Ledger; l != nil {
			c.Violations = l.Check()
		}
		if !c.ok() {
			err := r.Err
			if err == nil {
				err = fmt.Errorf("ledger violations: %s", strings.Join(c.Violations, "; "))
			}
			c.Err = err
		}
		m.Cells[i] = c
	}
	return m
}
