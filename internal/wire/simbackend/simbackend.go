// Package simbackend attaches wire.Conn endpoints to the
// deterministic simulator: every segment an endpoint sends is encoded
// into the frame buffer of a pooled netsim.Packet, travels the
// simulated topology as bytes-plus-accounting, and is strictly
// decoded back at the far host before the receiving endpoint sees it.
// The transport therefore exercises the real framing even in pure
// simulation, while the network layer keeps the modeled wire sizes
// (Config.HeaderBytes/AckBytes) that the pinned figure outputs were
// produced with.
//
// The hot path allocates nothing: frames encode into the packet's
// inline buffer, decode lands in a per-conn scratch Segment, and the
// header annotation fields links and recorders read (Seq, CumAck,
// EchoTS…) are reconstructed from the same wire values the far end
// will decode.
package simbackend

import (
	"fmt"

	"suss/internal/netsim"
	"suss/internal/wire"
)

// The packet's inline frame buffer must hold any header-only frame
// the codec can emit.
var _ [netsim.MaxFrameLen - wire.MaxHeaderLen]struct{}

// Demux dispatches packets delivered to a host among the flows
// terminating there, so several flows can share one host (the paper's
// Fig. 16 workload reuses client-server pairs for sequential flows).
type Demux struct {
	handlers map[netsim.FlowID]func(*netsim.Packet)
}

// NewDemux installs a demultiplexer as the host's packet handler.
// Ownership: packets routed to a registered flow are consumed (and
// released) by that flow's endpoint; packets for unregistered flows
// are released here, so no pooled packet leaks.
func NewDemux(host *netsim.Host) *Demux {
	d := &Demux{handlers: make(map[netsim.FlowID]func(*netsim.Packet))}
	host.SetHandler(func(pkt *netsim.Packet) {
		if fn, ok := d.handlers[pkt.Flow]; ok {
			fn(pkt)
		} else {
			pkt.Release()
		}
	})
	return d
}

// Register routes packets of flow id to fn, replacing any previous
// registration.
func (d *Demux) Register(id netsim.FlowID, fn func(*netsim.Packet)) {
	d.handlers[id] = fn
}

// Unregister removes a flow's handler.
func (d *Demux) Unregister(id netsim.FlowID) { delete(d.handlers, id) }

// Conn is one endpoint's attachment to the simulated network,
// implementing wire.Conn for a single flow terminating at host.
type Conn struct {
	sim  *netsim.Simulator
	host *netsim.Host
	mux  *Demux
	peer netsim.NodeID
	flow netsim.FlowID

	h       wire.Handler
	scratch wire.Segment

	// seqNear/ackNear anchor the 32→64-bit unwrap of outgoing wire
	// values when reconstructing the packet annotation fields.
	seqNear, ackNear int64
}

// New attaches a conn for flow to host, delivering to peer. The
// conn's incoming frames are routed through mux once a handler is
// set.
func New(sim *netsim.Simulator, host *netsim.Host, mux *Demux, peer netsim.NodeID, flow netsim.FlowID) *Conn {
	return &Conn{sim: sim, host: host, mux: mux, peer: peer, flow: flow}
}

// Clock implements wire.Conn.
func (c *Conn) Clock() *netsim.Simulator { return c.sim }

// nodeAddr maps a simulator node ID into 10.0.0.0/8 for the frame's
// IP header.
func nodeAddr(id netsim.NodeID) uint32 { return 0x0A000000 | uint32(id)&0x00FFFFFF }

// Send implements wire.Conn: it encodes seg into a pooled packet's
// inline frame buffer and hands the packet to the host. Payload bytes
// are virtual in the simulator, so seg.Payload must be nil — the
// frame is header-only while its IP total length covers the payload.
// The packet's annotation fields (the ones links, impairment stages
// and recorders read) are reconstructed from the same wire values the
// receiving endpoint will decode.
func (c *Conn) Send(seg *wire.Segment, meta wire.SendMeta) int {
	if seg.Payload != nil {
		panic("simbackend: payload bytes are virtual in the simulator; seg.Payload must be nil")
	}
	seg.SrcAddr = nodeAddr(c.host.ID())
	seg.DstAddr = nodeAddr(c.peer)
	pkt := c.sim.Pool().Get()
	n, err := wire.EncodeSegment(pkt.FrameBuf(), seg)
	if err != nil {
		pkt.Release()
		panic(fmt.Sprintf("simbackend: encode: %v", err))
	}
	pkt.SetFrameLen(n - seg.PayloadLen)
	now := c.sim.Now()
	pkt.Flow = c.flow
	pkt.Dst = c.peer
	pkt.SentAt = now
	pkt.Retrans = meta.Retrans
	if meta.WireSize > 0 {
		pkt.Size = meta.WireSize
	} else {
		pkt.Size = n
	}
	if seg.IsData() {
		pkt.Kind = netsim.Data
		c.seqNear = wire.Unwrap32(c.seqNear, seg.Seq)
		pkt.Seq = c.seqNear
		pkt.Len = int64(seg.PayloadLen)
		if seg.HasTS {
			pkt.EchoTS = wire.UnwrapTS(now, seg.TSVal)
			pkt.HasEcho = true
		}
	} else {
		pkt.Kind = netsim.Ack
		c.ackNear = wire.Unwrap32(c.ackNear, seg.Ack)
		pkt.CumAck = c.ackNear
		for _, b := range seg.SackBlocks() {
			st := wire.Unwrap32(pkt.CumAck, b.Start)
			if !pkt.AddSack(netsim.SackRange{Start: st, End: wire.Unwrap32(st, b.End)}) {
				break // the encoder truncated the wire copy identically
			}
		}
		if seg.HasTS {
			pkt.EchoTS = wire.UnwrapTS(now, seg.TSEcr)
			pkt.HasEcho = true
		}
	}
	c.host.Send(pkt)
	return n
}

// SetHandler implements wire.Conn, routing the flow's packets through
// the demux into a strict decode; frames that fail it are dropped the
// way a NIC drops a checksum failure. Passing nil detaches the flow.
func (c *Conn) SetHandler(h wire.Handler) {
	c.h = h
	if h == nil {
		c.mux.Unregister(c.flow)
		return
	}
	c.mux.Register(c.flow, c.deliver)
}

func (c *Conn) deliver(pkt *netsim.Packet) {
	defer pkt.Release()
	n, err := wire.DecodeSegment(pkt.Frame(), &c.scratch)
	if err != nil {
		return
	}
	c.h(&c.scratch, n)
}

// Close implements wire.Conn.
func (c *Conn) Close() error {
	c.mux.Unregister(c.flow)
	c.h = nil
	return nil
}

// Backend binds flows across a built topology, implementing
// wire.Backend over one sender host and one receiver host.
type Backend struct {
	sim              *netsim.Simulator
	srcHost, dstHost *netsim.Host
	srcMux, dstMux   *Demux
}

// NewBackend wraps a sender/receiver host pair (with their demuxes)
// as a wire.Backend.
func NewBackend(sim *netsim.Simulator, srcHost *netsim.Host, srcMux *Demux, dstHost *netsim.Host, dstMux *Demux) *Backend {
	return &Backend{sim: sim, srcHost: srcHost, dstHost: dstHost, srcMux: srcMux, dstMux: dstMux}
}

// Name implements wire.Backend.
func (b *Backend) Name() string { return "sim" }

// FlowConns implements wire.Backend.
func (b *Backend) FlowConns(id netsim.FlowID) (snd, rcv wire.Conn, err error) {
	return New(b.sim, b.srcHost, b.srcMux, b.dstHost.ID(), id),
		New(b.sim, b.dstHost, b.dstMux, b.srcHost.ID(), id), nil
}
