package simbackend_test

import (
	"testing"
	"time"

	"suss/internal/netsim"
	"suss/internal/wire"
	"suss/internal/wire/simbackend"
)

func testPath(sim *netsim.Simulator) *netsim.Path {
	return netsim.NewPath(sim, netsim.PathSpec{Forward: []netsim.LinkConfig{
		{Name: "l", Rate: 1e9, Delay: time.Millisecond, QueueBytes: 4 << 20},
	}})
}

// sequestering reports whether the pool is in its sussdebug
// never-recycle mode (in which steady-state allocation freedom is
// deliberately traded away).
func sequestering(sim *netsim.Simulator) bool {
	sim.Pool().Get().Release()
	sim.Pool().Get().Release()
	return sim.Pool().Stats().Recycled == 0
}

// TestRoundTripOverPath sends a timestamped data segment across a
// simulated link and checks the peer decodes exactly the fields that
// were encoded, with the wire length reported symmetrically.
func TestRoundTripOverPath(t *testing.T) {
	sim := netsim.NewSimulator()
	p := testPath(sim)
	snd := simbackend.New(sim, p.Sender, simbackend.NewDemux(p.Sender), p.Receiver.ID(), 7)
	rcv := simbackend.New(sim, p.Receiver, simbackend.NewDemux(p.Receiver), p.Sender.ID(), 7)

	var got wire.Segment
	var gotLen int
	rcv.SetHandler(func(seg *wire.Segment, wireLen int) {
		got = *seg
		gotLen = wireLen
	})

	var sentLen int
	sim.Schedule(0, func() {
		sentLen = snd.Send(&wire.Segment{
			SrcPort: 7, DstPort: 7,
			Seq:   0xFFFFFE00, // wraps mid-payload
			Flags: wire.FlagACK | wire.FlagPSH, Window: 65535,
			HasTS: true, TSVal: wire.WrapTS(0),
			PayloadLen: 1448,
		}, wire.SendMeta{WireSize: 1500})
	})
	sim.RunAll()

	if gotLen == 0 {
		t.Fatal("peer never saw the segment")
	}
	if gotLen != sentLen {
		t.Fatalf("wire length asymmetric: sent %d, delivered %d", sentLen, gotLen)
	}
	if got.Seq != 0xFFFFFE00 || got.PayloadLen != 1448 || !got.HasTS {
		t.Fatalf("decoded segment mangled: %+v", got)
	}
	if got.Flags&wire.FlagPSH == 0 || got.Flags&wire.FlagACK == 0 {
		t.Fatalf("flags lost: %#x", got.Flags)
	}
	if st := sim.Pool().Stats(); st.Outstanding() != 0 {
		t.Fatalf("%d packets leaked", st.Outstanding())
	}
}

// TestDemuxRoutesByFlow runs two flows into one host and a third,
// unregistered flow; each conn must see only its own segments and the
// stray flow's packets must be released, not leaked.
func TestDemuxRoutesByFlow(t *testing.T) {
	sim := netsim.NewSimulator()
	p := testPath(sim)
	smux := simbackend.NewDemux(p.Sender)
	rmux := simbackend.NewDemux(p.Receiver)

	seen := map[netsim.FlowID][]uint32{}
	mkRcv := func(id netsim.FlowID) {
		c := simbackend.New(sim, p.Receiver, rmux, p.Sender.ID(), id)
		c.SetHandler(func(seg *wire.Segment, _ int) {
			seen[id] = append(seen[id], seg.Seq)
		})
	}
	mkRcv(1)
	mkRcv(2)

	sim.Schedule(0, func() {
		for _, id := range []netsim.FlowID{1, 2, 3} { // 3 is unregistered
			c := simbackend.New(sim, p.Sender, smux, p.Receiver.ID(), id)
			c.Send(&wire.Segment{
				Seq: uint32(100 * id), Flags: wire.FlagACK | wire.FlagPSH,
				Window: 65535, PayloadLen: 1448,
			}, wire.SendMeta{})
		}
	})
	sim.RunAll()

	if len(seen[1]) != 1 || seen[1][0] != 100 {
		t.Fatalf("flow 1 saw %v, want [100]", seen[1])
	}
	if len(seen[2]) != 1 || seen[2][0] != 200 {
		t.Fatalf("flow 2 saw %v, want [200]", seen[2])
	}
	if st := sim.Pool().Stats(); st.Outstanding() != 0 {
		t.Fatalf("%d packets leaked (unregistered flow must be released)", st.Outstanding())
	}
}

// TestAnnotationMirrorsWire checks that the packet-level annotation
// fields the links and recorders read are reconstructed from the same
// values the peer decodes off the wire.
func TestAnnotationMirrorsWire(t *testing.T) {
	sim := netsim.NewSimulator()
	p := testPath(sim)
	var pkts []*netsim.Packet
	p.Receiver.SetHandler(func(pkt *netsim.Packet) { pkts = append(pkts, pkt) })
	snd := simbackend.New(sim, p.Sender, simbackend.NewDemux(p.Sender), p.Receiver.ID(), 1)

	now := 5 * time.Millisecond
	sim.Schedule(now, func() {
		ack := &wire.Segment{
			Flags: wire.FlagACK, Window: 65535,
			Ack:   2896,
			HasTS: true, TSVal: wire.WrapTS(now), TSEcr: wire.WrapTS(3 * time.Millisecond),
		}
		ack.AddSack(wire.SackBlock{Start: 8 * 1448, End: 9 * 1448})
		ack.AddSack(wire.SackBlock{Start: 5 * 1448, End: 6 * 1448})
		snd.Send(ack, wire.SendMeta{WireSize: 60})
	})
	sim.RunAll()

	if len(pkts) != 1 {
		t.Fatalf("pkts = %d", len(pkts))
	}
	pkt := pkts[0]
	defer pkt.Release()
	if pkt.Kind != netsim.Ack || pkt.CumAck != 2896 || pkt.Size != 60 {
		t.Fatalf("annotation wrong: kind=%v cum=%d size=%d", pkt.Kind, pkt.CumAck, pkt.Size)
	}
	if pkt.NSack != 2 || pkt.SACK[0].Start != 8*1448 || pkt.SACK[1].End != 6*1448 {
		t.Fatalf("SACK annotation wrong: %+v", pkt.SACK[:pkt.NSack])
	}
	if !pkt.HasEcho || pkt.EchoTS != 3*time.Millisecond {
		t.Fatalf("echo annotation wrong: has=%v ts=%v", pkt.HasEcho, pkt.EchoTS)
	}

	// The frame itself must strictly decode to the same values.
	var seg wire.Segment
	if _, err := wire.DecodeSegment(pkt.Frame(), &seg); err != nil {
		t.Fatalf("captured frame does not decode: %v", err)
	}
	if seg.Ack != 2896 || seg.NSack != 2 || seg.Sack[0].Start != 8*1448 {
		t.Fatalf("wire copy diverges from annotation: %+v", seg)
	}
}

// TestSendDeliverAllocsZero gates the backend hot path: once the pool
// and link rings are warm, a full send→encode→link→decode→deliver
// cycle must not allocate.
func TestSendDeliverAllocsZero(t *testing.T) {
	sim := netsim.NewSimulator()
	if sequestering(sim) {
		t.Skip("sussdebug: pool sequesters, steady state allocates by design")
	}
	p := testPath(sim)
	snd := simbackend.New(sim, p.Sender, simbackend.NewDemux(p.Sender), p.Receiver.ID(), 1)
	rcv := simbackend.New(sim, p.Receiver, simbackend.NewDemux(p.Receiver), p.Sender.ID(), 1)
	delivered := 0
	rcv.SetHandler(func(seg *wire.Segment, _ int) { delivered++ })

	var seg wire.Segment
	var seq uint32
	cycle := func() {
		seg = wire.Segment{
			Seq: seq, Flags: wire.FlagACK | wire.FlagPSH, Window: 65535,
			HasTS: true, TSVal: wire.WrapTS(sim.Now()), PayloadLen: 1448,
		}
		seq += 1448
		snd.Send(&seg, wire.SendMeta{WireSize: 1500})
		sim.RunAll()
	}
	for i := 0; i < 64; i++ { // warm pool, rings, wheel
		cycle()
	}
	allocs := testing.AllocsPerRun(500, cycle)
	if allocs > 0 {
		t.Errorf("send/deliver cycle allocates %.1f allocs/op, want 0", allocs)
	}
	if delivered < 64 {
		t.Fatalf("delivered = %d", delivered)
	}
}
