// Package wire defines the transport's on-the-wire representation and
// the substrate boundary the endpoints speak through.
//
// The codec (codec.go) turns a Segment — the in-memory image of one
// IPv4+TCP frame — into bytes and back: fixed IPv4 and TCP headers
// plus the option kinds the stack uses (MSS, window scale,
// SACK-permitted, SACK blocks, timestamps). Encoding writes into a
// caller-supplied buffer and decoding validates strictly, so the pair
// is allocation-free on the hot path and safe on untrusted input.
//
// Conn is the substrate seam: a transport endpoint hands every
// outgoing segment to Send (which encodes it) and receives every
// incoming segment through its handler (already decoded from the
// frame bytes). Three backends implement it — simbackend over the
// deterministic simulator, pipebackend over an in-process pipe with
// wall-clock timers, and udpbackend over a UDP socket — and the same
// sender/receiver code runs unmodified over all three, which is the
// point: congestion-control logic is substrate-independent.
//
// Wire values are raw: sequence numbers, ACKs and timestamps are the
// 32-bit fields that actually travel. Endpoints keep 64-bit state and
// convert at the boundary with Unwrap32/UnwrapTS. Timestamps are in
// nanoseconds since the connection epoch, so the 32-bit field wraps
// every ~4.29 s; UnwrapTS is exact as long as the echo returns within
// one wrap, which bounds tolerable RTT+queueing at ~4 s.
package wire

import (
	"time"

	"suss/internal/netsim"
)

// TCP header flags (byte 13 of the TCP header).
const (
	FlagFIN uint8 = 1 << iota
	FlagSYN
	FlagRST
	FlagPSH
	FlagACK
)

// MaxSackBlocks is the decoder's SACK capacity. Four blocks is the
// RFC 2018 maximum without other options; with timestamps present the
// encoder can fit only three and truncates deterministically (the
// blocks are ordered most-recently-changed first, so the dropped one
// is the stalest).
const MaxSackBlocks = 4

// SackBlock is one selective-acknowledgment range [Start, End) in raw
// 32-bit sequence space.
type SackBlock struct {
	Start, End uint32
}

// Segment is the in-memory image of one frame. Field values are raw
// wire values (32-bit sequence space, nanosecond timestamps modulo
// 2^32); the transport converts to and from its 64-bit state at the
// boundary.
type Segment struct {
	// SrcAddr/DstAddr are the IPv4 addresses. The transport leaves
	// them zero; the backend fills them before encoding (the simulator
	// maps node IDs into 10.0.0.0/8, the UDP backend uses the socket's
	// real addressing).
	SrcAddr, DstAddr uint32
	// SrcPort/DstPort carry the flow identity.
	SrcPort, DstPort uint16

	// Seq is the sequence number of the first payload byte; Ack is the
	// cumulative acknowledgment (valid when FlagACK is set).
	Seq, Ack uint32
	Flags    uint8
	// Window is the advertised receive window (unscaled).
	Window uint16

	// MSS option (kind 2, SYN only). Present when HasMSS.
	HasMSS bool
	MSS    uint16
	// Window-scale option (kind 3, SYN only). Present when HasWScale.
	HasWScale bool
	WScale    uint8
	// SACK-permitted option (kind 4, SYN only).
	SackPermitted bool
	// Timestamps option (kind 8): TSVal is the sender's clock, TSEcr
	// echoes the peer's. Present when HasTS. Segments that must not
	// produce an RTT sample (retransmissions under Karn's rule, ACKs
	// with nothing to echo) omit the option entirely.
	HasTS        bool
	TSVal, TSEcr uint32
	// SACK option (kind 5): NSack blocks, most recently changed first.
	NSack int
	Sack  [MaxSackBlocks]SackBlock

	// PayloadLen is the number of application bytes this segment
	// carries — the IP total length covers them even when Payload is
	// nil (a header-only frame whose payload is virtual, the simulator
	// case). When Payload is non-nil its length must equal PayloadLen
	// and the bytes are part of the encoded frame.
	PayloadLen int
	Payload    []byte
}

// IsData reports whether the segment carries payload (real or
// virtual).
func (s *Segment) IsData() bool { return s.PayloadLen > 0 }

// SackBlocks returns the valid SACK blocks as a view into the inline
// array (no allocation). Valid only while the caller owns the
// segment.
func (s *Segment) SackBlocks() []SackBlock { return s.Sack[:s.NSack] }

// AddSack appends one SACK block, reporting false when the inline
// array is full.
func (s *Segment) AddSack(b SackBlock) bool {
	if s.NSack >= MaxSackBlocks {
		return false
	}
	s.Sack[s.NSack] = b
	s.NSack++
	return true
}

// Unwrap32 returns the 64-bit value whose low 32 bits equal v and
// that lies nearest to near — the standard sequence-number unwrap,
// exact while the true value is within 2^31 of near. The result can
// be negative for adversarial inputs near zero; callers validate
// range.
func Unwrap32(near int64, v uint32) int64 {
	x := (near &^ 0xFFFFFFFF) | int64(v)
	if d := x - near; d > 1<<31 {
		x -= 1 << 32
	} else if d < -(1 << 31) {
		x += 1 << 32
	}
	return x
}

// WrapTS converts a connection-epoch time to the 32-bit nanosecond
// wire timestamp.
func WrapTS(t time.Duration) uint32 { return uint32(t) }

// UnwrapTS recovers the time a wire timestamp was taken, assuming it
// was taken no more than one 32-bit nanosecond wrap (~4.29 s) before
// now. Echo gaps above that are unrepresentable and alias to a later
// time.
func UnwrapTS(now time.Duration, v uint32) time.Duration {
	return now - time.Duration(uint32(now)-v)
}

// SendMeta carries per-send annotations that ride outside the frame.
// The wire has no such bits; backends that keep bookkeeping beside
// the bytes (the simulator's trace and accounting fields) use them,
// others ignore them.
type SendMeta struct {
	// WireSize, when positive, overrides the modeled wire size the
	// backend accounts for the frame (the simulator's configurable
	// per-segment header overhead). Zero means the frame's own length.
	WireSize int
	// Retrans marks a retransmission for trace annotation.
	Retrans bool
}

// Handler consumes one decoded incoming segment. The segment is
// scratch owned by the Conn and valid only for the duration of the
// call — handlers copy what they keep. wireLen is the frame's length
// on the wire (the IP total length).
type Handler func(seg *Segment, wireLen int)

// Conn is one endpoint's attachment to a substrate, bound to a single
// flow: Send frames and transmits a segment, the handler receives
// decoded peer segments, and Clock supplies the virtual-or-wall clock
// and timer wheel every transport timer runs on.
//
// Conns are not goroutine-safe: all calls — and the handler — run on
// the backend's event loop (the simulator run loop, or a backend
// reactor goroutine driving a private Simulator in wall time).
type Conn interface {
	// Clock returns the scheduler this endpoint's timers and callbacks
	// run on. For real-time backends it is a private Simulator driven
	// by a reactor loop at wall-clock pace.
	Clock() *netsim.Simulator
	// Send encodes seg and transmits the frame, returning its wire
	// length (the IP total length). The segment is caller-owned
	// scratch; Send does not retain it.
	Send(seg *Segment, meta SendMeta) int
	// SetHandler installs the receive callback. Frames that fail
	// strict decoding are dropped by the backend, as a checksum-
	// failing frame would be by a NIC.
	SetHandler(h Handler)
	// Close detaches the endpoint from the substrate.
	Close() error
}

// Backend binds flows to a substrate: one call yields the connected
// sender- and receiver-side Conns for a flow. The UDP backend spans
// two processes and therefore cannot implement Backend; its endpoints
// still implement Conn.
type Backend interface {
	// Name identifies the backend in diagnostics ("sim", "pipe").
	Name() string
	// FlowConns returns the two ends of flow id, already wired
	// together.
	FlowConns(id netsim.FlowID) (snd, rcv Conn, err error)
}
