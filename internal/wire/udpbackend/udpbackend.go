// Package udpbackend frames TCP segments over a UDP underlay: every
// wire.Segment travels as one datagram holding the codec's real
// IPv4+TCP framing (header plus zero-filled payload bytes), so two
// separate processes — or two sockets in one test — run the
// unmodified transport against an actual kernel network path.
//
// Flows are established with a SYN / SYN-ACK / ACK handshake carrying
// the classic options (MSS, window scale, SACK-permitted), with the
// SYN retried up to three times. The fetch side (the receiver)
// initiates; the serve side (the sender) accepts. Loss, delay and
// duplication can be injected at the sending edge through the same
// netsim.Impairments stages the simulator links use.
//
// Threading mirrors pipebackend: each endpoint owns a rtclock.Reactor
// that runs the transport's virtual timers at wall-clock pace, plus a
// reader goroutine that pushes arriving datagrams onto the reactor.
package udpbackend

import (
	"encoding/binary"
	"fmt"
	"net"
	"time"

	"suss/internal/netsim"
	"suss/internal/wire"
	"suss/internal/wire/rtclock"
)

// handshake constants: the serve side's ISN is 0, so the fetch side's
// completing ACK acknowledges 1. That ACK travels with Window 0 — no
// transport segment ever does (they all advertise 65535) — which lets
// the endpoint consume it without per-flow connection state.
const (
	synRetries   = 3
	synTimeout   = 300 * time.Millisecond
	maxDatagram  = 65535
	handshakeWin = 0
)

// Config shapes one endpoint.
type Config struct {
	// MSS is announced in this endpoint's SYN or SYN-ACK (default
	// 1448).
	MSS int
	// Impair, when non-nil, judges every outgoing frame (the same
	// stages simulator links run; drops erase the datagram before the
	// socket sees it, extra delay defers the write).
	Impair *netsim.Impairments
}

func (c Config) mss() int {
	if c.MSS <= 0 {
		return 1448
	}
	return c.MSS
}

// PeerInfo is what the handshake learned about the far end.
type PeerInfo struct {
	MSS           int
	WScale        uint8
	SackPermitted bool
}

// Stats counts one endpoint's wire traffic.
type Stats struct {
	FramesOut, FramesIn int64
	BytesOut, BytesIn   int64
	ImpairDrops         int64
	DecodeDrops         int64
	WriteErrs           int64
}

// flowState is the per-flow handshake ledger (reactor-goroutine
// only).
type flowState struct {
	synSeen bool
	peer    PeerInfo
	waiters []chan PeerInfo
	conn    *Conn
}

// Endpoint is one UDP socket with its reactor. Build one with Listen
// (serve side) or Dial (fetch side).
type Endpoint struct {
	r    *rtclock.Reactor
	cfg  Config
	sock *net.UDPConn
	// raddr is the far end: fixed for Dial, learned from the first
	// datagram for Listen. Reactor-goroutine only after start.
	raddr   *net.UDPAddr
	dialed  bool
	flows   map[netsim.FlowID]*flowState
	scratch wire.Segment
	judge   netsim.Packet
	stats   Stats
}

// Listen opens the serve-side endpoint on addr (e.g.
// "127.0.0.1:7000", or ":0" for an ephemeral port).
func Listen(addr string) (*Endpoint, error) { return open(addr, "", Config{}) }

// ListenConfig is Listen with impairments and options.
func ListenConfig(addr string, cfg Config) (*Endpoint, error) { return open(addr, "", cfg) }

// Dial opens the fetch-side endpoint talking to raddr.
func Dial(raddr string) (*Endpoint, error) { return open("", raddr, Config{}) }

// DialConfig is Dial with impairments and options.
func DialConfig(raddr string, cfg Config) (*Endpoint, error) { return open("", raddr, cfg) }

func open(laddr, raddr string, cfg Config) (*Endpoint, error) {
	ep := &Endpoint{cfg: cfg, flows: make(map[netsim.FlowID]*flowState)}
	if raddr != "" {
		ra, err := net.ResolveUDPAddr("udp", raddr)
		if err != nil {
			return nil, err
		}
		sock, err := net.ListenUDP("udp", nil)
		if err != nil {
			return nil, err
		}
		ep.sock, ep.raddr, ep.dialed = sock, ra, true
	} else {
		la, err := net.ResolveUDPAddr("udp", laddr)
		if err != nil {
			return nil, err
		}
		sock, err := net.ListenUDP("udp", la)
		if err != nil {
			return nil, err
		}
		ep.sock = sock
	}
	ep.r = rtclock.New(time.Now())
	go ep.readLoop()
	return ep, nil
}

// Addr returns the endpoint's bound UDP address.
func (ep *Endpoint) Addr() *net.UDPAddr { return ep.sock.LocalAddr().(*net.UDPAddr) }

// Reactor returns the endpoint's reactor.
func (ep *Endpoint) Reactor() *rtclock.Reactor { return ep.r }

// Stats snapshots the endpoint's counters.
func (ep *Endpoint) Stats() Stats {
	var st Stats
	ep.r.DoWait(func() { st = ep.stats })
	return st
}

// Close shuts the socket (stopping the reader) and the reactor.
func (ep *Endpoint) Close() error {
	err := ep.sock.Close()
	ep.r.Close()
	return err
}

func (ep *Endpoint) readLoop() {
	buf := make([]byte, maxDatagram)
	for {
		n, addr, err := ep.sock.ReadFromUDP(buf)
		if err != nil {
			return // socket closed
		}
		frame := make([]byte, n)
		copy(frame, buf[:n])
		ep.r.Do(func() { ep.deliver(frame, addr) })
	}
}

func ip4(a *net.UDPAddr) uint32 {
	if a == nil {
		return 0
	}
	if v4 := a.IP.To4(); v4 != nil {
		return binary.BigEndian.Uint32(v4)
	}
	return 0
}

// state returns (creating if needed) the flow's handshake ledger.
func (ep *Endpoint) state(id netsim.FlowID) *flowState {
	st := ep.flows[id]
	if st == nil {
		st = &flowState{}
		ep.flows[id] = st
	}
	return st
}

// deliver routes one datagram on the reactor goroutine.
func (ep *Endpoint) deliver(frame []byte, from *net.UDPAddr) {
	if !ep.dialed {
		ep.raddr = from // learn (and track) the far end
	}
	n, err := wire.DecodeSegment(frame, &ep.scratch)
	if err != nil {
		ep.stats.DecodeDrops++
		return
	}
	ep.stats.FramesIn++
	ep.stats.BytesIn += int64(n)
	seg := &ep.scratch
	id := netsim.FlowID(seg.DstPort)
	switch {
	case seg.Flags&wire.FlagSYN != 0 && seg.Flags&wire.FlagACK == 0:
		// SYN: record the fetch side's options, answer SYN-ACK
		// (idempotent — a retried SYN means ours was lost).
		st := ep.state(id)
		st.synSeen = true
		st.peer = PeerInfo{MSS: int(seg.MSS), WScale: seg.WScale, SackPermitted: seg.SackPermitted}
		ep.writeFrame(ep.handshakeSeg(id, wire.FlagSYN|wire.FlagACK, 1))
		for _, w := range st.waiters {
			w <- st.peer
		}
		st.waiters = nil
	case seg.Flags&wire.FlagSYN != 0:
		// SYN-ACK: signal the connecting side.
		st := ep.state(id)
		st.synSeen = true
		st.peer = PeerInfo{MSS: int(seg.MSS), WScale: seg.WScale, SackPermitted: seg.SackPermitted}
		for _, w := range st.waiters {
			w <- st.peer
		}
		st.waiters = nil
	case !seg.IsData() && seg.Window == handshakeWin && seg.Ack == 1 && seg.NSack == 0:
		// The handshake's completing ACK; consumed here so the
		// transport never mistakes it for a cumulative ACK.
	default:
		st := ep.flows[id]
		if st == nil || st.conn == nil || st.conn.h == nil {
			return // no endpoint attached (yet): drop, retransmission recovers
		}
		st.conn.h(seg, n)
	}
}

// handshakeSeg builds a handshake frame for the flow.
func (ep *Endpoint) handshakeSeg(id netsim.FlowID, flags uint8, ack uint32) *wire.Segment {
	win := uint16(65535)
	if flags == wire.FlagACK {
		win = handshakeWin
	}
	return &wire.Segment{
		SrcPort: uint16(id), DstPort: uint16(id),
		Flags: flags, Ack: ack, Window: win,
		HasMSS: flags&wire.FlagSYN != 0, MSS: uint16(ep.cfg.mss()),
		HasWScale: flags&wire.FlagSYN != 0, WScale: 7,
		SackPermitted: flags&wire.FlagSYN != 0,
	}
}

// writeFrame encodes and sends one segment now, on the reactor
// goroutine, bypassing impairments (handshake frames rely on their
// own retry).
func (ep *Endpoint) writeFrame(seg *wire.Segment) {
	buf := make([]byte, wire.MaxHeaderLen+seg.PayloadLen)
	seg.SrcAddr, seg.DstAddr = ip4(ep.Addr()), ip4(ep.raddr)
	n, err := wire.EncodeSegment(buf, seg)
	if err != nil {
		panic(fmt.Sprintf("udpbackend: encode: %v", err))
	}
	ep.write(buf[:n])
}

func (ep *Endpoint) write(frame []byte) {
	var err error
	if ep.dialed {
		_, err = ep.sock.WriteToUDP(frame, ep.raddr)
	} else if ep.raddr != nil {
		_, err = ep.sock.WriteToUDP(frame, ep.raddr)
	} else {
		err = fmt.Errorf("no peer yet")
	}
	if err != nil {
		ep.stats.WriteErrs++
		return
	}
	ep.stats.FramesOut++
	ep.stats.BytesOut += int64(len(frame))
}

// Connect initiates the handshake for a flow from the fetch side,
// retrying the SYN up to three times, and returns the flow's conn.
func (ep *Endpoint) Connect(id netsim.FlowID) (*Conn, PeerInfo, error) {
	if uint32(id) > 0xFFFF {
		return nil, PeerInfo{}, fmt.Errorf("udpbackend: flow id %d does not fit a port", id)
	}
	got := make(chan PeerInfo, 1)
	ep.r.DoWait(func() {
		st := ep.state(id)
		if st.synSeen {
			got <- st.peer
			return
		}
		st.waiters = append(st.waiters, got)
	})
	syn := func() {
		ep.r.Do(func() { ep.writeFrame(ep.handshakeSeg(id, wire.FlagSYN, 0)) })
	}
	var peer PeerInfo
	ok := false
	for attempt := 0; attempt < synRetries && !ok; attempt++ {
		syn()
		select {
		case peer = <-got:
			ok = true
		case <-time.After(synTimeout):
		}
	}
	if !ok {
		return nil, PeerInfo{}, fmt.Errorf("udpbackend: flow %d: no SYN-ACK after %d attempts", id, synRetries)
	}
	// Complete: ACK the serve side's ISN+1.
	ep.r.Do(func() { ep.writeFrame(ep.handshakeSeg(id, wire.FlagACK, 1)) })
	return ep.attach(id), peer, nil
}

// Accept waits (up to timeout) for a flow's SYN on the serve side and
// returns its conn. The SYN-ACK is sent by the reactor the moment the
// SYN arrives, whether or not Accept is already waiting.
func (ep *Endpoint) Accept(id netsim.FlowID, timeout time.Duration) (*Conn, PeerInfo, error) {
	if uint32(id) > 0xFFFF {
		return nil, PeerInfo{}, fmt.Errorf("udpbackend: flow id %d does not fit a port", id)
	}
	got := make(chan PeerInfo, 1)
	ep.r.DoWait(func() {
		st := ep.state(id)
		if st.synSeen {
			got <- st.peer
			return
		}
		st.waiters = append(st.waiters, got)
	})
	select {
	case peer := <-got:
		return ep.attach(id), peer, nil
	case <-time.After(timeout):
		return nil, PeerInfo{}, fmt.Errorf("udpbackend: flow %d: no SYN within %v", id, timeout)
	}
}

func (ep *Endpoint) attach(id netsim.FlowID) *Conn {
	c := &Conn{ep: ep, flow: id}
	ep.r.DoWait(func() { ep.state(id).conn = c })
	return c
}

// Conn implements wire.Conn for one flow over the UDP underlay.
type Conn struct {
	ep   *Endpoint
	flow netsim.FlowID
	h    wire.Handler

	seqNear, ackNear int64
}

// Clock implements wire.Conn.
func (c *Conn) Clock() *netsim.Simulator { return c.ep.r.Sim() }

// SetHandler implements wire.Conn.
func (c *Conn) SetHandler(h wire.Handler) {
	c.ep.r.DoWait(func() { c.h = h })
}

// Close implements wire.Conn (the socket stays open; only the flow
// detaches).
func (c *Conn) Close() error {
	c.ep.r.DoWait(func() {
		c.h = nil
		if st := c.ep.flows[c.flow]; st != nil && st.conn == c {
			st.conn = nil
		}
	})
	return nil
}

// Send implements wire.Conn. It must run on the endpoint's reactor
// goroutine (transport endpoints always send from event callbacks).
// The datagram carries the encoded header plus seg.PayloadLen real
// zero bytes.
func (c *Conn) Send(seg *wire.Segment, meta wire.SendMeta) int {
	ep := c.ep
	sim := ep.r.Sim()
	now := sim.Now()
	seg.SrcAddr, seg.DstAddr = ip4(ep.Addr()), ip4(ep.raddr)

	buf := make([]byte, wire.MaxHeaderLen+seg.PayloadLen)
	n, err := wire.EncodeSegment(buf, seg)
	if err != nil {
		panic(fmt.Sprintf("udpbackend: encode: %v", err))
	}
	frame := buf[:n] // payload tail is already zero

	var extra, dupExtra time.Duration
	dup := false
	if ep.cfg.Impair != nil {
		v := ep.cfg.Impair.Judge(now, c.annotate(seg, meta, n, now))
		if v.Drop {
			ep.stats.ImpairDrops++
			return n
		}
		extra = v.ExtraDelay
		if extra < 0 {
			extra = 0
		}
		dup, dupExtra = v.Duplicate, v.DupExtraDelay
	}
	c.writeAfter(frame, extra)
	if dup {
		c.writeAfter(frame, extra+dupExtra)
	}
	return n
}

func (c *Conn) writeAfter(frame []byte, d time.Duration) {
	if d <= 0 {
		c.ep.write(frame)
		return
	}
	ep := c.ep
	ep.r.Sim().Schedule(d, func() { ep.write(frame) })
}

func (c *Conn) annotate(seg *wire.Segment, meta wire.SendMeta, n int, now time.Duration) *netsim.Packet {
	pkt := &c.ep.judge
	*pkt = netsim.Packet{Flow: c.flow, SentAt: now, Retrans: meta.Retrans}
	if meta.WireSize > 0 {
		pkt.Size = meta.WireSize
	} else {
		pkt.Size = n
	}
	if seg.IsData() {
		pkt.Kind = netsim.Data
		c.seqNear = wire.Unwrap32(c.seqNear, seg.Seq)
		pkt.Seq = c.seqNear
		pkt.Len = int64(seg.PayloadLen)
	} else {
		pkt.Kind = netsim.Ack
		c.ackNear = wire.Unwrap32(c.ackNear, seg.Ack)
		pkt.CumAck = c.ackNear
	}
	return pkt
}

// Loopback bundles a serve and a fetch endpoint on 127.0.0.1 as a
// wire.Backend: FlowConns handshakes the flow and returns the serve
// side as the sender conn and the fetch side as the receiver conn
// (the fetch side initiates, like a download).
type Loopback struct {
	Serve, Fetch *Endpoint
}

// NewLoopback opens both endpoints on ephemeral loopback ports.
func NewLoopback(serveCfg, fetchCfg Config) (*Loopback, error) {
	s, err := ListenConfig("127.0.0.1:0", serveCfg)
	if err != nil {
		return nil, err
	}
	f, err := DialConfig(s.Addr().String(), fetchCfg)
	if err != nil {
		s.Close()
		return nil, err
	}
	return &Loopback{Serve: s, Fetch: f}, nil
}

// Name implements wire.Backend.
func (l *Loopback) Name() string { return "udp" }

// FlowConns implements wire.Backend.
func (l *Loopback) FlowConns(id netsim.FlowID) (snd, rcv wire.Conn, err error) {
	type res struct {
		c   *Conn
		err error
	}
	acceptCh := make(chan res, 1)
	go func() {
		c, _, err := l.Serve.Accept(id, time.Duration(synRetries+1)*synTimeout)
		acceptCh <- res{c, err}
	}()
	fc, _, err := l.Fetch.Connect(id)
	if err != nil {
		return nil, nil, err
	}
	a := <-acceptCh
	if a.err != nil {
		return nil, nil, a.err
	}
	return a.c, fc, nil
}

// Close shuts both endpoints.
func (l *Loopback) Close() error {
	err := l.Fetch.Close()
	if e := l.Serve.Close(); err == nil {
		err = e
	}
	return err
}
