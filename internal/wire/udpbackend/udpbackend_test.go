package udpbackend_test

import (
	"math/rand"
	"testing"
	"time"

	"suss/internal/core"
	"suss/internal/netem"
	"suss/internal/netsim"
	"suss/internal/tcp"
	"suss/internal/wire/udpbackend"
)

// runDownload moves one size-byte flow across the loopback and
// returns when the receiver holds the full stream.
func runDownload(t *testing.T, lb *udpbackend.Loopback, size int64, deadline time.Duration) *tcp.Flow {
	t.Helper()
	sconn, rconn, err := lb.FlowConns(1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := tcp.DefaultConfig()
	f := tcp.NewFlowOver(cfg, 1, sconn, rconn, size, nil)
	f.Sender.SetController(core.New(f.Sender, core.DefaultOptions()))

	done := make(chan struct{})
	lb.Fetch.Reactor().DoWait(func() {
		complete := f.Receiver.OnComplete
		f.Receiver.OnComplete = func(now time.Duration) {
			complete(now)
			close(done)
		}
	})
	lb.Serve.Reactor().DoWait(func() {
		sim := lb.Serve.Reactor().Sim()
		f.StartAt(sim, sim.Now())
	})
	select {
	case <-done:
	case <-time.After(deadline):
		var recvd int64
		lb.Fetch.Reactor().DoWait(func() { recvd = f.Receiver.Received() })
		t.Fatalf("flow did not complete within %v (received %d/%d)", deadline, recvd, size)
	}
	return f
}

// TestUDPLoopbackHandshake checks the SYN / SYN-ACK exchange carries
// the options both ways.
func TestUDPLoopbackHandshake(t *testing.T) {
	s, err := udpbackend.ListenConfig("127.0.0.1:0", udpbackend.Config{MSS: 1400})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	f, err := udpbackend.DialConfig(s.Addr().String(), udpbackend.Config{MSS: 1448})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	type res struct {
		peer udpbackend.PeerInfo
		err  error
	}
	acc := make(chan res, 1)
	go func() {
		_, p, err := s.Accept(5, 3*time.Second)
		acc <- res{p, err}
	}()
	_, servePeer, err := f.Connect(5)
	if err != nil {
		t.Fatalf("connect: %v", err)
	}
	a := <-acc
	if a.err != nil {
		t.Fatalf("accept: %v", a.err)
	}
	if a.peer.MSS != 1448 || !a.peer.SackPermitted || a.peer.WScale != 7 {
		t.Fatalf("serve side learned %+v from the SYN", a.peer)
	}
	if servePeer.MSS != 1400 || !servePeer.SackPermitted {
		t.Fatalf("fetch side learned %+v from the SYN-ACK", servePeer)
	}
}

// TestUDPLoopbackDownloadClean runs the full transport over real UDP
// sockets on loopback.
func TestUDPLoopbackDownloadClean(t *testing.T) {
	lb, err := udpbackend.NewLoopback(udpbackend.Config{}, udpbackend.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer lb.Close()
	const size = 300 << 10
	f := runDownload(t, lb, size, 30*time.Second)

	var recvd int64
	lb.Fetch.Reactor().DoWait(func() { recvd = f.Receiver.Received() })
	if recvd != size {
		t.Fatalf("received %d, want %d", recvd, size)
	}
	st := lb.Serve.Stats()
	if st.BytesOut < size {
		t.Fatalf("serve side sent %d wire bytes for a %d-byte stream", st.BytesOut, size)
	}
	if st.DecodeDrops != 0 {
		t.Fatalf("strict decode rejected %d clean frames", st.DecodeDrops)
	}
}

// TestUDPLoopbackDownloadLossy erases 5% of data datagrams at the
// serve side's sending edge; the flow must complete via
// retransmission over the real socket path.
func TestUDPLoopbackDownloadLossy(t *testing.T) {
	lb, err := udpbackend.NewLoopback(udpbackend.Config{
		Impair: netsim.NewImpairments(netem.Erasure{Fn: netem.Bernoulli(0.05, rand.New(rand.NewSource(7)))}),
	}, udpbackend.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer lb.Close()
	const size = 150 << 10
	f := runDownload(t, lb, size, 60*time.Second)

	var recvd int64
	lb.Fetch.Reactor().DoWait(func() { recvd = f.Receiver.Received() })
	if recvd != size {
		t.Fatalf("received %d, want %d", recvd, size)
	}
	if drops := lb.Serve.Stats().ImpairDrops; drops == 0 {
		t.Fatal("impairment stage never fired; the lossy cell tested nothing")
	}
}
