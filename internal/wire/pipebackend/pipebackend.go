// Package pipebackend carries wire frames between two in-process
// endpoints, each owned by its own real-time reactor (rtclock): two
// goroutines exchanging encoded TCP segments through channels, the
// closest in-memory analogue of two hosts on a cable. The transport
// endpoints run unmodified on top — their timers are virtual events
// that the reactors fire at wall-clock pace — which makes this the
// backend the race detector exercises end to end.
//
// The path model is deliberately small: a one-way propagation delay,
// an optional serialization rate, and an optional netsim.Impairments
// pipeline judged per frame at the sending edge (the same stages the
// simulator links run, reused at the wire layer). Frames carry real
// payload bytes — the encoder's header followed by a zero-filled
// payload — so the peer decodes full frames, not header-only ones.
package pipebackend

import (
	"fmt"
	"time"

	"suss/internal/netsim"
	"suss/internal/wire"
	"suss/internal/wire/rtclock"
)

// Config shapes the pipe's path.
type Config struct {
	// Delay is the one-way propagation delay (each direction).
	Delay time.Duration
	// Rate, when positive, serializes frames at this many bits/s
	// through a FIFO at the sending edge.
	Rate float64
	// ImpairA2B and ImpairB2A, when non-nil, judge every frame at the
	// respective sending edge (A→B carries the data direction under
	// FlowConns, B→A the ACKs). Stages see a synthesized packet
	// carrying the same annotations a simulator link would (kind, seq,
	// cumack, wire size), so loss and delay models behave identically
	// here and in pure simulation. The two directions take separate
	// pipelines because each runs on its owner's goroutine — never
	// share one RNG-bearing stage between them.
	ImpairA2B, ImpairB2A *netsim.Impairments
}

// Stats counts wire-layer traffic on one endpoint.
type Stats struct {
	FramesOut, FramesIn int64
	BytesOut, BytesIn   int64
	// ImpairDrops counts frames the impairment pipeline erased.
	ImpairDrops int64
	// DecodeDrops counts arriving frames the strict decoder rejected.
	DecodeDrops int64
}

// Endpoint is one end of the pipe: a reactor, its conns, and the
// sending-edge serializer state.
type Endpoint struct {
	r      *rtclock.Reactor
	cfg    Config
	addr   uint32
	peer   *Endpoint
	impair *netsim.Impairments

	// Reactor-goroutine-only state.
	conns     map[netsim.FlowID]*Conn
	busyUntil time.Duration
	scratch   wire.Segment
	judge     netsim.Packet
	stats     Stats
}

// Reactor returns the endpoint's reactor, the door to everything the
// endpoint owns (flow construction, starting senders, reading state).
func (ep *Endpoint) Reactor() *rtclock.Reactor { return ep.r }

// Stats snapshots the endpoint's wire counters (synchronized via the
// reactor).
func (ep *Endpoint) Stats() Stats {
	var st Stats
	ep.r.DoWait(func() { st = ep.stats })
	return st
}

// Conn implements wire.Conn for one flow on one endpoint.
type Conn struct {
	ep   *Endpoint
	flow netsim.FlowID
	h    wire.Handler

	seqNear, ackNear int64
}

// Backend is a bidirectional in-memory pipe implementing
// wire.Backend. End A holds the flows' senders, end B the receivers.
type Backend struct {
	cfg  Config
	a, b *Endpoint
}

// New builds the pipe and starts both reactors.
func New(cfg Config) *Backend {
	epoch := time.Now()
	a := &Endpoint{r: rtclock.New(epoch), cfg: cfg, addr: 0x0A000001,
		impair: cfg.ImpairA2B, conns: make(map[netsim.FlowID]*Conn)}
	b := &Endpoint{r: rtclock.New(epoch), cfg: cfg, addr: 0x0A000002,
		impair: cfg.ImpairB2A, conns: make(map[netsim.FlowID]*Conn)}
	a.peer, b.peer = b, a
	return &Backend{cfg: cfg, a: a, b: b}
}

// Name implements wire.Backend.
func (p *Backend) Name() string { return "pipe" }

// A returns the sender-side endpoint, B the receiver-side one.
func (p *Backend) A() *Endpoint { return p.a }

// B returns the receiver-side endpoint.
func (p *Backend) B() *Endpoint { return p.b }

// FlowConns implements wire.Backend.
func (p *Backend) FlowConns(id netsim.FlowID) (snd, rcv wire.Conn, err error) {
	if uint32(id) > 0xFFFF {
		return nil, nil, fmt.Errorf("pipebackend: flow id %d does not fit a port", id)
	}
	return p.a.attach(id), p.b.attach(id), nil
}

// Close stops both reactors. In-flight frames and timers die with
// them.
func (p *Backend) Close() error {
	p.a.r.Close()
	p.b.r.Close()
	return nil
}

func (ep *Endpoint) attach(id netsim.FlowID) *Conn {
	c := &Conn{ep: ep, flow: id}
	ep.r.DoWait(func() { ep.conns[id] = c })
	return c
}

// Clock implements wire.Conn.
func (c *Conn) Clock() *netsim.Simulator { return c.ep.r.Sim() }

// SetHandler implements wire.Conn (synchronized via the reactor).
func (c *Conn) SetHandler(h wire.Handler) {
	c.ep.r.DoWait(func() { c.h = h })
}

// Close implements wire.Conn.
func (c *Conn) Close() error {
	c.ep.r.DoWait(func() {
		c.h = nil
		delete(c.ep.conns, c.flow)
	})
	return nil
}

// Send implements wire.Conn. It must run on the endpoint's reactor
// goroutine (transport endpoints always send from event callbacks,
// which do). The frame materializes real bytes: the encoded header
// followed by seg.PayloadLen zeros when the segment carries virtual
// payload.
func (c *Conn) Send(seg *wire.Segment, meta wire.SendMeta) int {
	ep := c.ep
	sim := ep.r.Sim()
	now := sim.Now()
	seg.SrcAddr, seg.DstAddr = ep.addr, ep.peer.addr

	buf := make([]byte, wire.MaxHeaderLen+seg.PayloadLen)
	n, err := wire.EncodeSegment(buf, seg)
	if err != nil {
		panic(fmt.Sprintf("pipebackend: encode: %v", err))
	}
	frame := buf[:n] // unwritten payload tail is already zero
	ep.stats.FramesOut++
	ep.stats.BytesOut += int64(n)

	var extra, dupExtra time.Duration
	dup := false
	if ep.impair != nil {
		v := ep.impair.Judge(now, c.annotate(seg, meta, n, now))
		if v.Drop {
			ep.stats.ImpairDrops++
			return n // erased on the wire; the sender already paid for it
		}
		extra = v.ExtraDelay
		if extra < 0 {
			extra = 0
		}
		dup, dupExtra = v.Duplicate, v.DupExtraDelay
	}

	txStart := now
	if ep.busyUntil > txStart {
		txStart = ep.busyUntil
	}
	var ser time.Duration
	if ep.cfg.Rate > 0 {
		ser = time.Duration(float64(n*8) / ep.cfg.Rate * float64(time.Second))
	}
	ep.busyUntil = txStart + ser
	arrive := ep.busyUntil + ep.cfg.Delay + extra
	ep.sendToPeer(frame, arrive)
	if dup {
		ep.sendToPeer(frame, arrive+dupExtra) // frames are immutable once sent
	}
	return n
}

// annotate fills the endpoint's scratch packet with the simulator
// annotations impairment stages match on.
func (c *Conn) annotate(seg *wire.Segment, meta wire.SendMeta, n int, now time.Duration) *netsim.Packet {
	pkt := &c.ep.judge
	*pkt = netsim.Packet{Flow: c.flow, SentAt: now, Retrans: meta.Retrans}
	if meta.WireSize > 0 {
		pkt.Size = meta.WireSize
	} else {
		pkt.Size = n
	}
	if seg.IsData() {
		pkt.Kind = netsim.Data
		c.seqNear = wire.Unwrap32(c.seqNear, seg.Seq)
		pkt.Seq = c.seqNear
		pkt.Len = int64(seg.PayloadLen)
	} else {
		pkt.Kind = netsim.Ack
		c.ackNear = wire.Unwrap32(c.ackNear, seg.Ack)
		pkt.CumAck = c.ackNear
	}
	return pkt
}

// sendToPeer hands the frame to the peer reactor for delivery at
// virtual time at (the reactors share an epoch, so clocks compare).
func (ep *Endpoint) sendToPeer(frame []byte, at time.Duration) {
	p := ep.peer
	p.r.Do(func() {
		sim := p.r.Sim()
		if at <= sim.Now() {
			p.deliver(frame)
			return
		}
		sim.ScheduleAt(at, func() { p.deliver(frame) })
	})
}

func (ep *Endpoint) deliver(frame []byte) {
	n, err := wire.DecodeSegment(frame, &ep.scratch)
	if err != nil {
		ep.stats.DecodeDrops++
		return
	}
	ep.stats.FramesIn++
	ep.stats.BytesIn += int64(n)
	c := ep.conns[netsim.FlowID(ep.scratch.DstPort)]
	if c == nil || c.h == nil {
		return
	}
	c.h(&ep.scratch, n)
}
