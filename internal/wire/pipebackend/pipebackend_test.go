package pipebackend_test

import (
	"math/rand"
	"testing"
	"time"

	"suss/internal/core"
	"suss/internal/netem"
	"suss/internal/netsim"
	"suss/internal/tcp"
	"suss/internal/wire/pipebackend"
)

// runDownload drives one size-byte flow across the pipe and returns
// when the receiver holds the full stream (or fails the test on the
// wall-clock deadline).
func runDownload(t *testing.T, be *pipebackend.Backend, size int64, deadline time.Duration) *tcp.Flow {
	t.Helper()
	cfg := tcp.DefaultConfig()
	sconn, rconn, err := be.FlowConns(1)
	if err != nil {
		t.Fatal(err)
	}
	f := tcp.NewFlowOver(cfg, 1, sconn, rconn, size, nil)
	f.Sender.SetController(core.New(f.Sender, core.DefaultOptions()))

	done := make(chan struct{})
	be.B().Reactor().DoWait(func() {
		complete := f.Receiver.OnComplete // records CompletedAt
		f.Receiver.OnComplete = func(now time.Duration) {
			complete(now)
			close(done)
		}
	})
	be.A().Reactor().DoWait(func() {
		sim := be.A().Reactor().Sim()
		f.StartAt(sim, sim.Now())
	})

	select {
	case <-done:
	case <-time.After(deadline):
		var recvd, delivered int64
		be.B().Reactor().DoWait(func() { recvd = f.Receiver.Received() })
		be.A().Reactor().DoWait(func() { delivered = f.Sender.Delivered() })
		t.Fatalf("flow did not complete within %v (received %d/%d, delivered %d)",
			deadline, recvd, size, delivered)
	}
	return f
}

// TestPipeDownloadClean moves a stream across the clean pipe: the
// same sender/receiver code as the simulator backend, timers at
// wall-clock pace, frames crossing goroutines.
func TestPipeDownloadClean(t *testing.T) {
	be := pipebackend.New(pipebackend.Config{Delay: 2 * time.Millisecond, Rate: 1e9})
	defer be.Close()
	const size = 300 << 10
	f := runDownload(t, be, size, 30*time.Second)

	var recvd int64
	be.B().Reactor().DoWait(func() { recvd = f.Receiver.Received() })
	if recvd != size {
		t.Fatalf("received %d, want %d", recvd, size)
	}
	ast := be.A().Stats()
	bst := be.B().Stats()
	if ast.FramesOut == 0 || bst.FramesOut == 0 {
		t.Fatalf("no wire traffic: a=%+v b=%+v", ast, bst)
	}
	if ast.DecodeDrops != 0 || bst.DecodeDrops != 0 {
		t.Fatalf("strict decode rejected frames on a clean pipe: a=%d b=%d",
			ast.DecodeDrops, bst.DecodeDrops)
	}
	// Real frames: the data direction must have carried at least the
	// stream's payload bytes plus headers.
	if ast.BytesOut < size {
		t.Fatalf("A sent %d wire bytes for a %d-byte stream", ast.BytesOut, size)
	}
}

// TestPipeDownloadLossy erases 5% of data frames (and 2% of ACKs)
// with the same Bernoulli stage simulator links use. The flow must
// still complete — loss detection, SACK retransmission and RTO run on
// real wall-clock timers here.
func TestPipeDownloadLossy(t *testing.T) {
	be := pipebackend.New(pipebackend.Config{
		Delay:     2 * time.Millisecond,
		Rate:      1e9,
		ImpairA2B: netsim.NewImpairments(netem.Erasure{Fn: netem.Bernoulli(0.05, rand.New(rand.NewSource(7)))}),
		ImpairB2A: netsim.NewImpairments(netem.Erasure{Fn: netem.Bernoulli(0.02, rand.New(rand.NewSource(11)))}),
	})
	defer be.Close()
	const size = 150 << 10
	f := runDownload(t, be, size, 60*time.Second)

	var recvd int64
	be.B().Reactor().DoWait(func() { recvd = f.Receiver.Received() })
	if recvd != size {
		t.Fatalf("received %d, want %d", recvd, size)
	}
	// The receiver is done, but the sender still needs its final ACK —
	// which the B→A impairment may erase a few times over.
	var dlv int64
	var finished bool
	for waited := time.Duration(0); waited < 30*time.Second; waited += 10 * time.Millisecond {
		be.A().Reactor().DoWait(func() { dlv, finished = f.Sender.Delivered(), f.Sender.Finished() })
		if finished {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !finished || dlv != size {
		t.Fatalf("sender finished=%v delivered=%d, want full ack of %d", finished, dlv, size)
	}
	if drops := be.A().Stats().ImpairDrops; drops == 0 {
		t.Fatal("impairment stage never fired; the lossy cell tested nothing")
	}
}

// TestPipeFlowIDRange rejects flow IDs that cannot travel in a port.
func TestPipeFlowIDRange(t *testing.T) {
	be := pipebackend.New(pipebackend.Config{})
	defer be.Close()
	if _, _, err := be.FlowConns(1 << 17); err == nil {
		t.Fatal("flow id beyond 16 bits must be rejected")
	}
}
