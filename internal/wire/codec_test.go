package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"reflect"
	"testing"
	"time"
)

// encodedBytes returns the byte count EncodeSegment wrote for seg:
// the wire length when the payload is real, header-only otherwise.
func encodedBytes(seg *Segment, wireLen int) int {
	if seg.Payload != nil {
		return wireLen
	}
	return wireLen - seg.PayloadLen
}

func mustEncode(t *testing.T, seg *Segment) ([]byte, int) {
	t.Helper()
	var buf [0xFFFF]byte
	n, err := EncodeSegment(buf[:], seg)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	return buf[:encodedBytes(seg, n)], n
}

func TestRoundTripDataSegment(t *testing.T) {
	in := &Segment{
		SrcAddr: 0x0A000001, DstAddr: 0x0A000002,
		SrcPort: 7, DstPort: 7,
		Seq:        0xFFFFFE00, // wraps mid-segment
		Flags:      FlagACK | FlagPSH,
		Window:     65535,
		HasTS:      true,
		TSVal:      12345678,
		TSEcr:      87654321,
		PayloadLen: 1448,
		Payload:    bytes.Repeat([]byte{0xA5}, 1448),
	}
	frame, wireLen := mustEncode(t, in)
	if wireLen != MinHeaderLen+12+1448 {
		t.Fatalf("wire length %d", wireLen)
	}
	var out Segment
	n, err := DecodeSegment(frame, &out)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if n != wireLen {
		t.Fatalf("decode length %d, want %d", n, wireLen)
	}
	if !bytes.Equal(out.Payload, in.Payload) {
		t.Fatal("payload corrupted")
	}
	out.Payload = nil
	ref := *in
	ref.Payload = nil
	if !reflect.DeepEqual(out, ref) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", out, ref)
	}
}

func TestRoundTripHeaderOnlyVirtualPayload(t *testing.T) {
	// The simulator's case: the frame carries only headers while the IP
	// total length covers 1448 virtual payload bytes.
	in := &Segment{
		SrcPort: 3, DstPort: 3,
		Seq:        2896,
		Flags:      FlagACK | FlagPSH,
		Window:     65535,
		PayloadLen: 1448,
	}
	frame, wireLen := mustEncode(t, in)
	if len(frame) != MinHeaderLen {
		t.Fatalf("header-only frame is %d bytes", len(frame))
	}
	var out Segment
	n, err := DecodeSegment(frame, &out)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if n != wireLen || n != MinHeaderLen+1448 {
		t.Fatalf("wire length %d", n)
	}
	if out.Payload != nil || out.PayloadLen != 1448 {
		t.Fatalf("virtual payload decoded as %d bytes, Payload=%v", out.PayloadLen, out.Payload)
	}
	if !out.IsData() {
		t.Fatal("virtual-payload segment must still be data")
	}
}

func TestRoundTripSynOptions(t *testing.T) {
	in := &Segment{
		SrcPort: 1, DstPort: 1,
		Flags:         FlagSYN,
		Window:        65535,
		HasMSS:        true,
		MSS:           1448,
		HasWScale:     true,
		WScale:        7,
		SackPermitted: true,
		HasTS:         true,
		TSVal:         42,
	}
	frame, _ := mustEncode(t, in)
	var out Segment
	if _, err := DecodeSegment(frame, &out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(out, *in) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", out, *in)
	}
}

func TestSackTruncationKeepsMostRecent(t *testing.T) {
	// Four blocks beside a timestamp option exceed the 40-byte option
	// budget: exactly the first three (most recently changed) survive.
	in := &Segment{
		Flags: FlagACK, Window: 65535, HasTS: true,
		NSack: 4,
		Sack: [MaxSackBlocks]SackBlock{
			{8000, 9000}, {6000, 7000}, {4000, 5000}, {2000, 3000},
		},
	}
	frame, _ := mustEncode(t, in)
	var out Segment
	if _, err := DecodeSegment(frame, &out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if out.NSack != 3 {
		t.Fatalf("NSack = %d, want 3 (deterministic truncation)", out.NSack)
	}
	for i, b := range out.SackBlocks() {
		if b != in.Sack[i] {
			t.Fatalf("block %d = %v, want %v (must keep the freshest)", i, b, in.Sack[i])
		}
	}

	// Without the timestamp option all four fit (RFC 2018 maximum).
	in.HasTS = false
	frame, _ = mustEncode(t, in)
	if _, err := DecodeSegment(frame, &out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if out.NSack != 4 {
		t.Fatalf("NSack = %d, want 4 without timestamps", out.NSack)
	}
}

// corrupt re-encodes a fresh copy of seg and applies f to the frame,
// fixing the IP checksum afterwards unless f broke the IP header on
// purpose.
func corruptFrame(t *testing.T, seg *Segment, fixSum bool, f func(frame []byte)) []byte {
	t.Helper()
	frame, _ := mustEncode(t, seg)
	f(frame)
	if fixSum {
		frame[10], frame[11] = 0, 0
		binary.BigEndian.PutUint16(frame[10:], ipChecksum(frame[:IPHeaderLen]))
	}
	return frame
}

func TestDecodeStrictErrors(t *testing.T) {
	base := func() *Segment {
		return &Segment{
			SrcPort: 9, DstPort: 9, Seq: 1000, Flags: FlagACK | FlagPSH,
			Window: 65535, HasTS: true, TSVal: 1, TSEcr: 2, PayloadLen: 100,
		}
	}
	sacky := &Segment{
		Flags: FlagACK, Window: 65535, NSack: 1,
		Sack: [MaxSackBlocks]SackBlock{{1000, 2000}},
	}
	cases := []struct {
		name  string
		frame []byte
		want  error
	}{
		{"truncated", []byte{0x45, 0, 0, 40}, ErrTruncated},
		{"empty", nil, ErrTruncated},
		{"ip version", corruptFrame(t, base(), true, func(f []byte) { f[0] = 0x65 }), ErrIPVersion},
		{"ip options", corruptFrame(t, base(), true, func(f []byte) { f[0] = 0x46 }), ErrIPHeaderLen},
		{"not tcp", corruptFrame(t, base(), true, func(f []byte) { f[9] = 17 }), ErrIPProto},
		{"checksum", corruptFrame(t, base(), false, func(f []byte) { f[12]++ }), ErrIPChecksum},
		{"tcp offset small", corruptFrame(t, base(), true, func(f []byte) { f[IPHeaderLen+12] = 4 << 4 }), ErrTCPOffset},
		// A pure ACK's wire length is 40, so an offset claiming a
		// 60-byte TCP header points past the datagram.
		{"tcp offset past end", corruptFrame(t, &Segment{Flags: FlagACK, Window: 65535}, true, func(f []byte) { f[IPHeaderLen+12] = 15 << 4 }), ErrTCPOffset},
		{"length mismatch", append(corruptFrame(t, base(), true, func([]byte) {}), 0), ErrIPLength},
		{"option length", corruptFrame(t, base(), true, func(f []byte) {
			f[IPHeaderLen+TCPHeaderLen+3] = 1 // TS option: NOP,NOP,kind,len → len 1
		}), ErrOptionLen},
		{"option overrun", corruptFrame(t, base(), true, func(f []byte) {
			f[IPHeaderLen+TCPHeaderLen+3] = 40 // TS length runs past the option area
		}), ErrOptionLen},
		{"sack length", corruptFrame(t, sacky, true, func(f []byte) {
			f[IPHeaderLen+TCPHeaderLen+3] = 9 // SACK option: 2+8n only
		}), ErrSackLen},
	}
	for _, tc := range cases {
		var seg Segment
		_, err := DecodeSegment(tc.frame, &seg)
		if !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
}

func TestDecodeDuplicateOption(t *testing.T) {
	// Hand-build a frame whose option area repeats the timestamp
	// option; the encoder can never emit this, so splice it manually.
	seg := &Segment{Flags: FlagACK, Window: 65535, HasTS: true, TSVal: 7, TSEcr: 8}
	frame, _ := mustEncode(t, seg)
	opts := frame[IPHeaderLen+TCPHeaderLen:]
	dup := make([]byte, 0, len(frame)+len(opts))
	dup = append(dup, frame...)
	dup = append(dup, opts...) // second copy of the TS group
	optLen := 2 * len(opts)
	dup[IPHeaderLen+12] = uint8((TCPHeaderLen+optLen)/4) << 4
	binary.BigEndian.PutUint16(dup[2:], uint16(len(dup)))
	dup[10], dup[11] = 0, 0
	binary.BigEndian.PutUint16(dup[10:], ipChecksum(dup[:IPHeaderLen]))
	var out Segment
	if _, err := DecodeSegment(dup, &out); !errors.Is(err, ErrDupOption) {
		t.Fatalf("err = %v, want ErrDupOption", err)
	}
}

func TestUnknownOptionSkipped(t *testing.T) {
	// A foreign option (MD5 signature, kind 19) must be stepped over by
	// its stated length without disturbing the options after it.
	seg := &Segment{Flags: FlagACK, Window: 65535, HasTS: true, TSVal: 9, TSEcr: 10}
	frame, _ := mustEncode(t, seg)
	withOpt := make([]byte, 0, len(frame)+4)
	withOpt = append(withOpt, frame[:IPHeaderLen+TCPHeaderLen]...)
	withOpt = append(withOpt, 19, 4, 0xDE, 0xAD) // unknown option first
	withOpt = append(withOpt, frame[IPHeaderLen+TCPHeaderLen:]...)
	optLen := 4 + 12
	withOpt[IPHeaderLen+12] = uint8((TCPHeaderLen+optLen)/4) << 4
	binary.BigEndian.PutUint16(withOpt[2:], uint16(len(withOpt)))
	withOpt[10], withOpt[11] = 0, 0
	binary.BigEndian.PutUint16(withOpt[10:], ipChecksum(withOpt[:IPHeaderLen]))
	var out Segment
	if _, err := DecodeSegment(withOpt, &out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !out.HasTS || out.TSVal != 9 || out.TSEcr != 10 {
		t.Fatalf("timestamp lost behind unknown option: %+v", out)
	}
}

func TestUnwrap32(t *testing.T) {
	cases := []struct {
		near int64
		v    uint32
		want int64
	}{
		{0, 0, 0},
		{1000, 1500, 1500},
		{1 << 32, 100, 1<<32 + 100},           // epoch above
		{1<<32 - 50, 100, 1<<32 + 100},        // forward across the wrap
		{1<<32 + 50, 0xFFFFFF00, 1<<32 - 256}, // backward across the wrap
		{5<<32 + 123, 123, 5<<32 + 123},       // identity at a high epoch
		{100, 0xFFFFFFF0, -16},                // adversarial: negative is possible
	}
	for _, tc := range cases {
		if got := Unwrap32(tc.near, tc.v); got != tc.want {
			t.Errorf("Unwrap32(%d, %#x) = %d, want %d", tc.near, tc.v, got, tc.want)
		}
	}
	if got := Unwrap32(1<<32+50, 0xFFFFFF00); uint32(got) != 0xFFFFFF00 {
		t.Error("unwrap must preserve the low 32 bits")
	}
}

func TestUnwrapTS(t *testing.T) {
	for _, gap := range []time.Duration{0, time.Millisecond, 1600 * time.Millisecond, 4 * time.Second} {
		for _, now := range []time.Duration{gap, time.Second + gap, 10*time.Second + gap, 1<<33 + gap} {
			sent := now - gap
			if got := UnwrapTS(now, WrapTS(sent)); got != sent {
				t.Fatalf("UnwrapTS(%v, WrapTS(%v)) = %v", now, sent, got)
			}
		}
	}
}

// TestCodecAllocsZero gates the hot path: encode and decode must not
// allocate (the fig11 benchmark would regress on allocs/op otherwise).
func TestCodecAllocsZero(t *testing.T) {
	in := &Segment{
		Flags: FlagACK, Window: 65535, HasTS: true, TSVal: 1, TSEcr: 2,
		NSack: 3,
		Sack:  [MaxSackBlocks]SackBlock{{3000, 4000}, {5000, 6000}, {7000, 8000}},
	}
	var buf [MaxHeaderLen]byte
	var out Segment
	allocs := testing.AllocsPerRun(1000, func() {
		n, err := EncodeSegment(buf[:], in)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := DecodeSegment(buf[:n], &out); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("codec allocates %.1f per round trip, want 0", allocs)
	}
}

func BenchmarkEncodeSegment(b *testing.B) {
	in := &Segment{
		Flags: FlagACK | FlagPSH, Window: 65535, Seq: 123456,
		HasTS: true, TSVal: 1, TSEcr: 2, PayloadLen: 1448,
	}
	var buf [MaxHeaderLen]byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := EncodeSegment(buf[:], in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeSegment(b *testing.B) {
	in := &Segment{
		Flags: FlagACK, Window: 65535, HasTS: true, TSVal: 1, TSEcr: 2,
		NSack: 3,
		Sack:  [MaxSackBlocks]SackBlock{{3000, 4000}, {5000, 6000}, {7000, 8000}},
	}
	var buf [MaxHeaderLen]byte
	n, err := EncodeSegment(buf[:], in)
	if err != nil {
		b.Fatal(err)
	}
	frame := buf[:n]
	var out Segment
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeSegment(frame, &out); err != nil {
			b.Fatal(err)
		}
	}
}
