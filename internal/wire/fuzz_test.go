package wire

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzDecodeSegment drives arbitrary bytes through the strict decoder
// and checks two properties:
//
//  1. no input panics (errors are the only rejection path), and
//  2. any input the decoder accepts re-encodes to a canonical fixed
//     point: encode(decode(b)) may differ from b (option order and
//     padding are canonicalized, stale SACK blocks are truncated), but
//     running the round trip again must reproduce it exactly.
func FuzzDecodeSegment(f *testing.F) {
	seed := func(seg *Segment) {
		var buf [0xFFFF]byte
		n, err := EncodeSegment(buf[:], seg)
		if err != nil {
			f.Fatal(err)
		}
		if seg.Payload == nil {
			n -= seg.PayloadLen
		}
		f.Add(buf[:n:n])
	}
	seed(&Segment{Flags: FlagACK | FlagPSH, Window: 65535, Seq: 0xFFFFFF00,
		HasTS: true, TSVal: 5, TSEcr: 6, PayloadLen: 1448})
	seed(&Segment{Flags: FlagACK, Window: 65535, Ack: 123456, NSack: 4,
		Sack: [MaxSackBlocks]SackBlock{{9, 10}, {7, 8}, {5, 6}, {3, 4}}})
	seed(&Segment{Flags: FlagSYN, Window: 65535, HasMSS: true, MSS: 1448,
		HasWScale: true, WScale: 7, SackPermitted: true, HasTS: true})
	seed(&Segment{Flags: FlagACK | FlagPSH, Window: 1, PayloadLen: 3,
		Payload: []byte{1, 2, 3}})
	f.Add([]byte{})
	f.Add([]byte{0x45, 0x00, 0x00, 0x28})
	f.Add(bytes.Repeat([]byte{0x45}, 60))

	f.Fuzz(func(t *testing.T, b []byte) {
		var seg Segment
		if _, err := DecodeSegment(b, &seg); err != nil {
			return
		}
		// Accepted: the decoded segment must be encodable…
		buf2 := make([]byte, 0xFFFF)
		n2, err := EncodeSegment(buf2, &seg)
		if errors.Is(err, ErrFrameSize) {
			// A maximally-packed foreign frame (options without the
			// canonical NOP padding) can grow past the 16-bit IP length
			// when re-encoded canonically; that is a representability
			// limit, not a codec defect.
			return
		}
		if err != nil {
			t.Fatalf("decoded segment does not re-encode: %v\nseg: %+v", err, seg)
		}
		w2 := n2
		if seg.Payload == nil {
			w2 -= seg.PayloadLen
		}
		// …and its encoding must be a fixed point of the round trip.
		var seg2 Segment
		n2b, err := DecodeSegment(buf2[:w2], &seg2)
		if err != nil {
			t.Fatalf("canonical encoding does not decode: %v", err)
		}
		if n2b != n2 {
			t.Fatalf("wire length changed across the round trip: %d → %d", n2, n2b)
		}
		buf3 := make([]byte, 0xFFFF)
		n3, err := EncodeSegment(buf3, &seg2)
		if err != nil {
			t.Fatalf("second re-encode failed: %v", err)
		}
		w3 := n3
		if seg2.Payload == nil {
			w3 -= seg2.PayloadLen
		}
		if !bytes.Equal(buf2[:w2], buf3[:w3]) {
			t.Fatalf("encoding is not canonical:\n 1st %x\n 2nd %x", buf2[:w2], buf3[:w3])
		}
	})
}
