package rtclock

import (
	"sync/atomic"
	"testing"
	"time"
)

// TestTimerFiresAtWallPace is the package's core promise: an event
// scheduled d virtual time out fires ≈d wall time later.
func TestTimerFiresAtWallPace(t *testing.T) {
	r := New(time.Now())
	defer r.Close()

	const d = 60 * time.Millisecond
	fired := make(chan time.Duration, 1)
	start := time.Now()
	r.DoWait(func() {
		sim := r.Sim()
		sim.Schedule(d, func() { fired <- time.Since(start) })
	})
	select {
	case elapsed := <-fired:
		if elapsed < d || elapsed > d+150*time.Millisecond {
			t.Fatalf("timer fired after %v wall time, want ≈%v", elapsed, d)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("timer never fired")
	}
}

// TestClockPinnedToWall checks Now() tracks the wall clock even with
// an empty event queue (the no-op pin in advance).
func TestClockPinnedToWall(t *testing.T) {
	epoch := time.Now()
	r := New(epoch)
	defer r.Close()

	time.Sleep(30 * time.Millisecond)
	var now time.Duration
	r.DoWait(func() { now = r.Sim().Now() })
	wall := time.Since(epoch)
	if now < 30*time.Millisecond || now > wall {
		t.Fatalf("virtual now %v outside (30ms, wall %v]", now, wall)
	}
}

// TestDoOrdering: funcs submitted from one goroutine run in order.
func TestDoOrdering(t *testing.T) {
	r := New(time.Now())
	defer r.Close()

	var seq atomic.Int64
	for i := int64(1); i <= 100; i++ {
		want := i
		r.Do(func() {
			if got := seq.Add(1); got != want {
				t.Errorf("func %d ran as %d", want, got)
			}
		})
	}
	r.DoWait(func() {})
	if seq.Load() != 100 {
		t.Fatalf("ran %d funcs, want 100", seq.Load())
	}
}

// TestCloseUnblocksWaiters: DoWait on a closed reactor returns instead
// of hanging.
func TestCloseUnblocksWaiters(t *testing.T) {
	r := New(time.Now())
	r.Close()
	done := make(chan struct{})
	go func() {
		r.DoWait(func() {})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("DoWait hung on a closed reactor")
	}
}
