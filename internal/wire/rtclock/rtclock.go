// Package rtclock runs a private netsim.Simulator at wall-clock pace
// for the real-time wire backends (in-memory pipe, UDP underlay).
//
// The deterministic transport endpoints only know the simulator's
// virtual clock: timers are netsim events, "now" is Simulator.Now().
// A Reactor owns one simulator on one goroutine and keeps that
// virtual clock pinned to wall time: it sleeps until the earliest
// pending event (Simulator.NextEventAt) or until external work
// arrives (Do), then advances the simulator exactly that far. The
// transport code runs unmodified — an RTO armed 200 virtual
// milliseconds out fires 200 wall milliseconds later.
//
// Concurrency contract: the simulator and everything scheduled on it
// (conns, senders, receivers) are owned by the reactor goroutine.
// All outside access goes through Do/DoWait.
package rtclock

import (
	"sync"
	"time"

	"suss/internal/netsim"
)

// Reactor drives one simulator at wall-clock pace.
type Reactor struct {
	sim   *netsim.Simulator
	epoch time.Time

	funcs chan func()
	done  chan struct{}
	once  sync.Once
	wg    sync.WaitGroup
}

// New starts a reactor whose virtual time 0 is the given wall epoch.
// Reactors that share an epoch (the two ends of a pipe) have directly
// comparable virtual clocks.
func New(epoch time.Time) *Reactor {
	r := &Reactor{
		sim:   netsim.NewSimulator(),
		epoch: epoch,
		funcs: make(chan func(), 4096),
		done:  make(chan struct{}),
	}
	r.wg.Add(1)
	go r.loop()
	return r
}

// Sim returns the reactor's simulator. Touch it only from inside
// Do/DoWait (or from event callbacks, which already run on the
// reactor goroutine); storing the pointer is safe anywhere.
func (r *Reactor) Sim() *netsim.Simulator { return r.sim }

// Do runs fn on the reactor goroutine, after advancing the virtual
// clock to wall-now. It never blocks on a stopped reactor.
func (r *Reactor) Do(fn func()) {
	select {
	case r.funcs <- fn:
	case <-r.done:
	}
}

// DoWait is Do, blocking until fn has run (or the reactor stops).
func (r *Reactor) DoWait(fn func()) {
	ch := make(chan struct{})
	r.Do(func() {
		fn()
		close(ch)
	})
	select {
	case <-ch:
	case <-r.done:
	}
}

// Close stops the reactor and waits for its goroutine to exit.
// Pending events never fire; queued Do funcs are discarded.
func (r *Reactor) Close() {
	r.once.Do(func() { close(r.done) })
	r.wg.Wait()
}

func noopEv(_, _ any) {}

// advance runs every event due by wall-now and leaves Now() there. A
// no-op event pins the clock so Now() is exact even when the queue is
// empty (Run alone does not advance a drained simulator's clock).
func (r *Reactor) advance() {
	now := time.Since(r.epoch)
	if r.sim.Now() >= now {
		return
	}
	r.sim.ScheduleEventAt(now, noopEv, nil, nil)
	r.sim.Run(now)
}

func (r *Reactor) loop() {
	defer r.wg.Done()
	for {
		r.advance()
		var tch <-chan time.Time
		var tmr *time.Timer
		if next, ok := r.sim.NextEventAt(); ok {
			d := next - time.Since(r.epoch)
			if d < 0 {
				d = 0
			}
			tmr = time.NewTimer(d)
			tch = tmr.C
		}
		select {
		case fn := <-r.funcs:
			r.advance()
			fn()
		case <-tch:
			// Fall through: the next advance fires the due event.
		case <-r.done:
			if tmr != nil {
				tmr.Stop()
			}
			return
		}
		if tmr != nil {
			tmr.Stop()
		}
	}
}
