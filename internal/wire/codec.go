package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Frame geometry. The codec emits a fixed 20-byte IPv4 header (no IP
// options) followed by a TCP header whose option area is padded to a
// 4-byte boundary with NOPs, then the payload when it is real. The IP
// total-length field covers the payload even when the frame itself is
// header-only (virtual payload, the simulator case), which is what
// lets one decoder serve both worlds: a frame is valid when its
// length equals either the header length (payload virtual) or the
// total length (payload present).
const (
	// IPHeaderLen is the fixed IPv4 header size (no options).
	IPHeaderLen = 20
	// TCPHeaderLen is the fixed TCP header size before options.
	TCPHeaderLen = 20
	// MaxTCPOptionsLen is the TCP option-space budget (data offset is
	// a 4-bit word count, so 60-byte TCP header max).
	MaxTCPOptionsLen = 40
	// MinHeaderLen/MaxHeaderLen bound the encoded header region.
	MinHeaderLen = IPHeaderLen + TCPHeaderLen
	MaxHeaderLen = MinHeaderLen + MaxTCPOptionsLen
)

// TCP option kinds the codec understands.
const (
	optEOL      = 0
	optNOP      = 1
	optMSS      = 2
	optWScale   = 3
	optSackPerm = 4
	optSack     = 5
	optTS       = 8
)

// Strict decode/encode validation errors. Decode errors identify the
// first structural violation found; backends treat any of them as a
// NIC-level discard.
var (
	ErrTruncated   = errors.New("wire: frame shorter than its headers")
	ErrIPVersion   = errors.New("wire: not an IPv4 frame")
	ErrIPHeaderLen = errors.New("wire: bad IPv4 header length")
	ErrIPProto     = errors.New("wire: IP protocol is not TCP")
	ErrIPChecksum  = errors.New("wire: IPv4 header checksum mismatch")
	ErrIPLength    = errors.New("wire: frame length matches neither header-only nor total length")
	ErrTCPOffset   = errors.New("wire: bad TCP data offset")
	ErrOptionLen   = errors.New("wire: malformed TCP option length")
	ErrDupOption   = errors.New("wire: TCP option repeated")
	ErrSackLen     = errors.New("wire: SACK option length is not 2+8n, n in 1..4")

	ErrBufTooSmall = errors.New("wire: encode buffer too small")
	ErrPayload     = errors.New("wire: payload slice length disagrees with PayloadLen")
	ErrFrameSize   = errors.New("wire: frame exceeds the 16-bit IP total length")
)

// ipChecksum is the RFC 1071 ones-complement sum over the IPv4
// header, with the checksum field taken as zero by the caller.
func ipChecksum(h []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(h); i += 2 {
		sum += uint32(h[i])<<8 | uint32(h[i+1])
	}
	for sum>>16 != 0 {
		sum = sum&0xFFFF + sum>>16
	}
	return ^uint16(sum)
}

// optionsLen returns the encoded (NOP-padded) option-area size for
// seg and the number of SACK blocks that fit beside the other
// options. Every option group is padded to a 4-byte boundary, so the
// area never needs EOL padding.
func optionsLen(seg *Segment) (n, sackFit int) {
	if seg.HasMSS {
		n += 4 // kind, len, 2 value bytes
	}
	if seg.HasWScale {
		n += 4 // NOP + kind, len, shift
	}
	if seg.SackPermitted {
		n += 4 // NOP, NOP + kind, len
	}
	if seg.HasTS {
		n += 12 // NOP, NOP + kind, len, 2×32-bit
	}
	if seg.NSack > 0 {
		// NOP, NOP + kind, len + 8 bytes per block; keep the most
		// recent blocks (the slice is ordered newest-first).
		sackFit = (MaxTCPOptionsLen - n - 4) / 8
		if sackFit > seg.NSack {
			sackFit = seg.NSack
		}
		if sackFit < 0 {
			sackFit = 0
		}
		if sackFit > 0 {
			n += 4 + 8*sackFit
		}
	}
	return n, sackFit
}

// EncodeSegment writes seg as one frame into buf and returns the
// frame's wire length — the IP total length, which counts the payload
// even when it is virtual (Payload nil) and the written frame is
// header-only. The written byte count is the returned length when
// Payload is non-nil, header-only otherwise.
//
// Encoding is canonical: option order and padding are fixed, so equal
// segments encode to equal bytes. SACK blocks beyond what the option
// budget holds are dropped deterministically (the slice is ordered
// most-recent-first; the stale tail goes). The codec allocates
// nothing.
func EncodeSegment(buf []byte, seg *Segment) (int, error) {
	if seg.PayloadLen < 0 || seg.Payload != nil && len(seg.Payload) != seg.PayloadLen {
		return 0, ErrPayload
	}
	optLen, sackFit := optionsLen(seg)
	hdrLen := MinHeaderLen + optLen
	wireLen := hdrLen + seg.PayloadLen
	if wireLen > 0xFFFF {
		return 0, ErrFrameSize
	}
	need := hdrLen
	if seg.Payload != nil {
		need += seg.PayloadLen
	}
	if len(buf) < need {
		return 0, ErrBufTooSmall
	}

	// IPv4 header.
	ip := buf[:IPHeaderLen]
	ip[0] = 0x45 // version 4, IHL 5
	ip[1] = 0
	binary.BigEndian.PutUint16(ip[2:], uint16(wireLen))
	binary.BigEndian.PutUint16(ip[4:], 0)      // identification
	binary.BigEndian.PutUint16(ip[6:], 0x4000) // DF
	ip[8] = 64                                 // TTL
	ip[9] = 6                                  // TCP
	ip[10], ip[11] = 0, 0
	binary.BigEndian.PutUint32(ip[12:], seg.SrcAddr)
	binary.BigEndian.PutUint32(ip[16:], seg.DstAddr)
	binary.BigEndian.PutUint16(ip[10:], ipChecksum(ip))

	// TCP header.
	tcp := buf[IPHeaderLen:hdrLen]
	binary.BigEndian.PutUint16(tcp[0:], seg.SrcPort)
	binary.BigEndian.PutUint16(tcp[2:], seg.DstPort)
	binary.BigEndian.PutUint32(tcp[4:], seg.Seq)
	binary.BigEndian.PutUint32(tcp[8:], seg.Ack)
	tcp[12] = uint8((TCPHeaderLen+optLen)/4) << 4
	tcp[13] = seg.Flags
	binary.BigEndian.PutUint16(tcp[14:], seg.Window)
	// Checksum stays zero: the transport treats it as offloaded (the
	// simulator and pipe have no corrupting medium; UDP has its own).
	tcp[16], tcp[17] = 0, 0
	binary.BigEndian.PutUint16(tcp[18:], 0) // urgent pointer

	o := tcp[TCPHeaderLen:TCPHeaderLen] // options, appended in place
	if seg.HasMSS {
		o = append(o, optMSS, 4, byte(seg.MSS>>8), byte(seg.MSS))
	}
	if seg.HasWScale {
		o = append(o, optNOP, optWScale, 3, seg.WScale)
	}
	if seg.SackPermitted {
		o = append(o, optNOP, optNOP, optSackPerm, 2)
	}
	if seg.HasTS {
		o = append(o, optNOP, optNOP, optTS, 10,
			byte(seg.TSVal>>24), byte(seg.TSVal>>16), byte(seg.TSVal>>8), byte(seg.TSVal),
			byte(seg.TSEcr>>24), byte(seg.TSEcr>>16), byte(seg.TSEcr>>8), byte(seg.TSEcr))
	}
	if sackFit > 0 {
		o = append(o, optNOP, optNOP, optSack, byte(2+8*sackFit))
		for _, b := range seg.Sack[:sackFit] {
			o = append(o, byte(b.Start>>24), byte(b.Start>>16), byte(b.Start>>8), byte(b.Start),
				byte(b.End>>24), byte(b.End>>16), byte(b.End>>8), byte(b.End))
		}
	}
	if len(o) != optLen {
		panic(fmt.Sprintf("wire: option area %d bytes, computed %d", len(o), optLen))
	}

	if seg.Payload != nil {
		copy(buf[hdrLen:], seg.Payload)
	}
	return wireLen, nil
}

// DecodeSegment parses one frame into seg, replacing its contents,
// and returns the frame's wire length (the IP total length). It
// validates strictly: structural violations — truncation, bad
// version, checksum mismatch, malformed option lengths, repeated
// options — are errors, and seg's contents are unspecified after one.
// Semantic nonsense (an inverted SACK range, an ACK for data never
// sent) is the transport's business, not the codec's.
//
// When the frame carries its payload, seg.Payload aliases the frame's
// tail — the segment borrows the frame's storage and is valid only as
// long as the frame is. Header-only frames (virtual payload) leave
// Payload nil with PayloadLen from the total length. The codec
// allocates nothing.
func DecodeSegment(frame []byte, seg *Segment) (int, error) {
	*seg = Segment{}
	if len(frame) < MinHeaderLen {
		return 0, ErrTruncated
	}
	if frame[0]>>4 != 4 {
		return 0, ErrIPVersion
	}
	if frame[0]&0x0F != 5 {
		// The codec never emits IP options; a frame claiming them is
		// from another stack.
		return 0, ErrIPHeaderLen
	}
	if frame[9] != 6 {
		return 0, ErrIPProto
	}
	ip := frame[:IPHeaderLen]
	got := binary.BigEndian.Uint16(ip[10:])
	ip[10], ip[11] = 0, 0
	want := ipChecksum(ip)
	binary.BigEndian.PutUint16(ip[10:], got)
	if got != want {
		return 0, ErrIPChecksum
	}
	wireLen := int(binary.BigEndian.Uint16(ip[2:]))
	seg.SrcAddr = binary.BigEndian.Uint32(ip[12:])
	seg.DstAddr = binary.BigEndian.Uint32(ip[16:])

	if len(frame) < IPHeaderLen+TCPHeaderLen {
		return 0, ErrTruncated
	}
	tcp := frame[IPHeaderLen:]
	hdrLen := IPHeaderLen + int(tcp[12]>>4)*4
	if int(tcp[12]>>4) < 5 || hdrLen > wireLen {
		return 0, ErrTCPOffset
	}
	// A frame is either the full datagram (payload present) or just
	// the headers (payload virtual).
	switch len(frame) {
	case wireLen:
		if wireLen > hdrLen {
			seg.Payload = frame[hdrLen:wireLen]
		}
	case hdrLen:
		// Header-only: payload virtual.
	default:
		return 0, ErrIPLength
	}
	seg.PayloadLen = wireLen - hdrLen

	seg.SrcPort = binary.BigEndian.Uint16(tcp[0:])
	seg.DstPort = binary.BigEndian.Uint16(tcp[2:])
	seg.Seq = binary.BigEndian.Uint32(tcp[4:])
	seg.Ack = binary.BigEndian.Uint32(tcp[8:])
	seg.Flags = tcp[13]
	seg.Window = binary.BigEndian.Uint16(tcp[14:])

	opts := tcp[TCPHeaderLen : hdrLen-IPHeaderLen]
	var seen [optTS + 1]bool
	for i := 0; i < len(opts); {
		kind := opts[i]
		if kind == optEOL {
			break
		}
		if kind == optNOP {
			i++
			continue
		}
		if i+1 >= len(opts) {
			return 0, ErrOptionLen
		}
		l := int(opts[i+1])
		if l < 2 || i+l > len(opts) {
			return 0, ErrOptionLen
		}
		if int(kind) < len(seen) {
			if seen[kind] {
				return 0, ErrDupOption
			}
			seen[kind] = true
		}
		body := opts[i+2 : i+l]
		switch kind {
		case optMSS:
			if l != 4 {
				return 0, ErrOptionLen
			}
			seg.HasMSS = true
			seg.MSS = binary.BigEndian.Uint16(body)
		case optWScale:
			if l != 3 {
				return 0, ErrOptionLen
			}
			seg.HasWScale = true
			seg.WScale = body[0]
		case optSackPerm:
			if l != 2 {
				return 0, ErrOptionLen
			}
			seg.SackPermitted = true
		case optTS:
			if l != 10 {
				return 0, ErrOptionLen
			}
			seg.HasTS = true
			seg.TSVal = binary.BigEndian.Uint32(body)
			seg.TSEcr = binary.BigEndian.Uint32(body[4:])
		case optSack:
			n := (l - 2) / 8
			if (l-2)%8 != 0 || n < 1 || n > MaxSackBlocks {
				return 0, ErrSackLen
			}
			seg.NSack = n
			for j := 0; j < n; j++ {
				seg.Sack[j].Start = binary.BigEndian.Uint32(body[8*j:])
				seg.Sack[j].End = binary.BigEndian.Uint32(body[8*j+4:])
			}
		default:
			// Unknown options are skipped by their stated length, the
			// TCP rule that keeps extensions deployable.
		}
		i += l
	}
	return wireLen, nil
}
