package tcp

import (
	"math/rand"
	"testing"
	"time"

	"suss/internal/netsim"
)

// TestPacketPoolOwnershipLossyDumbbell pins the pooled-packet
// lifecycle end to end: two competing flows over a dumbbell with a
// shallow bottleneck buffer AND random wire loss force every release
// site to fire — tail drops, random erasures, retransmissions, SACK
// recovery, RTOs — and at the end of the drained simulation every
// acquired packet must have been released exactly once.
//
// Exactly-once is fully verified under the sussdebug build tag, where
// a double release or a touch of a released packet panics and
// released packets are never recycled; this tag-less run still pins
// the leak half (acquired == released) plus drop/delivery accounting.
func TestPacketPoolOwnershipLossyDumbbell(t *testing.T) {
	sim := netsim.NewSimulator()
	rng := rand.New(rand.NewSource(7))
	d := netsim.NewDumbbell(sim, netsim.DumbbellSpec{
		Pairs:  2,
		Access: netsim.LinkConfig{Rate: 1e9, Delay: 2 * time.Millisecond, QueueBytes: 4 << 20},
		Bottleneck: netsim.LinkConfig{
			Rate:       20e6,
			Delay:      20 * time.Millisecond,
			QueueBytes: 30000, // ~20 packets: forces tail drops under cwnd=64
			Loss:       func(*netsim.Packet) bool { return rng.Float64() < 0.02 },
		},
	})

	cfg := DefaultConfig()
	size := int64(1 << 20)
	var flows []*Flow
	for i := 0; i < 2; i++ {
		srvMux, cliMux := NewDemux(d.Servers[i]), NewDemux(d.Clients[i])
		ctrl := &fixedCC{cwnd: 64 * int64(cfg.MSS), halveOnLoss: true}
		f := NewFlow(sim, cfg, netsim.FlowID(i+1), d.Servers[i], srvMux, d.Clients[i], cliMux, size, ctrl)
		f.StartAt(sim, time.Duration(i)*10*time.Millisecond)
		flows = append(flows, f)
	}

	sim.Run(10 * time.Minute)

	for i, f := range flows {
		if !f.Done() {
			t.Fatalf("flow %d did not complete", i)
		}
		if f.Receiver.Received() != size {
			t.Fatalf("flow %d received %d, want %d", i, f.Receiver.Received(), size)
		}
	}
	bneck := d.Bottleneck.Stats()
	if bneck.DroppedPackets == 0 {
		t.Fatal("scenario produced no tail drops; leak test is not exercising the drop-release path")
	}
	if bneck.ErasedPackets == 0 {
		t.Fatal("scenario produced no wire losses; leak test is not exercising the loss-release path")
	}
	rtx := flows[0].Sender.Stats().Retransmissions + flows[1].Sender.Stats().Retransmissions
	if rtx == 0 {
		t.Fatal("no retransmissions; leak test is not exercising the recovery paths")
	}

	st := sim.Pool().Stats()
	if st.Acquired == 0 {
		t.Fatal("no packets acquired from the pool; endpoints are not using it")
	}
	if out := st.Outstanding(); out != 0 {
		t.Fatalf("packet leak: %d of %d acquired packets never released (released %d)",
			out, st.Acquired, st.Released)
	}
}

// TestPendingExactAfterFlowFinish pins the satellite fix: a finished
// sender Stops its RTO/TLP/kick timers, and with Stop unlinking
// timers from the wheel immediately, Pending() reflects only real
// future events.
func TestPendingExactAfterFlowFinish(t *testing.T) {
	ctrl := &fixedCC{cwnd: 64 * 1448}
	f, sim, _ := runFlow(t, 1<<20, 1e8, 50*time.Millisecond, 1<<20, ctrl)
	if !f.Done() {
		t.Fatal("flow did not complete")
	}
	if got := sim.Pending(); got != 0 {
		t.Fatalf("Pending() = %d after a drained run, want 0 (cancelled timers must not linger)", got)
	}
}
