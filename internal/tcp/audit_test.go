package tcp

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"suss/internal/netsim"
)

// auditingFlow runs a flow under hostile conditions while auditing the
// scoreboard invariants after every ACK.
func runAuditedFlow(t *testing.T, seed int64, lossP float64, blackout bool, queueBytes int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	sim := netsim.NewSimulator()
	loss := func(pkt *netsim.Packet) bool {
		if pkt.Kind != netsim.Data {
			return false
		}
		if blackout {
			now := sim.Now()
			if now > 300*time.Millisecond && now < 700*time.Millisecond {
				return true
			}
		}
		return rng.Float64() < lossP
	}
	p := netsim.NewPath(sim, netsim.PathSpec{Forward: []netsim.LinkConfig{
		{Name: "core", Rate: 1e9, Delay: 10 * time.Millisecond, QueueBytes: 16 << 20},
		{Name: "bneck", Rate: 2e7, Delay: 15 * time.Millisecond, QueueBytes: queueBytes, Loss: loss},
	}})
	cfg := DefaultConfig()
	f := NewFlow(sim, cfg, 1, p.Sender, NewDemux(p.Sender), p.Receiver, NewDemux(p.Receiver), 1<<20, nil)
	ctrl := &fixedCC{cwnd: 64 * 1448, halveOnLoss: true}
	f.Sender.SetController(ctrl)
	audits := 0
	f.Sender.OnAckTrace = func(now time.Duration, cwnd int64, srtt time.Duration, delivered int64) {
		audits++
		if audits%7 != 0 { // keep runtime sane; still hundreds of audits
			return
		}
		if problems := f.Sender.AuditScoreboard(); len(problems) != 0 {
			t.Fatalf("seed=%d t=%v scoreboard corrupt: %v", seed, now, problems)
		}
	}
	f.StartAt(sim, 0)
	sim.Run(5 * time.Minute)
	if !f.Done() {
		t.Fatalf("seed=%d flow did not complete", seed)
	}
	if problems := f.Sender.AuditScoreboard(); len(problems) != 0 {
		t.Fatalf("seed=%d final audit: %v", seed, problems)
	}
	if f.Receiver.Received() != 1<<20 {
		t.Fatalf("seed=%d received %d", seed, f.Receiver.Received())
	}
}

func TestScoreboardInvariantUnderRandomLoss(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		runAuditedFlow(t, seed, 0.05, false, 256<<10)
	}
}

func TestScoreboardInvariantUnderBlackout(t *testing.T) {
	// A blackout forces RTO go-back-N plus TLP interplay — the exact
	// regime where the lostQueue/TLP deadlock lived.
	for seed := int64(1); seed <= 4; seed++ {
		runAuditedFlow(t, seed, 0.02, true, 128<<10)
	}
}

func TestScoreboardInvariantTinyBuffer(t *testing.T) {
	// Severe congestive loss: buffer fits only ~8 packets.
	for seed := int64(1); seed <= 4; seed++ {
		runAuditedFlow(t, seed, 0, false, 12<<10)
	}
}

// Property: arbitrary loss probability and buffer still terminate with
// clean invariants.
func TestScoreboardInvariantProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	f := func(seed int64, lp uint8, q uint16) bool {
		lossP := float64(lp%12) / 100
		queue := int(q)%(512<<10) + 8<<10
		rng := rand.New(rand.NewSource(seed))
		sim := netsim.NewSimulator()
		loss := func(pkt *netsim.Packet) bool {
			return pkt.Kind == netsim.Data && rng.Float64() < lossP
		}
		p := netsim.NewPath(sim, netsim.PathSpec{Forward: []netsim.LinkConfig{
			{Name: "bneck", Rate: 2e7, Delay: 20 * time.Millisecond, QueueBytes: queue, Loss: loss},
		}})
		cfg := DefaultConfig()
		fl := NewFlow(sim, cfg, 1, p.Sender, NewDemux(p.Sender), p.Receiver, NewDemux(p.Receiver), 256<<10, nil)
		fl.Sender.SetController(&fixedCC{cwnd: 48 * 1448, halveOnLoss: true})
		fl.StartAt(sim, 0)
		sim.Run(10 * time.Minute)
		return fl.Done() && len(fl.Sender.AuditScoreboard()) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestAckLossTolerance(t *testing.T) {
	// Losing 20% of ACKs must not stall the flow (cumulative ACKs are
	// self-healing).
	rng := rand.New(rand.NewSource(3))
	sim := netsim.NewSimulator()
	p := netsim.NewPath(sim, netsim.PathSpec{
		Forward: []netsim.LinkConfig{
			{Name: "fwd", Rate: 5e7, Delay: 20 * time.Millisecond, QueueBytes: 1 << 20},
		},
		Reverse: []netsim.LinkConfig{
			{Name: "rev", Rate: 5e7, Delay: 20 * time.Millisecond, QueueBytes: 1 << 20,
				Loss: func(*netsim.Packet) bool { return rng.Float64() < 0.2 }},
		},
	})
	cfg := DefaultConfig()
	f := NewFlow(sim, cfg, 1, p.Sender, NewDemux(p.Sender), p.Receiver, NewDemux(p.Receiver), 1<<20, nil)
	f.Sender.SetController(&fixedCC{cwnd: 64 * 1448})
	f.StartAt(sim, 0)
	sim.Run(time.Minute)
	if !f.Done() {
		t.Fatal("flow did not survive ACK loss")
	}
	if problems := f.Sender.AuditScoreboard(); len(problems) != 0 {
		t.Fatalf("audit: %v", problems)
	}
}

func TestReorderingTolerance(t *testing.T) {
	// Mild reordering (AllowReorder with jitter) may cause spurious
	// retransmissions but must not corrupt the scoreboard or stall.
	rng := rand.New(rand.NewSource(9))
	sim := netsim.NewSimulator()
	p := netsim.NewPath(sim, netsim.PathSpec{Forward: []netsim.LinkConfig{
		{Name: "bneck", Rate: 5e7, Delay: 20 * time.Millisecond, QueueBytes: 2 << 20,
			AllowReorder: true,
			Jitter: func(now time.Duration, pkt *netsim.Packet) time.Duration {
				return time.Duration(rng.Intn(2_000_000)) // 0–2 ms
			}},
	}})
	cfg := DefaultConfig()
	f := NewFlow(sim, cfg, 1, p.Sender, NewDemux(p.Sender), p.Receiver, NewDemux(p.Receiver), 2<<20, nil)
	f.Sender.SetController(&fixedCC{cwnd: 64 * 1448, halveOnLoss: true})
	f.StartAt(sim, 0)
	sim.Run(time.Minute)
	if !f.Done() {
		t.Fatal("flow did not survive reordering")
	}
	if problems := f.Sender.AuditScoreboard(); len(problems) != 0 {
		t.Fatalf("audit: %v", problems)
	}
	if f.Receiver.Received() != 2<<20 {
		t.Fatalf("received %d", f.Receiver.Received())
	}
}

func TestTLPFiresOnTailLoss(t *testing.T) {
	// Drop exactly the last 3 segments of the initial window once: no
	// dupacks can arrive, so only a TLP (not a slow RTO) should recover.
	sim := netsim.NewSimulator()
	dropped := 0
	loss := func(pkt *netsim.Packet) bool {
		if pkt.Kind == netsim.Data && !pkt.Retrans && pkt.Seq >= 7*1448 && pkt.Seq < 10*1448 && dropped < 3 {
			dropped++
			return true
		}
		return false
	}
	p := netsim.NewPath(sim, netsim.PathSpec{Forward: []netsim.LinkConfig{
		{Name: "bneck", Rate: 5e7, Delay: 20 * time.Millisecond, QueueBytes: 1 << 20, Loss: loss},
	}})
	cfg := DefaultConfig()
	f := NewFlow(sim, cfg, 1, p.Sender, NewDemux(p.Sender), p.Receiver, NewDemux(p.Receiver), 10*1448, nil)
	f.Sender.SetController(&fixedCC{cwnd: 10 * 1448})
	f.StartAt(sim, 0)
	sim.Run(time.Minute)
	if !f.Done() {
		t.Fatal("flow did not complete")
	}
	st := f.Sender.Stats()
	if st.TLPs == 0 {
		t.Error("tail loss should have triggered a TLP")
	}
	// TLP + SACK recovery should beat the 1 s initial RTO.
	if f.FCT() > 900*time.Millisecond {
		t.Errorf("FCT %v suggests RTO recovery instead of TLP", f.FCT())
	}
}
