package tcp

import (
	"testing"
	"time"

	"suss/internal/netsim"
)

func TestDemuxRoutesMultipleFlows(t *testing.T) {
	sim := netsim.NewSimulator()
	p := newTestPath(sim, 1e8, 20*time.Millisecond, 4<<20)
	smux, rmux := NewDemux(p.Sender), NewDemux(p.Receiver)
	cfg := DefaultConfig()

	var flows []*Flow
	for i := 1; i <= 3; i++ {
		f := NewFlow(sim, cfg, netsim.FlowID(i), p.Sender, smux, p.Receiver, rmux, int64(i)<<18, nil)
		f.Sender.SetController(&fixedCC{cwnd: 32 * 1448})
		f.StartAt(sim, time.Duration(i)*100*time.Millisecond)
		flows = append(flows, f)
	}
	sim.Run(time.Minute)
	for i, f := range flows {
		if !f.Done() {
			t.Fatalf("flow %d did not complete", i+1)
		}
		want := int64(i+1) << 18
		if f.Receiver.Received() != want {
			t.Errorf("flow %d received %d, want %d (cross-flow leakage?)", i+1, f.Receiver.Received(), want)
		}
	}
	// FCTs ordered sanely: later, larger flows finish later.
	if flows[0].CompletedAt >= flows[2].CompletedAt {
		t.Errorf("completion order wrong: %v vs %v", flows[0].CompletedAt, flows[2].CompletedAt)
	}
}

func TestDemuxUnregister(t *testing.T) {
	sim := netsim.NewSimulator()
	p := newTestPath(sim, 1e8, 5*time.Millisecond, 1<<20)
	mux := NewDemux(p.Receiver)
	got := 0
	mux.Register(7, func(*netsim.Packet) { got++ })
	p.Sender.SetHandler(func(*netsim.Packet) {})
	send := func() {
		p.Sender.Send(&netsim.Packet{Flow: 7, Kind: netsim.Data, Size: 100, Dst: p.Receiver.ID()})
	}
	sim.Schedule(0, send)
	sim.RunAll()
	if got != 1 {
		t.Fatalf("registered flow got %d packets", got)
	}
	mux.Unregister(7)
	sim.Schedule(0, send)
	sim.RunAll() // unregistered: silently dropped, no panic
	if got != 1 {
		t.Fatalf("unregistered flow still receiving: %d", got)
	}
}

func TestSequentialFlowsReusePair(t *testing.T) {
	// The Fig. 16 pattern: flows run back-to-back over the same host
	// pair with distinct IDs.
	sim := netsim.NewSimulator()
	p := newTestPath(sim, 5e7, 10*time.Millisecond, 1<<20)
	smux, rmux := NewDemux(p.Sender), NewDemux(p.Receiver)
	cfg := DefaultConfig()
	f1 := NewFlow(sim, cfg, 1, p.Sender, smux, p.Receiver, rmux, 512<<10, nil)
	f1.Sender.SetController(&fixedCC{cwnd: 64 * 1448})
	f2 := NewFlow(sim, cfg, 2, p.Sender, smux, p.Receiver, rmux, 512<<10, nil)
	f2.Sender.SetController(&fixedCC{cwnd: 64 * 1448})
	f1.StartAt(sim, 0)
	f2.StartAt(sim, 2*time.Second)
	sim.Run(time.Minute)
	if !f1.Done() || !f2.Done() {
		t.Fatal("sequential flows did not both complete")
	}
	if f2.FCT() > f1.FCT()*3/2+50*time.Millisecond {
		t.Errorf("second flow much slower on an idle path: %v vs %v", f2.FCT(), f1.FCT())
	}
}

func TestFlowStartAtSemantics(t *testing.T) {
	sim := netsim.NewSimulator()
	p := newTestPath(sim, 1e8, 10*time.Millisecond, 1<<20)
	f := NewFlow(sim, DefaultConfig(), 1, p.Sender, NewDemux(p.Sender), p.Receiver, NewDemux(p.Receiver), 64<<10, nil)
	f.Sender.SetController(&fixedCC{cwnd: 64 * 1448})
	f.StartAt(sim, 500*time.Millisecond)
	sim.Run(time.Minute)
	if !f.Done() {
		t.Fatal("flow did not complete")
	}
	// CompletedAt is absolute; FCT is relative to the start time.
	if f.CompletedAt <= 500*time.Millisecond {
		t.Errorf("completed at %v, before the start time", f.CompletedAt)
	}
	if f.FCT() >= f.CompletedAt {
		t.Errorf("FCT %v not relative to start (completedAt %v)", f.FCT(), f.CompletedAt)
	}
	if f.FCT() <= 0 || f.FCT() > 200*time.Millisecond {
		t.Errorf("FCT %v implausible for 64KB over 100Mbps/20ms", f.FCT())
	}
}
