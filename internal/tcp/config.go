// Package tcp implements the userspace transport the congestion
// controllers plug into: MSS-sized segmentation, cumulative ACKs with
// SACK, RFC 6675-style loss detection, fast retransmit, RTO with
// exponential backoff, RTT estimation (RFC 6298), optional pacing, and
// the cc.Controller hook points.
//
// It is the stand-in for the Linux kernel TCP stack the paper patches:
// everything SUSS observes (ACK arrival times, RTT samples, sequence
// progress) and controls (cwnd, packet release timing) crosses this
// package's Controller interface exactly as it crosses
// tcp_congestion_ops in the kernel.
package tcp

import "time"

// Config carries transport constants. The zero value is not usable;
// call DefaultConfig and override what you need.
type Config struct {
	// MSS is the maximum segment payload in bytes.
	MSS int
	// HeaderBytes is per-segment wire overhead (IP+TCP headers).
	HeaderBytes int
	// AckBytes is the wire size of a pure ACK.
	AckBytes int
	// IW is the initial congestion window in segments (RFC 6928: 10).
	IW int
	// AckEvery makes the receiver acknowledge every n-th in-order
	// packet (1 = ack every packet, Linux quickack; 2 = classic
	// delayed ACK).
	AckEvery int
	// DelAckTimeout bounds how long an ACK may be withheld when
	// AckEvery > 1.
	DelAckTimeout time.Duration
	// MinRTO floors the retransmission timeout (Linux: 200 ms).
	MinRTO time.Duration
	// MaxRTO caps the backed-off retransmission timeout. The default
	// is 8 s rather than RFC 6298's 60 s: on FCT-scale experiments a
	// minute-long backoff turns one unlucky drop into a multi-minute
	// artifact that no real interactive transfer would tolerate.
	MaxRTO time.Duration
	// DupThresh is the reordering threshold in segments for marking a
	// hole lost (RFC 6675: 3).
	DupThresh int
	// FRTO enables Eifel-style spurious-RTO detection: when an ACK
	// after a timeout echoes a timestamp from before the timeout and
	// advances the window, the RTO was spurious — the controller's
	// window collapse and the RTO backoff are undone. Off by default:
	// genuine tail-loss RTOs in the paper-reproduction experiments
	// occasionally prove spurious too, and undoing them changes the
	// pinned figure outputs. Chaos/robustness runs turn it on.
	FRTO bool
	// MaxConsecRTOs caps consecutive RTO fires without forward
	// progress; exceeding it fails the flow with ErrRetransLimit
	// instead of retransmitting forever into a dead path. Zero means
	// unlimited.
	MaxConsecRTOs int
	// AdaptReoWnd grows the RACK-lite reordering window each time a
	// loss marking is contradicted (spurious retransmit), trading
	// recovery latency for robustness on reordering paths. Off by
	// default: the default experiments pin byte-identical outputs.
	AdaptReoWnd bool
}

// DefaultConfig returns Linux-like transport constants: 1448-byte MSS
// (1500-byte frames), IW10, ack-every-packet, 200 ms minimum RTO.
func DefaultConfig() Config {
	return Config{
		MSS:           1448,
		HeaderBytes:   52,
		AckBytes:      60,
		IW:            10,
		AckEvery:      1,
		DelAckTimeout: 40 * time.Millisecond,
		MinRTO:        200 * time.Millisecond,
		MaxRTO:        8 * time.Second,
		DupThresh:     3,
		FRTO:          false,
		MaxConsecRTOs: 12,
	}
}

// segStart returns the segment-aligned start for a byte sequence.
func segStart(seq int64, mss int) int64 {
	return seq - seq%int64(mss)
}
