package tcp

import (
	"math/rand"
	"time"

	"suss/internal/netsim"
	"suss/internal/obs"
	"suss/internal/wire"
)

// maxRecentSacks is how many recently-extended ranges the receiver
// remembers for RFC 2018 SACK block selection.
const maxRecentSacks = 8

// Receiver reassembles the byte stream and generates cumulative ACKs
// with up to three SACK ranges, acknowledging every packet (or every
// n-th with a delayed-ACK timer) and immediately on out-of-order data.
//
// The receive path is allocation-free in steady state: ACKs encode
// from a per-receiver scratch segment with SACK blocks chosen into a
// fixed array, the range set is rebuilt through a double buffer (with
// an in-place fast path for in-order arrivals), and SACK recency
// lives in a fixed array.
type Receiver struct {
	conn wire.Conn
	sim  *netsim.Simulator // conn.Clock(), cached
	cfg  Config
	flow netsim.FlowID

	// ackSeg is the scratch segment sendAck encodes from.
	ackSeg wire.Segment
	// seqNear anchors the 32→64-bit unwrap of arriving sequence
	// numbers: the highest unwrapped sequence seen, which every
	// in-window wire value sits within ±2³¹ of.
	seqNear int64

	ranges []netsim.SackRange // sorted, disjoint received ranges
	// rangesNext is the double-buffer half merge rebuilds into when
	// the in-place fast path does not apply.
	rangesNext []netsim.SackRange
	// recent remembers the ranges most recently extended, newest
	// first, to fill SACK blocks the way RFC 2018 recommends.
	recent  [maxRecentSacks]netsim.SackRange
	nRecent int

	unacked  int // in-order packets since last ACK (for AckEvery)
	delack   netsim.Timer
	received int64 // total payload bytes accepted (with duplicates removed)

	// OnComplete fires once when the contiguous prefix reaches size.
	OnComplete func(now time.Duration)
	size       int64
	completed  bool

	// OnData, when non-nil, observes every decoded data segment
	// (tracing). seg is the conn's scratch storage, reused for the next
	// frame: observers must copy what they keep, never retain seg.
	OnData func(now time.Duration, seg *wire.Segment)

	// rec, when non-nil, receives ground-truth duplicate-payload
	// counters (the receiver-side complement of the sender's
	// spurious-retransmit detection).
	rec *obs.FlowRecorder

	// SACK-reneging fault injection (EnableReneging): every
	// renegeEvery, with probability renegeProb, discard all
	// out-of-order data above the cumulative point — the RFC 2018
	// memory-pressure behavior a hardened sender must survive.
	renegeEvery time.Duration
	renegeProb  float64
	renegeRNG   *rand.Rand
	renegeTimer netsim.Timer
}

// AttachRecorder installs a flight recorder on this receiver. Pass
// nil to detach.
func (r *Receiver) AttachRecorder(rec *obs.FlowRecorder) { r.rec = rec }

// NewReceiver creates a receiver for one flow terminating at conn.
// size is the expected stream length for completion detection (0
// disables it). The caller must install Handle as the conn's handler
// (NewFlowOver does both).
func NewReceiver(conn wire.Conn, cfg Config, flow netsim.FlowID, size int64) *Receiver {
	return &Receiver{conn: conn, sim: conn.Clock(), cfg: cfg, flow: flow, size: size}
}

// CumAck returns the current cumulative acknowledgment point.
func (r *Receiver) CumAck() int64 {
	if len(r.ranges) == 0 || r.ranges[0].Start != 0 {
		return 0
	}
	return r.ranges[0].End
}

// Received returns the distinct payload bytes accepted so far.
func (r *Receiver) Received() int64 { return r.received }

// recvDelAckEv fires the delayed ACK without a per-arm closure. A
// delayed ACK carries no timestamp echo (the trigger's departure time
// is stale by up to the delack timeout; echoing it would corrupt the
// sender's RTT estimate).
func recvDelAckEv(ctx, _ any) { ctx.(*Receiver).sendAck(false, 0) }

// recvRenegeEv is the reneging fault-injection tick.
func recvRenegeEv(ctx, _ any) { ctx.(*Receiver).renegeTick() }

// EnableReneging arms periodic SACK reneging: every interval, with the
// given probability, the receiver throws away all out-of-order data it
// previously SACKed (keeping only the contiguous prefix), as RFC 2018
// permits under memory pressure. Deterministic given rng; prob 1.0
// renegs on every tick.
func (r *Receiver) EnableReneging(interval time.Duration, prob float64, rng *rand.Rand) {
	if interval <= 0 {
		return
	}
	r.renegeEvery = interval
	r.renegeProb = prob
	r.renegeRNG = rng
	r.renegeTimer.Stop()
	r.renegeTimer = r.sim.ScheduleEvent(interval, recvRenegeEv, r, nil)
}

func (r *Receiver) renegeTick() {
	if r.completed {
		// Stop re-arming so the simulation can drain.
		return
	}
	if r.renegeProb >= 1 || r.renegeRNG.Float64() < r.renegeProb {
		r.renege()
	}
	r.renegeTimer = r.sim.ScheduleEvent(r.renegeEvery, recvRenegeEv, r, nil)
}

// renege discards every received range above the contiguous prefix.
func (r *Receiver) renege() {
	keep := 0
	if len(r.ranges) > 0 && r.ranges[0].Start == 0 {
		keep = 1
	}
	var discarded int64
	for _, g := range r.ranges[keep:] {
		discarded += g.End - g.Start
	}
	if discarded == 0 {
		return
	}
	r.ranges = r.ranges[:keep]
	r.received -= discarded
	// Forget the recency list too: those ranges no longer exist, and
	// re-announcing them in SACK blocks would be lying twice over.
	r.nRecent = 0
	if o := r.rec; o != nil {
		o.C.RcvRenegeEvents++
		o.C.RcvRenegedBytes += discarded
		o.Record(r.sim.Now(), obs.EvSackReneged, r.CumAck(), discarded, 0, 0)
	}
}

// Handle processes one decoded data segment addressed to this flow.
// It is the flow's wire.Handler: seg is the conn's scratch segment,
// valid only for the duration of the call, and wireLen is the frame's
// wire length for byte accounting. The 32-bit sequence number
// unwraps against the receiver's high watermark here, at the
// boundary; a value that unwraps below stream start is dropped as
// garbage.
func (r *Receiver) Handle(seg *wire.Segment, wireLen int) {
	if !seg.IsData() {
		return
	}
	if o := r.rec; o != nil {
		o.C.WireFramesIn++
		o.C.WireBytesIn += int64(wireLen)
	}
	if r.OnData != nil {
		r.OnData(r.sim.Now(), seg)
	}
	seq := wire.Unwrap32(r.seqNear, seg.Seq)
	if seq < 0 {
		return
	}
	if seq > r.seqNear {
		r.seqNear = seq
	}
	segLen := int64(seg.PayloadLen)
	prevCum := r.CumAck()
	added := r.merge(seq, seq+segLen)
	r.received += added
	newCum := r.CumAck()
	if o := r.rec; o != nil {
		o.C.RcvSegs++
		if added < segLen {
			// Part of the payload was already held: a retransmission
			// (or a spuriously resent segment) duplicated data.
			o.C.RcvDupSegs++
			o.C.RcvDupBytes += segLen - added
		}
	}

	if !r.completed && r.size > 0 && newCum >= r.size {
		r.completed = true
		if r.OnComplete != nil {
			r.OnComplete(r.sim.Now())
		}
	}

	outOfOrder := newCum == prevCum || len(r.ranges) > 1
	r.unacked++
	if outOfOrder || r.unacked >= r.cfg.AckEvery {
		r.sendAck(seg.HasTS, seg.TSVal)
		return
	}
	// Withhold the ACK but bound the delay.
	if !r.delack.Active() {
		r.delack = r.sim.ScheduleEvent(r.cfg.DelAckTimeout, recvDelAckEv, r, nil)
	}
}

// sendAck emits a cumulative ACK with SACK blocks. When echo is set
// the ACK carries a timestamp option echoing tsecr (the triggering
// segment's TSVal); option absence is how "no echo" travels the wire.
func (r *Receiver) sendAck(echo bool, tsecr uint32) {
	r.unacked = 0
	r.delack.Stop()
	cum := r.CumAck()
	a := &r.ackSeg
	*a = wire.Segment{
		SrcPort: uint16(r.flow),
		DstPort: uint16(r.flow),
		Ack:     uint32(cum),
		Flags:   wire.FlagACK,
		Window:  65535,
	}
	r.fillSackBlocks(a, cum)
	if echo {
		a.HasTS = true
		a.TSVal = wire.WrapTS(r.sim.Now())
		a.TSEcr = tsecr
	}
	n := r.conn.Send(a, wire.SendMeta{WireSize: r.cfg.AckBytes})
	if o := r.rec; o != nil {
		o.C.WireFramesOut++
		o.C.WireBytesOut += int64(n)
	}
}

// fillSackBlocks writes up to netsim.MaxSack ranges above the
// cumulative ACK into the segment's SACK blocks, most recently
// changed first. The cap matches what fits beside a timestamp option
// (RFC 2018), and is held even on no-echo ACKs so the sender's view
// does not depend on whether an ACK happened to carry a timestamp.
func (r *Receiver) fillSackBlocks(a *wire.Segment, cum int64) {
	var chosen [netsim.MaxSack]netsim.SackRange
	n := 0
	for i := 0; i < r.nRecent && n < netsim.MaxSack; i++ {
		s := r.recent[i]
		if s.End <= cum {
			continue
		}
		// Re-resolve against current ranges (merges may have grown it).
		cur, ok := r.containing(s.Start)
		if !ok || cur.End <= cum {
			continue
		}
		dup := false
		for _, o := range chosen[:n] {
			if o == cur {
				dup = true
				break
			}
		}
		if !dup {
			chosen[n] = cur
			n++
		}
	}
	for _, c := range chosen[:n] {
		a.AddSack(wire.SackBlock{Start: uint32(c.Start), End: uint32(c.End)})
	}
}

func (r *Receiver) containing(seq int64) (netsim.SackRange, bool) {
	for _, g := range r.ranges {
		if g.Start <= seq && seq < g.End {
			return g, true
		}
	}
	return netsim.SackRange{}, false
}

// noteRecent records [start,end) as the most recently extended range
// for SACK block selection (in-place shift; no allocation).
func (r *Receiver) noteRecent(start, end int64) {
	copy(r.recent[1:], r.recent[:maxRecentSacks-1])
	r.recent[0] = netsim.SackRange{Start: start, End: end}
	if r.nRecent < maxRecentSacks {
		r.nRecent++
	}
}

// merge inserts [start,end) into the received set and returns the
// number of bytes that were new. In-order arrivals (the common case)
// extend the head range in place; the general path rebuilds into the
// double buffer, so neither allocates in steady state.
func (r *Receiver) merge(start, end int64) int64 {
	if end <= start {
		return 0
	}
	r.noteRecent(start, end)

	// Fast path: the segment exactly extends an existing range's tail
	// and stays clear of the next one.
	for i := range r.ranges {
		if r.ranges[i].End == start && (i+1 == len(r.ranges) || end < r.ranges[i+1].Start) {
			r.ranges[i].End = end
			return end - start
		}
	}

	added := end - start
	out := r.rangesNext[:0]
	cur := netsim.SackRange{Start: start, End: end}
	inserted := false
	for _, g := range r.ranges {
		switch {
		case g.End < cur.Start:
			out = append(out, g)
		case cur.End < g.Start:
			if !inserted {
				out = append(out, cur)
				inserted = true
			}
			out = append(out, g)
		default:
			// Overlap: subtract the intersection from "added" and fold.
			lo := max64(g.Start, cur.Start)
			hi := min64(g.End, cur.End)
			if hi > lo {
				added -= hi - lo
			}
			cur.Start = min64(cur.Start, g.Start)
			cur.End = max64(cur.End, g.End)
		}
	}
	if !inserted {
		out = append(out, cur)
	}
	r.rangesNext = r.ranges[:0]
	r.ranges = out
	if added < 0 {
		added = 0
	}
	return added
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
