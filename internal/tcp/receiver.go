package tcp

import (
	"time"

	"suss/internal/netsim"
)

// Receiver reassembles the byte stream and generates cumulative ACKs
// with up to three SACK ranges, acknowledging every packet (or every
// n-th with a delayed-ACK timer) and immediately on out-of-order data.
type Receiver struct {
	sim  *netsim.Simulator
	host *netsim.Host
	cfg  Config
	flow netsim.FlowID
	peer netsim.NodeID

	ranges []netsim.SackRange // sorted, disjoint received ranges
	// recentSacks remembers the ranges most recently extended, newest
	// first, to fill SACK blocks the way RFC 2018 recommends.
	recentSacks []netsim.SackRange

	unacked  int // in-order packets since last ACK (for AckEvery)
	delack   netsim.Timer
	received int64 // total payload bytes accepted (with duplicates removed)

	// OnComplete fires once when the contiguous prefix reaches size.
	OnComplete func(now time.Duration)
	size       int64
	completed  bool

	// OnData, when non-nil, observes every data arrival (tracing).
	OnData func(now time.Duration, pkt *netsim.Packet)
}

// NewReceiver creates a receiver for one flow terminating at host.
// size is the expected stream length for completion detection (0
// disables it). The caller must route the flow's data packets to
// Handle (see Demux).
func NewReceiver(sim *netsim.Simulator, host *netsim.Host, cfg Config, flow netsim.FlowID, peer netsim.NodeID, size int64) *Receiver {
	return &Receiver{sim: sim, host: host, cfg: cfg, flow: flow, peer: peer, size: size}
}

// CumAck returns the current cumulative acknowledgment point.
func (r *Receiver) CumAck() int64 {
	if len(r.ranges) == 0 || r.ranges[0].Start != 0 {
		return 0
	}
	return r.ranges[0].End
}

// Received returns the distinct payload bytes accepted so far.
func (r *Receiver) Received() int64 { return r.received }

// Handle processes one data packet addressed to this flow.
func (r *Receiver) Handle(pkt *netsim.Packet) {
	if pkt.Kind != netsim.Data {
		return
	}
	if r.OnData != nil {
		r.OnData(r.sim.Now(), pkt)
	}
	prevCum := r.CumAck()
	added := r.merge(pkt.Seq, pkt.Seq+pkt.Len)
	r.received += added
	newCum := r.CumAck()

	if !r.completed && r.size > 0 && newCum >= r.size {
		r.completed = true
		if r.OnComplete != nil {
			r.OnComplete(r.sim.Now())
		}
	}

	outOfOrder := newCum == prevCum || len(r.ranges) > 1
	r.unacked++
	if outOfOrder || r.unacked >= r.cfg.AckEvery {
		r.sendAck(pkt)
		return
	}
	// Withhold the ACK but bound the delay.
	if !r.delack.Active() {
		r.delack = r.sim.Schedule(r.cfg.DelAckTimeout, func() { r.sendAck(nil) })
	}
}

func (r *Receiver) sendAck(trigger *netsim.Packet) {
	r.unacked = 0
	r.delack.Stop()
	ack := &netsim.Packet{
		Flow:   r.flow,
		Kind:   netsim.Ack,
		Size:   r.cfg.AckBytes,
		Dst:    r.peer,
		CumAck: r.CumAck(),
		SACK:   r.sackBlocks(),
	}
	if trigger != nil && trigger.HasEcho {
		ack.EchoTS = trigger.EchoTS
		ack.HasEcho = true
	}
	r.host.Send(ack)
}

// sackBlocks returns up to three ranges above the cumulative ACK,
// most recently changed first.
func (r *Receiver) sackBlocks() []netsim.SackRange {
	cum := r.CumAck()
	var out []netsim.SackRange
	for _, s := range r.recentSacks {
		if s.End <= cum {
			continue
		}
		// Re-resolve against current ranges (merges may have grown it).
		if cur, ok := r.containing(s.Start); ok && cur.End > cum {
			dup := false
			for _, o := range out {
				if o == cur {
					dup = true
					break
				}
			}
			if !dup {
				out = append(out, cur)
			}
		}
		if len(out) == 3 {
			break
		}
	}
	return out
}

func (r *Receiver) containing(seq int64) (netsim.SackRange, bool) {
	for _, g := range r.ranges {
		if g.Start <= seq && seq < g.End {
			return g, true
		}
	}
	return netsim.SackRange{}, false
}

// merge inserts [start,end) into the received set and returns the
// number of bytes that were new.
func (r *Receiver) merge(start, end int64) int64 {
	if end <= start {
		return 0
	}
	var added int64
	out := make([]netsim.SackRange, 0, len(r.ranges)+1)
	cur := netsim.SackRange{Start: start, End: end}
	added = end - start
	inserted := false
	for _, g := range r.ranges {
		switch {
		case g.End < cur.Start:
			out = append(out, g)
		case cur.End < g.Start:
			if !inserted {
				out = append(out, cur)
				inserted = true
			}
			out = append(out, g)
		default:
			// Overlap: subtract the intersection from "added" and fold.
			lo := max64(g.Start, cur.Start)
			hi := min64(g.End, cur.End)
			if hi > lo {
				added -= hi - lo
			}
			cur.Start = min64(cur.Start, g.Start)
			cur.End = max64(cur.End, g.End)
		}
	}
	if !inserted {
		out = append(out, cur)
	}
	r.ranges = out
	if added < 0 {
		added = 0
	}
	// Track recency for SACK block selection.
	r.recentSacks = append([]netsim.SackRange{{Start: start, End: end}}, r.recentSacks...)
	if len(r.recentSacks) > 8 {
		r.recentSacks = r.recentSacks[:8]
	}
	return added
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
