package tcp

import (
	"testing"
	"time"

	"suss/internal/cubic"
	"suss/internal/netem"
	"suss/internal/netsim"
	"suss/internal/obs"
)

// spikeRun captures one jitter-spike flow for the F-RTO comparison.
type spikeRun struct {
	fct      time.Duration
	postCwnd int64 // cwnd at the first ACK after the spike has drained
	stats    SenderStats
	c        *obs.FlowCounters
	ledger   obs.LossLedger
	done     bool
}

// runJitterSpike drives a 1 MB download over a clean 20 Mbit/s, 40 ms
// RTT path with a single 450 ms delay spike injected at t=150 ms: long
// enough to fire the RTO, short enough that the delayed originals (and
// their ACKs, echoing pre-RTO timestamps) come back while the F-RTO
// window is still open. No packet is ever lost, so every
// retransmission is spurious by construction and the receiver's
// duplicate-payload count is the ground truth.
func runJitterSpike(t *testing.T, frto bool) spikeRun {
	t.Helper()
	sim := netsim.NewSimulator()
	p := netsim.NewPath(sim, netsim.PathSpec{Forward: []netsim.LinkConfig{
		{Name: "core", Rate: 1e9, Delay: 10 * time.Millisecond, QueueBytes: 16 << 20},
		{Name: "bneck", Rate: 2e7, Delay: 10 * time.Millisecond, QueueBytes: 4 << 20},
	}})
	cfg := DefaultConfig()
	cfg.FRTO = frto
	f := NewFlow(sim, cfg, 1, p.Sender, NewDemux(p.Sender), p.Receiver, NewDemux(p.Receiver), 1<<20, nil)
	f.Sender.SetController(cubic.New(f.Sender, cubic.DefaultOptions()))
	reg := obs.NewRegistry(0)
	fr := reg.Flow(1)
	f.Sender.AttachRecorder(fr)
	f.Receiver.AttachRecorder(fr)
	for i, l := range p.Fwd {
		l.AttachRecorder(reg.Link(l.Name() + string(rune('0'+i))))
	}

	p.Fwd[1].AttachImpairments(netsim.NewImpairments(&netem.RTTStep{
		Steps: []netem.DelayStep{
			{At: 150 * time.Millisecond, Delta: 450 * time.Millisecond},
			{At: 200 * time.Millisecond, Delta: -450 * time.Millisecond},
		},
	}))

	var postCwnd int64
	f.Sender.OnAckTrace = func(now time.Duration, cwnd int64, _ time.Duration, _ int64) {
		// The delayed cohort lands around t≈620 ms; sample the first
		// cwnd once the path is clean again.
		if postCwnd == 0 && now >= 700*time.Millisecond {
			postCwnd = cwnd
		}
	}

	f.StartAt(sim, 0)
	sim.Run(30 * time.Second)

	links := reg.Links()
	lcs := make([]*obs.LinkCounters, len(links))
	for i, l := range links {
		lcs[i] = &l.C
	}
	return spikeRun{
		fct:      f.FCT(),
		postCwnd: postCwnd,
		stats:    f.Sender.Stats(),
		c:        &fr.C,
		ledger:   obs.MakeLedger(&fr.C, lcs...),
		done:     f.Done(),
	}
}

// TestFRTOUndoesSpuriousRTO pins the F-RTO win on a jitter spike: with
// the detection on, the spurious timeout is undone — the post-spike
// cwnd is strictly higher and the flow finishes strictly sooner than
// the identical run with detection off.
func TestFRTOUndoesSpuriousRTO(t *testing.T) {
	on := runJitterSpike(t, true)
	off := runJitterSpike(t, false)

	if !on.done || !off.done {
		t.Fatalf("flows did not complete: frto=%v, no-frto=%v", on.done, off.done)
	}
	if on.stats.RTOs == 0 {
		t.Fatal("the spike did not fire an RTO; the scenario is not testing anything")
	}
	if on.stats.SpuriousRTOs == 0 {
		t.Error("F-RTO detected no spurious timeout on a lossless spike")
	}
	if off.stats.SpuriousRTOs != 0 {
		t.Errorf("SpuriousRTOs = %d with FRTO disabled, want 0", off.stats.SpuriousRTOs)
	}
	if on.ledger.SpuriousRTOUndos == 0 {
		t.Error("ledger shows no RTO undo")
	}
	if on.fct >= off.fct {
		t.Errorf("FCT with F-RTO (%v) not strictly better than without (%v)", on.fct, off.fct)
	}
	if on.postCwnd <= off.postCwnd {
		t.Errorf("post-spike cwnd with F-RTO (%d) not strictly higher than without (%d)",
			on.postCwnd, off.postCwnd)
	}

	// Receiver ground truth: nothing was lost and nothing duplicated on
	// the path, so every retransmission — and only retransmissions —
	// arrives as duplicate payload, and the sender's spurious-retransmit
	// accounting must agree with it.
	for name, r := range map[string]spikeRun{"frto": on, "no-frto": off} {
		if r.ledger.PathCorrupt+r.ledger.PathOutage+r.ledger.PathDuplicates != 0 {
			t.Fatalf("%s: clean path recorded impairment drops", name)
		}
		if r.c.RcvDupSegs != r.c.SegsRetrans {
			t.Errorf("%s: receiver saw %d dup segments, sender retransmitted %d — some retransmission was not spurious",
				name, r.c.RcvDupSegs, r.c.SegsRetrans)
		}
		if bad := r.ledger.Check(); len(bad) > 0 {
			t.Errorf("%s: ledger violations: %v", name, bad)
		}
	}
}

// TestReceiverReneging pins the receiver fault mode + sender repair in
// isolation: a receiver that discards its above-cumulative SACKed data
// forces the sender to re-mark and retransmit it, and the flow still
// completes with a balanced ledger.
func TestReceiverReneging(t *testing.T) {
	sim := netsim.NewSimulator()
	p := netsim.NewPath(sim, netsim.PathSpec{Forward: []netsim.LinkConfig{
		{Name: "core", Rate: 1e9, Delay: 10 * time.Millisecond, QueueBytes: 16 << 20},
		// Shallow queue so congestion drops create SACK holes for the
		// receiver to renege on.
		{Name: "bneck", Rate: 5e7, Delay: 10 * time.Millisecond, QueueBytes: 64 << 10},
	}})
	f := NewFlow(sim, DefaultConfig(), 1, p.Sender, NewDemux(p.Sender), p.Receiver, NewDemux(p.Receiver), 2<<20, nil)
	f.Sender.SetController(cubic.New(f.Sender, cubic.DefaultOptions()))
	reg := obs.NewRegistry(0)
	fr := reg.Flow(1)
	f.Sender.AttachRecorder(fr)
	f.Receiver.AttachRecorder(fr)
	f.Receiver.EnableReneging(25*time.Millisecond, 1.0, nil)
	f.StartAt(sim, 0)
	sim.Run(time.Minute)

	if !f.Done() {
		t.Fatal("flow did not complete under a reneging receiver")
	}
	if fr.C.RcvRenegeEvents == 0 {
		t.Fatal("receiver never reneged; the fault mode did not engage")
	}
	if fr.C.SackRenegings == 0 {
		t.Error("sender never detected the reneging")
	}
	if fr.C.RetransReneg == 0 {
		t.Error("no segments were retransmitted under the reneging cause")
	}
	led := obs.MakeLedger(&fr.C)
	if bad := led.Check(); len(bad) > 0 {
		t.Errorf("ledger violations: %v", bad)
	}
}
