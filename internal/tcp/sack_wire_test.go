package tcp

import (
	"testing"
	"time"

	"suss/internal/netsim"
	"suss/internal/wire"
)

// These tests pin SACK behavior at the wire boundary: the blocks are
// read back out of the captured frame bytes with the strict decoder
// (not from the packet annotations) and checked against the
// receiver's interval set as ground truth.

// decodeAck strictly decodes a captured ACK packet's frame.
func decodeAck(t *testing.T, pkt *netsim.Packet) *wire.Segment {
	t.Helper()
	var seg wire.Segment
	if _, err := wire.DecodeSegment(pkt.Frame(), &seg); err != nil {
		t.Fatalf("captured ACK frame does not decode: %v", err)
	}
	return &seg
}

// assertInIntervalSet fails unless the wire block is exactly one of
// the receiver's ground-truth ranges.
func assertInIntervalSet(t *testing.T, r *Receiver, b wire.SackBlock) {
	t.Helper()
	for _, g := range r.ranges {
		if g.Start == int64(b.Start) && g.End == int64(b.End) {
			return
		}
	}
	t.Fatalf("wire SACK block [%d,%d) is not in the receiver's interval set %v",
		b.Start, b.End, r.ranges)
}

// TestWireSackTruncationKeepsMostRecent feeds five out-of-order
// islands: the wire has room for only three SACK blocks, and the
// truncation must deterministically keep the most recently changed
// islands, newest first (RFC 2018 §4).
func TestWireSackTruncationKeepsMostRecent(t *testing.T) {
	sim, r, acks := captureAcks(t)
	sim.Schedule(0, func() {
		for _, s := range []int64{2, 4, 6, 8, 10} {
			r.Handle(seg(s), segWireLen)
		}
	})
	sim.RunAll()
	if len(*acks) != 5 {
		t.Fatalf("acks = %d, want 5 (every out-of-order arrival ACKs)", len(*acks))
	}
	a := decodeAck(t, (*acks)[4])
	if a.Ack != 0 {
		t.Fatalf("cum ack %d, want 0", a.Ack)
	}
	if a.NSack != netsim.MaxSack {
		t.Fatalf("wire carries %d SACK blocks, want %d", a.NSack, netsim.MaxSack)
	}
	// Newest first: islands 10, 8, 6; islands 2 and 4 fell off.
	want := []int64{10, 8, 6}
	for i, b := range a.SackBlocks() {
		if int64(b.Start) != want[i]*1448 || int64(b.End) != (want[i]+1)*1448 {
			t.Fatalf("block %d = [%d,%d), want island %d", i, b.Start, b.End, want[i])
		}
		assertInIntervalSet(t, r, b)
	}
}

// TestWireSackGrowsWithMerge checks that a block on the wire reports
// the full merged island, not just the triggering segment: after the
// gap between two islands fills, the freshest block must span all
// three segments and match the interval set.
func TestWireSackGrowsWithMerge(t *testing.T) {
	sim, r, acks := captureAcks(t)
	sim.Schedule(0, func() {
		r.Handle(seg(2), segWireLen)
		r.Handle(seg(4), segWireLen)
		r.Handle(seg(3), segWireLen) // bridges the islands
	})
	sim.RunAll()
	a := decodeAck(t, (*acks)[len(*acks)-1])
	if a.NSack < 1 {
		t.Fatal("no SACK blocks on the wire")
	}
	b := a.Sack[0]
	if int64(b.Start) != 2*1448 || int64(b.End) != 5*1448 {
		t.Fatalf("first block [%d,%d), want the merged island [2,5)·MSS", b.Start, b.End)
	}
	assertInIntervalSet(t, r, b)
}

// TestWireDuplicateArrivalReportedFirst pins the D-SACK-style
// ordering: when already-held data arrives again, the next ACK's
// first block is the range containing the duplicate, even though
// another island changed more recently before it.
func TestWireDuplicateArrivalReportedFirst(t *testing.T) {
	sim, r, acks := captureAcks(t)
	sim.Schedule(0, func() {
		r.Handle(seg(2), segWireLen)
		r.Handle(seg(4), segWireLen)
		r.Handle(seg(2), segWireLen) // duplicate of the older island
	})
	sim.RunAll()
	if len(*acks) != 3 {
		t.Fatalf("acks = %d, want 3", len(*acks))
	}
	a := decodeAck(t, (*acks)[2])
	if a.NSack != 2 {
		t.Fatalf("wire carries %d SACK blocks, want 2", a.NSack)
	}
	if int64(a.Sack[0].Start) != 2*1448 || int64(a.Sack[0].End) != 3*1448 {
		t.Fatalf("first block [%d,%d), want the duplicated island [2,3)·MSS",
			a.Sack[0].Start, a.Sack[0].End)
	}
	if int64(a.Sack[1].Start) != 4*1448 {
		t.Fatalf("second block starts at %d, want island 4", a.Sack[1].Start)
	}
	for _, b := range a.SackBlocks() {
		assertInIntervalSet(t, r, b)
	}
}

// TestWireMalformedOptionDropped injects a frame whose timestamp
// option declares an impossible length. The strict decode at the
// conn boundary must reject it — the receiver never sees the
// segment, accepts no bytes, and sends no ACK (the way a NIC drops a
// frame that fails its checks).
func TestWireMalformedOptionDropped(t *testing.T) {
	sim := netsim.NewSimulator()
	p := newTestPath(sim, 1e9, time.Millisecond, 4<<20)
	r, acks := wireReceiver(sim, p, DefaultConfig(), 0)
	sim.Schedule(0, func() {
		pkt := sim.Pool().Get()
		n, err := wire.EncodeSegment(pkt.FrameBuf(), &wire.Segment{
			SrcPort: 1, DstPort: 1,
			Flags: wire.FlagACK | wire.FlagPSH, Window: 65535,
			HasTS: true, TSVal: 1, PayloadLen: 1448,
		})
		if err != nil {
			t.Errorf("encode: %v", err)
			pkt.Release()
			return
		}
		pkt.SetFrameLen(n - 1448)
		// Options start at byte 40: NOP, NOP, TS kind, TS len. Corrupt
		// the length. The TCP checksum is offloaded (zero), so no
		// checksum re-fix hides the damage.
		frame := pkt.FrameBuf()
		if frame[42] != 8 {
			t.Errorf("frame layout changed: byte 42 = %d, want TS kind 8", frame[42])
		}
		frame[43] = 3
		pkt.Flow = 1
		pkt.Dst = p.Receiver.ID()
		pkt.Kind = netsim.Data
		pkt.Size = 1500
		pkt.Seq = 0
		pkt.Len = 1448
		p.Sender.Send(pkt)
	})
	sim.RunAll()
	if got := r.Received(); got != 0 {
		t.Fatalf("receiver accepted %d bytes from a malformed frame", got)
	}
	if len(*acks) != 0 {
		t.Fatalf("receiver ACKed a malformed frame (%d acks)", len(*acks))
	}
	if st := sim.Pool().Stats(); st.Outstanding() != 0 {
		t.Fatalf("%d packets leaked on the drop path", st.Outstanding())
	}
}
