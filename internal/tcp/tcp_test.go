package tcp

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"suss/internal/cc"
	"suss/internal/netsim"
	"suss/internal/wire"
	"suss/internal/wire/simbackend"
)

// fixedCC is a window-only stub controller for exercising the
// transport in isolation.
type fixedCC struct {
	cwnd        int64
	pace        float64
	losses      int
	rtos        int
	acked       int64
	halveOnLoss bool
}

func (f *fixedCC) Name() string                                 { return "fixed" }
func (f *fixedCC) OnPacketSent(time.Duration, int, int64, bool) {}
func (f *fixedCC) OnAck(ev cc.AckEvent)                         { f.acked += int64(ev.AckedBytes) }
func (f *fixedCC) OnRTO(time.Duration)                          { f.rtos++ }
func (f *fixedCC) CwndBytes() int64                             { return f.cwnd }
func (f *fixedCC) PacingRate() float64                          { return f.pace }
func (f *fixedCC) InSlowStart() bool                            { return false }
func (f *fixedCC) OnLoss(cc.LossEvent) {
	f.losses++
	if f.halveOnLoss {
		f.cwnd /= 2
		if f.cwnd < 2*1448 {
			f.cwnd = 2 * 1448
		}
	}
}

func newTestPath(sim *netsim.Simulator, rate float64, owd time.Duration, queueBytes int) *netsim.Path {
	return netsim.NewPath(sim, netsim.PathSpec{Forward: []netsim.LinkConfig{
		{Name: "core", Rate: 1e9, Delay: owd / 2, QueueBytes: 16 << 20},
		{Name: "bneck", Rate: rate, Delay: owd / 2, QueueBytes: queueBytes},
	}})
}

func runFlow(t *testing.T, size int64, rate float64, owd time.Duration, queueBytes int, ctrl cc.Controller) (*Flow, *netsim.Simulator, *netsim.Path) {
	t.Helper()
	sim := netsim.NewSimulator()
	p := newTestPath(sim, rate, owd, queueBytes)
	cfg := DefaultConfig()
	f := NewFlow(sim, cfg, 1, p.Sender, NewDemux(p.Sender), p.Receiver, NewDemux(p.Receiver), size, ctrl)
	f.StartAt(sim, 0)
	sim.Run(5 * time.Minute)
	return f, sim, p
}

func TestFlowCompletesCleanPath(t *testing.T) {
	ctrl := &fixedCC{cwnd: 64 * 1448}
	size := int64(2 << 20)
	f, _, p := runFlow(t, size, 1e8, 50*time.Millisecond, 1<<20, ctrl)
	if !f.Done() {
		t.Fatal("flow did not complete")
	}
	if f.Receiver.Received() != size {
		t.Errorf("received %d, want %d", f.Receiver.Received(), size)
	}
	if got := f.Sender.Stats().Retransmissions; got != 0 {
		t.Errorf("retransmissions on clean path: %d", got)
	}
	if ctrl.losses != 0 {
		t.Errorf("spurious loss events: %d", ctrl.losses)
	}
	if drops := p.Fwd[1].Stats().DroppedPackets; drops != 0 {
		t.Errorf("unexpected drops: %d", drops)
	}
	if f.Sender.Delivered() != size {
		t.Errorf("delivered %d, want %d", f.Sender.Delivered(), size)
	}
}

func TestFlowFCTMatchesTheory(t *testing.T) {
	// With a huge window, a 1 MB transfer over 100 Mbps / 50 ms OWD
	// should take ≈ OWD + size/rate ≈ 50ms + 87ms ≈ 137 ms at the
	// receiver.
	ctrl := &fixedCC{cwnd: 4 << 20}
	size := int64(1 << 20)
	f, _, _ := runFlow(t, size, 1e8, 50*time.Millisecond, 8<<20, ctrl)
	if !f.Done() {
		t.Fatal("flow did not complete")
	}
	fct := f.FCT()
	wire := float64(size) * 1.04 * 8 / 1e8 // ~4% header overhead
	want := 50*time.Millisecond + time.Duration(wire*float64(time.Second))
	if fct < want-5*time.Millisecond || fct > want+20*time.Millisecond {
		t.Errorf("FCT = %v, want ≈%v", fct, want)
	}
}

func TestRTTEstimate(t *testing.T) {
	ctrl := &fixedCC{cwnd: 32 * 1448}
	f, _, _ := runFlow(t, 512<<10, 1e8, 40*time.Millisecond, 4<<20, ctrl)
	if !f.Done() {
		t.Fatal("flow did not complete")
	}
	min := f.Sender.MinRTT()
	if min < 80*time.Millisecond || min > 85*time.Millisecond {
		t.Errorf("minRTT = %v, want ≈80ms", min)
	}
	if f.Sender.SRTT() < 80*time.Millisecond {
		t.Errorf("SRTT = %v below propagation", f.Sender.SRTT())
	}
}

func TestLossRecoveryFastRetransmit(t *testing.T) {
	// Tight buffer at 10 Mbps forces tail drops under a large fixed
	// window; SACK recovery must still deliver everything.
	ctrl := &fixedCC{cwnd: 256 * 1448, halveOnLoss: true}
	size := int64(2 << 20)
	f, _, p := runFlow(t, size, 1e7, 20*time.Millisecond, 32<<10, ctrl)
	if !f.Done() {
		t.Fatal("flow did not complete despite SACK recovery")
	}
	if f.Receiver.Received() != size {
		t.Errorf("received %d, want %d", f.Receiver.Received(), size)
	}
	if p.Fwd[1].Stats().DroppedPackets == 0 {
		t.Fatal("test needs drops to be meaningful")
	}
	st := f.Sender.Stats()
	if st.Retransmissions == 0 {
		t.Error("expected fast retransmissions")
	}
	if ctrl.losses == 0 {
		t.Error("controller never told about loss")
	}
	if ctrl.losses > st.LossEvents {
		t.Errorf("OnLoss called %d times for %d loss events", ctrl.losses, st.LossEvents)
	}
}

func TestRTORecovery(t *testing.T) {
	// Drop every data packet in a 300 ms blackout window: dupacks dry
	// up entirely, so only the RTO can recover.
	sim := netsim.NewSimulator()
	blackout := func(pkt *netsim.Packet) bool {
		now := sim.Now()
		return pkt.Kind == netsim.Data && now > 200*time.Millisecond && now < 500*time.Millisecond
	}
	p := netsim.NewPath(sim, netsim.PathSpec{Forward: []netsim.LinkConfig{
		{Name: "core", Rate: 1e9, Delay: 10 * time.Millisecond, QueueBytes: 16 << 20},
		{Name: "bneck", Rate: 1e7, Delay: 10 * time.Millisecond, QueueBytes: 1 << 20, Loss: blackout},
	}})
	cfg := DefaultConfig()
	ctrl := &fixedCC{cwnd: 64 * 1448}
	f := NewFlow(sim, cfg, 1, p.Sender, NewDemux(p.Sender), p.Receiver, NewDemux(p.Receiver), 4<<20, ctrl)
	f.StartAt(sim, 0)
	sim.Run(5 * time.Minute)
	if !f.Done() {
		t.Fatal("flow did not survive blackout")
	}
	if f.Sender.Stats().RTOs == 0 {
		t.Error("expected at least one RTO")
	}
	if ctrl.rtos == 0 {
		t.Error("controller never told about RTO")
	}
}

func TestPacingSpacesSends(t *testing.T) {
	// 10 Mbps pacing on a 1 Gbps path: send gaps must be ≈1.2 ms per
	// 1500 B frame, far above the serialization time.
	sim := netsim.NewSimulator()
	p := newTestPath(sim, 1e9, 10*time.Millisecond, 16<<20)
	cfg := DefaultConfig()
	ctrl := &fixedCC{cwnd: 1 << 20, pace: 1e7}
	f := NewFlow(sim, cfg, 1, p.Sender, NewDemux(p.Sender), p.Receiver, NewDemux(p.Receiver), 256<<10, ctrl)
	var sendTimes []time.Duration
	f.Receiver.OnData = func(now time.Duration, seg *wire.Segment) {
		sendTimes = append(sendTimes, wire.UnwrapTS(now, seg.TSVal))
	}
	f.StartAt(sim, 0)
	sim.Run(time.Minute)
	if !f.Done() {
		t.Fatal("flow did not complete")
	}
	wantGap := time.Duration(1500 * 8 * float64(time.Second) / 1e7)
	for i := 1; i < len(sendTimes); i++ {
		gap := sendTimes[i] - sendTimes[i-1]
		if gap < wantGap-time.Microsecond {
			t.Fatalf("send gap %v < pacing gap %v at %d", gap, wantGap, i)
		}
	}
}

func TestDelayedAck(t *testing.T) {
	sim := netsim.NewSimulator()
	p := newTestPath(sim, 1e8, 20*time.Millisecond, 4<<20)
	cfg := DefaultConfig()
	cfg.AckEvery = 2
	ctrl := &fixedCC{cwnd: 64 * 1448}
	f := NewFlow(sim, cfg, 1, p.Sender, NewDemux(p.Sender), p.Receiver, NewDemux(p.Receiver), 1<<20, ctrl)
	f.StartAt(sim, 0)
	sim.Run(time.Minute)
	if !f.Done() {
		t.Fatal("flow did not complete with delayed ACKs")
	}
	// Roughly half as many ACKs as data packets crossed the reverse path.
	acks := p.Rev[0].Stats().EnqueuedPackets
	datas := p.Fwd[1].Stats().DeliveredPackets
	if acks > datas*3/4 {
		t.Errorf("acks = %d for %d data packets; delayed ACK not coalescing", acks, datas)
	}
}

func TestReceiverMergeProperty(t *testing.T) {
	// Segments delivered in any order reassemble to exactly the stream.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sim := netsim.NewSimulator()
		p := newTestPath(sim, 1e8, time.Millisecond, 4<<20)
		cfg := DefaultConfig()
		conn := simbackend.New(sim, p.Receiver, NewDemux(p.Receiver), p.Sender.ID(), 1)
		r := NewReceiver(conn, cfg, 1, 0)
		p.Sender.SetHandler(func(pkt *netsim.Packet) { pkt.Release() }) // swallow ACKs

		size := int64(rng.Intn(100)+1) * int64(cfg.MSS)
		var segs []int64
		for s := int64(0); s < size; s += int64(cfg.MSS) {
			segs = append(segs, s)
		}
		rng.Shuffle(len(segs), func(i, j int) { segs[i], segs[j] = segs[j], segs[i] })
		// Duplicate a few segments.
		for i := 0; i < len(segs)/4; i++ {
			segs = append(segs, segs[rng.Intn(len(segs))])
		}
		sim.Schedule(0, func() {
			for _, s := range segs {
				l := int64(cfg.MSS)
				if s+l > size {
					l = size - s
				}
				r.Handle(&wire.Segment{
					Flags:      wire.FlagACK | wire.FlagPSH,
					Window:     65535,
					Seq:        uint32(s),
					PayloadLen: int(l),
				}, int(l)+cfg.HeaderBytes)
			}
		})
		sim.RunAll()
		return r.CumAck() == size && r.Received() == size
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: under random loss, flows always complete and the receiver
// holds exactly the stream (no corruption, no stall).
func TestFlowSurvivesRandomLossProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		lossP := float64(rng.Intn(8)) / 100 // 0–7 %
		sim := netsim.NewSimulator()
		p := netsim.NewPath(sim, netsim.PathSpec{Forward: []netsim.LinkConfig{
			{Name: "core", Rate: 1e9, Delay: 5 * time.Millisecond, QueueBytes: 16 << 20},
			{Name: "bneck", Rate: 2e7, Delay: 5 * time.Millisecond, QueueBytes: 256 << 10,
				Loss: func(*netsim.Packet) bool { return rng.Float64() < lossP }},
		}})
		cfg := DefaultConfig()
		ctrl := &fixedCC{cwnd: 64 * 1448, halveOnLoss: true}
		size := int64(rng.Intn(512)+64) * 1024
		f := NewFlow(sim, cfg, 1, p.Sender, NewDemux(p.Sender), p.Receiver, NewDemux(p.Receiver), size, ctrl)
		f.StartAt(sim, 0)
		sim.Run(10 * time.Minute)
		return f.Done() && f.Receiver.Received() == size && f.Sender.Delivered() == size
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestRTTEstimatorRFC6298(t *testing.T) {
	r := newRTTEstimator(200*time.Millisecond, 60*time.Second)
	if r.RTO() != time.Second {
		t.Errorf("initial RTO = %v, want 1s", r.RTO())
	}
	r.Update(100 * time.Millisecond)
	if r.SRTT() != 100*time.Millisecond {
		t.Errorf("first SRTT = %v", r.SRTT())
	}
	// RTO = srtt + 4*rttvar = 100 + 200 = 300ms.
	if r.RTO() != 300*time.Millisecond {
		t.Errorf("RTO = %v, want 300ms", r.RTO())
	}
	r.Backoff()
	if r.RTO() != 600*time.Millisecond {
		t.Errorf("backed-off RTO = %v, want 600ms", r.RTO())
	}
	r.Update(100 * time.Millisecond) // sample resets backoff
	if r.RTO() >= 600*time.Millisecond {
		t.Errorf("RTO after sample = %v, backoff not reset", r.RTO())
	}
	// Floor applies to the variance term (Linux-style): RTO ≈
	// srtt + rto_min even when rttvar decays to nothing.
	for i := 0; i < 50; i++ {
		r.Update(time.Millisecond)
	}
	rto := r.RTO()
	if rto < 200*time.Millisecond || rto > 210*time.Millisecond {
		t.Errorf("floored RTO = %v, want ≈ srtt+200ms ≈ 201ms", rto)
	}
}

func TestSegStart(t *testing.T) {
	if got := segStart(0, 1448); got != 0 {
		t.Errorf("segStart(0) = %d", got)
	}
	if got := segStart(1448*5+7, 1448); got != 1448*5 {
		t.Errorf("segStart mid = %d", got)
	}
}
