package tcp

import "time"

// rttEstimator implements RFC 6298 smoothed RTT and RTO computation.
type rttEstimator struct {
	srtt   time.Duration
	rttvar time.Duration
	minRTO time.Duration
	maxRTO time.Duration

	backoff uint // consecutive RTO fires
	hasRTT  bool
}

func newRTTEstimator(minRTO, maxRTO time.Duration) *rttEstimator {
	return &rttEstimator{minRTO: minRTO, maxRTO: maxRTO}
}

// Update folds in a fresh RTT sample, resetting any RTO backoff.
func (r *rttEstimator) Update(sample time.Duration) {
	if sample <= 0 {
		return
	}
	if !r.hasRTT {
		r.srtt = sample
		r.rttvar = sample / 2
		r.hasRTT = true
	} else {
		// RFC 6298: RTTVAR = 3/4 RTTVAR + 1/4 |SRTT - R'|,
		// SRTT = 7/8 SRTT + 1/8 R'.
		delta := r.srtt - sample
		if delta < 0 {
			delta = -delta
		}
		r.rttvar = (3*r.rttvar + delta) / 4
		r.srtt = (7*r.srtt + sample) / 8
	}
	r.backoff = 0
}

// SRTT returns the smoothed RTT (0 before any sample).
func (r *rttEstimator) SRTT() time.Duration { return r.srtt }

// RTO returns the current retransmission timeout including backoff.
func (r *rttEstimator) RTO() time.Duration {
	var rto time.Duration
	if !r.hasRTT {
		rto = time.Second // RFC 6298 initial RTO
	} else {
		// Linux floors the variance term at rto_min rather than the
		// whole RTO: with a steady (bufferbloated) RTT, rttvar decays
		// toward zero and RTO ≈ SRTT would fire on every retransmit's
		// round trip.
		v := 4 * r.rttvar
		if v < r.minRTO {
			v = r.minRTO
		}
		rto = r.srtt + v
	}
	if rto < r.minRTO {
		rto = r.minRTO
	}
	for i := uint(0); i < r.backoff; i++ {
		rto *= 2
		if rto >= r.maxRTO {
			return r.maxRTO
		}
	}
	if rto > r.maxRTO {
		rto = r.maxRTO
	}
	return rto
}

// Backoff doubles the RTO for the next query (called when the
// retransmission timer fires).
func (r *rttEstimator) Backoff() { r.backoff++ }

// UndoBackoff clears the exponential backoff without waiting for a
// fresh sample — F-RTO calls it when a timeout is proven spurious, so
// the next RTO is computed from the (valid) SRTT again.
func (r *rttEstimator) UndoBackoff() { r.backoff = 0 }
