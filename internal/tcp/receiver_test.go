package tcp

import (
	"testing"
	"time"

	"suss/internal/netsim"
	"suss/internal/wire"
	"suss/internal/wire/simbackend"
)

// segWireLen is the frame length Handle is told for a full-MSS test
// segment (header + options; the exact value only feeds byte
// counters).
const segWireLen = 1500

// wireReceiver builds a receiver attached through the simulator
// backend, with the far host capturing its ACK packets instead of
// routing them into a sender.
func wireReceiver(sim *netsim.Simulator, p *netsim.Path, cfg Config, size int64) (*Receiver, *[]*netsim.Packet) {
	var acks []*netsim.Packet
	p.Sender.SetHandler(func(pkt *netsim.Packet) { acks = append(acks, pkt) })
	conn := simbackend.New(sim, p.Receiver, NewDemux(p.Receiver), p.Sender.ID(), 1)
	r := NewReceiver(conn, cfg, 1, size)
	conn.SetHandler(r.Handle)
	return r, &acks
}

func captureAcks(t *testing.T) (*netsim.Simulator, *Receiver, *[]*netsim.Packet) {
	t.Helper()
	sim := netsim.NewSimulator()
	p := newTestPath(sim, 1e9, time.Millisecond, 4<<20)
	r, acks := wireReceiver(sim, p, DefaultConfig(), 0)
	return sim, r, acks
}

// seg builds a decoded data segment the way the wire boundary hands
// one to the receiver.
func seg(seq int64) *wire.Segment {
	return &wire.Segment{
		Flags:      wire.FlagACK | wire.FlagPSH,
		Window:     65535,
		Seq:        uint32(seq * 1448),
		PayloadLen: 1448,
	}
}

func TestReceiverSACKBlockLimit(t *testing.T) {
	sim, r, acks := captureAcks(t)
	sim.Schedule(0, func() {
		// Four disjoint out-of-order islands: the ACK may carry at most
		// three SACK ranges (RFC 2018).
		for _, s := range []int64{2, 4, 6, 8} {
			r.Handle(seg(s), segWireLen)
		}
	})
	sim.RunAll()
	last := (*acks)[len(*acks)-1]
	if last.NSack > 3 {
		t.Fatalf("ACK carries %d SACK blocks, max is 3", last.NSack)
	}
	if last.CumAck != 0 {
		t.Fatalf("cum ack %d, want 0 (nothing in order)", last.CumAck)
	}
	// The most recently received island must be the first block.
	if last.NSack == 0 || last.SACK[0].Start != 8*1448 {
		t.Fatalf("first SACK block %v, want the freshest island (seq 8)", last.SACK)
	}
}

func TestReceiverImmediateAckOnGap(t *testing.T) {
	// Heavy delayed ACKs (every 4th packet): only out-of-order data may
	// force an immediate ACK (dupack semantics).
	sim := netsim.NewSimulator()
	p := newTestPath(sim, 1e9, time.Millisecond, 4<<20)
	cfg := DefaultConfig()
	cfg.AckEvery = 4
	r, acks := wireReceiver(sim, p, cfg, 0)
	sim.Schedule(0, func() {
		r.Handle(seg(0), segWireLen) // in-order: withheld (1 of 4)
		r.Handle(seg(2), segWireLen) // gap! must ACK immediately
	})
	sim.Run(10 * time.Millisecond)
	if len(*acks) == 0 {
		t.Fatal("no immediate ACK on out-of-order arrival")
	}
}

func TestReceiverDelAckTimeout(t *testing.T) {
	sim := netsim.NewSimulator()
	p := newTestPath(sim, 1e9, time.Millisecond, 4<<20)
	var acks []*netsim.Packet
	var ackAt []time.Duration
	p.Sender.SetHandler(func(pkt *netsim.Packet) {
		acks = append(acks, pkt)
		ackAt = append(ackAt, sim.Now())
	})
	cfg := DefaultConfig()
	cfg.AckEvery = 2
	cfg.DelAckTimeout = 40 * time.Millisecond
	conn := simbackend.New(sim, p.Receiver, NewDemux(p.Receiver), p.Sender.ID(), 1)
	r := NewReceiver(conn, cfg, 1, 0)
	sim.Schedule(0, func() { r.Handle(seg(0), segWireLen) }) // single packet, withheld
	sim.Run(time.Second)
	if len(acks) != 1 {
		t.Fatalf("acks = %d, want exactly 1 (delack timer)", len(acks))
	}
	// Fired by the timeout, not immediately.
	if ackAt[0] < 35*time.Millisecond || ackAt[0] > 50*time.Millisecond {
		t.Errorf("delack fired at %v, want ≈40ms", ackAt[0])
	}
	if acks[0].CumAck != 1448 {
		t.Errorf("cum ack %d, want 1448", acks[0].CumAck)
	}
}

func TestReceiverDuplicateDataNotDoubleCounted(t *testing.T) {
	sim, r, _ := captureAcks(t)
	sim.Schedule(0, func() {
		r.Handle(seg(0), segWireLen)
		r.Handle(seg(0), segWireLen) // duplicate
		r.Handle(seg(1), segWireLen)
		r.Handle(seg(1), segWireLen) // duplicate
	})
	sim.RunAll()
	if got := r.Received(); got != 2*1448 {
		t.Fatalf("received %d, want %d (duplicates must not count)", got, 2*1448)
	}
	if r.CumAck() != 2*1448 {
		t.Fatalf("cum ack %d", r.CumAck())
	}
}

func TestReceiverCompletionFiresOnce(t *testing.T) {
	sim := netsim.NewSimulator()
	p := newTestPath(sim, 1e9, time.Millisecond, 4<<20)
	r, _ := wireReceiver(sim, p, DefaultConfig(), 2*1448)
	fired := 0
	r.OnComplete = func(time.Duration) { fired++ }
	sim.Schedule(0, func() {
		r.Handle(seg(0), segWireLen)
		r.Handle(seg(1), segWireLen)
		r.Handle(seg(1), segWireLen) // extra duplicate after completion
	})
	sim.RunAll()
	if fired != 1 {
		t.Fatalf("OnComplete fired %d times, want 1", fired)
	}
}

func TestReceiverEchoOnlyFromFreshData(t *testing.T) {
	sim, r, acks := captureAcks(t)
	at := 5 * time.Millisecond
	sim.Schedule(at, func() {
		fresh := seg(0)
		fresh.HasTS = true // fresh transmissions carry a timestamp
		fresh.TSVal = wire.WrapTS(at)
		r.Handle(fresh, segWireLen)
		retrans := seg(1) // no timestamp option: Karn's rule on the wire
		r.Handle(retrans, segWireLen)
	})
	sim.RunAll()
	if len(*acks) != 2 {
		t.Fatalf("acks = %d", len(*acks))
	}
	if !(*acks)[0].HasEcho || (*acks)[0].EchoTS != at {
		t.Error("fresh data's echo not reflected")
	}
	if (*acks)[1].HasEcho {
		t.Error("retransmission without echo produced an echoed ACK")
	}
}
