package tcp

import (
	"testing"
	"time"

	"suss/internal/netsim"
)

// captureAcks wires a receiver whose ACKs are captured instead of
// routed back through a sender.
func captureAcks(t *testing.T) (*netsim.Simulator, *Receiver, *[]*netsim.Packet) {
	t.Helper()
	sim := netsim.NewSimulator()
	p := newTestPath(sim, 1e9, time.Millisecond, 4<<20)
	var acks []*netsim.Packet
	p.Sender.SetHandler(func(pkt *netsim.Packet) { acks = append(acks, pkt) })
	r := NewReceiver(sim, p.Receiver, DefaultConfig(), 1, p.Sender.ID(), 0)
	return sim, r, &acks
}

func seg(seq int64) *netsim.Packet {
	return &netsim.Packet{Kind: netsim.Data, Flow: 1, Seq: seq * 1448, Len: 1448, Size: 1500}
}

func TestReceiverSACKBlockLimit(t *testing.T) {
	sim, r, acks := captureAcks(t)
	sim.Schedule(0, func() {
		// Four disjoint out-of-order islands: the ACK may carry at most
		// three SACK ranges (RFC 2018).
		for _, s := range []int64{2, 4, 6, 8} {
			r.Handle(seg(s))
		}
	})
	sim.RunAll()
	last := (*acks)[len(*acks)-1]
	if len(last.SACK) > 3 {
		t.Fatalf("ACK carries %d SACK blocks, max is 3", len(last.SACK))
	}
	if last.CumAck != 0 {
		t.Fatalf("cum ack %d, want 0 (nothing in order)", last.CumAck)
	}
	// The most recently received island must be the first block.
	if len(last.SACK) == 0 || last.SACK[0].Start != 8*1448 {
		t.Fatalf("first SACK block %v, want the freshest island (seq 8)", last.SACK)
	}
}

func TestReceiverImmediateAckOnGap(t *testing.T) {
	// Heavy delayed ACKs (every 4th packet): only out-of-order data may
	// force an immediate ACK (dupack semantics).
	sim := netsim.NewSimulator()
	p := newTestPath(sim, 1e9, time.Millisecond, 4<<20)
	var acks []*netsim.Packet
	p.Sender.SetHandler(func(pkt *netsim.Packet) { acks = append(acks, pkt) })
	cfg := DefaultConfig()
	cfg.AckEvery = 4
	r := NewReceiver(sim, p.Receiver, cfg, 1, p.Sender.ID(), 0)
	sim.Schedule(0, func() {
		r.Handle(seg(0)) // in-order: withheld (1 of 4)
		r.Handle(seg(2)) // gap! must ACK immediately
	})
	sim.Run(10 * time.Millisecond)
	if len(acks) == 0 {
		t.Fatal("no immediate ACK on out-of-order arrival")
	}
}

func TestReceiverDelAckTimeout(t *testing.T) {
	sim := netsim.NewSimulator()
	p := newTestPath(sim, 1e9, time.Millisecond, 4<<20)
	var acks []*netsim.Packet
	var ackAt []time.Duration
	p.Sender.SetHandler(func(pkt *netsim.Packet) {
		acks = append(acks, pkt)
		ackAt = append(ackAt, sim.Now())
	})
	cfg := DefaultConfig()
	cfg.AckEvery = 2
	cfg.DelAckTimeout = 40 * time.Millisecond
	r := NewReceiver(sim, p.Receiver, cfg, 1, p.Sender.ID(), 0)
	sim.Schedule(0, func() { r.Handle(seg(0)) }) // single packet, withheld
	sim.Run(time.Second)
	if len(acks) != 1 {
		t.Fatalf("acks = %d, want exactly 1 (delack timer)", len(acks))
	}
	// Fired by the timeout, not immediately.
	if ackAt[0] < 35*time.Millisecond || ackAt[0] > 50*time.Millisecond {
		t.Errorf("delack fired at %v, want ≈40ms", ackAt[0])
	}
	if acks[0].CumAck != 1448 {
		t.Errorf("cum ack %d, want 1448", acks[0].CumAck)
	}
}

func TestReceiverDuplicateDataNotDoubleCounted(t *testing.T) {
	sim, r, _ := captureAcks(t)
	sim.Schedule(0, func() {
		r.Handle(seg(0))
		r.Handle(seg(0)) // duplicate
		r.Handle(seg(1))
		r.Handle(seg(1)) // duplicate
	})
	sim.RunAll()
	if got := r.Received(); got != 2*1448 {
		t.Fatalf("received %d, want %d (duplicates must not count)", got, 2*1448)
	}
	if r.CumAck() != 2*1448 {
		t.Fatalf("cum ack %d", r.CumAck())
	}
}

func TestReceiverCompletionFiresOnce(t *testing.T) {
	sim := netsim.NewSimulator()
	p := newTestPath(sim, 1e9, time.Millisecond, 4<<20)
	p.Sender.SetHandler(func(*netsim.Packet) {})
	r := NewReceiver(sim, p.Receiver, DefaultConfig(), 1, p.Sender.ID(), 2*1448)
	fired := 0
	r.OnComplete = func(time.Duration) { fired++ }
	sim.Schedule(0, func() {
		r.Handle(seg(0))
		r.Handle(seg(1))
		r.Handle(seg(1)) // extra duplicate after completion
	})
	sim.RunAll()
	if fired != 1 {
		t.Fatalf("OnComplete fired %d times, want 1", fired)
	}
}

func TestReceiverEchoOnlyFromFreshData(t *testing.T) {
	sim, r, acks := captureAcks(t)
	sim.Schedule(0, func() {
		fresh := seg(0)
		fresh.HasEcho = true
		fresh.EchoTS = 5 * time.Millisecond
		r.Handle(fresh)
		retrans := seg(1)
		retrans.Retrans = true // sender cleared the echo per Karn
		r.Handle(retrans)
	})
	sim.RunAll()
	if len(*acks) != 2 {
		t.Fatalf("acks = %d", len(*acks))
	}
	if !(*acks)[0].HasEcho || (*acks)[0].EchoTS != 5*time.Millisecond {
		t.Error("fresh data's echo not reflected")
	}
	if (*acks)[1].HasEcho {
		t.Error("retransmission without echo produced an echoed ACK")
	}
}
