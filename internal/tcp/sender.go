package tcp

import (
	"errors"
	"fmt"
	"time"

	"suss/internal/cc"
	"suss/internal/netsim"
	"suss/internal/obs"
	"suss/internal/wire"
)

// ErrRetransLimit is the terminal flow error when Config.MaxConsecRTOs
// consecutive retransmission timeouts fire without any forward
// progress — the path is treated as dead and the flow gives up cleanly
// instead of backing off forever.
var ErrRetransLimit = errors.New("tcp: consecutive retransmission timeouts exceeded limit")

// segment states for the scoreboard.
type segState uint8

const (
	stInflight        segState = iota // sent, outcome unknown
	stSacked                          // selectively acknowledged
	stLost                            // presumed lost, awaiting retransmit
	stRetransInFlight                 // retransmitted, outcome unknown
)

// segInfo is the per-segment scoreboard entry. sentAt and delivAtSend
// support RFC-style delivery-rate sampling (BBR): a segment's rate
// sample is (delivered_now − delivAtSend) / (now − sentAt).
type segInfo struct {
	st          segState
	lostBy      uint8 // obs.RetransCause that marked it lost (valid in stLost)
	sentAt      time.Duration
	delivAtSend int64
	retrans     bool // ever retransmitted: rate samples are ambiguous
}

// SenderStats summarizes a flow from the sender's perspective.
type SenderStats struct {
	BytesSent       int64 // payload bytes, including retransmissions
	SegmentsSent    int
	Retransmissions int
	RTOs            int
	SpuriousRTOs    int // timeouts later proven spurious and undone (F-RTO)
	SackRenegs      int // SACK-reneging episodes detected and repaired
	TLPs            int // tail loss probes sent
	LossEvents      int // fast-retransmit congestion events
	Delivered       int64
}

// EarliestSender is an optional controller extension: a controller may
// gate transmissions until a future time (SUSS uses it for the guard
// interval before its pacing period). Zero means "no gate".
type EarliestSender interface {
	EarliestSend(now time.Duration) time.Duration
}

// Sender drives one bulk flow of size bytes through a wire.Conn,
// under the congestion controller ctrl. It implements cc.Env for the
// controller. Every segment it emits is encoded to frame bytes by the
// conn's backend, and every ACK it processes arrives as a strictly
// decoded wire.Segment — the sender's view of its peer is exactly
// what survives the framing, on the simulator and on a real socket
// alike.
type Sender struct {
	conn wire.Conn
	sim  *netsim.Simulator // conn.Clock(), cached: every timer lives here
	cfg  Config
	flow netsim.FlowID
	ctrl cc.Controller

	// wireSeg is the scratch segment emit encodes from; reusing it
	// keeps the send path allocation-free.
	wireSeg wire.Segment

	size   int64
	sndUna int64
	sndNxt int64

	state     map[int64]segInfo // segment start → state + rate-sample data
	lostQueue []int64           // sorted segment starts pending retransmit
	inflight  int64             // bytes presumed in the network

	highestSacked int64
	delivered     int64

	// sackedIv is the merged set of SACKed intervals above sndUna, so
	// repeated SACK blocks (which re-announce whole contiguous ranges)
	// are processed only for their newly-covered parts. sackedNext and
	// freshScratch are the double-buffer / scratch halves that let
	// addSackInterval rebuild the set without allocating per ACK.
	sackedIv     []netsim.SackRange
	sackedNext   []netsim.SackRange
	freshScratch []netsim.SackRange
	// holes are unresolved segment starts below highestSacked — the
	// candidates for loss marking. holeScan is the swept boundary.
	holes    map[int64]struct{}
	holeScan int64

	rtt    *rttEstimator
	minRTT cc.MinRTTTracker

	inRecovery  bool
	recoveryEnd int64

	rtoTimer    netsim.Timer
	tlpTimer    netsim.Timer
	tlpArmed    bool // a probe may fire for the current flight
	kickTimer   netsim.Timer
	nextRelease time.Duration

	started  bool
	finished bool
	startAt  time.Duration
	doneAt   time.Duration

	// F-RTO (Eifel) spurious-timeout detection state: armed by fireRTO,
	// resolved by the first ACKs after it. frtoAt is when the timeout
	// fired; an ACK echoing an earlier timestamp while advancing past
	// frtoUna proves the original flight was still delivering.
	frtoPending bool
	frtoAt      time.Duration
	frtoUna     int64
	frtoNxt     int64

	// consecRTOs counts RTO fires with no forward progress in between;
	// Config.MaxConsecRTOs caps it (give-up → failed flow).
	consecRTOs int
	failed     bool
	failErr    error

	// reoWnd is the adaptive extra reordering tolerance added to
	// RACK-lite loss detection (grown on contradicted loss markings
	// when Config.AdaptReoWnd is set; zero otherwise).
	reoWnd time.Duration

	stats SenderStats

	// rec, when non-nil, is the attached flight recorder; every
	// emission site is guarded by a nil check so an unobserved sender
	// pays one branch per site. lastCwnd backs EvCwndChanged.
	rec      *obs.FlowRecorder
	lastCwnd int64

	// OnComplete fires once when every byte has been cumulatively
	// acknowledged.
	OnComplete func(now time.Duration)
	// OnFail fires once if the flow gives up (see ErrRetransLimit).
	OnFail func(now time.Duration, err error)
	// OnAckTrace, when non-nil, observes state after each processed
	// ACK (for cwnd/RTT time series).
	OnAckTrace func(now time.Duration, cwnd int64, srtt time.Duration, delivered int64)
}

// NewSender creates a sender for one flow transmitting through conn.
// The caller must install HandleAck as the conn's handler (NewFlowOver
// does both).
func NewSender(conn wire.Conn, cfg Config, flow netsim.FlowID, size int64, ctrl cc.Controller) *Sender {
	return &Sender{
		conn:  conn,
		sim:   conn.Clock(),
		cfg:   cfg,
		flow:  flow,
		ctrl:  ctrl,
		size:  size,
		state: make(map[int64]segInfo),
		holes: make(map[int64]struct{}),
		rtt:   newRTTEstimator(cfg.MinRTO, cfg.MaxRTO),
	}
}

// --- cc.Env ---

// Now implements cc.Env.
func (s *Sender) Now() time.Duration { return s.sim.Now() }

// Schedule implements cc.Env.
func (s *Sender) Schedule(d time.Duration, fn func()) cc.Timer {
	return s.sim.Schedule(d, fn)
}

// Kick implements cc.Env.
func (s *Sender) Kick() { s.trySend() }

// MSS implements cc.Env.
func (s *Sender) MSS() int { return s.cfg.MSS }

// --- public accessors ---

// Stats returns a copy of the sender counters.
func (s *Sender) Stats() SenderStats {
	st := s.stats
	st.Delivered = s.delivered
	return st
}

// Controller returns the congestion controller driving this sender.
func (s *Sender) Controller() cc.Controller { return s.ctrl }

// SRTT returns the smoothed RTT estimate.
func (s *Sender) SRTT() time.Duration { return s.rtt.SRTT() }

// MinRTT returns the connection-lifetime minimum RTT.
func (s *Sender) MinRTT() time.Duration { return s.minRTT.Get() }

// Inflight returns bytes currently presumed in the network.
func (s *Sender) Inflight() int64 { return s.inflight }

// Finished reports whether every byte has been acknowledged.
func (s *Sender) Finished() bool { return s.finished }

// Failed reports whether the flow gave up with a terminal error.
func (s *Sender) Failed() bool { return s.failed }

// Err returns the terminal flow error, or nil while the flow is
// healthy. A failed flow never reports Finished.
func (s *Sender) Err() error { return s.failErr }

// FCT returns the flow completion time (sender-side: start of
// transmission to full acknowledgment). Zero until finished.
func (s *Sender) FCT() time.Duration {
	if !s.finished {
		return 0
	}
	return s.doneAt - s.startAt
}

// Delivered returns total bytes delivered (cumulative + SACKed).
func (s *Sender) Delivered() int64 { return s.delivered }

// SetController installs the congestion controller. Controllers need
// the sender as their cc.Env, so construction is two-phase: build the
// flow with a nil controller, then install one before Start.
func (s *Sender) SetController(ctrl cc.Controller) { s.ctrl = ctrl }

// AttachRecorder installs a flight recorder on this sender. Attach
// after SetController so the cwnd-change baseline starts at the
// controller's initial window. Pass nil to detach.
func (s *Sender) AttachRecorder(r *obs.FlowRecorder) {
	s.rec = r
	if r != nil && s.ctrl != nil {
		s.lastCwnd = s.ctrl.CwndBytes()
	}
}

// noteCwnd records a congestion-window change observed after a
// controller callback returned.
func (s *Sender) noteCwnd(now time.Duration) {
	r := s.rec
	if r == nil {
		return
	}
	if cw := s.ctrl.CwndBytes(); cw != s.lastCwnd {
		r.C.CwndChanges++
		r.Record(now, obs.EvCwndChanged, 0, 0, cw, s.lastCwnd)
		s.lastCwnd = cw
	}
}

// Start begins transmitting at the current virtual time.
func (s *Sender) Start() {
	if s.started {
		return
	}
	if s.ctrl == nil {
		panic("tcp: Start before SetController")
	}
	s.started = true
	s.startAt = s.sim.Now()
	s.trySend()
}

// segLen returns the payload length of the segment starting at seg.
func (s *Sender) segLen(seg int64) int64 {
	l := int64(s.cfg.MSS)
	if seg+l > s.size {
		l = s.size - seg
	}
	return l
}

// --- transmission ---

// The sender's three self-timers as package-level EventFuncs: arming
// them stores the *Sender in the timer slot instead of allocating a
// bound-method closure per arm (the RTO re-arms on every cumulative
// advance, so this is a per-ACK saving).
func senderTrySendEv(ctx, _ any) { ctx.(*Sender).trySend() }
func senderFireRTOEv(ctx, _ any) { ctx.(*Sender).fireRTO() }
func senderFireTLPEv(ctx, _ any) { ctx.(*Sender).fireTLP() }

func (s *Sender) trySend() {
	if !s.started || s.finished || s.failed {
		return
	}
	for {
		var seg int64
		retrans := false
		switch {
		case len(s.lostQueue) > 0:
			seg = s.lostQueue[0]
			retrans = true
		case s.sndNxt < s.size:
			seg = s.sndNxt
		default:
			s.armRTO()
			return
		}
		l := s.segLen(seg)
		if s.inflight+l > s.ctrl.CwndBytes() {
			s.armRTO()
			return
		}
		now := s.sim.Now()

		// Controller-imposed earliest-send gate (SUSS guard interval).
		if g, ok := s.ctrl.(EarliestSender); ok {
			if at := g.EarliestSend(now); at > now {
				s.armKick(at - now)
				return
			}
		}
		// Pacing gate.
		if rate := s.ctrl.PacingRate(); rate > 0 {
			if s.nextRelease > now {
				s.armKick(s.nextRelease - now)
				return
			}
			wireBits := float64((int(l) + s.cfg.HeaderBytes) * 8)
			gap := time.Duration(wireBits / rate * float64(time.Second))
			if s.nextRelease < now {
				s.nextRelease = now
			}
			s.nextRelease += gap
		}
		s.emit(seg, l, retrans)
	}
}

func (s *Sender) armKick(d time.Duration) {
	if s.kickTimer.Active() {
		return
	}
	s.kickTimer = s.sim.ScheduleEvent(d, senderTrySendEv, s, nil)
	s.armRTO()
}

func (s *Sender) emit(seg, l int64, retrans bool) {
	now := s.sim.Now()
	ws := &s.wireSeg
	*ws = wire.Segment{
		SrcPort:    uint16(s.flow),
		DstPort:    uint16(s.flow),
		Seq:        uint32(seg),
		Flags:      wire.FlagACK | wire.FlagPSH,
		Window:     65535,
		PayloadLen: int(l),
	}
	var cause uint8
	if retrans {
		cause = s.state[seg].lostBy
		s.removeFromLostQueue(seg)
		s.state[seg] = segInfo{st: stRetransInFlight, sentAt: now, delivAtSend: s.delivered, retrans: true}
		if seg+l <= s.highestSacked {
			s.holes[seg] = struct{}{} // RACK may need to re-detect it
		}
		s.stats.Retransmissions++
	} else {
		// Karn's rule: only fresh transmissions carry a timestamp for the
		// receiver to echo — the option's presence is the echo-validity
		// signal on the wire, so retransmissions omit it entirely.
		ws.HasTS = true
		ws.TSVal = wire.WrapTS(now)
		s.state[seg] = segInfo{st: stInflight, sentAt: now, delivAtSend: s.delivered}
		s.sndNxt = seg + l
	}
	s.inflight += l
	s.stats.BytesSent += l
	s.stats.SegmentsSent++
	if r := s.rec; r != nil {
		if retrans {
			r.C.SegsRetrans++
			switch obs.RetransCause(cause) {
			case obs.CauseFast:
				r.C.RetransFast++
			case obs.CauseRTO:
				r.C.RetransRTO++
			case obs.CauseTLP:
				r.C.RetransTLP++
			case obs.CauseReneg:
				r.C.RetransReneg++
			}
			r.Record(now, obs.EvSegRetrans, seg, l, int64(cause), 0)
		} else {
			r.C.SegsSent++
			r.Record(now, obs.EvSegSent, seg, l, s.inflight, 0)
		}
	}
	s.ctrl.OnPacketSent(now, int(l), seg, retrans)
	n := s.conn.Send(ws, wire.SendMeta{WireSize: int(l) + s.cfg.HeaderBytes, Retrans: retrans})
	if r := s.rec; r != nil {
		r.C.WireFramesOut++
		r.C.WireBytesOut += int64(n)
	}
	s.armRTO()
}

// --- acknowledgment processing ---

// HandleAck processes one decoded ACK segment addressed to this flow.
// It is the flow's wire.Handler: seg is the conn's scratch segment,
// valid only for the duration of the call, and wireLen is the frame's
// wire length for byte accounting. The 32-bit wire fields are
// unwrapped against the sender's 64-bit state here, at the boundary,
// so everything below speaks full sequence numbers.
func (s *Sender) HandleAck(seg *wire.Segment, wireLen int) {
	if seg.IsData() || seg.Flags&wire.FlagACK == 0 || s.finished || s.failed || !s.started {
		return
	}
	now := s.sim.Now()
	if r := s.rec; r != nil {
		r.C.WireFramesIn++
		r.C.WireBytesIn += int64(wireLen)
	}
	cumAck := wire.Unwrap32(s.sndUna, seg.Ack)
	hasEcho := seg.HasTS
	var echoTS time.Duration
	if hasEcho {
		echoTS = wire.UnwrapTS(now, seg.TSEcr)
	}

	var sample time.Duration
	if hasEcho {
		sample = now - echoTS
		s.rtt.Update(sample)
		s.minRTT.Update(sample, now)
	}

	// F-RTO (Eifel) resolution: an ACK that echoes a timestamp from
	// before the timeout while advancing the window proves the original
	// flight was still being delivered — the RTO was spurious. Only
	// fresh transmissions carry echoes (Karn's rule), so a pre-frtoAt
	// echo cannot have come from anything the timeout retransmitted.
	if s.frtoPending {
		if hasEcho && echoTS < s.frtoAt && cumAck > s.frtoUna {
			s.undoRTO(now)
		} else if cumAck >= s.frtoNxt {
			// The whole pre-timeout window was acked without proof of
			// spuriousness; the question is moot.
			s.frtoPending = false
		}
	}

	var newBytes int64
	var bwSample float64 // freshest delivery-rate sample, bits/sec

	// Cumulative advance.
	if cumAck > s.sndUna {
		for seg := segStart(s.sndUna, s.cfg.MSS); seg < cumAck; seg += int64(s.cfg.MSS) {
			info, ok := s.state[seg]
			if !ok {
				continue
			}
			l := s.segLen(seg)
			switch info.st {
			case stInflight, stRetransInFlight:
				s.inflight -= l
				s.delivered += l
				newBytes += l
				bwSample = s.rateSample(info, now, bwSample)
			case stLost:
				s.removeFromLostQueue(seg)
				s.delivered += l
				newBytes += l
				// The original transmission was acknowledged while the
				// segment was still marked lost: the loss marking was
				// contradicted, so any retransmission is (or would have
				// been) spurious.
				if r := s.rec; r != nil {
					r.C.SpuriousRetrans++
				}
				s.bumpReoWnd()
			case stSacked:
				// already counted
			}
			delete(s.state, seg)
		}
		s.sndUna = cumAck
		for len(s.sackedIv) > 0 && s.sackedIv[0].End <= s.sndUna {
			s.sackedIv = s.sackedIv[1:]
		}
		if len(s.sackedIv) > 0 && s.sackedIv[0].Start < s.sndUna {
			s.sackedIv[0].Start = s.sndUna
		}
		if s.inRecovery && s.sndUna >= s.recoveryEnd {
			s.inRecovery = false
		}
		s.tlpArmed = true // forward progress re-arms the probe allowance
		s.consecRTOs = 0  // cumulative progress resets the give-up counter
		s.resetRTO()
	}

	// Selective acknowledgments: process only the parts of each block
	// not already known (blocks re-announce whole contiguous ranges on
	// every ACK; rescanning them is quadratic). Blocks unwrap near
	// sndUna — any in-window value is within ±2³¹ of it, so the
	// recovery is exact; garbage blocks from a hostile peer unwrap to
	// ranges the clamps below neutralize.
	for _, b := range seg.SackBlocks() {
		r := netsim.SackRange{Start: wire.Unwrap32(s.sndUna, b.Start)}
		r.End = wire.Unwrap32(r.Start, b.End)
		if r.Start < s.sndUna {
			r.Start = s.sndUna
		}
		for _, nr := range s.addSackInterval(r) {
			for seg := segStart(nr.Start, s.cfg.MSS); seg < nr.End; seg += int64(s.cfg.MSS) {
				info, ok := s.state[seg]
				if !ok || info.st == stSacked {
					continue
				}
				l := s.segLen(seg)
				// Only fully-covered segments count as SACKed.
				if seg < nr.Start || seg+l > nr.End {
					continue
				}
				switch info.st {
				case stInflight, stRetransInFlight:
					s.inflight -= l
					bwSample = s.rateSample(info, now, bwSample)
				case stLost:
					s.removeFromLostQueue(seg)
					// Selectively acked while marked lost: contradicted
					// loss marking, same as the cumulative case above.
					if r := s.rec; r != nil {
						r.C.SpuriousRetrans++
					}
					s.bumpReoWnd()
				}
				info.st = stSacked
				s.state[seg] = info
				delete(s.holes, seg)
				s.delivered += l
				newBytes += l
				if seg+l > s.highestSacked {
					s.highestSacked = seg + l
				}
			}
		}
	}

	// SACK-reneging detection: a sane receiver never cumulatively
	// acknowledges less than data it still reports SACKed, so the head
	// segment sitting in stSacked while sndUna hasn't covered it means
	// the receiver threw previously-SACKed data away (RFC 2018 allows
	// this under memory pressure). Discard the reneged scoreboard state
	// and repair by retransmission. Reverse-path ACK reordering can
	// false-trigger this; the consequence is a conservative retransmit,
	// never stalled or corrupted state.
	if s.sndUna < s.sndNxt {
		if info, ok := s.state[segStart(s.sndUna, s.cfg.MSS)]; ok && info.st == stSacked {
			s.onSackReneg(now)
		}
	}

	if r := s.rec; r != nil {
		r.C.AcksSeen++
		r.Record(now, obs.EvAckRecvd, cumAck, newBytes, s.inflight, 0)
		if seg.NSack > 0 {
			r.C.SackRanges += int64(seg.NSack)
			r.Record(now, obs.EvSackRecvd, cumAck, 0, int64(seg.NSack), 0)
		}
	}

	// Loss detection (RFC 6675-style: DupThresh segments SACKed above).
	newlyLost := s.detectLosses(now)
	if newlyLost > 0 {
		// Real loss after the timeout: even if the RTO itself was
		// spurious, the congestion signal stands — stop looking for
		// proof and keep the collapse.
		s.frtoPending = false
	}
	if newlyLost > 0 && !s.inRecovery {
		s.inRecovery = true
		s.recoveryEnd = s.sndNxt
		s.stats.LossEvents++
		s.ctrl.OnLoss(cc.LossEvent{
			Now:       now,
			Inflight:  s.inflight,
			LostBytes: int(newlyLost),
			SndNxt:    s.sndNxt,
		})
	}

	// Completion.
	if s.sndUna >= s.size {
		s.noteCwnd(now)
		if s.OnAckTrace != nil {
			s.OnAckTrace(now, s.ctrl.CwndBytes(), s.rtt.SRTT(), s.delivered)
		}
		s.finish(now)
		return
	}

	if newBytes > 0 {
		s.ctrl.OnAck(cc.AckEvent{
			Now:        now,
			AckedBytes: int(newBytes),
			CumAck:     s.sndUna,
			SndNxt:     s.sndNxt,
			RTT:        sample,
			Inflight:   s.inflight,
			Delivered:  s.delivered,
			AppLimited: s.sndNxt >= s.size,
			InRecovery: s.inRecovery,
			BW:         bwSample,
		})
	}
	s.noteCwnd(now)
	if s.OnAckTrace != nil {
		s.OnAckTrace(now, s.ctrl.CwndBytes(), s.rtt.SRTT(), s.delivered)
	}
	s.trySend()
}

// rateSample folds one acked segment into the freshest delivery-rate
// estimate (bits/sec): later segments overwrite earlier ones, never
// from retransmits. It returns the updated freshest sample.
func (s *Sender) rateSample(info segInfo, now time.Duration, cur float64) float64 {
	if info.retrans || info.sentAt >= now {
		return cur
	}
	elapsed := (now - info.sentAt).Seconds()
	if bw := float64(s.delivered-info.delivAtSend) * 8 / elapsed; bw > 0 {
		return bw
	}
	return cur
}

// addSackInterval merges iv into the known-SACKed set and returns the
// sub-intervals that were not previously covered. The returned slice
// is scratch storage reused by the next call; callers consume it
// before merging another interval. The rebuilt set lands in a
// double buffer (sackedIv/sackedNext swap roles), so steady-state
// SACK processing allocates nothing.
func (s *Sender) addSackInterval(iv netsim.SackRange) []netsim.SackRange {
	if iv.End <= iv.Start {
		return nil
	}
	fresh := s.freshScratch[:0]
	out := s.sackedNext[:0]
	cur := iv
	inserted := false
	pos := cur.Start
	for _, g := range s.sackedIv {
		if g.End < cur.Start {
			out = append(out, g)
			continue
		}
		if cur.End < g.Start {
			if !inserted {
				if pos < cur.End {
					fresh = append(fresh, netsim.SackRange{Start: pos, End: cur.End})
					pos = cur.End
				}
				out = append(out, cur)
				inserted = true
			}
			out = append(out, g)
			continue
		}
		// Overlap: the gap before g (if any) is fresh coverage.
		if pos < g.Start {
			fresh = append(fresh, netsim.SackRange{Start: pos, End: min64(g.Start, cur.End)})
		}
		if g.End > pos {
			pos = g.End
		}
		if g.Start < cur.Start {
			cur.Start = g.Start
		}
		if g.End > cur.End {
			cur.End = g.End
		}
	}
	if !inserted {
		if pos < cur.End {
			fresh = append(fresh, netsim.SackRange{Start: pos, End: cur.End})
		}
		out = append(out, cur)
	}
	s.sackedNext = s.sackedIv[:0]
	s.sackedIv = out
	s.freshScratch = fresh
	return fresh
}

func (s *Sender) removeFromLostQueue(seg int64) {
	for i, v := range s.lostQueue {
		if v == seg {
			s.lostQueue = append(s.lostQueue[:i], s.lostQueue[i+1:]...)
			return
		}
	}
}

func (s *Sender) detectLosses(now time.Duration) int64 {
	if s.highestSacked <= s.sndUna {
		return 0
	}
	// Sweep newly exposed territory below highestSacked into the hole
	// candidate set (each segment is swept once, so detection is
	// amortized O(1) per segment rather than O(window) per ACK).
	start := segStart(s.sndUna, s.cfg.MSS)
	if s.holeScan > start {
		start = s.holeScan
	}
	for seg := start; seg < s.highestSacked && seg < s.sndNxt; seg += int64(s.cfg.MSS) {
		if info, ok := s.state[seg]; ok && (info.st == stInflight || info.st == stRetransInFlight) {
			s.holes[seg] = struct{}{}
		}
		s.holeScan = seg + int64(s.cfg.MSS)
	}

	var newly int64
	thresh := int64(s.cfg.DupThresh) * int64(s.cfg.MSS)
	// RACK-lite reordering window for re-detecting lost retransmissions:
	// a retransmitted segment still unacknowledged well past an RTT,
	// with DupThresh segments SACKed above it, was lost again. Without
	// this, a retransmission dropped at a still-full buffer is only
	// recoverable by RTO.
	rackWindow := s.rtt.SRTT() + s.rtt.SRTT()/4 + 4*time.Millisecond
	if s.rtt.SRTT() == 0 {
		rackWindow = s.rtt.RTO()
	}
	for seg := range s.holes {
		if seg < s.sndUna {
			delete(s.holes, seg)
			continue
		}
		info, ok := s.state[seg]
		if !ok || info.st == stSacked || info.st == stLost {
			delete(s.holes, seg)
			continue
		}
		if seg+thresh > s.highestSacked {
			continue
		}
		// The adaptive reordering window (zero unless AdaptReoWnd has
		// grown it) delays both markings by the extra tolerance; with
		// reoWnd == 0 the stInflight condition reduces to the plain
		// DupThresh rule since sentAt is always in the past.
		lost := (info.st == stInflight && now-info.sentAt > s.reoWnd) ||
			(info.st == stRetransInFlight && now-info.sentAt > rackWindow+s.reoWnd)
		if lost {
			l := s.segLen(seg)
			s.inflight -= l
			info.st = stLost
			info.lostBy = uint8(obs.CauseFast)
			s.state[seg] = info
			s.insertLost(seg)
			delete(s.holes, seg)
			newly += l
			if r := s.rec; r != nil {
				r.C.LossDetected++
				r.Record(now, obs.EvLossDetected, seg, l, 0, 0)
			}
		}
	}
	return newly
}

func (s *Sender) insertLost(seg int64) {
	// Keep the queue sorted; losses are detected mostly in order so
	// append + bubble is cheap.
	s.lostQueue = append(s.lostQueue, seg)
	for i := len(s.lostQueue) - 1; i > 0 && s.lostQueue[i] < s.lostQueue[i-1]; i-- {
		s.lostQueue[i], s.lostQueue[i-1] = s.lostQueue[i-1], s.lostQueue[i]
	}
}

// --- RTO ---

// rtoNeeded reports whether unacknowledged data still depends on the
// retransmission timer. The highestSacked term covers the reneging
// corner: when every outstanding segment is SACKed there is nothing in
// flight and nothing queued, yet sndUna hasn't advanced — if the
// receiver then renegs, only a timeout can recover. For a sane
// receiver the term is redundant (all-SACKed flows complete on the
// cumulative ACK already in the pipe), so behavior is unchanged.
func (s *Sender) rtoNeeded() bool {
	return s.inflight > 0 || len(s.lostQueue) > 0 || s.highestSacked > s.sndUna
}

func (s *Sender) armRTO() {
	if s.finished || s.failed || !s.rtoNeeded() {
		return
	}
	if !s.rtoTimer.Active() {
		s.rtoTimer = s.sim.ScheduleEvent(s.rtt.RTO(), senderFireRTOEv, s, nil)
	}
	s.armTLP()
}

// armTLP schedules a RACK-style tail loss probe well before the RTO:
// if an entire tail of the flight is lost, no dupacks arrive and —
// without a probe — only a backed-off timeout can recover, which
// starves small-window flows in contested buffers (RFC 8985).
func (s *Sender) armTLP() {
	if s.finished || !s.tlpArmed || s.inflight <= 0 || s.tlpTimer.Active() {
		return
	}
	pto := 2 * s.rtt.SRTT()
	if pto == 0 || pto > s.rtt.RTO()/2 {
		pto = s.rtt.RTO() / 2
	}
	if pto < 10*time.Millisecond {
		pto = 10 * time.Millisecond
	}
	s.tlpTimer = s.sim.ScheduleEvent(pto, senderFireTLPEv, s, nil)
}

// fireTLP retransmits the highest outstanding segment once per flight,
// soliciting the SACK feedback that lets fast recovery run instead of
// an RTO. The congestion controller is not informed (the probe itself
// is not a loss signal).
func (s *Sender) fireTLP() {
	if s.finished || s.failed || !s.tlpArmed || s.inflight <= 0 {
		return
	}
	var tail int64 = -1
	for seg := segStart(s.sndNxt-1, s.cfg.MSS); seg >= s.sndUna; seg -= int64(s.cfg.MSS) {
		if info, ok := s.state[seg]; ok && (info.st == stInflight || info.st == stRetransInFlight) {
			tail = seg
			break
		}
	}
	if tail < 0 {
		return
	}
	s.tlpArmed = false
	s.stats.TLPs++
	l := s.segLen(tail)
	if r := s.rec; r != nil {
		r.C.TLPFires++
		r.Record(s.sim.Now(), obs.EvTLPFired, tail, l, 0, 0)
	}
	// Re-send the tail as a retransmission (accounting: the original is
	// written off, the probe takes its place in flight).
	s.inflight -= l
	info := s.state[tail]
	info.st = stLost
	info.lostBy = uint8(obs.CauseTLP)
	s.state[tail] = info
	s.insertLost(tail)
	s.emit(tail, l, true)
}

func (s *Sender) resetRTO() {
	s.tlpTimer.Stop()
	if s.finished || s.failed || !s.rtoNeeded() {
		s.rtoTimer.Stop()
		return
	}
	// Rearm in place when the timer is still pending: one O(1) wheel
	// unlink+relink instead of Stop + slot release + fresh Schedule.
	// Reset takes a fresh arm sequence number, so same-deadline
	// ordering is identical to the Stop+Schedule path it replaces.
	if t, ok := s.rtoTimer.Reset(s.rtt.RTO()); ok {
		s.rtoTimer = t
	} else {
		s.rtoTimer = s.sim.ScheduleEvent(s.rtt.RTO(), senderFireRTOEv, s, nil)
	}
	s.armTLP()
}

func (s *Sender) fireRTO() {
	if s.finished || s.failed {
		return
	}
	if !s.rtoNeeded() {
		return
	}
	now := s.sim.Now()
	s.stats.RTOs++
	s.consecRTOs++
	if s.cfg.MaxConsecRTOs > 0 && s.consecRTOs > s.cfg.MaxConsecRTOs {
		s.fail(now, fmt.Errorf("%w (%d fires, stuck at seq %d)", ErrRetransLimit, s.consecRTOs, s.sndUna))
		return
	}
	s.tlpArmed = false
	s.tlpTimer.Stop()
	s.rtt.Backoff()
	if r := s.rec; r != nil {
		r.C.RTOFires++
		r.Record(now, obs.EvRTOFired, s.sndUna, 0, int64(s.stats.RTOs), 0)
	}
	// Arm F-RTO before the controller collapses: the first ACKs after
	// the timeout will either prove it spurious (pre-timeout echo with
	// progress) or confirm it.
	if s.cfg.FRTO {
		s.frtoPending = true
		s.frtoAt = now
		s.frtoUna = s.sndUna
		s.frtoNxt = s.sndNxt
	}
	s.ctrl.OnRTO(now)
	s.noteCwnd(now)
	// Mark everything outstanding as lost and rebuild the retransmit
	// queue from the scoreboard (go-back-N under the collapsed window).
	// Every segment the rebuild touches is re-attributed to the RTO —
	// including ones fast detection had already marked — so the
	// retransmit-cause partition reflects what actually queued the
	// resend that follows.
	s.lostQueue = s.lostQueue[:0]
	for seg := segStart(s.sndUna, s.cfg.MSS); seg < s.sndNxt; seg += int64(s.cfg.MSS) {
		info, ok := s.state[seg]
		if !ok {
			continue
		}
		switch info.st {
		case stInflight, stRetransInFlight:
			s.inflight -= s.segLen(seg)
			info.st = stLost
			info.lostBy = uint8(obs.CauseRTO)
			s.state[seg] = info
			s.insertLost(seg)
		case stLost:
			info.lostBy = uint8(obs.CauseRTO)
			s.state[seg] = info
			s.insertLost(seg)
		}
	}
	// The rebuild skips SACKed segments, so if the timeout fired with
	// the whole outstanding window selectively acked (only possible
	// when the receiver reneged and stopped advancing the cumulative
	// point), there is still nothing to retransmit. Treat the SACK
	// state as lies and repair from sndUna.
	if len(s.lostQueue) == 0 && s.inflight <= 0 && s.sndUna < s.sndNxt {
		s.onSackReneg(now)
	}
	s.inRecovery = false
	s.nextRelease = 0
	s.trySend()
	if !s.rtoTimer.Active() {
		s.rtoTimer = s.sim.ScheduleEvent(s.rtt.RTO(), senderFireRTOEv, s, nil)
	}
}

// undoRTO reverts the most recent retransmission timeout after F-RTO
// proved it spurious: segments the timeout wrote off but that were
// never actually retransmitted go back in flight, the congestion
// controller restores its pre-timeout window (when it can), and the
// exponential backoff is cleared.
func (s *Sender) undoRTO(now time.Duration) {
	s.frtoPending = false
	s.stats.SpuriousRTOs++
	s.rtt.UndoBackoff()
	if u, ok := s.ctrl.(cc.Undoer); ok {
		u.UndoRTO(now)
	}
	// Un-mark segments the RTO declared lost that are still waiting in
	// the retransmit queue: their original transmissions are alive in
	// the network (that is what the pre-timeout echo proved). Segments
	// already retransmitted, or marked lost by fast detection before
	// the timeout, stay as they are.
	kept := s.lostQueue[:0]
	for _, seg := range s.lostQueue {
		info := s.state[seg]
		if obs.RetransCause(info.lostBy) == obs.CauseRTO {
			info.st = stInflight
			info.lostBy = 0
			s.state[seg] = info
			s.inflight += s.segLen(seg)
			if seg+s.segLen(seg) <= s.highestSacked {
				s.holes[seg] = struct{}{} // back under RACK's eye
			}
			continue
		}
		kept = append(kept, seg)
	}
	s.lostQueue = kept
	s.bumpReoWnd()
	if r := s.rec; r != nil {
		r.C.SpuriousRTOUndos++
		r.Record(now, obs.EvRTOUndone, s.sndUna, 0, int64(s.stats.SpuriousRTOs), s.ctrl.CwndBytes())
	}
	s.noteCwnd(now)
	s.resetRTO()
}

// onSackReneg repairs the scoreboard after the receiver discarded
// SACKed data (RFC 2018 reneging): every SACKed segment above sndUna
// is written off — its delivered credit reversed — and queued for
// retransmission, and the SACK interval set is cleared so the
// receiver's next (truthful) blocks rebuild it from scratch.
func (s *Sender) onSackReneg(now time.Duration) {
	s.stats.SackRenegs++
	if r := s.rec; r != nil {
		r.C.SackRenegings++
		r.Record(now, obs.EvRenegDetected, s.sndUna, 0, s.highestSacked, 0)
	}
	for seg := segStart(s.sndUna, s.cfg.MSS); seg < s.sndNxt; seg += int64(s.cfg.MSS) {
		info, ok := s.state[seg]
		if !ok || info.st != stSacked {
			continue
		}
		l := s.segLen(seg)
		s.delivered -= l
		info.st = stLost
		info.lostBy = uint8(obs.CauseReneg)
		s.state[seg] = info
		s.insertLost(seg)
	}
	s.sackedIv = s.sackedIv[:0]
	s.highestSacked = s.sndUna
	for seg := range s.holes {
		delete(s.holes, seg)
	}
	s.holeScan = segStart(s.sndUna, s.cfg.MSS)
}

// fail terminates the flow with a permanent error: timers stop, no
// further sends or ACK processing happen, and the owner learns via
// OnFail / Err.
func (s *Sender) fail(now time.Duration, err error) {
	s.failed = true
	s.failErr = err
	s.rtoTimer.Stop()
	s.tlpTimer.Stop()
	s.kickTimer.Stop()
	if r := s.rec; r != nil {
		r.C.FlowAborts++
		r.Record(now, obs.EvFlowAbort, s.sndUna, 0, int64(s.stats.RTOs), 0)
	}
	if s.OnFail != nil {
		s.OnFail(now, err)
	}
}

// bumpReoWnd widens the adaptive RACK reordering window after a loss
// marking was contradicted — evidence the path reorders more than the
// current window tolerates. Grows in minRTT/4 steps, capped at one
// SRTT (RFC 8985's DSACK-driven adaptation, with contradicted marks
// as the signal since the simulator has no DSACK).
func (s *Sender) bumpReoWnd() {
	if !s.cfg.AdaptReoWnd {
		return
	}
	step := s.minRTT.Get() / 4
	if step < time.Millisecond {
		step = time.Millisecond
	}
	lim := s.rtt.SRTT()
	if lim == 0 {
		lim = s.rtt.RTO()
	}
	if s.reoWnd += step; s.reoWnd > lim {
		s.reoWnd = lim
	}
}

func (s *Sender) finish(now time.Duration) {
	s.finished = true
	s.doneAt = now
	s.rtoTimer.Stop()
	s.tlpTimer.Stop()
	s.kickTimer.Stop()
	if s.OnComplete != nil {
		s.OnComplete(now)
	}
}

// AuditScoreboard recomputes the in-flight byte count and the
// retransmit queue from the per-segment scoreboard and cross-checks
// them against the incrementally-maintained counters. It returns a
// non-empty slice of discrepancy descriptions if the invariants are
// violated. Tests call this; production code never needs to.
func (s *Sender) AuditScoreboard() []string {
	var problems []string
	var inflight int64
	lost := map[int64]bool{}
	for seg, info := range s.state {
		switch info.st {
		case stInflight, stRetransInFlight:
			inflight += s.segLen(seg)
		case stLost:
			lost[seg] = true
		}
	}
	if inflight != s.inflight {
		problems = append(problems, fmt.Sprintf("inflight counter %d != scoreboard %d", s.inflight, inflight))
	}
	seen := map[int64]bool{}
	for _, seg := range s.lostQueue {
		if seen[seg] {
			problems = append(problems, fmt.Sprintf("segment %d queued twice", seg))
		}
		seen[seg] = true
		if info, ok := s.state[seg]; !ok || info.st != stLost {
			problems = append(problems, fmt.Sprintf("queued segment %d is not marked lost", seg))
		}
	}
	for seg := range lost {
		if !seen[seg] {
			problems = append(problems, fmt.Sprintf("lost segment %d missing from retransmit queue", seg))
		}
	}
	for i := 1; i < len(s.lostQueue); i++ {
		if s.lostQueue[i] <= s.lostQueue[i-1] {
			problems = append(problems, "retransmit queue not sorted")
			break
		}
	}
	return problems
}
