package tcp

import (
	"time"

	"suss/internal/cc"
	"suss/internal/netsim"
)

// Demux dispatches packets delivered to a host among the flows
// terminating there, so several flows can share one host (the paper's
// Fig. 16 workload reuses client-server pairs for sequential flows).
type Demux struct {
	handlers map[netsim.FlowID]func(*netsim.Packet)
}

// NewDemux installs a demultiplexer as the host's packet handler.
// Ownership: packets routed to a registered flow are consumed (and
// released) by that flow's endpoint; packets for unregistered flows
// are released here, so no pooled packet leaks.
func NewDemux(host *netsim.Host) *Demux {
	d := &Demux{handlers: make(map[netsim.FlowID]func(*netsim.Packet))}
	host.SetHandler(func(pkt *netsim.Packet) {
		if fn, ok := d.handlers[pkt.Flow]; ok {
			fn(pkt)
		} else {
			pkt.Release()
		}
	})
	return d
}

// Register routes packets of flow id to fn, replacing any previous
// registration.
func (d *Demux) Register(id netsim.FlowID, fn func(*netsim.Packet)) {
	d.handlers[id] = fn
}

// Unregister removes a flow's handler.
func (d *Demux) Unregister(id netsim.FlowID) { delete(d.handlers, id) }

// Flow bundles a sender and receiver wired across a topology.
type Flow struct {
	ID       netsim.FlowID
	Sender   *Sender
	Receiver *Receiver

	// CompletedAt is the receiver-side completion time (when the last
	// byte arrived), the paper's FCT definition for downloads. Zero
	// until complete.
	CompletedAt time.Duration
	startAt     time.Duration
}

// NewFlow wires a sender on srcHost and a receiver on dstHost for a
// size-byte transfer, registering both with the given demuxes.
func NewFlow(sim *netsim.Simulator, cfg Config, id netsim.FlowID,
	srcHost *netsim.Host, srcMux *Demux,
	dstHost *netsim.Host, dstMux *Demux,
	size int64, ctrl cc.Controller) *Flow {

	f := &Flow{ID: id}
	f.Sender = NewSender(sim, srcHost, cfg, id, dstHost.ID(), size, ctrl)
	f.Receiver = NewReceiver(sim, dstHost, cfg, id, srcHost.ID(), size)
	f.Receiver.OnComplete = func(now time.Duration) { f.CompletedAt = now }
	srcMux.Register(id, f.Sender.HandleAck)
	dstMux.Register(id, f.Receiver.Handle)
	return f
}

// StartAt schedules the flow to begin at virtual time at.
func (f *Flow) StartAt(sim *netsim.Simulator, at time.Duration) {
	f.startAt = at
	sim.ScheduleAt(at, f.Sender.Start)
}

// FCT returns the receiver-side flow completion time (download FCT):
// time from the flow's start to the arrival of its last byte. Zero
// until complete.
func (f *Flow) FCT() time.Duration {
	if f.CompletedAt == 0 {
		return 0
	}
	return f.CompletedAt - f.startAt
}

// Done reports whether the receiver holds the complete stream.
func (f *Flow) Done() bool { return f.CompletedAt != 0 }
