package tcp

import (
	"time"

	"suss/internal/cc"
	"suss/internal/netsim"
	"suss/internal/wire"
	"suss/internal/wire/simbackend"
)

// Demux dispatches packets delivered to a host among the flows
// terminating there. It lives with the simulator backend now (the
// other wire backends carry one flow per conn and need no demux); the
// alias keeps the many existing construction sites unchanged.
type Demux = simbackend.Demux

// NewDemux installs a demultiplexer as the host's packet handler.
func NewDemux(host *netsim.Host) *Demux { return simbackend.NewDemux(host) }

// Flow bundles a sender and receiver wired across a wire backend.
type Flow struct {
	ID       netsim.FlowID
	Sender   *Sender
	Receiver *Receiver

	// CompletedAt is the receiver-side completion time (when the last
	// byte arrived), the paper's FCT definition for downloads. Zero
	// until complete.
	CompletedAt time.Duration
	startAt     time.Duration
	senderSim   *netsim.Simulator // sender's event domain (NewFlow only)
}

// NewFlowOver wires a sender and receiver for a size-byte transfer
// over an arbitrary pair of wire conns (one per endpoint), installing
// each endpoint as its conn's frame handler. This is the
// backend-agnostic constructor: the same sender and receiver code
// runs whether the conns attach to the simulator, an in-memory pipe
// or a UDP socket.
func NewFlowOver(cfg Config, id netsim.FlowID, sconn, rconn wire.Conn,
	size int64, ctrl cc.Controller) *Flow {

	f := &Flow{ID: id}
	f.Sender = NewSender(sconn, cfg, id, size, ctrl)
	f.Receiver = NewReceiver(rconn, cfg, id, size)
	f.Receiver.OnComplete = func(now time.Duration) { f.CompletedAt = now }
	sconn.SetHandler(f.Sender.HandleAck)
	rconn.SetHandler(f.Receiver.Handle)
	return f
}

// NewFlow wires a sender on srcHost and a receiver on dstHost for a
// size-byte transfer over the simulator backend, registering both
// with the given demuxes.
//
// Each endpoint binds to its own host's event domain (Host.Sim): in a
// multi-domain cluster the sender and receiver may live on different
// simulators, and each must schedule timers and acquire packets only
// in its own. Hosts built outside a Fabric carry no domain; they fall
// back to sim, which is also the single-simulator case.
func NewFlow(sim *netsim.Simulator, cfg Config, id netsim.FlowID,
	srcHost *netsim.Host, srcMux *Demux,
	dstHost *netsim.Host, dstMux *Demux,
	size int64, ctrl cc.Controller) *Flow {

	sconn := simbackend.New(hostSim(srcHost, sim), srcHost, srcMux, dstHost.ID(), id)
	rconn := simbackend.New(hostSim(dstHost, sim), dstHost, dstMux, srcHost.ID(), id)
	f := NewFlowOver(cfg, id, sconn, rconn, size, ctrl)
	f.senderSim = hostSim(srcHost, sim)
	return f
}

func hostSim(h *netsim.Host, fallback *netsim.Simulator) *netsim.Simulator {
	if s := h.Sim(); s != nil {
		return s
	}
	return fallback
}

// StartAt schedules the flow to begin at virtual time at. The start
// event is armed in the sender's own event domain when the flow was
// built with NewFlow; sim is the fallback for backend-agnostic flows.
func (f *Flow) StartAt(sim *netsim.Simulator, at time.Duration) {
	f.startAt = at
	if f.senderSim != nil {
		sim = f.senderSim
	}
	sim.ScheduleAt(at, f.Sender.Start)
}

// FCT returns the receiver-side flow completion time (download FCT):
// time from the flow's start to the arrival of its last byte. Zero
// until complete.
func (f *Flow) FCT() time.Duration {
	if f.CompletedAt == 0 {
		return 0
	}
	return f.CompletedAt - f.startAt
}

// Done reports whether the receiver holds the complete stream.
func (f *Flow) Done() bool { return f.CompletedAt != 0 }
