package bbr_test

import (
	"testing"
	"time"

	"suss/internal/bbr"
	"suss/internal/netsim"
	"suss/internal/tcp"
)

func runBoostFlow(t *testing.T, size int64, rate float64, owd time.Duration, boosted bool) (*tcp.Flow, *bbr.BBR) {
	t.Helper()
	sim := netsim.NewSimulator()
	bdp := rate / 8 * (2 * owd).Seconds()
	p := netsim.NewPath(sim, netsim.PathSpec{Forward: []netsim.LinkConfig{
		{Name: "core", Rate: 1e9, Delay: owd / 2, QueueBytes: 64 << 20},
		{Name: "bneck", Rate: rate, Delay: owd - owd/2, QueueBytes: int(1.5 * bdp)},
	}})
	f := tcp.NewFlow(sim, tcp.DefaultConfig(), 1, p.Sender, tcp.NewDemux(p.Sender), p.Receiver, tcp.NewDemux(p.Receiver), size, nil)
	opt := bbr.DefaultOptions()
	if boosted {
		opt = bbr.SUSSOptions()
	}
	ctrl := bbr.New(f.Sender, opt)
	f.Sender.SetController(ctrl)
	f.StartAt(sim, 0)
	sim.Run(10 * time.Minute)
	if !f.Done() {
		t.Fatal("flow did not complete")
	}
	return f, ctrl
}

func TestSussBoostAcceleratesStartup(t *testing.T) {
	// The §7 integration: on a large-BDP path, BBR+SUSS must finish a
	// small flow faster than plain BBR by boosting STARTUP rounds.
	size := int64(4 << 20)
	plain, _ := runBoostFlow(t, size, 1e8, 50*time.Millisecond, false)
	boosted, ctrl := runBoostFlow(t, size, 1e8, 50*time.Millisecond, true)
	if ctrl.BoostedRounds() == 0 {
		t.Fatal("no rounds were boosted on a 100 Mbps × 100 ms path")
	}
	imp := 1 - boosted.FCT().Seconds()/plain.FCT().Seconds()
	t.Logf("bbr=%v bbr+suss=%v improvement=%.1f%% boosted rounds=%d",
		plain.FCT(), boosted.FCT(), 100*imp, ctrl.BoostedRounds())
	if imp < 0.10 {
		t.Errorf("BBR+SUSS improvement %.1f%%, want ≥10%%", 100*imp)
	}
}

func TestSussBoostHarmlessOnSmallBDP(t *testing.T) {
	// On a small-BDP path STARTUP is over in a couple of rounds; the
	// boost must not hurt.
	size := int64(1 << 20)
	plain, _ := runBoostFlow(t, size, 2e7, 5*time.Millisecond, false)
	boosted, _ := runBoostFlow(t, size, 2e7, 5*time.Millisecond, true)
	if boosted.FCT() > plain.FCT()*12/10 {
		t.Errorf("boost hurt a small-BDP flow: %v vs %v", boosted.FCT(), plain.FCT())
	}
}

func TestSussBoostStopsAfterStartup(t *testing.T) {
	// Large transfer: boosts happen only in the early rounds; steady
	// state is plain PROBE_BW.
	_, ctrl := runBoostFlow(t, 30<<20, 1e8, 50*time.Millisecond, true)
	if ctrl.State() == "STARTUP" {
		t.Error("still in STARTUP after 30 MB")
	}
	if b := ctrl.BoostedRounds(); b > 10 {
		t.Errorf("boost ran %d rounds; must be confined to early STARTUP", b)
	}
}
