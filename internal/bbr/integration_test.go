package bbr_test

import (
	"testing"
	"time"

	"suss/internal/bbr"
	"suss/internal/cubic"
	"suss/internal/netsim"
	"suss/internal/tcp"
)

func runBBRFlow(t *testing.T, size int64, rate float64, owd time.Duration, bufBDP float64, lossP float64, mk func(f *tcp.Flow)) (*tcp.Flow, *netsim.Path) {
	t.Helper()
	sim := netsim.NewSimulator()
	rtt := 2 * owd
	bdp := rate / 8 * rtt.Seconds()
	var loss netsim.LossFunc
	if lossP > 0 {
		n := 0
		period := int(1 / lossP)
		loss = func(p *netsim.Packet) bool {
			if p.Kind != netsim.Data {
				return false
			}
			n++
			return n%period == 0
		}
	}
	p := netsim.NewPath(sim, netsim.PathSpec{Forward: []netsim.LinkConfig{
		{Name: "core", Rate: 1e9, Delay: owd / 2, QueueBytes: 64 << 20},
		{Name: "bneck", Rate: rate, Delay: owd - owd/2, QueueBytes: int(bufBDP * bdp), Loss: loss},
	}})
	f := tcp.NewFlow(sim, tcp.DefaultConfig(), 1, p.Sender, tcp.NewDemux(p.Sender), p.Receiver, tcp.NewDemux(p.Receiver), size, nil)
	mk(f)
	f.StartAt(sim, 0)
	sim.Run(10 * time.Minute)
	return f, p
}

func TestBBRFillsPipe(t *testing.T) {
	f, _ := runBBRFlow(t, 30<<20, 1e8, 50*time.Millisecond, 1, 0, func(f *tcp.Flow) {
		f.Sender.SetController(bbr.New(f.Sender, bbr.DefaultOptions()))
	})
	if !f.Done() {
		t.Fatal("flow did not complete")
	}
	goodput := float64(30<<20) * 8 / f.FCT().Seconds()
	if goodput < 0.7e8 {
		t.Errorf("BBR goodput %.3g bps, want >70%% of 100 Mbps", goodput)
	}
	b := f.Sender.Controller().(*bbr.BBR)
	if b.BtlBw() < 0.7e8 || b.BtlBw() > 1.3e8 {
		t.Errorf("BtlBw estimate %.3g, want ≈1e8", b.BtlBw())
	}
	if b.State() == "STARTUP" {
		t.Error("still in STARTUP after 30 MB")
	}
}

// The paper's Fig. 2 rationale: BBR tolerates random loss that would
// collapse CUBIC's window.
func TestBBRLossToleranceVsCubic(t *testing.T) {
	const lossP = 0.01
	size := int64(20 << 20)
	fB, _ := runBBRFlow(t, size, 1e8, 50*time.Millisecond, 1, lossP, func(f *tcp.Flow) {
		f.Sender.SetController(bbr.New(f.Sender, bbr.DefaultOptions()))
	})
	fC, _ := runBBRFlow(t, size, 1e8, 50*time.Millisecond, 1, lossP, func(f *tcp.Flow) {
		f.Sender.SetController(cubic.New(f.Sender, cubic.DefaultOptions()))
	})
	if !fB.Done() || !fC.Done() {
		t.Fatal("flows did not complete")
	}
	t.Logf("1%% loss, 20MB: bbr=%v cubic=%v", fB.FCT(), fC.FCT())
	if fB.FCT() >= fC.FCT() {
		t.Errorf("BBR (%v) should beat CUBIC (%v) under 1%% random loss", fB.FCT(), fC.FCT())
	}
}

func TestBBRStartupFasterRampThanCubicSS(t *testing.T) {
	// BBR's 2.885 gain grows inflight a bit faster than doubling; its
	// 1 MB FCT on a fat path should be in the same ballpark as CUBIC
	// (both ~few RTTs). Sanity, not superiority: paper Fig. 1 shows
	// both underutilize early.
	size := int64(1 << 20)
	fB, _ := runBBRFlow(t, size, 1e8, 75*time.Millisecond, 1, 0, func(f *tcp.Flow) {
		f.Sender.SetController(bbr.New(f.Sender, bbr.DefaultOptions()))
	})
	if !fB.Done() {
		t.Fatal("flow did not complete")
	}
	if fB.FCT() > 2*time.Second {
		t.Errorf("BBR 1MB FCT = %v, startup is broken", fB.FCT())
	}
}

func TestBBR2CompletesUnderLoss(t *testing.T) {
	f, _ := runBBRFlow(t, 8<<20, 5e7, 25*time.Millisecond, 0.5, 0.005, func(f *tcp.Flow) {
		f.Sender.SetController(bbr.New(f.Sender, bbr.V2Options()))
	})
	if !f.Done() {
		t.Fatal("BBRv2 flow did not complete")
	}
	if f.Receiver.Received() != 8<<20 {
		t.Errorf("received %d", f.Receiver.Received())
	}
}
