package bbr

import (
	"testing"
	"time"

	"suss/internal/cc"
)

type fakeEnv struct {
	now time.Duration
	mss int
}

type fakeTimer struct{}

func (fakeTimer) Stop() bool   { return false }
func (fakeTimer) Active() bool { return false }

func (f *fakeEnv) Now() time.Duration                           { return f.now }
func (f *fakeEnv) Schedule(d time.Duration, fn func()) cc.Timer { return fakeTimer{} }
func (f *fakeEnv) Kick()                                        {}
func (f *fakeEnv) MSS() int                                     { return f.mss }

// driveRounds feeds n synthetic rounds at the given delivery rate
// (bits/sec) and RTT.
func driveRounds(b *BBR, env *fakeEnv, n int, rate float64, rtt time.Duration, inflight int64) {
	bytesPerRound := int64(rate / 8 * rtt.Seconds())
	var cum, delivered int64 = 1, 0
	for i := 0; i < n; i++ {
		env.now += rtt
		delivered += bytesPerRound
		cum += bytesPerRound
		b.OnAck(cc.AckEvent{
			Now:        env.now,
			AckedBytes: int(bytesPerRound),
			CumAck:     cum,
			SndNxt:     cum + bytesPerRound/2,
			RTT:        rtt,
			Inflight:   inflight,
			Delivered:  delivered,
			BW:         rate,
		})
	}
}

func TestStartupUsesHighGain(t *testing.T) {
	env := &fakeEnv{mss: 1448}
	b := New(env, DefaultOptions())
	if b.State() != "STARTUP" {
		t.Fatalf("initial state %s", b.State())
	}
	if b.PacingRate() != 0 {
		t.Error("no pacing before the first bandwidth sample")
	}
	driveRounds(b, env, 2, 1e8, 100*time.Millisecond, 1<<20)
	bw := b.BtlBw()
	if bw == 0 {
		t.Fatal("no bandwidth estimate after two rounds")
	}
	if got := b.PacingRate(); got < bw*2.8 || got > bw*2.9 {
		t.Errorf("startup pacing rate = %v, want ≈2.885×%v", got, bw)
	}
}

func TestStartupExitsWhenPipeFull(t *testing.T) {
	env := &fakeEnv{mss: 1448}
	b := New(env, DefaultOptions())
	// Constant delivery rate: growth stalls, STARTUP must end within
	// a handful of rounds and drain toward PROBE_BW.
	driveRounds(b, env, 10, 1e8, 100*time.Millisecond, 8<<20)
	if b.State() == "STARTUP" {
		t.Fatalf("still in STARTUP after 10 flat rounds")
	}
	// Drain completes once inflight ≤ BDP (≈1.25 MB).
	driveRounds(b, env, 3, 1e8, 100*time.Millisecond, 1<<20)
	if b.State() != "PROBE_BW" {
		t.Errorf("state = %s, want PROBE_BW", b.State())
	}
}

func TestCwndTracksBDP(t *testing.T) {
	env := &fakeEnv{mss: 1448}
	b := New(env, DefaultOptions())
	driveRounds(b, env, 10, 1e8, 100*time.Millisecond, 1<<20)
	bdp := 1e8 / 8 * 0.1
	w := float64(b.CwndBytes())
	if w < 1.5*bdp || w > 2.5*bdp {
		t.Errorf("cwnd = %v, want ≈2×BDP (%v)", w, 2*bdp)
	}
}

func TestProbeRTTAfterWindowExpiry(t *testing.T) {
	env := &fakeEnv{mss: 1448}
	b := New(env, DefaultOptions())
	driveRounds(b, env, 10, 1e8, 100*time.Millisecond, 1<<20)
	if b.State() != "PROBE_BW" {
		t.Fatalf("setup failed: %s", b.State())
	}
	// 10+ seconds without a new min sample → PROBE_RTT. Samples keep
	// arriving at a higher RTT so the windowed min expires.
	for i := 0; i < 120; i++ {
		driveRounds(b, env, 1, 1e8, 110*time.Millisecond, 1<<20)
		if b.State() == "PROBE_RTT" {
			break
		}
	}
	if b.State() != "PROBE_RTT" {
		t.Fatalf("never entered PROBE_RTT")
	}
	if got := b.CwndBytes(); got != 4*1448 {
		t.Errorf("PROBE_RTT cwnd = %d, want 4 segments", got)
	}
	// After ~200 ms it returns to PROBE_BW.
	driveRounds(b, env, 3, 1e8, 100*time.Millisecond, 4*1448)
	if b.State() != "PROBE_BW" {
		t.Errorf("state after probe = %s, want PROBE_BW", b.State())
	}
}

func TestV1IgnoresLoss(t *testing.T) {
	env := &fakeEnv{mss: 1448}
	b := New(env, DefaultOptions())
	driveRounds(b, env, 10, 1e8, 100*time.Millisecond, 1<<20)
	before := b.CwndBytes()
	b.OnLoss(cc.LossEvent{Now: env.now, Inflight: 1 << 20, LostBytes: 3 * 1448})
	if b.CwndBytes() != before {
		t.Errorf("BBRv1 cwnd changed on loss: %d → %d", before, b.CwndBytes())
	}
}

func TestV2LossBoundsInflight(t *testing.T) {
	env := &fakeEnv{mss: 1448}
	b := New(env, V2Options())
	driveRounds(b, env, 10, 1e8, 100*time.Millisecond, 1<<20)
	before := b.CwndBytes()
	b.OnLoss(cc.LossEvent{Now: env.now, Inflight: before, LostBytes: 3 * 1448})
	after := b.CwndBytes()
	if after >= before {
		t.Errorf("BBRv2 cwnd not reduced on loss: %d → %d", before, after)
	}
	want := int64(float64(before) * 0.7)
	if after < want-1448 || after > want+1448 {
		t.Errorf("cwnd = %d, want ≈0.7×%d", after, before)
	}
	// Loss-free rounds relax the ceiling again.
	driveRounds(b, env, 20, 1e8, 100*time.Millisecond, 1<<20)
	if b.CwndBytes() <= after {
		t.Error("ceiling never relaxed after loss-free rounds")
	}
}

func TestProbeBWGainCycle(t *testing.T) {
	env := &fakeEnv{mss: 1448}
	b := New(env, DefaultOptions())
	driveRounds(b, env, 10, 1e8, 100*time.Millisecond, 1<<20)
	if b.State() != "PROBE_BW" {
		t.Fatalf("setup failed: %s", b.State())
	}
	seen := map[float64]bool{}
	for i := 0; i < 16; i++ {
		driveRounds(b, env, 1, 1e8, 100*time.Millisecond, 1<<20)
		seen[b.pacingGain] = true
	}
	if !seen[1.25] || !seen[0.75] || !seen[1.0] {
		t.Errorf("gain cycle incomplete: %v", seen)
	}
}

func TestAppLimitedSamplesDontDropEstimate(t *testing.T) {
	env := &fakeEnv{mss: 1448}
	b := New(env, DefaultOptions())
	driveRounds(b, env, 6, 1e8, 100*time.Millisecond, 1<<20)
	bw := b.BtlBw()
	// App-limited rounds delivering a trickle must not lower BtlBw.
	bytesPerRound := int64(1e6 / 8 * 0.1)
	cum := int64(1e18 / 2)
	delivered := int64(1e12)
	for i := 0; i < 5; i++ {
		env.now += 100 * time.Millisecond
		delivered += bytesPerRound
		cum += bytesPerRound
		b.OnAck(cc.AckEvent{
			Now: env.now, AckedBytes: int(bytesPerRound), CumAck: cum,
			SndNxt: cum + 1, RTT: 100 * time.Millisecond,
			Inflight: 1448, Delivered: delivered, AppLimited: true,
		})
	}
	if b.BtlBw() < bw*0.99 {
		t.Errorf("app-limited rounds dropped BtlBw: %v → %v", bw, b.BtlBw())
	}
}
