// Package bbr implements model-based congestion control baselines:
// BBRv1 (Cardwell et al., "BBR: Congestion-based congestion control")
// and a BBRv2-lite variant with loss-bounded inflight. The paper uses
// BBR purely as a comparison curve — pacing-smooth startup with ~2.89×
// gain, loss tolerance, and PROBE_BW steady state — which these models
// reproduce.
package bbr

import (
	"time"

	"suss/internal/cc"
	"suss/internal/obs"
)

// state is the BBR state machine phase.
type state int

const (
	stateStartup state = iota
	stateDrain
	stateProbeBW
	stateProbeRTT
)

func (s state) String() string {
	switch s {
	case stateStartup:
		return "STARTUP"
	case stateDrain:
		return "DRAIN"
	case stateProbeBW:
		return "PROBE_BW"
	case stateProbeRTT:
		return "PROBE_RTT"
	default:
		return "?"
	}
}

const (
	highGain        = 2.885 // 2/ln(2)
	drainGain       = 1 / highGain
	cwndGain        = 2.0
	bwWindowRounds  = 10
	rttWindow       = 10 * time.Second
	probeRTTDur     = 200 * time.Millisecond
	minCwndSegments = 4
	// STARTUP exits when bandwidth grew < 25% for three consecutive
	// rounds (the pipe is full).
	startupGrowthTarget = 1.25
	startupFullRounds   = 3
)

// Options selects the variant.
type Options struct {
	// V2 enables the BBRv2-lite loss response: on a loss event the
	// inflight ceiling drops to Beta × the current inflight, bounding
	// cwnd until bandwidth probes raise it again.
	V2 bool
	// Beta is the v2 inflight reduction factor (default 0.7, matching
	// BBRv2's loss response).
	Beta float64
	// IW is the initial window in segments (default 10).
	IW int
	// SUSSStartup enables the paper's §7 future-work integration:
	// SUSS-style growth prediction doubles STARTUP's gains on rounds
	// where continued exponential growth is predicted (see sussBoost).
	SUSSStartup bool
}

// DefaultOptions returns BBRv1 settings.
func DefaultOptions() Options { return Options{Beta: 0.7, IW: 10} }

// V2Options returns the BBRv2-lite settings.
func V2Options() Options { return Options{V2: true, Beta: 0.7, IW: 10} }

// SUSSOptions returns BBRv1 with the SUSS-accelerated STARTUP.
func SUSSOptions() Options { return Options{Beta: 0.7, IW: 10, SUSSStartup: true} }

// BBR is a cc.Controller.
type BBR struct {
	env cc.Env
	opt Options

	st         state
	bwFilter   *cc.WindowedMax // bits/sec, windowed over rounds
	minRTT     *cc.WindowedMinRTT
	round      uint64
	roundEnd   int64
	roundStart time.Duration
	roundDeliv int64 // Delivered at round start

	pacingGain float64
	cycleIdx   int
	cycleStamp time.Duration

	fullBW       float64
	fullBWRounds int
	filledPipe   bool

	probeRTTStart time.Duration
	probeRTTDone  bool

	inflightHi float64 // v2 loss-bounded ceiling in bytes (0 = none)

	lastInflight  int64
	appLimited    bool
	lossThisRound bool
	inRecovery    bool
	lossRounds    int // consecutive STARTUP rounds with loss

	boost *sussBoost // nil unless Options.SUSSStartup

	// undo snapshots the model state at the last OnRTO so a spurious
	// timeout can be reverted (cc.Undoer).
	undo bbrUndo

	// rec, when non-nil, receives STARTUP round and boost events.
	rec *obs.FlowRecorder
}

// AttachRecorder installs a flight recorder on this controller. Pass
// nil to detach.
func (b *BBR) AttachRecorder(r *obs.FlowRecorder) { b.rec = r }

// New creates a BBR controller.
func New(env cc.Env, opt Options) *BBR {
	if opt.Beta == 0 {
		opt.Beta = 0.7
	}
	if opt.IW == 0 {
		opt.IW = 10
	}
	b := &BBR{
		env:        env,
		opt:        opt,
		st:         stateStartup,
		bwFilter:   cc.NewWindowedMax(bwWindowRounds),
		minRTT:     cc.NewWindowedMinRTT(rttWindow),
		pacingGain: highGain,
	}
	if opt.SUSSStartup {
		b.boost = &sussBoost{}
	}
	return b
}

// Name implements cc.Controller.
func (b *BBR) Name() string {
	if b.opt.V2 {
		return "bbr2"
	}
	if b.opt.SUSSStartup {
		return "bbr+suss"
	}
	return "bbr"
}

// BoostedRounds returns how many STARTUP rounds ran with doubled gains
// (0 unless Options.SUSSStartup).
func (b *BBR) BoostedRounds() int {
	if b.boost == nil {
		return 0
	}
	return b.boost.Boosts
}

// Round returns the round-trip counter (diagnostics).
func (b *BBR) Round() uint64 { return b.round }

// State returns the current phase name (for traces).
func (b *BBR) State() string { return b.st.String() }

// BtlBw returns the bottleneck bandwidth estimate in bits/sec.
func (b *BBR) BtlBw() float64 { return b.bwFilter.Get() }

// InSlowStart implements cc.Controller: STARTUP is BBR's slow start.
func (b *BBR) InSlowStart() bool { return b.st == stateStartup }

// bdpBytes returns the estimated bandwidth-delay product in bytes.
func (b *BBR) bdpBytes() float64 {
	bw := b.bwFilter.Get()
	rtt := b.minRTT.Get()
	if bw == 0 || rtt == 0 {
		return 0
	}
	return bw / 8 * rtt.Seconds()
}

// CwndBytes implements cc.Controller.
func (b *BBR) CwndBytes() int64 {
	mss := int64(b.env.MSS())
	if b.st == stateProbeRTT {
		return minCwndSegments * mss
	}
	bdp := b.bdpBytes()
	if bdp == 0 {
		return int64(b.opt.IW) * mss
	}
	g := cwndGain
	if b.boost != nil && b.st == stateStartup {
		g *= b.boost.gainMultiplier()
	}
	w := g * bdp
	if b.opt.V2 && b.inflightHi > 0 && w > b.inflightHi {
		w = b.inflightHi
	}
	// Packet conservation during fast recovery (as the kernel's BBR
	// does): hold the window near the current flight so retransmits
	// drain the queue instead of chasing it.
	if b.inRecovery {
		cap := float64(b.lastInflight) + 3*float64(mss)
		if w > cap {
			w = cap
		}
	}
	if w < minCwndSegments*float64(mss) {
		w = minCwndSegments * float64(mss)
	}
	return int64(w)
}

// PacingRate implements cc.Controller.
func (b *BBR) PacingRate() float64 {
	bw := b.bwFilter.Get()
	if bw == 0 {
		return 0 // no estimate yet: release the IW unpaced
	}
	g := b.pacingGain
	if b.boost != nil && b.st == stateStartup {
		g *= b.boost.gainMultiplier()
	}
	return g * bw
}

// OnPacketSent implements cc.Controller.
func (b *BBR) OnPacketSent(now time.Duration, size int, seq int64, retrans bool) {}

// OnAck implements cc.Controller.
func (b *BBR) OnAck(ev cc.AckEvent) {
	// Expiry must be observed before the sample refreshes the filter
	// (the kernel checks filter_expired first, then updates min_rtt):
	// otherwise the first post-expiry sample would mask the need to
	// ProbeRTT.
	rttExpired := b.minRTT.Expired(ev.Now)
	if ev.RTT > 0 {
		b.minRTT.Update(ev.RTT, ev.Now)
	}
	b.lastInflight = ev.Inflight
	b.appLimited = ev.AppLimited
	b.inRecovery = ev.InRecovery
	if ev.InRecovery {
		b.lossThisRound = true
	}

	// Per-ACK delivery-rate sampling (RFC-style flight samples from the
	// transport); app-limited samples may only raise the estimate.
	if ev.BW > 0 && (!b.appLimited || ev.BW > b.bwFilter.Get()) {
		b.bwFilter.Update(ev.BW, b.round)
	}

	if b.boost != nil {
		b.boost.onAck(ev, b.round)
	}

	// Round accounting: full-pipe detection and ceiling probes happen
	// once per round trip.
	if ev.CumAck > b.roundEnd || b.round == 0 {
		b.round++
		if b.boost != nil {
			b.boost.onRoundStart(ev.Now, b.round, b.st == stateStartup && !b.filledPipe, b.bwFilter.Get())
			// The boosted flag for the new round is now decided; a
			// SUSS-boosted STARTUP round is this package's EvSussBoost.
			if b.boost.boosted {
				if r := b.rec; r != nil {
					r.C.SussBoosts++
					r.Record(ev.Now, obs.EvSussBoost, 0, 0, int64(boostGain*100), 0)
				}
			}
		}
		b.roundEnd = ev.SndNxt
		b.roundStart = ev.Now
		b.roundDeliv = ev.Delivered
		b.checkFullPipe()
		if b.lossThisRound {
			if b.st == stateStartup {
				b.lossRounds++
				// Sustained loss during STARTUP means the pipe (plus
				// buffer) is full even if competition noise keeps the
				// bandwidth filter creeping: stop the 2.885× gain
				// (BBRv2 behaviour; v1's plateau check alone can stall
				// in this state forever).
				if b.lossRounds >= 3 {
					b.filledPipe = true
				}
			}
		} else {
			b.lossRounds = 0
			b.relaxCeiling()
		}
		b.lossThisRound = false
	}

	b.advanceStateMachine(ev, rttExpired)
}

func (b *BBR) checkFullPipe() {
	if b.filledPipe || b.appLimited {
		return
	}
	bw := b.bwFilter.Get()
	if bw >= b.fullBW*startupGrowthTarget || b.fullBW == 0 {
		b.fullBW = bw
		b.fullBWRounds = 0
		return
	}
	b.fullBWRounds++
	if b.fullBWRounds >= startupFullRounds {
		b.filledPipe = true
	}
}

func (b *BBR) advanceStateMachine(ev cc.AckEvent, rttExpired bool) {
	now := ev.Now
	switch b.st {
	case stateStartup:
		if b.filledPipe {
			b.st = stateDrain
			b.pacingGain = drainGain
		}
	case stateDrain:
		if float64(ev.Inflight) <= b.bdpBytes() {
			b.enterProbeBW(now)
		}
	case stateProbeBW:
		// Advance the gain cycle roughly once per minRTT.
		if rtt := b.minRTT.Get(); rtt > 0 && now-b.cycleStamp > rtt {
			// Hold the 0.75 phase only until inflight drains to BDP.
			if b.cycleIdx != 1 || float64(ev.Inflight) <= b.bdpBytes() {
				b.cycleIdx = (b.cycleIdx + 1) % 8
				b.cycleStamp = now
				b.pacingGain = probeBWGains[b.cycleIdx]
			}
		}
		if rttExpired {
			b.st = stateProbeRTT
			b.probeRTTStart = now
			b.pacingGain = 1
		}
	case stateProbeRTT:
		if now-b.probeRTTStart >= probeRTTDur {
			if b.filledPipe {
				b.enterProbeBW(now)
			} else {
				b.st = stateStartup
				b.pacingGain = highGain
			}
		}
	}
}

var probeBWGains = [8]float64{1.25, 0.75, 1, 1, 1, 1, 1, 1}

func (b *BBR) enterProbeBW(now time.Duration) {
	b.st = stateProbeBW
	b.cycleIdx = 2 // start in a cruise phase, as the reference does
	b.cycleStamp = now
	b.pacingGain = probeBWGains[b.cycleIdx]
}

// OnLoss implements cc.Controller. BBRv1 deliberately does not react
// to individual losses; BBRv2-lite lowers its inflight ceiling.
// bbrUndo is the pre-RTO model snapshot for cc.Undoer. BBR's cwnd is
// derived from the BtlBw/RTprop model each ACK, so undoing means
// restoring the model inputs an RTO resets, not a window value.
type bbrUndo struct {
	valid        bool
	fullBW       float64
	fullBWRounds int
	filledPipe   bool
	inflightHi   float64
}

func (b *BBR) OnLoss(ev cc.LossEvent) {
	b.undo.valid = false // real congestion: the pre-RTO state is stale
	b.lossThisRound = true
	if b.boost != nil {
		b.boost.disable()
	}
	if !b.opt.V2 {
		return
	}
	hi := float64(ev.Inflight) * b.opt.Beta
	mss := float64(b.env.MSS())
	if hi < minCwndSegments*mss {
		hi = minCwndSegments * mss
	}
	if b.inflightHi == 0 || hi < b.inflightHi {
		b.inflightHi = hi
	}
	// Repeated early loss also ends STARTUP in v2.
	if b.st == stateStartup {
		b.filledPipe = true
	}
}

// OnRTO implements cc.Controller: conservative restart. A timeout
// during STARTUP is a definitive full-pipe signal — the 2.885× gain
// has nothing left to discover.
func (b *BBR) OnRTO(now time.Duration) {
	b.undo = bbrUndo{
		valid:        true,
		fullBW:       b.fullBW,
		fullBWRounds: b.fullBWRounds,
		filledPipe:   b.filledPipe,
		inflightHi:   b.inflightHi,
	}
	if b.st == stateStartup {
		b.filledPipe = true
	}
	b.lossThisRound = true
	b.fullBW = 0
	b.fullBWRounds = 0
	if b.opt.V2 {
		b.inflightHi = 0
	}
}

// UndoRTO implements cc.Undoer: restore the model inputs the most
// recent OnRTO reset. No-op once the undo window closed (a real
// OnLoss since, or already undone). The bandwidth filter itself was
// never cleared, so restoring the full-pipe tracker is enough.
func (b *BBR) UndoRTO(now time.Duration) {
	if !b.undo.valid {
		return
	}
	u := b.undo
	b.undo.valid = false
	b.fullBW = u.fullBW
	b.fullBWRounds = u.fullBWRounds
	b.filledPipe = u.filledPipe
	b.inflightHi = u.inflightHi
}

// relaxCeiling additively probes the v2 inflight ceiling upward after
// every loss-free round, so a transient loss episode does not cap the
// flow forever.
func (b *BBR) relaxCeiling() {
	if b.opt.V2 && b.inflightHi > 0 {
		b.inflightHi += float64(b.env.MSS())
	}
}
