package bbr

import (
	"time"

	"suss/internal/cc"
)

// sussBoost implements the paper's §7 future-work direction:
// integrating SUSS's growth prediction with BBR's STARTUP. BBR, like
// CUBIC, roughly doubles its in-flight data per round during STARTUP
// (the 2/ln 2 pacing gain against a one-round-delayed bandwidth
// estimate), so it under-utilizes large-BDP paths in the early RTTs
// for exactly the reason §1 describes.
//
// Adapting SUSS's two conditions to BBR is not a transliteration:
// because BBR paces every flight across the whole round, there is no
// compressed ACK train to measure — ΔtBat ≈ RTT always, and Condition
// 1 in its CUBIC form never fires. The equivalent BBR-native signal
// for "exponential growth continues next round" is the bandwidth
// estimate itself:
//
//   - Condition 1: the windowed bandwidth estimate grew by ≥ 50 % over
//     the last round (the doubling feedback loop is still running; as
//     the pipe fills the estimate plateaus and the condition fails,
//     exactly as the ACK train lengthening stops CUBIC's SUSS).
//   - Condition 2: the round's minimum RTT, extrapolated one round
//     forward, must stay below 1.125 × minRTT (unchanged).
//
// When both hold, the round's gains are doubled: pacing_gain
// 2.885 → 5.77 and cwnd_gain 2 → 4, so the flight quadruples per round
// instead of doubling. The burst-control half of SUSS is unnecessary
// here — BBR's native pacing already spreads the extra packets, which
// is why the paper calls the integration "promising". Any loss or
// the end of STARTUP permanently disables the boost.
type sussBoost struct {
	minRTT      time.Duration
	minRTTRound uint64

	moRTT       time.Duration
	roundStartT time.Duration
	lastBW      float64 // bandwidth estimate at the last round start

	boosted  bool // current round runs with doubled gains
	disabled bool

	// Boosts counts accelerated rounds (for experiments).
	Boosts int
}

const (
	// boostGrowthThresh is the per-round bandwidth-estimate growth that
	// signals the doubling loop is still running (doubling gives 2.0;
	// 1.5 tolerates sampling noise while still failing fast at the
	// plateau).
	boostGrowthThresh = 1.5
	boostDelayFactor  = 1.125
	boostGain         = 2.0
)

// onAck processes measurement updates; call before the round
// bookkeeping rolls.
func (sb *sussBoost) onAck(ev cc.AckEvent, round uint64) {
	if ev.RTT <= 0 {
		return
	}
	if sb.minRTT == 0 || ev.RTT < sb.minRTT {
		sb.minRTT = ev.RTT
		sb.minRTTRound = round
	}
	if sb.moRTT == 0 || ev.RTT < sb.moRTT {
		sb.moRTT = ev.RTT
	}
}

// onRoundStart rolls the round state and decides whether to boost the
// new round. now is the ACK time that crossed the boundary; bwNow is
// the current windowed bandwidth estimate (bits/sec).
func (sb *sussBoost) onRoundStart(now time.Duration, round uint64, inStartup bool, bwNow float64) {
	prevMoRTT := sb.moRTT
	prevBW := sb.lastBW

	sb.boosted = false
	if !sb.disabled && inStartup && sb.minRTT > 0 && prevBW > 0 && bwNow > 0 {
		// Condition 1 (BBR form): the estimate is still growing
		// near-exponentially, so next round's growth is predicted to
		// continue.
		c1 := bwNow >= boostGrowthThresh*prevBW
		// Condition 2 (Eq. 8): extrapolate the observed queueing drift.
		c2 := true
		r := round - sb.minRTTRound
		if r > 0 && prevMoRTT > 0 {
			projected := prevMoRTT + time.Duration(float64(prevMoRTT-sb.minRTT)/float64(r))
			c2 = float64(projected) <= boostDelayFactor*float64(sb.minRTT)
		}
		if c1 && c2 {
			sb.boosted = true
			sb.Boosts++
		}
	}

	sb.roundStartT = now
	sb.lastBW = bwNow
	sb.moRTT = 0
}

// gainMultiplier returns the factor applied to STARTUP's pacing and
// cwnd gains this round.
func (sb *sussBoost) gainMultiplier() float64 {
	if sb.boosted {
		return boostGain
	}
	return 1
}

// disable turns the boost off for the rest of the connection (loss, or
// STARTUP ended).
func (sb *sussBoost) disable() {
	sb.disabled = true
	sb.boosted = false
}
