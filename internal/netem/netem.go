// Package netem provides link impairment models in the spirit of the
// Linux Traffic Control netem qdisc, which the paper uses on its local
// testbed's bottleneck router, plus stochastic bandwidth-variation
// models that stand in for the paper's real wireless last hops
// (Wi-Fi, 4G, 5G).
//
// All randomness is drawn from caller-supplied *rand.Rand instances so
// simulations are reproducible from a seed.
package netem

import (
	"math"
	"math/rand"
	"time"

	"suss/internal/netsim"
)

// Constant returns a fixed-rate RateFunc. It exists so scenario code
// can treat every last hop uniformly as a rate model.
func Constant(bps float64) netsim.RateFunc {
	return func(time.Duration) float64 { return bps }
}

// Step returns a RateFunc that switches from before to after at the
// given time — the Appendix B BtlBw step-change experiment.
func Step(before, after float64, at time.Duration) netsim.RateFunc {
	return func(now time.Duration) float64 {
		if now < at {
			return before
		}
		return after
	}
}

// VariableRate models a wireless link whose capacity wanders around a
// mean. The rate follows a mean-reverting random walk (a discretized
// Ornstein-Uhlenbeck process) sampled on a fixed update interval, and
// is clamped to [Floor, Ceil]. The walk advances lazily as the link
// asks for the rate, so it costs nothing when idle.
type VariableRate struct {
	Mean float64 // long-run average, bits/sec
	// RelStdDev is the standard deviation of the stationary
	// distribution relative to Mean (e.g. 0.3 for heavy 4G variation).
	RelStdDev float64
	// Reversion in (0,1] is the pull toward the mean per update step;
	// small values give slowly-wandering capacity.
	Reversion float64
	// Interval between rate updates (e.g. 100 ms for cellular
	// scheduling granularity).
	Interval time.Duration
	// Floor and Ceil clamp the process. Floor must be > 0.
	Floor, Ceil float64

	rng     *rand.Rand
	current float64
	nextAt  time.Duration
}

// NewVariableRate builds a model with sensible defaults filled in:
// Reversion 0.2, Interval 100 ms, Floor Mean/8, Ceil 2×Mean.
func NewVariableRate(mean, relStdDev float64, rng *rand.Rand) *VariableRate {
	return &VariableRate{
		Mean:      mean,
		RelStdDev: relStdDev,
		Reversion: 0.2,
		Interval:  100 * time.Millisecond,
		Floor:     mean / 8,
		Ceil:      2 * mean,
		rng:       rng,
		current:   mean,
	}
}

// Rate implements netsim.RateFunc.
func (v *VariableRate) Rate(now time.Duration) float64 {
	for now >= v.nextAt {
		// OU step: x += k(mean-x) + sigma*sqrt(2k)*N(0,1); with the
		// stationary stddev sigma = RelStdDev*Mean.
		sigma := v.RelStdDev * v.Mean
		noise := v.rng.NormFloat64() * sigma * math.Sqrt(2*v.Reversion)
		v.current += v.Reversion*(v.Mean-v.current) + noise
		if v.current < v.Floor {
			v.current = v.Floor
		}
		if v.current > v.Ceil {
			v.current = v.Ceil
		}
		v.nextAt += v.Interval
	}
	return v.current
}

// Jitter returns a DelayFunc adding per-packet delay drawn uniformly
// from [0, max). Zero max returns nil (no jitter). Note that
// independent per-packet jitter destroys ACK-train compression (the
// spread of an n-packet train approaches max); use CorrelatedJitter
// for wireless links, where delay variation comes from scheduling and
// shifts whole bursts together.
func Jitter(max time.Duration, rng *rand.Rand) netsim.DelayFunc {
	if max <= 0 {
		return nil
	}
	return func(time.Duration, *netsim.Packet) time.Duration {
		return time.Duration(rng.Int63n(int64(max)))
	}
}

// CorrelatedJitter resamples a uniform [0, max) delay once per
// interval of virtual time and applies the same value to every packet
// inside the interval: packets of one burst shift together, so
// intra-train spacing (which HyStart and SUSS measure) survives, while
// RTT still varies across rounds — the behaviour of cellular/WiFi
// schedulers.
func CorrelatedJitter(max, interval time.Duration, rng *rand.Rand) netsim.DelayFunc {
	if max <= 0 {
		return nil
	}
	if interval <= 0 {
		interval = 20 * time.Millisecond
	}
	var current time.Duration
	var nextAt time.Duration
	return func(now time.Duration, _ *netsim.Packet) time.Duration {
		for now >= nextAt {
			current = time.Duration(rng.Int63n(int64(max)))
			nextAt += interval
		}
		return current
	}
}

// NormalJitter returns a DelayFunc with normally-distributed extra
// delay (mean, stddev), truncated at zero — the netem delay/jitter
// pair.
func NormalJitter(mean, stddev time.Duration, rng *rand.Rand) netsim.DelayFunc {
	return func(time.Duration, *netsim.Packet) time.Duration {
		d := time.Duration(float64(mean) + rng.NormFloat64()*float64(stddev))
		if d < 0 {
			d = 0
		}
		return d
	}
}

// Bernoulli returns a LossFunc dropping each packet independently with
// probability p. p ≤ 0 returns nil (no loss).
func Bernoulli(p float64, rng *rand.Rand) netsim.LossFunc {
	if p <= 0 {
		return nil
	}
	return func(*netsim.Packet) bool { return rng.Float64() < p }
}

// GilbertElliott is a two-state burst-loss model: in the Good state
// packets drop with probability LossGood (usually 0), in the Bad state
// with LossBad; transitions happen per packet with probabilities
// PGoodToBad and PBadToGood.
type GilbertElliott struct {
	PGoodToBad, PBadToGood float64
	LossGood, LossBad      float64

	rng *rand.Rand
	bad bool
}

// NewGilbertElliott builds the model in the Good state.
func NewGilbertElliott(pGB, pBG, lossGood, lossBad float64, rng *rand.Rand) *GilbertElliott {
	return &GilbertElliott{PGoodToBad: pGB, PBadToGood: pBG, LossGood: lossGood, LossBad: lossBad, rng: rng}
}

// Drop implements netsim.LossFunc.
func (g *GilbertElliott) Drop(*netsim.Packet) bool {
	if g.bad {
		if g.rng.Float64() < g.PBadToGood {
			g.bad = false
		}
	} else {
		if g.rng.Float64() < g.PGoodToBad {
			g.bad = true
		}
	}
	p := g.LossGood
	if g.bad {
		p = g.LossBad
	}
	return g.rng.Float64() < p
}

// LinkType enumerates the paper's four last-hop technologies.
type LinkType int

const (
	Wired LinkType = iota
	WiFi
	LTE4G
	NR5G
)

func (t LinkType) String() string {
	switch t {
	case Wired:
		return "wired"
	case WiFi:
		return "wifi"
	case LTE4G:
		return "4g"
	case NR5G:
		return "5g"
	default:
		return "unknown"
	}
}

// Profile bundles the impairments of a last-hop link technology.
type Profile struct {
	Type LinkType
	// MeanRate is the average downstream capacity in bits/sec.
	MeanRate float64
	// RelStdDev of the capacity process (0 for wired).
	RelStdDev float64
	// JitterMax is the upper bound of uniform per-packet jitter.
	JitterMax time.Duration
	// Loss is the random (non-congestion) loss probability.
	Loss float64
	// BufferBDPs sizes the last-hop buffer in bandwidth-delay
	// products; cellular links use deep buffers (see paper App. B,
	// Obs. 2).
	BufferBDPs float64
}

// DefaultProfile returns the calibrated profile for a link type at the
// given mean rate. The variation magnitudes follow the qualitative
// ordering the paper reports in Appendix B: 4G and WiFi show the
// largest BtlBw deviations, 5G moderate, wired none.
func DefaultProfile(t LinkType, meanRate float64) Profile {
	switch t {
	case Wired:
		return Profile{Type: t, MeanRate: meanRate, BufferBDPs: 1}
	case WiFi:
		return Profile{Type: t, MeanRate: meanRate, RelStdDev: 0.30, JitterMax: 3 * time.Millisecond, Loss: 1e-5, BufferBDPs: 1.5}
	case LTE4G:
		return Profile{Type: t, MeanRate: meanRate, RelStdDev: 0.35, JitterMax: 8 * time.Millisecond, Loss: 2e-5, BufferBDPs: 3}
	case NR5G:
		return Profile{Type: t, MeanRate: meanRate, RelStdDev: 0.20, JitterMax: 2 * time.Millisecond, Loss: 1e-5, BufferBDPs: 2}
	default:
		panic("netem: unknown link type")
	}
}

// Apply converts the profile into a netsim.LinkConfig for the last-hop
// link. oneWayDelay is the link's propagation delay; the drop-tail
// buffer is sized BufferBDPs × MeanRate × (2×pathOneWayDelay).
func (p Profile) Apply(name string, oneWayDelay, pathRTT time.Duration, rng *rand.Rand) netsim.LinkConfig {
	cfg := netsim.LinkConfig{
		Name:  name,
		Delay: oneWayDelay,
	}
	if p.RelStdDev > 0 {
		vr := NewVariableRate(p.MeanRate, p.RelStdDev, rng)
		cfg.RateModel = vr.Rate
	} else {
		cfg.Rate = p.MeanRate
	}
	cfg.Jitter = CorrelatedJitter(p.JitterMax, 20*time.Millisecond, rng)
	cfg.Loss = Bernoulli(p.Loss, rng)
	bdp := p.MeanRate / 8 * pathRTT.Seconds()
	buf := int(p.BufferBDPs * bdp)
	if buf < 64<<10 {
		buf = 64 << 10
	}
	cfg.QueueBytes = buf
	return cfg
}
