package netem

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"suss/internal/netsim"
)

// scriptedJudge runs a stage over a fixed packet schedule (1 ms
// spacing, alternating sizes) and renders every verdict into one
// line-per-packet string — the canonical form the determinism and
// golden tests compare.
func scriptedJudge(s netsim.ImpairStage, n int) string {
	var b strings.Builder
	pkt := &netsim.Packet{Kind: netsim.Data}
	for i := 0; i < n; i++ {
		now := time.Duration(i) * time.Millisecond
		pkt.Seq = int64(i) * 1448
		pkt.Size = 1500 - (i%2)*500
		v := s.Judge(now, pkt)
		fmt.Fprintf(&b, "%d drop=%v cause=%d extra=%d oob=%v dup=%v dupextra=%d\n",
			i, v.Drop, v.Cause, v.ExtraDelay, v.OutOfBand, v.Duplicate, v.DupExtraDelay)
	}
	return b.String()
}

// stageFactories builds every stochastic stage from a seed, so the
// tests can assert schedules are pure functions of the seed.
func stageFactories() map[string]func(seed int64) netsim.ImpairStage {
	return map[string]func(seed int64) netsim.ImpairStage{
		"reorder": func(seed int64) netsim.ImpairStage {
			return NewReorder(0.2, time.Millisecond, 10*time.Millisecond, rand.New(rand.NewSource(seed)))
		},
		"duplicate": func(seed int64) netsim.ImpairStage {
			return NewDuplicate(0.2, time.Millisecond, rand.New(rand.NewSource(seed)))
		},
		"corrupt": func(seed int64) netsim.ImpairStage {
			return NewCorrupt(0.1, rand.New(rand.NewSource(seed)))
		},
		"erasure-ge": func(seed int64) netsim.ImpairStage {
			return Erasure{Fn: NewGilbertElliott(0.05, 0.3, 0, 0.5, rand.New(rand.NewSource(seed))).Drop}
		},
		"flaps": func(seed int64) netsim.ImpairStage {
			return NewFlaps(20*time.Millisecond, 5*time.Millisecond, rand.New(rand.NewSource(seed)))
		},
	}
}

// TestImpairStageDeterminism: identical seeds produce byte-identical
// impairment schedules; different seeds diverge.
func TestImpairStageDeterminism(t *testing.T) {
	for name, mk := range stageFactories() {
		t.Run(name, func(t *testing.T) {
			a := scriptedJudge(mk(7), 500)
			b := scriptedJudge(mk(7), 500)
			if a != b {
				t.Fatal("same seed produced different schedules")
			}
			if c := scriptedJudge(mk(8), 500); c == a {
				t.Fatal("different seed produced an identical schedule")
			}
		})
	}
}

// TestScheduledStagesDeterministic: the RNG-free stages are pure
// functions of time.
func TestScheduledStagesDeterministic(t *testing.T) {
	mkOutage := func() netsim.ImpairStage {
		return &Outage{Windows: []Window{
			{Start: 10 * time.Millisecond, End: 20 * time.Millisecond},
			{Start: 100 * time.Millisecond, End: 130 * time.Millisecond},
		}}
	}
	if scriptedJudge(mkOutage(), 200) != scriptedJudge(mkOutage(), 200) {
		t.Error("outage schedule not deterministic")
	}
	mkStep := func() netsim.ImpairStage {
		return &RTTStep{Steps: []DelayStep{
			{At: 30 * time.Millisecond, Delta: 40 * time.Millisecond},
			{At: 90 * time.Millisecond, Delta: -15 * time.Millisecond},
		}}
	}
	got := scriptedJudge(mkStep(), 200)
	if got != scriptedJudge(mkStep(), 200) {
		t.Error("rtt-step schedule not deterministic")
	}
	// The cumulative delta must appear exactly at the step times.
	if !strings.Contains(got, "29 drop=false cause=0 extra=0 ") {
		t.Error("delta applied before its step time")
	}
	if !strings.Contains(got, fmt.Sprintf("30 drop=false cause=0 extra=%d ", 40*time.Millisecond)) {
		t.Error("delta missing at step time")
	}
	if !strings.Contains(got, fmt.Sprintf("90 drop=false cause=0 extra=%d ", 25*time.Millisecond)) {
		t.Error("negative delta not folded into the cumulative sum")
	}
}

// TestImpairGolden pins the exact impairment schedule for a fixed
// seed, plus a VariableRate sample trace: Go's math/rand stream is
// covered by the compatibility promise, so any hash change means the
// stages (or their draw order) changed behavior — exactly what the
// determinism contract forbids silently.
func TestImpairGolden(t *testing.T) {
	var b strings.Builder
	names := []string{"reorder", "duplicate", "corrupt", "erasure-ge", "flaps"}
	fac := stageFactories()
	for _, n := range names {
		b.WriteString(n + ":\n")
		b.WriteString(scriptedJudge(fac[n](42), 300))
	}
	b.WriteString("variable-rate:\n")
	vr := NewVariableRate(100e6, 0.3, rand.New(rand.NewSource(42)))
	for i := 0; i < 100; i++ {
		fmt.Fprintf(&b, "%d %.0f\n", i, vr.Rate(time.Duration(i)*50*time.Millisecond))
	}
	sum := sha256.Sum256([]byte(b.String()))
	const want = "aa1ffd15899e0516ea9316bae94053a47c40a376e21991c024c725fc14cdbcf0"
	if got := hex.EncodeToString(sum[:]); got != want {
		t.Fatalf("impairment schedule golden hash changed:\n got %s\nwant %s\n"+
			"(a deliberate behavior change must update the pinned hash)", got, want)
	}
}
