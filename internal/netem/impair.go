package netem

import (
	"math/rand"
	"time"

	"suss/internal/netsim"
	"suss/internal/obs"
)

// This file holds the composable impairment stages that plug into a
// link's netsim.Impairments pipeline. Every stochastic stage draws
// from its own caller-supplied *rand.Rand, so a pipeline's schedule is
// a pure function of its seeds and the packet sequence — and a stage
// with probability zero consumes draws from its private stream only,
// leaving every other stage (and the unimpaired simulation) untouched.

// Reorder delays a random subset of packets by an extra out-of-band
// interval, so they genuinely arrive behind their successors — the
// delay-based reordering model of the netem qdisc.
type Reorder struct {
	// Prob is the per-packet probability of being delayed.
	Prob float64
	// MinExtra/MaxExtra bound the extra delay, drawn uniformly from
	// [MinExtra, MaxExtra).
	MinExtra, MaxExtra time.Duration

	rng *rand.Rand
}

// NewReorder builds a reordering stage with its own RNG.
func NewReorder(prob float64, minExtra, maxExtra time.Duration, rng *rand.Rand) *Reorder {
	return &Reorder{Prob: prob, MinExtra: minExtra, MaxExtra: maxExtra, rng: rng}
}

// Name implements netsim.ImpairStage.
func (r *Reorder) Name() string { return "reorder" }

// Judge implements netsim.ImpairStage.
func (r *Reorder) Judge(now time.Duration, pkt *netsim.Packet) netsim.ImpairVerdict {
	if r.rng.Float64() >= r.Prob {
		return netsim.ImpairVerdict{}
	}
	extra := r.MinExtra
	if span := r.MaxExtra - r.MinExtra; span > 0 {
		extra += time.Duration(r.rng.Int63n(int64(span)))
	}
	return netsim.ImpairVerdict{ExtraDelay: extra, OutOfBand: true}
}

// Duplicate injects an extra copy of a random subset of packets,
// arriving a fixed interval after the original.
type Duplicate struct {
	// Prob is the per-packet duplication probability.
	Prob float64
	// Extra is how far behind the original the copy arrives.
	Extra time.Duration

	rng *rand.Rand
}

// NewDuplicate builds a duplication stage with its own RNG.
func NewDuplicate(prob float64, extra time.Duration, rng *rand.Rand) *Duplicate {
	return &Duplicate{Prob: prob, Extra: extra, rng: rng}
}

// Name implements netsim.ImpairStage.
func (d *Duplicate) Name() string { return "duplicate" }

// Judge implements netsim.ImpairStage.
func (d *Duplicate) Judge(now time.Duration, pkt *netsim.Packet) netsim.ImpairVerdict {
	if d.rng.Float64() >= d.Prob {
		return netsim.ImpairVerdict{}
	}
	return netsim.ImpairVerdict{Duplicate: true, DupExtraDelay: d.Extra}
}

// Corrupt models bit corruption. A corrupted packet fails its
// checksum and is discarded by the receiving NIC, so at this
// abstraction level corruption is an erasure — but it keeps its own
// obs.DropCause so the loss ledger can tell it from wire loss.
type Corrupt struct {
	// Prob is the per-packet corruption probability.
	Prob float64

	rng *rand.Rand
}

// NewCorrupt builds a corruption stage with its own RNG.
func NewCorrupt(prob float64, rng *rand.Rand) *Corrupt {
	return &Corrupt{Prob: prob, rng: rng}
}

// Name implements netsim.ImpairStage.
func (c *Corrupt) Name() string { return "corrupt" }

// Judge implements netsim.ImpairStage.
func (c *Corrupt) Judge(now time.Duration, pkt *netsim.Packet) netsim.ImpairVerdict {
	if c.rng.Float64() < c.Prob {
		return netsim.ImpairVerdict{Drop: true, Cause: obs.DropCorrupt}
	}
	return netsim.ImpairVerdict{}
}

// Erasure adapts any netsim.LossFunc (Bernoulli, GilbertElliott) into
// a pipeline stage, so burst-loss models compose with the other
// impairments instead of occupying the link's single Loss slot.
type Erasure struct {
	// Fn decides the drop; it owns whatever RNG it was built with.
	Fn netsim.LossFunc
}

// Name implements netsim.ImpairStage.
func (e Erasure) Name() string { return "erasure" }

// Judge implements netsim.ImpairStage.
func (e Erasure) Judge(now time.Duration, pkt *netsim.Packet) netsim.ImpairVerdict {
	if e.Fn(pkt) {
		return netsim.ImpairVerdict{Drop: true, Cause: obs.DropErasure}
	}
	return netsim.ImpairVerdict{}
}

// Window is a half-open interval [Start, End) of virtual time.
type Window struct {
	Start, End time.Duration
}

// Outage drops every packet inside its scheduled windows — a
// deterministic model of a link going dark (handover blackout,
// maintenance, cable pull).
type Outage struct {
	// Windows are the dark intervals, in ascending order.
	Windows []Window
}

// Name implements netsim.ImpairStage.
func (o *Outage) Name() string { return "outage" }

// Judge implements netsim.ImpairStage.
func (o *Outage) Judge(now time.Duration, pkt *netsim.Packet) netsim.ImpairVerdict {
	for _, w := range o.Windows {
		if now >= w.Start && now < w.End {
			return netsim.ImpairVerdict{Drop: true, Cause: obs.DropOutage}
		}
		if now < w.Start {
			break
		}
	}
	return netsim.ImpairVerdict{}
}

// Flaps models a link alternating between up and down states with
// exponentially-distributed durations — random short blackouts the
// way a flaky radio produces them. State advances lazily as packets
// are judged, from the stage's private RNG only.
type Flaps struct {
	// MeanUp / MeanDown are the mean durations of the two states.
	MeanUp, MeanDown time.Duration

	rng    *rand.Rand
	down   bool
	nextAt time.Duration
}

// NewFlaps builds a flapping stage with its own RNG. The link starts
// up (the first toggle at t=0 flips the initial down state to up and
// draws the first up duration).
func NewFlaps(meanUp, meanDown time.Duration, rng *rand.Rand) *Flaps {
	return &Flaps{MeanUp: meanUp, MeanDown: meanDown, rng: rng, down: true}
}

// Name implements netsim.ImpairStage.
func (f *Flaps) Name() string { return "flaps" }

// Judge implements netsim.ImpairStage.
func (f *Flaps) Judge(now time.Duration, pkt *netsim.Packet) netsim.ImpairVerdict {
	for now >= f.nextAt {
		f.down = !f.down
		mean := f.MeanUp
		if f.down {
			mean = f.MeanDown
		}
		f.nextAt += time.Duration(f.rng.ExpFloat64() * float64(mean))
	}
	if f.down {
		return netsim.ImpairVerdict{Drop: true, Cause: obs.DropOutage}
	}
	return netsim.ImpairVerdict{}
}

// DelayStep is one scheduled change in path delay.
type DelayStep struct {
	// At is when the change takes effect.
	At time.Duration
	// Delta is added to the path delay from At on (may be negative).
	Delta time.Duration
}

// RTTStep models abrupt route changes: the cumulative sum of all steps
// at or before now is added to every packet's propagation delay.
// Increases push arrivals out; decreases drain naturally through the
// link's FIFO clamp (in-band, so no spurious reordering).
type RTTStep struct {
	// Steps are the scheduled deltas, in ascending At order.
	Steps []DelayStep
}

// Name implements netsim.ImpairStage.
func (r *RTTStep) Name() string { return "rtt-step" }

// Judge implements netsim.ImpairStage.
func (r *RTTStep) Judge(now time.Duration, pkt *netsim.Packet) netsim.ImpairVerdict {
	var delta time.Duration
	for _, s := range r.Steps {
		if s.At > now {
			break
		}
		delta += s.Delta
	}
	return netsim.ImpairVerdict{ExtraDelay: delta}
}
