package netem

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestConstant(t *testing.T) {
	r := Constant(5e7)
	if r(0) != 5e7 || r(time.Hour) != 5e7 {
		t.Fatal("Constant rate not constant")
	}
}

func TestStep(t *testing.T) {
	r := Step(1e8, 2.5e7, time.Second)
	if got := r(999 * time.Millisecond); got != 1e8 {
		t.Errorf("before step: %v", got)
	}
	if got := r(time.Second); got != 2.5e7 {
		t.Errorf("at step: %v", got)
	}
}

func TestVariableRateBoundsAndMean(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	v := NewVariableRate(1e8, 0.3, rng)
	var sum float64
	n := 0
	for now := time.Duration(0); now < 10*time.Minute; now += 50 * time.Millisecond {
		r := v.Rate(now)
		if r < v.Floor || r > v.Ceil {
			t.Fatalf("rate %v outside [%v,%v]", r, v.Floor, v.Ceil)
		}
		sum += r
		n++
	}
	mean := sum / float64(n)
	if math.Abs(mean-1e8)/1e8 > 0.15 {
		t.Errorf("long-run mean %.3g deviates >15%% from 1e8", mean)
	}
}

func TestVariableRateDeterministic(t *testing.T) {
	run := func() []float64 {
		v := NewVariableRate(5e7, 0.25, rand.New(rand.NewSource(42)))
		var out []float64
		for now := time.Duration(0); now < 5*time.Second; now += 100 * time.Millisecond {
			out = append(out, v.Rate(now))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic at sample %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestVariableRateMonotonicQueriesOnly(t *testing.T) {
	// The model advances lazily; repeated queries at the same time must
	// return the same value.
	v := NewVariableRate(1e8, 0.3, rand.New(rand.NewSource(1)))
	a := v.Rate(time.Second)
	b := v.Rate(time.Second)
	if a != b {
		t.Fatalf("same-time queries differ: %v vs %v", a, b)
	}
}

func TestJitterBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	j := Jitter(10*time.Millisecond, rng)
	for i := 0; i < 1000; i++ {
		d := j(0, nil)
		if d < 0 || d >= 10*time.Millisecond {
			t.Fatalf("jitter %v outside [0,10ms)", d)
		}
	}
	if Jitter(0, rng) != nil {
		t.Error("zero jitter should return nil")
	}
}

func TestNormalJitterNonNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	j := NormalJitter(2*time.Millisecond, 5*time.Millisecond, rng)
	for i := 0; i < 1000; i++ {
		if j(0, nil) < 0 {
			t.Fatal("normal jitter went negative")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	p := 0.1
	l := Bernoulli(p, rng)
	drops := 0
	n := 100000
	for i := 0; i < n; i++ {
		if l(nil) {
			drops++
		}
	}
	got := float64(drops) / float64(n)
	if math.Abs(got-p) > 0.01 {
		t.Errorf("loss rate %v, want ≈%v", got, p)
	}
	if Bernoulli(0, rng) != nil {
		t.Error("zero loss should return nil")
	}
}

func TestGilbertElliottBursts(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := NewGilbertElliott(0.01, 0.2, 0, 0.5, rng)
	drops, runs, inRun := 0, 0, false
	n := 200000
	for i := 0; i < n; i++ {
		if g.Drop(nil) {
			drops++
			if !inRun {
				runs++
				inRun = true
			}
		} else {
			inRun = false
		}
	}
	if drops == 0 {
		t.Fatal("GE model never dropped")
	}
	// Bursty: average run length must exceed 1 (independent loss at the
	// same rate would give run length ≈ 1/(1-p) ≈ 1.03 for p≈0.024).
	avgRun := float64(drops) / float64(runs)
	if avgRun < 1.2 {
		t.Errorf("average loss-run length %.2f, expected bursty (>1.2)", avgRun)
	}
}

func TestDefaultProfiles(t *testing.T) {
	for _, lt := range []LinkType{Wired, WiFi, LTE4G, NR5G} {
		p := DefaultProfile(lt, 1e8)
		if p.MeanRate != 1e8 {
			t.Errorf("%v: mean rate %v", lt, p.MeanRate)
		}
		if p.BufferBDPs <= 0 {
			t.Errorf("%v: non-positive buffer", lt)
		}
	}
	if DefaultProfile(Wired, 1e8).RelStdDev != 0 {
		t.Error("wired should have no rate variation")
	}
	if DefaultProfile(LTE4G, 1e8).RelStdDev <= DefaultProfile(NR5G, 1e8).RelStdDev {
		t.Error("4G should vary more than 5G (paper App. B)")
	}
}

func TestProfileApply(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p := DefaultProfile(LTE4G, 5e7)
	cfg := p.Apply("last", 5*time.Millisecond, 200*time.Millisecond, rng)
	if cfg.RateModel == nil {
		t.Fatal("4G profile must install a rate model")
	}
	if cfg.Jitter == nil {
		t.Fatal("4G profile must install jitter")
	}
	// Buffer = 3 BDP of 50 Mbps × 200 ms = 3 × 1.25 MB.
	wantBuf := int(3 * 5e7 / 8 * 0.2)
	if cfg.QueueBytes != wantBuf {
		t.Errorf("buffer = %d, want %d", cfg.QueueBytes, wantBuf)
	}

	w := DefaultProfile(Wired, 5e7).Apply("wired", time.Millisecond, 100*time.Millisecond, rng)
	if w.RateModel != nil || w.Jitter != nil || w.Loss != nil {
		t.Error("wired profile should have no impairments")
	}
	if w.Rate != 5e7 {
		t.Errorf("wired rate = %v", w.Rate)
	}
}

func TestLinkTypeString(t *testing.T) {
	want := map[LinkType]string{Wired: "wired", WiFi: "wifi", LTE4G: "4g", NR5G: "5g"}
	for lt, s := range want {
		if lt.String() != s {
			t.Errorf("%d.String() = %q, want %q", lt, lt.String(), s)
		}
	}
}

// Property: VariableRate stays within bounds for any seed/params.
func TestVariableRateBoundsProperty(t *testing.T) {
	f := func(seed int64, rel uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		relStd := float64(rel%60)/100 + 0.05
		v := NewVariableRate(1e8, relStd, rng)
		for now := time.Duration(0); now < time.Minute; now += 100 * time.Millisecond {
			r := v.Rate(now)
			if r < v.Floor || r > v.Ceil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
