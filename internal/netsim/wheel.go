package netsim

// The pending-timer index: a hierarchical timing wheel (Varghese &
// Lauck) over the slot arena in sim.go, replacing the former binary
// heap whose siftUp/siftDown churn dominated hot-path profiles. TCP
// timers are the textbook "cancelled before firing" workload — every
// ACK stops and rearms the RTO, every paced packet arms a kick — and
// the wheel makes all three mutations O(1): insert links the slot
// onto a bucket tail, Stop/Reset unlink it, no comparisons anywhere.
//
// Geometry: 7 levels × 64 slots, 1 ns ticks. Level L buckets are
// 64^L ns wide, so the wheel spans 64^7 ns ≈ 73 minutes of future;
// deadlines beyond that go to a small unsorted overflow list with a
// cached minimum (far-future deadlines are rare — the longest real
// timer is a backed-off RTO — so the overflow is a safety net, not a
// hot structure). Deadlines are placed by their delta to the wheel
// cursor `cur`: level = floor(log64(delta)), slot = the level-L digit
// of the absolute deadline. Level 0 is exact — every event in a
// level-0 bucket shares one deadline — which is what lets Run
// dispatch a bucket as one same-instant batch.
//
// The cursor trails min(now, every pending deadline) and only moves
// forward; placement deltas are therefore never negative, and at most
// one "lap" of any level is live at a time, so a slot identifies its
// bucket's deadline range unambiguously (the one exception — the
// cursor's own slot at levels ≥ 1, which can hold either the lap the
// cursor sits on or the next one — is resolved by peeking a resident
// deadline). Advancing the cursor into a bucket's range cascades the
// bucket first: its events are re-placed by their now-smaller deltas
// and land at strictly lower levels, so every event descends at most
// wheelLevels times — O(1) amortized.
//
// Ordering: events fire in (deadline, arm time, arm domain, arm
// sequence) order. In a standalone simulator armAt is monotone in seq
// and dom is constant, so the composite key degenerates to the former
// heap's (deadline, arm sequence) comparator — golden CSVs depend on
// that. The extra components exist for cluster runs (cluster.go):
// events injected across a domain frontier carry the *source* domain's
// arm time/ID/sequence, and the composite key orders them against
// locally-armed events deterministically — by when they were armed,
// never by which goroutine arrived first. Within a level-0 bucket,
// direct inserts arrive in arm order but cascaded groups may
// interleave, so drainBucket restores key order with an insertion sort
// over the (near-sorted) batch before dispatch. Same-deadline
// FIFO-by-arm-order is a tested invariant, not an accident.

import (
	"math"
	"math/bits"
	"time"
)

const (
	wheelBits   = 6
	wheelSlots  = 1 << wheelBits // 64
	wheelMask   = wheelSlots - 1
	wheelLevels = 7
	// wheelSpan is the horizon the wheel can hold relative to its
	// cursor: 64^7 ns ≈ 73.6 minutes.
	wheelSpan = int64(1) << (wheelBits * wheelLevels)

	numWheelBuckets = wheelLevels * wheelSlots
	// overflowBucket holds deadlines ≥ wheelSpan past the cursor.
	overflowBucket = numWheelBuckets

	// bucket values outside the list arrays: released / not queued,
	// and drained-for-dispatch (sitting in Simulator.batch).
	bucketNone  = int32(-1)
	bucketBatch = int32(-2)
)

// place links a pending slot into the bucket its deadline maps to.
// Precondition: slots[idx].at >= cur (guaranteed because schedule
// clamps to now, now >= cur, and cascades re-place only still-pending
// events).
func (s *Simulator) place(idx int32) {
	sl := &s.slots[idx]
	e := int64(sl.at)
	b := int32(overflowBucket)
	if d := uint64(e - s.cur); d < uint64(wheelSpan) {
		lvl := 0
		if d >= wheelSlots {
			lvl = (bits.Len64(d) - 1) / wheelBits
		}
		slot := int(uint64(e)>>(wheelBits*lvl)) & wheelMask
		s.occ[lvl] |= 1 << uint(slot)
		b = int32(lvl*wheelSlots + slot)
	} else if !s.ovDirty && e < s.ovMin {
		s.ovMin = e
	}
	sl.bucket = b
	sl.next = -1
	sl.prev = s.btail[b]
	if sl.prev >= 0 {
		s.slots[sl.prev].next = idx
	} else {
		s.bhead[b] = idx
	}
	s.btail[b] = idx
}

// unlink removes a wheel- or overflow-resident slot from its bucket
// list (timer cancellation or in-place Reset), clearing the occupancy
// bit when the bucket empties. The caller updates sl.bucket.
func (s *Simulator) unlink(idx int32) {
	sl := &s.slots[idx]
	b := sl.bucket
	if sl.prev >= 0 {
		s.slots[sl.prev].next = sl.next
	} else {
		s.bhead[b] = sl.next
	}
	if sl.next >= 0 {
		s.slots[sl.next].prev = sl.prev
	} else {
		s.btail[b] = sl.prev
	}
	if b == overflowBucket {
		if int64(sl.at) <= s.ovMin {
			s.ovDirty = true // may have removed the cached minimum
		}
	} else if s.bhead[b] < 0 {
		s.occ[b>>wheelBits] &^= 1 << uint(int(b)&wheelMask)
	}
}

// cascade empties a level ≥ 1 bucket and re-places its events, in
// list order, by their deltas to the (just advanced) cursor. Every
// event lands at a strictly lower level: the caller has set
// cur >= the bucket's range start, so deltas are below one level-L
// slot width.
func (s *Simulator) cascade(b int) {
	i := s.bhead[b]
	s.bhead[b], s.btail[b] = -1, -1
	s.occ[b>>wheelBits] &^= 1 << uint(b&wheelMask)
	for i >= 0 {
		next := s.slots[i].next
		s.place(i)
		i = next
	}
}

// migrateOverflow re-places every overflow event whose delta now fits
// the wheel (the rest re-enter the overflow list, refreshing the
// cached minimum). The caller has advanced cur to the overflow
// minimum, so at least that event migrates.
func (s *Simulator) migrateOverflow() {
	i := s.bhead[overflowBucket]
	s.bhead[overflowBucket], s.btail[overflowBucket] = -1, -1
	s.ovMin, s.ovDirty = math.MaxInt64, false
	for i >= 0 {
		next := s.slots[i].next
		s.place(i)
		i = next
	}
}

// overflowMin returns the earliest overflow deadline, rescanning the
// list only after a removal invalidated the cached value.
func (s *Simulator) overflowMin() int64 {
	if s.bhead[overflowBucket] < 0 {
		return math.MaxInt64
	}
	if s.ovDirty {
		m := int64(math.MaxInt64)
		for i := s.bhead[overflowBucket]; i >= 0; i = s.slots[i].next {
			if at := int64(s.slots[i].at); at < m {
				m = at
			}
		}
		s.ovMin, s.ovDirty = m, false
	}
	return s.ovMin
}

// wheelNext locates the earliest pending deadline, cascading
// higher-level buckets down until that deadline sits in a level-0
// bucket, and reports (deadline, bucket, true) for the caller to
// drain. It reports fire=false when nothing is pending or when every
// pending deadline lies beyond until — the cursor is never advanced
// past until, so deadlines the caller will not fire stay reachable
// and later inserts (clamped to a Now() that may trail the horizon)
// can never land behind the cursor.
func (s *Simulator) wheelNext(until int64) (tick int64, bucket int, fire bool) {
	for {
		// Level-0 candidate: exact, since level-0 buckets are 1 ns wide
		// and hold at most the cursor's current 64-tick window.
		e0 := int64(math.MaxInt64)
		b0 := -1
		if s.occ[0] != 0 {
			ci := int(uint64(s.cur) & wheelMask)
			d := bits.TrailingZeros64(bits.RotateLeft64(s.occ[0], -ci))
			e0 = s.cur + int64(d)
			b0 = (ci + d) & wheelMask
		}

		// Earliest possible deadline among levels ≥ 1 and the overflow:
		// for a bucket that's a lower bound (its range start); for the
		// overflow it is exact.
		bestLow := s.overflowMin()
		bestB := overflowBucket
		for lvl := 1; lvl < wheelLevels; lvl++ {
			occ := s.occ[lvl]
			if occ == 0 {
				continue
			}
			shift := uint(wheelBits * lvl)
			cs := s.cur >> shift
			ci := int(uint64(cs) & wheelMask)
			rot := bits.RotateLeft64(occ, -ci)
			d := bits.TrailingZeros64(rot)
			j := (ci + d) & wheelMask
			var low int64
			if d == 0 {
				// The cursor's own slot holds either the lap the cursor
				// sits on (only when cur == the bucket's range start —
				// reached, not yet cascaded) or the next lap. A resident
				// deadline disambiguates; in the next-lap case the first
				// other occupied slot is the earlier bucket.
				low = int64(s.slots[s.bhead[lvl*wheelSlots+j]].at) >> shift << shift
				if rot != 1 {
					d2 := bits.TrailingZeros64(rot &^ 1)
					if low2 := (cs + int64(d2)) << shift; low2 < low {
						j, low = (ci+d2)&wheelMask, low2
					}
				}
			} else {
				low = (cs + int64(d)) << shift
			}
			if low < bestLow {
				bestLow, bestB = low, lvl*wheelSlots+j
			}
		}

		if b0 < 0 && bestLow == math.MaxInt64 {
			return 0, 0, false // nothing pending
		}

		// A deeper structure might hold a deadline at or before e0:
		// advance the cursor to its range start and pull it apart. Ties
		// (bestLow == e0) must cascade too, so same-deadline events
		// merge into one bucket before dispatch ordering is decided.
		if bestLow <= e0 {
			if bestLow > until {
				return 0, 0, false // everything pending is past the horizon
			}
			if bestLow > s.cur {
				s.cur = bestLow
			}
			if bestB == overflowBucket {
				s.migrateOverflow()
			} else {
				s.cascade(bestB)
			}
			continue
		}

		if e0 > until {
			return 0, 0, false
		}
		s.cur = e0
		return e0, b0, true
	}
}

// drainBucket moves a due level-0 bucket into the dispatch batch and
// restores FIFO arm order. Direct inserts arrive in arm order and
// cascades append contiguous in-order runs, so the batch is a merge
// of a few sorted runs — insertion sort is near-linear here and
// allocation-free.
func (s *Simulator) drainBucket(b int, at time.Duration) {
	s.batch = s.batch[:0]
	s.batchPos = 0
	s.batchAt = at
	for i := s.bhead[b]; i >= 0; {
		sl := &s.slots[i]
		next := sl.next
		sl.bucket = bucketBatch
		s.batch = append(s.batch, i)
		i = next
	}
	s.bhead[b], s.btail[b] = -1, -1
	s.occ[b>>wheelBits] &^= 1 << uint(b&wheelMask)
	bt := s.batch
	for i := 1; i < len(bt); i++ {
		for j := i; j > 0 && s.slotLess(bt[j], bt[j-1]); j-- {
			bt[j], bt[j-1] = bt[j-1], bt[j]
		}
	}
}

// slotLess is the same-deadline dispatch order: (armAt, dom, seq).
// Locally-armed events have armAt monotone in seq and a constant dom,
// so among themselves this is plain arm order; frontier-injected
// events (cluster.go) interleave by their source-domain key.
func (s *Simulator) slotLess(a, b int32) bool {
	x, y := &s.slots[a], &s.slots[b]
	if x.armAt != y.armAt {
		return x.armAt < y.armAt
	}
	if x.dom != y.dom {
		return x.dom < y.dom
	}
	return x.seq < y.seq
}

// NextEventAt returns the exact deadline of the earliest pending
// event, or false when nothing is pending. It walks every bucket list
// — O(pending) — which is fine for its audience: real-time drivers
// (the pipe and UDP wire backends) that run a private Simulator at
// wall-clock pace and need to know how long to sleep between
// Run(now) calls. The hot simulation loop never calls it.
func (s *Simulator) NextEventAt() (time.Duration, bool) {
	if s.npending == 0 {
		return 0, false
	}
	// A batch paused mid-dispatch (Halt/StopWhen) fires at batchAt;
	// entries stopped while waiting read as bucketBatch no longer.
	for _, idx := range s.batch[s.batchPos:] {
		if s.slots[idx].bucket == bucketBatch {
			return s.batchAt, true
		}
	}
	min := int64(math.MaxInt64)
	for lvl := 0; lvl < wheelLevels; lvl++ {
		occ := s.occ[lvl]
		for occ != 0 {
			slot := bits.TrailingZeros64(occ)
			occ &= occ - 1
			for i := s.bhead[lvl*wheelSlots+slot]; i >= 0; i = s.slots[i].next {
				if at := int64(s.slots[i].at); at < min {
					min = at
				}
			}
		}
	}
	for i := s.bhead[overflowBucket]; i >= 0; i = s.slots[i].next {
		if at := int64(s.slots[i].at); at < min {
			min = at
		}
	}
	return time.Duration(min), true
}
