package netsim

import (
	"time"

	"suss/internal/obs"
)

// ImpairVerdict is one stage's judgement on a single packet about to
// propagate. Verdicts from consecutive stages are combined by the
// pipeline (see Impairments.judge).
type ImpairVerdict struct {
	// Drop discards the packet with the given Cause (an erasure-family
	// obs.DropCause: DropErasure, DropCorrupt or DropOutage). A drop
	// short-circuits the pipeline: later stages never see the packet.
	Drop  bool
	Cause obs.DropCause

	// ExtraDelay adds to the packet's propagation delay. Negative
	// values are allowed (RTT steps back down); the link clamps the
	// total delay at zero.
	ExtraDelay time.Duration

	// OutOfBand exempts this delivery from the link's FIFO arrival
	// clamp and keeps it from advancing the clamp watermark —
	// reordering stages set it so a delayed packet genuinely arrives
	// behind its successors.
	OutOfBand bool

	// Duplicate injects a second copy of the packet, propagated
	// out-of-band after ExtraDelay+DupExtraDelay.
	Duplicate     bool
	DupExtraDelay time.Duration
}

// ImpairStage judges packets leaving a link's serializer, before
// propagation. Implementations live in internal/netem; they must be
// deterministic given their own seeded RNG and the packet sequence.
type ImpairStage interface {
	// Name identifies the stage in diagnostics.
	Name() string
	// Judge returns the stage's verdict for pkt at virtual time now.
	// The packet is read-only: stages must not mutate or retain it.
	Judge(now time.Duration, pkt *Packet) ImpairVerdict
}

// Impairments is an ordered pipeline of stages attached to a link.
// Stages run in Add order; the combined verdict is:
//
//   - the first Drop wins and stops the pipeline (a dropped packet
//     cannot be further delayed or duplicated);
//   - ExtraDelay accumulates across stages;
//   - OutOfBand and Duplicate are OR-ed;
//   - the first duplicating stage's DupExtraDelay is kept.
type Impairments struct {
	stages []ImpairStage
}

// NewImpairments builds an empty pipeline.
func NewImpairments(stages ...ImpairStage) *Impairments {
	return &Impairments{stages: stages}
}

// Add appends a stage and returns the pipeline for chaining.
func (im *Impairments) Add(s ImpairStage) *Impairments {
	im.stages = append(im.stages, s)
	return im
}

// Stages returns the pipeline's stages in execution order.
func (im *Impairments) Stages() []ImpairStage { return im.stages }

// Judge runs the pipeline on one packet and returns the combined
// verdict. Links call this internally; the real-time wire backends
// (pipe, UDP) call it directly to reuse the same impairment stages at
// the frame layer.
func (im *Impairments) Judge(now time.Duration, pkt *Packet) ImpairVerdict {
	return im.judge(now, pkt)
}

func (im *Impairments) judge(now time.Duration, pkt *Packet) ImpairVerdict {
	var v ImpairVerdict
	for _, s := range im.stages {
		sv := s.Judge(now, pkt)
		if sv.Drop {
			sv.ExtraDelay = 0
			sv.Duplicate = false
			return sv
		}
		v.ExtraDelay += sv.ExtraDelay
		v.OutOfBand = v.OutOfBand || sv.OutOfBand
		if sv.Duplicate && !v.Duplicate {
			v.Duplicate = true
			v.DupExtraDelay = sv.DupExtraDelay
		}
	}
	return v
}
