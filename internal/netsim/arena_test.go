package netsim

import (
	"testing"
	"time"
)

// The timer arena recycles slots through generations; these tests pin
// the handle semantics and the exactness of Pending.

func TestStopRemovesFromHeapImmediately(t *testing.T) {
	s := NewSimulator()
	var timers []Timer
	for i := 0; i < 10; i++ {
		timers = append(timers, s.Schedule(time.Duration(i+1)*time.Millisecond, func() {}))
	}
	if s.Pending() != 10 {
		t.Fatalf("Pending() = %d, want 10", s.Pending())
	}
	// Cancel from the middle: the count must drop at Stop time, not at
	// pop time.
	for i := 2; i < 7; i++ {
		if !timers[i].Stop() {
			t.Fatalf("Stop of pending timer %d returned false", i)
		}
	}
	if s.Pending() != 5 {
		t.Fatalf("Pending() after 5 Stops = %d, want 5 (exact count)", s.Pending())
	}
	s.RunAll()
	if s.Pending() != 0 {
		t.Fatalf("Pending() after drain = %d, want 0", s.Pending())
	}
}

func TestStopOfRecycledHandleIsNoop(t *testing.T) {
	s := NewSimulator()
	fired := 0
	// Fire a timer; its slot goes back to the free list.
	old := s.Schedule(time.Millisecond, func() { fired++ })
	s.RunAll()
	// Schedule a new timer, which recycles the slot the old handle
	// still points at.
	s.Schedule(time.Millisecond, func() { fired++ })
	if old.Active() {
		t.Fatal("stale handle reports Active after its slot was recycled")
	}
	if old.Stop() {
		t.Fatal("Stop via a stale handle cancelled a recycled timer")
	}
	s.RunAll()
	if fired != 2 {
		t.Fatalf("fired = %d, want 2 (recycled timer must fire despite stale Stop)", fired)
	}
}

func TestStopInsideOwnCallback(t *testing.T) {
	s := NewSimulator()
	var tm Timer
	tm = s.Schedule(time.Millisecond, func() {
		if tm.Active() {
			t.Error("timer reports Active inside its own callback")
		}
		if tm.Stop() {
			t.Error("Stop inside own callback reported cancellation")
		}
	})
	s.RunAll()
}

func TestZeroValueTimer(t *testing.T) {
	var tm Timer
	if tm.Active() || tm.Stop() {
		t.Fatal("zero-value Timer must be inert")
	}
}

// TestNowAfterEveryStopMode pins the clock semantics of Run for each
// of the four stop modes: queue drain, horizon, Halt, and StopWhen —
// including StopWhen firing mid-instant, where Now() must equal the
// fired event's time even though later same-instant events remain.
func TestNowAfterEveryStopMode(t *testing.T) {
	t.Run("drain", func(t *testing.T) {
		s := NewSimulator()
		s.Schedule(5*time.Millisecond, func() {})
		s.Schedule(9*time.Millisecond, func() {})
		if end := s.RunAll(); end != 9*time.Millisecond || s.Now() != 9*time.Millisecond {
			t.Fatalf("drain: Run=%v Now=%v, want 9ms", end, s.Now())
		}
	})
	t.Run("horizon", func(t *testing.T) {
		s := NewSimulator()
		s.Schedule(20*time.Millisecond, func() {})
		if end := s.Run(12 * time.Millisecond); end != 12*time.Millisecond || s.Now() != 12*time.Millisecond {
			t.Fatalf("horizon: Run=%v Now=%v, want 12ms", end, s.Now())
		}
	})
	t.Run("horizon-in-past-never-rewinds", func(t *testing.T) {
		s := NewSimulator()
		s.Schedule(10*time.Millisecond, func() {})
		s.RunAll()
		if end := s.Run(3 * time.Millisecond); end != 10*time.Millisecond || s.Now() != 10*time.Millisecond {
			t.Fatalf("past horizon: Run=%v Now=%v, want clock held at 10ms", end, s.Now())
		}
	})
	t.Run("halt", func(t *testing.T) {
		s := NewSimulator()
		s.Schedule(4*time.Millisecond, func() { s.Halt() })
		s.Schedule(8*time.Millisecond, func() { t.Error("event after Halt ran") })
		if end := s.RunAll(); end != 4*time.Millisecond || s.Now() != 4*time.Millisecond {
			t.Fatalf("halt: Run=%v Now=%v, want 4ms", end, s.Now())
		}
	})
	t.Run("stopwhen-mid-instant", func(t *testing.T) {
		s := NewSimulator()
		hit := 0
		// Three events at the same instant; the predicate fires after
		// the first.
		for i := 0; i < 3; i++ {
			s.Schedule(6*time.Millisecond, func() { hit++ })
		}
		s.StopWhen(func() bool { return hit >= 1 })
		if end := s.RunAll(); end != 6*time.Millisecond || s.Now() != 6*time.Millisecond {
			t.Fatalf("stopwhen: Run=%v Now=%v, want 6ms (the fired event's time)", end, s.Now())
		}
		if hit != 1 {
			t.Fatalf("stopwhen: %d events ran, want 1", hit)
		}
		// Remaining same-instant events must survive for a later Run.
		s.StopWhen(nil)
		s.RunAll()
		if hit != 3 {
			t.Fatalf("stopwhen: %d events ran after resume, want 3", hit)
		}
	})
}

// --- allocation gates ---
//
// These AllocsPerRun gates run under plain `go test ./...` (tier-1),
// so a regression that reintroduces per-event or per-packet
// allocations fails CI. They are skipped under sussdebug, where the
// pool deliberately sequesters instead of recycling.

func TestScheduleEventZeroAlloc(t *testing.T) {
	if debugSequester {
		t.Skip("sussdebug: pool sequesters, steady state allocates by design")
	}
	s := NewSimulator()
	n := 0
	var tick EventFunc
	tick = func(ctx, arg any) { n++ }
	allocs := testing.AllocsPerRun(500, func() {
		s.ScheduleEvent(time.Millisecond, tick, nil, nil)
		s.ScheduleEvent(2*time.Millisecond, tick, nil, nil).Stop()
		s.RunAll()
	})
	if allocs > 0 {
		t.Errorf("schedule/stop/fire cycle allocates %.1f allocs/op, want 0", allocs)
	}
}

func TestPacketPoolZeroAlloc(t *testing.T) {
	if debugSequester {
		t.Skip("sussdebug: pool sequesters, steady state allocates by design")
	}
	s := NewSimulator()
	pool := s.Pool()
	allocs := testing.AllocsPerRun(500, func() {
		p := pool.Get()
		p.Size = 1500
		p.AddSack(SackRange{Start: 1, End: 2})
		p.Release()
	})
	if allocs > 0 {
		t.Errorf("packet get/release cycle allocates %.1f allocs/op, want 0", allocs)
	}
	st := pool.Stats()
	if st.Outstanding() != 0 {
		t.Errorf("outstanding = %d, want 0", st.Outstanding())
	}
	if st.Recycled == 0 {
		t.Error("free list never recycled a packet")
	}
}

// TestLinkPipelineZeroAlloc drives pooled packets through a link's
// full serialize→propagate→deliver pipeline and requires the steady
// state to be allocation-free (no per-event closures, no per-enqueue
// queue nodes).
func TestLinkPipelineZeroAlloc(t *testing.T) {
	if debugSequester {
		t.Skip("sussdebug: pool sequesters, steady state allocates by design")
	}
	s := NewSimulator()
	snk := &sink{id: 1, sim: s}
	l := NewLink(s, LinkConfig{Name: "pipe", Rate: 1e9, Delay: time.Millisecond}, snk)
	pool := s.Pool()
	// Warm the pool and ring buffers past their growth phase.
	for i := 0; i < 64; i++ {
		p := pool.Get()
		p.Size = 1500
		p.Dst = 1
		l.Enqueue(p)
	}
	s.RunAll()
	for _, p := range snk.pkts {
		p.Release()
	}
	snk.pkts, snk.at = snk.pkts[:0], snk.at[:0]

	allocs := testing.AllocsPerRun(200, func() {
		for i := 0; i < 4; i++ {
			p := pool.Get()
			p.Size = 1500
			p.Dst = 1
			l.Enqueue(p)
		}
		s.RunAll()
		for _, p := range snk.pkts {
			p.Release()
		}
		snk.pkts, snk.at = snk.pkts[:0], snk.at[:0]
	})
	// The sink's append may occasionally grow; everything else must be
	// allocation-free.
	if allocs > 0 {
		t.Errorf("link pipeline allocates %.1f allocs/op, want 0", allocs)
	}
}
