package netsim

import (
	"fmt"
	"time"

	"suss/internal/obs"
)

// RateFunc returns the link's instantaneous transmission rate in bits
// per second at virtual time now. Implementations must return a
// positive value.
type RateFunc func(now time.Duration) float64

// DelayFunc returns extra one-way delay (jitter) to add to a packet's
// propagation at virtual time now, and may be stochastic.
type DelayFunc func(now time.Duration, pkt *Packet) time.Duration

// LossFunc reports whether to drop pkt after it leaves the queue
// (random wire loss, independent of congestion drops).
type LossFunc func(pkt *Packet) bool

// LinkConfig describes one unidirectional link.
type LinkConfig struct {
	// Name appears in traces and error messages.
	Name string
	// Rate is the transmission rate in bits per second. Ignored if
	// RateModel is set.
	Rate float64
	// RateModel, when non-nil, supplies a time-varying rate (wireless
	// links). It overrides Rate.
	RateModel RateFunc
	// Delay is the one-way propagation delay.
	Delay time.Duration
	// Jitter, when non-nil, adds per-packet extra delay.
	Jitter DelayFunc
	// Loss, when non-nil, drops packets randomly after dequeue.
	Loss LossFunc
	// QueueBytes is the buffer capacity. Zero means a generous
	// default of 1 MiB.
	QueueBytes int
	// Qdisc selects the queue discipline (nil = drop-tail FIFO).
	// netsim.CoDelFactory installs CoDel (RFC 8289).
	Qdisc QdiscFactory
	// AllowReorder permits jitter to reorder deliveries. When false
	// (default) arrival times are clamped to be non-decreasing, which
	// matches a FIFO pipe.
	AllowReorder bool
}

// LinkStats counts what happened on a link.
type LinkStats struct {
	EnqueuedPackets   int
	EnqueuedBytes     int64
	DroppedPackets    int // tail drops (congestion)
	DroppedBytes      int64
	ErasedPackets     int // random (wire) losses
	CorruptedPackets  int // impairment drops: corruption
	OutagePackets     int // impairment drops: link outage/flap
	DuplicatedPackets int // extra copies injected by impairment
	DeliveredPackets  int
	DeliveredBytes    int64
	MaxQueueBytes     int
}

// Link is a unidirectional FIFO pipe: a drop-tail queue, a serializer
// running at the (possibly time-varying) link rate, and a fixed
// propagation delay plus optional jitter. After the propagation delay
// the packet is handed to the destination node.
type Link struct {
	sim  *Simulator
	cfg  LinkConfig
	dst  Node
	rate RateFunc

	qdisc Qdisc
	busy  bool

	lastArrival time.Duration // for in-order clamping
	stats       LinkStats

	// rec, when non-nil, is the attached flight recorder for this
	// link's queue counters and drop events.
	rec *obs.LinkRecorder

	// impair, when non-nil, is the impairment pipeline judged on every
	// packet after the wire-loss check. Unattached links pay a single
	// nil check (pinned by an equality test).
	impair *Impairments

	// front, when non-nil, marks this as a cross-domain link in a
	// Cluster: the destination node lives in another event domain, so
	// instead of scheduling delivery locally, propagate emits the
	// packet into this outbox for the coordinator to hand over at the
	// next window barrier (see cluster.go). Queueing and serialization
	// still run in the source domain; only delivery crosses.
	front *frontierOut

	// OnDrop, when non-nil, is invoked for every packet lost on this
	// link (tail drop or random loss).
	OnDrop func(pkt *Packet, congestion bool)
}

// AttachRecorder installs a flight recorder on this link. Pass nil to
// detach.
func (l *Link) AttachRecorder(r *obs.LinkRecorder) { l.rec = r }

// AttachImpairments installs an impairment pipeline on this link.
// Pass nil to detach.
func (l *Link) AttachImpairments(im *Impairments) { l.impair = im }

// Impairments returns the attached pipeline, or nil.
func (l *Link) Impairments() *Impairments { return l.impair }

// NewLink creates a link feeding dst. The configuration is validated:
// a non-positive fixed rate panics, since it would stall the queue
// silently.
func NewLink(sim *Simulator, cfg LinkConfig, dst Node) *Link {
	if cfg.RateModel == nil && cfg.Rate <= 0 {
		panic(fmt.Sprintf("netsim: link %q has non-positive rate %v", cfg.Name, cfg.Rate))
	}
	if cfg.QueueBytes <= 0 {
		cfg.QueueBytes = 1 << 20
	}
	l := &Link{sim: sim, cfg: cfg, dst: dst}
	if cfg.Qdisc != nil {
		l.qdisc = cfg.Qdisc(cfg.QueueBytes)
	} else {
		l.qdisc = NewDropTail(cfg.QueueBytes)
	}
	if cfg.RateModel != nil {
		l.rate = cfg.RateModel
	} else {
		r := cfg.Rate
		l.rate = func(time.Duration) float64 { return r }
	}
	return l
}

// Name returns the configured link name.
func (l *Link) Name() string { return l.cfg.Name }

// Stats returns a copy of the link counters.
func (l *Link) Stats() LinkStats { return l.stats }

// QueueBytes returns the bytes currently buffered.
func (l *Link) QueueBytes() int { return l.qdisc.Bytes() }

// Queue returns the link's queue discipline (for AQM statistics).
func (l *Link) Queue() Qdisc { return l.qdisc }

// QueueLimit returns the configured buffer capacity in bytes.
func (l *Link) QueueLimit() int { return l.cfg.QueueBytes }

// RateAt returns the instantaneous rate in bits/sec at time now.
func (l *Link) RateAt(now time.Duration) float64 { return l.rate(now) }

// PropagationDelay returns the configured fixed one-way delay.
func (l *Link) PropagationDelay() time.Duration { return l.cfg.Delay }

// Enqueue offers a packet to the link, transferring ownership: the
// link either carries the packet to the destination node or releases
// it on a drop. If the queue discipline refuses it (tail drop) the
// packet is lost and OnDrop fires with congestion=true; the packet is
// released after the callback returns, so drop observers must copy,
// not retain.
func (l *Link) Enqueue(pkt *Packet) {
	debugCheckLive(pkt, "link enqueue")
	if !l.qdisc.Enqueue(l.sim.Now(), pkt) {
		l.stats.DroppedPackets++
		l.stats.DroppedBytes += int64(pkt.Size)
		if r := l.rec; r != nil {
			r.Dropped(l.sim.Now(), obs.DropTail, int32(pkt.Flow), pkt.Seq, pkt.Size, pkt.Kind == Data)
		}
		if l.OnDrop != nil {
			l.OnDrop(pkt, true)
		}
		pkt.Release()
		return
	}
	l.stats.EnqueuedPackets++
	l.stats.EnqueuedBytes += int64(pkt.Size)
	if b := l.qdisc.Bytes(); b > l.stats.MaxQueueBytes {
		l.stats.MaxQueueBytes = b
	}
	if r := l.rec; r != nil {
		r.Enqueued(pkt.Size, l.qdisc.Bytes())
	}
	if !l.busy {
		l.startTransmit()
	}
}

// linkFinishTransmitEv and linkDeliverEv are the link's two
// per-packet events as capture-free EventFuncs: scheduling them
// stores (link, packet) in the timer slot instead of building a
// capturing closure, so the serialize→propagate→deliver pipeline
// allocates nothing.
func linkFinishTransmitEv(ctx, arg any) { ctx.(*Link).finishTransmit(arg.(*Packet)) }
func linkDeliverEv(ctx, arg any)        { ctx.(*Link).deliver(arg.(*Packet)) }

func (l *Link) startTransmit() {
	pkt, dropped := l.qdisc.Dequeue(l.sim.Now())
	for _, d := range dropped {
		// AQM (CoDel) drops are congestion signals like tail drops.
		l.stats.DroppedPackets++
		l.stats.DroppedBytes += int64(d.Size)
		if r := l.rec; r != nil {
			r.Dropped(l.sim.Now(), obs.DropAQM, int32(d.Flow), d.Seq, d.Size, d.Kind == Data)
		}
		if l.OnDrop != nil {
			l.OnDrop(d, true)
		}
		d.Release()
	}
	if pkt == nil {
		l.busy = false
		return
	}
	l.busy = true
	rate := l.rate(l.sim.Now())
	if rate <= 0 {
		panic(fmt.Sprintf("netsim: link %q rate model returned %v", l.cfg.Name, rate))
	}
	txTime := time.Duration(float64(pkt.Size*8) / rate * float64(time.Second))
	l.sim.ScheduleEvent(txTime, linkFinishTransmitEv, l, pkt)
}

func (l *Link) finishTransmit(pkt *Packet) {
	// Start serializing the next packet immediately: the serializer is
	// busy back-to-back while the queue is non-empty.
	l.startTransmit()

	if l.cfg.Loss != nil && l.cfg.Loss(pkt) {
		l.dropWire(pkt, obs.DropErasure)
		return
	}

	if l.impair != nil {
		l.impairedPropagate(pkt)
		return
	}
	l.propagate(pkt, 0, false)
}

// propagate schedules a packet's delivery after the configured
// propagation delay, jitter, and extra impairment delay. An outOfBand
// delivery skips the FIFO arrival clamp and does not advance the clamp
// watermark, so genuinely reordered copies can land behind successors
// without delaying them.
func (l *Link) propagate(pkt *Packet, extra time.Duration, outOfBand bool) {
	delay := l.cfg.Delay + extra
	if l.cfg.Jitter != nil {
		if j := l.cfg.Jitter(l.sim.Now(), pkt); j > 0 {
			delay += j
		}
	}
	if delay < 0 {
		// A negative RTT step can outweigh the base delay; arrivals
		// never precede departure.
		delay = 0
	}
	arrival := l.sim.Now() + delay
	if !outOfBand {
		if !l.cfg.AllowReorder && arrival < l.lastArrival {
			arrival = l.lastArrival
		}
		l.lastArrival = arrival
	}
	if o := l.front; o != nil {
		// Cross-domain delivery: stage the packet (by value) in the
		// frontier outbox with the ordering key this domain would have
		// armed the delivery with, then release the pooled original —
		// ownership transfers to the destination domain's pool at
		// injection. The lookahead contract holds because arrival >=
		// now + cfg.Delay: extra/jitter only add (impaired frontier
		// links are rejected at Run), and the FIFO clamp only raises.
		o.msgs = append(o.msgs, xmsg{
			at:    arrival,
			armAt: l.sim.Now(),
			seq:   o.seq,
			dom:   l.sim.domID,
			link:  l,
			pkt:   *pkt,
		})
		o.seq++
		pkt.Release()
		return
	}
	l.sim.ScheduleEventAt(arrival, linkDeliverEv, l, pkt)
}

// impairedPropagate runs the impairment pipeline on a packet that
// survived the wire-loss check and acts on the combined verdict.
func (l *Link) impairedPropagate(pkt *Packet) {
	v := l.impair.judge(l.sim.Now(), pkt)
	if v.Drop {
		l.dropWire(pkt, v.Cause)
		return
	}
	var dup *Packet
	if v.Duplicate {
		// Copy before handing the original on: once propagated the
		// original may be delivered and released within this event.
		dup = l.sim.Pool().Get()
		dup.CopyFrom(pkt)
		l.stats.DuplicatedPackets++
		if r := l.rec; r != nil {
			r.Duplicated(l.sim.Now(), int32(pkt.Flow), pkt.Seq, pkt.Size, pkt.Kind == Data)
		}
	}
	l.propagate(pkt, v.ExtraDelay, v.OutOfBand)
	if dup != nil {
		// Duplicates are always out-of-band: the copy must not drag
		// the FIFO watermark forward for later packets.
		l.propagate(dup, v.ExtraDelay+v.DupExtraDelay, true)
	}
}

// dropWire loses a packet to a non-congestion cause (wire erasure or
// an impairment-stage drop), updating stats by cause and releasing it.
func (l *Link) dropWire(pkt *Packet, cause obs.DropCause) {
	switch cause {
	case obs.DropCorrupt:
		l.stats.CorruptedPackets++
	case obs.DropOutage:
		l.stats.OutagePackets++
	default:
		l.stats.ErasedPackets++
	}
	if r := l.rec; r != nil {
		r.Dropped(l.sim.Now(), cause, int32(pkt.Flow), pkt.Seq, pkt.Size, pkt.Kind == Data)
	}
	if l.OnDrop != nil {
		l.OnDrop(pkt, false)
	}
	pkt.Release()
}

// deliver hands a fully-propagated packet to the destination node,
// transferring ownership (routers forward it, endpoints release it).
//
// On a cross-domain link, deliver runs in the *destination* domain's
// goroutine while the source domain keeps enqueueing and serializing.
// That is race-free by field disjointness: deliver touches only the
// Delivered counters and the destination node, while the source side
// writes the Enqueued/Dropped/queue-watermark counters and the FIFO
// clamp — no overlapping memory. Stats() must only be called with the
// cluster parked (between/after runs), as it copies the whole struct.
func (l *Link) deliver(pkt *Packet) {
	l.stats.DeliveredPackets++
	l.stats.DeliveredBytes += int64(pkt.Size)
	l.dst.Deliver(pkt)
}
