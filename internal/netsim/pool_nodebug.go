//go:build !sussdebug

package netsim

// debugSequester is false in normal builds: released packets are
// recycled through the free list.
const debugSequester = false

// debugRelease is a no-op without the sussdebug tag.
func debugRelease(*Packet) {}

// debugCheckLive is a no-op without the sussdebug tag.
func debugCheckLive(*Packet, string) {}
