package netsim

import "time"

// FlowID identifies a transport flow within a simulation.
type FlowID int

// PacketKind distinguishes data segments from ACKs on the wire. The
// simulator itself treats both identically (bytes through queues); the
// kind exists so endpoints can dispatch and tooling can filter.
type PacketKind uint8

const (
	// Data carries application payload from sender to receiver.
	Data PacketKind = iota
	// Ack flows from receiver back to sender.
	Ack
)

func (k PacketKind) String() string {
	switch k {
	case Data:
		return "data"
	case Ack:
		return "ack"
	default:
		return "unknown"
	}
}

// Packet is the unit moved through links and routers. Transport
// endpoints populate the header fields they need; the network layer
// only reads Size, Dst and (for tracing) Flow/Kind.
type Packet struct {
	Flow FlowID
	Kind PacketKind

	// Size is the wire size in bytes, including all headers.
	Size int

	// Src and Dst are node addresses used by routers.
	Src, Dst NodeID

	// Seq is the first byte sequence number carried (data) or a pure
	// transmission counter (ACK retransmits).
	Seq int64
	// Len is the payload length in bytes for data packets.
	Len int64
	// CumAck is the cumulative acknowledgment: every byte below it has
	// been received. Valid for Kind == Ack.
	CumAck int64
	// SACK holds up to three selective-ack ranges above CumAck.
	SACK []SackRange
	// EchoTS echoes the sender's departure timestamp so the sender can
	// take an RTT sample without keeping per-packet state. Retransmitted
	// segments clear it (Karn's rule).
	EchoTS time.Duration
	// HasEcho reports whether EchoTS is valid.
	HasEcho bool
	// Retrans marks a retransmitted data segment.
	Retrans bool

	// SentAt is stamped by the sending endpoint when the packet enters
	// the first link. Used for tracing only.
	SentAt time.Duration
}

// SackRange is a half-open received range [Start, End) above the
// cumulative ACK point.
type SackRange struct {
	Start, End int64
}

// NodeID addresses a node (host or router) in the topology.
type NodeID int

// Node consumes packets delivered by links.
type Node interface {
	// ID returns the node's address.
	ID() NodeID
	// Deliver hands the node a packet that has fully arrived.
	Deliver(pkt *Packet)
}
