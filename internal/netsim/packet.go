package netsim

import "time"

// FlowID identifies a transport flow within a simulation.
type FlowID int

// PacketKind distinguishes data segments from ACKs on the wire. The
// simulator itself treats both identically (bytes through queues); the
// kind exists so endpoints can dispatch and tooling can filter.
type PacketKind uint8

const (
	// Data carries application payload from sender to receiver.
	Data PacketKind = iota
	// Ack flows from receiver back to sender.
	Ack
)

func (k PacketKind) String() string {
	switch k {
	case Data:
		return "data"
	case Ack:
		return "ack"
	default:
		return "unknown"
	}
}

// MaxSack is the number of selective-ack ranges an ACK can carry
// (RFC 2018 with a timestamp option leaves room for three).
const MaxSack = 3

// Packet is the unit moved through links and routers. Transport
// endpoints populate the header fields they need; the network layer
// only reads Size, Dst and (for tracing) Flow/Kind.
//
// Hot-path packets come from a PacketPool (see Simulator.Pool) and
// follow a single-owner lifecycle: whoever holds the packet — a
// queueing link, then the destination endpoint — must either pass it
// on or Release it exactly once. Observers (trace samplers, OnData /
// OnDrop callbacks, Loss and Jitter functions) must copy any fields
// they keep; retaining the pointer past the callback reads recycled
// memory. Packets built directly with a literal (tests, ad-hoc
// traffic) have no pool and Release on them is a no-op.
type Packet struct {
	Flow FlowID
	Kind PacketKind

	// Size is the wire size in bytes, including all headers.
	Size int

	// Src and Dst are node addresses used by routers.
	Src, Dst NodeID

	// Seq is the first byte sequence number carried (data) or a pure
	// transmission counter (ACK retransmits).
	Seq int64
	// Len is the payload length in bytes for data packets.
	Len int64
	// CumAck is the cumulative acknowledgment: every byte below it has
	// been received. Valid for Kind == Ack.
	CumAck int64
	// SACK holds up to MaxSack selective-ack ranges above CumAck;
	// NSack of them are valid. The array is inline so SACK-bearing
	// ACKs allocate nothing — use SackRanges or AddSack rather than
	// touching the pair directly.
	SACK  [MaxSack]SackRange
	NSack uint8
	// EchoTS echoes the sender's departure timestamp so the sender can
	// take an RTT sample without keeping per-packet state. Retransmitted
	// segments clear it (Karn's rule).
	EchoTS time.Duration
	// HasEcho reports whether EchoTS is valid.
	HasEcho bool
	// Retrans marks a retransmitted data segment.
	Retrans bool

	// SentAt is stamped by the sending endpoint when the packet enters
	// the first link. Used for tracing only.
	SentAt time.Duration

	// frame holds the packet's encoded wire image — the IPv4+TCP
	// headers produced by internal/wire. Payload bytes are virtual in
	// the simulator (the IP total length covers them; the buffer does
	// not), so MaxFrameLen is the codec's maximum header size and the
	// storage can live inline: no per-packet allocation, and recycling
	// through the pool costs one small memset. frameLen is zero for
	// packets built without a wire image (ad-hoc test traffic).
	frame    [MaxFrameLen]byte
	frameLen uint8

	// pool is the free list this packet returns to on Release; nil for
	// packets built with a literal. freed is the sussdebug
	// use-after-release flag (see pool_debug.go).
	pool  *PacketPool
	freed bool
}

// MaxFrameLen is the inline frame-buffer capacity: the largest
// header-only wire image internal/wire can encode (20-byte IPv4 +
// 60-byte TCP header with a full option area). Payload bytes are
// virtual in the simulator, so no frame ever needs more.
const MaxFrameLen = 80

// FrameBuf returns the full inline frame buffer for an encoder to
// write into; the caller records the written length with SetFrameLen.
func (p *Packet) FrameBuf() []byte { return p.frame[:] }

// SetFrameLen records how many bytes of the frame buffer hold the
// encoded wire image.
func (p *Packet) SetFrameLen(n int) {
	if n < 0 || n > MaxFrameLen {
		panic("netsim: frame length out of range")
	}
	p.frameLen = uint8(n)
}

// Frame returns the packet's encoded wire image (empty for packets
// that never carried one). The view is valid only while the caller
// owns the packet.
func (p *Packet) Frame() []byte { return p.frame[:p.frameLen] }

// CopyFrom copies every wire field of src into p while preserving p's
// own pool identity, so a pooled packet can become a byte-for-byte
// duplicate of another without corrupting either free list. Used by
// the duplication impairment stage.
func (p *Packet) CopyFrom(src *Packet) {
	pool, freed := p.pool, p.freed
	*p = *src
	p.pool, p.freed = pool, freed
}

// SackRanges returns the valid selective-ack ranges as a slice view
// into the packet's inline array (no allocation). The view is only
// valid while the caller owns the packet.
func (p *Packet) SackRanges() []SackRange { return p.SACK[:p.NSack] }

// AddSack appends a selective-ack range, reporting false when the
// inline array is full.
func (p *Packet) AddSack(r SackRange) bool {
	if int(p.NSack) >= MaxSack {
		return false
	}
	p.SACK[p.NSack] = r
	p.NSack++
	return true
}

// SackRange is a half-open received range [Start, End) above the
// cumulative ACK point.
type SackRange struct {
	Start, End int64
}

// NodeID addresses a node (host or router) in the topology.
type NodeID int

// Node consumes packets delivered by links.
type Node interface {
	// ID returns the node's address.
	ID() NodeID
	// Deliver hands the node a packet that has fully arrived.
	Deliver(pkt *Packet)
}
