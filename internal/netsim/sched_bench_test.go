package netsim

import (
	"math/rand"
	"testing"
	"time"
)

// BenchmarkSchedulerChurn models the TCP hot path: a standing
// population of armed timers where nearly every timer is cancelled or
// rearmed before it fires (ACK-clocked RTO resets, pacing kicks).
// This is the workload a comparison heap handles worst — O(log n)
// sift per mutation — and the wheel handles best: O(1) unlink+relink.
func BenchmarkSchedulerChurn(b *testing.B) {
	const population = 4096
	s := NewSimulator()
	var nop EventFunc = func(ctx, arg any) {}
	rng := rand.New(rand.NewSource(1))
	timers := make([]Timer, population)
	for i := range timers {
		timers[i] = s.ScheduleEvent(time.Duration(1+rng.Intn(int(200*time.Millisecond))), nop, nil, nil)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := i & (population - 1)
		d := time.Duration(1 + rng.Intn(int(200*time.Millisecond)))
		if nt, ok := timers[k].Reset(d); ok {
			timers[k] = nt
		} else {
			timers[k] = s.ScheduleEvent(d, nop, nil, nil)
		}
		if i&1023 == 1023 {
			// Occasionally let the clock advance so cursor motion and
			// bucket drains stay in the measured mix.
			s.Run(s.Now() + time.Millisecond)
		}
	}
}

// BenchmarkSchedulerCascade arms deadlines spread across every wheel
// level (microseconds to minutes) and drains them all, measuring the
// full insert → cascade → batch-dispatch cycle rather than mutation
// churn.
func BenchmarkSchedulerCascade(b *testing.B) {
	const batch = 1024
	s := NewSimulator()
	n := 0
	var tick EventFunc = func(ctx, arg any) { n++ }
	rng := rand.New(rand.NewSource(2))
	deltas := make([]time.Duration, batch)
	for i := range deltas {
		// Log-uniform over the wheel's levels: 2^0 .. 2^41 ns.
		deltas[i] = time.Duration(1) << uint(rng.Intn(42))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, d := range deltas {
			s.ScheduleEvent(d, tick, nil, nil)
		}
		s.RunAll()
	}
	if n != b.N*batch {
		b.Fatalf("fired %d events, want %d", n, b.N*batch)
	}
}
