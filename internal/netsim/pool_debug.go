//go:build sussdebug

package netsim

import "fmt"

// Under the sussdebug build tag the packet pool becomes a
// use-after-release detector: Release poisons the packet and
// sequesters it (it is never recycled, so a retained pointer can
// never be revalidated by reuse), double releases panic, and every
// component that accepts a packet asserts it is live via
// debugCheckLive. The tag trades steady-state allocation freedom for
// airtight lifecycle checking; run it as
//
//	go test -tags sussdebug ./...
const debugSequester = true

// debugRelease flags the packet as dead and poisons the fields the
// network layer reads, so even unchecked uses of a stale pointer
// misbehave loudly instead of silently reading recycled data.
func debugRelease(p *Packet) {
	if p.freed {
		panic(fmt.Sprintf("netsim: double release of packet (flow %d, kind %v, seq %d)",
			p.Flow, p.Kind, p.Seq))
	}
	p.freed = true
	p.Seq = -0x5055_5353 // "POSS"-marker: poisoned sequence
	p.Size = -1
	p.Kind = 0xff
}

// debugCheckLive panics when a component touches a packet that was
// already released (retain-after-release).
func debugCheckLive(p *Packet, where string) {
	if p != nil && p.freed {
		panic(fmt.Sprintf("netsim: %s uses packet after release (flow %d)", where, p.Flow))
	}
}
