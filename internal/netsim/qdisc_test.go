package netsim

import (
	"testing"
	"time"
)

func TestDropTailBasics(t *testing.T) {
	q := NewDropTail(2500)
	if !q.Enqueue(0, &Packet{Size: 1000}) || !q.Enqueue(0, &Packet{Size: 1000}) {
		t.Fatal("packets within capacity refused")
	}
	if q.Enqueue(0, &Packet{Size: 1000}) {
		t.Fatal("over-capacity packet accepted")
	}
	if q.Bytes() != 2000 {
		t.Fatalf("bytes = %d", q.Bytes())
	}
	p, dropped := q.Dequeue(time.Millisecond)
	if p == nil || len(dropped) != 0 {
		t.Fatal("drop-tail must never drop at dequeue")
	}
	if q.Bytes() != 1000 {
		t.Fatalf("bytes after dequeue = %d", q.Bytes())
	}
	q.Dequeue(time.Millisecond)
	if p, _ := q.Dequeue(time.Millisecond); p != nil {
		t.Fatal("empty queue returned a packet")
	}
}

func TestCoDelPassesLowDelayTraffic(t *testing.T) {
	q := NewCoDel(1 << 20).(*CoDel)
	now := time.Duration(0)
	// Packets dequeued within Target: never dropped.
	for i := 0; i < 1000; i++ {
		q.Enqueue(now, &Packet{Size: 1500, Seq: int64(i)})
		now += time.Millisecond // 1 ms sojourn < 5 ms target
		p, dropped := q.Dequeue(now)
		if p == nil || len(dropped) != 0 {
			t.Fatalf("packet %d: CoDel dropped low-delay traffic", i)
		}
	}
	if q.Drops != 0 {
		t.Fatalf("drops = %d", q.Drops)
	}
}

func TestCoDelDropsPersistentQueue(t *testing.T) {
	q := NewCoDel(4 << 20).(*CoDel)
	// Build a standing queue: packets wait 50 ms (≫ 5 ms target) and
	// the condition persists well past one 100 ms interval.
	now := time.Duration(0)
	seq := int64(0)
	for i := 0; i < 400; i++ {
		q.Enqueue(now, &Packet{Size: 1500, Seq: seq})
		seq++
	}
	var drops int
	for t2 := 50 * time.Millisecond; t2 < time.Second; t2 += time.Millisecond {
		// Keep the queue topped up so sojourn stays high.
		q.Enqueue(t2, &Packet{Size: 1500, Seq: seq})
		seq++
		_, dropped := q.Dequeue(t2)
		drops += len(dropped)
		now = t2
	}
	if drops == 0 {
		t.Fatal("CoDel never dropped despite a persistent standing queue")
	}
	if q.Drops != drops {
		t.Fatalf("Drops counter %d != observed %d", q.Drops, drops)
	}
}

func TestCoDelRecoversWhenQueueDrains(t *testing.T) {
	q := NewCoDel(4 << 20).(*CoDel)
	now := time.Duration(0)
	seq := int64(0)
	for i := 0; i < 200; i++ {
		q.Enqueue(now, &Packet{Size: 1500, Seq: seq})
		seq++
	}
	// Drain with high sojourn until dropping engages.
	for t2 := 50 * time.Millisecond; t2 < 400*time.Millisecond; t2 += time.Millisecond {
		q.Dequeue(t2)
	}
	if !q.dropping && q.Drops == 0 {
		t.Fatal("setup failed: dropping never engaged")
	}
	// Now fresh traffic with low sojourn: dropping state must end.
	base := 500 * time.Millisecond
	for i := 0; i < 50; i++ {
		at := base + time.Duration(i)*time.Millisecond
		q.Enqueue(at, &Packet{Size: 1500, Seq: seq})
		seq++
		p, dropped := q.Dequeue(at + time.Millisecond)
		if p != nil && len(dropped) > 0 && i > 5 {
			t.Fatal("CoDel kept dropping after the queue drained")
		}
	}
	if q.dropping {
		t.Error("still in dropping state with sub-target sojourn")
	}
}

// Integration: under identical unresponsive overload, a CoDel link
// sheds load early and holds a smaller standing queue than drop-tail
// (CoDel is designed for responsive flows, so against a constant 2×
// overload it only bounds the queue relative to the FIFO, not to the
// 5 ms target).
func TestCoDelLinkBoundsStandingDelay(t *testing.T) {
	run := func(factory QdiscFactory) LinkStats {
		sim := NewSimulator()
		dst := &sink{id: 1, sim: sim}
		l := NewLink(sim, LinkConfig{
			Name: "q", Rate: 1e7, Delay: time.Millisecond,
			QueueBytes: 4 << 20, Qdisc: factory,
		}, dst)
		for at := time.Duration(0); at < 2*time.Second; at += 600 * time.Microsecond {
			at := at
			sim.Schedule(at, func() { l.Enqueue(&Packet{Size: 1500, Dst: 1}) })
		}
		sim.RunAll()
		return l.Stats()
	}
	codel := run(CoDelFactory)
	fifo := run(nil)
	if codel.DroppedPackets == 0 {
		t.Fatal("CoDel never dropped under 2× overload")
	}
	if codel.MaxQueueBytes >= fifo.MaxQueueBytes {
		t.Errorf("CoDel max queue %d not below drop-tail %d", codel.MaxQueueBytes, fifo.MaxQueueBytes)
	}
	// And it must start shedding before the FIFO fills (drop-tail only
	// drops once the 4 MiB buffer is exhausted — 2 s of 2× overload
	// never gets there, so FIFO drops stay 0 while CoDel's are not).
	if fifo.DroppedPackets != 0 {
		t.Skipf("FIFO dropped %d; load assumption broken", fifo.DroppedPackets)
	}
}
