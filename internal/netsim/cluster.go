package netsim

// Parallel event domains: one simulation partitioned into per-domain
// Simulators (each with its own timing wheel, packet pool, and clock)
// that run on separate goroutines and synchronize only where packets
// cross a domain frontier.
//
// The synchronization rule is classic conservative lookahead
// (Chandy–Misra–Bryant): a cross-domain link's propagation delay is a
// hard lower bound on how far in the future its deliveries land, so
// with L = min frontier delay, every domain may execute the window
// [t0, t0+L) — t0 being the earliest pending event cluster-wide —
// without ever receiving a message dated inside it. Run is therefore
// a window-barrier loop: pick t0, release every domain to t0+L-1 in
// parallel, join, hand the frontier traffic over, repeat. Long-fat
// paths (the interesting SUSS regimes) have large per-link delays —
// large lookahead — so the barrier is amortized over big windows
// exactly where scaling matters.
//
// Determinism is the contract, not a best effort. Three mechanisms
// carry it:
//
//   - Frontier messages carry the key the source domain armed them
//     with — (arrival time, arm time, source domain ID, per-frontier
//     sequence) — and are injected with scheduleKeyed, so the
//     destination wheel orders them by that key, never by which
//     goroutine delivered first.
//
//   - The dispatch comparator (sim.go slotLess) extends the
//     monolithic (deadline, arm seq) order to (deadline, armAt, dom,
//     seq). With one domain, armAt is monotone in seq and dom is
//     constant, so single-domain cluster runs are byte-identical to a
//     plain Simulator; with N domains, cross-domain ties at an exact
//     (deadline, armAt) collision break by domain ID — deterministic
//     by construction.
//
//     That tie-break is the one place a wide split can diverge from
//     the monolithic interleave: when messages from two DIFFERENT
//     source domains collide at an identical key (on a saturated
//     symmetric tree, ACK arrivals from sibling subtrees phase-lock
//     to the shared core's serialization grid, so this does happen),
//     domain ID decides instead of the global arm order, and the
//     swapped enqueue shifts the affected delivery by one
//     serialization quantum. The schedule stays deterministic at any
//     fixed domain count — reruns are byte-identical — and splits in
//     which every frontier pair has a single source domain (e.g. a
//     two-domain partition) are byte-identical to the monolithic run,
//     because a pair's emission sequence IS its arm order.
//
//   - Packet ownership transfers by value: the source link copies the
//     packet into the message and releases its pooled original before
//     the barrier; the destination acquires from its own pool and
//     copies back at injection. Each pool stays single-owner and the
//     sussdebug lifecycle detector keeps working unchanged.
//
// Domains exchange no other state. Anything shared across a frontier
// (a recorder ring, a non-atomic counter) is a race; the runner layer
// therefore disables observation in cluster mode and uses the
// deterministic barrier predicate (StopAtBarrier) for semantic stops.

import (
	"fmt"
	"math"
	"sync"
	"time"
)

// xmsg is one packet crossing a domain frontier: the delivery it would
// have been scheduled as, plus the ordering key the source domain
// armed it with.
type xmsg struct {
	at    time.Duration // arrival (delivery deadline) at the destination
	armAt time.Duration // source-domain virtual time when emitted
	seq   uint64        // per-frontier-pair emission sequence
	dom   uint32        // source domain ID
	link  *Link         // frontier link; delivery runs l.deliver in the dst domain
	pkt   Packet        // by-value copy; the pooled original is already released
}

// frontierOut is the outbox for one (src, dst) domain pair. All
// frontier links between the same pair share one outbox — and one
// emission sequence — so two links' deliveries colliding at the same
// (arrival, armAt) instant still have a total order, the order their
// packets entered propagation. It is written only by the source
// domain's goroutine during a window and drained only by the
// coordinator between windows; the barrier orders the two.
type frontierOut struct {
	src, dst int
	seq      uint64
	msgs     []xmsg
}

// clusterDomain is one event domain: a Simulator plus its frontier
// inbox and the worker channel its goroutine blocks on.
type clusterDomain struct {
	sim  *Simulator
	in   []xmsg
	work chan time.Duration
}

// Cluster runs one logical simulation as N event domains in parallel.
// Build the topology with NewFabricOn / NewTreeOn / NewPathOn (which
// place nodes into domains and register cross-domain links), then
// drive it with Run exactly like a Simulator. A 1-domain Cluster is a
// plain Simulator with a coordinator wrapper: same code path, same
// bytes out.
//
// All construction and all Run calls must happen on one goroutine;
// parallelism lives strictly inside Run's windows.
type Cluster struct {
	doms []*clusterDomain
	outs []*frontierOut
	// fronts lists every cross-domain link for per-Run validation:
	// each must have positive propagation delay (the lookahead) and no
	// impairment pipeline (stages may reshape arrivals below it).
	fronts []*Link

	wg       sync.WaitGroup
	stopWhen func() bool
	barrier  func() bool
}

// NewCluster returns a cluster of n event domains (n < 1 is treated
// as 1). Domain 0 is the coordinator's own domain — it runs inline on
// the calling goroutine — so partitioners put the chattiest cluster
// of nodes there.
func NewCluster(n int) *Cluster {
	if n < 1 {
		n = 1
	}
	c := &Cluster{}
	for i := 0; i < n; i++ {
		s := NewSimulator()
		s.domID = uint32(i)
		c.doms = append(c.doms, &clusterDomain{sim: s})
	}
	return c
}

// N returns the number of domains.
func (c *Cluster) N() int { return len(c.doms) }

// Sim returns domain i's Simulator. Components built into domain i
// (its hosts, links, flows) must schedule and allocate only through
// this simulator.
func (c *Cluster) Sim(i int) *Simulator { return c.doms[i].sim }

// Now returns the most advanced domain clock. After Run returns, all
// domain clocks agree to within one lookahead window.
func (c *Cluster) Now() time.Duration {
	var max time.Duration
	for _, d := range c.doms {
		if n := d.sim.Now(); n > max {
			max = n
		}
	}
	return max
}

// Pending returns the number of queued events across all domains,
// counting frontier messages still staged in outboxes or inboxes.
func (c *Cluster) Pending() int {
	n := 0
	for _, d := range c.doms {
		n += d.sim.Pending() + len(d.in)
	}
	for _, o := range c.outs {
		n += len(o.msgs)
	}
	return n
}

// StopWhen installs a stop predicate on every domain, checked after
// every event exactly like Simulator.StopWhen. Because domains run
// concurrently, pred is called from multiple goroutines and the stop
// point within a window is NOT deterministic — use it only for
// error-path aborts (the runner watchdog's atomic flag), never for
// semantic termination; use StopAtBarrier for that. Pass nil to clear.
func (c *Cluster) StopWhen(pred func() bool) {
	c.stopWhen = pred
	for _, d := range c.doms {
		d.sim.StopWhen(pred)
	}
}

// StopPred returns the currently installed StopWhen predicate (nil when
// none), mirroring Simulator.StopPred so the runner watchdog can
// compose with and restore a caller's predicate.
func (c *Cluster) StopPred() func() bool { return c.stopWhen }

// StopAtBarrier installs a predicate evaluated by the coordinator at
// each window barrier, with every domain parked and all frontier
// traffic handed over. The window structure is a pure function of the
// event timeline, so — unlike StopWhen — a barrier stop is
// deterministic: same inputs, same stop window, same results. The
// barrier's join orders every domain's writes before the predicate
// runs, so it may read component state plainly; only state that
// multiple domains write concurrently within a window (a shared
// completion counter) must itself be atomic. Pass nil to clear.
func (c *Cluster) StopAtBarrier(pred func() bool) { c.barrier = pred }

// Lookahead returns the conservative synchronization window: the
// minimum propagation delay across cross-domain links (MaxInt64 when
// domains are fully independent). It panics if any frontier link is
// invalid; Run performs the same validation.
func (c *Cluster) Lookahead() time.Duration { return c.lookahead() }

func (c *Cluster) lookahead() time.Duration {
	la := time.Duration(math.MaxInt64)
	for _, l := range c.fronts {
		if l.cfg.Delay <= 0 {
			panic(fmt.Sprintf("netsim: cross-domain link %q needs positive propagation delay (the delay is the conservative lookahead)", l.cfg.Name))
		}
		if l.impair != nil {
			panic(fmt.Sprintf("netsim: cross-domain link %q has an impairment pipeline; stages can reshape arrivals below the propagation-delay lookahead — keep impaired links inside one domain", l.cfg.Name))
		}
		if l.cfg.Delay < la {
			la = l.cfg.Delay
		}
	}
	return la
}

// bindFrontier registers l as a cross-domain link from domain src to
// domain dst, wiring its outbox. Called by the Fabric when a
// connection spans domains.
func (c *Cluster) bindFrontier(l *Link, src, dst int) {
	if src == dst {
		panic("netsim: bindFrontier within one domain")
	}
	var out *frontierOut
	for _, o := range c.outs {
		if o.src == src && o.dst == dst {
			out = o
			break
		}
	}
	if out == nil {
		out = &frontierOut{src: src, dst: dst}
		c.outs = append(c.outs, out)
	}
	l.front = out
	c.fronts = append(c.fronts, l)
}

// Run executes the cluster until every domain drains, the earliest
// pending event passes until, the StopWhen predicate fires, or the
// StopAtBarrier predicate holds at a barrier. It returns the most
// advanced domain clock, and like Simulator.Run it leaves clocks at
// until after a horizon stop with work still pending.
func (c *Cluster) Run(until time.Duration) time.Duration {
	if len(c.doms) == 1 {
		return c.doms[0].sim.Run(until)
	}
	la := c.lookahead()
	c.startWorkers()
	defer c.stopWorkers()
	for {
		c.inject()
		t0 := int64(math.MaxInt64)
		for _, d := range c.doms {
			if at, ok := d.sim.NextEventAt(); ok && int64(at) < t0 {
				t0 = int64(at)
			}
		}
		if t0 == math.MaxInt64 || t0 > int64(until) {
			// Drained, or everything pending is past the horizon: settle
			// each clock to the monolithic semantics (Now()==until when
			// events remain). Nothing fires — every pending deadline
			// exceeds until.
			for _, d := range c.doms {
				d.sim.Run(until)
			}
			return c.Now()
		}
		// The window horizon: nothing emitted inside [t0, t0+la) can
		// arrive before t0+la, so every domain may run to t0+la-1
		// without hearing from its neighbors. The overflow check covers
		// both la == MaxInt64 (independent domains: one window to the
		// horizon) and t0 near the top of the representable range.
		h := time.Duration(t0) + la - 1
		if h < time.Duration(t0) || h > until {
			h = until
		}
		c.runWindow(h)
		c.route()
		if c.stopWhen != nil && c.stopWhen() {
			return c.Now()
		}
		if c.barrier != nil && c.barrier() {
			return c.Now()
		}
	}
}

// RunAll executes events until every domain drains (or a stop
// predicate fires).
func (c *Cluster) RunAll() time.Duration {
	return c.Run(time.Duration(math.MaxInt64))
}

// startWorkers parks one goroutine per non-coordinator domain on its
// work channel. Workers live only for the duration of one Run call:
// no Close method to forget, no goroutines idling between runs.
func (c *Cluster) startWorkers() {
	for _, d := range c.doms[1:] {
		d.work = make(chan time.Duration)
		go func(d *clusterDomain) {
			for h := range d.work {
				d.sim.Run(h)
				c.wg.Done()
			}
		}(d)
	}
}

func (c *Cluster) stopWorkers() {
	for _, d := range c.doms[1:] {
		close(d.work)
		d.work = nil
	}
}

// runWindow releases every domain to horizon h and joins. The
// coordinator executes domain 0 inline. The channel send/WaitGroup
// pair establishes the happens-before edges that make the outbox
// handoff in route() race-free.
func (c *Cluster) runWindow(h time.Duration) {
	c.wg.Add(len(c.doms) - 1)
	for _, d := range c.doms[1:] {
		d.work <- h
	}
	c.doms[0].sim.Run(h)
	c.wg.Wait()
}

// route drains every outbox into its destination inbox. Coordinator
// only, between windows.
func (c *Cluster) route() {
	for _, o := range c.outs {
		if len(o.msgs) == 0 {
			continue
		}
		d := c.doms[o.dst]
		d.in = append(d.in, o.msgs...)
		o.msgs = o.msgs[:0]
	}
}

// inject schedules every staged inbox message into its destination
// domain's wheel, transferring packet ownership into that domain's
// pool. Coordinator only, between windows — the destination simulator
// is parked, so touching its wheel and pool is safe.
func (c *Cluster) inject() {
	for _, d := range c.doms {
		for i := range d.in {
			m := &d.in[i]
			p := d.sim.Pool().Get()
			p.CopyFrom(&m.pkt)
			d.sim.scheduleKeyed(m.at, m.armAt, m.dom, m.seq, linkDeliverEv, m.link, p)
		}
		d.in = d.in[:0]
	}
}
