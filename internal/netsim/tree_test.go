package netsim

import (
	"testing"
	"time"
)

func smallTreeSpec() TreeSpec {
	return TreeSpec{
		Groups:        2,
		HostsPerGroup: 3,
		Servers:       2,
		Core:          LinkConfig{Rate: 1e8, Delay: 10 * time.Millisecond},
		Agg:           LinkConfig{Rate: 5e7, Delay: 5 * time.Millisecond},
		Access:        LinkConfig{Rate: 2e7, Delay: 2 * time.Millisecond},
	}
}

// Every (server, client) pair must exchange a data packet and an ACK:
// the compiled route tables cover the full host matrix in both
// directions.
func TestTreeAllPairsConnected(t *testing.T) {
	sim := NewSimulator()
	tr := NewTree(sim, smallTreeSpec())
	n := tr.NumClients()
	s := len(tr.Servers)

	received := make(map[[2]int]int) // [server, client] data arrivals
	acked := make(map[[2]int]int)

	for ci, cli := range tr.Clients {
		ci, cli := ci, cli
		cli.SetHandler(func(pkt *Packet) {
			received[[2]int{int(pkt.Flow), ci}]++
			cli.Send(&Packet{Kind: Ack, Size: 64, Flow: pkt.Flow, Dst: tr.Servers[pkt.Flow].ID()})
		})
	}
	for si, srv := range tr.Servers {
		si := si
		srv.SetHandler(func(pkt *Packet) {
			// The ACK's flow field still carries the server index.
			acked[[2]int{si, -1}]++
		})
	}
	sim.Schedule(0, func() {
		for si, srv := range tr.Servers {
			for _, cli := range tr.Clients {
				srv.Send(&Packet{Kind: Data, Size: 1500, Flow: FlowID(si), Dst: cli.ID()})
			}
		}
	})
	sim.RunAll()

	for si := 0; si < s; si++ {
		for ci := 0; ci < n; ci++ {
			if received[[2]int{si, ci}] != 1 {
				t.Errorf("server %d → client %d: %d data arrivals, want 1", si, ci, received[[2]int{si, ci}])
			}
		}
		if acked[[2]int{si, -1}] != n {
			t.Errorf("server %d: %d ACKs, want %d", si, acked[[2]int{si, -1}], n)
		}
	}
	// All data crossed the one shared core; all ACKs its mirror.
	if got := tr.Core.Stats().DeliveredPackets; got != s*n {
		t.Errorf("core delivered %d, want %d", got, s*n)
	}
	if got := tr.CoreRev.Stats().DeliveredPackets; got != s*n {
		t.Errorf("core-rev delivered %d, want %d", got, s*n)
	}
}

// The ACK path of every pair must mirror the data path level for
// level: each link in DownLinks carries the data packet, each link in
// UpLinks carries the ACK, and nothing strays onto another group's
// branch.
func TestTreeReversePathMirrorsForward(t *testing.T) {
	sim := NewSimulator()
	tr := NewTree(sim, smallTreeSpec())

	// One transfer: server 1 → last client of group 1.
	s, c := 1, tr.NumClients()-1
	cli := tr.Clients[c]
	cli.SetHandler(func(pkt *Packet) {
		cli.Send(&Packet{Kind: Ack, Size: 64, Dst: tr.Servers[s].ID()})
	})
	gotAck := false
	tr.Servers[s].SetHandler(func(*Packet) { gotAck = true })
	sim.Schedule(0, func() {
		tr.Servers[s].Send(&Packet{Kind: Data, Size: 1500, Dst: cli.ID()})
	})
	sim.RunAll()

	if !gotAck {
		t.Fatal("ack never returned")
	}
	for i, l := range tr.DownLinks(s, c) {
		if got := l.Stats().DeliveredPackets; got != 1 {
			t.Errorf("down link %d (%s): delivered %d, want 1", i, l.Name(), got)
		}
	}
	for i, l := range tr.UpLinks(s, c) {
		if got := l.Stats().DeliveredPackets; got != 1 {
			t.Errorf("up link %d (%s): delivered %d, want 1", i, l.Name(), got)
		}
	}
	// The other group's branch saw nothing.
	other := tr.GroupOf(c) ^ 1
	if got := tr.AggDown[other].Stats().DeliveredPackets + tr.AggUp[other].Stats().DeliveredPackets; got != 0 {
		t.Errorf("group %d branch carried %d packets, want 0", other, got)
	}
	// The other server's access links saw only what it sent (nothing).
	if got := tr.SrvUp[0].Stats().EnqueuedPackets + tr.SrvDown[0].Stats().EnqueuedPackets; got != 0 {
		t.Errorf("server 0 edges carried %d packets, want 0", got)
	}
}

// A 1×1×1 tree is the degenerate linear path: one branch, three hops,
// and the end-to-end RTT is the sum of the duplex levels.
func TestTreeDegeneratesToPath(t *testing.T) {
	sim := NewSimulator()
	tr := NewTree(sim, TreeSpec{
		Groups:        1,
		HostsPerGroup: 1,
		Core:          LinkConfig{Rate: 1e9, Delay: 20 * time.Millisecond},
		Agg:           LinkConfig{Rate: 1e9, Delay: 15 * time.Millisecond},
		Access:        LinkConfig{Rate: 1e9, Delay: 15 * time.Millisecond},
		ServerAccess:  LinkConfig{Rate: 1e10, Delay: 0},
	})
	cli := tr.Clients[0]
	var ackAt time.Duration
	cli.SetHandler(func(pkt *Packet) {
		cli.Send(&Packet{Kind: Ack, Size: 64, Dst: tr.Servers[0].ID()})
	})
	tr.Servers[0].SetHandler(func(*Packet) { ackAt = sim.Now() })
	sim.Schedule(0, func() {
		tr.Servers[0].Send(&Packet{Kind: Data, Size: 1500, Dst: cli.ID()})
	})
	sim.RunAll()
	// Propagation: 2×(20+15+15) ms = 100 ms plus serialization.
	if ackAt < 100*time.Millisecond || ackAt > 102*time.Millisecond {
		t.Errorf("degenerate-tree RTT = %v, want ≈100ms", ackAt)
	}
}

// Contention happens where it should: clients of one group overload
// their aggregation link without touching the other group's queue.
func TestTreeAggregationContention(t *testing.T) {
	sim := NewSimulator()
	spec := smallTreeSpec()
	spec.Agg = LinkConfig{Rate: 8e6, Delay: time.Millisecond, QueueBytes: 3000}
	tr := NewTree(sim, spec)
	for _, cli := range tr.Clients {
		cli.SetHandler(func(*Packet) {})
	}
	// Ten packets toward group 0 at once: 10×1000 B into a 3000 B queue
	// behind an 8 Mbps serializer must drop.
	sim.Schedule(0, func() {
		for j := 0; j < 10; j++ {
			tr.Servers[0].Send(&Packet{Kind: Data, Size: 1000, Dst: tr.Client(0, j%3).ID()})
		}
	})
	sim.RunAll()
	g0 := tr.AggDown[0].Stats()
	if g0.DroppedPackets == 0 {
		t.Error("expected drops on the contended aggregation link")
	}
	if g0.DeliveredPackets+g0.DroppedPackets != 10 {
		t.Errorf("agg0 delivered+dropped = %d, want 10", g0.DeliveredPackets+g0.DroppedPackets)
	}
	if got := tr.AggDown[1].Stats().EnqueuedPackets; got != 0 {
		t.Errorf("agg1 carried %d packets, want 0", got)
	}
}

// TestTreeHotPathZeroAlloc drives pooled packets through the full
// server→trunk→core→aggregation→access pipeline and requires the
// steady state to be allocation-free, extending the linear-path alloc
// gate to the tree's multi-level forwarding.
func TestTreeHotPathZeroAlloc(t *testing.T) {
	if debugSequester {
		t.Skip("sussdebug: pool sequesters, steady state allocates by design")
	}
	sim := NewSimulator()
	tr := NewTree(sim, smallTreeSpec())
	var delivered []*Packet
	for _, cli := range tr.Clients {
		cli.SetHandler(func(pkt *Packet) { delivered = append(delivered, pkt) })
	}
	pool := sim.Pool()
	send := func(count int) {
		for i := 0; i < count; i++ {
			p := pool.Get()
			p.Kind = Data
			p.Size = 1500
			p.Dst = tr.Clients[i%tr.NumClients()].ID()
			tr.Servers[i%len(tr.Servers)].Send(p)
		}
		sim.RunAll()
		for _, p := range delivered {
			p.Release()
		}
		delivered = delivered[:0]
	}
	// Warm the pool, the ring-buffer queues and the delivered slice
	// past their growth phase.
	send(64)

	allocs := testing.AllocsPerRun(200, func() { send(6) })
	if allocs > 0 {
		t.Errorf("tree pipeline allocates %.1f allocs/op, want 0", allocs)
	}
}
