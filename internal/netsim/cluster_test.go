package netsim

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"
)

// The cluster determinism contract: domain count changes which
// goroutine executes an event, never which events execute or in what
// order a component observes them. These tests replay the same
// workload at domains=1 (monolithic code path, byte-identical to a
// plain Simulator) and domains=N and require identical per-host
// delivery logs, identical link ledgers, and balanced packet pools.
// They run under -race in CI (make domains), which also proves the
// frontier handoff is properly ordered by the window barrier.

// starNet is a hub-and-spoke chatter workload: K hosts around one
// router, every spoke a duplex pair with positive delay (a frontier
// when the host sits outside the hub's domain). Each host pre-arms
// random sends from its own RNG and bounces replies until a hop
// budget runs out, so cross-domain traffic flows in both directions
// at colliding instants.
type starNet struct {
	hosts []*Host
	logs  [][]starEvent
	spoke []*Link // host→hub
	rspk  []*Link // hub→host
}

type starEvent struct {
	at   time.Duration
	src  NodeID
	flow FlowID
	seq  int64
	size int
}

const starHops = 4

func buildStar(c *Cluster, hosts int, seed int64) *starNet {
	n := &starNet{}
	f := NewFabricOn(c)
	hub := f.Router("hub")
	for i := 0; i < hosts; i++ {
		n.hosts = append(n.hosts, f.HostIn(i%c.N(), fmt.Sprintf("h%d", i)))
	}
	rng := rand.New(rand.NewSource(seed))
	for i, h := range n.hosts {
		cfg := LinkConfig{
			Name:  fmt.Sprintf("spoke%d", i),
			Rate:  float64(10+rng.Intn(90)) * 1e6,
			Delay: time.Duration(1+rng.Intn(4)) * time.Millisecond,
		}
		up, down := f.Duplex(h, hub, cfg, ackMirror(cfg))
		n.spoke = append(n.spoke, up)
		n.rspk = append(n.rspk, down)
	}
	f.Compile()

	n.logs = make([][]starEvent, hosts)
	for i, h := range n.hosts {
		i, h := i, h
		hrng := rand.New(rand.NewSource(seed*1000003 + int64(i)))
		sim := h.Sim()
		h.SetHandler(func(pkt *Packet) {
			n.logs[i] = append(n.logs[i], starEvent{
				at: sim.Now(), src: pkt.Src, flow: pkt.Flow, seq: pkt.Seq, size: pkt.Size,
			})
			if pkt.Seq < starHops {
				// Bounce it back, one hop older. The reply size draws
				// from the host's own RNG: if delivery order at this
				// host ever depended on domain scheduling, the draws
				// would diverge and the logs with them.
				r := sim.Pool().Get()
				r.Kind = Data
				r.Flow = pkt.Flow
				r.Seq = pkt.Seq + 1
				r.Dst = pkt.Src
				r.Size = 100 + hrng.Intn(1300)
				h.Send(r)
			}
			pkt.Release()
		})
		// Pre-armed opening sends at random instants to random peers.
		for k := 0; k < 30; k++ {
			at := time.Duration(hrng.Int63n(int64(200 * time.Millisecond)))
			peer := n.hosts[hrng.Intn(hosts)]
			if peer == h {
				continue
			}
			size := 100 + hrng.Intn(1300)
			flow := FlowID(i*1000 + k)
			dst := peer.ID()
			sim.ScheduleAt(at, func() {
				p := sim.Pool().Get()
				p.Kind = Data
				p.Flow = flow
				p.Dst = dst
				p.Size = size
				h.Send(p)
			})
		}
	}
	return n
}

func runStar(t *testing.T, domains, hosts int, seed int64) *starNet {
	t.Helper()
	c := NewCluster(domains)
	n := buildStar(c, hosts, seed)
	c.RunAll()
	if p := c.Pending(); p != 0 {
		t.Fatalf("domains=%d seed=%d: %d events still pending after RunAll", domains, seed, p)
	}
	for i := 0; i < c.N(); i++ {
		if out := c.Sim(i).Pool().Stats().Outstanding(); out != 0 {
			t.Errorf("domains=%d seed=%d: domain %d pool leaks %d packets", domains, seed, i, out)
		}
	}
	return n
}

// TestClusterDifferential is the frontier tie-breaking property test:
// random cross-domain traffic replayed at domains=1 vs domains=N must
// produce identical per-host delivery sequences (order, timestamps,
// contents) and identical link ledgers, across seeds and domain
// counts.
func TestClusterDifferential(t *testing.T) {
	const hosts = 12
	for seed := int64(1); seed <= 5; seed++ {
		base := runStar(t, 1, hosts, seed)
		for _, domains := range []int{2, 3, 5} {
			got := runStar(t, domains, hosts, seed)
			for i := range base.logs {
				if len(base.logs[i]) != len(got.logs[i]) {
					t.Fatalf("seed=%d domains=%d host %d: %d deliveries, want %d",
						seed, domains, i, len(got.logs[i]), len(base.logs[i]))
				}
				for j := range base.logs[i] {
					if base.logs[i][j] != got.logs[i][j] {
						t.Fatalf("seed=%d domains=%d host %d delivery %d: %+v, want %+v",
							seed, domains, i, j, got.logs[i][j], base.logs[i][j])
					}
				}
			}
			for i := range base.spoke {
				if b, g := base.spoke[i].Stats(), got.spoke[i].Stats(); b != g {
					t.Errorf("seed=%d domains=%d spoke %d ledger: %+v, want %+v", seed, domains, i, g, b)
				}
				if b, g := base.rspk[i].Stats(), got.rspk[i].Stats(); b != g {
					t.Errorf("seed=%d domains=%d rspoke %d ledger: %+v, want %+v", seed, domains, i, g, b)
				}
			}
		}
	}
}

// TestClusterHorizonStop pins Run's horizon semantics: stopping
// mid-simulation at an arbitrary horizon must leave every domain
// clock at the horizon (work pending), and resuming must produce the
// same final state as one uninterrupted run.
func TestClusterHorizonStop(t *testing.T) {
	const hosts = 8
	base := runStar(t, 1, hosts, 42)

	c := NewCluster(3)
	n := buildStar(c, hosts, 42)
	for h := 10 * time.Millisecond; ; h += 37 * time.Millisecond {
		if end := c.Run(h); c.Pending() == 0 {
			break
		} else if end != h {
			t.Fatalf("horizon stop at %v returned %v with %d pending", h, end, c.Pending())
		}
	}
	for i := range base.logs {
		if len(base.logs[i]) != len(n.logs[i]) {
			t.Fatalf("host %d: %d deliveries after chunked runs, want %d", i, len(n.logs[i]), len(base.logs[i]))
		}
		for j := range base.logs[i] {
			if base.logs[i][j] != n.logs[i][j] {
				t.Fatalf("host %d delivery %d: %+v, want %+v", i, j, n.logs[i][j], base.logs[i][j])
			}
		}
	}
}

// TestClusterFrontierValidation pins the lookahead preconditions:
// a zero-delay cross-domain link and an impaired cross-domain link
// must both refuse to run.
func TestClusterFrontierValidation(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("zero-delay frontier", func() {
		c := NewCluster(2)
		f := NewFabricOn(c)
		a := f.Host("a")
		b := f.HostIn(1, "b")
		f.Connect(a, b, LinkConfig{Name: "x", Rate: 1e6})
		f.Compile()
		c.Run(time.Second)
	})
	mustPanic("impaired frontier", func() {
		c := NewCluster(2)
		f := NewFabricOn(c)
		a := f.Host("a")
		b := f.HostIn(1, "b")
		l := f.Connect(a, b, LinkConfig{Name: "x", Rate: 1e6, Delay: time.Millisecond})
		f.Compile()
		l.AttachImpairments(&Impairments{})
		c.Run(time.Second)
	})
}

// TestClusterBarrierStop pins StopAtBarrier determinism: the stop
// window is a function of the event timeline, so two identical runs
// stop at the identical clock with identical logs.
func TestClusterBarrierStop(t *testing.T) {
	run := func() (time.Duration, int) {
		c := NewCluster(3)
		n := buildStar(c, 8, 7)
		seen := 0
		c.StopAtBarrier(func() bool {
			seen = 0
			for i := range n.logs {
				seen += len(n.logs[i])
			}
			return seen >= 50
		})
		end := c.RunAll()
		return end, seen
	}
	e1, s1 := run()
	e2, s2 := run()
	if e1 != e2 || s1 != s2 {
		t.Fatalf("barrier stop not reproducible: (%v, %d) vs (%v, %d)", e1, s1, e2, s2)
	}
	if s1 < 50 {
		t.Fatalf("barrier stop fired early: %d deliveries", s1)
	}
	if e1 == 0 || e1 == time.Duration(math.MaxInt64) {
		t.Fatalf("implausible stop clock %v", e1)
	}
}

// TestTreeDomainHint checks the manual placement override: subtree g
// goes exactly where the hint says, everything else stays in domain 0,
// and the cluster's lookahead is the delay of the links the hinted
// groups actually cross.
func TestTreeDomainHint(t *testing.T) {
	hint := []int{2, 0, 1}
	spec := TreeSpec{
		Groups: 3, HostsPerGroup: 2, Servers: 2,
		Core:       LinkConfig{Rate: 1e8, Delay: 3 * time.Millisecond, QueueBytes: 1 << 20},
		Agg:        LinkConfig{Rate: 1e8, Delay: 2 * time.Millisecond, QueueBytes: 1 << 20},
		Access:     LinkConfig{Rate: 1e8, Delay: time.Millisecond, QueueBytes: 1 << 20},
		DomainHint: func(g int) int { return hint[g] },
	}
	c := NewCluster(3)
	tree := NewTreeOn(c, spec)
	for g := 0; g < spec.Groups; g++ {
		want := c.Sim(hint[g])
		for h := 0; h < spec.HostsPerGroup; h++ {
			if got := tree.Clients[g*spec.HostsPerGroup+h].Sim(); got != want {
				t.Errorf("group %d client %d in wrong domain", g, h)
			}
		}
	}
	for s, h := range tree.Servers {
		if h.Sim() != c.Sim(0) {
			t.Errorf("server %d left domain 0 without a hint", s)
		}
	}
	// Group 1 is hinted into the root's own domain, so only the agg
	// duplexes of groups 0 and 2 are frontiers: lookahead is their
	// 2 ms delay, not the 3 ms core or the 1 ms access.
	if la := c.Lookahead(); la != 2*time.Millisecond {
		t.Errorf("lookahead = %v, want 2ms", la)
	}
}

// TestTreeDomainHintRange checks that a hint outside [0, N) fails
// loudly at build time instead of silently corrupting placement.
func TestTreeDomainHintRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range DomainHint did not panic")
		}
	}()
	spec := TreeSpec{
		Groups: 1, HostsPerGroup: 1,
		Core:       LinkConfig{Rate: 1e8, Delay: time.Millisecond, QueueBytes: 1 << 20},
		Agg:        LinkConfig{Rate: 1e8, Delay: time.Millisecond, QueueBytes: 1 << 20},
		Access:     LinkConfig{Rate: 1e8, Delay: time.Millisecond, QueueBytes: 1 << 20},
		DomainHint: func(int) int { return 5 },
	}
	NewTreeOn(NewCluster(2), spec)
}
