package netsim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestScheduleRunsInTimeOrder(t *testing.T) {
	s := NewSimulator()
	var got []int
	s.Schedule(30*time.Millisecond, func() { got = append(got, 3) })
	s.Schedule(10*time.Millisecond, func() { got = append(got, 1) })
	s.Schedule(20*time.Millisecond, func() { got = append(got, 2) })
	s.RunAll()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if s.Now() != 30*time.Millisecond {
		t.Errorf("Now() = %v, want 30ms", s.Now())
	}
}

func TestSameTimeFIFO(t *testing.T) {
	s := NewSimulator()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(time.Millisecond, func() { got = append(got, i) })
	}
	s.RunAll()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-time events not FIFO: %v", got)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	s := NewSimulator()
	var times []time.Duration
	s.Schedule(time.Millisecond, func() {
		times = append(times, s.Now())
		s.Schedule(time.Millisecond, func() {
			times = append(times, s.Now())
		})
	})
	s.RunAll()
	if len(times) != 2 || times[0] != time.Millisecond || times[1] != 2*time.Millisecond {
		t.Fatalf("times = %v", times)
	}
}

func TestTimerStop(t *testing.T) {
	s := NewSimulator()
	fired := false
	tm := s.Schedule(time.Millisecond, func() { fired = true })
	if !tm.Active() {
		t.Fatal("timer should be active before firing")
	}
	if !tm.Stop() {
		t.Fatal("Stop should report cancellation")
	}
	if tm.Stop() {
		t.Fatal("second Stop should be a no-op")
	}
	s.RunAll()
	if fired {
		t.Fatal("cancelled timer fired")
	}
}

func TestRunUntilStopsClock(t *testing.T) {
	s := NewSimulator()
	fired := false
	s.Schedule(100*time.Millisecond, func() { fired = true })
	end := s.Run(50 * time.Millisecond)
	if fired {
		t.Fatal("event beyond horizon fired")
	}
	if end != 50*time.Millisecond {
		t.Fatalf("Run returned %v, want 50ms", end)
	}
	// The event must still fire on a later Run.
	s.RunAll()
	if !fired {
		t.Fatal("event lost after horizon-limited Run")
	}
}

func TestHalt(t *testing.T) {
	s := NewSimulator()
	count := 0
	for i := 0; i < 5; i++ {
		s.Schedule(time.Duration(i)*time.Millisecond, func() {
			count++
			if count == 2 {
				s.Halt()
			}
		})
	}
	s.RunAll()
	if count != 2 {
		t.Fatalf("ran %d events after Halt, want 2", count)
	}
}

func TestStopWhen(t *testing.T) {
	s := NewSimulator()
	count := 0
	for i := 1; i <= 5; i++ {
		s.Schedule(time.Duration(i)*time.Millisecond, func() { count++ })
	}
	s.StopWhen(func() bool { return count >= 3 })
	s.RunAll()
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
}

func TestNegativeDelayClampsToNow(t *testing.T) {
	s := NewSimulator()
	s.Schedule(time.Millisecond, func() {
		at := s.Now()
		s.Schedule(-time.Second, func() {
			if s.Now() != at {
				t.Errorf("negative delay ran at %v, want %v", s.Now(), at)
			}
		})
	})
	s.RunAll()
}

// Property: for any set of delays, events fire in sorted order.
func TestEventOrderProperty(t *testing.T) {
	f := func(delaysMs []uint16) bool {
		if len(delaysMs) == 0 {
			return true
		}
		s := NewSimulator()
		var fired []time.Duration
		for _, d := range delaysMs {
			d := time.Duration(d) * time.Millisecond
			s.Schedule(d, func() { fired = append(fired, s.Now()) })
		}
		s.RunAll()
		if len(fired) != len(delaysMs) {
			return false
		}
		return sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: interleaving Run horizons never reorders or drops events.
func TestSplitRunEquivalenceProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n%50) + 1
		delays := make([]time.Duration, count)
		for i := range delays {
			delays[i] = time.Duration(rng.Intn(1000)) * time.Millisecond
		}

		runOne := func(split bool) []time.Duration {
			s := NewSimulator()
			var fired []time.Duration
			for _, d := range delays {
				d := d
				s.Schedule(d, func() { fired = append(fired, s.Now()) })
			}
			if split {
				for h := time.Duration(0); h <= time.Second; h += 100 * time.Millisecond {
					s.Run(h)
				}
			}
			s.RunAll()
			return fired
		}

		a, b := runOne(false), runOne(true)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
