package netsim

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

// sink collects delivered packets with arrival timestamps.
type sink struct {
	id   NodeID
	sim  *Simulator
	pkts []*Packet
	at   []time.Duration
}

func (s *sink) ID() NodeID { return s.id }
func (s *sink) Deliver(p *Packet) {
	s.pkts = append(s.pkts, p)
	s.at = append(s.at, s.sim.Now())
}

func TestLinkSerializationAndDelay(t *testing.T) {
	sim := NewSimulator()
	dst := &sink{id: 1, sim: sim}
	// 8 Mbps, 10 ms propagation: a 1000-byte packet serializes in 1 ms.
	l := NewLink(sim, LinkConfig{Name: "l", Rate: 8e6, Delay: 10 * time.Millisecond}, dst)
	sim.Schedule(0, func() {
		l.Enqueue(&Packet{Size: 1000, Dst: 1})
		l.Enqueue(&Packet{Size: 1000, Dst: 1})
	})
	sim.RunAll()
	if len(dst.pkts) != 2 {
		t.Fatalf("delivered %d packets, want 2", len(dst.pkts))
	}
	if dst.at[0] != 11*time.Millisecond {
		t.Errorf("first arrival %v, want 11ms", dst.at[0])
	}
	// Second packet waits 1 ms behind the first in the serializer.
	if dst.at[1] != 12*time.Millisecond {
		t.Errorf("second arrival %v, want 12ms", dst.at[1])
	}
}

func TestLinkDropTail(t *testing.T) {
	sim := NewSimulator()
	dst := &sink{id: 1, sim: sim}
	l := NewLink(sim, LinkConfig{Name: "l", Rate: 8e6, Delay: time.Millisecond, QueueBytes: 2500}, dst)
	var drops int
	l.OnDrop = func(p *Packet, congestion bool) {
		if !congestion {
			t.Error("tail drop should report congestion=true")
		}
		drops++
	}
	sim.Schedule(0, func() {
		for i := 0; i < 4; i++ {
			l.Enqueue(&Packet{Size: 1000, Dst: 1})
		}
	})
	sim.RunAll()
	// The first packet dequeues into the serializer immediately, so the
	// 2500 B buffer then holds packets 2 and 3; packet 4 tail-drops.
	if drops != 1 {
		t.Errorf("drops = %d, want 1 (serializer + 2×1000B buffered)", drops)
	}
	if got := l.Stats().DroppedPackets; got != 1 {
		t.Errorf("stats drops = %d, want 1", got)
	}
	if len(dst.pkts) != 3 {
		t.Errorf("delivered = %d, want 3", len(dst.pkts))
	}
}

func TestLinkRandomLoss(t *testing.T) {
	sim := NewSimulator()
	dst := &sink{id: 1, sim: sim}
	n := 0
	l := NewLink(sim, LinkConfig{
		Name: "l", Rate: 1e9, Delay: time.Millisecond,
		Loss: func(*Packet) bool { n++; return n%2 == 0 },
	}, dst)
	sim.Schedule(0, func() {
		for i := 0; i < 10; i++ {
			l.Enqueue(&Packet{Size: 100, Dst: 1})
		}
	})
	sim.RunAll()
	if len(dst.pkts) != 5 {
		t.Errorf("delivered %d, want 5", len(dst.pkts))
	}
	if got := l.Stats().ErasedPackets; got != 5 {
		t.Errorf("erased = %d, want 5", got)
	}
}

func TestLinkJitterInOrderClamp(t *testing.T) {
	sim := NewSimulator()
	dst := &sink{id: 1, sim: sim}
	jit := []time.Duration{20 * time.Millisecond, 0} // first packet delayed more
	i := 0
	l := NewLink(sim, LinkConfig{
		Name: "l", Rate: 8e7, Delay: time.Millisecond,
		Jitter: func(time.Duration, *Packet) time.Duration { d := jit[i%2]; i++; return d },
	}, dst)
	sim.Schedule(0, func() {
		l.Enqueue(&Packet{Size: 1000, Seq: 1, Dst: 1})
		l.Enqueue(&Packet{Size: 1000, Seq: 2, Dst: 1})
	})
	sim.RunAll()
	if len(dst.pkts) != 2 {
		t.Fatalf("delivered %d, want 2", len(dst.pkts))
	}
	if dst.pkts[0].Seq != 1 || dst.pkts[1].Seq != 2 {
		t.Errorf("reordered despite AllowReorder=false: %d then %d", dst.pkts[0].Seq, dst.pkts[1].Seq)
	}
	if dst.at[1] < dst.at[0] {
		t.Errorf("arrival times reordered: %v then %v", dst.at[0], dst.at[1])
	}
}

func TestLinkVariableRate(t *testing.T) {
	sim := NewSimulator()
	dst := &sink{id: 1, sim: sim}
	// Rate halves after 10 ms: serialization of later packets doubles.
	model := func(now time.Duration) float64 {
		if now < 10*time.Millisecond {
			return 8e6
		}
		return 4e6
	}
	l := NewLink(sim, LinkConfig{Name: "l", RateModel: model, Delay: 0}, dst)
	sim.Schedule(0, func() { l.Enqueue(&Packet{Size: 1000, Dst: 1}) })
	sim.Schedule(20*time.Millisecond, func() { l.Enqueue(&Packet{Size: 1000, Dst: 1}) })
	sim.RunAll()
	if dst.at[0] != time.Millisecond {
		t.Errorf("fast-phase arrival %v, want 1ms", dst.at[0])
	}
	if dst.at[1] != 22*time.Millisecond {
		t.Errorf("slow-phase arrival %v, want 22ms", dst.at[1])
	}
}

// Property: conservation — with ample buffer and no random loss, every
// enqueued packet is delivered exactly once, in order.
func TestLinkConservationProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n%100) + 1
		sim := NewSimulator()
		dst := &sink{id: 1, sim: sim}
		l := NewLink(sim, LinkConfig{Name: "l", Rate: 1e7, Delay: 5 * time.Millisecond, QueueBytes: 64 << 20}, dst)
		var sentBytes int64
		for i := 0; i < count; i++ {
			i := i
			size := rng.Intn(1400) + 60
			sentBytes += int64(size)
			sim.Schedule(time.Duration(rng.Intn(50))*time.Millisecond, func() {
				l.Enqueue(&Packet{Size: size, Seq: int64(i), Dst: 1})
			})
		}
		sim.RunAll()
		if len(dst.pkts) != count {
			return false
		}
		st := l.Stats()
		return st.DeliveredBytes == sentBytes && st.DroppedPackets == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: a link never delivers faster than its configured rate —
// total delivery time of a back-to-back burst is at least bytes*8/rate.
func TestLinkRateCeilingProperty(t *testing.T) {
	f := func(n uint8) bool {
		count := int(n%50) + 2
		sim := NewSimulator()
		dst := &sink{id: 1, sim: sim}
		rate := 1e7
		l := NewLink(sim, LinkConfig{Name: "l", Rate: rate, Delay: 0, QueueBytes: 64 << 20}, dst)
		size := 1000
		sim.Schedule(0, func() {
			for i := 0; i < count; i++ {
				l.Enqueue(&Packet{Size: size, Dst: 1})
			}
		})
		sim.RunAll()
		minTime := time.Duration(float64(count*size*8) / rate * float64(time.Second))
		return dst.at[len(dst.at)-1] >= minTime-time.Nanosecond
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestNewLinkValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewLink with zero rate should panic")
		}
	}()
	NewLink(NewSimulator(), LinkConfig{Name: "bad"}, &sink{})
}
