package netsim

// PacketPool is a free list of Packets owned by one Simulator. The
// simulator is single-threaded, so the pool needs no locking, and
// because recycling only ever reuses memory — never changes what is
// scheduled when — pooling cannot perturb event order (see DESIGN.md
// "Determinism: memory reuse").
//
// Ownership rules:
//   - the component that acquires a packet (a transport endpoint)
//     owns it until it hands it to the network via Host.Send;
//   - a Link (and its Qdisc) owns every packet it has queued or is
//     serializing, and releases packets it drops (tail drop, AQM
//     drop, random wire loss) after the OnDrop callback returns;
//   - delivery transfers ownership to the destination node: routers
//     pass it to the next link, endpoints release it when they finish
//     processing (tcp.Receiver.Handle, tcp.Sender.HandleAck, and the
//     Demux for unroutable flows).
//
// Every acquired packet is therefore released exactly once. Under the
// sussdebug build tag the pool verifies this: double releases and
// touching a released packet panic, and released packets are
// sequestered (never recycled) so stale pointers cannot be
// revalidated by reuse.
type PacketPool struct {
	free  []*Packet
	stats PoolStats
}

// PoolStats counts pool traffic. Acquired − Released is the number of
// packets currently owned by some component; at the end of a drained
// simulation it must be zero (the leak-check tests pin this).
type PoolStats struct {
	// Acquired counts Get calls.
	Acquired int64
	// Released counts effective Release calls.
	Released int64
	// Recycled counts Gets served from the free list rather than the
	// heap.
	Recycled int64
}

// Outstanding returns the packets acquired but not yet released.
func (st PoolStats) Outstanding() int64 { return st.Acquired - st.Released }

// Stats returns a copy of the pool counters.
func (pp *PacketPool) Stats() PoolStats { return pp.stats }

// Get returns a zeroed packet owned by the caller. It recycles a
// released packet when one is available and allocates otherwise, so a
// steady-state simulation stops allocating once the pool has grown to
// the peak number of packets simultaneously in flight.
func (pp *PacketPool) Get() *Packet {
	pp.stats.Acquired++
	if n := len(pp.free); n > 0 {
		p := pp.free[n-1]
		pp.free[n-1] = nil
		pp.free = pp.free[:n-1]
		pp.stats.Recycled++
		*p = Packet{pool: pp}
		return p
	}
	return &Packet{pool: pp}
}

// Release returns the packet to its pool. Packets built with a
// literal (no pool) and nil packets are ignored, so callers can
// release unconditionally. Releasing the same packet twice is a
// lifecycle bug: it is detected (panic) under the sussdebug build
// tag, and must be assumed to corrupt the free list otherwise.
func (p *Packet) Release() {
	if p == nil || p.pool == nil {
		return
	}
	debugRelease(p)
	p.pool.stats.Released++
	if !debugSequester {
		p.pool.free = append(p.pool.free, p)
	}
}
