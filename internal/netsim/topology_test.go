package netsim

import (
	"testing"
	"time"
)

func TestPathRoundTrip(t *testing.T) {
	sim := NewSimulator()
	p := NewPath(sim, PathSpec{Forward: []LinkConfig{
		{Name: "core", Rate: 1e9, Delay: 40 * time.Millisecond},
		{Name: "last", Rate: 1e8, Delay: 10 * time.Millisecond},
	}})

	var gotAtReceiver, gotAtSender *Packet
	var rxTime, ackTime time.Duration
	p.Receiver.SetHandler(func(pkt *Packet) {
		gotAtReceiver = pkt
		rxTime = sim.Now()
		p.Receiver.Send(&Packet{Kind: Ack, Size: 64, Dst: p.Sender.ID()})
	})
	p.Sender.SetHandler(func(pkt *Packet) {
		gotAtSender = pkt
		ackTime = sim.Now()
	})

	sim.Schedule(0, func() {
		p.Sender.Send(&Packet{Kind: Data, Size: 1500, Dst: p.Receiver.ID()})
	})
	sim.RunAll()

	if gotAtReceiver == nil {
		t.Fatal("data packet never arrived")
	}
	if gotAtSender == nil {
		t.Fatal("ack never returned")
	}
	// One-way: 40ms+10ms prop + serialization (12µs + 120µs).
	wantMin := 50 * time.Millisecond
	if rxTime < wantMin {
		t.Errorf("data arrival %v < propagation %v", rxTime, wantMin)
	}
	if ackTime <= rxTime {
		t.Errorf("ack time %v not after data time %v", ackTime, rxTime)
	}
	rtt := ackTime
	if rtt < 100*time.Millisecond || rtt > 102*time.Millisecond {
		t.Errorf("RTT = %v, want ≈100ms", rtt)
	}
}

func TestPathSingleLink(t *testing.T) {
	sim := NewSimulator()
	p := NewPath(sim, PathSpec{Forward: []LinkConfig{
		{Name: "only", Rate: 1e8, Delay: 5 * time.Millisecond},
	}})
	got := 0
	p.Receiver.SetHandler(func(*Packet) { got++ })
	sim.Schedule(0, func() {
		p.Sender.Send(&Packet{Size: 100, Dst: p.Receiver.ID()})
	})
	sim.RunAll()
	if got != 1 {
		t.Fatalf("delivered %d, want 1", got)
	}
	if len(p.Routers) != 0 {
		t.Errorf("single-link path has %d routers, want 0", len(p.Routers))
	}
}

func TestPathBottleneckSelection(t *testing.T) {
	sim := NewSimulator()
	p := NewPath(sim, PathSpec{Forward: []LinkConfig{
		{Name: "fast", Rate: 1e9, Delay: time.Millisecond},
		{Name: "slow", Rate: 5e7, Delay: time.Millisecond},
		{Name: "mid", Rate: 1e8, Delay: time.Millisecond},
	}})
	if p.Bottleneck().Name() != "slow" {
		t.Errorf("bottleneck = %q, want slow", p.Bottleneck().Name())
	}
}

func TestDumbbellAllPairsConnected(t *testing.T) {
	sim := NewSimulator()
	d := NewDumbbell(sim, DumbbellSpec{
		Pairs:      3,
		Access:     LinkConfig{Rate: 1e9, Delay: time.Millisecond},
		Bottleneck: LinkConfig{Rate: 5e7, Delay: 20 * time.Millisecond, QueueBytes: 1 << 20},
	})
	received := make([]int, 3)
	acked := make([]int, 3)
	for i := 0; i < 3; i++ {
		i := i
		d.Clients[i].SetHandler(func(pkt *Packet) {
			received[i]++
			d.Clients[i].Send(&Packet{Kind: Ack, Size: 64, Dst: d.Servers[i].ID()})
		})
		d.Servers[i].SetHandler(func(*Packet) { acked[i]++ })
		srv := d.Servers[i]
		cli := d.Clients[i]
		sim.Schedule(0, func() {
			srv.Send(&Packet{Kind: Data, Size: 1500, Dst: cli.ID()})
		})
	}
	sim.RunAll()
	for i := 0; i < 3; i++ {
		if received[i] != 1 || acked[i] != 1 {
			t.Errorf("pair %d: received=%d acked=%d, want 1/1", i, received[i], acked[i])
		}
	}
	// All three data packets crossed the shared bottleneck.
	if got := d.Bottleneck.Stats().DeliveredPackets; got != 3 {
		t.Errorf("bottleneck delivered %d, want 3", got)
	}
}

func TestDumbbellSharedBottleneckContention(t *testing.T) {
	sim := NewSimulator()
	d := NewDumbbell(sim, DumbbellSpec{
		Pairs:      2,
		Access:     LinkConfig{Rate: 1e9, Delay: time.Millisecond},
		Bottleneck: LinkConfig{Rate: 8e6, Delay: time.Millisecond, QueueBytes: 3000},
	})
	for i := range d.Clients {
		d.Clients[i].SetHandler(func(*Packet) {})
	}
	// Both servers dump 5 packets at once: 10×1000B into a 3000B queue
	// behind an 8 Mbps serializer must drop some.
	sim.Schedule(0, func() {
		for i, srv := range d.Servers {
			for j := 0; j < 5; j++ {
				srv.Send(&Packet{Kind: Data, Size: 1000, Dst: d.Clients[i].ID()})
			}
		}
	})
	sim.RunAll()
	st := d.Bottleneck.Stats()
	if st.DroppedPackets == 0 {
		t.Error("expected tail drops at shared bottleneck")
	}
	if st.DeliveredPackets+st.DroppedPackets != 10 {
		t.Errorf("delivered+dropped = %d, want 10", st.DeliveredPackets+st.DroppedPackets)
	}
}

func TestDumbbellPerPairDelay(t *testing.T) {
	sim := NewSimulator()
	base := LinkConfig{Rate: 1e9, Delay: time.Millisecond}
	d := NewDumbbell(sim, DumbbellSpec{
		Pairs:  2,
		Access: base,
		PairDelay: func(i int) LinkConfig {
			c := base
			c.Delay = time.Duration(1+10*i) * time.Millisecond
			return c
		},
		Bottleneck: LinkConfig{Rate: 1e8, Delay: 5 * time.Millisecond},
	})
	arrivals := make([]time.Duration, 2)
	for i := range d.Clients {
		i := i
		d.Clients[i].SetHandler(func(*Packet) { arrivals[i] = sim.Now() })
	}
	sim.Schedule(0, func() {
		for i, srv := range d.Servers {
			srv.Send(&Packet{Size: 100, Dst: d.Clients[i].ID()})
		}
	})
	sim.RunAll()
	if arrivals[1]-arrivals[0] < 9*time.Millisecond {
		t.Errorf("pair delays not applied: arrivals %v", arrivals)
	}
}

func TestRouterUnknownDestinationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unrouted destination")
		}
	}()
	r := NewRouter(1, "r")
	r.Deliver(&Packet{Dst: 99})
}
