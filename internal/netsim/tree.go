package netsim

import (
	"fmt"
	"time"
)

// TreeSpec describes a shared-bottleneck tree: leaf access links
// feeding per-group aggregation links feeding one core bottleneck,
// with server hosts on the trunk side. It is the fleet-scale
// generalization of the linear Path — a population of clients
// multiplexed over common queues at every level instead of one flow
// on a private chain. Data flows server → client (download); every
// level is wired as a duplex pair so ACKs climb a mirrored reverse
// tree.
//
//	servers ⇄ trunk ⇄(core)⇄ root ⇄(agg g)⇄ agg[g] ⇄(access g.h)⇄ clients
//
// A one-server, one-group, one-host tree degenerates to exactly the
// linear three-hop path; the Path builder remains the two-level
// special case the figure experiments pin their outputs on.
type TreeSpec struct {
	// Groups is the number of aggregation routers.
	Groups int
	// HostsPerGroup is the number of client leaves under each
	// aggregation router.
	HostsPerGroup int
	// Servers is the number of server hosts on the trunk side
	// (default 1). Flows from every server share the core bottleneck.
	Servers int

	// Core configures the trunk→root link — the shared core
	// bottleneck in the congested (download) direction. Its mirror
	// carries ACKs with a generous queue.
	Core LinkConfig
	// Agg configures each root→agg[g] aggregation link; AggFor, when
	// non-nil, overrides it per group.
	Agg    LinkConfig
	AggFor func(g int) LinkConfig
	// Access configures each agg[g]→client leaf link; AccessFor, when
	// non-nil, overrides it per (group, host).
	Access    LinkConfig
	AccessFor func(g, h int) LinkConfig
	// ServerAccess configures each server⇄trunk edge. A zero Rate
	// defaults to 4× the core rate with no extra delay, so the server
	// farm is never the bottleneck unless asked for.
	ServerAccess LinkConfig

	// DomainHint, when non-nil, overrides the automatic partitioner in
	// NewTreeOn: it returns the event domain for aggregation subtree g
	// (the group's aggregation router, its clients, and their links).
	// Domain 0 always holds the trunk, root, and servers in hinted
	// mode. Subtrees placed outside domain 0 make the root⇄agg duplex
	// a frontier, so their aggregation delay must be positive. Ignored
	// by NewTree.
	DomainHint func(g int) int
}

// Tree is the wired topology. Slices are indexed the way the spec
// reads: AggDown[g] for groups, AccessDown[c] for the flattened
// client index c = g*HostsPerGroup + h.
type Tree struct {
	Sim     *Simulator
	Cluster *Cluster // non-nil when built with NewTreeOn
	Spec    TreeSpec

	Servers []*Host
	Clients []*Host // flattened: c = g*HostsPerGroup + h

	Trunk *Router   // server-side router, upstream of the core link
	Root  *Router   // client-side core router
	Aggs  []*Router // one per group

	Core    *Link // trunk→root, the shared bottleneck
	CoreRev *Link // root→trunk (ACK path)
	AggDown []*Link
	AggUp   []*Link
	AccessDown []*Link
	AccessUp   []*Link
	SrvUp   []*Link // server→trunk
	SrvDown []*Link // trunk→server
}

// ackMirror derives the reverse-direction config for a duplex level:
// same rate and delay, a queue generous enough that the ACK path is
// never the bottleneck unless the caller overrides it explicitly.
func ackMirror(cfg LinkConfig) LinkConfig {
	rc := cfg
	rc.Name = cfg.Name + "-rev"
	rc.QueueBytes = 4 << 20
	return rc
}

// treePlacement assigns tree components to cluster event domains. Nil
// funcs and a zero root mean domain 0 — the single-simulator layout.
type treePlacement struct {
	root   int
	group  func(g int) int
	server func(s int) int
}

func (p treePlacement) groupDom(g int) int {
	if p.group == nil {
		return 0
	}
	return p.group(g)
}

func (p treePlacement) serverDom(s int) int {
	if p.server == nil {
		return 0
	}
	return p.server(s)
}

// NewTree wires the topology and compiles the static route tables for
// every host pair.
func NewTree(sim *Simulator, spec TreeSpec) *Tree {
	return buildTree(NewFabric(sim), sim, spec, treePlacement{})
}

// NewTreeOn wires the identical topology across a cluster's event
// domains. Node IDs, wiring order, and routing do not depend on the
// domain count, and neither do the simulation's results — only which
// goroutine executes which subtree. With spec.DomainHint set, subtree
// g goes to the hinted domain and everything else stays in domain 0;
// otherwise an automatic partitioner splits, in priority order and
// while domains remain: the aggregation subtrees (contiguous blocks,
// frontier = the root⇄agg duplex), the root router (frontier = the
// core duplex), and server blocks (frontier = the server access
// duplex). Each split happens only when the crossed links have
// positive propagation delay — the delay is the conservative
// lookahead, so a zero-delay edge cannot be a frontier.
func NewTreeOn(c *Cluster, spec TreeSpec) *Tree {
	pl := autoTreePlacement(c.N(), spec)
	if spec.DomainHint != nil {
		hint := spec.DomainHint
		n := c.N()
		pl = treePlacement{group: func(g int) int {
			d := hint(g)
			if d < 0 || d >= n {
				panic(fmt.Sprintf("netsim: DomainHint(%d) = %d outside cluster of %d domains", g, d, n))
			}
			return d
		}}
	}
	t := buildTree(NewFabricOn(c), c.Sim(0), spec, pl)
	t.Cluster = c
	return t
}

// autoTreePlacement is the automatic partitioner for NewTreeOn.
func autoTreePlacement(n int, spec TreeSpec) treePlacement {
	var pl treePlacement
	spare := n - 1
	next := 1
	groups := spec.Groups
	servers := spec.Servers
	if servers <= 0 {
		servers = 1
	}
	aggDelay := func(g int) time.Duration {
		cfg := spec.Agg
		if spec.AggFor != nil {
			cfg = spec.AggFor(g)
		}
		return cfg.Delay
	}
	allAgg := true
	anyAgg := false
	for g := 0; g < groups; g++ {
		if aggDelay(g) > 0 {
			anyAgg = true
		} else {
			allAgg = false
		}
	}
	if spare > 0 && anyAgg {
		gd := groups
		if gd > spare {
			gd = spare
		}
		base := next
		pl.group = func(g int) int {
			if aggDelay(g) <= 0 {
				return 0 // zero-delay edge: cannot cross a frontier
			}
			return base + g*gd/groups
		}
		spare -= gd
		next += gd
	}
	// The root may only leave domain 0 when every adjacent duplex can
	// be a frontier: the core link to the trunk AND every root→agg
	// link (groups that stayed in domain 0 still cross to the root).
	if spare > 0 && spec.Core.Delay > 0 && allAgg {
		pl.root = next
		spare--
		next++
	}
	if spare > 0 && spec.ServerAccess.Delay > 0 {
		sd := servers
		if sd > spare {
			sd = spare
		}
		base := next
		pl.server = func(s int) int { return base + s*sd/servers }
	}
	return pl
}

func buildTree(f *Fabric, sim *Simulator, spec TreeSpec, pl treePlacement) *Tree {
	if spec.Groups <= 0 || spec.HostsPerGroup <= 0 {
		panic("netsim: tree needs at least one group and one host per group")
	}
	if spec.Servers <= 0 {
		spec.Servers = 1
	}
	core := spec.Core
	if core.Name == "" {
		core.Name = "core"
	}
	srv := spec.ServerAccess
	if srv.RateModel == nil && srv.Rate <= 0 {
		srv.Rate = 4 * core.Rate
		if srv.Rate <= 0 {
			srv.Rate = 4 * core.RateAt0()
		}
		srv.QueueBytes = 64 << 20
	}

	t := &Tree{Sim: sim, Spec: spec}

	t.Trunk = f.Router("trunk")
	t.Root = f.RouterIn(pl.root, "root")
	for g := 0; g < spec.Groups; g++ {
		t.Aggs = append(t.Aggs, f.RouterIn(pl.groupDom(g), fmt.Sprintf("agg%d", g)))
	}
	for s := 0; s < spec.Servers; s++ {
		t.Servers = append(t.Servers, f.HostIn(pl.serverDom(s), fmt.Sprintf("server%d", s)))
	}
	for g := 0; g < spec.Groups; g++ {
		for h := 0; h < spec.HostsPerGroup; h++ {
			t.Clients = append(t.Clients, f.HostIn(pl.groupDom(g), fmt.Sprintf("client%d.%d", g, h)))
		}
	}

	for s, host := range t.Servers {
		cfg := srv
		if cfg.Name == "" {
			cfg.Name = fmt.Sprintf("srv%d", s)
		}
		up, down := f.Duplex(host, t.Trunk, cfg, ackMirror(cfg))
		t.SrvUp = append(t.SrvUp, up)
		t.SrvDown = append(t.SrvDown, down)
	}
	t.Core, t.CoreRev = f.Duplex(t.Trunk, t.Root, core, ackMirror(core))
	for g := 0; g < spec.Groups; g++ {
		cfg := spec.Agg
		if spec.AggFor != nil {
			cfg = spec.AggFor(g)
		}
		if cfg.Name == "" {
			cfg.Name = fmt.Sprintf("agg%d", g)
		}
		down, up := f.Duplex(t.Root, t.Aggs[g], cfg, ackMirror(cfg))
		t.AggDown = append(t.AggDown, down)
		t.AggUp = append(t.AggUp, up)
		for h := 0; h < spec.HostsPerGroup; h++ {
			acc := spec.Access
			if spec.AccessFor != nil {
				acc = spec.AccessFor(g, h)
			}
			if acc.Name == "" {
				acc.Name = fmt.Sprintf("access%d.%d", g, h)
			}
			cli := t.Clients[g*spec.HostsPerGroup+h]
			adown, aup := f.Duplex(t.Aggs[g], cli, acc, ackMirror(acc))
			t.AccessDown = append(t.AccessDown, adown)
			t.AccessUp = append(t.AccessUp, aup)
		}
	}
	f.Compile()
	return t
}

// RateAt0 returns the link's rate at time zero (fixed rate, or the
// rate model sampled at 0).
func (c LinkConfig) RateAt0() float64 {
	if c.RateModel != nil {
		return c.RateModel(0)
	}
	return c.Rate
}

// NumClients returns the number of client leaves.
func (t *Tree) NumClients() int { return len(t.Clients) }

// Client returns the leaf host for (group, host).
func (t *Tree) Client(g, h int) *Host {
	return t.Clients[g*t.Spec.HostsPerGroup+h]
}

// GroupOf returns the aggregation group of flattened client index c.
func (t *Tree) GroupOf(c int) int { return c / t.Spec.HostsPerGroup }

// DownLinks returns the forward (download) chain server s → client c:
// server access, core, the client's aggregation link, and its access
// link — the links a flow's data crosses, in order, for recorder and
// impairment attachment.
func (t *Tree) DownLinks(s, c int) []*Link {
	return []*Link{t.SrvUp[s], t.Core, t.AggDown[t.GroupOf(c)], t.AccessDown[c]}
}

// UpLinks returns the reverse (ACK) chain client c → server s.
func (t *Tree) UpLinks(s, c int) []*Link {
	return []*Link{t.AccessUp[c], t.AggUp[t.GroupOf(c)], t.CoreRev, t.SrvDown[s]}
}
