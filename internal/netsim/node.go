package netsim

import "fmt"

// Router forwards packets by destination address over per-destination
// output links. It models a store-and-forward IP router: queueing and
// serialization happen in the outgoing Link.
type Router struct {
	id     NodeID
	name   string
	routes map[NodeID]*Link
}

// NewRouter creates a router with the given address.
func NewRouter(id NodeID, name string) *Router {
	return &Router{id: id, name: name, routes: make(map[NodeID]*Link)}
}

// ID implements Node.
func (r *Router) ID() NodeID { return r.id }

// Name returns the router's human-readable name.
func (r *Router) Name() string { return r.name }

// AddRoute sends traffic destined to dst out via link. Later calls for
// the same destination replace the route.
func (r *Router) AddRoute(dst NodeID, link *Link) { r.routes[dst] = link }

// Deliver implements Node by forwarding onto the routed output link.
// Packets with no route panic: a simulation wiring bug, not a runtime
// condition.
func (r *Router) Deliver(pkt *Packet) {
	debugCheckLive(pkt, "router deliver")
	link, ok := r.routes[pkt.Dst]
	if !ok {
		panic(fmt.Sprintf("netsim: router %q has no route to node %d", r.name, pkt.Dst))
	}
	link.Enqueue(pkt)
}

// Host is a leaf node that hands every delivered packet to a handler
// (normally a transport endpoint).
type Host struct {
	id      NodeID
	name    string
	handler func(pkt *Packet)
	out     *Link
	sim     *Simulator // owning event domain; nil for hand-built hosts
}

// NewHost creates a host. The handler may be nil initially and set
// later with SetHandler (endpoints are created after topology wiring).
func NewHost(id NodeID, name string) *Host {
	return &Host{id: id, name: name}
}

// ID implements Node.
func (h *Host) ID() NodeID { return h.id }

// Name returns the host's human-readable name.
func (h *Host) Name() string { return h.name }

// SetHandler installs the packet consumer.
func (h *Host) SetHandler(fn func(pkt *Packet)) { h.handler = fn }

// Sim returns the simulator of the event domain the host was placed
// in by its Fabric, or nil for hosts built outside one. Transport
// endpoints attached to this host must schedule and allocate through
// this simulator — in a multi-domain Cluster, using any other
// domain's clock or pool is a race.
func (h *Host) Sim() *Simulator { return h.sim }

// SetOutput attaches the host's (single) output link.
func (h *Host) SetOutput(l *Link) { h.out = l }

// Output returns the host's output link.
func (h *Host) Output() *Link { return h.out }

// Send stamps the packet with the host address and pushes it onto the
// output link, transferring ownership of pooled packets to the
// network (the link releases drops; the consuming endpoint releases
// deliveries).
func (h *Host) Send(pkt *Packet) {
	if h.out == nil {
		panic(fmt.Sprintf("netsim: host %q has no output link", h.name))
	}
	debugCheckLive(pkt, "host send")
	pkt.Src = h.id
	h.out.Enqueue(pkt)
}

// Deliver implements Node. Ownership of the packet passes to the
// handler, which must release pooled packets once done with them.
func (h *Host) Deliver(pkt *Packet) {
	if h.handler == nil {
		panic(fmt.Sprintf("netsim: host %q has no handler", h.name))
	}
	debugCheckLive(pkt, "host deliver")
	h.handler(pkt)
}
