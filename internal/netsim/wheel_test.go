package netsim

import (
	"math/rand"
	"testing"
	"time"
)

// --- differential property test ---
//
// A reference scheduler with the documented semantics, implemented
// the dumbest possible way: a flat slice scanned for the (at, seq)
// minimum. The wheel must be observationally identical to it over
// millions of random arm/cancel/reset/advance operations — firing
// order, clock, Pending, and every Stop/Reset return value.

type refTimer struct {
	at    time.Duration
	seq   uint64
	id    int
	pos   int // index into refSched.alive, -1 when dead
}

type refSched struct {
	now    time.Duration
	seq    uint64
	timers []refTimer
	alive  []int // handles of live timers, unordered (swap-remove)
}

func (r *refSched) schedule(at time.Duration, id int) int {
	if at < r.now {
		at = r.now
	}
	h := len(r.timers)
	r.timers = append(r.timers, refTimer{at: at, seq: r.seq, id: id, pos: len(r.alive)})
	r.alive = append(r.alive, h)
	r.seq++
	return h
}

func (r *refSched) remove(h int) {
	p := r.timers[h].pos
	last := r.alive[len(r.alive)-1]
	r.alive[p] = last
	r.timers[last].pos = p
	r.alive = r.alive[:len(r.alive)-1]
	r.timers[h].pos = -1
}

func (r *refSched) stop(h int) bool {
	if r.timers[h].pos < 0 {
		return false
	}
	r.remove(h)
	return true
}

func (r *refSched) reset(h int, d time.Duration) bool {
	t := &r.timers[h]
	if t.pos < 0 {
		return false
	}
	if d < 0 {
		d = 0
	}
	t.at, t.seq = r.now+d, r.seq
	r.seq++
	return true
}

func (r *refSched) pending() int { return len(r.alive) }

func (r *refSched) run(until time.Duration, fire func(id int)) time.Duration {
	for {
		best := -1
		for _, h := range r.alive {
			t := &r.timers[h]
			if best < 0 || t.at < r.timers[best].at ||
				(t.at == r.timers[best].at && t.seq < r.timers[best].seq) {
				best = h
			}
		}
		if best < 0 {
			return r.now
		}
		if r.timers[best].at > until {
			if until > r.now {
				r.now = until
			}
			return r.now
		}
		r.now = r.timers[best].at
		r.remove(best)
		fire(r.timers[best].id)
	}
}

type fireRecorder struct{ got []int }

func recordFireEv(ctx, arg any) {
	rec := ctx.(*fireRecorder)
	rec.got = append(rec.got, arg.(int))
}

// randomDelay draws from a mixture that exercises every wheel level,
// exact ties, zero delays, and the overflow list.
func randomDelay(rng *rand.Rand) time.Duration {
	switch rng.Intn(10) {
	case 0:
		return 0
	case 1:
		return time.Duration(rng.Intn(wheelSlots)) // level 0
	case 2:
		return time.Duration(rng.Intn(4096)) // levels 0–1
	case 3, 4:
		return time.Duration(rng.Intn(int(time.Millisecond))) // ≤ level 3
	case 5, 6:
		return time.Duration(rng.Intn(int(time.Second))) // ≤ level 5
	case 7:
		return time.Duration(rng.Intn(int(time.Hour))) // level 6
	case 8:
		return time.Duration(wheelSpan) + time.Duration(rng.Intn(int(time.Hour))) // overflow
	default:
		return time.Duration(rng.Int63n(int64(10 * time.Second)))
	}
}

func TestWheelMatchesReferenceScheduler(t *testing.T) {
	seeds := []int64{1, 2, 3, 4}
	ops := 250_000
	if testing.Short() {
		seeds, ops = seeds[:1], 50_000
	}
	for _, seed := range seeds {
		rng := rand.New(rand.NewSource(seed))
		sim := NewSimulator()
		ref := &refSched{}
		rec := &fireRecorder{}
		var refFired []int

		var handles []Timer // wheel handles, index-aligned with ref handles
		live := 0
		var lastAt time.Duration

		for op := 0; op < ops; op++ {
			choice := rng.Intn(100)
			if live > 256 && choice < 60 {
				choice = 60 + rng.Intn(40) // drain: force stop/run ops
			}
			switch {
			case choice < 45: // arm
				var at time.Duration
				if choice < 5 && lastAt >= sim.Now() {
					at = lastAt // exact tie with an earlier arm
				} else {
					at = sim.Now() + randomDelay(rng)
				}
				lastAt = at
				id := len(handles)
				handles = append(handles, sim.ScheduleEventAt(at, recordFireEv, rec, id))
				ref.schedule(at, id)
				live++
			case choice < 60: // reset a random handle, stale ones included
				if len(handles) == 0 {
					continue
				}
				h := rng.Intn(len(handles))
				d := randomDelay(rng)
				nt, ok := handles[h].Reset(d)
				if ok {
					handles[h] = nt
				}
				if refOK := ref.reset(h, d); ok != refOK {
					t.Fatalf("seed %d op %d: Reset(%d) = %v, reference %v", seed, op, h, ok, refOK)
				}
			case choice < 80: // stop a random handle, stale ones included
				if len(handles) == 0 {
					continue
				}
				h := rng.Intn(len(handles))
				ok := handles[h].Stop()
				if refOK := ref.stop(h); ok != refOK {
					t.Fatalf("seed %d op %d: Stop(%d) = %v, reference %v", seed, op, h, ok, refOK)
				}
				if ok {
					live--
				}
			default: // advance
				var until time.Duration
				if rng.Intn(20) == 0 {
					until = time.Duration(1<<63 - 1) // RunAll
				} else {
					until = sim.Now() + time.Duration(rng.Int63n(int64(2*time.Second)))
				}
				end := sim.Run(until)
				refEnd := ref.run(until, func(id int) { refFired = append(refFired, id) })
				if end != refEnd || sim.Now() != ref.now {
					t.Fatalf("seed %d op %d: Run(%v) = %v now %v, reference %v now %v",
						seed, op, until, end, sim.Now(), refEnd, ref.now)
				}
				live = ref.pending()
			}
			if sim.Pending() != ref.pending() {
				t.Fatalf("seed %d op %d: Pending() = %d, reference %d", seed, op, sim.Pending(), ref.pending())
			}
		}
		sim.RunAll()
		ref.run(time.Duration(1<<63-1), func(id int) { refFired = append(refFired, id) })
		if len(rec.got) != len(refFired) {
			t.Fatalf("seed %d: fired %d events, reference fired %d", seed, len(rec.got), len(refFired))
		}
		for i := range rec.got {
			if rec.got[i] != refFired[i] {
				t.Fatalf("seed %d: firing order diverges at %d: got id %d, reference id %d",
					seed, i, rec.got[i], refFired[i])
			}
		}
	}
}

// --- same-deadline FIFO regression ---

// TestSameDeadlineFIFOAcrossLevels pins the tie-break rule the golden
// CSVs depend on: events sharing a deadline fire in arm order even
// when they reach the level-0 bucket by different routes. The
// early-armed timer lands at a high wheel level and is cascaded into
// the bucket after the late-armed timer was inserted directly — raw
// bucket order would fire them backwards.
func TestSameDeadlineFIFOAcrossLevels(t *testing.T) {
	s := NewSimulator()
	rec := &fireRecorder{}
	deadline := 300 * time.Millisecond

	s.ScheduleEventAt(deadline, recordFireEv, rec, 0) // level 4 at arm time

	// Advance close to the deadline so later arms land at lower levels.
	s.Schedule(250*time.Millisecond, func() {})
	s.Run(250 * time.Millisecond)
	s.ScheduleEventAt(deadline, recordFireEv, rec, 1) // mid level

	s.Schedule(deadline-100*time.Nanosecond, func() {})
	s.Run(deadline - 100 * time.Nanosecond)
	s.ScheduleEventAt(deadline, recordFireEv, rec, 2) // level 0, direct

	// Armed during the batch itself: same instant, must fire last.
	s.ScheduleEventAt(deadline, runClosure, func() {
		s.ScheduleEventAt(deadline, recordFireEv, rec, 3)
	}, nil)

	s.RunAll()
	want := []int{0, 1, 2, 3}
	if len(rec.got) != len(want) {
		t.Fatalf("fired %v, want %v", rec.got, want)
	}
	for i := range want {
		if rec.got[i] != want[i] {
			t.Fatalf("same-deadline events fired out of arm order: %v, want %v", rec.got, want)
		}
	}
}

// --- overflow list ---

func TestOverflowFarFutureDeadlines(t *testing.T) {
	s := NewSimulator()
	rec := &fireRecorder{}
	far := time.Duration(wheelSpan) * 3 / 2 // beyond the wheel span
	s.ScheduleEventAt(far, recordFireEv, rec, 0)
	s.ScheduleEventAt(far+time.Nanosecond, recordFireEv, rec, 1)
	tm := s.ScheduleEventAt(far+2*time.Nanosecond, recordFireEv, rec, 2)
	s.ScheduleEvent(time.Millisecond, recordFireEv, rec, 3)
	if s.Pending() != 4 {
		t.Fatalf("Pending() = %d, want 4", s.Pending())
	}
	if !tm.Stop() {
		t.Fatal("Stop of overflow-resident timer failed")
	}
	// Horizon far beyond the near event but before the overflow events.
	if end := s.Run(far - time.Second); end != far-time.Second {
		t.Fatalf("Run = %v, want %v", end, far-time.Second)
	}
	s.RunAll()
	want := []int{3, 0, 1}
	if len(rec.got) != len(want) {
		t.Fatalf("fired %v, want %v", rec.got, want)
	}
	for i := range want {
		if rec.got[i] != want[i] {
			t.Fatalf("fired %v, want %v", rec.got, want)
		}
	}
	if s.Now() != far+time.Nanosecond {
		t.Errorf("Now() = %v, want %v", s.Now(), far+time.Nanosecond)
	}
}

// TestOverflowMinInvalidation stops the earliest overflow timer and
// checks the cached minimum is recomputed, not reused.
func TestOverflowMinInvalidation(t *testing.T) {
	s := NewSimulator()
	rec := &fireRecorder{}
	far := time.Duration(wheelSpan) * 2
	early := s.ScheduleEventAt(far, recordFireEv, rec, 0)
	s.ScheduleEventAt(far+time.Hour, recordFireEv, rec, 1)
	early.Stop()
	s.RunAll()
	if len(rec.got) != 1 || rec.got[0] != 1 {
		t.Fatalf("fired %v, want [1]", rec.got)
	}
	if s.Now() != far+time.Hour {
		t.Errorf("Now() = %v, want %v", s.Now(), far+time.Hour)
	}
}

// --- Timer.Reset ---

func TestResetRearmsInPlace(t *testing.T) {
	s := NewSimulator()
	fired := 0
	tm := s.Schedule(time.Millisecond, func() { fired++ })
	nt, ok := tm.Reset(5 * time.Millisecond)
	if !ok {
		t.Fatal("Reset of a pending timer failed")
	}
	if tm.Active() || tm.Stop() {
		t.Fatal("pre-Reset handle must be stale")
	}
	if !nt.Active() {
		t.Fatal("post-Reset handle must be active")
	}
	s.Run(4 * time.Millisecond)
	if fired != 0 {
		t.Fatal("reset timer fired at its old deadline")
	}
	s.RunAll()
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if s.Now() != 5*time.Millisecond {
		t.Errorf("Now() = %v, want 5ms", s.Now())
	}
}

// TestResetTakesFreshSeq pins the ordering equivalence with
// Stop+Schedule: a reset timer re-enters the same-deadline FIFO at
// the back, exactly where a freshly scheduled timer would.
func TestResetTakesFreshSeq(t *testing.T) {
	s := NewSimulator()
	rec := &fireRecorder{}
	tm := s.ScheduleEvent(time.Millisecond, recordFireEv, rec, 0)
	s.ScheduleEvent(2*time.Millisecond, recordFireEv, rec, 1)
	if _, ok := tm.Reset(2 * time.Millisecond); !ok {
		t.Fatal("Reset failed")
	}
	s.RunAll()
	if len(rec.got) != 2 || rec.got[0] != 1 || rec.got[1] != 0 {
		t.Fatalf("fired %v, want [1 0] (reset timer joins the tie-break queue last)", rec.got)
	}
}

func TestResetDeadTimerIsNoop(t *testing.T) {
	s := NewSimulator()
	fired := 0
	tm := s.Schedule(time.Millisecond, func() { fired++ })
	s.RunAll()
	if _, ok := tm.Reset(time.Millisecond); ok {
		t.Fatal("Reset of a fired timer succeeded")
	}
	var zero Timer
	if _, ok := zero.Reset(time.Millisecond); ok {
		t.Fatal("Reset of the zero-value Timer succeeded")
	}
	tm2 := s.Schedule(time.Millisecond, func() { fired++ })
	tm2.Stop()
	if _, ok := tm2.Reset(time.Millisecond); ok {
		t.Fatal("Reset of a stopped timer succeeded")
	}
	// The recycled-slot case: tm's slot is reused by tm3; the stale tm
	// handle must not rearm tm3.
	tm3 := s.Schedule(time.Millisecond, func() { fired++ })
	if _, ok := tm.Reset(time.Hour); ok {
		t.Fatal("Reset via a stale handle rearmed a recycled slot")
	}
	if !tm3.Active() {
		t.Fatal("recycled timer lost by stale Reset")
	}
	s.RunAll()
	if fired != 2 {
		t.Fatalf("fired = %d, want 2", fired)
	}
}

// TestResetDuringSameInstantPause rearms a timer that is already
// drained into the dispatch batch (Run paused mid-instant by
// StopWhen): it must leave the batch and fire at the new deadline.
func TestResetDuringSameInstantPause(t *testing.T) {
	s := NewSimulator()
	rec := &fireRecorder{}
	var tm2 Timer
	s.ScheduleEvent(time.Millisecond, recordFireEv, rec, 0)
	tm2 = s.ScheduleEvent(time.Millisecond, recordFireEv, rec, 1)
	s.ScheduleEvent(time.Millisecond, recordFireEv, rec, 2)
	s.StopWhen(func() bool { return len(rec.got) == 1 })
	s.RunAll()
	if len(rec.got) != 1 {
		t.Fatalf("StopWhen pause fired %v, want one event", rec.got)
	}
	s.StopWhen(nil)
	nt, ok := tm2.Reset(time.Millisecond)
	if !ok {
		t.Fatal("Reset of a batch-resident timer failed")
	}
	if !nt.Active() || s.Pending() != 2 {
		t.Fatalf("after Reset: Active=%v Pending=%d, want true/2", nt.Active(), s.Pending())
	}
	s.RunAll()
	want := []int{0, 2, 1} // id 1 moved to t=2ms
	for i := range want {
		if rec.got[i] != want[i] {
			t.Fatalf("fired %v, want %v", rec.got, want)
		}
	}
	if s.Now() != 2*time.Millisecond {
		t.Errorf("Now() = %v, want 2ms", s.Now())
	}
}

// --- allocation gates ---

// TestWheelCascadeZeroAlloc schedules deadlines across every wheel
// level (and the overflow list) and drains them, requiring the whole
// insert → cascade → batch-dispatch cycle to stay allocation-free in
// steady state.
func TestWheelCascadeZeroAlloc(t *testing.T) {
	if debugSequester {
		t.Skip("sussdebug: pool sequesters, steady state allocates by design")
	}
	s := NewSimulator()
	n := 0
	var tick EventFunc = func(ctx, arg any) { n++ }
	deltas := []time.Duration{
		0,
		17,                     // level 0
		3 * time.Microsecond,   // level 2
		700 * time.Microsecond, // level 3
		40 * time.Millisecond,  // level 4
		2 * time.Second,        // level 5
		90 * time.Minute,       // beyond wheelSpan: overflow + migration
	}
	warm := func() {
		for _, d := range deltas {
			s.ScheduleEvent(d, tick, nil, nil)
		}
		s.ScheduleEvent(time.Millisecond, tick, nil, nil).Stop()
		s.RunAll()
	}
	warm()
	allocs := testing.AllocsPerRun(200, warm)
	if allocs > 0 {
		t.Errorf("cascading schedule/fire cycle allocates %.1f allocs/op, want 0", allocs)
	}
}

func TestResetZeroAlloc(t *testing.T) {
	if debugSequester {
		t.Skip("sussdebug: pool sequesters, steady state allocates by design")
	}
	s := NewSimulator()
	n := 0
	var tick EventFunc = func(ctx, arg any) { n++ }
	allocs := testing.AllocsPerRun(500, func() {
		tm := s.ScheduleEvent(time.Millisecond, tick, nil, nil)
		if nt, ok := tm.Reset(2 * time.Millisecond); ok {
			tm = nt
		}
		s.RunAll()
	})
	if allocs > 0 {
		t.Errorf("schedule/reset/fire cycle allocates %.1f allocs/op, want 0", allocs)
	}
}
