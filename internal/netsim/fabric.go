package netsim

import "fmt"

// Fabric is the topology construction kit the builders in this package
// (linear paths, dumbbells, bottleneck trees) compile onto. It owns
// node-ID allocation, remembers every directed link it wires, and
// derives the static per-destination route tables the routers forward
// by, so a topology only describes its shape — never its routing.
//
// Route compilation is a deterministic breadth-first search per host
// destination: each router's next hop toward a host is the first of
// its outgoing links (in wiring order) that lies on a shortest path.
// All topologies in this package have unique shortest paths, so wiring
// order is a tie-break, not a semantic choice.
type Fabric struct {
	sim     *Simulator
	cluster *Cluster // nil for single-simulator fabrics
	nextID  NodeID

	nodes []Node // insertion order; index = NodeID-1
	hosts []*Host
	doms  []int // per-node domain; parallel to nodes (all 0 without a cluster)

	// adjacency in wiring order: edges[i] lists node i+1's outgoing
	// links (paired with their destination IDs).
	edges [][]fabricEdge
}

type fabricEdge struct {
	to   NodeID
	link *Link
}

// NewFabric starts an empty fabric on sim.
func NewFabric(sim *Simulator) *Fabric {
	return &Fabric{sim: sim}
}

// NewFabricOn starts an empty fabric over a cluster of event domains.
// Nodes placed with HostIn/RouterIn live in their domain's simulator;
// Connect automatically registers links that span domains as cluster
// frontiers. Node IDs, wiring order, and route compilation are
// identical to a single-simulator fabric — domain placement changes
// where events execute, never what the topology is.
func NewFabricOn(c *Cluster) *Fabric {
	return &Fabric{sim: c.Sim(0), cluster: c}
}

// Cluster returns the cluster this fabric builds on, or nil.
func (f *Fabric) Cluster() *Cluster { return f.cluster }

func (f *Fabric) domSim(dom int) *Simulator {
	if f.cluster == nil {
		if dom != 0 {
			panic("netsim: domain placement requires a fabric built with NewFabricOn")
		}
		return f.sim
	}
	return f.cluster.Sim(dom)
}

// Host allocates a leaf node in domain 0. Hosts carry transport
// endpoints and have exactly one output link (their first outgoing
// edge).
func (f *Fabric) Host(name string) *Host { return f.HostIn(0, name) }

// HostIn allocates a leaf node in the given event domain.
func (f *Fabric) HostIn(dom int, name string) *Host {
	sim := f.domSim(dom)
	f.nextID++
	h := NewHost(f.nextID, name)
	h.sim = sim
	f.nodes = append(f.nodes, h)
	f.hosts = append(f.hosts, h)
	f.doms = append(f.doms, dom)
	f.edges = append(f.edges, nil)
	return h
}

// Router allocates a forwarding node in domain 0 whose route table
// Compile fills.
func (f *Fabric) Router(name string) *Router { return f.RouterIn(0, name) }

// RouterIn allocates a forwarding node in the given event domain.
func (f *Fabric) RouterIn(dom int, name string) *Router {
	f.domSim(dom) // validate placement
	f.nextID++
	r := NewRouter(f.nextID, name)
	f.nodes = append(f.nodes, r)
	f.doms = append(f.doms, dom)
	f.edges = append(f.edges, nil)
	return r
}

// Domain returns the event domain a fabric node was placed in.
func (f *Fabric) Domain(n Node) int { return f.doms[int(n.ID())-1] }

// Connect wires a unidirectional link from → to with cfg. A host's
// first connection becomes its output link; a second one panics (hosts
// are single-homed — multihoming would need transport-level routing).
//
// The link lives in the source node's event domain: enqueueing,
// queueing, and serialization are source-side work. When the
// destination sits in a different domain the link is registered as a
// cluster frontier — its deliveries cross at window barriers, and its
// propagation delay must be positive (it becomes the cluster's
// conservative lookahead bound).
func (f *Fabric) Connect(from, to Node, cfg LinkConfig) *Link {
	fi, ti := int(from.ID())-1, int(to.ID())-1
	l := NewLink(f.domSim(f.doms[fi]), cfg, to)
	if f.doms[fi] != f.doms[ti] {
		f.cluster.bindFrontier(l, f.doms[fi], f.doms[ti])
	}
	if h, ok := from.(*Host); ok {
		if h.Output() != nil {
			panic(fmt.Sprintf("netsim: host %q already has an output link", h.Name()))
		}
		h.SetOutput(l)
	}
	f.edges[fi] = append(f.edges[fi], fabricEdge{to: to.ID(), link: l})
	return l
}

// Duplex wires a link pair between a and b: ab carries a→b and ba
// carries b→a. When ba.Name is empty it defaults to ab.Name + "-rev".
func (f *Fabric) Duplex(a, b Node, ab, ba LinkConfig) (fwd, rev *Link) {
	if ba.Name == "" {
		ba.Name = ab.Name + "-rev"
	}
	return f.Connect(a, b, ab), f.Connect(b, a, ba)
}

// Compile fills every router's route table with the next hop toward
// every host, breadth-first over the wired links. Hosts that cannot
// reach each other simply get no route — forwarding to them panics at
// runtime exactly as an unrouted destination always has.
func (f *Fabric) Compile() {
	n := len(f.nodes)
	// Reverse adjacency once: dist-to-destination search walks edges
	// backwards.
	radj := make([][]int32, n)
	for from, outs := range f.edges {
		for _, e := range outs {
			to := int(e.to) - 1
			radj[to] = append(radj[to], int32(from))
		}
	}
	dist := make([]int32, n)
	queue := make([]int32, 0, n)
	for _, dst := range f.hosts {
		for i := range dist {
			dist[i] = -1
		}
		di := int32(dst.ID()) - 1
		dist[di] = 0
		queue = append(queue[:0], di)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			if v != di {
				// Hosts terminate traffic; only routers forward, so a
				// path may not transit a host.
				if _, isRouter := f.nodes[v].(*Router); !isRouter {
					continue
				}
			}
			for _, u := range radj[v] {
				if dist[u] < 0 {
					dist[u] = dist[v] + 1
					queue = append(queue, u)
				}
			}
		}
		for i, node := range f.nodes {
			r, ok := node.(*Router)
			if !ok || dist[i] < 0 || dist[i] == 0 {
				continue
			}
			for _, e := range f.edges[i] {
				if d := dist[int(e.to)-1]; d >= 0 && d == dist[i]-1 {
					r.AddRoute(dst.ID(), e.link)
					break
				}
			}
		}
	}
}

// Hosts returns the fabric's hosts in allocation order.
func (f *Fabric) Hosts() []*Host { return f.hosts }
