package netsim

import "fmt"

// Fabric is the topology construction kit the builders in this package
// (linear paths, dumbbells, bottleneck trees) compile onto. It owns
// node-ID allocation, remembers every directed link it wires, and
// derives the static per-destination route tables the routers forward
// by, so a topology only describes its shape — never its routing.
//
// Route compilation is a deterministic breadth-first search per host
// destination: each router's next hop toward a host is the first of
// its outgoing links (in wiring order) that lies on a shortest path.
// All topologies in this package have unique shortest paths, so wiring
// order is a tie-break, not a semantic choice.
type Fabric struct {
	sim    *Simulator
	nextID NodeID

	nodes []Node // insertion order; index = NodeID-1
	hosts []*Host

	// adjacency in wiring order: edges[i] lists node i+1's outgoing
	// links (paired with their destination IDs).
	edges [][]fabricEdge
}

type fabricEdge struct {
	to   NodeID
	link *Link
}

// NewFabric starts an empty fabric on sim.
func NewFabric(sim *Simulator) *Fabric {
	return &Fabric{sim: sim}
}

// Host allocates a leaf node. Hosts carry transport endpoints and have
// exactly one output link (their first outgoing edge).
func (f *Fabric) Host(name string) *Host {
	f.nextID++
	h := NewHost(f.nextID, name)
	f.nodes = append(f.nodes, h)
	f.hosts = append(f.hosts, h)
	f.edges = append(f.edges, nil)
	return h
}

// Router allocates a forwarding node whose route table Compile fills.
func (f *Fabric) Router(name string) *Router {
	f.nextID++
	r := NewRouter(f.nextID, name)
	f.nodes = append(f.nodes, r)
	f.edges = append(f.edges, nil)
	return r
}

// Connect wires a unidirectional link from → to with cfg. A host's
// first connection becomes its output link; a second one panics (hosts
// are single-homed — multihoming would need transport-level routing).
func (f *Fabric) Connect(from, to Node, cfg LinkConfig) *Link {
	l := NewLink(f.sim, cfg, to)
	if h, ok := from.(*Host); ok {
		if h.Output() != nil {
			panic(fmt.Sprintf("netsim: host %q already has an output link", h.Name()))
		}
		h.SetOutput(l)
	}
	i := int(from.ID()) - 1
	f.edges[i] = append(f.edges[i], fabricEdge{to: to.ID(), link: l})
	return l
}

// Duplex wires a link pair between a and b: ab carries a→b and ba
// carries b→a. When ba.Name is empty it defaults to ab.Name + "-rev".
func (f *Fabric) Duplex(a, b Node, ab, ba LinkConfig) (fwd, rev *Link) {
	if ba.Name == "" {
		ba.Name = ab.Name + "-rev"
	}
	return f.Connect(a, b, ab), f.Connect(b, a, ba)
}

// Compile fills every router's route table with the next hop toward
// every host, breadth-first over the wired links. Hosts that cannot
// reach each other simply get no route — forwarding to them panics at
// runtime exactly as an unrouted destination always has.
func (f *Fabric) Compile() {
	n := len(f.nodes)
	// Reverse adjacency once: dist-to-destination search walks edges
	// backwards.
	radj := make([][]int32, n)
	for from, outs := range f.edges {
		for _, e := range outs {
			to := int(e.to) - 1
			radj[to] = append(radj[to], int32(from))
		}
	}
	dist := make([]int32, n)
	queue := make([]int32, 0, n)
	for _, dst := range f.hosts {
		for i := range dist {
			dist[i] = -1
		}
		di := int32(dst.ID()) - 1
		dist[di] = 0
		queue = append(queue[:0], di)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			if v != di {
				// Hosts terminate traffic; only routers forward, so a
				// path may not transit a host.
				if _, isRouter := f.nodes[v].(*Router); !isRouter {
					continue
				}
			}
			for _, u := range radj[v] {
				if dist[u] < 0 {
					dist[u] = dist[v] + 1
					queue = append(queue, u)
				}
			}
		}
		for i, node := range f.nodes {
			r, ok := node.(*Router)
			if !ok || dist[i] < 0 || dist[i] == 0 {
				continue
			}
			for _, e := range f.edges[i] {
				if d := dist[int(e.to)-1]; d >= 0 && d == dist[i]-1 {
					r.AddRoute(dst.ID(), e.link)
					break
				}
			}
		}
	}
}

// Hosts returns the fabric's hosts in allocation order.
func (f *Fabric) Hosts() []*Host { return f.hosts }
