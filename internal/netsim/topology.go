package netsim

import "fmt"

// PathSpec describes a linear sender→receiver path of one or more
// links. ACKs travel the Reverse chain; when Reverse is nil a mirror
// of Forward is used (same rates and delays, generous queues) so that
// the return path is never the bottleneck unless asked for.
type PathSpec struct {
	Forward []LinkConfig
	Reverse []LinkConfig
}

// Path is a wired linear topology.
type Path struct {
	Sim      *Simulator
	Sender   *Host
	Receiver *Host
	Fwd      []*Link
	Rev      []*Link
	Routers  []*Router
}

// Bottleneck returns the forward link with the lowest configured fixed
// rate; links using rate models are compared by their rate at time 0.
func (p *Path) Bottleneck() *Link {
	var best *Link
	for _, l := range p.Fwd {
		if best == nil || l.RateAt(0) < best.RateAt(0) {
			best = l
		}
	}
	return best
}

// NewPath wires the linear topology
//
//	sender → fwd[0] → R0 → fwd[1] → … → fwd[n-1] → receiver
//
// with the mirrored reverse chain through the same routers.
func NewPath(sim *Simulator, spec PathSpec) *Path {
	n := len(spec.Forward)
	if n == 0 {
		panic("netsim: NewPath needs at least one forward link")
	}
	rev := spec.Reverse
	if rev == nil {
		rev = make([]LinkConfig, n)
		for i, c := range spec.Forward {
			rc := c
			rc.Name = c.Name + "-rev"
			rc.QueueBytes = 4 << 20
			rev[n-1-i] = rc
		}
	}
	if len(rev) != n {
		panic("netsim: reverse chain must have the same number of links as forward")
	}

	p := &Path{Sim: sim}
	var id NodeID
	next := func() NodeID { id++; return id }

	p.Sender = NewHost(next(), "sender")
	p.Receiver = NewHost(next(), "receiver")
	for i := 0; i < n-1; i++ {
		p.Routers = append(p.Routers, NewRouter(next(), fmt.Sprintf("r%d", i)))
	}

	// Forward chain.
	p.Fwd = make([]*Link, n)
	for i := n - 1; i >= 0; i-- {
		var dst Node
		if i == n-1 {
			dst = p.Receiver
		} else {
			dst = p.Routers[i]
		}
		p.Fwd[i] = NewLink(sim, spec.Forward[i], dst)
	}
	p.Sender.SetOutput(p.Fwd[0])
	for i, r := range p.Routers {
		r.AddRoute(p.Receiver.ID(), p.Fwd[i+1])
	}

	// Reverse chain: receiver → rev[0] → R(n-2) → … → rev[n-1] → sender.
	p.Rev = make([]*Link, n)
	for i := n - 1; i >= 0; i-- {
		var dst Node
		if i == n-1 {
			dst = p.Sender
		} else {
			dst = p.Routers[n-2-i]
		}
		p.Rev[i] = NewLink(sim, rev[i], dst)
	}
	p.Receiver.SetOutput(p.Rev[0])
	for i, r := range p.Routers {
		r.AddRoute(p.Sender.ID(), p.Rev[n-1-i])
	}
	return p
}

// DumbbellSpec describes the classic n-pair dumbbell: n servers on the
// left, n clients on the right, two routers joined by a shared
// bottleneck. Data flows server→client.
type DumbbellSpec struct {
	Pairs int
	// Access configures every server→router and router→client edge
	// link; it should be much faster than the bottleneck. AccessDelay
	// may be overridden per pair with PairDelay to give flows
	// different minRTTs.
	Access LinkConfig
	// PairDelay, when non-nil, returns the one-way access propagation
	// delay for pair i (applied on the client-side access link in both
	// directions). Nil means Access.Delay everywhere.
	PairDelay func(i int) LinkConfig
	// Bottleneck configures the shared R1→R2 link (and its mirror).
	Bottleneck LinkConfig
}

// Dumbbell is the constructed topology.
type Dumbbell struct {
	Sim        *Simulator
	Servers    []*Host
	Clients    []*Host
	Left       *Router // server side
	Right      *Router // client side
	Bottleneck *Link   // left→right, the congested direction
	RevBneck   *Link   // right→left (ACK path)
}

// NewDumbbell wires the topology. Every server i sends to client i.
func NewDumbbell(sim *Simulator, spec DumbbellSpec) *Dumbbell {
	if spec.Pairs <= 0 {
		panic("netsim: dumbbell needs at least one pair")
	}
	d := &Dumbbell{Sim: sim}
	var id NodeID
	next := func() NodeID { id++; return id }

	d.Left = NewRouter(next(), "left")
	d.Right = NewRouter(next(), "right")

	bcfg := spec.Bottleneck
	if bcfg.Name == "" {
		bcfg.Name = "bottleneck"
	}
	d.Bottleneck = NewLink(sim, bcfg, d.Right)
	rcfg := bcfg
	rcfg.Name = bcfg.Name + "-rev"
	rcfg.QueueBytes = 4 << 20 // ACK path should not drop
	d.RevBneck = NewLink(sim, rcfg, d.Left)

	for i := 0; i < spec.Pairs; i++ {
		srv := NewHost(next(), fmt.Sprintf("server%d", i))
		cli := NewHost(next(), fmt.Sprintf("client%d", i))
		d.Servers = append(d.Servers, srv)
		d.Clients = append(d.Clients, cli)

		acc := spec.Access
		if spec.PairDelay != nil {
			acc = spec.PairDelay(i)
		}
		if acc.Name == "" {
			acc.Name = fmt.Sprintf("access%d", i)
		}

		// server → left router
		up := acc
		up.Name = fmt.Sprintf("%s-srv-up", acc.Name)
		srv.SetOutput(NewLink(sim, up, d.Left))

		// right router → client
		down := acc
		down.Name = fmt.Sprintf("%s-cli-down", acc.Name)
		d.Right.AddRoute(cli.ID(), NewLink(sim, down, cli))

		// client → right router
		cup := acc
		cup.Name = fmt.Sprintf("%s-cli-up", acc.Name)
		cli.SetOutput(NewLink(sim, cup, d.Right))

		// left router → server (ACK delivery)
		sdown := acc
		sdown.Name = fmt.Sprintf("%s-srv-down", acc.Name)
		d.Left.AddRoute(srv.ID(), NewLink(sim, sdown, srv))

		// Cross-router routes go through the shared bottleneck.
		d.Left.AddRoute(cli.ID(), d.Bottleneck)
		d.Right.AddRoute(srv.ID(), d.RevBneck)
	}
	return d
}
