package netsim

import "fmt"

// PathSpec describes a linear sender→receiver path of one or more
// links. ACKs travel the Reverse chain; when Reverse is nil a mirror
// of Forward is used (same rates and delays, generous queues) so that
// the return path is never the bottleneck unless asked for.
type PathSpec struct {
	Forward []LinkConfig
	Reverse []LinkConfig
}

// Path is a wired linear topology: the degenerate one-branch member
// of the topology family Fabric compiles (see Tree for the shared
// bottleneck generalization). One sender, one receiver, a chain of
// links with a mirrored reverse chain through the same routers.
type Path struct {
	Sim      *Simulator
	Cluster  *Cluster // non-nil when built with NewPathOn
	Sender   *Host
	Receiver *Host
	Fwd      []*Link
	Rev      []*Link
	Routers  []*Router
}

// Bottleneck returns the forward link with the lowest configured fixed
// rate; links using rate models are compared by their rate at time 0.
func (p *Path) Bottleneck() *Link {
	var best *Link
	for _, l := range p.Fwd {
		if best == nil || l.RateAt(0) < best.RateAt(0) {
			best = l
		}
	}
	return best
}

// NewPath wires the linear topology
//
//	sender → fwd[0] → R0 → fwd[1] → … → fwd[n-1] → receiver
//
// with the mirrored reverse chain through the same routers. Routes are
// compiled by the fabric; on a chain they are the unique next hops.
func NewPath(sim *Simulator, spec PathSpec) *Path {
	return buildPath(NewFabric(sim), sim, spec, 0)
}

// NewPathOn wires the identical linear topology across a cluster: the
// sender in domain 0, the routers and receiver in domain 1 (with one
// domain, everything stays in domain 0 and runs monolithically). The
// frontier is the first forward link and the last reverse link —
// sender⇄r0 — so their propagation delay (typically the core hop)
// must be positive; it becomes the cluster's lookahead. Extra domains
// beyond two are left idle: a single flow's path has exactly one
// useful cut, between the send-side endpoint doing congestion-control
// work and the wire delivering it.
func NewPathOn(c *Cluster, spec PathSpec) *Path {
	far := 0
	if c.N() > 1 {
		far = 1
	}
	p := buildPath(NewFabricOn(c), c.Sim(0), spec, far)
	p.Cluster = c
	return p
}

func buildPath(f *Fabric, sim *Simulator, spec PathSpec, far int) *Path {
	n := len(spec.Forward)
	if n == 0 {
		panic("netsim: NewPath needs at least one forward link")
	}
	rev := spec.Reverse
	if rev == nil {
		rev = make([]LinkConfig, n)
		for i, c := range spec.Forward {
			rc := c
			rc.Name = c.Name + "-rev"
			rc.QueueBytes = 4 << 20
			rev[n-1-i] = rc
		}
	}
	if len(rev) != n {
		panic("netsim: reverse chain must have the same number of links as forward")
	}

	p := &Path{Sim: sim}
	p.Sender = f.Host("sender")
	p.Receiver = f.HostIn(far, "receiver")
	for i := 0; i < n-1; i++ {
		p.Routers = append(p.Routers, f.RouterIn(far, fmt.Sprintf("r%d", i)))
	}

	// Forward chain: sender → r0 → … → receiver.
	p.Fwd = make([]*Link, n)
	for i := 0; i < n; i++ {
		var from, to Node = p.Sender, p.Receiver
		if i > 0 {
			from = p.Routers[i-1]
		}
		if i < n-1 {
			to = p.Routers[i]
		}
		p.Fwd[i] = f.Connect(from, to, spec.Forward[i])
	}
	// Reverse chain: receiver → r(n-2) → … → sender.
	p.Rev = make([]*Link, n)
	for i := 0; i < n; i++ {
		var from, to Node = p.Receiver, p.Sender
		if i > 0 {
			from = p.Routers[n-1-i]
		}
		if i < n-1 {
			to = p.Routers[n-2-i]
		}
		p.Rev[i] = f.Connect(from, to, rev[i])
	}
	f.Compile()
	return p
}

// DumbbellSpec describes the classic n-pair dumbbell: n servers on the
// left, n clients on the right, two routers joined by a shared
// bottleneck. Data flows server→client.
type DumbbellSpec struct {
	Pairs int
	// Access configures every server→router and router→client edge
	// link; it should be much faster than the bottleneck. AccessDelay
	// may be overridden per pair with PairDelay to give flows
	// different minRTTs.
	Access LinkConfig
	// PairDelay, when non-nil, returns the one-way access propagation
	// delay for pair i (applied on the client-side access link in both
	// directions). Nil means Access.Delay everywhere.
	PairDelay func(i int) LinkConfig
	// Bottleneck configures the shared R1→R2 link (and its mirror).
	Bottleneck LinkConfig
}

// Dumbbell is the constructed topology: a Tree with a single
// aggregation level collapsed away — two routers, one shared queue.
type Dumbbell struct {
	Sim        *Simulator
	Servers    []*Host
	Clients    []*Host
	Left       *Router // server side
	Right      *Router // client side
	Bottleneck *Link   // left→right, the congested direction
	RevBneck   *Link   // right→left (ACK path)
}

// NewDumbbell wires the topology. Every server i sends to client i.
func NewDumbbell(sim *Simulator, spec DumbbellSpec) *Dumbbell {
	if spec.Pairs <= 0 {
		panic("netsim: dumbbell needs at least one pair")
	}
	d := &Dumbbell{Sim: sim}
	f := NewFabric(sim)

	d.Left = f.Router("left")
	d.Right = f.Router("right")

	bcfg := spec.Bottleneck
	if bcfg.Name == "" {
		bcfg.Name = "bottleneck"
	}
	d.Bottleneck, d.RevBneck = f.Duplex(d.Left, d.Right, bcfg, ackMirror(bcfg))

	for i := 0; i < spec.Pairs; i++ {
		srv := f.Host(fmt.Sprintf("server%d", i))
		cli := f.Host(fmt.Sprintf("client%d", i))
		d.Servers = append(d.Servers, srv)
		d.Clients = append(d.Clients, cli)

		acc := spec.Access
		if spec.PairDelay != nil {
			acc = spec.PairDelay(i)
		}
		if acc.Name == "" {
			acc.Name = fmt.Sprintf("access%d", i)
		}

		up := acc
		up.Name = fmt.Sprintf("%s-srv-up", acc.Name)
		f.Connect(srv, d.Left, up)

		down := acc
		down.Name = fmt.Sprintf("%s-cli-down", acc.Name)
		f.Connect(d.Right, cli, down)

		cup := acc
		cup.Name = fmt.Sprintf("%s-cli-up", acc.Name)
		f.Connect(cli, d.Right, cup)

		sdown := acc
		sdown.Name = fmt.Sprintf("%s-srv-down", acc.Name)
		f.Connect(d.Left, srv, sdown)
	}
	f.Compile()
	return d
}
