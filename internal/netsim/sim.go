// Package netsim implements a deterministic discrete-event network
// simulator: an event loop with a virtual clock, links with finite
// rate, propagation delay and drop-tail queues, routers, hosts, and
// topology builders (multi-hop paths and dumbbells).
//
// The simulator is single-threaded. All component callbacks run inside
// Simulator.Run, ordered by virtual time with FIFO tie-breaking, so no
// locking is needed anywhere in the stack built on top of it.
//
// The event core is allocation-free in steady state: timers live in a
// pooled, generation-counted arena owned by the Simulator, and the
// capture-free ScheduleEvent/ScheduleEventAt entry points let hot
// paths (link serialization, RTO re-arming) schedule without building
// a closure per event. Slots are recycled the moment a timer fires or
// is stopped; a Timer handle carries the slot's generation so a Stop
// on a recycled handle is a detected no-op.
package netsim

import (
	"fmt"
	"math"
	"time"
)

// EventFunc is a capture-free event callback. The scheduler stores ctx
// and arg in the timer slot, so scheduling with a package-level
// EventFunc allocates nothing — unlike a capturing closure, which
// costs one allocation per event. Pointers stored in ctx/arg (a *Link,
// a *Packet) incur no boxing.
type EventFunc func(ctx, arg any)

// runClosure adapts the closure-based Schedule API onto the
// capture-free core (a func value is a pointer, so storing it in ctx
// does not allocate; only the closure itself, if capturing, does).
var runClosure EventFunc = func(ctx, _ any) { ctx.(func())() }

// timerSlot is one arena entry. Slots are recycled through a free
// list; gen increments on every release so stale Timer handles are
// detectable.
type timerSlot struct {
	at       time.Duration
	seq      uint64
	fn       EventFunc
	ctx, arg any
	gen      uint32
	heapIdx  int32 // position in Simulator.heap, -1 when not queued
}

// Simulator owns the virtual clock and the pending-event queue.
// The zero value is not ready for use; call NewSimulator.
type Simulator struct {
	now    time.Duration
	seq    uint64 // insertion counter for deterministic FIFO tie-break
	halted bool

	// Timer arena: slots holds every timer ever in flight, free is the
	// recycle list, heap is a binary min-heap of slot indexes ordered
	// by (at, seq).
	slots []timerSlot
	free  []int32
	heap  []int32

	pool PacketPool

	// Stop condition: if stopWhen is non-nil it is checked after every
	// event; Run returns early once it reports true.
	stopWhen func() bool
}

// NewSimulator returns a simulator with the clock at zero and an empty
// event queue.
func NewSimulator() *Simulator {
	return &Simulator{}
}

// Now returns the current virtual time.
func (s *Simulator) Now() time.Duration { return s.now }

// Pool returns the simulator's packet free list. Endpoints acquire
// hot-path packets here and the owning component releases them; see
// PacketPool for the ownership rules.
func (s *Simulator) Pool() *PacketPool { return &s.pool }

// Timer is the public cancellable handle returned by the Schedule
// family. It is a value — {simulator, slot index, generation} — not a
// pointer, so handles themselves never allocate. A handle outlives its
// slot safely: once the slot is recycled the generation no longer
// matches and Stop/Active observe a dead timer.
type Timer struct {
	s   *Simulator
	idx int32
	gen uint32
}

// Stop cancels the timer and removes it from the event heap
// immediately (it does not linger until its fire time). Stopping an
// already-fired, already-stopped, or zero-value timer is a no-op. It
// reports whether the call prevented the event from firing.
func (t Timer) Stop() bool {
	if t.s == nil {
		return false
	}
	sl := &t.s.slots[t.idx]
	if sl.gen != t.gen || sl.heapIdx < 0 {
		return false
	}
	t.s.heapRemove(int(sl.heapIdx))
	t.s.releaseSlot(t.idx)
	return true
}

// Active reports whether the timer is still pending.
func (t Timer) Active() bool {
	if t.s == nil {
		return false
	}
	sl := &t.s.slots[t.idx]
	return sl.gen == t.gen && sl.heapIdx >= 0
}

// Schedule runs fn after delay of virtual time. A negative delay is
// treated as zero (fn runs at the current time, after already-queued
// events for this instant). The returned Timer can cancel the event.
func (s *Simulator) Schedule(delay time.Duration, fn func()) Timer {
	if fn == nil {
		panic("netsim: Schedule with nil fn")
	}
	if delay < 0 {
		delay = 0
	}
	return s.scheduleSlot(s.now+delay, runClosure, fn, nil)
}

// ScheduleAt runs fn at absolute virtual time at. Times in the past
// are clamped to now.
func (s *Simulator) ScheduleAt(at time.Duration, fn func()) Timer {
	if fn == nil {
		panic("netsim: ScheduleAt with nil fn")
	}
	return s.scheduleSlot(at, runClosure, fn, nil)
}

// ScheduleEvent runs fn(ctx, arg) after delay of virtual time without
// allocating: fn should be a package-level EventFunc and ctx/arg carry
// the state a closure would otherwise capture.
func (s *Simulator) ScheduleEvent(delay time.Duration, fn EventFunc, ctx, arg any) Timer {
	if fn == nil {
		panic("netsim: ScheduleEvent with nil fn")
	}
	if delay < 0 {
		delay = 0
	}
	return s.scheduleSlot(s.now+delay, fn, ctx, arg)
}

// ScheduleEventAt is ScheduleEvent with an absolute virtual time.
// Times in the past are clamped to now.
func (s *Simulator) ScheduleEventAt(at time.Duration, fn EventFunc, ctx, arg any) Timer {
	if fn == nil {
		panic("netsim: ScheduleEventAt with nil fn")
	}
	return s.scheduleSlot(at, fn, ctx, arg)
}

func (s *Simulator) scheduleSlot(at time.Duration, fn EventFunc, ctx, arg any) Timer {
	if at < s.now {
		at = s.now
	}
	var idx int32
	if n := len(s.free); n > 0 {
		idx = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		s.slots = append(s.slots, timerSlot{})
		idx = int32(len(s.slots) - 1)
	}
	sl := &s.slots[idx]
	sl.at, sl.seq, sl.fn, sl.ctx, sl.arg = at, s.seq, fn, ctx, arg
	s.seq++
	sl.heapIdx = int32(len(s.heap))
	s.heap = append(s.heap, idx)
	s.siftUp(len(s.heap) - 1)
	return Timer{s: s, idx: idx, gen: sl.gen}
}

// releaseSlot recycles a slot: the generation bump invalidates every
// outstanding handle, and clearing fn/ctx/arg lets captured state be
// collected.
func (s *Simulator) releaseSlot(idx int32) {
	sl := &s.slots[idx]
	sl.gen++
	sl.fn, sl.ctx, sl.arg = nil, nil, nil
	sl.heapIdx = -1
	s.free = append(s.free, idx)
}

// StopWhen installs a predicate checked after every event; when it
// returns true, Run returns. Pass nil to clear.
func (s *Simulator) StopWhen(pred func() bool) { s.stopWhen = pred }

// Halt stops the run loop after the current event completes.
func (s *Simulator) Halt() { s.halted = true }

// Run executes events in time order until the queue drains, the clock
// passes until, Halt is called, or the StopWhen predicate fires.
// It returns the virtual time at which it stopped.
//
// Clock semantics on each stop mode: after a drain, Halt, or StopWhen
// stop, Now() equals the time of the last executed event (for StopWhen
// this holds even when later events share the same instant); after a
// horizon stop, Now() equals until. The clock never moves backwards —
// a Run horizon already in the past executes nothing and leaves Now()
// unchanged.
func (s *Simulator) Run(until time.Duration) time.Duration {
	s.halted = false
	for len(s.heap) > 0 && !s.halted {
		idx := s.heap[0]
		sl := &s.slots[idx]
		if sl.at > until {
			if until > s.now {
				s.now = until
			}
			return s.now
		}
		s.heapPop()
		s.now = sl.at
		fn, ctx, arg := sl.fn, sl.ctx, sl.arg
		// Recycle before firing: during its own callback the timer
		// reads as spent (Active false, Stop no-op), and the slot is
		// immediately reusable by events the callback schedules.
		s.releaseSlot(idx)
		fn(ctx, arg)
		if s.stopWhen != nil && s.stopWhen() {
			break
		}
	}
	return s.now
}

// RunAll executes events until the queue drains (or Halt/StopWhen).
// It is Run with an effectively infinite horizon.
func (s *Simulator) RunAll() time.Duration {
	return s.Run(time.Duration(math.MaxInt64))
}

// Pending returns the number of events still queued. The count is
// exact: Stop removes a timer from the heap at cancellation time, so
// cancelled timers are never counted (before the pooled arena, stopped
// timers lingered in the heap until popped and inflated this count).
func (s *Simulator) Pending() int { return len(s.heap) }

// --- event heap (hand-rolled on slot indexes) ---
//
// container/heap would box every pushed index into an interface and
// allocate; ordering is (fire time, insertion sequence), which
// preserves FIFO among same-instant events.

func (s *Simulator) heapLess(a, b int32) bool {
	sa, sb := &s.slots[a], &s.slots[b]
	if sa.at != sb.at {
		return sa.at < sb.at
	}
	return sa.seq < sb.seq
}

func (s *Simulator) heapSwap(i, j int) {
	h := s.heap
	h[i], h[j] = h[j], h[i]
	s.slots[h[i]].heapIdx = int32(i)
	s.slots[h[j]].heapIdx = int32(j)
}

func (s *Simulator) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !s.heapLess(s.heap[i], s.heap[parent]) {
			return
		}
		s.heapSwap(i, parent)
		i = parent
	}
}

func (s *Simulator) siftDown(i int) {
	n := len(s.heap)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		least := l
		if r := l + 1; r < n && s.heapLess(s.heap[r], s.heap[l]) {
			least = r
		}
		if !s.heapLess(s.heap[least], s.heap[i]) {
			return
		}
		s.heapSwap(i, least)
		i = least
	}
}

// heapPop removes the root (the caller already has its index).
func (s *Simulator) heapPop() {
	n := len(s.heap) - 1
	s.heapSwap(0, n)
	s.slots[s.heap[n]].heapIdx = -1
	s.heap = s.heap[:n]
	if n > 0 {
		s.siftDown(0)
	}
}

// heapRemove removes the element at heap position i (timer
// cancellation mid-heap).
func (s *Simulator) heapRemove(i int) {
	n := len(s.heap) - 1
	s.slots[s.heap[i]].heapIdx = -1
	if i != n {
		s.heap[i] = s.heap[n]
		s.slots[s.heap[i]].heapIdx = int32(i)
	}
	s.heap = s.heap[:n]
	if i < n {
		s.siftDown(i)
		s.siftUp(i)
	}
}

// String implements fmt.Stringer for debugging.
func (s *Simulator) String() string {
	return fmt.Sprintf("netsim.Simulator{now: %v, pending: %d}", s.now, len(s.heap))
}
