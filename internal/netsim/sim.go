// Package netsim implements a deterministic discrete-event network
// simulator: an event loop with a virtual clock, links with finite
// rate, propagation delay and drop-tail queues, routers, hosts, and
// topology builders (multi-hop paths and dumbbells).
//
// The simulator is single-threaded. All component callbacks run inside
// Simulator.Run, ordered by virtual time with FIFO tie-breaking, so no
// locking is needed anywhere in the stack built on top of it.
package netsim

import (
	"container/heap"
	"fmt"
	"math"
	"time"
)

// Simulator owns the virtual clock and the pending-event queue.
// The zero value is not ready for use; call NewSimulator.
type Simulator struct {
	now    time.Duration
	events eventHeap
	seq    uint64 // insertion counter for deterministic FIFO tie-break
	halted bool

	// Stop condition: if stopWhen is non-nil it is checked after every
	// event; Run returns early once it reports true.
	stopWhen func() bool
}

// NewSimulator returns a simulator with the clock at zero and an empty
// event queue.
func NewSimulator() *Simulator {
	return &Simulator{}
}

// Now returns the current virtual time.
func (s *Simulator) Now() time.Duration { return s.now }

// timer is a handle to a scheduled event that can be cancelled.
type timer struct {
	at      time.Duration
	seq     uint64
	fn      func()
	stopped bool
	index   int // heap index, -1 when popped
}

// Timer is the public cancellable handle returned by Schedule.
type Timer struct{ t *timer }

// Stop cancels the timer. Stopping an already-fired or already-stopped
// timer is a no-op. It reports whether the call prevented the event
// from firing.
func (t Timer) Stop() bool {
	if t.t == nil || t.t.stopped || t.t.index == -1 {
		return false
	}
	t.t.stopped = true
	return true
}

// Active reports whether the timer is still pending.
func (t Timer) Active() bool {
	return t.t != nil && !t.t.stopped && t.t.index != -1
}

// Schedule runs fn after delay of virtual time. A negative delay is
// treated as zero (fn runs at the current time, after already-queued
// events for this instant). The returned Timer can cancel the event.
func (s *Simulator) Schedule(delay time.Duration, fn func()) Timer {
	if delay < 0 {
		delay = 0
	}
	return s.ScheduleAt(s.now+delay, fn)
}

// ScheduleAt runs fn at absolute virtual time at. Times in the past
// are clamped to now.
func (s *Simulator) ScheduleAt(at time.Duration, fn func()) Timer {
	if fn == nil {
		panic("netsim: ScheduleAt with nil fn")
	}
	if at < s.now {
		at = s.now
	}
	t := &timer{at: at, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.events, t)
	return Timer{t}
}

// StopWhen installs a predicate checked after every event; when it
// returns true, Run returns. Pass nil to clear.
func (s *Simulator) StopWhen(pred func() bool) { s.stopWhen = pred }

// Halt stops the run loop after the current event completes.
func (s *Simulator) Halt() { s.halted = true }

// Run executes events in time order until the queue drains, the clock
// passes until, Halt is called, or the StopWhen predicate fires.
// It returns the virtual time at which it stopped.
func (s *Simulator) Run(until time.Duration) time.Duration {
	s.halted = false
	for len(s.events) > 0 && !s.halted {
		next := s.events[0]
		if next.at > until {
			s.now = until
			return s.now
		}
		heap.Pop(&s.events)
		if next.stopped {
			continue
		}
		s.now = next.at
		next.fn()
		if s.stopWhen != nil && s.stopWhen() {
			break
		}
	}
	return s.now
}

// RunAll executes events until the queue drains (or Halt/StopWhen).
// It is Run with an effectively infinite horizon.
func (s *Simulator) RunAll() time.Duration {
	return s.Run(time.Duration(math.MaxInt64))
}

// Pending returns the number of events still queued (including
// cancelled timers not yet popped).
func (s *Simulator) Pending() int { return len(s.events) }

// eventHeap is a min-heap ordered by (time, insertion sequence).
type eventHeap []*timer

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	t := x.(*timer)
	t.index = len(*h)
	*h = append(*h, t)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	t.index = -1
	*h = old[:n-1]
	return t
}

// String implements fmt.Stringer for debugging.
func (s *Simulator) String() string {
	return fmt.Sprintf("netsim.Simulator{now: %v, pending: %d}", s.now, len(s.events))
}
