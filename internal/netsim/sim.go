// Package netsim implements a deterministic discrete-event network
// simulator: an event loop with a virtual clock, links with finite
// rate, propagation delay and drop-tail queues, routers, hosts, and
// topology builders (multi-hop paths and dumbbells).
//
// The simulator is single-threaded. All component callbacks run inside
// Simulator.Run, ordered by virtual time with FIFO tie-breaking, so no
// locking is needed anywhere in the stack built on top of it.
//
// The event core is allocation-free in steady state: timers live in a
// pooled, generation-counted arena owned by the Simulator, and the
// capture-free ScheduleEvent/ScheduleEventAt entry points let hot
// paths (link serialization, RTO re-arming) schedule without building
// a closure per event. Slots are recycled the moment a timer fires or
// is stopped; a Timer handle carries the slot's generation so a Stop
// on a recycled handle is a detected no-op.
//
// Pending timers are indexed by a hierarchical timing wheel rather
// than a comparison heap (see wheel.go): Schedule, Stop, and Reset are
// O(1), and Run dispatches all events sharing an instant as one batch.
package netsim

import (
	"fmt"
	"math"
	"time"
)

// EventFunc is a capture-free event callback. The scheduler stores ctx
// and arg in the timer slot, so scheduling with a package-level
// EventFunc allocates nothing — unlike a capturing closure, which
// costs one allocation per event. Pointers stored in ctx/arg (a *Link,
// a *Packet) incur no boxing.
type EventFunc func(ctx, arg any)

// runClosure adapts the closure-based Schedule API onto the
// capture-free core (a func value is a pointer, so storing it in ctx
// does not allocate; only the closure itself, if capturing, does).
var runClosure EventFunc = func(ctx, _ any) { ctx.(func())() }

// timerSlot is one arena entry. Slots are recycled through a free
// list; gen increments on every release so stale Timer handles are
// detectable. next/prev link the slot into the intrusive list of its
// wheel bucket (see wheel.go); bucket records which list, bucketNone
// when released, or bucketBatch while awaiting same-instant dispatch.
type timerSlot struct {
	at       time.Duration
	armAt    time.Duration // virtual time at which the event was armed
	seq      uint64
	fn       EventFunc
	ctx, arg any
	dom      uint32 // domain that armed the event (see cluster.go)
	gen      uint32
	bucket   int32
	next     int32
	prev     int32
}

// Simulator owns the virtual clock and the pending-event queue.
// The zero value is not ready for use; call NewSimulator.
type Simulator struct {
	now    time.Duration
	seq    uint64 // insertion counter for deterministic FIFO tie-break
	domID  uint32 // cluster domain ID; 0 for a standalone simulator
	halted bool

	// Timer arena: slots holds every timer ever in flight, free is the
	// recycle list. Pending slots are threaded into the timing wheel.
	slots []timerSlot
	free  []int32

	// Hierarchical timing wheel (wheel.go): cur is the wheel cursor —
	// it trails min(now, every pending deadline) so bucket placement
	// deltas are never negative. occ is the per-level occupancy bitmap;
	// bhead/btail are the bucket list ends (last entry = overflow).
	cur      int64
	occ      [wheelLevels]uint64
	bhead    [numWheelBuckets + 1]int32
	btail    [numWheelBuckets + 1]int32
	npending int
	ovMin    int64 // cached min deadline in the overflow list
	ovDirty  bool  // ovMin must be recomputed before use

	// Same-instant dispatch batch: Run drains a whole level-0 bucket
	// into this reusable ring and fires it without re-touching the
	// wheel per event. batchPos trails len(batch) while a Halt or
	// StopWhen pause leaves same-instant events undispatched.
	batch    []int32
	batchPos int
	batchAt  time.Duration

	pool PacketPool

	// Stop condition: if stopWhen is non-nil it is checked after every
	// event; Run returns early once it reports true.
	stopWhen func() bool
}

// NewSimulator returns a simulator with the clock at zero and an empty
// event queue.
func NewSimulator() *Simulator {
	s := &Simulator{ovMin: math.MaxInt64}
	for i := range s.bhead {
		s.bhead[i] = -1
		s.btail[i] = -1
	}
	return s
}

// Now returns the current virtual time.
func (s *Simulator) Now() time.Duration { return s.now }

// Pool returns the simulator's packet free list. Endpoints acquire
// hot-path packets here and the owning component releases them; see
// PacketPool for the ownership rules.
func (s *Simulator) Pool() *PacketPool { return &s.pool }

// Timer is the public cancellable handle returned by the Schedule
// family. It is a value — {simulator, slot index, generation} — not a
// pointer, so handles themselves never allocate. A handle outlives its
// slot safely: once the slot is recycled the generation no longer
// matches and Stop/Active observe a dead timer.
type Timer struct {
	s   *Simulator
	idx int32
	gen uint32
}

// Stop cancels the timer and removes it from the pending set
// immediately (it does not linger until its fire time). Stopping an
// already-fired, already-stopped, or zero-value timer is a no-op. It
// reports whether the call prevented the event from firing.
func (t Timer) Stop() bool {
	if t.s == nil {
		return false
	}
	s := t.s
	sl := &s.slots[t.idx]
	if sl.gen != t.gen || sl.bucket == bucketNone {
		return false
	}
	if sl.bucket != bucketBatch {
		s.unlink(t.idx)
	}
	s.releaseSlot(t.idx)
	return true
}

// Active reports whether the timer is still pending.
func (t Timer) Active() bool {
	if t.s == nil {
		return false
	}
	sl := &t.s.slots[t.idx]
	return sl.gen == t.gen && sl.bucket != bucketNone
}

// Reset rearms a still-pending timer in place to fire after d of
// virtual time, keeping its callback and arguments: the slot is
// relinked into the wheel directly instead of passing through the
// free list, which is the fast path for the RTO/pacing rearm-per-ACK
// pattern. A negative d is treated as zero.
//
// The rearmed timer takes a fresh insertion sequence number and a
// fresh generation, so event ordering is byte-identical to Stop
// followed by a new Schedule, and handles from before the Reset
// (including t itself) become stale no-ops. The new handle is
// returned. If the timer already fired or was stopped, Reset
// schedules nothing and reports false.
func (t Timer) Reset(d time.Duration) (Timer, bool) {
	if t.s == nil {
		return Timer{}, false
	}
	s := t.s
	sl := &s.slots[t.idx]
	if sl.gen != t.gen || sl.bucket == bucketNone {
		return Timer{}, false
	}
	if d < 0 {
		d = 0
	}
	if sl.bucket != bucketBatch {
		s.unlink(t.idx)
	}
	sl.at, sl.armAt, sl.dom, sl.seq = s.now+d, s.now, s.domID, s.seq
	s.seq++
	sl.gen++
	s.place(t.idx)
	return Timer{s: s, idx: t.idx, gen: sl.gen}, true
}

// Schedule runs fn after delay of virtual time. A negative delay is
// treated as zero (fn runs at the current time, after already-queued
// events for this instant). The returned Timer can cancel the event.
func (s *Simulator) Schedule(delay time.Duration, fn func()) Timer {
	if fn == nil {
		panic("netsim: Schedule with nil fn")
	}
	if delay < 0 {
		delay = 0
	}
	return s.scheduleSlot(s.now+delay, runClosure, fn, nil)
}

// ScheduleAt runs fn at absolute virtual time at. Times in the past
// are clamped to now.
func (s *Simulator) ScheduleAt(at time.Duration, fn func()) Timer {
	if fn == nil {
		panic("netsim: ScheduleAt with nil fn")
	}
	return s.scheduleSlot(at, runClosure, fn, nil)
}

// ScheduleEvent runs fn(ctx, arg) after delay of virtual time without
// allocating: fn should be a package-level EventFunc and ctx/arg carry
// the state a closure would otherwise capture.
func (s *Simulator) ScheduleEvent(delay time.Duration, fn EventFunc, ctx, arg any) Timer {
	if fn == nil {
		panic("netsim: ScheduleEvent with nil fn")
	}
	if delay < 0 {
		delay = 0
	}
	return s.scheduleSlot(s.now+delay, fn, ctx, arg)
}

// ScheduleEventAt is ScheduleEvent with an absolute virtual time.
// Times in the past are clamped to now.
func (s *Simulator) ScheduleEventAt(at time.Duration, fn EventFunc, ctx, arg any) Timer {
	if fn == nil {
		panic("netsim: ScheduleEventAt with nil fn")
	}
	return s.scheduleSlot(at, fn, ctx, arg)
}

func (s *Simulator) scheduleSlot(at time.Duration, fn EventFunc, ctx, arg any) Timer {
	if at < s.now {
		at = s.now
	}
	var idx int32
	if n := len(s.free); n > 0 {
		idx = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		s.slots = append(s.slots, timerSlot{})
		idx = int32(len(s.slots) - 1)
	}
	sl := &s.slots[idx]
	sl.at, sl.armAt, sl.dom, sl.seq, sl.fn, sl.ctx, sl.arg = at, s.now, s.domID, s.seq, fn, ctx, arg
	s.seq++
	s.place(idx)
	s.npending++
	return Timer{s: s, idx: idx, gen: sl.gen}
}

// scheduleKeyed inserts an event carrying an explicit ordering key —
// the arm time, domain ID and per-frontier sequence assigned by the
// *source* domain when a packet crossed a cluster frontier. Keeping
// the source key (instead of stamping a local one at injection time)
// is what makes cross-domain delivery order independent of when the
// coordinator happened to hand the message over: the dispatch
// comparator (at, armAt, dom, seq) sees exactly the key a monolithic
// run would have produced. The local seq counter is not consumed.
func (s *Simulator) scheduleKeyed(at, armAt time.Duration, dom uint32, seq uint64, fn EventFunc, ctx, arg any) {
	if at < s.now {
		at = s.now
	}
	var idx int32
	if n := len(s.free); n > 0 {
		idx = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		s.slots = append(s.slots, timerSlot{})
		idx = int32(len(s.slots) - 1)
	}
	sl := &s.slots[idx]
	sl.at, sl.armAt, sl.dom, sl.seq, sl.fn, sl.ctx, sl.arg = at, armAt, dom, seq, fn, ctx, arg
	s.place(idx)
	s.npending++
}

// releaseSlot recycles a slot: the generation bump invalidates every
// outstanding handle, and clearing fn/ctx/arg lets captured state be
// collected. The caller must already have unlinked a wheel-resident
// slot from its bucket.
func (s *Simulator) releaseSlot(idx int32) {
	sl := &s.slots[idx]
	sl.gen++
	sl.fn, sl.ctx, sl.arg = nil, nil, nil
	sl.bucket = bucketNone
	s.free = append(s.free, idx)
	s.npending--
}

// StopWhen installs a predicate checked after every event; when it
// returns true, Run returns. Pass nil to clear.
func (s *Simulator) StopWhen(pred func() bool) { s.stopWhen = pred }

// StopPred returns the currently installed StopWhen predicate (nil when
// none). Wrappers that need to run under an additional stop condition —
// the runner's wall-clock watchdog — read it to compose with and later
// restore the caller's predicate instead of clobbering it.
func (s *Simulator) StopPred() func() bool { return s.stopWhen }

// Halt stops the run loop after the current event completes.
func (s *Simulator) Halt() { s.halted = true }

// Run executes events in time order until the queue drains, the clock
// passes until, Halt is called, or the StopWhen predicate fires.
// It returns the virtual time at which it stopped.
//
// Clock semantics on each stop mode: after a drain, Halt, or StopWhen
// stop, Now() equals the time of the last executed event (for StopWhen
// this holds even when later events share the same instant); after a
// horizon stop, Now() equals until. The clock never moves backwards —
// a Run horizon already in the past executes nothing and leaves Now()
// unchanged.
//
// Events sharing an instant are dispatched as one batch: the whole
// level-0 bucket is drained into a scratch ring, put in arm order, and
// fired without re-touching the wheel per event. A Halt or StopWhen
// pause mid-batch leaves the rest of the batch pending (counted by
// Pending, cancellable, fired by a later Run), exactly as if the
// events were still queued.
func (s *Simulator) Run(until time.Duration) time.Duration {
	s.halted = false
	for {
		if s.batchPos < len(s.batch) {
			// Resume a batch paused by Halt or StopWhen. batchAt always
			// equals s.now here, so a smaller horizon fires nothing.
			if s.batchAt > until {
				return s.now
			}
			s.now = s.batchAt
			for s.batchPos < len(s.batch) && !s.halted {
				idx := s.batch[s.batchPos]
				s.batchPos++
				sl := &s.slots[idx]
				if sl.bucket != bucketBatch {
					continue // stopped (or reset) while awaiting dispatch
				}
				fn, ctx, arg := sl.fn, sl.ctx, sl.arg
				// Recycle before firing: during its own callback the
				// timer reads as spent (Active false, Stop no-op), and
				// the slot is immediately reusable by events the
				// callback schedules.
				s.releaseSlot(idx)
				fn(ctx, arg)
				if s.stopWhen != nil && s.stopWhen() {
					return s.now
				}
			}
			if s.halted {
				return s.now
			}
			continue
		}
		tick, bucket, fire := s.wheelNext(int64(until))
		if !fire {
			if s.npending > 0 && until > s.now {
				s.now = until
			}
			return s.now
		}
		s.drainBucket(bucket, time.Duration(tick))
	}
}

// RunAll executes events until the queue drains (or Halt/StopWhen).
// It is Run with an effectively infinite horizon.
func (s *Simulator) RunAll() time.Duration {
	return s.Run(time.Duration(math.MaxInt64))
}

// Pending returns the number of events still queued. The count is
// exact: Stop removes a timer from the pending set at cancellation
// time, so cancelled timers are never counted, and events drained for
// same-instant dispatch but not yet fired still are.
func (s *Simulator) Pending() int { return s.npending }

// String implements fmt.Stringer for debugging.
func (s *Simulator) String() string {
	return fmt.Sprintf("netsim.Simulator{now: %v, pending: %d}", s.now, s.npending)
}
