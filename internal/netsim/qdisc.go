package netsim

import (
	"math"
	"time"
)

// Qdisc is a pluggable queue discipline for a Link. Enqueue may refuse
// a packet (tail drop); Dequeue may additionally drop packets it
// decides to sacrifice (AQM) before handing over the next one to
// serialize.
type Qdisc interface {
	// Enqueue offers a packet at virtual time now; false means the
	// packet was dropped on arrival.
	Enqueue(now time.Duration, pkt *Packet) bool
	// Dequeue returns the next packet to serialize (nil if empty) and
	// any packets the discipline dropped while deciding.
	Dequeue(now time.Duration) (next *Packet, dropped []*Packet)
	// Bytes returns the bytes currently queued.
	Bytes() int
}

// QdiscFactory builds a discipline for a link's byte limit.
type QdiscFactory func(limitBytes int) Qdisc

// dropTail is the default FIFO with a byte-capacity tail drop.
type dropTail struct {
	limit int
	q     []*timedPacket
	bytes int
}

type timedPacket struct {
	pkt *Packet
	at  time.Duration // enqueue time (sojourn measurement)
}

// NewDropTail returns the classic FIFO drop-tail discipline.
func NewDropTail(limitBytes int) Qdisc {
	return &dropTail{limit: limitBytes}
}

func (d *dropTail) Enqueue(now time.Duration, pkt *Packet) bool {
	if d.bytes+pkt.Size > d.limit {
		return false
	}
	d.q = append(d.q, &timedPacket{pkt: pkt, at: now})
	d.bytes += pkt.Size
	return true
}

func (d *dropTail) Dequeue(now time.Duration) (*Packet, []*Packet) {
	if len(d.q) == 0 {
		return nil, nil
	}
	tp := d.q[0]
	d.q[0] = nil
	d.q = d.q[1:]
	d.bytes -= tp.pkt.Size
	return tp.pkt, nil
}

func (d *dropTail) Bytes() int { return d.bytes }

// CoDel implements the Controlled Delay AQM (RFC 8289): when packets'
// sojourn times stay above Target for a full Interval, it enters a
// dropping state and sheds packets at a rate that increases with the
// square root of the drop count, steering the standing queue back to
// Target. The paper's related work (RFC 8290 FQ-CoDel) positions AQMs
// as the network-assisted alternative to SUSS's end-host approach.
type CoDel struct {
	// Target is the acceptable standing queue delay (default 5 ms).
	Target time.Duration
	// Interval is the sliding window for detecting a persistently
	// full queue (default 100 ms).
	Interval time.Duration

	limit int
	q     []*timedPacket
	bytes int

	firstAboveTime time.Duration
	dropNext       time.Duration
	count          int
	lastCount      int
	dropping       bool

	// Drops counts AQM (non-tail) drops.
	Drops int
}

// NewCoDel returns a CoDel discipline with RFC 8289 defaults, backed
// by a tail-drop byte limit for overload protection.
func NewCoDel(limitBytes int) Qdisc {
	return &CoDel{
		Target:   5 * time.Millisecond,
		Interval: 100 * time.Millisecond,
		limit:    limitBytes,
	}
}

// CoDelFactory adapts NewCoDel to QdiscFactory (for LinkConfig).
func CoDelFactory(limitBytes int) Qdisc { return NewCoDel(limitBytes) }

func (c *CoDel) Enqueue(now time.Duration, pkt *Packet) bool {
	if c.bytes+pkt.Size > c.limit {
		return false
	}
	c.q = append(c.q, &timedPacket{pkt: pkt, at: now})
	c.bytes += pkt.Size
	return true
}

func (c *CoDel) Bytes() int { return c.bytes }

// pop removes and returns the head (nil when empty).
func (c *CoDel) pop() *timedPacket {
	if len(c.q) == 0 {
		return nil
	}
	tp := c.q[0]
	c.q[0] = nil
	c.q = c.q[1:]
	c.bytes -= tp.pkt.Size
	return tp
}

// shouldDrop runs the RFC 8289 sojourn test for one packet.
func (c *CoDel) shouldDrop(tp *timedPacket, now time.Duration) bool {
	sojourn := now - tp.at
	if sojourn < c.Target || c.bytes <= 1500 {
		c.firstAboveTime = 0
		return false
	}
	if c.firstAboveTime == 0 {
		c.firstAboveTime = now + c.Interval
		return false
	}
	return now >= c.firstAboveTime
}

// controlLaw computes the next drop time.
func (c *CoDel) controlLaw(t time.Duration) time.Duration {
	return t + time.Duration(float64(c.Interval)/math.Sqrt(float64(c.count)))
}

func (c *CoDel) Dequeue(now time.Duration) (*Packet, []*Packet) {
	var dropped []*Packet
	tp := c.pop()
	if tp == nil {
		c.dropping = false
		return nil, nil
	}
	okToDrop := c.shouldDrop(tp, now)

	if c.dropping {
		if !okToDrop {
			c.dropping = false
		} else {
			for c.dropping && now >= c.dropNext {
				dropped = append(dropped, tp.pkt)
				c.Drops++
				c.count++
				tp = c.pop()
				if tp == nil {
					c.dropping = false
					return nil, dropped
				}
				if !c.shouldDrop(tp, now) {
					c.dropping = false
				} else {
					c.dropNext = c.controlLaw(c.dropNext)
				}
			}
		}
	} else if okToDrop {
		dropped = append(dropped, tp.pkt)
		c.Drops++
		c.dropping = true
		// RFC 8289 §5.4: resume close to the last drop rate if we were
		// dropping recently.
		if c.count > 2 && now-c.dropNext < 8*c.Interval {
			c.count = c.count - 2
		} else {
			c.count = 1
		}
		c.lastCount = c.count
		c.dropNext = c.controlLaw(now)
		tp = c.pop()
		if tp == nil {
			c.dropping = false
			return nil, dropped
		}
	}
	return tp.pkt, dropped
}
