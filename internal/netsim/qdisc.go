package netsim

import (
	"math"
	"time"
)

// Qdisc is a pluggable queue discipline for a Link. Enqueue may refuse
// a packet (tail drop); Dequeue may additionally drop packets it
// decides to sacrifice (AQM) before handing over the next one to
// serialize.
//
// Ownership: the discipline owns queued packets. A refused or dropped
// packet's ownership returns to the Link, which releases it to the
// pool after the drop callback. The dropped slice returned by Dequeue
// is scratch storage owned by the discipline, valid only until the
// next Dequeue call.
type Qdisc interface {
	// Enqueue offers a packet at virtual time now; false means the
	// packet was dropped on arrival.
	Enqueue(now time.Duration, pkt *Packet) bool
	// Dequeue returns the next packet to serialize (nil if empty) and
	// any packets the discipline dropped while deciding.
	Dequeue(now time.Duration) (next *Packet, dropped []*Packet)
	// Bytes returns the bytes currently queued.
	Bytes() int
}

// QdiscFactory builds a discipline for a link's byte limit.
type QdiscFactory func(limitBytes int) Qdisc

type timedPacket struct {
	pkt *Packet
	at  time.Duration // enqueue time (sojourn measurement)
}

// pktRing is a growable FIFO of timedPacket values backed by a
// power-of-two circular buffer: steady-state enqueue/dequeue never
// allocates (the old slice-of-pointers queue allocated a timedPacket
// per enqueue and leaked capacity on every q = q[1:]).
type pktRing struct {
	buf  []timedPacket
	head int
	n    int
}

func (r *pktRing) push(tp timedPacket) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = tp
	r.n++
}

func (r *pktRing) pop() (timedPacket, bool) {
	if r.n == 0 {
		return timedPacket{}, false
	}
	tp := r.buf[r.head]
	r.buf[r.head] = timedPacket{}
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return tp, true
}

func (r *pktRing) grow() {
	size := len(r.buf) * 2
	if size == 0 {
		size = 16
	}
	buf := make([]timedPacket, size)
	for i := 0; i < r.n; i++ {
		buf[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
	}
	r.buf, r.head = buf, 0
}

// dropTail is the default FIFO with a byte-capacity tail drop.
type dropTail struct {
	limit int
	q     pktRing
	bytes int
}

// NewDropTail returns the classic FIFO drop-tail discipline.
func NewDropTail(limitBytes int) Qdisc {
	return &dropTail{limit: limitBytes}
}

func (d *dropTail) Enqueue(now time.Duration, pkt *Packet) bool {
	if d.bytes+pkt.Size > d.limit {
		return false
	}
	d.q.push(timedPacket{pkt: pkt, at: now})
	d.bytes += pkt.Size
	return true
}

func (d *dropTail) Dequeue(now time.Duration) (*Packet, []*Packet) {
	tp, ok := d.q.pop()
	if !ok {
		return nil, nil
	}
	d.bytes -= tp.pkt.Size
	return tp.pkt, nil
}

func (d *dropTail) Bytes() int { return d.bytes }

// CoDel implements the Controlled Delay AQM (RFC 8289): when packets'
// sojourn times stay above Target for a full Interval, it enters a
// dropping state and sheds packets at a rate that increases with the
// square root of the drop count, steering the standing queue back to
// Target. The paper's related work (RFC 8290 FQ-CoDel) positions AQMs
// as the network-assisted alternative to SUSS's end-host approach.
type CoDel struct {
	// Target is the acceptable standing queue delay (default 5 ms).
	Target time.Duration
	// Interval is the sliding window for detecting a persistently
	// full queue (default 100 ms).
	Interval time.Duration

	limit int
	q     pktRing
	bytes int

	firstAboveTime time.Duration
	dropNext       time.Duration
	count          int
	lastCount      int
	dropping       bool

	// dropScratch backs the dropped slice Dequeue returns; reused
	// across calls so dropping does not allocate.
	dropScratch []*Packet

	// Drops counts AQM (non-tail) drops.
	Drops int
}

// NewCoDel returns a CoDel discipline with RFC 8289 defaults, backed
// by a tail-drop byte limit for overload protection.
func NewCoDel(limitBytes int) Qdisc {
	return &CoDel{
		Target:   5 * time.Millisecond,
		Interval: 100 * time.Millisecond,
		limit:    limitBytes,
	}
}

// CoDelFactory adapts NewCoDel to QdiscFactory (for LinkConfig).
func CoDelFactory(limitBytes int) Qdisc { return NewCoDel(limitBytes) }

func (c *CoDel) Enqueue(now time.Duration, pkt *Packet) bool {
	if c.bytes+pkt.Size > c.limit {
		return false
	}
	c.q.push(timedPacket{pkt: pkt, at: now})
	c.bytes += pkt.Size
	return true
}

func (c *CoDel) Bytes() int { return c.bytes }

// pop removes and returns the head (zero timedPacket when empty).
func (c *CoDel) pop() timedPacket {
	tp, ok := c.q.pop()
	if !ok {
		return timedPacket{}
	}
	c.bytes -= tp.pkt.Size
	return tp
}

// shouldDrop runs the RFC 8289 sojourn test for one packet.
func (c *CoDel) shouldDrop(tp timedPacket, now time.Duration) bool {
	sojourn := now - tp.at
	if sojourn < c.Target || c.bytes <= 1500 {
		c.firstAboveTime = 0
		return false
	}
	if c.firstAboveTime == 0 {
		c.firstAboveTime = now + c.Interval
		return false
	}
	return now >= c.firstAboveTime
}

// controlLaw computes the next drop time.
func (c *CoDel) controlLaw(t time.Duration) time.Duration {
	return t + time.Duration(float64(c.Interval)/math.Sqrt(float64(c.count)))
}

func (c *CoDel) Dequeue(now time.Duration) (*Packet, []*Packet) {
	dropped := c.dropScratch[:0]
	tp := c.pop()
	if tp.pkt == nil {
		c.dropping = false
		return nil, nil
	}
	okToDrop := c.shouldDrop(tp, now)

	if c.dropping {
		if !okToDrop {
			c.dropping = false
		} else {
			for c.dropping && now >= c.dropNext {
				dropped = append(dropped, tp.pkt)
				c.Drops++
				c.count++
				tp = c.pop()
				if tp.pkt == nil {
					c.dropping = false
					c.dropScratch = dropped
					return nil, dropped
				}
				if !c.shouldDrop(tp, now) {
					c.dropping = false
				} else {
					c.dropNext = c.controlLaw(c.dropNext)
				}
			}
		}
	} else if okToDrop {
		dropped = append(dropped, tp.pkt)
		c.Drops++
		c.dropping = true
		// RFC 8289 §5.4: resume close to the last drop rate if we were
		// dropping recently.
		if c.count > 2 && now-c.dropNext < 8*c.Interval {
			c.count = c.count - 2
		} else {
			c.count = 1
		}
		c.lastCount = c.count
		c.dropNext = c.controlLaw(now)
		tp = c.pop()
		if tp.pkt == nil {
			c.dropping = false
			c.dropScratch = dropped
			return nil, dropped
		}
	}
	c.dropScratch = dropped
	return tp.pkt, dropped
}
