//go:build sussdebug

package netsim

import (
	"testing"
	"time"
)

// These tests exercise the lifecycle detector that only exists under
// the sussdebug build tag: go test -tags sussdebug ./internal/netsim

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", what)
		}
	}()
	fn()
}

func TestDoubleReleasePanics(t *testing.T) {
	s := NewSimulator()
	p := s.Pool().Get()
	p.Release()
	mustPanic(t, "double release", func() { p.Release() })
}

func TestRetainAfterReleasePanics(t *testing.T) {
	s := NewSimulator()
	snk := &sink{id: 1, sim: s}
	l := NewLink(s, LinkConfig{Name: "l", Rate: 1e9, Delay: time.Millisecond}, snk)

	p := s.Pool().Get()
	p.Size = 1500
	p.Dst = 1
	p.Release()
	// A component touching a released packet must fail loudly.
	mustPanic(t, "enqueue after release", func() { l.Enqueue(p) })

	h := NewHost(2, "h")
	h.SetHandler(func(*Packet) {})
	mustPanic(t, "deliver after release", func() { h.Deliver(p) })
}

func TestSequesterNeverRecycles(t *testing.T) {
	s := NewSimulator()
	pool := s.Pool()
	a := pool.Get()
	a.Release()
	b := pool.Get()
	if a == b {
		t.Fatal("sussdebug pool recycled a released packet; stale pointers would be revalidated")
	}
	b.Release()
	if got := pool.Stats().Recycled; got != 0 {
		t.Fatalf("Recycled = %d, want 0 under sussdebug", got)
	}
	if got := pool.Stats().Outstanding(); got != 0 {
		t.Fatalf("Outstanding = %d, want 0", got)
	}
}
