// Package trace records per-flow time series — cwnd, smoothed RTT,
// delivered bytes — the way the paper's kernel-log instrumentation
// does, for the cwnd/RTT/delivery plots (Figs. 1, 9, 10, 16).
//
// Samplers copy, never retain: every observation is captured as plain
// scalars at callback time. Network packets are pool-owned and
// recycled the moment their consumer returns, so a trace (or any
// other observer) must never hold a *netsim.Packet past the callback.
package trace

import (
	"fmt"
	"io"
	"time"

	"suss/internal/tcp"
)

// Sample is one observation of a flow's transport state.
type Sample struct {
	T         time.Duration
	CwndBytes int64
	SRTT      time.Duration
	Delivered int64
}

// FlowTrace collects samples at a bounded rate.
type FlowTrace struct {
	Name    string
	Samples []Sample

	every time.Duration
	last  time.Duration
	seen  bool
}

// Attach hooks a trace onto a sender, recording at most one sample per
// `every` of virtual time (zero records every ACK). A previously
// installed OnAckTrace hook keeps firing: observers chain rather than
// silently replacing each other, in installation order.
func Attach(s *tcp.Sender, name string, every time.Duration) *FlowTrace {
	tr := &FlowTrace{Name: name, every: every}
	prev := s.OnAckTrace
	s.OnAckTrace = func(now time.Duration, cwnd int64, srtt time.Duration, delivered int64) {
		if prev != nil {
			prev(now, cwnd, srtt, delivered)
		}
		if tr.seen && every > 0 && now-tr.last < every {
			return
		}
		tr.seen = true
		tr.last = now
		tr.Samples = append(tr.Samples, Sample{T: now, CwndBytes: cwnd, SRTT: srtt, Delivered: delivered})
	}
	return tr
}

// At returns the last sample at or before t (zero Sample if none).
func (tr *FlowTrace) At(t time.Duration) Sample {
	var out Sample
	for _, s := range tr.Samples {
		if s.T > t {
			break
		}
		out = s
	}
	return out
}

// MaxCwnd returns the largest congestion window observed.
func (tr *FlowTrace) MaxCwnd() int64 {
	var m int64
	for _, s := range tr.Samples {
		if s.CwndBytes > m {
			m = s.CwndBytes
		}
	}
	return m
}

// MaxSRTT returns the largest smoothed RTT observed.
func (tr *FlowTrace) MaxSRTT() time.Duration {
	var m time.Duration
	for _, s := range tr.Samples {
		if s.SRTT > m {
			m = s.SRTT
		}
	}
	return m
}

// TimeToDeliver returns when the trace first shows at least n bytes
// delivered, and whether it ever did.
func (tr *FlowTrace) TimeToDeliver(n int64) (time.Duration, bool) {
	for _, s := range tr.Samples {
		if s.Delivered >= n {
			return s.T, true
		}
	}
	return 0, false
}

// TimeToCwnd returns when cwnd first reached w bytes.
func (tr *FlowTrace) TimeToCwnd(w int64) (time.Duration, bool) {
	for _, s := range tr.Samples {
		if s.CwndBytes >= w {
			return s.T, true
		}
	}
	return 0, false
}

// WriteCSV emits "t_ms,cwnd_bytes,srtt_ms,delivered_bytes" rows.
func (tr *FlowTrace) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "t_ms,cwnd_bytes,srtt_ms,delivered_bytes\n"); err != nil {
		return err
	}
	for _, s := range tr.Samples {
		if _, err := fmt.Fprintf(w, "%.3f,%d,%.3f,%d\n",
			float64(s.T)/1e6, s.CwndBytes, float64(s.SRTT)/1e6, s.Delivered); err != nil {
			return err
		}
	}
	return nil
}
