package trace

import (
	"strings"
	"testing"
	"time"

	"suss/internal/cubic"
	"suss/internal/netsim"
	"suss/internal/tcp"
)

func runTracedFlow(t *testing.T, every time.Duration) *FlowTrace {
	t.Helper()
	sim := netsim.NewSimulator()
	p := netsim.NewPath(sim, netsim.PathSpec{Forward: []netsim.LinkConfig{
		{Name: "core", Rate: 1e9, Delay: 10 * time.Millisecond, QueueBytes: 16 << 20},
		{Name: "bneck", Rate: 1e8, Delay: 10 * time.Millisecond, QueueBytes: 1 << 20},
	}})
	f := tcp.NewFlow(sim, tcp.DefaultConfig(), 1, p.Sender, tcp.NewDemux(p.Sender), p.Receiver, tcp.NewDemux(p.Receiver), 2<<20, nil)
	f.Sender.SetController(cubic.New(f.Sender, cubic.DefaultOptions()))
	tr := Attach(f.Sender, "test", every)
	f.StartAt(sim, 0)
	sim.Run(time.Minute)
	if !f.Done() {
		t.Fatal("flow did not complete")
	}
	return tr
}

func TestAttachRecordsSamples(t *testing.T) {
	tr := runTracedFlow(t, 0)
	if len(tr.Samples) == 0 {
		t.Fatal("no samples")
	}
	// Samples must be time-ordered with monotonic delivery.
	for i := 1; i < len(tr.Samples); i++ {
		if tr.Samples[i].T < tr.Samples[i-1].T {
			t.Fatal("samples out of order")
		}
		if tr.Samples[i].Delivered < tr.Samples[i-1].Delivered {
			t.Fatal("delivered went backwards")
		}
	}
	last := tr.Samples[len(tr.Samples)-1]
	if last.Delivered != 2<<20 {
		t.Errorf("final delivered = %d", last.Delivered)
	}
}

func TestSamplingRateBound(t *testing.T) {
	dense := runTracedFlow(t, 0)
	sparse := runTracedFlow(t, 50*time.Millisecond)
	if len(sparse.Samples) >= len(dense.Samples) {
		t.Errorf("rate limit did not reduce samples: %d vs %d", len(sparse.Samples), len(dense.Samples))
	}
	for i := 1; i < len(sparse.Samples); i++ {
		if gap := sparse.Samples[i].T - sparse.Samples[i-1].T; gap < 50*time.Millisecond {
			t.Fatalf("gap %v below sampling interval", gap)
		}
	}
}

func TestAtAndQueries(t *testing.T) {
	tr := runTracedFlow(t, 0)
	mid := tr.At(500 * time.Millisecond)
	if mid.T > 500*time.Millisecond {
		t.Errorf("At returned sample from the future: %v", mid.T)
	}
	if tr.MaxCwnd() <= 0 || tr.MaxSRTT() <= 0 {
		t.Error("max queries returned zero")
	}
	tt, ok := tr.TimeToDeliver(1 << 20)
	if !ok || tt <= 0 {
		t.Errorf("TimeToDeliver = %v/%v", tt, ok)
	}
	if _, ok := tr.TimeToDeliver(1 << 40); ok {
		t.Error("TimeToDeliver reported an impossible volume")
	}
	ct, ok := tr.TimeToCwnd(20 * 1448)
	if !ok || ct <= 0 {
		t.Errorf("TimeToCwnd = %v/%v", ct, ok)
	}
}

func TestWriteCSV(t *testing.T) {
	tr := runTracedFlow(t, 10*time.Millisecond)
	var b strings.Builder
	if err := tr.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "t_ms,cwnd_bytes,srtt_ms,delivered_bytes\n") {
		t.Error("missing CSV header")
	}
	if strings.Count(out, "\n") != len(tr.Samples)+1 {
		t.Errorf("row count mismatch: %d lines for %d samples", strings.Count(out, "\n"), len(tr.Samples))
	}
}
