package trace

import (
	"strings"
	"testing"
	"time"

	"suss/internal/cubic"
	"suss/internal/netsim"
	"suss/internal/tcp"
)

func runTracedFlow(t *testing.T, every time.Duration) *FlowTrace {
	t.Helper()
	sim := netsim.NewSimulator()
	p := netsim.NewPath(sim, netsim.PathSpec{Forward: []netsim.LinkConfig{
		{Name: "core", Rate: 1e9, Delay: 10 * time.Millisecond, QueueBytes: 16 << 20},
		{Name: "bneck", Rate: 1e8, Delay: 10 * time.Millisecond, QueueBytes: 1 << 20},
	}})
	f := tcp.NewFlow(sim, tcp.DefaultConfig(), 1, p.Sender, tcp.NewDemux(p.Sender), p.Receiver, tcp.NewDemux(p.Receiver), 2<<20, nil)
	f.Sender.SetController(cubic.New(f.Sender, cubic.DefaultOptions()))
	tr := Attach(f.Sender, "test", every)
	f.StartAt(sim, 0)
	sim.Run(time.Minute)
	if !f.Done() {
		t.Fatal("flow did not complete")
	}
	return tr
}

func TestAttachRecordsSamples(t *testing.T) {
	tr := runTracedFlow(t, 0)
	if len(tr.Samples) == 0 {
		t.Fatal("no samples")
	}
	// Samples must be time-ordered with monotonic delivery.
	for i := 1; i < len(tr.Samples); i++ {
		if tr.Samples[i].T < tr.Samples[i-1].T {
			t.Fatal("samples out of order")
		}
		if tr.Samples[i].Delivered < tr.Samples[i-1].Delivered {
			t.Fatal("delivered went backwards")
		}
	}
	last := tr.Samples[len(tr.Samples)-1]
	if last.Delivered != 2<<20 {
		t.Errorf("final delivered = %d", last.Delivered)
	}
}

func TestSamplingRateBound(t *testing.T) {
	dense := runTracedFlow(t, 0)
	sparse := runTracedFlow(t, 50*time.Millisecond)
	if len(sparse.Samples) >= len(dense.Samples) {
		t.Errorf("rate limit did not reduce samples: %d vs %d", len(sparse.Samples), len(dense.Samples))
	}
	for i := 1; i < len(sparse.Samples); i++ {
		if gap := sparse.Samples[i].T - sparse.Samples[i-1].T; gap < 50*time.Millisecond {
			t.Fatalf("gap %v below sampling interval", gap)
		}
	}
}

func TestAtAndQueries(t *testing.T) {
	tr := runTracedFlow(t, 0)
	mid := tr.At(500 * time.Millisecond)
	if mid.T > 500*time.Millisecond {
		t.Errorf("At returned sample from the future: %v", mid.T)
	}
	if tr.MaxCwnd() <= 0 || tr.MaxSRTT() <= 0 {
		t.Error("max queries returned zero")
	}
	tt, ok := tr.TimeToDeliver(1 << 20)
	if !ok || tt <= 0 {
		t.Errorf("TimeToDeliver = %v/%v", tt, ok)
	}
	if _, ok := tr.TimeToDeliver(1 << 40); ok {
		t.Error("TimeToDeliver reported an impossible volume")
	}
	ct, ok := tr.TimeToCwnd(20 * 1448)
	if !ok || ct <= 0 {
		t.Errorf("TimeToCwnd = %v/%v", ct, ok)
	}
}

// Regression: Attach used to overwrite any OnAckTrace hook already on
// the sender, so a second observer silently killed the first. Both must
// record.
func TestAttachChainsObservers(t *testing.T) {
	sim := netsim.NewSimulator()
	p := netsim.NewPath(sim, netsim.PathSpec{Forward: []netsim.LinkConfig{
		{Name: "core", Rate: 1e9, Delay: 10 * time.Millisecond, QueueBytes: 16 << 20},
		{Name: "bneck", Rate: 1e8, Delay: 10 * time.Millisecond, QueueBytes: 1 << 20},
	}})
	f := tcp.NewFlow(sim, tcp.DefaultConfig(), 1, p.Sender, tcp.NewDemux(p.Sender), p.Receiver, tcp.NewDemux(p.Receiver), 1<<20, nil)
	f.Sender.SetController(cubic.New(f.Sender, cubic.DefaultOptions()))
	dense := Attach(f.Sender, "dense", 0)
	sparse := Attach(f.Sender, "sparse", 50*time.Millisecond)
	f.StartAt(sim, 0)
	sim.Run(time.Minute)
	if !f.Done() {
		t.Fatal("flow did not complete")
	}
	if len(dense.Samples) == 0 {
		t.Fatal("first-attached observer recorded nothing — Attach clobbered its hook")
	}
	if len(sparse.Samples) == 0 {
		t.Fatal("second-attached observer recorded nothing")
	}
	// Each keeps its own sampling policy on the shared event stream.
	if len(sparse.Samples) >= len(dense.Samples) {
		t.Errorf("chained observers lost independent rate limits: dense=%d sparse=%d",
			len(dense.Samples), len(sparse.Samples))
	}
	if dense.Samples[len(dense.Samples)-1].Delivered != 1<<20 {
		t.Errorf("dense final delivered = %d", dense.Samples[len(dense.Samples)-1].Delivered)
	}
}

func TestQueriesOnEmptyTrace(t *testing.T) {
	tr := &FlowTrace{Name: "empty"}
	if s := tr.At(time.Second); s != (Sample{}) {
		t.Errorf("At on empty trace = %+v, want zero Sample", s)
	}
	if tr.MaxCwnd() != 0 || tr.MaxSRTT() != 0 {
		t.Error("max queries on empty trace should be 0")
	}
	if _, ok := tr.TimeToDeliver(1); ok {
		t.Error("TimeToDeliver on empty trace reported success")
	}
	if _, ok := tr.TimeToCwnd(1); ok {
		t.Error("TimeToCwnd on empty trace reported success")
	}
}

func TestAtExactBoundary(t *testing.T) {
	tr := &FlowTrace{Samples: []Sample{
		{T: 10 * time.Millisecond, CwndBytes: 100, Delivered: 1000},
		{T: 20 * time.Millisecond, CwndBytes: 200, Delivered: 2000},
		{T: 30 * time.Millisecond, CwndBytes: 300, Delivered: 3000},
	}}
	// t exactly on a sample returns that sample, not its predecessor.
	if s := tr.At(20 * time.Millisecond); s.CwndBytes != 200 {
		t.Errorf("At(boundary) = %+v, want the t=20ms sample", s)
	}
	// t before the first sample has nothing to report.
	if s := tr.At(5 * time.Millisecond); s != (Sample{}) {
		t.Errorf("At(before first) = %+v, want zero Sample", s)
	}
	// t after the last clamps to the last.
	if s := tr.At(time.Hour); s.CwndBytes != 300 {
		t.Errorf("At(after last) = %+v, want the final sample", s)
	}
	// Thresholds met exactly count as reached; unreachable ones do not.
	if tt, ok := tr.TimeToDeliver(2000); !ok || tt != 20*time.Millisecond {
		t.Errorf("TimeToDeliver(exact) = %v/%v", tt, ok)
	}
	if _, ok := tr.TimeToDeliver(3001); ok {
		t.Error("TimeToDeliver beyond final volume reported success")
	}
	if ct, ok := tr.TimeToCwnd(300); !ok || ct != 30*time.Millisecond {
		t.Errorf("TimeToCwnd(exact) = %v/%v", ct, ok)
	}
	if _, ok := tr.TimeToCwnd(301); ok {
		t.Error("TimeToCwnd beyond max cwnd reported success")
	}
}

func TestWriteCSV(t *testing.T) {
	tr := runTracedFlow(t, 10*time.Millisecond)
	var b strings.Builder
	if err := tr.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "t_ms,cwnd_bytes,srtt_ms,delivered_bytes\n") {
		t.Error("missing CSV header")
	}
	if strings.Count(out, "\n") != len(tr.Samples)+1 {
		t.Errorf("row count mismatch: %d lines for %d samples", strings.Count(out, "\n"), len(tr.Samples))
	}
}
