// Package scenarios encodes the paper's two testbeds:
//
//   - The internet-scale matrix of §6.1: seven servers (Google
//     US-East/Tokyo/Singapore, Oracle US-West/Sydney/London, and a NZ
//     campus machine) × four last-hop link types (5G and wired fiber
//     for the Sweden client, WiFi and 4G for the NZ client) — the 28
//     scenarios of Figs. 17–18.
//   - The local dumbbell testbed: five client-server pairs through two
//     routers with a netem-shaped bottleneck (Figs. 2, 15, 16,
//     Table 1).
//
// Propagation delays are calibrated to plausible geographic RTTs; the
// absolute values only need to cover the small-to-large BDP range the
// paper sweeps.
package scenarios

import (
	"fmt"
	"math/rand"
	"time"

	"suss/internal/netem"
	"suss/internal/netsim"
)

// Server identifies one of the paper's seven deployment locations.
type Server int

const (
	GoogleUSEast Server = iota
	GoogleTokyo
	GoogleSingapore
	OracleUSWest
	OracleSydney
	OracleLondon
	NZCampus
)

// Servers lists all seven in the paper's Fig. 18 row order.
var Servers = []Server{GoogleUSEast, GoogleTokyo, GoogleSingapore, OracleUSWest, OracleSydney, OracleLondon, NZCampus}

func (s Server) String() string {
	switch s {
	case GoogleUSEast:
		return "google-us-east"
	case GoogleTokyo:
		return "google-tokyo"
	case GoogleSingapore:
		return "google-singapore"
	case OracleUSWest:
		return "oracle-us-west"
	case OracleSydney:
		return "oracle-sydney"
	case OracleLondon:
		return "oracle-london"
	case NZCampus:
		return "nz-campus"
	default:
		return "unknown"
	}
}

// clientIsSweden reports which client end a link type implies (the
// paper's 5G/wired client is in Sweden, WiFi/4G in New Zealand).
func clientIsSweden(lt netem.LinkType) bool {
	return lt == netem.NR5G || lt == netem.Wired
}

// baseRTT returns the propagation RTT between a server and the client
// country implied by the link type.
func baseRTT(s Server, sweden bool) time.Duration {
	type pair struct{ se, nz time.Duration }
	ms := func(v int) time.Duration { return time.Duration(v) * time.Millisecond }
	m := map[Server]pair{
		GoogleUSEast:    {ms(110), ms(190)},
		GoogleTokyo:     {ms(250), ms(150)},
		GoogleSingapore: {ms(290), ms(145)},
		OracleUSWest:    {ms(170), ms(130)},
		OracleSydney:    {ms(320), ms(35)},
		OracleLondon:    {ms(35), ms(280)},
		NZCampus:        {ms(340), ms(8)},
	}
	p := m[s]
	if sweden {
		return p.se
	}
	return p.nz
}

// lastHopRate returns the mean downstream capacity of a link type,
// calibrated to the paper's observed operating points: Fig. 9's 4G
// client exits slow start at cwnd ≈ 1300 packets with RTT ≈ 190 ms,
// which implies an LTE-A link of roughly 150 Mbps (HyStart exits near
// BDP/2 ≈ BtlBw·RTT/2).
func lastHopRate(lt netem.LinkType) float64 {
	switch lt {
	case netem.Wired:
		return 3e8 // 300 Mbps fiber
	case netem.NR5G:
		return 2.5e8
	case netem.WiFi:
		return 1e8
	case netem.LTE4G:
		return 1.5e8
	default:
		panic("scenarios: unknown link type")
	}
}

// Scenario is one cell of the 7×4 internet matrix.
type Scenario struct {
	Server   Server
	Link     netem.LinkType
	RTT      time.Duration // propagation RTT
	LastHop  netem.Profile
	CoreRate float64
	Seed     int64
}

// Name returns e.g. "google-tokyo/4g".
func (sc Scenario) Name() string {
	return fmt.Sprintf("%s/%s", sc.Server, sc.Link)
}

// ID returns the Fig. 18 matrix cell label: rows a–g (servers), columns
// 1–4 (5G, wired, WiFi, 4G), e.g. "b4" for Tokyo over 4G.
func (sc Scenario) ID() string {
	row := rune('a' + int(sc.Server))
	col := map[netem.LinkType]int{netem.NR5G: 1, netem.Wired: 2, netem.WiFi: 3, netem.LTE4G: 4}[sc.Link]
	return fmt.Sprintf("%c%d", row, col)
}

// BtlBw returns the scenario's nominal bottleneck bandwidth.
func (sc Scenario) BtlBw() float64 {
	if sc.LastHop.MeanRate < sc.CoreRate {
		return sc.LastHop.MeanRate
	}
	return sc.CoreRate
}

// New builds the scenario for a server/link pair. Oracle servers get
// shallow buffers on the high-speed (wired/5G) paths: the paper
// observes noticeable slow-start loss only on "Oracle servers and
// high-speed links" (§6.3), which implies shallow egress/transit
// buffering relative to those paths' BDP.
func New(server Server, lt netem.LinkType, seed int64) Scenario {
	rate := lastHopRate(lt)
	prof := netem.DefaultProfile(lt, rate)
	oracle := server == OracleUSWest || server == OracleSydney || server == OracleLondon
	if oracle && (lt == netem.Wired || lt == netem.NR5G) {
		prof.BufferBDPs = 0.3
	}
	return Scenario{
		Server:   server,
		Link:     lt,
		RTT:      baseRTT(server, clientIsSweden(lt)),
		LastHop:  prof,
		CoreRate: 1e9,
		Seed:     seed,
	}
}

// All returns the full 28-scenario matrix in Fig. 18 order (rows a–g,
// columns 5G, wired, WiFi, 4G).
func All(seed int64) []Scenario {
	var out []Scenario
	for _, s := range Servers {
		for _, lt := range []netem.LinkType{netem.NR5G, netem.Wired, netem.WiFi, netem.LTE4G} {
			out = append(out, New(s, lt, seed+int64(len(out))))
		}
	}
	return out
}

// Build wires the scenario into a simulator: server → 1 Gbps core →
// last-hop link → client, with the netem profile's rate variation,
// jitter, loss and buffer depth on the last hop. The returned RNG is
// the one feeding the impairments (callers reuse it to perturb
// workloads).
func (sc Scenario) Build(sim *netsim.Simulator) (*netsim.Path, *rand.Rand) {
	spec, rng := sc.pathSpec()
	return netsim.NewPath(sim, spec), rng
}

// BuildOn wires the scenario across a cluster of event domains: the
// sender in domain 0, the core wire, last hop, and client in domain 1
// (netsim.NewPathOn's split). The cut sits on the clean core link —
// its fixed delay (≥ 1 ms) is the lookahead — while everything the
// netem profile impairs or randomizes stays inside the client domain,
// so profile RNG draws happen in the same local order as a monolithic
// run and results are bit-identical at any domain count.
func (sc Scenario) BuildOn(c *netsim.Cluster) (*netsim.Path, *rand.Rand) {
	spec, rng := sc.pathSpec()
	return netsim.NewPathOn(c, spec), rng
}

func (sc Scenario) pathSpec() (netsim.PathSpec, *rand.Rand) {
	rng := rand.New(rand.NewSource(sc.Seed))
	lastHopDelay := 5 * time.Millisecond
	coreDelay := sc.RTT/2 - lastHopDelay
	if coreDelay < time.Millisecond {
		coreDelay = time.Millisecond
	}
	last := sc.LastHop.Apply("lasthop", lastHopDelay, sc.RTT, rng)
	return netsim.PathSpec{Forward: []netsim.LinkConfig{
		{Name: "core", Rate: sc.CoreRate, Delay: coreDelay, QueueBytes: 64 << 20},
		last,
	}}, rng
}

// Testbed describes the paper's local dumbbell (§6.1): five pairs, a
// 50 Mbps bottleneck, and netem-controlled RTT and buffer depth.
type Testbed struct {
	Pairs      int
	BtlRate    float64
	RTT        time.Duration // base RTT for all pairs
	PerPairRTT []time.Duration
	BufferBDP  float64 // bottleneck buffer in BDP multiples of (BtlRate × RTT)
	AccessRate float64
}

// DefaultTestbed mirrors the Fig. 15 configuration.
func DefaultTestbed(rtt time.Duration, bufferBDP float64) Testbed {
	return Testbed{
		Pairs:      5,
		BtlRate:    5e7,
		RTT:        rtt,
		BufferBDP:  bufferBDP,
		AccessRate: 1e9,
	}
}

// Build wires the dumbbell. Per-pair RTTs (when set) are applied on
// the client access links, as the paper does with netem.
func (tb Testbed) Build(sim *netsim.Simulator) *netsim.Dumbbell {
	bdp := tb.BtlRate / 8 * tb.RTT.Seconds()
	queue := int(tb.BufferBDP * bdp)
	if queue < 16<<10 {
		queue = 16 << 10
	}
	// The bottleneck carries half the propagation budget; access links
	// carry the remainder so a pair's one-way delay sums to RTT/2.
	bneckDelay := tb.RTT / 4
	spec := netsim.DumbbellSpec{
		Pairs:      tb.Pairs,
		Access:     netsim.LinkConfig{Rate: tb.AccessRate, Delay: tb.RTT/2 - bneckDelay - tb.RTT/8, QueueBytes: 16 << 20},
		Bottleneck: netsim.LinkConfig{Rate: tb.BtlRate, Delay: bneckDelay, QueueBytes: queue},
	}
	if len(tb.PerPairRTT) > 0 {
		spec.PairDelay = func(i int) netsim.LinkConfig {
			rtt := tb.RTT
			if i < len(tb.PerPairRTT) {
				rtt = tb.PerPairRTT[i]
			}
			d := rtt/2 - bneckDelay
			if d < 0 {
				d = 0
			}
			// Split the access budget between the two access hops.
			return netsim.LinkConfig{Rate: tb.AccessRate, Delay: d / 2, QueueBytes: 16 << 20}
		}
	}
	return netsim.NewDumbbell(sim, spec)
}
