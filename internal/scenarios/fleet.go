package scenarios

import (
	"math/rand"
	"time"

	"suss/internal/netsim"
)

// Fleet describes one shard of the population-scale testbed: a shared
// bottleneck tree (server farm → core → aggregation → access leaves)
// that multiplexes a whole flow population over common queues at every
// level. Where the internet matrix gives one flow a private path, a
// fleet shard gives thousands of flows the contention the ROADMAP's
// north star asks about.
type Fleet struct {
	// Tree shape. Clients = Groups × HostsPerGroup.
	Groups        int
	HostsPerGroup int
	Servers       int

	// CoreRate is the shared core bottleneck; AggRate and AccessRate
	// shape the per-group and per-leaf levels. The usual regime is
	// CoreRate < Groups×AggRate (the core is the contended queue) with
	// AccessRate generous enough that leaves rarely bottleneck.
	CoreRate   float64
	AggRate    float64
	AccessRate float64

	// RTT is the base end-to-end propagation round trip (server to
	// leaf); the one-way budget is split core/agg/access as 2:1:1.
	RTT time.Duration
	// BufferBDP sizes every level's queue in multiples of that level's
	// rate × RTT product (floored at 16 KB), mirroring Testbed.
	BufferBDP float64

	// Seed roots the shard's RNG (impairments, workload jitter).
	Seed int64

	// ServerAccessDelay adds propagation to the server⇄trunk edges
	// (default 0: the farm sits next to the trunk). A positive value
	// changes the simulated RTT, so it is a topology choice, not a
	// tuning knob — its purpose is to let the cluster partitioner
	// split the server hosts (where send-side TCP work concentrates)
	// into their own event domains, which needs a positive delay on
	// the crossed edge.
	ServerAccessDelay time.Duration
}

// DefaultFleet is the reference shard: 100 clients in four groups
// behind a 200 Mbps core, 40 ms RTT, one-BDP buffers — enough
// multiplexing that slow-start overshoot from one elephant is visible
// in its neighbors' FCTs.
func DefaultFleet(seed int64) Fleet {
	return Fleet{
		Groups:        4,
		HostsPerGroup: 25,
		Servers:       4,
		CoreRate:      2e8,
		AggRate:       1e8,
		AccessRate:    5e7,
		RTT:           40 * time.Millisecond,
		BufferBDP:     1.0,
		Seed:          seed,
	}
}

// queueFor sizes a queue at BufferBDP × rate·RTT, floored like the
// dumbbell testbed.
func (fl Fleet) queueFor(rate float64) int {
	q := int(fl.BufferBDP * rate / 8 * fl.RTT.Seconds())
	if q < 16<<10 {
		q = 16 << 10
	}
	return q
}

// Build wires the shard's tree into sim. The returned RNG is the
// shard's private stream for impairments and workload perturbation,
// seeded from Fleet.Seed alone.
func (fl Fleet) Build(sim *netsim.Simulator) (*netsim.Tree, *rand.Rand) {
	return netsim.NewTree(sim, fl.treeSpec()), rand.New(rand.NewSource(fl.Seed))
}

// BuildOn wires the identical shard tree across a cluster's event
// domains (netsim.NewTreeOn's automatic partitioner: one domain per
// aggregation subtree, then the root, then server blocks — the last
// only when ServerAccessDelay is positive). Same topology, same
// results, any domain count.
func (fl Fleet) BuildOn(c *netsim.Cluster) (*netsim.Tree, *rand.Rand) {
	return netsim.NewTreeOn(c, fl.treeSpec()), rand.New(rand.NewSource(fl.Seed))
}

func (fl Fleet) treeSpec() netsim.TreeSpec {
	// One-way propagation budget RTT/2, split 2:1:1 over the levels.
	coreDelay := fl.RTT / 4
	aggDelay := fl.RTT / 8
	accessDelay := fl.RTT/2 - coreDelay - aggDelay
	spec := netsim.TreeSpec{
		Groups:        fl.Groups,
		HostsPerGroup: fl.HostsPerGroup,
		Servers:       fl.Servers,
		Core: netsim.LinkConfig{
			Rate: fl.CoreRate, Delay: coreDelay, QueueBytes: fl.queueFor(fl.CoreRate),
		},
		Agg: netsim.LinkConfig{
			Rate: fl.AggRate, Delay: aggDelay, QueueBytes: fl.queueFor(fl.AggRate),
		},
		Access: netsim.LinkConfig{
			Rate: fl.AccessRate, Delay: accessDelay, QueueBytes: fl.queueFor(fl.AccessRate),
		},
	}
	if fl.ServerAccessDelay > 0 {
		spec.ServerAccess = netsim.LinkConfig{Delay: fl.ServerAccessDelay}
	}
	return spec
}
