package scenarios

import (
	"testing"
	"time"

	"suss/internal/netem"
	"suss/internal/netsim"
)

func TestAllMatrixShape(t *testing.T) {
	all := All(1)
	if len(all) != 28 {
		t.Fatalf("got %d scenarios, want 28", len(all))
	}
	seen := map[string]bool{}
	for _, sc := range all {
		if seen[sc.Name()] {
			t.Errorf("duplicate scenario %s", sc.Name())
		}
		seen[sc.Name()] = true
		if sc.RTT <= 0 {
			t.Errorf("%s: non-positive RTT", sc.Name())
		}
		if sc.BtlBw() <= 0 {
			t.Errorf("%s: non-positive BtlBw", sc.Name())
		}
	}
}

func TestScenarioIDs(t *testing.T) {
	sc := New(GoogleTokyo, netem.LTE4G, 1)
	if sc.ID() != "b4" {
		t.Errorf("Tokyo/4G ID = %s, want b4", sc.ID())
	}
	sc = New(GoogleUSEast, netem.NR5G, 1)
	if sc.ID() != "a1" {
		t.Errorf("US-East/5G ID = %s, want a1", sc.ID())
	}
	sc = New(NZCampus, netem.LTE4G, 1)
	if sc.ID() != "g4" {
		t.Errorf("NZ/4G ID = %s, want g4", sc.ID())
	}
}

func TestClientSideRTTs(t *testing.T) {
	// The 5G/wired client is in Sweden, WiFi/4G in NZ: Sydney must be
	// far from Sweden and close to NZ.
	syd5g := New(OracleSydney, netem.NR5G, 1)
	syd4g := New(OracleSydney, netem.LTE4G, 1)
	if syd5g.RTT <= syd4g.RTT {
		t.Errorf("Sydney: Sweden RTT %v should exceed NZ RTT %v", syd5g.RTT, syd4g.RTT)
	}
	lon5g := New(OracleLondon, netem.NR5G, 1)
	lon4g := New(OracleLondon, netem.LTE4G, 1)
	if lon5g.RTT >= lon4g.RTT {
		t.Errorf("London: Sweden RTT %v should be below NZ RTT %v", lon5g.RTT, lon4g.RTT)
	}
}

func TestScenarioBuildRoundTrip(t *testing.T) {
	sim := netsim.NewSimulator()
	sc := New(GoogleTokyo, netem.Wired, 42)
	p, rng := sc.Build(sim)
	if rng == nil {
		t.Fatal("nil rng")
	}
	var rtt time.Duration
	p.Receiver.SetHandler(func(pkt *netsim.Packet) {
		p.Receiver.Send(&netsim.Packet{Kind: netsim.Ack, Size: 60, Dst: p.Sender.ID()})
	})
	p.Sender.SetHandler(func(*netsim.Packet) { rtt = sim.Now() })
	sim.Schedule(0, func() {
		p.Sender.Send(&netsim.Packet{Kind: netsim.Data, Size: 1500, Dst: p.Receiver.ID()})
	})
	sim.RunAll()
	if rtt < sc.RTT || rtt > sc.RTT+20*time.Millisecond {
		t.Errorf("measured RTT %v, want ≈%v", rtt, sc.RTT)
	}
}

func TestScenarioWirelessHasImpairments(t *testing.T) {
	sim := netsim.NewSimulator()
	sc := New(GoogleUSEast, netem.LTE4G, 7)
	p, _ := sc.Build(sim)
	last := p.Fwd[len(p.Fwd)-1]
	r0 := last.RateAt(0)
	varies := false
	for at := time.Duration(0); at < 10*time.Second; at += 100 * time.Millisecond {
		if last.RateAt(at) != r0 {
			varies = true
			break
		}
	}
	if !varies {
		t.Error("4G last hop rate never varies")
	}
}

func TestTestbedBuild(t *testing.T) {
	sim := netsim.NewSimulator()
	tb := DefaultTestbed(100*time.Millisecond, 1)
	d := tb.Build(sim)
	if len(d.Servers) != 5 {
		t.Fatalf("pairs = %d", len(d.Servers))
	}
	// Buffer = 1 BDP of 50 Mbps × 100 ms = 625 KB.
	want := int(5e7 / 8 * 0.1)
	if d.Bottleneck.QueueLimit() != want {
		t.Errorf("buffer = %d, want %d", d.Bottleneck.QueueLimit(), want)
	}
	// Round-trip via pair 0 ≈ RTT.
	var rtt time.Duration
	d.Clients[0].SetHandler(func(pkt *netsim.Packet) {
		d.Clients[0].Send(&netsim.Packet{Kind: netsim.Ack, Size: 60, Dst: d.Servers[0].ID()})
	})
	d.Servers[0].SetHandler(func(*netsim.Packet) { rtt = sim.Now() })
	sim.Schedule(0, func() {
		d.Servers[0].Send(&netsim.Packet{Kind: netsim.Data, Size: 1500, Dst: d.Clients[0].ID()})
	})
	sim.RunAll()
	if rtt < 95*time.Millisecond || rtt > 110*time.Millisecond {
		t.Errorf("testbed RTT = %v, want ≈100ms", rtt)
	}
}

func TestTestbedPerPairRTT(t *testing.T) {
	sim := netsim.NewSimulator()
	tb := DefaultTestbed(100*time.Millisecond, 1)
	tb.PerPairRTT = []time.Duration{100 * time.Millisecond, 200 * time.Millisecond}
	d := tb.Build(sim)
	measure := func(i int) time.Duration {
		var rtt time.Duration
		d.Clients[i].SetHandler(func(pkt *netsim.Packet) {
			d.Clients[i].Send(&netsim.Packet{Kind: netsim.Ack, Size: 60, Dst: d.Servers[i].ID()})
		})
		d.Servers[i].SetHandler(func(*netsim.Packet) { rtt = sim.Now() - 0 })
		start := sim.Now()
		d.Servers[i].Send(&netsim.Packet{Kind: netsim.Data, Size: 1500, Dst: d.Clients[i].ID()})
		sim.RunAll()
		return rtt - start
	}
	r0 := measure(0)
	r1 := measure(1)
	if r1-r0 < 80*time.Millisecond {
		t.Errorf("per-pair RTTs not applied: %v vs %v", r0, r1)
	}
}
