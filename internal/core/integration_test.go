package core_test

import (
	"testing"
	"time"

	"suss/internal/core"
	"suss/internal/cubic"
	"suss/internal/netsim"
	"suss/internal/tcp"
)

// buildPath wires the standard large-BDP test path: 1 Gbps core,
// bottleneck last link, symmetric one-way delay owd.
func buildPath(sim *netsim.Simulator, rate float64, owd time.Duration, bufBDP float64) *netsim.Path {
	rtt := 2 * owd
	bdp := rate / 8 * rtt.Seconds()
	return netsim.NewPath(sim, netsim.PathSpec{Forward: []netsim.LinkConfig{
		{Name: "core", Rate: 1e9, Delay: owd / 2, QueueBytes: 64 << 20},
		{Name: "bneck", Rate: rate, Delay: owd - owd/2, QueueBytes: int(bufBDP * bdp)},
	}})
}

// runOnce transfers size bytes with the given controller flavor and
// returns the flow and the path.
func runOnce(size int64, rate float64, owd time.Duration, bufBDP float64, withSUSS bool) (*tcp.Flow, *netsim.Path) {
	sim := netsim.NewSimulator()
	p := buildPath(sim, rate, owd, bufBDP)
	cfg := tcp.DefaultConfig()
	f := tcp.NewFlow(sim, cfg, 1, p.Sender, tcp.NewDemux(p.Sender), p.Receiver, tcp.NewDemux(p.Receiver), size, nil)
	if withSUSS {
		f.Sender.SetController(core.New(f.Sender, core.DefaultOptions()))
	} else {
		f.Sender.SetController(cubic.New(f.Sender, cubic.DefaultOptions()))
	}
	f.StartAt(sim, 0)
	sim.Run(10 * time.Minute)
	return f, p
}

func TestSussAcceleratesSlowStart(t *testing.T) {
	// 100 Mbps, 100 ms RTT, 1 BDP buffer, 2 MB flow: the paper's
	// headline small-flow regime (>20% FCT improvement).
	size := int64(2 << 20)
	fSuss, _ := runOnce(size, 1e8, 50*time.Millisecond, 1, true)
	fCubic, _ := runOnce(size, 1e8, 50*time.Millisecond, 1, false)
	if !fSuss.Done() || !fCubic.Done() {
		t.Fatal("flows did not complete")
	}
	s := fSuss.Sender.Controller().(*core.Suss)
	if s.Stats().AcceleratedRounds == 0 {
		t.Fatalf("SUSS never accelerated: stats=%+v", s.Stats())
	}
	if s.Stats().MaxG < 4 {
		t.Errorf("max G = %d, want ≥4", s.Stats().MaxG)
	}
	imp := 1 - fSuss.FCT().Seconds()/fCubic.FCT().Seconds()
	t.Logf("FCT cubic=%v suss=%v improvement=%.1f%% G history=%v",
		fCubic.FCT(), fSuss.FCT(), imp*100, s.Stats().GHistory)
	if imp < 0.15 {
		t.Errorf("FCT improvement = %.1f%%, want ≥15%% (paper: >20%%)", imp*100)
	}
}

func TestSussNoLossOnCleanPath(t *testing.T) {
	// Acceleration must not by itself cause drops when the buffer is
	// 1 BDP: pacing spreads the red packets.
	f, p := runOnce(4<<20, 1e8, 50*time.Millisecond, 1, true)
	if !f.Done() {
		t.Fatal("flow did not complete")
	}
	if rt := f.Sender.Stats().Retransmissions; rt != 0 {
		t.Errorf("retransmissions = %d on a 1-BDP clean path", rt)
	}
	if drops := p.Fwd[1].Stats().DroppedPackets; drops != 0 {
		t.Errorf("bottleneck drops = %d", drops)
	}
}

func TestSussMatchesCubicOnLargeFlow(t *testing.T) {
	// Fig. 13: SUSS must not change large-flow FCT measurably.
	size := int64(40 << 20)
	fSuss, _ := runOnce(size, 1e8, 50*time.Millisecond, 1, true)
	fCubic, _ := runOnce(size, 1e8, 50*time.Millisecond, 1, false)
	if !fSuss.Done() || !fCubic.Done() {
		t.Fatal("flows did not complete")
	}
	rel := fSuss.FCT().Seconds() / fCubic.FCT().Seconds()
	t.Logf("large flow: cubic=%v suss=%v", fCubic.FCT(), fSuss.FCT())
	if rel > 1.02 {
		t.Errorf("SUSS made a large flow slower: ratio %.3f", rel)
	}
	if rel < 0.80 {
		t.Errorf("suspiciously large gain on a large flow: ratio %.3f", rel)
	}
}

func TestSussSmallRTTNoHarm(t *testing.T) {
	// On a small-BDP path slow start finishes in a few rounds; SUSS
	// must do no harm.
	size := int64(1 << 20)
	fSuss, _ := runOnce(size, 5e7, 5*time.Millisecond, 1, true)
	fCubic, _ := runOnce(size, 5e7, 5*time.Millisecond, 1, false)
	if !fSuss.Done() || !fCubic.Done() {
		t.Fatal("flows did not complete")
	}
	if fSuss.FCT() > fCubic.FCT()*11/10 {
		t.Errorf("SUSS hurt a short-RTT flow: %v vs %v", fSuss.FCT(), fCubic.FCT())
	}
}

func TestSussExitsSlowStartNearCubicExit(t *testing.T) {
	// Fig. 9: exponential growth must end at roughly the same cwnd
	// with SUSS on and off (fairness argument §6.4).
	size := int64(30 << 20)
	fSuss, _ := runOnce(size, 1e8, 50*time.Millisecond, 1.5, true)
	fCubic, _ := runOnce(size, 1e8, 50*time.Millisecond, 1.5, false)
	s := fSuss.Sender.Controller().(*core.Suss)
	c := fCubic.Sender.Controller().(*cubic.Cubic)
	sExit := s.Cubic().SsthreshSegments()
	cExit := c.SsthreshSegments()
	t.Logf("ssthresh: suss=%v cubic=%v", sExit, cExit)
	ratio := sExit / cExit
	if ratio < 0.4 || ratio > 2.5 {
		t.Errorf("slow-start exit windows differ wildly: suss=%.0f cubic=%.0f", sExit, cExit)
	}
}

func TestSussPacingReducesBurstQueue(t *testing.T) {
	// The pacing period should keep the bottleneck queue lower than
	// the clocking-only ablation during slow start.
	run := func(noPacing bool) int {
		sim := netsim.NewSimulator()
		p := buildPath(sim, 1e8, 50*time.Millisecond, 2)
		cfg := tcp.DefaultConfig()
		opt := core.DefaultOptions()
		opt.NoPacing = noPacing
		f := tcp.NewFlow(sim, cfg, 1, p.Sender, tcp.NewDemux(p.Sender), p.Receiver, tcp.NewDemux(p.Receiver), 4<<20, nil)
		f.Sender.SetController(core.New(f.Sender, opt))
		f.StartAt(sim, 0)
		sim.Run(10 * time.Minute)
		if !f.Done() {
			t.Fatal("flow did not complete")
		}
		return p.Fwd[1].Stats().MaxQueueBytes
	}
	paced := run(false)
	burst := run(true)
	t.Logf("max queue: paced=%d burst=%d", paced, burst)
	if paced > burst {
		t.Errorf("pacing increased peak queue: %d > %d", paced, burst)
	}
}

func TestSussLossDisablesAcceleration(t *testing.T) {
	// A shallow buffer forces loss during slow start; SUSS must abort
	// pacing, fall back to CUBIC, and still complete.
	f, p := runOnce(8<<20, 5e7, 50*time.Millisecond, 0.2, true)
	if !f.Done() {
		t.Fatal("flow did not complete after slow-start loss")
	}
	if p.Fwd[1].Stats().DroppedPackets == 0 {
		t.Skip("expected drops with a 0.2 BDP buffer; topology too forgiving")
	}
	s := f.Sender.Controller().(*core.Suss)
	if s.PacingActive() {
		t.Error("pacing still active after loss")
	}
	if s.InSlowStart() {
		t.Error("still in slow start after loss")
	}
}

func TestSussKmax2AcceleratesHarder(t *testing.T) {
	// Appendix A: with kmax=2 and a very fat path, G=8 rounds appear.
	sim := netsim.NewSimulator()
	p := buildPath(sim, 5e8, 100*time.Millisecond, 1)
	cfg := tcp.DefaultConfig()
	opt := core.DefaultOptions()
	opt.Kmax = 2
	f := tcp.NewFlow(sim, cfg, 1, p.Sender, tcp.NewDemux(p.Sender), p.Receiver, tcp.NewDemux(p.Receiver), 16<<20, nil)
	f.Sender.SetController(core.New(f.Sender, opt))
	f.StartAt(sim, 0)
	sim.Run(10 * time.Minute)
	if !f.Done() {
		t.Fatal("flow did not complete")
	}
	s := f.Sender.Controller().(*core.Suss)
	if s.Stats().MaxG < 8 {
		t.Errorf("kmax=2 on a 500 Mbps × 200 ms path: max G = %d, want 8; history %v",
			s.Stats().MaxG, s.Stats().GHistory)
	}
}

func TestSussWorksWithDelayedAcks(t *testing.T) {
	// SUSS is sender-side only (§6.1: "no changes need to be applied at
	// the client side"): it must still accelerate when the receiver
	// coalesces ACKs (classic delayed ACK, every 2nd packet).
	run := func(withSuss bool) (*tcp.Flow, *core.Suss) {
		sim := netsim.NewSimulator()
		p := buildPath(sim, 1e8, 50*time.Millisecond, 1)
		cfg := tcp.DefaultConfig()
		cfg.AckEvery = 2
		f := tcp.NewFlow(sim, cfg, 1, p.Sender, tcp.NewDemux(p.Sender), p.Receiver, tcp.NewDemux(p.Receiver), 2<<20, nil)
		var s *core.Suss
		if withSuss {
			s = core.New(f.Sender, core.DefaultOptions())
			f.Sender.SetController(s)
		} else {
			f.Sender.SetController(cubic.New(f.Sender, cubic.DefaultOptions()))
		}
		f.StartAt(sim, 0)
		sim.Run(10 * time.Minute)
		if !f.Done() {
			t.Fatal("flow did not complete under delayed ACKs")
		}
		return f, s
	}
	fSuss, s := run(true)
	fCubic, _ := run(false)
	if s.Stats().AcceleratedRounds == 0 {
		t.Fatalf("SUSS never accelerated under delayed ACKs: %+v", s.Stats())
	}
	imp := 1 - fSuss.FCT().Seconds()/fCubic.FCT().Seconds()
	t.Logf("delayed ACKs: cubic=%v suss=%v improvement=%.1f%%", fCubic.FCT(), fSuss.FCT(), 100*imp)
	if imp < 0.10 {
		t.Errorf("improvement %.1f%% under delayed ACKs, want ≥10%%", 100*imp)
	}
}
