// Package core implements SUSS (Speeding Up Slow Start), the paper's
// primary contribution: a sender-side add-on to CUBIC's slow start
// that predicts — from the current round's ACK train and RTT
// measurements — whether exponential cwnd growth will continue next
// round, and if so accelerates the current round's growth factor from
// 2 to up to 2^(kmax+1), releasing the additional ("red") packets with
// a novel combination of ACK clocking and packet pacing:
//
//   - Clocking period: standard slow start — each blue ACK clocks out
//     twice the acknowledged data, preserving the ΔtBat measurement
//     that HyStart and the growth-factor estimator depend on.
//   - Guard interval: a computed silence (Eq. 12) separating clocked
//     from paced transmissions in both this and the next round.
//   - Pacing period: the remaining S_Rdt bytes of the enlarged window
//     are released at cwnd_i/minRTT (Eq. 11), with cwnd raised
//     gradually so an aborted pacing period leaves no window overhang.
//
// The modified HyStart of the paper's Fig. 8 runs on blue ACKs only,
// scales elapsed time by the data-train/blue-train ratio (Eq. 9), and
// converts a mid-round stop signal into a growth cap rather than an
// immediate exit.
package core

import (
	"fmt"
	"time"

	"suss/internal/cc"
	"suss/internal/cubic"
	"suss/internal/obs"
)

// Options configures SUSS.
type Options struct {
	// Kmax bounds the growth-factor exponent per Algorithm 1:
	// G ≤ 2^(Kmax+1). The paper's deployed configuration is Kmax = 1
	// (quadrupling); Appendix A generalizes it.
	Kmax int
	// AckTrainFrac is HyStart Condition 1's threshold as a fraction of
	// minRTT (default 0.5).
	AckTrainFrac float64
	// DelayFactor is HyStart Condition 2's threshold multiplier on
	// minRTT (default 1.125).
	DelayFactor float64
	// Cubic configures the host algorithm. Its built-in HyStart is
	// forcibly disabled; SUSS runs the modified variant.
	Cubic cubic.Options

	// NoPacing disables the pacing period: the red window is granted
	// as one immediate burst ("clocking only" ablation, §4).
	NoPacing bool
	// PaceEverything paces all slow-start transmissions at
	// cwnd/minRTT, destroying the ΔtBat measurement ("pacing only"
	// ablation, §4).
	PaceEverything bool
	// NoGuard starts the pacing period immediately after the clocking
	// period (guard-interval ablation).
	NoGuard bool
}

// DefaultOptions returns the paper's deployed configuration.
func DefaultOptions() Options {
	return Options{
		Kmax:         1,
		AckTrainFrac: 0.5,
		DelayFactor:  1.125,
		Cubic:        cubic.DefaultOptions(),
	}
}

// Stats exposes SUSS-internal measurements for experiments and tests.
type Stats struct {
	Rounds            int
	AcceleratedRounds int // rounds that ran a pacing period (G > 2)
	MaxG              int
	GHistory          []int // growth factor measured per round (from round 2)
	RedBytesPaced     int64
	CapExits          int // slow-start exits via the growth cap
	TrainExits        int // immediate ACK-train exits
	DelayExits        int // delay-condition exits
}

// Suss is a cc.Controller implementing CUBIC+SUSS.
type Suss struct {
	env   cc.Env
	opt   Options
	cubic *cubic.Cubic

	minRTT      time.Duration
	minRTTRound int

	// Round bookkeeping (round numbering follows the paper: round 1 is
	// the initial-window round).
	round            int
	roundStartT      time.Duration
	roundStartSndNxt int64
	roundStartCum    int64
	roundEndSeq      int64

	// Blue-train bookkeeping. blueBudget is S_Bdt for the current
	// round; prev* capture the previous round at the transition.
	blueBudget     int64
	prevBlueBudget int64
	prevBlueEnd    int64
	prevCwnd       int64 // cwnd_{i-1} in bytes

	// Per-round measurement state.
	moRTT      time.Duration
	rttSamples int
	dtBat      time.Duration
	gDecided   bool
	lastG      int

	// Modified-HyStart state.
	hyLastAck time.Duration
	capSet    bool
	capBytes  int64

	// Pacing-period state.
	pacingActive bool
	frozenRound  bool // suppress ACK-driven growth until next round
	pacingRate   float64
	gate         time.Duration // earliest-send gate (guard interval)
	redRemaining int64         // cwnd bytes still to add via ticks
	tickInterval time.Duration
	tickTimer    cc.Timer
	endTimer     cc.Timer

	enabled bool
	stats   Stats

	// rec, when non-nil, receives SUSS round/boost/exit events.
	rec *obs.FlowRecorder
}

// AttachRecorder installs a flight recorder on this controller (and
// on the wrapped CUBIC, so its HyStart exits are attributed too).
// Pass nil to detach.
func (s *Suss) AttachRecorder(r *obs.FlowRecorder) {
	s.rec = r
	s.cubic.AttachRecorder(r)
}

// New creates a CUBIC+SUSS controller bound to the transport env.
func New(env cc.Env, opt Options) *Suss {
	if opt.Kmax <= 0 {
		opt.Kmax = 1
	}
	if opt.AckTrainFrac == 0 {
		opt.AckTrainFrac = 0.5
	}
	if opt.DelayFactor == 0 {
		opt.DelayFactor = 1.125
	}
	copt := opt.Cubic
	if copt.IW == 0 {
		copt = cubic.DefaultOptions()
	}
	copt.HyStart = false // SUSS runs the modified HyStart itself
	s := &Suss{
		env:     env,
		opt:     opt,
		cubic:   cubic.New(env, copt),
		enabled: true,
		round:   1, // the paper's round 1 is the initial-window burst
	}
	s.blueBudget = int64(copt.IW) * int64(env.MSS()) // S_Bdt_1 = iw
	return s
}

// Name implements cc.Controller.
func (s *Suss) Name() string { return "cubic+suss" }

// CwndBytes implements cc.Controller.
func (s *Suss) CwndBytes() int64 { return s.cubic.CwndBytes() }

// InSlowStart implements cc.Controller.
func (s *Suss) InSlowStart() bool { return s.cubic.InSlowStart() }

// Cubic returns the wrapped host algorithm.
func (s *Suss) Cubic() *cubic.Cubic { return s.cubic }

// Stats returns a copy of the SUSS counters.
func (s *Suss) Stats() Stats { return s.stats }

// LastG returns the growth factor measured for the most recent
// completed decision (2 when SUSS declined to accelerate).
func (s *Suss) LastG() int { return s.lastG }

// MinRTT returns the connection minimum RTT SUSS has observed.
func (s *Suss) MinRTT() time.Duration { return s.minRTT }

// PacingActive reports whether a pacing period is in progress.
func (s *Suss) PacingActive() bool { return s.pacingActive }

// PacingRate implements cc.Controller.
func (s *Suss) PacingRate() float64 {
	if s.pacingActive {
		return s.pacingRate
	}
	if s.opt.PaceEverything && s.cubic.InSlowStart() && s.minRTT > 0 {
		return float64(s.cubic.CwndBytes()*8) / s.minRTT.Seconds()
	}
	return s.cubic.PacingRate()
}

// EarliestSend implements tcp.EarliestSender: during the guard
// interval no packet may leave.
func (s *Suss) EarliestSend(now time.Duration) time.Duration {
	if s.pacingActive && now < s.gate {
		return s.gate
	}
	return 0
}

// OnPacketSent implements cc.Controller.
func (s *Suss) OnPacketSent(now time.Duration, size int, seq int64, retrans bool) {
	s.cubic.OnPacketSent(now, size, seq, retrans)
}

// OnAck implements cc.Controller.
func (s *Suss) OnAck(ev cc.AckEvent) {
	if ev.RTT > 0 {
		if s.minRTT == 0 || ev.RTT < s.minRTT {
			s.minRTT = ev.RTT
			s.minRTTRound = s.round
		}
		if s.moRTT == 0 || ev.RTT < s.moRTT {
			s.moRTT = ev.RTT
		}
		s.rttSamples++
	}

	// Round boundary: strictly after the round-end sequence (Linux
	// after() semantics). The ACK carrying exactly roundEndSeq is the
	// round's last blue ACK — it must run the G decision below, not
	// roll the round.
	if ev.CumAck > s.roundEndSeq {
		s.startRound(ev)
	}

	// Window accounting. ACK-driven growth is frozen for the remainder
	// of a round once the pacing period has been scheduled: the red
	// window arrives via pacing ticks instead (Fig. 6 semantics).
	if s.frozenRound && s.cubic.InSlowStart() && !ev.InRecovery {
		s.cubic.TrackRoundOnly(ev)
	} else {
		s.cubic.OnAck(ev)
	}

	if s.enabled && s.cubic.InSlowStart() {
		s.modifiedHyStart(ev)
		s.maybeDecideG(ev)
		s.checkCap()
	}
	if !s.cubic.InSlowStart() && s.enabled {
		s.disable(false)
	}
}

// startRound rolls the per-round bookkeeping at the first ACK of a new
// round (the ACK of the first packet sent in the previous round).
func (s *Suss) startRound(ev cc.AckEvent) {
	// Capture the ending round's state before overwriting.
	s.prevBlueBudget = s.blueBudget
	s.prevBlueEnd = s.roundStartSndNxt + s.blueBudget
	s.prevCwnd = s.cubic.CwndBytes() // cwnd_{i-1}: before this ACK's growth

	s.round++
	s.stats.Rounds = s.round
	if r := s.rec; r != nil {
		r.C.SussRounds++
		r.Record(ev.Now, obs.EvSussRoundStart, ev.CumAck, 0, int64(s.round), s.cubic.CwndBytes())
	}
	s.roundStartT = ev.Now
	s.roundStartSndNxt = ev.SndNxt
	s.roundStartCum = ev.CumAck
	s.roundEndSeq = ev.SndNxt
	s.blueBudget = 2 * s.prevBlueBudget

	s.moRTT = ev.RTT // may be 0; updated by OnAck above for this event
	s.rttSamples = 0
	if ev.RTT > 0 {
		s.rttSamples = 1
	}
	s.dtBat = 0
	s.gDecided = false
	s.hyLastAck = ev.Now
	s.frozenRound = false
	// Any pacing from the previous round must be over; clear defensively.
	s.stopPacing()
}

// maybeDecideG measures ΔtBat at the last blue ACK and runs
// Algorithm 1 (Section 3 semantics: granting k future rounds requires
// Δt_at ≤ minRTT/2^(k+1), Eq. 17, and the moRTT extrapolation of
// Eq. 19). Note the paper's Appendix A pseudo-code tests the bound at
// the pre-increment k, which for kmax=1 would grant G=4 from the
// weaker Eq. 2 bound; we follow the body text (Eq. 6), which requires
// minRTT/4 for quadrupling. See DESIGN.md.
func (s *Suss) maybeDecideG(ev cc.AckEvent) {
	if s.gDecided || s.round < 2 || s.minRTT == 0 {
		return
	}
	if ev.CumAck < s.prevBlueEnd {
		return
	}
	s.gDecided = true
	s.dtBat = ev.Now - s.roundStartT
	if s.prevBlueBudget <= 0 || s.prevCwnd <= 0 {
		return
	}
	// Eq. 9: scale the blue ACK-train length to the full data train.
	ratio := float64(s.prevCwnd) / float64(s.prevBlueBudget)
	if ratio < 1 {
		ratio = 1
	}
	dtAt := time.Duration(float64(s.dtBat) * ratio)

	k := s.computeK(dtAt)
	g := 1 << (k + 1)
	s.lastG = g
	s.stats.GHistory = append(s.stats.GHistory, g)
	if g > s.stats.MaxG {
		s.stats.MaxG = g
	}
	if g > 2 {
		s.beginPacing(g)
	}
}

// computeK returns the largest k ≤ Kmax for which Conditions 1 and 2
// hold for round i+k.
func (s *Suss) computeK(dtAt time.Duration) int {
	r := s.round - s.minRTTRound
	best := 0
	for k := 1; k <= s.opt.Kmax; k++ {
		// Condition 1 (Eq. 17): ΔtAt ≤ AckTrainFrac·minRTT / 2^k.
		bound := time.Duration(float64(s.minRTT) * s.opt.AckTrainFrac / float64(int64(1)<<k))
		if dtAt > bound {
			break
		}
		// Condition 2 (Eq. 19): projected moRTT stays under the delay
		// threshold. r == 0 means minRTT was lowered this round: no
		// queue growth to extrapolate.
		if r > 0 && s.moRTT > 0 {
			projected := s.moRTT + time.Duration(float64(k)*float64(s.moRTT-s.minRTT)/float64(r))
			if float64(projected) > s.opt.DelayFactor*float64(s.minRTT) {
				break
			}
		}
		best = k
	}
	return best
}

// beginPacing schedules the guard interval, the paced release of the
// red window, and the end of the pacing period.
func (s *Suss) beginPacing(g int) {
	now := s.env.Now()
	target := int64(g) * s.prevCwnd // cwnd_i (Eq. 1)
	sBdt := s.blueBudget            // S_Bdt_i
	sRdt := target - sBdt           // S_Rdt_i (Eq. 10 equivalent)
	redGrowth := target - s.cubic.CwndBytes()
	if sRdt <= 0 || redGrowth <= 0 {
		return
	}
	s.stats.AcceleratedRounds++
	if r := s.rec; r != nil {
		r.C.SussBoosts++
		r.Record(now, obs.EvSussBoost, 0, 0, int64(g), redGrowth)
	}

	if s.opt.NoPacing {
		// Clocking-only ablation: grant the red window at once; the
		// freed + grown window leaves as a burst.
		s.cubic.AddCwndSegments(float64(redGrowth) / float64(s.env.MSS()))
		s.frozenRound = true
		s.stats.RedBytesPaced += redGrowth
		s.env.Kick()
		return
	}

	// Eq. 12 guard; Eq. 11 rate; pacing window length S_Rdt/cwnd·minRTT.
	guard := time.Duration(float64(s.minRTT)*float64(sBdt)/(2*float64(target))) - s.dtBat/2
	if guard < 0 || s.opt.NoGuard {
		guard = 0
	}
	dur := time.Duration(float64(s.minRTT) * float64(sRdt) / float64(target))
	s.pacingRate = float64(target*8) / s.minRTT.Seconds()
	s.redRemaining = redGrowth
	mss := int64(s.env.MSS())
	s.tickInterval = time.Duration(float64(s.minRTT) * float64(mss) / float64(target))
	s.frozenRound = true

	start := now + guard
	// Activate the gate in a follow-up event so the clocked sends
	// triggered by this same ACK are not caught by it.
	s.env.Schedule(0, func() {
		if s.frozenRound {
			s.pacingActive = true
			s.gate = start
		}
	})
	s.tickTimer = s.env.Schedule(guard, s.tick)
	s.endTimer = s.env.Schedule(guard+dur, func() { s.stopPacing() })
}

// tick releases one MSS of red window and reschedules itself until the
// round's red growth is exhausted.
func (s *Suss) tick() {
	if !s.frozenRound || s.redRemaining <= 0 {
		return
	}
	mss := int64(s.env.MSS())
	add := mss
	if add > s.redRemaining {
		add = s.redRemaining
	}
	s.redRemaining -= add
	s.stats.RedBytesPaced += add
	s.cubic.AddCwndSegments(float64(add) / float64(mss))
	s.checkCap()
	s.env.Kick()
	if s.redRemaining > 0 && s.frozenRound {
		s.tickTimer = s.env.Schedule(s.tickInterval, s.tick)
	}
}

// stopPacing ends the pacing period (normally or on abort), discarding
// any un-granted red window so an interrupted round leaves no
// overhang.
func (s *Suss) stopPacing() {
	s.pacingActive = false
	s.pacingRate = 0
	s.gate = 0
	s.redRemaining = 0
	if s.tickTimer != nil {
		s.tickTimer.Stop()
	}
	if s.endTimer != nil {
		s.endTimer.Stop()
	}
}

// modifiedHyStart implements the paper's Fig. 8: the two HyStart
// detectors evaluated on blue ACKs, with elapsed time scaled by the
// data-train/blue ratio and a growth cap instead of an immediate stop
// when the estimate was scaled.
func (s *Suss) modifiedHyStart(ev cc.AckEvent) {
	const hystartLowWindow = 16
	const ackDelta = 2 * time.Millisecond
	if s.minRTT == 0 || s.cubic.CwndSegments() < hystartLowWindow {
		return
	}
	// Only blue ACKs represent the unmodified path condition.
	isBlue := ev.CumAck <= s.prevBlueEnd
	now := ev.Now

	gap := now - s.hyLastAck
	s.hyLastAck = now
	if isBlue && gap <= ackDelta {
		ratio := 1.0
		if s.prevBlueBudget > 0 && s.prevCwnd > s.prevBlueBudget {
			ratio = float64(s.prevCwnd) / float64(s.prevBlueBudget)
		}
		elapsed := now - s.roundStartT
		est := time.Duration(float64(elapsed) * ratio)
		if float64(est) > s.opt.AckTrainFrac*float64(s.minRTT) {
			if ratio > 1 {
				// The estimate was scaled, so the signal fired early in
				// the round (the blue train is compressed relative to
				// the full data train). Exiting here would stop well
				// below where unmodified HyStart stops — Fig. 9 shows
				// both variants ending exponential growth at almost the
				// same cwnd. The cap postpones the stop to the
				// HyStart-equivalent window: the round-start cwnd plus
				// what the measured delivery rate would have clocked
				// out by the time the unscaled elapsed time crossed the
				// threshold (Fig. 8's "cap" branch).
				if !s.capSet {
					s.capSet = true
					acked := ev.CumAck - s.roundStartCum
					var extra int64
					if elapsed > 0 && acked > 0 {
						impliedRate := float64(acked) / elapsed.Seconds() // bytes/sec
						extra = int64(impliedRate * s.opt.AckTrainFrac * s.minRTT.Seconds())
					}
					s.capBytes = s.prevCwnd + extra
					s.stats.CapExits++
				}
			} else {
				// Unscaled signal: behave exactly like HyStart.
				s.stats.TrainExits++
				if r := s.rec; r != nil {
					r.C.HyStartExits++
					r.Record(now, obs.EvHyStartExit, 0, 0, int64(obs.ExitTrain), s.cubic.CwndBytes())
				}
				s.exitSlowStart()
				return
			}
		}
	}

	// Condition 2: the round's minimum observed RTT against the delay
	// threshold, after enough samples.
	const minSamples = 8
	if isBlue && s.rttSamples >= minSamples && s.moRTT > 0 {
		if float64(s.moRTT) > s.opt.DelayFactor*float64(s.minRTT) {
			s.stats.DelayExits++
			if r := s.rec; r != nil {
				r.C.HyStartExits++
				r.Record(now, obs.EvHyStartExit, 0, 0, int64(obs.ExitDelay), s.cubic.CwndBytes())
			}
			s.exitSlowStart()
		}
	}
}

// checkCap enforces the postponed stop installed by modifiedHyStart.
func (s *Suss) checkCap() {
	if s.capSet && s.cubic.CwndBytes() >= s.capBytes {
		if r := s.rec; r != nil {
			r.C.HyStartExits++
			r.Record(s.env.Now(), obs.EvHyStartExit, 0, 0, int64(obs.ExitCap), s.cubic.CwndBytes())
		}
		s.exitSlowStart()
	}
}

func (s *Suss) exitSlowStart() {
	s.cubic.ExitSlowStart()
	s.disable(true)
}

// disable turns SUSS off for the rest of the connection (slow start is
// over; CUBIC congestion avoidance takes it from here).
func (s *Suss) disable(abortPacing bool) {
	if s.enabled {
		if r := s.rec; r != nil {
			r.C.SussExits++
			var aborted int64
			if abortPacing && (s.pacingActive || s.frozenRound) {
				aborted = 1
			}
			r.Record(s.env.Now(), obs.EvSussExit, 0, 0, aborted, s.cubic.CwndBytes())
		}
	}
	s.enabled = false
	if abortPacing || s.pacingActive || s.frozenRound {
		s.stopPacing()
		s.frozenRound = false
	}
}

// OnLoss implements cc.Controller: abort any pacing period (the
// un-granted red window is discarded) and hand the event to CUBIC.
func (s *Suss) OnLoss(ev cc.LossEvent) {
	s.disable(true)
	s.cubic.OnLoss(ev)
}

// OnRTO implements cc.Controller.
func (s *Suss) OnRTO(now time.Duration) {
	s.disable(true)
	s.cubic.OnRTO(now)
}

// UndoRTO implements cc.Undoer by delegating to CUBIC's window undo.
// SUSS itself stays disabled: the boost machinery is a slow-start
// mechanism and a timeout — even a spurious one — means the path is
// too unstable to resume granting red windows.
func (s *Suss) UndoRTO(now time.Duration) {
	s.cubic.UndoRTO(now)
}

// String implements fmt.Stringer for debugging.
func (s *Suss) String() string {
	return fmt.Sprintf("suss{round:%d G:%d cwnd:%dB pacing:%v}", s.round, s.lastG, s.CwndBytes(), s.pacingActive)
}
