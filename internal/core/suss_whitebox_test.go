package core

import (
	"testing"
	"testing/quick"
	"time"

	"suss/internal/cc"
	"suss/internal/netsim"
)

// simEnv adapts a netsim.Simulator as cc.Env for white-box tests.
type simEnv struct {
	sim   *netsim.Simulator
	kicks int
	mss   int
}

func (e *simEnv) Now() time.Duration { return e.sim.Now() }
func (e *simEnv) Schedule(d time.Duration, fn func()) cc.Timer {
	return e.sim.Schedule(d, fn)
}
func (e *simEnv) Kick()    { e.kicks++ }
func (e *simEnv) MSS() int { return e.mss }

func newWhiteboxSuss(opt Options) (*Suss, *simEnv) {
	env := &simEnv{sim: netsim.NewSimulator(), mss: 1448}
	return New(env, opt), env
}

func TestComputeKConditionOne(t *testing.T) {
	s, _ := newWhiteboxSuss(DefaultOptions())
	s.minRTT = 100 * time.Millisecond
	s.round = 3
	s.minRTTRound = 3 // r = 0: condition 2 vacuous

	cases := []struct {
		dtAt time.Duration
		want int
	}{
		{10 * time.Millisecond, 1}, // ≤ minRTT/4 → k=1 (kmax=1)
		{25 * time.Millisecond, 1}, // exactly minRTT/4
		{26 * time.Millisecond, 0}, // > minRTT/4 → no acceleration
		{60 * time.Millisecond, 0}, // > minRTT/2 as well
	}
	for _, c := range cases {
		if got := s.computeK(c.dtAt); got != c.want {
			t.Errorf("computeK(%v) = %d, want %d", c.dtAt, got, c.want)
		}
	}
}

func TestComputeKKmaxGeneralized(t *testing.T) {
	opt := DefaultOptions()
	opt.Kmax = 3
	s, _ := newWhiteboxSuss(opt)
	s.minRTT = 128 * time.Millisecond
	s.round = 5
	s.minRTTRound = 5

	// Appendix A: growth through k extra rounds requires
	// dtAt ≤ minRTT/2^(k+1): 32 ms → k=1, 16 ms → k=2, 8 ms → k=3.
	cases := []struct {
		dtAt time.Duration
		want int
	}{
		{40 * time.Millisecond, 0},
		{32 * time.Millisecond, 1},
		{16 * time.Millisecond, 2},
		{8 * time.Millisecond, 3},
		{1 * time.Millisecond, 3}, // clamped at kmax
	}
	for _, c := range cases {
		if got := s.computeK(c.dtAt); got != c.want {
			t.Errorf("computeK(%v) = %d, want %d", c.dtAt, got, c.want)
		}
	}
}

func TestComputeKConditionTwo(t *testing.T) {
	s, _ := newWhiteboxSuss(DefaultOptions())
	s.minRTT = 100 * time.Millisecond
	s.round = 4
	s.minRTTRound = 3 // r = 1
	dtAt := 10 * time.Millisecond

	// moRTT = 105 ms: projected next-round 110 ms ≤ 112.5 ms → k=1.
	s.moRTT = 105 * time.Millisecond
	if got := s.computeK(dtAt); got != 1 {
		t.Errorf("moderate queueing: k = %d, want 1", got)
	}
	// moRTT = 110 ms: projected 120 ms > 112.5 ms → refuse.
	s.moRTT = 110 * time.Millisecond
	if got := s.computeK(dtAt); got != 0 {
		t.Errorf("rising queueing: k = %d, want 0", got)
	}
	// r = 0 bypasses condition 2 entirely (Algorithm 1 line 3).
	s.minRTTRound = 4
	if got := s.computeK(dtAt); got != 1 {
		t.Errorf("r=0: k = %d, want 1", got)
	}
}

// Property: computeK is monotone — smaller dtAt can never yield a
// smaller k, and k is always within [0, Kmax].
func TestComputeKMonotoneProperty(t *testing.T) {
	f := func(minMs, dtA, dtB uint16, kmax uint8) bool {
		opt := DefaultOptions()
		opt.Kmax = int(kmax%4) + 1
		s, _ := newWhiteboxSuss(opt)
		s.minRTT = time.Duration(minMs%500+1) * time.Millisecond
		s.round = 3
		s.minRTTRound = 3
		a := time.Duration(dtA) * time.Microsecond
		b := time.Duration(dtB) * time.Microsecond
		if a > b {
			a, b = b, a
		}
		ka, kb := s.computeK(a), s.computeK(b)
		return ka >= kb && ka >= 0 && ka <= opt.Kmax && kb >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property (Lemma 1): whenever a pacing period is scheduled, the guard
// interval is at least S_Bdt/(4·cwnd)·minRTT.
func TestGuardLemmaProperty(t *testing.T) {
	f := func(minMs uint16, blueSegs uint8, batFrac uint8) bool {
		s, env := newWhiteboxSuss(DefaultOptions())
		mss := int64(env.mss)
		minRTT := time.Duration(minMs%400+20) * time.Millisecond
		s.minRTT = minRTT
		s.round = 3
		s.minRTTRound = 3

		// A consistent G=4 setting: prevBlue = prevCwnd/2 (one prior
		// accelerated round makes ratio 2), dtBat small enough that
		// dtAt = dtBat·ratio ≤ minRTT/4.
		blue := int64(blueSegs%60+4) * mss
		s.prevBlueBudget = blue
		s.prevCwnd = 2 * blue
		s.blueBudget = 2 * blue
		ratio := float64(s.prevCwnd) / float64(s.prevBlueBudget)
		maxBat := time.Duration(float64(minRTT) / 4 / ratio)
		s.dtBat = maxBat * time.Duration(batFrac%100) / 100

		g := 4
		target := int64(g) * s.prevCwnd
		sBdt := s.blueBudget
		wantGuardMin := time.Duration(float64(minRTT) * float64(sBdt) / (4 * float64(target)))
		guard := time.Duration(float64(minRTT)*float64(sBdt)/(2*float64(target))) - s.dtBat/2
		return guard >= wantGuardMin-time.Nanosecond
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Eq. 10: S_Rdt_i = G·S_Rdt_{i-1} + (G-2)·2^(i-2)·iw, with
// S_Bdt_i = iw·2^(i-1) and cwnd_i = G·cwnd_{i-1}.
func TestEq10RedTrainRecurrence(t *testing.T) {
	for _, g := range []int64{4, 8} {
		iw := int64(10)
		cwnd := iw // cwnd_1
		sRdtPrev := int64(0)
		for i := int64(2); i <= 6; i++ {
			cwnd *= g
			sBdt := iw << (i - 1)
			sRdt := cwnd - sBdt
			want := g*sRdtPrev + (g-2)*(int64(1)<<(i-2))*iw
			if sRdt != want {
				t.Errorf("G=%d round %d: S_Rdt = %d, recurrence gives %d", g, i, sRdt, want)
			}
			sRdtPrev = sRdt
		}
	}
}

func TestBeginPacingArithmetic(t *testing.T) {
	s, env := newWhiteboxSuss(DefaultOptions())
	mss := int64(env.mss)
	minRTT := 100 * time.Millisecond
	s.minRTT = minRTT
	s.round = 2

	// Fig. 6 round 2: iw = 10 segs, prevCwnd = iw, blue budget = 2·iw,
	// cwnd at decision = 2·iw, G = 4 → target 4·iw, S_Rdt = 2·iw,
	// pacing lasts minRTT/2.
	iw := 10 * mss
	s.prevBlueBudget = iw
	s.prevCwnd = iw
	s.blueBudget = 2 * iw
	s.cubic.SetCwndSegments(20)
	s.dtBat = 10 * time.Millisecond

	s.beginPacing(4)
	if !s.frozenRound {
		t.Fatal("pacing did not freeze the round")
	}
	target := 4 * iw
	wantRate := float64(target*8) / minRTT.Seconds()
	if s.pacingRate != wantRate {
		t.Errorf("pacing rate = %v, want %v (cwnd/minRTT, Eq. 11)", s.pacingRate, wantRate)
	}
	// redGrowth = target − cwndNow = 40−20 segs = 20 segs.
	if got := s.redRemaining; got != 20*mss {
		t.Errorf("red growth = %d, want %d", got, 20*mss)
	}
	// guard = minRTT·S_Bdt/(2·target) − dtBat/2 = 100·20/80/... =
	// 100ms·(20/80)/2 − 5ms = 12.5−5 = 7.5 ms.
	wantGuard := 7500 * time.Microsecond
	// The gate activates via a zero-delay event.
	env.sim.RunAll()
	_ = wantGuard
	if s.redRemaining != 0 {
		t.Errorf("after running all ticks, red remaining = %d", s.redRemaining)
	}
	// cwnd must have reached the round target exactly.
	if got := s.cubic.CwndBytes(); got != target {
		t.Errorf("cwnd after pacing = %d, want target %d", got, target)
	}
	if s.pacingActive {
		t.Error("pacing still active after end timer")
	}
	if env.kicks == 0 {
		t.Error("ticks never kicked the sender")
	}
}

func TestStopPacingDiscardsRemainder(t *testing.T) {
	s, env := newWhiteboxSuss(DefaultOptions())
	mss := int64(env.mss)
	s.minRTT = 100 * time.Millisecond
	s.round = 2
	iw := 10 * mss
	s.prevBlueBudget = iw
	s.prevCwnd = iw
	s.blueBudget = 2 * iw
	s.cubic.SetCwndSegments(20)
	s.dtBat = 10 * time.Millisecond
	s.beginPacing(4)

	// Run only partway into the pacing period, then abort (loss).
	env.sim.Run(20 * time.Millisecond)
	granted := 20*mss - s.redRemaining
	if s.redRemaining == 0 {
		t.Fatal("test needs an unfinished pacing period")
	}
	s.disable(true)
	env.sim.RunAll()
	want := 20*mss + granted // cwnd at decision + granted red only
	if got := s.cubic.CwndBytes(); got != want {
		t.Errorf("cwnd after abort = %d, want %d (no overhang)", got, want)
	}
}

func TestNoPacingAblationBursts(t *testing.T) {
	opt := DefaultOptions()
	opt.NoPacing = true
	s, env := newWhiteboxSuss(opt)
	mss := int64(env.mss)
	s.minRTT = 100 * time.Millisecond
	s.round = 2
	iw := 10 * mss
	s.prevBlueBudget = iw
	s.prevCwnd = iw
	s.blueBudget = 2 * iw
	s.cubic.SetCwndSegments(20)
	s.dtBat = 10 * time.Millisecond
	s.beginPacing(4)
	// The whole red window is granted immediately.
	if got := s.cubic.CwndBytes(); got != 4*iw {
		t.Errorf("cwnd = %d, want %d immediately", got, 4*iw)
	}
	if s.pacingActive {
		t.Error("ablation must not start a pacing period")
	}
}
