package core_test

import (
	"testing"
	"time"

	"suss/internal/core"
	"suss/internal/netsim"
	"suss/internal/tcp"
	"suss/internal/wire"
)

// TestWirePacingPattern verifies the Fig. 5/6 transmission pattern on
// the wire for the first accelerated round: a clocked burst (blue), a
// guard silence, then red packets paced at ≈ cwnd_i/minRTT.
func TestWirePacingPattern(t *testing.T) {
	sim := netsim.NewSimulator()
	owd := 50 * time.Millisecond // minRTT 100 ms
	rate := 1e8
	p := netsim.NewPath(sim, netsim.PathSpec{Forward: []netsim.LinkConfig{
		{Name: "core", Rate: 1e9, Delay: owd / 2, QueueBytes: 64 << 20},
		{Name: "bneck", Rate: rate, Delay: owd - owd/2, QueueBytes: 1 << 20},
	}})
	cfg := tcp.DefaultConfig()
	f := tcp.NewFlow(sim, cfg, 1, p.Sender, tcp.NewDemux(p.Sender), p.Receiver, tcp.NewDemux(p.Receiver), 4<<20, nil)
	s := core.New(f.Sender, core.DefaultOptions())
	f.Sender.SetController(s)

	var sendTimes []time.Duration
	f.Receiver.OnData = func(now time.Duration, seg *wire.Segment) {
		// Fresh sends carry their departure time in the timestamp
		// option; this flow never retransmits, so every arrival has one.
		sendTimes = append(sendTimes, wire.UnwrapTS(now, seg.TSVal))
	}
	f.StartAt(sim, 0)
	sim.Run(10 * time.Minute)
	if !f.Done() {
		t.Fatal("flow did not complete")
	}
	if s.Stats().AcceleratedRounds == 0 {
		t.Fatal("no accelerated rounds")
	}

	// Paper round 2 (first acceleration, G=4 from iw=10):
	//   clocked sends: 20 segments shortly after t=minRTT (the IW ACKs)
	//   red sends: 20 segments paced at cwnd_2/minRTT = 40segs/100ms,
	//   i.e. one per 2.5 ms, starting after the guard.
	minRTT := 100 * time.Millisecond
	roundStart := minRTT // first IW ack arrives ≈ here
	var blue, red []time.Duration
	for _, st := range sendTimes {
		if st < roundStart || st > roundStart+minRTT {
			continue
		}
		// Blue sends are clocked within the (compressed) IW ACK train —
		// comfortably inside the first 20 ms of the round.
		if st < roundStart+20*time.Millisecond {
			blue = append(blue, st)
		} else {
			red = append(red, st)
		}
	}
	if len(blue) < 15 || len(blue) > 25 {
		t.Fatalf("blue sends in round 2 = %d, want ≈20", len(blue))
	}
	if len(red) < 15 || len(red) > 25 {
		t.Fatalf("red sends in round 2 = %d, want ≈20", len(red))
	}

	// Guard: a real silence between the last blue and first red send.
	guard := red[0] - blue[len(blue)-1]
	if guard < 5*time.Millisecond {
		t.Errorf("guard interval %v, want ≥5ms (Eq. 12 gives ~45ms here)", guard)
	}

	// Red spacing ≈ minRTT / cwnd_2 = 100ms/40 = 2.5 ms per segment.
	wantGap := 2500 * time.Microsecond
	for i := 1; i < len(red); i++ {
		gap := red[i] - red[i-1]
		if gap < wantGap*8/10 {
			t.Fatalf("red gap %v at %d, want ≈%v (pacing broken)", gap, i, wantGap)
		}
	}

	// And the pacing window must fit inside the round: last red send
	// before the round ends (Lemma 1's guarantee).
	if last := red[len(red)-1]; last > roundStart+minRTT {
		t.Errorf("red sends spilled past the round: %v", last)
	}
}

// TestWireCwndRoundTargets verifies cwnd_i = G_i × cwnd_{i-1} exactly
// at each round boundary on a clean deterministic path.
func TestWireCwndRoundTargets(t *testing.T) {
	sim := netsim.NewSimulator()
	p := netsim.NewPath(sim, netsim.PathSpec{Forward: []netsim.LinkConfig{
		{Name: "core", Rate: 1e9, Delay: 25 * time.Millisecond, QueueBytes: 64 << 20},
		{Name: "bneck", Rate: 2e8, Delay: 25 * time.Millisecond, QueueBytes: 8 << 20},
	}})
	cfg := tcp.DefaultConfig()
	f := tcp.NewFlow(sim, cfg, 1, p.Sender, tcp.NewDemux(p.Sender), p.Receiver, tcp.NewDemux(p.Receiver), 8<<20, nil)
	s := core.New(f.Sender, core.DefaultOptions())
	f.Sender.SetController(s)
	f.StartAt(sim, 0)

	// Sample cwnd just before each round boundary (multiples of minRTT).
	minRTT := 100 * time.Millisecond
	var cwndAtRoundEnd []int64
	for r := 1; r <= 4; r++ {
		sim.Run(time.Duration(r)*minRTT + 90*time.Millisecond)
		cwndAtRoundEnd = append(cwndAtRoundEnd, s.CwndBytes()/int64(cfg.MSS))
	}
	sim.Run(10 * time.Minute)
	if !f.Done() {
		t.Fatal("flow did not complete")
	}
	// iw=10; with G=4 from round 2: 40, 160, 640, 2560 (while in SS).
	want := []int64{40, 160, 640, 2560}
	for i, w := range want {
		got := cwndAtRoundEnd[i]
		if !s.InSlowStart() && i >= 2 {
			break // exit may legitimately cap the later rounds
		}
		if got != w {
			t.Errorf("cwnd at end of round %d = %d segs, want %d (G=4 cascade)", i+2, got, w)
		}
	}
}
