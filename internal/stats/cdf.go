package stats

import (
	"fmt"
	"io"
	"sort"
)

// CDF is a sorted empirical distribution, the exporter behind the
// fleet experiment's per-class FCT output: build once from raw
// samples, then read quantiles or dump a fixed grid to CSV. The
// samples are copied and sorted at construction so every accessor is
// read-only and O(log n) or better.
type CDF struct {
	sorted []float64
}

// NewCDF copies and sorts the samples. An empty sample set is legal
// and yields zero quantiles (a class can be absent from a shard).
func NewCDF(samples []float64) CDF {
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	return CDF{sorted: s}
}

// N returns the sample count.
func (c CDF) N() int { return len(c.sorted) }

// Min returns the smallest sample (0 when empty).
func (c CDF) Min() float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	return c.sorted[0]
}

// Max returns the largest sample (0 when empty).
func (c CDF) Max() float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	return c.sorted[len(c.sorted)-1]
}

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) by the same linear
// interpolation Percentile uses, so CDF and Percentile agree on
// shared data.
func (c CDF) Quantile(q float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	return percentileSorted(c.sorted, q*100)
}

// At returns the empirical CDF value P(X ≤ x): the fraction of
// samples not exceeding x. The upper-bound binary search keeps it
// O(log n) even when x ties a long run of duplicates (quantized FCTs
// produce heavy-tie populations).
func (c CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	i := sort.Search(len(c.sorted), func(i int) bool { return c.sorted[i] > x })
	return float64(i) / float64(len(c.sorted))
}

// DefaultQuantileGrid is the grid the fleet CSV uses: dense through
// the body, resolving the tail percentiles the paper's FCT comparisons
// hinge on.
func DefaultQuantileGrid() []float64 {
	return []float64{0.01, 0.05, 0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 0.999, 1.0}
}

// Quantiles evaluates the CDF on a quantile grid.
func (c CDF) Quantiles(grid []float64) []float64 {
	out := make([]float64, len(grid))
	for i, q := range grid {
		out[i] = c.Quantile(q)
	}
	return out
}

// WriteCSV emits the CDF evaluated on the grid as "label,quantile,
// value" rows with six significant digits — stable across runs and
// platforms for golden tests and byte-identical shard merges. A nil
// grid means DefaultQuantileGrid.
func (c CDF) WriteCSV(w io.Writer, label string, grid []float64) error {
	if grid == nil {
		grid = DefaultQuantileGrid()
	}
	for _, q := range grid {
		if _, err := fmt.Fprintf(w, "%s,%g,%.6g\n", label, q, c.Quantile(q)); err != nil {
			return err
		}
	}
	return nil
}
