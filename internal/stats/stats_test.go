package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMeanStdDev(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if !almost(Mean(xs), 5) {
		t.Errorf("Mean = %v", Mean(xs))
	}
	if !almost(StdDev(xs), 2) {
		t.Errorf("StdDev = %v, want 2", StdDev(xs))
	}
	if StdDev([]float64{1}) != 0 {
		t.Error("StdDev of singleton should be 0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if !almost(Percentile(xs, 0), 1) || !almost(Percentile(xs, 100), 5) {
		t.Error("extremes wrong")
	}
	if !almost(Percentile(xs, 50), 3) {
		t.Errorf("P50 = %v", Percentile(xs, 50))
	}
	if !almost(Percentile(xs, 25), 2) {
		t.Errorf("P25 = %v", Percentile(xs, 25))
	}
	// Input must not be mutated.
	ys := []float64{3, 1, 2}
	Percentile(ys, 50)
	if ys[0] != 3 || ys[1] != 1 || ys[2] != 2 {
		t.Error("Percentile mutated its input")
	}
}

func TestJainIndex(t *testing.T) {
	if !almost(JainIndex([]float64{10, 10, 10, 10}), 1) {
		t.Error("equal shares must give F=1")
	}
	// One flow hogging everything among n: F = 1/n.
	if !almost(JainIndex([]float64{100, 0, 0, 0}), 0.25) {
		t.Errorf("F = %v, want 0.25", JainIndex([]float64{100, 0, 0, 0}))
	}
	if JainIndex(nil) != 0 {
		t.Error("empty input should give 0")
	}
}

// Property: Jain's index is scale-invariant and bounded in [1/n, 1].
func TestJainIndexProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(10) + 1
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64()*100 + 0.001
		}
		fidx := JainIndex(xs)
		if fidx < 1/float64(n)-1e-9 || fidx > 1+1e-9 {
			return false
		}
		scaled := make([]float64, n)
		for i := range xs {
			scaled[i] = xs[i] * 42
		}
		return almost(fidx, JainIndex(scaled))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || !almost(s.Mean, 3) || !almost(s.Min, 1) || !almost(s.Max, 5) || !almost(s.P50, 3) {
		t.Errorf("Summary = %+v", s)
	}
	if Summarize(nil).N != 0 {
		t.Error("empty summary should be zero")
	}
}

func TestBinnedCounter(t *testing.T) {
	b := NewBinnedCounter(time.Second)
	b.Add(100*time.Millisecond, 10)
	b.Add(900*time.Millisecond, 5)
	b.Add(2500*time.Millisecond, 7)
	bins := b.Bins()
	if len(bins) != 3 {
		t.Fatalf("bins = %v", bins)
	}
	if bins[0] != 15 || bins[1] != 0 || bins[2] != 7 {
		t.Errorf("bins = %v", bins)
	}
	rates := b.Rate()
	if rates[0] != 15 {
		t.Errorf("rate[0] = %v", rates[0])
	}
}

// Regression: Add used to compute a negative bin index for t < 0 and
// panic indexing vals[-1]. Pre-start timestamps now clamp into bin 0.
func TestBinnedCounterNegativeTime(t *testing.T) {
	b := NewBinnedCounter(time.Second)
	b.Add(-500*time.Millisecond, 3)
	b.Add(-10*time.Second, 4)
	b.Add(100*time.Millisecond, 1)
	bins := b.Bins()
	if len(bins) != 1 || bins[0] != 8 {
		t.Errorf("bins = %v, want [8]", bins)
	}
}

// Golden values pin Summarize's exact outputs: the single-sort rewrite
// must reproduce what the sort-per-percentile version computed,
// including the P95 linear interpolation and min/max off the sorted
// slice.
func TestSummarizeGolden(t *testing.T) {
	xs := []float64{9, 1, 4, 4, 2, 8, 5, 7, 3, 6} // 1..9 with 4 doubled
	s := Summarize(xs)
	want := Summary{
		N:      10,
		Mean:   4.9,
		StdDev: math.Sqrt(6.09),
		P50:    4.5,  // rank 4.5 between sorted[4]=4 and sorted[5]=5
		P95:    8.55, // rank 8.55 between sorted[8]=8 and sorted[9]=9
		Min:    1,
		Max:    9,
	}
	if s.N != want.N || !almost(s.Mean, want.Mean) || !almost(s.StdDev, want.StdDev) ||
		!almost(s.P50, want.P50) || !almost(s.P95, want.P95) ||
		!almost(s.Min, want.Min) || !almost(s.Max, want.Max) {
		t.Errorf("Summarize = %+v, want %+v", s, want)
	}
	// Input order must survive (the sort works on a copy).
	if xs[0] != 9 || xs[len(xs)-1] != 6 {
		t.Error("Summarize mutated its input")
	}
}

// Property: Summarize's percentiles agree with the standalone
// Percentile on arbitrary inputs — the shared-sorted-slice path is an
// optimization, not a behavior change.
func TestSummarizeMatchesPercentile(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 100; trial++ {
		xs := make([]float64, rng.Intn(20)+1)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 10
		}
		s := Summarize(xs)
		if !almost(s.P50, Percentile(xs, 50)) || !almost(s.P95, Percentile(xs, 95)) {
			t.Fatalf("trial %d: Summarize %+v disagrees with Percentile (P50=%v P95=%v) on %v",
				trial, s, Percentile(xs, 50), Percentile(xs, 95), xs)
		}
	}
}

func TestJainOverTime(t *testing.T) {
	a := NewBinnedCounter(time.Second)
	c := NewBinnedCounter(time.Second)
	a.Add(0, 10)
	c.Add(0, 10)
	a.Add(time.Second, 20)
	c.Add(time.Second, 0) // flow b idle in bin 1
	series := JainOverTime([]*BinnedCounter{a, c}, true)
	if !almost(series[0], 1) {
		t.Errorf("bin0 F = %v, want 1", series[0])
	}
	if !almost(series[1], 0.5) {
		t.Errorf("bin1 F = %v, want 0.5 (one starved of two)", series[1])
	}
	active := JainOverTime([]*BinnedCounter{a, c}, false)
	if !almost(active[1], 1) {
		t.Errorf("active-only bin1 F = %v, want 1", active[1])
	}
}

func TestDurationsToSeconds(t *testing.T) {
	out := DurationsToSeconds([]time.Duration{time.Second, 500 * time.Millisecond})
	if out[0] != 1 || out[1] != 0.5 {
		t.Errorf("out = %v", out)
	}
}
