package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMeanStdDev(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if !almost(Mean(xs), 5) {
		t.Errorf("Mean = %v", Mean(xs))
	}
	if !almost(StdDev(xs), 2) {
		t.Errorf("StdDev = %v, want 2", StdDev(xs))
	}
	if StdDev([]float64{1}) != 0 {
		t.Error("StdDev of singleton should be 0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if !almost(Percentile(xs, 0), 1) || !almost(Percentile(xs, 100), 5) {
		t.Error("extremes wrong")
	}
	if !almost(Percentile(xs, 50), 3) {
		t.Errorf("P50 = %v", Percentile(xs, 50))
	}
	if !almost(Percentile(xs, 25), 2) {
		t.Errorf("P25 = %v", Percentile(xs, 25))
	}
	// Input must not be mutated.
	ys := []float64{3, 1, 2}
	Percentile(ys, 50)
	if ys[0] != 3 || ys[1] != 1 || ys[2] != 2 {
		t.Error("Percentile mutated its input")
	}
}

func TestJainIndex(t *testing.T) {
	if !almost(JainIndex([]float64{10, 10, 10, 10}), 1) {
		t.Error("equal shares must give F=1")
	}
	// One flow hogging everything among n: F = 1/n.
	if !almost(JainIndex([]float64{100, 0, 0, 0}), 0.25) {
		t.Errorf("F = %v, want 0.25", JainIndex([]float64{100, 0, 0, 0}))
	}
	if JainIndex(nil) != 0 {
		t.Error("empty input should give 0")
	}
}

// Property: Jain's index is scale-invariant and bounded in [1/n, 1].
func TestJainIndexProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(10) + 1
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64()*100 + 0.001
		}
		fidx := JainIndex(xs)
		if fidx < 1/float64(n)-1e-9 || fidx > 1+1e-9 {
			return false
		}
		scaled := make([]float64, n)
		for i := range xs {
			scaled[i] = xs[i] * 42
		}
		return almost(fidx, JainIndex(scaled))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || !almost(s.Mean, 3) || !almost(s.Min, 1) || !almost(s.Max, 5) || !almost(s.P50, 3) {
		t.Errorf("Summary = %+v", s)
	}
	if Summarize(nil).N != 0 {
		t.Error("empty summary should be zero")
	}
}

func TestBinnedCounter(t *testing.T) {
	b := NewBinnedCounter(time.Second)
	b.Add(100*time.Millisecond, 10)
	b.Add(900*time.Millisecond, 5)
	b.Add(2500*time.Millisecond, 7)
	bins := b.Bins()
	if len(bins) != 3 {
		t.Fatalf("bins = %v", bins)
	}
	if bins[0] != 15 || bins[1] != 0 || bins[2] != 7 {
		t.Errorf("bins = %v", bins)
	}
	rates := b.Rate()
	if rates[0] != 15 {
		t.Errorf("rate[0] = %v", rates[0])
	}
}

func TestJainOverTime(t *testing.T) {
	a := NewBinnedCounter(time.Second)
	c := NewBinnedCounter(time.Second)
	a.Add(0, 10)
	c.Add(0, 10)
	a.Add(time.Second, 20)
	c.Add(time.Second, 0) // flow b idle in bin 1
	series := JainOverTime([]*BinnedCounter{a, c}, true)
	if !almost(series[0], 1) {
		t.Errorf("bin0 F = %v, want 1", series[0])
	}
	if !almost(series[1], 0.5) {
		t.Errorf("bin1 F = %v, want 0.5 (one starved of two)", series[1])
	}
	active := JainOverTime([]*BinnedCounter{a, c}, false)
	if !almost(active[1], 1) {
		t.Errorf("active-only bin1 F = %v, want 1", active[1])
	}
}

func TestDurationsToSeconds(t *testing.T) {
	out := DurationsToSeconds([]time.Duration{time.Second, 500 * time.Millisecond})
	if out[0] != 1 || out[1] != 0.5 {
		t.Errorf("out = %v", out)
	}
}
