// Package stats provides the evaluation metrics the paper reports:
// flow completion time aggregates, goodput, packet-loss rate, Jain's
// fairness index (RFC 5166's recommendation), and time-binned series
// for plotting-style output.
package stats

import (
	"math"
	"sort"
	"time"
)

// Mean returns the arithmetic mean (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) by linear
// interpolation.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p)
}

// percentileSorted is Percentile on an already-sorted slice, so callers
// computing several percentiles sort only once.
func percentileSorted(sorted []float64, p float64) float64 {
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// JainIndex computes Jain's fairness index F = (Σx)² / (n·Σx²) over
// per-flow goodputs. F = 1 is perfectly fair; F → 1/n is maximally
// unfair. Zero-valued flows count toward n (a starved flow is unfair).
func JainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// DurationsToSeconds converts for metric aggregation.
func DurationsToSeconds(ds []time.Duration) []float64 {
	out := make([]float64, len(ds))
	for i, d := range ds {
		out[i] = d.Seconds()
	}
	return out
}

// Summary aggregates repeated measurements of one quantity.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	P50    float64
	P95    float64
	Min    float64
	Max    float64
}

// Summarize computes a Summary. The input is copied and sorted once;
// both percentiles (and min/max) read the shared sorted slice.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		P50:    percentileSorted(sorted, 50),
		P95:    percentileSorted(sorted, 95),
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
	}
}

// BinnedCounter accumulates a quantity (e.g. delivered bytes) into
// fixed time bins, for goodput-over-time and fairness-over-time plots.
type BinnedCounter struct {
	Bin  time.Duration
	vals []float64
}

// NewBinnedCounter creates a counter with the given bin width.
func NewBinnedCounter(bin time.Duration) *BinnedCounter {
	if bin <= 0 {
		panic("stats: bin width must be positive")
	}
	return &BinnedCounter{Bin: bin}
}

// Add accumulates v into the bin containing time t. A negative t (a
// pre-start event, e.g. an observation stamped before the flow's
// virtual start) clamps into the first bin rather than panicking on a
// negative index.
func (b *BinnedCounter) Add(t time.Duration, v float64) {
	if t < 0 {
		t = 0
	}
	idx := int(t / b.Bin)
	for len(b.vals) <= idx {
		b.vals = append(b.vals, 0)
	}
	b.vals[idx] += v
}

// Bins returns the accumulated values per bin.
func (b *BinnedCounter) Bins() []float64 { return b.vals }

// Rate returns per-bin values divided by the bin width in seconds
// (bytes-added → bytes/sec).
func (b *BinnedCounter) Rate() []float64 {
	out := make([]float64, len(b.vals))
	sec := b.Bin.Seconds()
	for i, v := range b.vals {
		out[i] = v / sec
	}
	return out
}

// JainOverTime computes Jain's index per time bin across several
// flows' binned goodputs. Shorter series are zero-padded: a flow that
// has not started (or has finished) contributes zero goodput in a bin
// only if includeIdle is true; otherwise bins where a flow is inactive
// exclude it from n.
func JainOverTime(flows []*BinnedCounter, includeIdle bool) []float64 {
	maxLen := 0
	for _, f := range flows {
		if len(f.Bins()) > maxLen {
			maxLen = len(f.Bins())
		}
	}
	out := make([]float64, maxLen)
	for i := 0; i < maxLen; i++ {
		var xs []float64
		for _, f := range flows {
			bins := f.Bins()
			v := 0.0
			if i < len(bins) {
				v = bins[i]
			}
			if v > 0 || includeIdle {
				xs = append(xs, v)
			}
		}
		out[i] = JainIndex(xs)
	}
	return out
}
