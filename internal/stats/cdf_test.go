package stats

import (
	"math/rand"
	"strings"
	"testing"
)

func TestCDFQuantiles(t *testing.T) {
	c := NewCDF([]float64{5, 1, 3, 2, 4}) // sorts to 1..5
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
		{0.125, 1.5}, // interpolated
	}
	for _, tc := range cases {
		if got := c.Quantile(tc.q); got != tc.want {
			t.Errorf("Quantile(%g) = %g, want %g", tc.q, got, tc.want)
		}
	}
	if c.N() != 5 || c.Min() != 1 || c.Max() != 5 {
		t.Errorf("N/Min/Max = %d/%g/%g, want 5/1/5", c.N(), c.Min(), c.Max())
	}
}

func TestCDFMatchesPercentile(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = rng.ExpFloat64()
	}
	c := NewCDF(xs)
	for _, p := range []float64{1, 25, 50, 90, 99, 99.9} {
		if got, want := c.Quantile(p/100), Percentile(xs, p); got != want {
			t.Errorf("Quantile(%g)=%g disagrees with Percentile=%g", p/100, got, want)
		}
	}
}

func TestCDFAt(t *testing.T) {
	c := NewCDF([]float64{1, 2, 2, 3})
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2, 0.75}, {2.5, 0.75}, {3, 1}, {10, 1},
	}
	for _, tc := range cases {
		if got := c.At(tc.x); got != tc.want {
			t.Errorf("At(%g) = %g, want %g", tc.x, got, tc.want)
		}
	}
}

// TestCDFAtMatchesNaiveOnTies pins At against the definitional count
// on heavy-tie populations (quantized FCT grids): the upper-bound
// binary search must agree with a linear P(X ≤ x) count for every
// probe, including probes exactly on long duplicate runs.
func TestCDFAtMatchesNaiveOnTies(t *testing.T) {
	naive := func(xs []float64, x float64) float64 {
		n := 0
		for _, v := range xs {
			if v <= x {
				n++
			}
		}
		return float64(n) / float64(len(xs))
	}
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		// Quantize onto a coarse grid so ties dominate: a few distinct
		// values shared by hundreds of samples each.
		levels := 1 + rng.Intn(8)
		xs := make([]float64, 500)
		for i := range xs {
			xs[i] = float64(rng.Intn(levels)) / 4
		}
		c := NewCDF(xs)
		probes := append([]float64{-1, 0, float64(levels) / 4, 100}, xs[:20]...)
		for i := 0; i < 20; i++ {
			probes = append(probes, rng.Float64()*float64(levels)/2)
		}
		for _, x := range probes {
			if got, want := c.At(x), naive(xs, x); got != want {
				t.Fatalf("trial %d: At(%g) = %g, naive count = %g (levels=%d)", trial, x, got, want, levels)
			}
		}
	}
}

func TestCDFEmpty(t *testing.T) {
	var c CDF
	if c.Quantile(0.5) != 0 || c.At(1) != 0 || c.N() != 0 || c.Min() != 0 || c.Max() != 0 {
		t.Error("empty CDF must read as all zeros")
	}
}

// Golden: the CSV encoding is part of the fleet experiment's
// determinism contract — byte-identical for identical samples.
func TestCDFWriteCSVGolden(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i+1) / 8 // 0.125 .. 12.5
	}
	var sb strings.Builder
	if err := NewCDF(xs).WriteCSV(&sb, "web", nil); err != nil {
		t.Fatal(err)
	}
	const golden = `web,0.01,0.24875
web,0.05,0.74375
web,0.1,1.3625
web,0.25,3.21875
web,0.5,6.3125
web,0.75,9.40625
web,0.9,11.2625
web,0.95,11.8812
web,0.99,12.3763
web,0.999,12.4876
web,1,12.5
`
	if sb.String() != golden {
		t.Errorf("golden mismatch:\ngot:\n%s\nwant:\n%s", sb.String(), golden)
	}
}
