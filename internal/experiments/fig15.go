package experiments

import (
	"fmt"
	"strings"
	"time"

	"suss/internal/scenarios"
	"suss/internal/stats"
)

// Fig15Config is one of the twelve sub-figures: a minRTT and a
// bottleneck buffer depth.
type Fig15Config struct {
	RTT       time.Duration
	BufferBDP float64
}

// Fig15Configs mirrors the paper's grid: RTT ∈ {25, 50, 100, 200} ms ×
// buffer ∈ {1, 1.5, 2} BDP.
func Fig15Configs() []Fig15Config {
	var out []Fig15Config
	for _, buf := range []float64{1, 1.5, 2} {
		for _, rtt := range []time.Duration{25, 50, 100, 200} {
			out = append(out, Fig15Config{RTT: rtt * time.Millisecond, BufferBDP: buf})
		}
	}
	return out
}

// Fig15Result reproduces one sub-figure of Fig. 15: Jain's fairness
// index over time as a fifth flow joins four established flows, with
// SUSS off and on.
type Fig15Result struct {
	Config Fig15Config
	JoinAt time.Duration
	// Jain[variant] is the index per 1-second bin from the join
	// onward (variant 0 = SUSS off, 1 = on).
	Jain [2][]float64
	// RecoveryTime[variant] is how long after the join the index
	// first returns above 0.95 (-1 if never).
	RecoveryTime [2]time.Duration
	// MeanPostJoin[variant] is the average index over the post-join
	// window — higher is fairer.
	MeanPostJoin [2]float64
}

// RunFig15 runs both variants for one configuration.
func RunFig15(cfg Fig15Config, joinAt, horizon time.Duration) Fig15Result {
	res := Fig15Result{Config: cfg, JoinAt: joinAt}
	for variant := 0; variant < 2; variant++ {
		algo := Cubic
		if variant == 1 {
			algo = Suss
		}
		tb := scenarios.DefaultTestbed(cfg.RTT, cfg.BufferBDP)
		var specs []TestbedFlow
		for i := 0; i < 4; i++ {
			specs = append(specs, TestbedFlow{Pair: i, Algo: algo, Start: time.Duration(i) * 2 * time.Second})
		}
		specs = append(specs, TestbedFlow{Pair: 4, Algo: algo, Start: joinAt})
		run := RunTestbed(tb, specs, horizon, time.Second)

		series := stats.JainOverTime(run.Bins, true)
		joinBin := int(joinAt / time.Second)
		res.RecoveryTime[variant] = -1
		var post []float64
		for i := joinBin; i < len(series); i++ {
			res.Jain[variant] = append(res.Jain[variant], series[i])
			post = append(post, series[i])
			if res.RecoveryTime[variant] < 0 && i > joinBin && series[i] >= 0.95 {
				res.RecoveryTime[variant] = time.Duration(i-joinBin) * time.Second
			}
		}
		res.MeanPostJoin[variant] = stats.Mean(post)
	}
	return res
}

// Render prints the recovery metrics and the first seconds of the
// index curves.
func (r Fig15Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 15 — fairness, minRTT=%v buffer=%.1fBDP (join at %v)\n",
		r.Config.RTT, r.Config.BufferBDP, r.JoinAt)
	names := [2]string{"SUSS off", "SUSS on"}
	for v := 0; v < 2; v++ {
		fmt.Fprintf(&b, "  %-8s recovery(F≥0.95)=%-10v mean post-join F=%.3f\n",
			names[v], r.RecoveryTime[v], r.MeanPostJoin[v])
	}
	n := len(r.Jain[0])
	if n > 10 {
		n = 10
	}
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "    +%2ds  off=%.3f on=%.3f\n", i, r.Jain[0][i], r.Jain[1][i])
	}
	return b.String()
}
