package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"suss/internal/core"
	"suss/internal/netem"
	"suss/internal/netsim"
	"suss/internal/runner"
	"suss/internal/scenarios"
	"suss/internal/stats"
	"suss/internal/tcp"
)

// AblationResult compares SUSS variants on one path, isolating the
// design choices §4 argues for (clocking+pacing+guard) and App. A's
// kmax generalization.
type AblationResult struct {
	Name string
	// Variants and their mean FCT (s), mean loss rate, and peak
	// bottleneck queue (bytes).
	Variants []string
	FCT      []float64
	Loss     []float64
	PeakQ    []int
	// Incomplete counts runs that never finished (excluded above).
	Incomplete int
}

// runSussVariants declares variants × iters SUSS downloads as one job
// slice and aggregates FCT, loss and peak queue per variant.
func runSussVariants(cfg config, sc scenarios.Scenario, name string, names []string, options []core.Options, size int64, iters int) AblationResult {
	res := AblationResult{Name: name, Variants: names}
	var jobs []runner.Job
	for vi := range options {
		for it := 0; it < iters; it++ {
			jobs = append(jobs, runner.Job{Scenario: sc, Algo: Suss, SussOpt: &options[vi], Size: size, Iter: it})
		}
	}
	out := runner.Run(cfg.ctx, jobs, cfg.pool())
	for vi := range options {
		b := summarizeBatch(out[vi*iters : (vi+1)*iters])
		res.Incomplete += b.incomplete
		peakQ := 0
		var losses []float64
		for _, r := range out[vi*iters : (vi+1)*iters] {
			if r.Err != nil {
				continue
			}
			if r.PeakQueue > peakQ {
				peakQ = r.PeakQueue
			}
			losses = append(losses, r.LossRate)
		}
		res.FCT = append(res.FCT, stats.Mean(b.fcts))
		res.Loss = append(res.Loss, stats.Mean(losses))
		res.PeakQ = append(res.PeakQ, peakQ)
	}
	return res
}

// RunAblationMechanisms compares full SUSS against the clocking-only
// (no pacing period) and pacing-only (everything paced) ablations plus
// the no-guard variant, on a large-BDP 5G path.
func RunAblationMechanisms(size int64, iters int, seed int64, opts ...Option) AblationResult {
	sc := scenarios.New(scenarios.GoogleTokyo, netem.NR5G, seed)
	sc.LastHop.BufferBDPs = 0.6 // make burst damage visible
	names := []string{"full", "no-pacing (burst reds)", "pace-everything", "no-guard"}
	options := []core.Options{
		core.DefaultOptions(),
		func() core.Options { o := core.DefaultOptions(); o.NoPacing = true; return o }(),
		func() core.Options { o := core.DefaultOptions(); o.PaceEverything = true; return o }(),
		func() core.Options { o := core.DefaultOptions(); o.NoGuard = true; return o }(),
	}
	return runSussVariants(newConfig(opts), sc, "mechanisms", names, options, size, iters)
}

// RunAblationKmax sweeps the Appendix-A generalization kmax ∈ {1,2,3}.
func RunAblationKmax(size int64, iters int, seed int64, opts ...Option) AblationResult {
	sc := scenarios.New(scenarios.GoogleTokyo, netem.Wired, seed)
	var names []string
	var options []core.Options
	for _, k := range []int{1, 2, 3} {
		opt := core.DefaultOptions()
		opt.Kmax = k
		names = append(names, fmt.Sprintf("kmax=%d", k))
		options = append(options, opt)
	}
	return runSussVariants(newConfig(opts), sc, "kmax", names, options, size, iters)
}

// Render prints the comparison.
func (r AblationResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: %s\n", r.Name)
	fmt.Fprintf(&b, "  %-24s %10s %10s %12s\n", "variant", "FCT", "loss", "peak queue")
	for i, v := range r.Variants {
		fmt.Fprintf(&b, "  %-24s %9.3fs %9.3f%% %11dB\n", v, r.FCT[i], 100*r.Loss[i], r.PeakQ[i])
	}
	if r.Incomplete > 0 {
		fmt.Fprintf(&b, "  WARNING: %d run(s) did not complete (excluded)\n", r.Incomplete)
	}
	return b.String()
}

// BtlBwVariationResult reproduces Appendix B: a bandwidth step on the
// bottleneck mid-slow-start, with SUSS on and off.
type BtlBwVariationResult struct {
	// Step direction: "drop" halves the rate at 1 s, "rise" doubles it.
	Direction string
	FCTOff    float64
	FCTOn     float64
	LossOff   float64
	LossOn    float64
	// Failed lists variants whose flow never finished.
	Failed []string
}

// RunBtlBwVariation runs the step experiment; the off/on variants run
// as two independent pool items.
func RunBtlBwVariation(direction string, size int64, seed int64, opts ...Option) BtlBwVariationResult {
	cfg := newConfig(opts)
	res := BtlBwVariationResult{Direction: direction}
	base, after := 2e8, 1e8
	if direction == "rise" {
		base, after = 1e8, 2e8
	}
	type stepRun struct{ fct, loss float64 }
	outs := runner.Map(cfg.ctx, []Algo{Cubic, Suss}, func(_ context.Context, _ int, algo Algo) (stepRun, error) {
		sim := netsim.NewSimulator()
		rtt := 150 * time.Millisecond
		bdp := base / 8 * rtt.Seconds()
		p := netsim.NewPath(sim, netsim.PathSpec{Forward: []netsim.LinkConfig{
			{Name: "core", Rate: 1e9, Delay: rtt/2 - 5*time.Millisecond, QueueBytes: 64 << 20},
			{Name: "bneck", RateModel: netem.Step(base, after, time.Second), Delay: 5 * time.Millisecond, QueueBytes: int(bdp)},
		}})
		f := tcp.NewFlow(sim, tcp.DefaultConfig(), 1, p.Sender, tcp.NewDemux(p.Sender), p.Receiver, tcp.NewDemux(p.Receiver), size, nil)
		f.Sender.SetController(NewController(algo, f.Sender))
		f.StartAt(sim, 0)
		sim.Run(20 * time.Minute)
		if !f.Done() {
			return stepRun{}, fmt.Errorf("BtlBw %s %s: %w", direction, algo, runner.ErrIncomplete)
		}
		st := p.Fwd[1].Stats()
		loss := 0.0
		if off := st.EnqueuedPackets + st.DroppedPackets; off > 0 {
			loss = float64(st.DroppedPackets) / float64(off)
		}
		return stepRun{fct: f.FCT().Seconds(), loss: loss}, nil
	}, cfg.pool())
	for variant, o := range outs {
		if o.Err != nil {
			res.Failed = append(res.Failed, o.Err.Error())
			continue
		}
		if variant == 0 {
			res.FCTOff, res.LossOff = o.Value.fct, o.Value.loss
		} else {
			res.FCTOn, res.LossOn = o.Value.fct, o.Value.loss
		}
	}
	return res
}

// Render prints the comparison.
func (r BtlBwVariationResult) Render() string {
	s := fmt.Sprintf("Appendix B — BtlBw %s at t=1s: off FCT=%.3fs loss=%.3f%%; on FCT=%.3fs loss=%.3f%%\n",
		r.Direction, r.FCTOff, 100*r.LossOff, r.FCTOn, 100*r.LossOn)
	for _, f := range r.Failed {
		s += fmt.Sprintf("  FAILED %s\n", f)
	}
	return s
}

// SlowStartExitResult compares the three slow-start exit strategies —
// classic HyStart (Linux CUBIC), HyStart++ (RFC 9406), and SUSS's
// accelerated start with its modified HyStart — on one path.
type SlowStartExitResult struct {
	Scenario   string
	Variants   []string
	FCT        []float64
	Loss       []float64
	Incomplete int
}

// RunSlowStartExitComparison sweeps the three variants over iters
// downloads of size bytes on a large-BDP wired path, as one job slice.
func RunSlowStartExitComparison(size int64, iters int, seed int64, opts ...Option) SlowStartExitResult {
	cfg := newConfig(opts)
	sc := scenarios.New(scenarios.GoogleTokyo, netem.Wired, seed)
	res := SlowStartExitResult{Scenario: sc.Name()}
	algos := []Algo{Cubic, CubicHSPP, Suss}
	var jobs []runner.Job
	for _, algo := range algos {
		for it := 0; it < iters; it++ {
			jobs = append(jobs, runner.Job{Scenario: sc, Algo: algo, Size: size, Iter: it})
		}
	}
	out := runner.Run(cfg.ctx, jobs, cfg.pool())
	for vi, algo := range algos {
		b := summarizeBatch(out[vi*iters : (vi+1)*iters])
		res.Incomplete += b.incomplete
		res.Variants = append(res.Variants, algo.String())
		res.FCT = append(res.FCT, stats.Mean(b.fcts))
		res.Loss = append(res.Loss, b.meanLoss)
	}
	return res
}

// Render prints the comparison.
func (r SlowStartExitResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Slow-start exit comparison on %s\n", r.Scenario)
	fmt.Fprintf(&b, "  %-12s %10s %10s\n", "variant", "FCT", "loss")
	for i, v := range r.Variants {
		fmt.Fprintf(&b, "  %-12s %9.3fs %9.3f%%\n", v, r.FCT[i], 100*r.Loss[i])
	}
	if r.Incomplete > 0 {
		fmt.Fprintf(&b, "  WARNING: %d run(s) did not complete (excluded)\n", r.Incomplete)
	}
	return b.String()
}

// FutureWorkResult compares plain BBR with the §7 BBR+SUSS prototype
// across flow sizes on a large-BDP path.
type FutureWorkResult struct {
	Scenario string
	Sizes    []int64
	// FCT[size][0] = bbr, [1] = bbr+suss; Improvement per size.
	FCT         [][]float64
	Improvement []float64
	Incomplete  int
}

// RunFutureWorkBBRSuss sweeps flow sizes for BBR vs BBR+SUSS as one
// job slice.
func RunFutureWorkBBRSuss(sizes []int64, iters int, seed int64, opts ...Option) FutureWorkResult {
	cfg := newConfig(opts)
	sc := scenarios.New(scenarios.GoogleTokyo, netem.Wired, seed)
	res := FutureWorkResult{Scenario: sc.Name(), Sizes: sizes}
	algos := []Algo{BBR, BBRSuss}
	var jobs []runner.Job
	for _, size := range sizes {
		for _, algo := range algos {
			for it := 0; it < iters; it++ {
				jobs = append(jobs, runner.Job{Scenario: sc, Algo: algo, Size: size, Iter: it})
			}
		}
	}
	out := runner.Run(cfg.ctx, jobs, cfg.pool())
	k := 0
	for range sizes {
		var means []float64
		for range algos {
			b := summarizeBatch(out[k : k+iters])
			k += iters
			res.Incomplete += b.incomplete
			means = append(means, stats.Mean(b.fcts))
		}
		res.FCT = append(res.FCT, means)
		res.Improvement = append(res.Improvement, Improvement(means[0], means[1]))
	}
	return res
}

// Render prints the comparison.
func (r FutureWorkResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "§7 future work — BBR vs BBR+SUSS on %s\n", r.Scenario)
	fmt.Fprintf(&b, "  %-8s %10s %10s %12s\n", "size", "bbr", "bbr+suss", "improvement")
	for i, size := range r.Sizes {
		fmt.Fprintf(&b, "  %-8s %9.3fs %9.3fs %11.1f%%\n",
			SizeLabel(size), r.FCT[i][0], r.FCT[i][1], 100*r.Improvement[i])
	}
	if r.Incomplete > 0 {
		fmt.Fprintf(&b, "  WARNING: %d run(s) did not complete (excluded)\n", r.Incomplete)
	}
	return b.String()
}

// AQMResult compares the network-assisted path (a CoDel bottleneck,
// related work per RFC 8290) against SUSS's sender-side approach: both
// attack slow-start's standing-queue and burst-loss problems, one from
// the router, one from the end host.
type AQMResult struct {
	Variants   []string
	FCT        []float64
	Loss       []float64
	MaxRTTms   []float64
	Incomplete int
}

// RunAQMComparison downloads size bytes over a 100 Mbps × 100 ms path
// with a shallow-ish buffer under three regimes: CUBIC + drop-tail,
// CUBIC + CoDel, and CUBIC+SUSS + drop-tail. The variants × iters
// simulations run as one pool batch.
func RunAQMComparison(size int64, iters int, seed int64, opts ...Option) AQMResult {
	cfg := newConfig(opts)
	res := AQMResult{}
	type variant struct {
		name  string
		algo  Algo
		qdisc netsim.QdiscFactory
	}
	variants := []variant{
		{"cubic/drop-tail", Cubic, nil},
		{"cubic/codel", Cubic, netsim.CoDelFactory},
		{"suss/drop-tail", Suss, nil},
	}
	type aqmRun struct {
		fct, loss, maxRTTms float64
		hasLoss             bool
	}
	type item struct {
		v  variant
		it int
	}
	var items []item
	for _, v := range variants {
		for it := 0; it < iters; it++ {
			items = append(items, item{v, it})
		}
	}
	outs := runner.Map(cfg.ctx, items, func(_ context.Context, _ int, im item) (aqmRun, error) {
		sim := netsim.NewSimulator()
		rtt := 100 * time.Millisecond
		rate := 1e8
		bdp := rate / 8 * rtt.Seconds()
		p := netsim.NewPath(sim, netsim.PathSpec{Forward: []netsim.LinkConfig{
			{Name: "core", Rate: 1e9, Delay: rtt/2 - 5*time.Millisecond, QueueBytes: 64 << 20},
			{Name: "bneck", Rate: rate, Delay: 5 * time.Millisecond, QueueBytes: int(bdp), Qdisc: im.v.qdisc},
		}})
		f := tcp.NewFlow(sim, tcp.DefaultConfig(), 1, p.Sender, tcp.NewDemux(p.Sender), p.Receiver, tcp.NewDemux(p.Receiver), size, nil)
		f.Sender.SetController(NewController(im.v.algo, f.Sender))
		var maxRTT time.Duration
		f.Sender.OnAckTrace = func(now time.Duration, cwnd int64, srtt time.Duration, delivered int64) {
			if srtt > maxRTT {
				maxRTT = srtt
			}
		}
		f.StartAt(sim, 0)
		sim.Run(20 * time.Minute)
		if !f.Done() {
			return aqmRun{}, fmt.Errorf("AQM %s iter=%d: %w", im.v.name, im.it, runner.ErrIncomplete)
		}
		st := p.Fwd[1].Stats()
		r := aqmRun{fct: f.FCT().Seconds(), maxRTTms: float64(maxRTT) / 1e6}
		if off := st.EnqueuedPackets + st.DroppedPackets; off > 0 {
			r.loss = float64(st.DroppedPackets) / float64(off)
			r.hasLoss = true
		}
		return r, nil
	}, cfg.pool())

	for vi, v := range variants {
		var fcts, losses, maxRTTs []float64
		for _, o := range outs[vi*iters : (vi+1)*iters] {
			if o.Err != nil {
				res.Incomplete++
				continue
			}
			fcts = append(fcts, o.Value.fct)
			if o.Value.hasLoss {
				losses = append(losses, o.Value.loss)
			}
			maxRTTs = append(maxRTTs, o.Value.maxRTTms)
		}
		res.Variants = append(res.Variants, v.name)
		res.FCT = append(res.FCT, stats.Mean(fcts))
		res.Loss = append(res.Loss, stats.Mean(losses))
		res.MaxRTTms = append(res.MaxRTTms, stats.Mean(maxRTTs))
	}
	return res
}

// Render prints the comparison.
func (r AQMResult) Render() string {
	var b strings.Builder
	b.WriteString("Related work — AQM (CoDel) vs sender-side SUSS\n")
	fmt.Fprintf(&b, "  %-18s %10s %10s %12s\n", "variant", "FCT", "loss", "max sRTT")
	for i, v := range r.Variants {
		fmt.Fprintf(&b, "  %-18s %9.3fs %9.3f%% %10.1fms\n", v, r.FCT[i], 100*r.Loss[i], r.MaxRTTms[i])
	}
	if r.Incomplete > 0 {
		fmt.Fprintf(&b, "  WARNING: %d run(s) did not complete (excluded)\n", r.Incomplete)
	}
	return b.String()
}
