package experiments

import (
	"fmt"
	"strings"
	"time"

	"suss/internal/core"
	"suss/internal/netem"
	"suss/internal/netsim"
	"suss/internal/scenarios"
	"suss/internal/stats"
	"suss/internal/tcp"
)

// AblationResult compares SUSS variants on one path, isolating the
// design choices §4 argues for (clocking+pacing+guard) and App. A's
// kmax generalization.
type AblationResult struct {
	Name string
	// Variants and their mean FCT (s), mean loss rate, and peak
	// bottleneck queue (bytes).
	Variants []string
	FCT      []float64
	Loss     []float64
	PeakQ    []int
}

// sussVariant runs one configured SUSS download and reports FCT, loss
// and peak queue.
func sussVariant(sc scenarios.Scenario, opt core.Options, size int64, iters int) (fct, loss float64, peakQ int) {
	var fcts, losses []float64
	for it := 0; it < iters; it++ {
		run := sc
		run.Seed = sc.Seed*1000003 + int64(it)*7919 + 1
		sim := netsim.NewSimulator()
		p, _ := run.Build(sim)
		f := tcp.NewFlow(sim, tcp.DefaultConfig(), 1, p.Sender, tcp.NewDemux(p.Sender), p.Receiver, tcp.NewDemux(p.Receiver), size, nil)
		f.Sender.SetController(core.New(f.Sender, opt))
		f.StartAt(sim, 0)
		sim.Run(20 * time.Minute)
		if !f.Done() {
			panic("experiments: ablation flow did not complete")
		}
		last := p.Fwd[len(p.Fwd)-1]
		st := last.Stats()
		fcts = append(fcts, f.FCT().Seconds())
		offered := st.EnqueuedPackets + st.DroppedPackets
		if offered > 0 {
			losses = append(losses, float64(st.DroppedPackets+st.ErasedPackets)/float64(offered))
		}
		if st.MaxQueueBytes > peakQ {
			peakQ = st.MaxQueueBytes
		}
	}
	return stats.Mean(fcts), stats.Mean(losses), peakQ
}

// RunAblationMechanisms compares full SUSS against the clocking-only
// (no pacing period) and pacing-only (everything paced) ablations plus
// the no-guard variant, on a large-BDP 5G path.
func RunAblationMechanisms(size int64, iters int, seed int64) AblationResult {
	sc := scenarios.New(scenarios.GoogleTokyo, netem.NR5G, seed)
	sc.LastHop.BufferBDPs = 0.6 // make burst damage visible
	res := AblationResult{Name: "mechanisms"}
	cases := []struct {
		name string
		opt  core.Options
	}{
		{"full", core.DefaultOptions()},
		{"no-pacing (burst reds)", func() core.Options { o := core.DefaultOptions(); o.NoPacing = true; return o }()},
		{"pace-everything", func() core.Options { o := core.DefaultOptions(); o.PaceEverything = true; return o }()},
		{"no-guard", func() core.Options { o := core.DefaultOptions(); o.NoGuard = true; return o }()},
	}
	for _, c := range cases {
		fct, loss, q := sussVariant(sc, c.opt, size, iters)
		res.Variants = append(res.Variants, c.name)
		res.FCT = append(res.FCT, fct)
		res.Loss = append(res.Loss, loss)
		res.PeakQ = append(res.PeakQ, q)
	}
	return res
}

// RunAblationKmax sweeps the Appendix-A generalization kmax ∈ {1,2,3}.
func RunAblationKmax(size int64, iters int, seed int64) AblationResult {
	sc := scenarios.New(scenarios.GoogleTokyo, netem.Wired, seed)
	res := AblationResult{Name: "kmax"}
	for _, k := range []int{1, 2, 3} {
		opt := core.DefaultOptions()
		opt.Kmax = k
		fct, loss, q := sussVariant(sc, opt, size, iters)
		res.Variants = append(res.Variants, fmt.Sprintf("kmax=%d", k))
		res.FCT = append(res.FCT, fct)
		res.Loss = append(res.Loss, loss)
		res.PeakQ = append(res.PeakQ, q)
	}
	return res
}

// Render prints the comparison.
func (r AblationResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: %s\n", r.Name)
	fmt.Fprintf(&b, "  %-24s %10s %10s %12s\n", "variant", "FCT", "loss", "peak queue")
	for i, v := range r.Variants {
		fmt.Fprintf(&b, "  %-24s %9.3fs %9.3f%% %11dB\n", v, r.FCT[i], 100*r.Loss[i], r.PeakQ[i])
	}
	return b.String()
}

// BtlBwVariationResult reproduces Appendix B: a bandwidth step on the
// bottleneck mid-slow-start, with SUSS on and off.
type BtlBwVariationResult struct {
	// Step direction: "drop" halves the rate at 1 s, "rise" doubles it.
	Direction string
	FCTOff    float64
	FCTOn     float64
	LossOff   float64
	LossOn    float64
}

// RunBtlBwVariation runs the step experiment.
func RunBtlBwVariation(direction string, size int64, seed int64) BtlBwVariationResult {
	res := BtlBwVariationResult{Direction: direction}
	base, after := 2e8, 1e8
	if direction == "rise" {
		base, after = 1e8, 2e8
	}
	for variant := 0; variant < 2; variant++ {
		sim := netsim.NewSimulator()
		rtt := 150 * time.Millisecond
		bdp := base / 8 * rtt.Seconds()
		p := netsim.NewPath(sim, netsim.PathSpec{Forward: []netsim.LinkConfig{
			{Name: "core", Rate: 1e9, Delay: rtt/2 - 5*time.Millisecond, QueueBytes: 64 << 20},
			{Name: "bneck", RateModel: netem.Step(base, after, time.Second), Delay: 5 * time.Millisecond, QueueBytes: int(bdp)},
		}})
		f := tcp.NewFlow(sim, tcp.DefaultConfig(), 1, p.Sender, tcp.NewDemux(p.Sender), p.Receiver, tcp.NewDemux(p.Receiver), size, nil)
		algo := Cubic
		if variant == 1 {
			algo = Suss
		}
		f.Sender.SetController(NewController(algo, f.Sender))
		f.StartAt(sim, 0)
		sim.Run(20 * time.Minute)
		if !f.Done() {
			panic("experiments: BtlBw variation flow did not complete")
		}
		st := p.Fwd[1].Stats()
		loss := 0.0
		if off := st.EnqueuedPackets + st.DroppedPackets; off > 0 {
			loss = float64(st.DroppedPackets) / float64(off)
		}
		if variant == 0 {
			res.FCTOff, res.LossOff = f.FCT().Seconds(), loss
		} else {
			res.FCTOn, res.LossOn = f.FCT().Seconds(), loss
		}
	}
	return res
}

// Render prints the comparison.
func (r BtlBwVariationResult) Render() string {
	return fmt.Sprintf("Appendix B — BtlBw %s at t=1s: off FCT=%.3fs loss=%.3f%%; on FCT=%.3fs loss=%.3f%%\n",
		r.Direction, r.FCTOff, 100*r.LossOff, r.FCTOn, 100*r.LossOn)
}

// SlowStartExitResult compares the three slow-start exit strategies —
// classic HyStart (Linux CUBIC), HyStart++ (RFC 9406), and SUSS's
// accelerated start with its modified HyStart — on one path.
type SlowStartExitResult struct {
	Scenario string
	Variants []string
	FCT      []float64
	Loss     []float64
}

// RunSlowStartExitComparison sweeps the three variants over iters
// downloads of size bytes on a large-BDP wired path.
func RunSlowStartExitComparison(size int64, iters int, seed int64) SlowStartExitResult {
	sc := scenarios.New(scenarios.GoogleTokyo, netem.Wired, seed)
	res := SlowStartExitResult{Scenario: sc.Name()}
	for _, algo := range []Algo{Cubic, CubicHSPP, Suss} {
		var fcts, losses []float64
		for it := 0; it < iters; it++ {
			r := Download(sc, algo, size, it, nil)
			if !r.Completed {
				panic("experiments: slow-start comparison flow did not complete")
			}
			fcts = append(fcts, r.FCT.Seconds())
			losses = append(losses, r.LossRate)
		}
		res.Variants = append(res.Variants, algo.String())
		res.FCT = append(res.FCT, stats.Mean(fcts))
		res.Loss = append(res.Loss, stats.Mean(losses))
	}
	return res
}

// Render prints the comparison.
func (r SlowStartExitResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Slow-start exit comparison on %s\n", r.Scenario)
	fmt.Fprintf(&b, "  %-12s %10s %10s\n", "variant", "FCT", "loss")
	for i, v := range r.Variants {
		fmt.Fprintf(&b, "  %-12s %9.3fs %9.3f%%\n", v, r.FCT[i], 100*r.Loss[i])
	}
	return b.String()
}

// FutureWorkResult compares plain BBR with the §7 BBR+SUSS prototype
// across flow sizes on a large-BDP path.
type FutureWorkResult struct {
	Scenario string
	Sizes    []int64
	// FCT[size][0] = bbr, [1] = bbr+suss; Improvement per size.
	FCT         [][]float64
	Improvement []float64
}

// RunFutureWorkBBRSuss sweeps flow sizes for BBR vs BBR+SUSS.
func RunFutureWorkBBRSuss(sizes []int64, iters int, seed int64) FutureWorkResult {
	sc := scenarios.New(scenarios.GoogleTokyo, netem.Wired, seed)
	res := FutureWorkResult{Scenario: sc.Name(), Sizes: sizes}
	for _, size := range sizes {
		plain, _ := FCTs(sc, BBR, size, iters)
		boosted, _ := FCTs(sc, BBRSuss, size, iters)
		pm, bm := stats.Mean(plain), stats.Mean(boosted)
		res.FCT = append(res.FCT, []float64{pm, bm})
		res.Improvement = append(res.Improvement, Improvement(pm, bm))
	}
	return res
}

// Render prints the comparison.
func (r FutureWorkResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "§7 future work — BBR vs BBR+SUSS on %s\n", r.Scenario)
	fmt.Fprintf(&b, "  %-8s %10s %10s %12s\n", "size", "bbr", "bbr+suss", "improvement")
	for i, size := range r.Sizes {
		fmt.Fprintf(&b, "  %-8s %9.3fs %9.3fs %11.1f%%\n",
			SizeLabel(size), r.FCT[i][0], r.FCT[i][1], 100*r.Improvement[i])
	}
	return b.String()
}

// AQMResult compares the network-assisted path (a CoDel bottleneck,
// related work per RFC 8290) against SUSS's sender-side approach: both
// attack slow-start's standing-queue and burst-loss problems, one from
// the router, one from the end host.
type AQMResult struct {
	Variants []string
	FCT      []float64
	Loss     []float64
	MaxRTTms []float64
}

// RunAQMComparison downloads size bytes over a 100 Mbps × 100 ms path
// with a shallow-ish buffer under three regimes: CUBIC + drop-tail,
// CUBIC + CoDel, and CUBIC+SUSS + drop-tail.
func RunAQMComparison(size int64, iters int, seed int64) AQMResult {
	res := AQMResult{}
	type variant struct {
		name  string
		algo  Algo
		qdisc netsim.QdiscFactory
	}
	for _, v := range []variant{
		{"cubic/drop-tail", Cubic, nil},
		{"cubic/codel", Cubic, netsim.CoDelFactory},
		{"suss/drop-tail", Suss, nil},
	} {
		var fcts, losses, maxRTTs []float64
		for it := 0; it < iters; it++ {
			sim := netsim.NewSimulator()
			rtt := 100 * time.Millisecond
			rate := 1e8
			bdp := rate / 8 * rtt.Seconds()
			p := netsim.NewPath(sim, netsim.PathSpec{Forward: []netsim.LinkConfig{
				{Name: "core", Rate: 1e9, Delay: rtt/2 - 5*time.Millisecond, QueueBytes: 64 << 20},
				{Name: "bneck", Rate: rate, Delay: 5 * time.Millisecond, QueueBytes: int(bdp), Qdisc: v.qdisc},
			}})
			f := tcp.NewFlow(sim, tcp.DefaultConfig(), 1, p.Sender, tcp.NewDemux(p.Sender), p.Receiver, tcp.NewDemux(p.Receiver), size, nil)
			f.Sender.SetController(NewController(v.algo, f.Sender))
			var maxRTT time.Duration
			f.Sender.OnAckTrace = func(now time.Duration, cwnd int64, srtt time.Duration, delivered int64) {
				if srtt > maxRTT {
					maxRTT = srtt
				}
			}
			f.StartAt(sim, 0)
			sim.Run(20 * time.Minute)
			if !f.Done() {
				panic("experiments: AQM comparison flow did not complete")
			}
			st := p.Fwd[1].Stats()
			fcts = append(fcts, f.FCT().Seconds())
			if off := st.EnqueuedPackets + st.DroppedPackets; off > 0 {
				losses = append(losses, float64(st.DroppedPackets)/float64(off))
			}
			maxRTTs = append(maxRTTs, float64(maxRTT)/1e6)
		}
		res.Variants = append(res.Variants, v.name)
		res.FCT = append(res.FCT, stats.Mean(fcts))
		res.Loss = append(res.Loss, stats.Mean(losses))
		res.MaxRTTms = append(res.MaxRTTms, stats.Mean(maxRTTs))
	}
	return res
}

// Render prints the comparison.
func (r AQMResult) Render() string {
	var b strings.Builder
	b.WriteString("Related work — AQM (CoDel) vs sender-side SUSS\n")
	fmt.Fprintf(&b, "  %-18s %10s %10s %12s\n", "variant", "FCT", "loss", "max sRTT")
	for i, v := range r.Variants {
		fmt.Fprintf(&b, "  %-18s %9.3fs %9.3f%% %10.1fms\n", v, r.FCT[i], 100*r.Loss[i], r.MaxRTTms[i])
	}
	return b.String()
}
