package experiments

import (
	"fmt"
	"strings"
	"time"

	"suss/internal/core"
	"suss/internal/netem"
	"suss/internal/netsim"
	"suss/internal/scenarios"
	"suss/internal/tcp"
	"suss/internal/trace"
)

// Fig09Result reproduces Fig. 9 (cwnd and RTT dynamics with and
// without SUSS, 4G client ← US-East server) and Fig. 10 (total data
// delivered over time on the same path).
type Fig09Result struct {
	// Traces[0] is SUSS off, Traces[1] is SUSS on.
	Traces [2]*trace.FlowTrace
	// ExitCwnd is the cwnd (bytes) where exponential growth ended.
	ExitCwnd [2]int64
	// TimeToExitCwnd is when cwnd first reached ~90% of the common
	// exit window (the "half the time" claim of Fig. 9).
	TimeToExitCwnd [2]time.Duration
	// MaxSRTTDuringSS is the worst smoothed RTT before slow-start
	// exit: SUSS must not inflate it (Fig. 9 bottom).
	MaxSRTTDuringSS [2]time.Duration
	// DeliveredAt2s is Fig. 10's headline: bytes delivered two seconds
	// in (the paper reports ≈3× with SUSS).
	DeliveredAt2s [2]int64
	// GHistory is the measured growth factor sequence with SUSS on.
	GHistory []int
}

// RunFig09 traces both variants over the 4G scenario.
func RunFig09(size int64, seed int64) Fig09Result {
	var res Fig09Result
	for variant := 0; variant < 2; variant++ {
		sim := netsim.NewSimulator()
		sc := scenarios.New(scenarios.GoogleUSEast, netem.LTE4G, seed)
		p, _ := sc.Build(sim)
		f := tcp.NewFlow(sim, tcp.DefaultConfig(), 1, p.Sender, tcp.NewDemux(p.Sender), p.Receiver, tcp.NewDemux(p.Receiver), size, nil)
		algo := Cubic
		if variant == 1 {
			algo = Suss
		}
		ctrl := NewController(algo, f.Sender)
		f.Sender.SetController(ctrl)
		tr := trace.Attach(f.Sender, algo.String(), 5*time.Millisecond)

		var exitCwnd int64
		var exitAt time.Duration
		sim.StopWhen(func() bool {
			if exitCwnd == 0 && !ctrl.InSlowStart() {
				exitCwnd = ctrl.CwndBytes()
				exitAt = sim.Now()
			}
			return false
		})
		f.StartAt(sim, 0)
		sim.Run(5 * time.Minute)

		res.Traces[variant] = tr
		res.ExitCwnd[variant] = exitCwnd
		var maxRTT time.Duration
		for _, s := range tr.Samples {
			if s.T > exitAt && exitAt != 0 {
				break
			}
			if s.SRTT > maxRTT {
				maxRTT = s.SRTT
			}
		}
		res.MaxSRTTDuringSS[variant] = maxRTT
		res.DeliveredAt2s[variant] = tr.At(2 * time.Second).Delivered
		if s, ok := ctrl.(*core.Suss); ok {
			res.GHistory = s.Stats().GHistory
		}
	}
	// Time to reach 90% of the smaller exit window, comparable across
	// the two variants.
	target := res.ExitCwnd[0]
	if res.ExitCwnd[1] != 0 && (target == 0 || res.ExitCwnd[1] < target) {
		target = res.ExitCwnd[1]
	}
	target = target * 9 / 10
	for v := 0; v < 2; v++ {
		if t, ok := res.Traces[v].TimeToCwnd(target); ok {
			res.TimeToExitCwnd[v] = t
		}
	}
	return res
}

// Render prints the headline metrics.
func (r Fig09Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 9/10 — cwnd & RTT dynamics, US-East → 4G client\n")
	names := [2]string{"SUSS off", "SUSS on"}
	for v := 0; v < 2; v++ {
		fmt.Fprintf(&b, "  %-8s exit cwnd=%5d segs  time-to-exit-cwnd=%-10v maxRTT(SS)=%-10v delivered@2s=%.2f MB\n",
			names[v], r.ExitCwnd[v]/1448, r.TimeToExitCwnd[v], r.MaxSRTTDuringSS[v],
			float64(r.DeliveredAt2s[v])/(1<<20))
	}
	if r.TimeToExitCwnd[1] > 0 && r.TimeToExitCwnd[0] > 0 {
		fmt.Fprintf(&b, "  ramp speedup: %.2fx (paper: ≈2x)\n",
			float64(r.TimeToExitCwnd[0])/float64(r.TimeToExitCwnd[1]))
	}
	if r.DeliveredAt2s[0] > 0 {
		fmt.Fprintf(&b, "  delivered@2s gain: %.2fx (paper: ≈3x)\n",
			float64(r.DeliveredAt2s[1])/float64(r.DeliveredAt2s[0]))
	}
	fmt.Fprintf(&b, "  G history (SUSS): %v\n", r.GHistory)
	return b.String()
}
