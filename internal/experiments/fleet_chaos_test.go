package experiments

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"suss/internal/netem"
	"suss/internal/netsim"
	"suss/internal/runner"
)

// chaosImpair is the fleet chaos hook the CI cell runs: netem-style
// reordering on every aggregation downlink (per-link RNGs derived from
// the shard seed, so the schedule is deterministic) plus a 150 ms hard
// outage on the core bottleneck in the middle of the arrival window —
// every flow in flight at that moment loses its path and must recover.
func chaosImpair(env runner.FleetChaosEnv) {
	for i, l := range env.Tree.AggDown {
		rng := rand.New(rand.NewSource(env.Seed*31 + int64(i)*7919 + 13))
		l.AttachImpairments(netsim.NewImpairments(
			netem.NewReorder(0.02, time.Millisecond, 5*time.Millisecond, rng),
		))
	}
	env.Tree.Core.AttachImpairments(netsim.NewImpairments(
		&netem.Outage{Windows: []netem.Window{
			{Start: 300 * time.Millisecond, End: 450 * time.Millisecond},
		}},
	))
}

// TestFleetChaos runs the population comparison with impairments
// composed onto the tree links — the chaos-in-CI cell: a fleet under
// reordering and a mid-run access outage must not stall, must not
// error, and must still complete (nearly) every flow under the
// wall-clock watchdog; flows caught in the outage recover by
// retransmission instead of hanging the shard.
func TestFleetChaos(t *testing.T) {
	fc := FleetConfig{
		Flows:       600,
		Shards:      2,
		ArrivalRate: 300,
		Mix:         SmokeMix(),
		Seed:        5,
	}.Normalized()
	jobs := FleetJobs(fc)

	var shards [2][]runner.FleetResult
	for variant := range jobs {
		jobs[variant].Impair = chaosImpair
		jobs[variant].WallLimit = 2 * time.Minute
		shards[variant] = runner.RunFleet(context.Background(), jobs[variant], runner.Options{})
	}
	res := FleetFromShards(fc, shards, false)

	for _, err := range res.Errs {
		t.Errorf("shard failed under chaos: %v", err)
	}
	for variant := 0; variant < 2; variant++ {
		for _, sr := range shards[variant] {
			if sr.Stall != nil {
				t.Errorf("variant %d shard %d stalled: %v", variant, sr.Shard, sr.Stall)
			}
		}
		if lim := fc.Flows / 20; res.Incomplete[variant] > lim {
			t.Errorf("variant %d left %d/%d flows incomplete under chaos, want <= %d (95%% completion)",
				variant, res.Incomplete[variant], fc.Flows, lim)
		}
	}

	// The impairments must actually have engaged: the core outage shows
	// up in the per-cause link stats, and the same variant run on clean
	// links finishes the population with a different outcome.
	outage := 0
	for _, sr := range shards[0] {
		outage += sr.Core.OutagePackets
	}
	if outage == 0 {
		t.Error("core outage dropped no packets — the chaos hook did not engage")
	}
	clean := runner.RunFleet(context.Background(), FleetJobs(fc)[0], runner.Options{})
	if sig(shards[0]) == sig(clean) {
		t.Error("impaired and clean runs are identical — the chaos hook did not engage")
	}
	t.Logf("fleet chaos: incomplete off/on = %d/%d, core outage drops = %d",
		res.Incomplete[0], res.Incomplete[1], outage)
}

// sig folds a variant's flow records into a comparable fingerprint.
func sig(shards []runner.FleetResult) int64 {
	var s int64
	for _, sr := range shards {
		s += int64(sr.TotalDataDrops) * 1000003
		for _, f := range sr.Flows {
			s += int64(f.FCT) + int64(f.Retrans)*31
		}
	}
	return s
}
