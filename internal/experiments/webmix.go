package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"suss/internal/scenarios"
	"suss/internal/stats"
	"suss/internal/workload"
)

// WebMixResult measures SUSS on the traffic regime the paper's
// introduction motivates: a mice-dominated web mix sharing a
// bottleneck, where most flows live and die inside slow start.
type WebMixResult struct {
	Flows int
	// Per-variant (0 = SUSS off, 1 = on) FCT summaries in seconds.
	All   [2]stats.Summary
	Small [2]stats.Summary // flows ≤ 1 MB
	Large [2]stats.Summary // flows > 1 MB
	// MeanImprovement aggregates per-flow relative gains (same flow
	// sizes and arrival times under both variants).
	MeanImprovement   float64
	MedianImprovement float64
	SmallImprovement  float64
}

// RunWebMix launches n flows with WebMix sizes and Poisson arrivals
// across the local dumbbell's five pairs, once with CUBIC and once
// with CUBIC+SUSS, and compares per-flow FCTs.
func RunWebMix(n int, arrivalRate float64, seed int64) WebMixResult {
	rng := rand.New(rand.NewSource(seed))
	dist := workload.WebMix()
	sizes := make([]int64, n)
	for i := range sizes {
		sizes[i] = dist.Sample(rng)
	}
	arrivals := workload.Arrivals{Rate: arrivalRate}.Schedule(rng, n, 100*time.Millisecond)

	res := WebMixResult{Flows: n}
	var fcts [2][]float64
	for variant := 0; variant < 2; variant++ {
		algo := Cubic
		if variant == 1 {
			algo = Suss
		}
		tb := scenarios.DefaultTestbed(100*time.Millisecond, 1)
		specs := make([]TestbedFlow, n)
		for i := range specs {
			specs[i] = TestbedFlow{
				Pair:  i % tb.Pairs,
				Algo:  algo,
				Size:  sizes[i],
				Start: arrivals[i],
			}
		}
		horizon := arrivals[n-1] + 10*time.Minute
		run := RunTestbed(tb, specs, horizon, time.Second)
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		fcts[variant] = run.FlowFCTsSeconds(idx)

		var all, small, large []float64
		for i, f := range fcts[variant] {
			all = append(all, f)
			if sizes[i] <= 1<<20 {
				small = append(small, f)
			} else {
				large = append(large, f)
			}
		}
		res.All[variant] = stats.Summarize(all)
		res.Small[variant] = stats.Summarize(small)
		res.Large[variant] = stats.Summarize(large)
	}

	var gains, smallGains []float64
	for i := range sizes {
		g := Improvement(fcts[0][i], fcts[1][i])
		gains = append(gains, g)
		if sizes[i] <= 1<<20 {
			smallGains = append(smallGains, g)
		}
	}
	res.MeanImprovement = stats.Mean(gains)
	sort.Float64s(gains)
	res.MedianImprovement = stats.Percentile(gains, 50)
	res.SmallImprovement = stats.Mean(smallGains)
	return res
}

// Render prints the comparison.
func (r WebMixResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Web-mix workload — %d Poisson flows over the local testbed\n", r.Flows)
	row := func(label string, s [2]stats.Summary) {
		fmt.Fprintf(&b, "  %-14s off: mean=%.3fs p95=%.3fs   on: mean=%.3fs p95=%.3fs\n",
			label, s[0].Mean, s[0].P95, s[1].Mean, s[1].P95)
	}
	row("all flows", r.All)
	row("small (≤1MB)", r.Small)
	row("large (>1MB)", r.Large)
	fmt.Fprintf(&b, "  per-flow FCT gain: mean=%.1f%% median=%.1f%% small-flow mean=%.1f%%\n",
		100*r.MeanImprovement, 100*r.MedianImprovement, 100*r.SmallImprovement)
	return b.String()
}
