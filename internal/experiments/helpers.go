package experiments

import (
	"time"

	"suss/internal/netsim"
	"suss/internal/scenarios"
	"suss/internal/tcp"
	"suss/internal/trace"
)

// downloadTrace runs one download over a scenario and returns its
// delivery trace, sampled at every ACK so volume checkpoints (e.g.
// Fig. 13's "time to deliver N MB") are exact.
func downloadTrace(sc scenarios.Scenario, algo Algo, size int64) *trace.FlowTrace {
	sim := netsim.NewSimulator()
	p, _ := sc.Build(sim)
	f := tcp.NewFlow(sim, tcp.DefaultConfig(), 1, p.Sender, tcp.NewDemux(p.Sender), p.Receiver, tcp.NewDemux(p.Receiver), size, nil)
	f.Sender.SetController(NewController(algo, f.Sender))
	tr := trace.Attach(f.Sender, algo.String(), 0)
	f.StartAt(sim, 0)
	sim.Run(20 * time.Minute)
	return tr
}
