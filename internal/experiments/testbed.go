package experiments

import (
	"fmt"
	"time"

	"suss/internal/core"
	"suss/internal/netsim"
	"suss/internal/scenarios"
	"suss/internal/stats"
	"suss/internal/tcp"
)

// TestbedFlow describes one flow on the local dumbbell.
type TestbedFlow struct {
	// Pair selects the client-server pair (0-based).
	Pair int
	// Algo picks the congestion controller.
	Algo Algo
	// SussOpt overrides SUSS options when Algo == Suss (nil = default).
	SussOpt *SussOptions
	// Size in bytes; 0 means "unbounded" (runs until the horizon) and
	// is modeled as a flow far larger than the horizon can drain.
	Size int64
	// Start is the flow's start time.
	Start time.Duration
}

// TestbedRun holds the wired simulation and its measurement hooks.
type TestbedRun struct {
	Sim      *netsim.Simulator
	Dumbbell *netsim.Dumbbell
	Flows    []*tcp.Flow
	// Goodput bins per flow (delivered bytes added per bin).
	Bins []*stats.BinnedCounter
}

// RunTestbed builds the dumbbell, wires the flows, runs to the
// horizon, and returns the measurements. Each pair's hosts carry a
// demux so multiple (sequential) flows can share a pair.
func RunTestbed(tb scenarios.Testbed, specs []TestbedFlow, horizon, bin time.Duration) *TestbedRun {
	sim := netsim.NewSimulator()
	d := tb.Build(sim)

	srvMux := make([]*tcp.Demux, tb.Pairs)
	cliMux := make([]*tcp.Demux, tb.Pairs)
	for i := 0; i < tb.Pairs; i++ {
		srvMux[i] = tcp.NewDemux(d.Servers[i])
		cliMux[i] = tcp.NewDemux(d.Clients[i])
	}

	run := &TestbedRun{Sim: sim, Dumbbell: d}
	cfg := tcp.DefaultConfig()
	for i, spec := range specs {
		if spec.Pair < 0 || spec.Pair >= tb.Pairs {
			panic(fmt.Sprintf("experiments: flow %d uses pair %d of %d", i, spec.Pair, tb.Pairs))
		}
		size := spec.Size
		if size == 0 {
			// Effectively unbounded for any realistic horizon.
			size = 1 << 40
		}
		f := tcp.NewFlow(sim, cfg, netsim.FlowID(i+1),
			d.Servers[spec.Pair], srvMux[spec.Pair],
			d.Clients[spec.Pair], cliMux[spec.Pair],
			size, nil)
		if spec.Algo == Suss && spec.SussOpt != nil {
			f.Sender.SetController(core.New(f.Sender, *spec.SussOpt))
		} else {
			f.Sender.SetController(NewController(spec.Algo, f.Sender))
		}

		b := stats.NewBinnedCounter(bin)
		run.Bins = append(run.Bins, b)
		var lastDelivered int64
		f.Sender.OnAckTrace = func(now time.Duration, cwnd int64, srtt time.Duration, delivered int64) {
			b.Add(now, float64(delivered-lastDelivered))
			lastDelivered = delivered
		}
		f.StartAt(sim, spec.Start)
		run.Flows = append(run.Flows, f)
	}
	sim.Run(horizon)
	return run
}

// FlowFCTsSeconds returns the receiver-side FCTs of the selected flows
// (panics if one did not complete — size the horizon generously).
func (r *TestbedRun) FlowFCTsSeconds(idx []int) []float64 {
	var out []float64
	for _, i := range idx {
		f := r.Flows[i]
		if !f.Done() {
			panic(fmt.Sprintf("experiments: testbed flow %d did not complete", i))
		}
		out = append(out, f.FCT().Seconds())
	}
	return out
}
