package experiments

import (
	"fmt"
	"io"
	"strings"
	"time"

	"suss/internal/netem"
	"suss/internal/obs"
	"suss/internal/runner"
	"suss/internal/scenarios"
	"suss/internal/stats"
)

// Fig11Result reproduces Fig. 11 (FCT vs flow size for BBR, CUBIC with
// SUSS on, and CUBIC with SUSS off, on the Tokyo server across the
// four last-hop types) and, derived from it, Fig. 12 (the relative FCT
// improvement SUSS brings to CUBIC).
type Fig11Result struct {
	Server scenarios.Server
	Links  []netem.LinkType
	Sizes  []int64
	Algos  []Algo
	// FCT[link][size][algo] summarizes iters downloads (seconds).
	FCT [][][]stats.Summary
	// Improvement[link][size] is Fig. 12's (cubic−suss)/cubic.
	Improvement [][]float64
	// Incomplete counts downloads that never finished; they are
	// excluded from the summaries.
	Incomplete int
	// Ledgers[link] aggregates the cross-layer loss accounting over
	// every download of that link type (nil unless the sweep ran with
	// WithLossAccounting).
	Ledgers []obs.LossLedger
}

// Fig11Links is the sweep's last-hop column order.
func Fig11Links() []netem.LinkType {
	return []netem.LinkType{netem.NR5G, netem.Wired, netem.WiFi, netem.LTE4G}
}

// Fig11Algos is the sweep's algorithm row order.
func Fig11Algos() []Algo { return []Algo{BBR, Suss, Cubic} }

// Fig11Jobs declares the sweep — link types × flow sizes × algorithms ×
// iterations — as a plain job slice in the exact order Fig11FromResults
// consumes. Extracted so callers that execute jobs themselves (the
// experiment service caches them individually) build the identical
// matrix the in-process sweep runs.
func Fig11Jobs(server scenarios.Server, sizes []int64, iters int, seed int64) []runner.Job {
	var jobs []runner.Job
	for li, lt := range Fig11Links() {
		sc := scenarios.New(server, lt, seed+int64(li))
		for _, size := range sizes {
			for _, algo := range Fig11Algos() {
				for it := 0; it < iters; it++ {
					jobs = append(jobs, runner.Job{Scenario: sc, Algo: algo, Size: size, Iter: it})
				}
			}
		}
	}
	return jobs
}

// RunFig11 runs the whole sweep as one batch on the worker pool and
// aggregates the results back into the figure's grid.
func RunFig11(server scenarios.Server, sizes []int64, iters int, seed int64, opts ...Option) Fig11Result {
	cfg := newConfig(opts)
	jobs := Fig11Jobs(server, sizes, iters, seed)
	for i := range jobs {
		jobs[i].Observe = cfg.lossAcct
		jobs[i].Domains = cfg.domains
	}
	out := runner.Run(cfg.ctx, jobs, cfg.pool())
	return Fig11FromResults(server, sizes, iters, out, cfg.lossAcct)
}

// Fig11FromResults aggregates a result slice laid out like Fig11Jobs
// into the figure's grid. lossAcct aggregates the per-download ledgers
// (results must then carry them, i.e. the jobs ran observed).
func Fig11FromResults(server scenarios.Server, sizes []int64, iters int, out []runner.Result, lossAcct bool) Fig11Result {
	res := Fig11Result{
		Server: server,
		Links:  Fig11Links(),
		Sizes:  sizes,
		Algos:  Fig11Algos(),
	}
	if want := len(res.Links) * len(sizes) * len(res.Algos) * iters; len(out) != want {
		panic(fmt.Sprintf("experiments: Fig11FromResults got %d results, want %d", len(out), want))
	}
	if lossAcct {
		res.Ledgers = make([]obs.LossLedger, len(res.Links))
	}

	k := 0
	for li := range res.Links {
		var bySize [][]stats.Summary
		var imp []float64
		for range sizes {
			var byAlgo []stats.Summary
			var cubicMean, sussMean float64
			for _, algo := range res.Algos {
				batch := out[k : k+iters]
				if lossAcct {
					for _, r := range batch {
						if r.Ledger != nil {
							res.Ledgers[li].Add(*r.Ledger)
						}
					}
				}
				b := summarizeBatch(batch)
				k += iters
				res.Incomplete += b.incomplete
				s := stats.Summarize(b.fcts)
				byAlgo = append(byAlgo, s)
				switch algo {
				case Cubic:
					cubicMean = s.Mean
				case Suss:
					sussMean = s.Mean
				}
			}
			bySize = append(bySize, byAlgo)
			imp = append(imp, Improvement(cubicMean, sussMean))
		}
		res.FCT = append(res.FCT, bySize)
		res.Improvement = append(res.Improvement, imp)
	}
	return res
}

// Render prints the FCT grid plus the Fig. 12 improvement rows.
func (r Fig11Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 11/12 — FCT vs flow size, server %s\n", r.Server)
	for li, lt := range r.Links {
		fmt.Fprintf(&b, "  last hop %s:\n", lt)
		fmt.Fprintf(&b, "    %-8s", "size")
		for _, a := range r.Algos {
			fmt.Fprintf(&b, " %12s", a)
		}
		fmt.Fprintf(&b, " %12s\n", "improvement")
		for si, size := range r.Sizes {
			fmt.Fprintf(&b, "    %-8s", SizeLabel(size))
			for ai := range r.Algos {
				s := r.FCT[li][si][ai]
				fmt.Fprintf(&b, " %8.3fs±%.2f", s.Mean, s.StdDev)
			}
			fmt.Fprintf(&b, " %11.1f%%\n", 100*r.Improvement[li][si])
		}
	}
	if r.Incomplete > 0 {
		fmt.Fprintf(&b, "  WARNING: %d download(s) did not complete (excluded)\n", r.Incomplete)
	}
	if len(r.Ledgers) > 0 {
		fmt.Fprintf(&b, "  loss accounting (all algos × sizes × iters per link type):\n")
		for li, lt := range r.Links {
			l := r.Ledgers[li]
			fmt.Fprintf(&b, "    %-6s sent=%d retrans=%d (fast=%d rto=%d tlp=%d) detected=%d spurious=%d rtos=%d tlps=%d path_drops=%d erasures=%d\n",
				lt, l.SegsSent, l.SegsRetrans, l.RetransFast, l.RetransRTO, l.RetransTLP,
				l.LossDetected, l.SpuriousRetrans, l.RTOFires, l.TLPFires, l.PathDataDrops, l.PathErasures)
			for _, p := range l.Check() {
				fmt.Fprintf(&b, "      INCONSISTENT: %s\n", p)
			}
		}
	}
	return b.String()
}

// SmallFlowImprovement returns the mean Fig. 12 improvement over sizes
// ≤ maxSize (the paper's ">20% for flows ≤2 MB" claim).
func (r Fig11Result) SmallFlowImprovement(maxSize int64) float64 {
	var xs []float64
	for li := range r.Links {
		for si, size := range r.Sizes {
			if size <= maxSize {
				xs = append(xs, r.Improvement[li][si])
			}
		}
	}
	return stats.Mean(xs)
}

// Fig13Result reproduces Fig. 13: a 100 MB cloud-to-cloud transfer
// (US-East → Sydney) where SUSS's gain appears in the early megabytes
// and tapers to nothing.
type Fig13Result struct {
	Size int64
	// Checkpoints are delivered-volume marks (bytes).
	Checkpoints []int64
	// TimeAt[variant][i] is when the variant (0=off, 1=on) had
	// delivered Checkpoints[i].
	TimeAt [2][]time.Duration
	// ImprovementAt[i] is the relative time saving at checkpoint i.
	ImprovementAt []float64
	// TotalImprovement is the end-to-end FCT gain (should be ≈0).
	TotalImprovement float64
}

// RunFig13 runs the large-flow experiment.
func RunFig13(seed int64) Fig13Result {
	size := int64(100 << 20)
	res := Fig13Result{Size: size}
	for _, mb := range []int64{1, 2, 5, 10, 20, 50, 100} {
		res.Checkpoints = append(res.Checkpoints, mb<<20)
	}

	// US-East ↔ Sydney cloud-to-cloud: 200 ms RTT at a mature
	// intercontinental 100 Mbps, so the 100 MB transfer spends most of
	// its life in steady state and the slow-start saving washes out,
	// as in the paper.
	sc := scenarios.Scenario{
		Server:   scenarios.GoogleUSEast,
		Link:     netem.Wired,
		RTT:      200 * time.Millisecond,
		LastHop:  netem.DefaultProfile(netem.Wired, 1e8),
		CoreRate: 1e9,
		Seed:     seed,
	}
	for variant := 0; variant < 2; variant++ {
		algo := Cubic
		if variant == 1 {
			algo = Suss
		}
		tr := downloadTrace(sc, algo, size)
		for _, cp := range res.Checkpoints {
			t, ok := tr.TimeToDeliver(cp)
			if !ok {
				t = -1
			}
			res.TimeAt[variant] = append(res.TimeAt[variant], t)
		}
	}
	for i := range res.Checkpoints {
		off, on := res.TimeAt[0][i], res.TimeAt[1][i]
		res.ImprovementAt = append(res.ImprovementAt, Improvement(off.Seconds(), on.Seconds()))
	}
	res.TotalImprovement = res.ImprovementAt[len(res.ImprovementAt)-1]
	return res
}

// Render prints improvement vs progress.
func (r Fig13Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 13 — 100 MB US-East → Sydney, SUSS gain vs transfer progress\n")
	for i, cp := range r.Checkpoints {
		fmt.Fprintf(&b, "  at %6s: off=%-10v on=%-10v improvement=%5.1f%%\n",
			SizeLabel(cp), r.TimeAt[0][i].Round(time.Millisecond), r.TimeAt[1][i].Round(time.Millisecond),
			100*r.ImprovementAt[i])
	}
	fmt.Fprintf(&b, "  total FCT improvement: %.1f%% (paper: tapers to ≈0)\n", 100*r.TotalImprovement)
	return b.String()
}

// WriteCSV emits the Fig. 11/12 grid as CSV rows:
// link,size_bytes,algo,fct_mean_s,fct_std_s,improvement.
func (r Fig11Result) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "link,size_bytes,algo,fct_mean_s,fct_std_s,improvement"); err != nil {
		return err
	}
	for li, lt := range r.Links {
		for si, size := range r.Sizes {
			for ai, a := range r.Algos {
				s := r.FCT[li][si][ai]
				if _, err := fmt.Fprintf(w, "%s,%d,%s,%.6f,%.6f,%.4f\n",
					lt, size, a, s.Mean, s.StdDev, r.Improvement[li][si]); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
