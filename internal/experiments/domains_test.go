package experiments

import (
	"bytes"
	"strings"
	"testing"

	"suss/internal/scenarios"
)

// TestFig11DomainsInvariance pins the sweep-level determinism
// contract of parallel event domains: the Fig. 11 grid rendered from
// cluster-split simulations is byte-identical to the monolithic one.
func TestFig11DomainsInvariance(t *testing.T) {
	sizes := []int64{256 << 10, 512 << 10}
	mono := RunFig11(scenarios.GoogleTokyo, sizes, 2, 1, WithWorkers(2))
	dom := RunFig11(scenarios.GoogleTokyo, sizes, 2, 1, WithWorkers(2), WithDomains(2))

	if mono.Incomplete != 0 || dom.Incomplete != 0 {
		t.Fatalf("incomplete downloads: mono=%d domains=%d", mono.Incomplete, dom.Incomplete)
	}
	if a, b := mono.Render(), dom.Render(); a != b {
		t.Errorf("rendered output differs with domains:\n--- domains=1\n%s--- domains=2\n%s", a, b)
	}
	var mb, db bytes.Buffer
	if err := mono.WriteCSV(&mb); err != nil {
		t.Fatal(err)
	}
	if err := dom.WriteCSV(&db); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mb.Bytes(), db.Bytes()) {
		t.Error("fig11 CSV bytes differ with domains")
	}
}

// TestFleetDomainsInvariance runs a small fleet population with each
// shard split across event domains and requires the merged per-class
// CDF bytes to match the monolithic run.
//
// Two domains (all aggregation subtrees in one, trunk/root/servers in
// the other) is the widest split with a structural byte-equality
// guarantee on a saturated symmetric tree: every frontier pair then
// has a single source domain, so the per-pair emission sequence is
// exactly the monolithic arm order even when ACK arrivals phase-lock
// to the core's serialization grid. Wider splits break such exact-tie
// collisions by domain ID instead (still deterministic, shifting the
// affected delivery by one ACK serialization quantum); the tie-free
// wide-split differential lives in the runner package.
func TestFleetDomainsInvariance(t *testing.T) {
	fc := DefaultFleetConfig(7)
	fc.Flows = 800
	fc.Shards = 2
	var mono, dom strings.Builder
	if err := RunFleet(fc, WithWorkers(2)).WriteCSV(&mono); err != nil {
		t.Fatal(err)
	}
	if err := RunFleet(fc, WithWorkers(2), WithDomains(2)).WriteCSV(&dom); err != nil {
		t.Fatal(err)
	}
	if mono.String() != dom.String() {
		t.Fatal("fleet CSV differs between monolithic and 2-domain shards")
	}
}
