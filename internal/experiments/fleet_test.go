package experiments

import (
	"strings"
	"testing"
)

// TestFleetSmoke is the CI fleet gate (`make fleet-smoke`): a ≥10k-flow
// population over ≥4 shards must run seconds-scale, produce identical
// merged per-class FCT CDF bytes at different worker counts (the
// determinism contract sharding must not break), and report the
// SUSS-on vs SUSS-off small-flow delta.
func TestFleetSmoke(t *testing.T) {
	fc := DefaultFleetConfig(1)
	if testing.Short() {
		fc.Flows = 2000
	}
	if fc.Flows >= 10000 && fc.Shards < 4 {
		t.Fatalf("smoke config must shard: %d shards", fc.Shards)
	}

	seq := RunFleet(fc, WithWorkers(1))
	par := RunFleet(fc, WithWorkers(4))
	for _, r := range [2]FleetResult{seq, par} {
		if len(r.Errs) > 0 {
			t.Fatalf("shard errors: %v", r.Errs)
		}
	}

	var seqCSV, parCSV strings.Builder
	if err := seq.WriteCSV(&seqCSV); err != nil {
		t.Fatal(err)
	}
	if err := par.WriteCSV(&parCSV); err != nil {
		t.Fatal(err)
	}
	if seqCSV.String() != parCSV.String() {
		t.Fatal("merged per-class CDF CSV differs between 1 and 4 workers")
	}

	total := 0
	for _, c := range seq.Classes {
		total += c.Flows
	}
	if total != fc.Flows {
		t.Fatalf("population accounted %d flows, want %d", total, fc.Flows)
	}
	// The population must actually finish under smoke load; a few
	// stragglers at the horizon are tolerable, mass failure is not.
	if n := seq.Incomplete[0] + seq.Incomplete[1]; n > fc.Flows/100 {
		t.Fatalf("%d flow-runs incomplete (>1%% of population)", n)
	}
	if seq.Jain[0] <= 0 || seq.Jain[1] <= 0 {
		t.Fatal("Jain indices missing")
	}

	t.Logf("small-flow mean-FCT improvement (SUSS on vs off): %.1f%%", 100*seq.SmallImprovement)
	t.Logf("all-flow improvement: %.1f%%  Jain off/on: %.3f/%.3f  core loss off/on: %.3f%%/%.3f%%",
		100*seq.AllImprovement, seq.Jain[0], seq.Jain[1], 100*seq.CoreLossRate[0], 100*seq.CoreLossRate[1])
}

// The CSV must also be stable across repeated runs in-process (no
// map-order or pointer-identity leaks into the output).
func TestFleetCSVStableAcrossRuns(t *testing.T) {
	fc := DefaultFleetConfig(7)
	fc.Flows = 800
	fc.Shards = 4
	var a, b strings.Builder
	if err := RunFleet(fc, WithWorkers(2)).WriteCSV(&a); err != nil {
		t.Fatal(err)
	}
	if err := RunFleet(fc, WithWorkers(3)).WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("fleet CSV changed between identical runs")
	}
	if !strings.HasPrefix(a.String(), "variant,class,quantile,fct_s\n") {
		t.Fatalf("unexpected CSV header: %q", a.String()[:40])
	}
	if !strings.Contains(a.String(), "on,web,0.5,") {
		t.Error("CSV missing on/web median row")
	}
}
