package experiments

import (
	"fmt"
	"io"
	"strings"

	"suss/internal/runner"
	"suss/internal/scenarios"
	"suss/internal/stats"
)

// MatrixCell holds one scenario's sweep results (one cell of the 7×4
// internet matrix), covering both Fig. 18 (FCT + improvement) and
// Fig. 17 (loss rates).
type MatrixCell struct {
	Scenario scenarios.Scenario
	Sizes    []int64
	// FCT[size][algo] in seconds, algos ordered as Algos.
	Algos []Algo
	FCT   [][]stats.Summary
	// Improvement[size]: SUSS vs CUBIC.
	Improvement []float64
	// Loss[size][algo]: mean loss rate.
	Loss [][]float64
	// Incomplete counts downloads that never finished; they are
	// excluded from the summaries.
	Incomplete int
}

// MatrixResult is the full 28-scenario sweep.
type MatrixResult struct {
	Cells []MatrixCell
}

// matrixAlgos orders each cell's algorithm columns. Reno rides along
// as the classic-AIMD yardstick; the first three columns keep their
// order so existing readers of the CSV stay aligned.
var matrixAlgos = []Algo{BBR, Suss, Cubic, Reno}

// cellJobs declares one scenario cell's sweep: sizes × algos × iters.
func cellJobs(sc scenarios.Scenario, sizes []int64, iters int) []runner.Job {
	var jobs []runner.Job
	for _, size := range sizes {
		for _, algo := range matrixAlgos {
			for it := 0; it < iters; it++ {
				jobs = append(jobs, runner.Job{Scenario: sc, Algo: algo, Size: size, Iter: it})
			}
		}
	}
	return jobs
}

// buildCell aggregates a cell's job results (ordered as cellJobs).
func buildCell(sc scenarios.Scenario, sizes []int64, iters int, out []runner.Result) MatrixCell {
	cell := MatrixCell{
		Scenario: sc,
		Sizes:    sizes,
		Algos:    matrixAlgos,
	}
	k := 0
	for range sizes {
		var fcts []stats.Summary
		var losses []float64
		var cubicMean, sussMean float64
		for _, algo := range cell.Algos {
			b := summarizeBatch(out[k : k+iters])
			k += iters
			cell.Incomplete += b.incomplete
			s := stats.Summarize(b.fcts)
			fcts = append(fcts, s)
			losses = append(losses, b.meanLoss)
			switch algo {
			case Cubic:
				cubicMean = s.Mean
			case Suss:
				sussMean = s.Mean
			}
		}
		cell.FCT = append(cell.FCT, fcts)
		cell.Loss = append(cell.Loss, losses)
		cell.Improvement = append(cell.Improvement, Improvement(cubicMean, sussMean))
	}
	return cell
}

// RunMatrix sweeps all 28 scenarios as a single job batch — every
// (scenario, size, algo, iteration) download fans out across the
// worker pool at once. Fig. 17 uses the loss columns, Fig. 18 the FCT
// and improvement columns.
func RunMatrix(sizes []int64, iters int, seed int64, opts ...Option) MatrixResult {
	cfg := newConfig(opts)
	scs := scenarios.All(seed)
	var jobs []runner.Job
	for _, sc := range scs {
		jobs = append(jobs, cellJobs(sc, sizes, iters)...)
	}
	out := runner.Run(cfg.ctx, jobs, cfg.pool())

	var res MatrixResult
	per := len(sizes) * len(matrixAlgos) * iters
	for ci, sc := range scs {
		res.Cells = append(res.Cells, buildCell(sc, sizes, iters, out[ci*per:(ci+1)*per]))
	}
	return res
}

// RunMatrixCell sweeps one scenario.
func RunMatrixCell(sc scenarios.Scenario, sizes []int64, iters int, opts ...Option) MatrixCell {
	cfg := newConfig(opts)
	return buildCell(sc, sizes, iters, runner.Run(cfg.ctx, cellJobs(sc, sizes, iters), cfg.pool()))
}

// Render prints a cell in Fig. 18's per-panel format.
func (c MatrixCell) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "[%s] %s (RTT %v, BtlBw %.0f Mbps)\n",
		c.Scenario.ID(), c.Scenario.Name(), c.Scenario.RTT, c.Scenario.BtlBw()/1e6)
	fmt.Fprintf(&b, "  %-8s", "size")
	for _, a := range c.Algos {
		fmt.Fprintf(&b, " %10s", a)
	}
	fmt.Fprintf(&b, " %9s  %s\n", "improve", "loss(bbr/suss/cubic)")
	for si, size := range c.Sizes {
		fmt.Fprintf(&b, "  %-8s", SizeLabel(size))
		for ai := range c.Algos {
			fmt.Fprintf(&b, " %9.2fs", c.FCT[si][ai].Mean)
		}
		fmt.Fprintf(&b, " %8.1f%%  %.2f%%/%.2f%%/%.2f%%\n",
			100*c.Improvement[si],
			100*c.Loss[si][0], 100*c.Loss[si][1], 100*c.Loss[si][2])
	}
	if c.Incomplete > 0 {
		fmt.Fprintf(&b, "  WARNING: %d download(s) did not complete (excluded)\n", c.Incomplete)
	}
	return b.String()
}

// Incomplete sums the non-completing downloads across cells.
func (r MatrixResult) Incomplete() int {
	n := 0
	for _, c := range r.Cells {
		n += c.Incomplete
	}
	return n
}

// Render prints every cell.
func (r MatrixResult) Render() string {
	var b strings.Builder
	b.WriteString("Fig. 17/18 — all 28 internet scenarios\n")
	for _, c := range r.Cells {
		b.WriteString(c.Render())
	}
	b.WriteString(r.Summary())
	return b.String()
}

// Summary prints the headline aggregate: how many scenarios SUSS wins
// against plain CUBIC, and the small-flow improvement distribution.
func (r MatrixResult) Summary() string {
	wins, total := 0, 0
	var smallImp []float64
	for _, c := range r.Cells {
		cellWin := true
		for si, size := range c.Sizes {
			if c.Improvement[si] < 0 {
				cellWin = false
			}
			if size <= 2<<20 {
				smallImp = append(smallImp, c.Improvement[si])
			}
		}
		if cellWin {
			wins++
		}
		total++
	}
	s := stats.Summarize(smallImp)
	return fmt.Sprintf("summary: SUSS ≥ CUBIC in %d/%d scenarios; small-flow (≤2MB) improvement mean %.1f%% (min %.1f%%, max %.1f%%)\n",
		wins, total, 100*s.Mean, 100*s.Min, 100*s.Max)
}

// WriteCSV emits the 28-scenario matrix as CSV rows:
// cell,scenario,rtt_ms,btlbw_mbps,size_bytes,algo,fct_mean_s,loss,improvement.
func (r MatrixResult) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "cell,scenario,rtt_ms,btlbw_mbps,size_bytes,algo,fct_mean_s,loss,improvement"); err != nil {
		return err
	}
	for _, c := range r.Cells {
		for si, size := range c.Sizes {
			for ai, a := range c.Algos {
				if _, err := fmt.Fprintf(w, "%s,%s,%.0f,%.0f,%d,%s,%.6f,%.6f,%.4f\n",
					c.Scenario.ID(), c.Scenario.Name(),
					float64(c.Scenario.RTT)/1e6, c.Scenario.BtlBw()/1e6,
					size, a, c.FCT[si][ai].Mean, c.Loss[si][ai], c.Improvement[si]); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
