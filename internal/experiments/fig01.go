package experiments

import (
	"fmt"
	"strings"
	"time"

	"suss/internal/netem"
	"suss/internal/netsim"
	"suss/internal/scenarios"
	"suss/internal/tcp"
	"suss/internal/trace"
)

// Fig01Result reproduces Fig. 1: a file download from a US cloud
// server to a NZ PC under CUBIC and BBRv2, showing slow-start
// under-utilization against the optimal rate θ = cwnd*/RTT.
type Fig01Result struct {
	Algos []Algo
	// Theta is the steady-state delivery rate (bits/sec) per algo.
	Theta []float64
	// DeliveredAt has, per algo, delivered MB at the checkpoints.
	Checkpoints []time.Duration
	DeliveredAt [][]float64
	// OptimalAt is θ·t in MB (the dashed green line), per algo.
	OptimalAt [][]float64
	// RampLoss is the volume (MB) the slow start left on the table:
	// max over checkpoints of optimal − delivered.
	RampLoss []float64
}

// RunFig01 downloads size bytes over a 100 Mbps, 190 ms-RTT wired
// path (US-East → NZ) with CUBIC and BBRv2, tracing delivery.
func RunFig01(size int64, seed int64) Fig01Result {
	res := Fig01Result{
		Algos:       []Algo{Cubic, BBR2},
		Checkpoints: []time.Duration{500 * time.Millisecond, time.Second, 2 * time.Second, 3 * time.Second, 5 * time.Second, 8 * time.Second},
	}
	for _, algo := range res.Algos {
		sim := netsim.NewSimulator()
		sc := scenarios.Scenario{
			Server:   scenarios.GoogleUSEast,
			Link:     netem.Wired,
			RTT:      190 * time.Millisecond,
			LastHop:  netem.DefaultProfile(netem.Wired, 1e8),
			CoreRate: 1e9,
			Seed:     seed,
		}
		p, _ := sc.Build(sim)
		f := tcp.NewFlow(sim, tcp.DefaultConfig(), 1, p.Sender, tcp.NewDemux(p.Sender), p.Receiver, tcp.NewDemux(p.Receiver), size, nil)
		f.Sender.SetController(NewController(algo, f.Sender))
		tr := trace.Attach(f.Sender, algo.String(), 10*time.Millisecond)
		f.StartAt(sim, 0)
		sim.Run(5 * time.Minute)

		// θ: delivery rate over the steady half of the transfer.
		half := tr.At(f.CompletedAt / 2)
		end := tr.Samples[len(tr.Samples)-1]
		theta := float64(end.Delivered-half.Delivered) * 8 / (end.T - half.T).Seconds()
		res.Theta = append(res.Theta, theta)

		var got, opt []float64
		var worst float64
		for _, cp := range res.Checkpoints {
			d := float64(tr.At(cp).Delivered) / (1 << 20)
			o := theta / 8 * cp.Seconds() / (1 << 20)
			if o > float64(size)/(1<<20) {
				o = float64(size) / (1 << 20)
			}
			got = append(got, d)
			opt = append(opt, o)
			if o-d > worst {
				worst = o - d
			}
		}
		res.DeliveredAt = append(res.DeliveredAt, got)
		res.OptimalAt = append(res.OptimalAt, opt)
		res.RampLoss = append(res.RampLoss, worst)
	}
	return res
}

// Render prints the figure as rows.
func (r Fig01Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 1 — slow-start under-utilization (100 Mbps, 190 ms RTT)\n")
	for i, a := range r.Algos {
		fmt.Fprintf(&b, "  %-10s theta=%.1f Mbps  ramp deficit=%.1f MB\n", a, r.Theta[i]/1e6, r.RampLoss[i])
		for j, cp := range r.Checkpoints {
			fmt.Fprintf(&b, "    t=%-6s delivered=%6.2f MB  optimal=%6.2f MB\n",
				cp, r.DeliveredAt[i][j], r.OptimalAt[i][j])
		}
	}
	return b.String()
}
