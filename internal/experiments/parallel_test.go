package experiments

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"suss/internal/netem"
	"suss/internal/scenarios"
	"suss/internal/stats"
)

// TestRunFig11DeterministicAcrossWorkers is the tested invariant the
// parallel engine promises: because every job is instance-seeded and
// results are collected by job index, the rendered output and the CSV
// bytes are identical with 1 worker and with a full pool.
func TestRunFig11DeterministicAcrossWorkers(t *testing.T) {
	sizes := []int64{256 << 10, 512 << 10}
	seq := RunFig11(scenarios.GoogleTokyo, sizes, 2, 1, WithWorkers(1))
	par := RunFig11(scenarios.GoogleTokyo, sizes, 2, 1, WithWorkers(4))

	if seq.Incomplete != 0 || par.Incomplete != 0 {
		t.Fatalf("incomplete downloads: seq=%d par=%d", seq.Incomplete, par.Incomplete)
	}
	if a, b := seq.Render(), par.Render(); a != b {
		t.Errorf("rendered output differs across worker counts:\n--- workers=1\n%s--- workers=4\n%s", a, b)
	}
	var sb, pb bytes.Buffer
	if err := seq.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if err := par.WriteCSV(&pb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sb.Bytes(), pb.Bytes()) {
		t.Error("CSV bytes differ across worker counts")
	}
}

func TestFCTsParallelMatchesSequential(t *testing.T) {
	sc := scenarios.New(scenarios.GoogleTokyo, netem.LTE4G, 3)
	a, lossA, errA := FCTs(sc, Suss, 512<<10, 4, WithWorkers(1))
	b, lossB, errB := FCTs(sc, Suss, 512<<10, 4, WithWorkers(4))
	if errA != nil || errB != nil {
		t.Fatal(errA, errB)
	}
	if len(a) != 4 || len(b) != 4 {
		t.Fatalf("lengths: %d, %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("fct[%d] differs: %v vs %v", i, a[i], b[i])
		}
	}
	if lossA != lossB {
		t.Errorf("mean loss differs: %v vs %v", lossA, lossB)
	}
}

func TestFCTsCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := FCTs(scenarios.New(scenarios.GoogleTokyo, netem.Wired, 1), Cubic, 1<<20, 3,
		WithContext(ctx), WithWorkers(2))
	if err == nil {
		t.Fatal("cancelled sweep should report an error")
	}
}

// TestFig11WriteCSVGolden pins the exact CSV encoding so downstream
// plotting scripts can rely on it.
func TestFig11WriteCSVGolden(t *testing.T) {
	r := Fig11Result{
		Server: scenarios.GoogleTokyo,
		Links:  []netem.LinkType{netem.Wired},
		Sizes:  []int64{1 << 20},
		Algos:  []Algo{BBR, Suss, Cubic},
		FCT: [][][]stats.Summary{{{
			{Mean: 1.5, StdDev: 0.25},
			{Mean: 0.75, StdDev: 0.125},
			{Mean: 1, StdDev: 0.5},
		}}},
		Improvement: [][]float64{{0.25}},
	}
	var b bytes.Buffer
	if err := r.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	want := "link,size_bytes,algo,fct_mean_s,fct_std_s,improvement\n" +
		"wired,1048576,bbr,1.500000,0.250000,0.2500\n" +
		"wired,1048576,cubic+suss,0.750000,0.125000,0.2500\n" +
		"wired,1048576,cubic,1.000000,0.500000,0.2500\n"
	if got := b.String(); got != want {
		t.Errorf("CSV mismatch:\n got: %q\nwant: %q", got, want)
	}
}

// TestMatrixWriteCSVShape pins the matrix CSV header and row count:
// one row per (cell, size, algo).
func TestMatrixWriteCSVShape(t *testing.T) {
	sc := scenarios.New(scenarios.OracleSydney, netem.WiFi, 3)
	sc.RTT = 35 * time.Millisecond
	cell := MatrixCell{
		Scenario:    sc,
		Sizes:       []int64{512 << 10, 2 << 20},
		Algos:       matrixAlgos,
		FCT:         [][]stats.Summary{{{Mean: 1}, {Mean: 2}, {Mean: 3}, {Mean: 7}}, {{Mean: 4}, {Mean: 5}, {Mean: 6}, {Mean: 8}}},
		Loss:        [][]float64{{0.01, 0.02, 0.03, 0.07}, {0.04, 0.05, 0.06, 0.08}},
		Improvement: []float64{0.1, 0.2},
	}
	res := MatrixResult{Cells: []MatrixCell{cell, cell}}
	var b bytes.Buffer
	if err := res.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	wantHeader := "cell,scenario,rtt_ms,btlbw_mbps,size_bytes,algo,fct_mean_s,loss,improvement"
	if lines[0] != wantHeader {
		t.Errorf("header = %q, want %q", lines[0], wantHeader)
	}
	wantRows := len(res.Cells) * len(cell.Sizes) * len(cell.Algos)
	if len(lines)-1 != wantRows {
		t.Errorf("row count = %d, want %d", len(lines)-1, wantRows)
	}
	wantFirst := "e3,oracle-sydney/wifi,35,100,524288,bbr,1.000000,0.010000,0.1000"
	if lines[1] != wantFirst {
		t.Errorf("first row = %q, want %q", lines[1], wantFirst)
	}
}
