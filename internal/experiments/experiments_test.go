package experiments

import (
	"strings"
	"testing"
	"time"

	"suss/internal/netem"
	"suss/internal/scenarios"
)

func TestDownloadCompletesAllAlgos(t *testing.T) {
	sc := scenarios.New(scenarios.GoogleTokyo, netem.Wired, 1)
	for _, algo := range []Algo{Cubic, Suss, BBR, BBR2, CubicHSPP} {
		r := Download(sc, algo, 1<<20, 0, nil)
		if !r.Completed {
			t.Errorf("%s did not complete", algo)
		}
		if r.Delivered != 1<<20 {
			t.Errorf("%s delivered %d", algo, r.Delivered)
		}
		if r.FCT <= 0 {
			t.Errorf("%s FCT = %v", algo, r.FCT)
		}
	}
}

func TestDownloadDeterministicPerIter(t *testing.T) {
	sc := scenarios.New(scenarios.GoogleTokyo, netem.LTE4G, 5)
	a := Download(sc, Suss, 2<<20, 3, nil)
	b := Download(sc, Suss, 2<<20, 3, nil)
	if a.FCT != b.FCT || a.Retrans != b.Retrans {
		t.Errorf("same iter differs: %v/%d vs %v/%d", a.FCT, a.Retrans, b.FCT, b.Retrans)
	}
	c := Download(sc, Suss, 2<<20, 4, nil)
	if c.FCT == a.FCT {
		t.Log("different iters gave identical FCT (possible but unlikely on 4G)")
	}
}

func TestSussBeatsCubicOnLargeBDPSmallFlow(t *testing.T) {
	// The headline behaviour driving Figs. 11/12/18.
	sc := scenarios.New(scenarios.GoogleTokyo, netem.Wired, 2)
	cub := Download(sc, Cubic, 2<<20, 0, nil)
	sus := Download(sc, Suss, 2<<20, 0, nil)
	if !cub.Completed || !sus.Completed {
		t.Fatal("incomplete")
	}
	imp := Improvement(cub.FCT.Seconds(), sus.FCT.Seconds())
	t.Logf("Tokyo/wired 2MB: cubic=%v suss=%v improvement=%.1f%% (maxG=%d)", cub.FCT, sus.FCT, 100*imp, sus.MaxG)
	if imp < 0.15 {
		t.Errorf("improvement %.1f%%, want ≥15%%", 100*imp)
	}
	if sus.MaxG < 4 {
		t.Errorf("SUSS never quadrupled (maxG=%d)", sus.MaxG)
	}
}

func TestImprovement(t *testing.T) {
	if Improvement(10, 8) != 0.2 {
		t.Errorf("Improvement(10,8) = %v", Improvement(10, 8))
	}
	if Improvement(0, 5) != 0 {
		t.Error("zero baseline should give 0")
	}
}

func TestSizeLabel(t *testing.T) {
	cases := map[int64]string{
		256 << 10: "256KB",
		1 << 20:   "1MB",
		12 << 20:  "12MB",
		100:       "100B",
	}
	for n, want := range cases {
		if got := SizeLabel(n); got != want {
			t.Errorf("SizeLabel(%d) = %q, want %q", n, got, want)
		}
	}
}

func TestRunTestbedBasics(t *testing.T) {
	tb := scenarios.DefaultTestbed(50*time.Millisecond, 1)
	run := RunTestbed(tb, []TestbedFlow{
		{Pair: 0, Algo: Cubic, Size: 1 << 20, Start: 0},
		{Pair: 1, Algo: Suss, Size: 1 << 20, Start: time.Second},
	}, 30*time.Second, time.Second)
	fcts := run.FlowFCTsSeconds([]int{0, 1})
	if len(fcts) != 2 || fcts[0] <= 0 || fcts[1] <= 0 {
		t.Fatalf("fcts = %v", fcts)
	}
	if len(run.Bins[0].Bins()) == 0 {
		t.Error("no goodput bins recorded")
	}
}

func TestFig01Shape(t *testing.T) {
	r := RunFig01(20<<20, 1)
	if len(r.Theta) != 2 {
		t.Fatal("want two algos")
	}
	for i, a := range r.Algos {
		// θ must be near the 100 Mbps bottleneck.
		if r.Theta[i] < 5e7 || r.Theta[i] > 1.2e8 {
			t.Errorf("%s theta = %.3g", a, r.Theta[i])
		}
		// The ramp deficit is the figure's point: strictly positive.
		if r.RampLoss[i] <= 0 {
			t.Errorf("%s ramp deficit = %v, want > 0", a, r.RampLoss[i])
		}
	}
	if !strings.Contains(r.Render(), "Fig. 1") {
		t.Error("render missing header")
	}
}

func TestFig09Shape(t *testing.T) {
	r := RunFig09(25<<20, 1)
	if r.TimeToExitCwnd[1] <= 0 || r.TimeToExitCwnd[0] <= 0 {
		t.Fatalf("exit times: %v", r.TimeToExitCwnd)
	}
	// SUSS reaches the exit window materially faster (paper: ≈2×).
	speedup := float64(r.TimeToExitCwnd[0]) / float64(r.TimeToExitCwnd[1])
	t.Logf("Fig9: off=%v on=%v speedup=%.2fx delivered@2s %.2f→%.2f MB G=%v",
		r.TimeToExitCwnd[0], r.TimeToExitCwnd[1], speedup,
		float64(r.DeliveredAt2s[0])/(1<<20), float64(r.DeliveredAt2s[1])/(1<<20), r.GHistory)
	if speedup < 1.3 {
		t.Errorf("ramp speedup %.2f, want ≥1.3 (paper ≈2)", speedup)
	}
	// Delivered at 2 s must improve substantially.
	if r.DeliveredAt2s[1] < r.DeliveredAt2s[0] {
		t.Errorf("SUSS delivered less at 2s: %d vs %d", r.DeliveredAt2s[1], r.DeliveredAt2s[0])
	}
	// The accelerated ramp must not inflate RTT much (Fig. 9 bottom).
	if r.MaxSRTTDuringSS[1] > r.MaxSRTTDuringSS[0]*13/10 {
		t.Errorf("SUSS inflated slow-start RTT: %v vs %v", r.MaxSRTTDuringSS[1], r.MaxSRTTDuringSS[0])
	}
}

func TestFig15Shape(t *testing.T) {
	// The paper's effect is most pronounced at long RTTs, where
	// CUBIC's loss-truncated slow start leaves the joiner starved for
	// tens of seconds (Fig. 15, right-hand panels).
	cfg := Fig15Config{RTT: 200 * time.Millisecond, BufferBDP: 1}
	r := RunFig15(cfg, 20*time.Second, 50*time.Second)
	if len(r.Jain[0]) == 0 || len(r.Jain[1]) == 0 {
		t.Fatal("no Jain series")
	}
	t.Logf("Fig15 %v/%.1fBDP: recovery off=%v on=%v mean off=%.3f on=%.3f",
		cfg.RTT, cfg.BufferBDP, r.RecoveryTime[0], r.RecoveryTime[1], r.MeanPostJoin[0], r.MeanPostJoin[1])
	if r.MeanPostJoin[1] < r.MeanPostJoin[0]+0.05 {
		t.Errorf("SUSS should clearly improve fairness here: on=%.3f off=%.3f",
			r.MeanPostJoin[1], r.MeanPostJoin[0])
	}
	if r.RecoveryTime[1] < 0 {
		t.Error("SUSS-on never recovered F ≥ 0.95")
	}
}

func TestMatrixCellShape(t *testing.T) {
	sc := scenarios.New(scenarios.OracleSydney, netem.WiFi, 3)
	cell := RunMatrixCell(sc, []int64{512 << 10, 2 << 20}, 2)
	if len(cell.FCT) != 2 || len(cell.FCT[0]) != 4 {
		t.Fatalf("cell shape wrong: %+v", cell.FCT)
	}
	for si := range cell.Sizes {
		for ai, a := range cell.Algos {
			if cell.FCT[si][ai].Mean <= 0 {
				t.Errorf("%s size %d: non-positive FCT", a, si)
			}
		}
	}
	if !strings.Contains(cell.Render(), cell.Scenario.ID()) {
		t.Error("render missing cell ID")
	}
}

func TestAblationMechanismsShape(t *testing.T) {
	r := RunAblationMechanisms(2<<20, 1, 9)
	if len(r.Variants) != 4 {
		t.Fatalf("variants = %v", r.Variants)
	}
	// The burst ablation must not have a LOWER peak queue than full
	// SUSS (pacing exists to cut the peak).
	if r.PeakQ[1] < r.PeakQ[0] {
		t.Errorf("burst variant peak queue %d < paced %d", r.PeakQ[1], r.PeakQ[0])
	}
	t.Log("\n" + r.Render())
}

func TestSlowStartExitComparisonShape(t *testing.T) {
	r := RunSlowStartExitComparison(2<<20, 2, 7)
	if len(r.Variants) != 3 {
		t.Fatalf("variants: %v", r.Variants)
	}
	// SUSS (index 2) must beat both classic HyStart and HyStart++ on a
	// large-BDP path — that is the paper's positioning.
	if r.FCT[2] >= r.FCT[0] || r.FCT[2] >= r.FCT[1] {
		t.Errorf("SUSS FCT %.3f should beat hystart %.3f and hystart++ %.3f", r.FCT[2], r.FCT[0], r.FCT[1])
	}
	t.Log("\n" + r.Render())
}

func TestBtlBwVariationShape(t *testing.T) {
	r := RunBtlBwVariation("drop", 8<<20, 4)
	if r.FCTOff <= 0 || r.FCTOn <= 0 {
		t.Fatalf("bad FCTs: %+v", r)
	}
	// App. B Obs. 1: a rate drop must not make SUSS materially worse
	// than plain CUBIC.
	if r.FCTOn > r.FCTOff*1.15 {
		t.Errorf("SUSS 15%%+ slower under BtlBw drop: on=%.3f off=%.3f", r.FCTOn, r.FCTOff)
	}
	t.Log(r.Render())
}
