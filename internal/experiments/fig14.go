package experiments

import (
	"fmt"
	"strings"

	"suss/internal/netem"
	"suss/internal/runner"
	"suss/internal/scenarios"
	"suss/internal/stats"
)

// Fig14Result reproduces Fig. 14: packet-loss rate vs flow size for
// CUBIC with SUSS on/off (Oracle London server, 5G client in Sweden).
// SUSS's pacing reduces loss during slow start; the curves converge as
// flows grow and steady-state losses dominate.
type Fig14Result struct {
	Sizes []int64
	// Loss[variant][i]: mean loss rate, variant 0 = off, 1 = on.
	Loss [2][]float64
	// Incomplete counts downloads that never finished.
	Incomplete int
}

// RunFig14 declares the variants × sizes × iterations sweep as one job
// slice. Loss rates are measured on every run — Fig. 14 plots link
// behaviour, not completion — but non-completing flows are still
// counted so the caller can fail loudly.
func RunFig14(sizes []int64, iters int, seed int64, opts ...Option) Fig14Result {
	cfg := newConfig(opts)
	res := Fig14Result{Sizes: sizes}
	sc := scenarios.New(scenarios.OracleLondon, netem.NR5G, seed)
	// The London/5G cell already carries the shallow Oracle-egress
	// buffer calibration (see scenarios.New); tighten slightly so the
	// 2 MB point still shows slow-start loss.
	sc.LastHop.BufferBDPs = 0.25

	var jobs []runner.Job
	for _, algo := range []Algo{Cubic, Suss} {
		for _, size := range sizes {
			for it := 0; it < iters; it++ {
				jobs = append(jobs, runner.Job{Scenario: sc, Algo: algo, Size: size, Iter: it})
			}
		}
	}
	out := runner.Run(cfg.ctx, jobs, cfg.pool())

	k := 0
	for vi := 0; vi < 2; vi++ {
		for range sizes {
			var rates []float64
			for it := 0; it < iters; it++ {
				r := out[k]
				k++
				if r.Err != nil {
					res.Incomplete++
				}
				rates = append(rates, r.LossRate)
			}
			res.Loss[vi] = append(res.Loss[vi], stats.Mean(rates))
		}
	}
	return res
}

// Render prints the two loss curves.
func (r Fig14Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 14 — packet loss vs flow size (London server, 5G client)\n")
	fmt.Fprintf(&b, "  %-8s %12s %12s\n", "size", "SUSS off", "SUSS on")
	for i, size := range r.Sizes {
		fmt.Fprintf(&b, "  %-8s %11.3f%% %11.3f%%\n",
			SizeLabel(size), 100*r.Loss[0][i], 100*r.Loss[1][i])
	}
	if r.Incomplete > 0 {
		fmt.Fprintf(&b, "  WARNING: %d download(s) did not complete\n", r.Incomplete)
	}
	return b.String()
}
