// Package experiments contains one runner per table and figure in the
// paper's evaluation (§6 and appendices), built on the scenario
// catalog. Each runner returns a typed result with a Render method
// that prints rows shaped like the paper's plots; cmd/sussbench and
// the top-level benchmarks drive them.
package experiments

import (
	"fmt"
	"time"

	"suss/internal/bbr"
	"suss/internal/cc"
	"suss/internal/core"
	"suss/internal/cubic"
	"suss/internal/netsim"
	"suss/internal/scenarios"
	"suss/internal/tcp"
)

// Algo selects a congestion-control algorithm for a flow.
type Algo int

const (
	// Cubic is CUBIC with HyStart, SUSS off (the paper's baseline).
	Cubic Algo = iota
	// Suss is CUBIC with the SUSS add-on enabled.
	Suss
	// BBR is BBRv1.
	BBR
	// BBR2 is the BBRv2-lite variant.
	BBR2
	// CubicHSPP is CUBIC with HyStart++ (RFC 9406) instead of classic
	// HyStart — the related-work slow-start exit the paper positions
	// SUSS against.
	CubicHSPP
	// BBRSuss is the paper's §7 future work: BBRv1 with SUSS-style
	// growth prediction doubling STARTUP's gains.
	BBRSuss
)

func (a Algo) String() string {
	switch a {
	case Cubic:
		return "cubic"
	case Suss:
		return "cubic+suss"
	case BBR:
		return "bbr"
	case BBR2:
		return "bbr2"
	case CubicHSPP:
		return "cubic+hspp"
	case BBRSuss:
		return "bbr+suss"
	default:
		return "unknown"
	}
}

// NewController builds a's controller bound to sender s.
func NewController(a Algo, s *tcp.Sender) cc.Controller {
	switch a {
	case Cubic:
		return cubic.New(s, cubic.DefaultOptions())
	case Suss:
		return core.New(s, core.DefaultOptions())
	case BBR:
		return bbr.New(s, bbr.DefaultOptions())
	case BBR2:
		return bbr.New(s, bbr.V2Options())
	case CubicHSPP:
		opt := cubic.DefaultOptions()
		opt.HyStartPP = true
		return cubic.New(s, opt)
	case BBRSuss:
		return bbr.New(s, bbr.SUSSOptions())
	default:
		panic("experiments: unknown algo")
	}
}

// SussOptions lets ablation runs customize the SUSS configuration.
type SussOptions = core.Options

// DownloadResult captures one file download.
type DownloadResult struct {
	Algo        Algo
	Size        int64
	FCT         time.Duration // receiver-side (paper's wget-style FCT)
	Delivered   int64
	Segments    int
	Retrans     int
	RTOs        int
	Drops       int     // bottleneck + last-hop drops (congestion + erasures)
	LossRate    float64 // drops / data packets offered to the last hop
	MaxG        int     // SUSS only
	AccelRounds int     // SUSS only
	Completed   bool
}

// Download runs one file transfer over an internet-matrix scenario.
// iter perturbs the impairment seed so repeated runs sample the
// stochastic wireless models, mirroring the paper's 50 iterations.
// sussOpt overrides the SUSS configuration when algo == Suss and
// sussOpt != nil.
func Download(sc scenarios.Scenario, algo Algo, size int64, iter int, sussOpt *SussOptions) DownloadResult {
	sc.Seed = sc.Seed*1000003 + int64(iter)*7919 + 1
	sim := netsim.NewSimulator()
	p, _ := sc.Build(sim)
	cfg := tcp.DefaultConfig()
	f := tcp.NewFlow(sim, cfg, 1, p.Sender, tcp.NewDemux(p.Sender), p.Receiver, tcp.NewDemux(p.Receiver), size, nil)
	var ctrl cc.Controller
	if algo == Suss && sussOpt != nil {
		ctrl = core.New(f.Sender, *sussOpt)
	} else {
		ctrl = NewController(algo, f.Sender)
	}
	f.Sender.SetController(ctrl)
	f.StartAt(sim, 0)
	// Generous horizon: FCTs here are seconds, not minutes.
	sim.Run(20 * time.Minute)
	sim.StopWhen(nil)

	last := p.Fwd[len(p.Fwd)-1]
	lst := last.Stats()
	res := DownloadResult{
		Algo:      algo,
		Size:      size,
		FCT:       f.FCT(),
		Delivered: f.Sender.Delivered(),
		Segments:  f.Sender.Stats().SegmentsSent,
		Retrans:   f.Sender.Stats().Retransmissions,
		RTOs:      f.Sender.Stats().RTOs,
		Drops:     lst.DroppedPackets + lst.ErasedPackets,
		Completed: f.Done(),
	}
	offered := lst.EnqueuedPackets + lst.DroppedPackets
	if offered > 0 {
		res.LossRate = float64(res.Drops) / float64(offered)
	}
	if s, ok := ctrl.(*core.Suss); ok {
		res.MaxG = s.Stats().MaxG
		res.AccelRounds = s.Stats().AcceleratedRounds
	}
	return res
}

// FCTs runs iters downloads and returns completion times in seconds
// plus the mean loss rate.
func FCTs(sc scenarios.Scenario, algo Algo, size int64, iters int) (fcts []float64, meanLoss float64) {
	var loss float64
	for i := 0; i < iters; i++ {
		r := Download(sc, algo, size, i, nil)
		if !r.Completed {
			// A non-completing flow is a bug in the stack, not a data
			// point; surface it loudly.
			panic(fmt.Sprintf("experiments: %s %s size=%d iter=%d did not complete", sc.Name(), algo, size, i))
		}
		fcts = append(fcts, r.FCT.Seconds())
		loss += r.LossRate
	}
	return fcts, loss / float64(iters)
}

// Improvement returns the relative FCT gain of b over a: (a-b)/a.
func Improvement(a, b float64) float64 {
	if a == 0 {
		return 0
	}
	return (a - b) / a
}

// DefaultSizes is the flow-size sweep used across figures (bytes).
var DefaultSizes = []int64{
	256 << 10, 512 << 10, 1 << 20, 2 << 20, 4 << 20, 8 << 20, 12 << 20,
}

// SizeLabel formats a byte count the way the paper's axes do.
func SizeLabel(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%gMB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%gKB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
