// Package experiments contains one runner per table and figure in the
// paper's evaluation (§6 and appendices), built on the scenario
// catalog. Each runner returns a typed result with a Render method
// that prints rows shaped like the paper's plots; cmd/sussbench and
// the top-level benchmarks drive them.
//
// Sweeps are declared as job slices and executed by internal/runner's
// bounded worker pool (see Option); because every job is an
// independent, instance-seeded simulation and results are collected by
// job index, rendered output is identical at any worker count.
package experiments

import (
	"context"
	"fmt"

	"suss/internal/cc"
	"suss/internal/core"
	"suss/internal/runner"
	"suss/internal/scenarios"
	"suss/internal/tcp"
)

// Algo selects a congestion-control algorithm for a flow. It is the
// runner package's catalog, re-exported so experiment call sites stay
// concise.
type Algo = runner.Algo

const (
	// Cubic is CUBIC with HyStart, SUSS off (the paper's baseline).
	Cubic = runner.Cubic
	// Suss is CUBIC with the SUSS add-on enabled.
	Suss = runner.Suss
	// BBR is BBRv1.
	BBR = runner.BBR
	// BBR2 is the BBRv2-lite variant.
	BBR2 = runner.BBR2
	// CubicHSPP is CUBIC with HyStart++ (RFC 9406).
	CubicHSPP = runner.CubicHSPP
	// BBRSuss is the paper's §7 future work: BBRv1 with SUSS-style
	// growth prediction.
	BBRSuss = runner.BBRSuss
	// Reno is classic AIMD (RFC 5681), the implicit baseline.
	Reno = runner.Reno
)

// NewController builds a's controller bound to sender s.
func NewController(a Algo, s *tcp.Sender) cc.Controller {
	return runner.NewController(a, s)
}

// SussOptions lets ablation runs customize the SUSS configuration.
type SussOptions = core.Options

// DownloadResult captures one file download.
type DownloadResult = runner.DownloadResult

// Option configures how a sweep executes (worker count, cancellation,
// progress reporting). The zero configuration runs on GOMAXPROCS
// workers; the numbers are identical at any worker count.
type Option func(*config)

type config struct {
	ctx      context.Context
	workers  int
	progress func(done, total int)
	lossAcct bool
	domains  int
}

func newConfig(opts []Option) config {
	c := config{ctx: context.Background()}
	for _, o := range opts {
		o(&c)
	}
	return c
}

func (c config) pool() runner.Options {
	return runner.Options{Workers: c.workers, Progress: c.progress}
}

// WithWorkers bounds the sweep's concurrency (≤ 0 = GOMAXPROCS).
func WithWorkers(n int) Option {
	return func(c *config) { c.workers = n }
}

// WithContext makes the sweep cancellable; jobs not yet started when
// ctx is cancelled become error-carrying results.
func WithContext(ctx context.Context) Option {
	return func(c *config) { c.ctx = ctx }
}

// WithProgress installs a per-job completion callback (serialized).
func WithProgress(fn func(done, total int)) Option {
	return func(c *config) { c.progress = fn }
}

// WithLossAccounting attaches a flight recorder to every download in
// the sweep and aggregates the cross-layer loss ledgers into the
// result (sweeps that support it; currently Fig. 11). Default output
// is unchanged when the option is absent.
func WithLossAccounting() Option {
	return func(c *config) { c.lossAcct = true }
}

// WithDomains runs every simulation in the sweep as n parallel event
// domains (netsim.Cluster) instead of one single-threaded simulator —
// multi-core execution inside each simulation, on top of the pool's
// across-simulation parallelism. Rendered output and CSV bytes are
// identical at any domain count; n ≤ 1 is the monolithic default.
// Sweeps running with WithLossAccounting fall back to monolithic
// simulations (flight recorders don't span domains).
func WithDomains(n int) Option {
	return func(c *config) { c.domains = n }
}

// Download runs one file transfer over an internet-matrix scenario.
// iter perturbs the impairment seed so repeated runs sample the
// stochastic wireless models, mirroring the paper's 50 iterations.
// sussOpt overrides the SUSS configuration when algo == Suss and
// sussOpt != nil.
func Download(sc scenarios.Scenario, algo Algo, size int64, iter int, sussOpt *SussOptions) DownloadResult {
	return runner.Download(runner.Job{Scenario: sc, Algo: algo, Size: size, Iter: iter, SussOpt: sussOpt})
}

// batch summarizes a slice of runner results: completion times in
// seconds and mean loss over the completed runs, plus the failures.
type batch struct {
	fcts       []float64
	meanLoss   float64
	incomplete int
	firstErr   error
}

func summarizeBatch(res []runner.Result) batch {
	var b batch
	var loss float64
	for _, r := range res {
		if r.Err != nil {
			b.incomplete++
			if b.firstErr == nil {
				b.firstErr = r.Err
			}
			continue
		}
		b.fcts = append(b.fcts, r.FCT.Seconds())
		loss += r.LossRate
	}
	if len(b.fcts) > 0 {
		b.meanLoss = loss / float64(len(b.fcts))
	}
	return b
}

// FCTs runs iters downloads as one job batch and returns completion
// times in seconds plus the mean loss rate. A non-completing flow is a
// bug in the stack, not a data point: it is dropped from fcts and
// reported through err (the other iterations still run).
func FCTs(sc scenarios.Scenario, algo Algo, size int64, iters int, opts ...Option) (fcts []float64, meanLoss float64, err error) {
	cfg := newConfig(opts)
	jobs := make([]runner.Job, iters)
	for i := range jobs {
		jobs[i] = runner.Job{Scenario: sc, Algo: algo, Size: size, Iter: i, Domains: cfg.domains}
	}
	b := summarizeBatch(runner.Run(cfg.ctx, jobs, cfg.pool()))
	if b.incomplete > 0 {
		err = fmt.Errorf("experiments: %d/%d downloads failed: %w", b.incomplete, iters, b.firstErr)
	}
	return b.fcts, b.meanLoss, err
}

// Improvement returns the relative FCT gain of b over a: (a-b)/a.
func Improvement(a, b float64) float64 {
	if a == 0 {
		return 0
	}
	return (a - b) / a
}

// DefaultSizes is the flow-size sweep used across figures (bytes).
var DefaultSizes = []int64{
	256 << 10, 512 << 10, 1 << 20, 2 << 20, 4 << 20, 8 << 20, 12 << 20,
}

// SizeLabel formats a byte count the way the paper's axes do.
func SizeLabel(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%gMB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%gKB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
