package experiments

import (
	"strings"
	"testing"
	"time"
)

// TestFig02NeverReachedRendering pins the sentinel rendering: an
// unreached share threshold must print "not reached", never a
// negative duration like "-1ns".
func TestFig02NeverReachedRendering(t *testing.T) {
	r := Fig02Result{
		Algo:            Cubic,
		JoinAt:          8 * time.Second,
		FairShare:       10e6,
		Share:           []float64{0.1, 0.2, 0.3},
		TimeToHalfShare: NeverReached,
		TimeToFairShare: NeverReached,
	}
	out := r.Render()
	if !strings.Contains(out, "time to 50% share: not reached") ||
		!strings.Contains(out, "time to 80% share: not reached") {
		t.Errorf("unreached thresholds not rendered as \"not reached\":\n%s", out)
	}
	if strings.Contains(out, "-1ns") {
		t.Errorf("sentinel leaked into output as a duration:\n%s", out)
	}

	r.TimeToHalfShare = 3 * time.Second
	out = r.Render()
	if !strings.Contains(out, "time to 50% share: 3s") {
		t.Errorf("reached threshold not rendered as a duration:\n%s", out)
	}
	if !strings.Contains(out, "time to 80% share: not reached") {
		t.Errorf("mixed case lost the unreached sentinel:\n%s", out)
	}
}

func TestFig02SentinelDistinctFromZero(t *testing.T) {
	// Reaching the threshold in the join bin itself is a legitimate
	// 0s, which must not collide with the sentinel.
	if NeverReached == 0 {
		t.Fatal("NeverReached must be distinguishable from an immediate 0s")
	}
	if fmtReached(0) != "0s" {
		t.Errorf("fmtReached(0) = %q, want \"0s\"", fmtReached(0))
	}
}
