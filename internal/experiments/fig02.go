package experiments

import (
	"fmt"
	"strings"
	"time"

	"suss/internal/scenarios"
	"suss/internal/stats"
)

// NeverReached marks a share threshold the late joiner did not
// sustain within the experiment horizon. It renders as "not reached"
// rather than a bogus negative duration.
const NeverReached = time.Duration(-1)

// Fig02Result reproduces Fig. 2: a new flow joining four established
// flows at a shared 50 Mbps bottleneck, under CUBIC and BBR. The paper
// uses it to motivate SUSS: CUBIC's loss-sensitive slow start keeps
// the late joiner below its fair share for a long time.
type Fig02Result struct {
	Algo Algo
	// JoinAt is when the fifth flow started.
	JoinAt time.Duration
	// FairShare is the per-flow fair rate (bottleneck / 5), bits/sec.
	FairShare float64
	// Share is the joiner's goodput / fair share, per 1 s bin after
	// the join.
	Share []float64
	// TimeToHalfShare and TimeToFairShare are how long after joining
	// the new flow first sustains 50% / 80% of its fair share
	// (NeverReached if never within the horizon).
	TimeToHalfShare time.Duration
	TimeToFairShare time.Duration
}

// RunFig02 runs the late-joiner experiment for one algorithm family
// (all five flows use it).
func RunFig02(algo Algo, rtt time.Duration, bufferBDP float64, joinAt, horizon time.Duration) Fig02Result {
	tb := scenarios.DefaultTestbed(rtt, bufferBDP)
	specs := make([]TestbedFlow, 0, 5)
	for i := 0; i < 4; i++ {
		specs = append(specs, TestbedFlow{Pair: i, Algo: algo, Start: time.Duration(i) * 2 * time.Second})
	}
	specs = append(specs, TestbedFlow{Pair: 4, Algo: algo, Start: joinAt})
	run := RunTestbed(tb, specs, horizon, time.Second)

	res := Fig02Result{Algo: algo, JoinAt: joinAt, FairShare: tb.BtlRate / 5}
	joinBin := int(joinAt / time.Second)
	bins := run.Bins[4].Rate()
	res.TimeToHalfShare = NeverReached
	res.TimeToFairShare = NeverReached
	for i := joinBin; i < len(bins); i++ {
		share := bins[i] * 8 / res.FairShare
		res.Share = append(res.Share, share)
		since := time.Duration(i-joinBin) * time.Second
		if res.TimeToHalfShare == NeverReached && share >= 0.5 {
			res.TimeToHalfShare = since
		}
		if res.TimeToFairShare == NeverReached && share >= 0.8 {
			res.TimeToFairShare = since
		}
	}
	return res
}

// Render prints the joiner's share curve.
func (r Fig02Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 2 — late joiner under %s (join at %v, fair share %.1f Mbps)\n",
		r.Algo, r.JoinAt, r.FairShare/1e6)
	fmt.Fprintf(&b, "  time to 50%% share: %s, time to 80%% share: %s\n",
		fmtReached(r.TimeToHalfShare), fmtReached(r.TimeToFairShare))
	n := len(r.Share)
	if n > 12 {
		n = 12
	}
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "    +%2ds  share=%5.2f\n", i, r.Share[i])
	}
	return b.String()
}

func fmtReached(d time.Duration) string {
	if d == NeverReached {
		return "not reached"
	}
	return d.String()
}

// Fig02Mean summarizes a share curve (for benches).
func (r Fig02Result) Fig02Mean(first int) float64 {
	if first > len(r.Share) {
		first = len(r.Share)
	}
	return stats.Mean(r.Share[:first])
}
