package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"suss/internal/runner"
	"suss/internal/scenarios"
	"suss/internal/stats"
)

// Fig16Result reproduces Fig. 16 and Table 1: one large flow sharing
// the bottleneck with twelve sequentially-started 2 MB flows of
// different minRTTs.
type Fig16Result struct {
	LargeAlgo Algo
	SmallAlgo Algo
	RTT       time.Duration
	BufferBDP float64
	// LargeFCT is the large flow's completion time (seconds).
	LargeFCT float64
	// SmallFCTs are the twelve small-flow completion times (seconds).
	SmallFCTs []float64
	// LargeGoodput is the large flow's goodput per second (bits/sec).
	LargeGoodput []float64
}

// RunFig16 runs the stability workload: a large flow of largeSize
// bytes plus twelve 2 MB flows at 2-second intervals, small flows
// rotating over the remaining four pairs with spread minRTTs.
func RunFig16(largeAlgo, smallAlgo Algo, rtt time.Duration, bufferBDP float64, largeSize int64) Fig16Result {
	perPair := []time.Duration{rtt, 30 * time.Millisecond, 60 * time.Millisecond, 120 * time.Millisecond, 180 * time.Millisecond}
	tb := scenarios.DefaultTestbed(rtt, bufferBDP)
	tb.PerPairRTT = perPair

	specs := []TestbedFlow{{Pair: 0, Algo: largeAlgo, Size: largeSize, Start: 0}}
	for i := 0; i < 12; i++ {
		specs = append(specs, TestbedFlow{
			Pair:  1 + i%4,
			Algo:  smallAlgo,
			Size:  2 << 20,
			Start: time.Duration(i+1) * 2 * time.Second,
		})
	}
	// Horizon: long enough for the large flow at a contended 50 Mbps.
	horizon := time.Duration(float64(largeSize*8)/tb.BtlRate*3+30) * time.Second
	run := RunTestbed(tb, specs, horizon, time.Second)

	res := Fig16Result{LargeAlgo: largeAlgo, SmallAlgo: smallAlgo, RTT: rtt, BufferBDP: bufferBDP}
	if !run.Flows[0].Done() {
		panic("experiments: large flow did not complete; raise the horizon")
	}
	res.LargeFCT = run.Flows[0].FCT().Seconds()
	for i := 1; i <= 12; i++ {
		if !run.Flows[i].Done() {
			panic(fmt.Sprintf("experiments: small flow %d did not complete", i))
		}
		res.SmallFCTs = append(res.SmallFCTs, run.Flows[i].FCT().Seconds())
	}
	for _, v := range run.Bins[0].Rate() {
		res.LargeGoodput = append(res.LargeGoodput, v*8)
	}
	return res
}

// Table1Row is one line of Table 1 for a given large-flow CCA.
type Table1Row struct {
	BufferBDP float64
	RTT       time.Duration
	// Off/On are the SUSS-off / SUSS-on measurements.
	LargeFCTOff, SmallFCTOff float64
	LargeFCTOn, SmallFCTOn   float64
	// ImprovementSmall is (off−on)/off for the small flows' mean FCT.
	ImprovementSmall float64
	// LargeFCTDelta is the relative change in large-flow FCT (the
	// paper's stability criterion: ≈0).
	LargeFCTDelta float64
}

// Table1Result is one of the paper's three sub-tables.
type Table1Result struct {
	LargeAlgo Algo
	Rows      []Table1Row
	// Failed lists configurations whose testbed run crashed or did not
	// complete; their rows are omitted.
	Failed []string
}

// RunTable1 sweeps buffer ∈ {1,2} BDP × RTT ∈ {25,50,100,200} ms for a
// large-flow CCA, with the small flows on CUBIC ± SUSS. The 16
// independent testbed runs (8 configs × off/on) are declared as one
// item slice and fanned out across the worker pool; a crashing run
// drops its config into Failed instead of aborting the table.
func RunTable1(largeAlgo Algo, largeSize int64, opts ...Option) Table1Result {
	cfg := newConfig(opts)
	type t1cfg struct {
		buf float64
		rtt time.Duration
	}
	var cfgs []t1cfg
	for _, buf := range []float64{1, 2} {
		for _, rttMs := range []int{25, 50, 100, 200} {
			cfgs = append(cfgs, t1cfg{buf, time.Duration(rttMs) * time.Millisecond})
		}
	}
	type item struct {
		t1cfg
		smallAlgo Algo
	}
	var items []item
	for _, c := range cfgs {
		items = append(items, item{c, Cubic}, item{c, Suss})
	}
	outs := runner.Map(cfg.ctx, items, func(_ context.Context, _ int, it item) (Fig16Result, error) {
		return RunFig16(largeAlgo, it.smallAlgo, it.rtt, it.buf, largeSize), nil
	}, cfg.pool())

	res := Table1Result{LargeAlgo: largeAlgo}
	for i, c := range cfgs {
		off, on := outs[2*i], outs[2*i+1]
		if err := off.Err; err != nil || on.Err != nil {
			if err == nil {
				err = on.Err
			}
			res.Failed = append(res.Failed, fmt.Sprintf("buffer=%.1fBDP minRTT=%v: %v", c.buf, c.rtt, err))
			continue
		}
		row := Table1Row{
			BufferBDP:   c.buf,
			RTT:         c.rtt,
			LargeFCTOff: off.Value.LargeFCT,
			SmallFCTOff: stats.Mean(off.Value.SmallFCTs),
			LargeFCTOn:  on.Value.LargeFCT,
			SmallFCTOn:  stats.Mean(on.Value.SmallFCTs),
		}
		row.ImprovementSmall = Improvement(row.SmallFCTOff, row.SmallFCTOn)
		row.LargeFCTDelta = (row.LargeFCTOn - row.LargeFCTOff) / row.LargeFCTOff
		res.Rows = append(res.Rows, row)
	}
	return res
}

// Render prints the sub-table.
func (r Table1Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1 — large flow on %s, twelve 2MB CUBIC flows ± SUSS\n", r.LargeAlgo)
	fmt.Fprintf(&b, "  %-6s %-7s %10s %10s %10s %10s %8s %8s\n",
		"buffer", "minRTT", "largeOff", "smallOff", "largeOn", "smallOn", "smallImp", "largeΔ")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-6.1f %-7s %9.1fs %9.2fs %9.1fs %9.2fs %7.0f%% %7.1f%%\n",
			row.BufferBDP, row.RTT, row.LargeFCTOff, row.SmallFCTOff,
			row.LargeFCTOn, row.SmallFCTOn, 100*row.ImprovementSmall, 100*row.LargeFCTDelta)
	}
	for _, f := range r.Failed {
		fmt.Fprintf(&b, "  FAILED %s\n", f)
	}
	return b.String()
}

// MeanSmallImprovement averages the small-flow FCT gain over rows.
func (r Table1Result) MeanSmallImprovement() float64 {
	var xs []float64
	for _, row := range r.Rows {
		xs = append(xs, row.ImprovementSmall)
	}
	return stats.Mean(xs)
}

// Render prints the Fig. 16 view: the large flow's goodput trace with
// the small-flow dips, plus the small-flow completion times.
func (r Fig16Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 16 — large %s flow vs twelve 2MB %s flows (minRTT %v, buffer %.1f BDP)\n",
		r.LargeAlgo, r.SmallAlgo, r.RTT, r.BufferBDP)
	fmt.Fprintf(&b, "  large FCT %.1fs; small FCTs mean %.2fs\n", r.LargeFCT, stats.Mean(r.SmallFCTs))
	fmt.Fprintf(&b, "  large-flow goodput (Mbps/s): ")
	for i, g := range r.LargeGoodput {
		if i >= 30 {
			fmt.Fprintf(&b, "…")
			break
		}
		fmt.Fprintf(&b, "%.0f ", g/1e6)
	}
	b.WriteString("\n")
	return b.String()
}
