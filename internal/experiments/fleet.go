package experiments

import (
	"fmt"
	"io"
	"math"
	"strings"
	"time"

	"suss/internal/obs"
	"suss/internal/runner"
	"suss/internal/scenarios"
	"suss/internal/stats"
	"suss/internal/workload"
)

// SmallFlowCutoff separates the mice the paper's headline claim is
// about from the elephants that carry the bytes.
const SmallFlowCutoff = 1 << 20

// FleetConfig describes the population-scale experiment: a flow
// population sharded over independent bottleneck trees, run once with
// SUSS off (CUBIC) and once with SUSS on over the identical
// population.
type FleetConfig struct {
	// Fleet is the per-shard tree (zero value = scenarios.DefaultFleet).
	Fleet scenarios.Fleet
	// Flows is the total population size; Shards splits it over
	// independent trees (one per worker).
	Flows  int
	Shards int
	// ArrivalRate is each shard's Poisson arrival rate (flows/s).
	ArrivalRate float64
	// Mix is the class mixture (nil = workload.DefaultMix; the smoke
	// tier uses SmokeMix to stay seconds-scale).
	Mix  []workload.ClassMix
	Seed int64
	// Horizon caps simulated time past the last arrival (0 = the
	// runner default).
	Horizon time.Duration
}

// SmokeMix is the CI-sized population: the same three classes as
// DefaultMix with the elephant tail clipped to 512 KB, so a ≥10k-flow
// fleet finishes in CI-acceptable time under -race while still
// exercising cross-class contention.
func SmokeMix() []workload.ClassMix {
	return []workload.ClassMix{
		{Class: workload.Web, Weight: 0.75, Sizes: workload.Lognormal{
			Mu: math.Log(16 << 10), Sigma: 0.9, Min: 2 << 10, Max: 128 << 10,
		}},
		{Class: workload.RPC, Weight: 0.15, Sizes: workload.Lognormal{
			Mu: math.Log(4 << 10), Sigma: 0.6, Min: 512, Max: 32 << 10,
		}},
		{Class: workload.Video, Weight: 0.10, Sizes: workload.BoundedPareto{
			Alpha: 1.3, Min: 96 << 10, Max: 512 << 10,
		}},
	}
}

// DefaultFleetConfig returns the smoke-tier fleet: 10 000 flows over
// four shards of the reference tree, ~60 % offered load on each
// shard's core.
func DefaultFleetConfig(seed int64) FleetConfig {
	return FleetConfig{
		Fleet:       scenarios.DefaultFleet(seed),
		Flows:       10000,
		Shards:      4,
		ArrivalRate: 300,
		Mix:         SmokeMix(),
		Seed:        seed,
	}
}

// FleetClassStats is one flow class's population outcome under both
// variants (index 0 = SUSS off, 1 = on).
type FleetClassStats struct {
	Class     workload.Class
	Flows     int
	Completed [2]int
	// CDF is the merged FCT distribution in seconds over completed
	// flows of the class.
	CDF     [2]stats.CDF
	MeanFCT [2]float64
}

// FleetResult is the merged population comparison.
type FleetResult struct {
	Config  FleetConfig
	Classes []FleetClassStats

	// SmallImprovement is the relative mean-FCT gain of SUSS on flows
	// ≤ SmallFlowCutoff — the fleet-scale version of the paper's
	// headline number.
	SmallImprovement float64
	// AllImprovement is the same over the whole population.
	AllImprovement float64

	// Jain is the mean per-shard Jain index over completed flows'
	// goodputs.
	Jain [2]float64
	// CoreLossRate is drops/(delivered+drops) summed over every
	// shard's core bottleneck.
	CoreLossRate [2]float64
	// TotalDrops sums congestion drops over every data-path link of
	// every shard.
	TotalDrops [2]int

	// Incomplete counts flows that never finished (per variant).
	Incomplete [2]int
	// Ledgers aggregates cross-layer loss accounting over all shards
	// (nil unless WithLossAccounting).
	Ledgers [2]*obs.LossLedger
	// Errs collects shard-level failures (stalls, panics).
	Errs []error
}

// Normalized returns the config with the documented defaults filled
// in: the reference fleet tree when none is set, at least one shard.
// RunFleet and FleetJobs apply it; the experiment service hashes the
// normalized form so defaulted and explicit configs cache identically.
func (fc FleetConfig) Normalized() FleetConfig {
	if fc.Fleet.Groups == 0 {
		fc.Fleet = scenarios.DefaultFleet(fc.Seed)
	}
	if fc.Shards <= 0 {
		fc.Shards = 1
	}
	return fc
}

// Population returns the flow population RunFleet replays: Poisson
// arrivals at the configured rate, the configured (or default) class
// mix, first arrival at 100 ms.
func (fc FleetConfig) Population() workload.PopulationSpec {
	mix := fc.Mix
	if mix == nil {
		mix = workload.DefaultMix()
	}
	return workload.PopulationSpec{
		Flows:    fc.Flows,
		Arrivals: workload.PoissonArrivals{Rate: fc.ArrivalRate},
		Mix:      mix,
		Seed:     fc.Seed,
		Start:    100 * time.Millisecond,
	}
}

// FleetJobs returns the two per-variant shard-job templates (index 0 =
// SUSS off, 1 = on) the fleet comparison runs. Shard is left zero:
// runner.RunFleet ranges it, and callers executing shards themselves
// set it per cell.
func FleetJobs(fc FleetConfig) [2]runner.FleetJob {
	fc = fc.Normalized()
	pop := fc.Population()
	var out [2]runner.FleetJob
	for variant := 0; variant < 2; variant++ {
		algo := Cubic
		if variant == 1 {
			algo = Suss
		}
		out[variant] = runner.FleetJob{
			Fleet:   fc.Fleet,
			Algo:    algo,
			Pop:     pop,
			Shards:  fc.Shards,
			Horizon: fc.Horizon,
		}
	}
	return out
}

// RunFleet runs the population twice — SUSS off, then on — over the
// identical sharded population and merges the per-class FCT
// distributions. Rendered output and CSV bytes are identical at any
// worker count: shards are independent instance-seeded simulations
// collected by index.
func RunFleet(fc FleetConfig, opts ...Option) FleetResult {
	cfg := newConfig(opts)
	fc = fc.Normalized()
	jobs := FleetJobs(fc)
	var shards [2][]runner.FleetResult
	for variant := range jobs {
		jobs[variant].Observe = cfg.lossAcct
		jobs[variant].Domains = cfg.domains
		shards[variant] = runner.RunFleet(cfg.ctx, jobs[variant], cfg.pool())
	}
	return FleetFromShards(fc, shards, cfg.lossAcct)
}

// FleetFromShards merges per-variant, shard-ordered results into the
// population comparison — the aggregation half of RunFleet, split out
// so the experiment service can assemble a result from individually
// cached shards. fc should be normalized.
func FleetFromShards(fc FleetConfig, byVariant [2][]runner.FleetResult, lossAcct bool) FleetResult {
	res := FleetResult{Config: fc}
	classes := workload.Classes()
	byClass := make(map[workload.Class]*FleetClassStats, len(classes))
	for _, c := range classes {
		byClass[c] = &FleetClassStats{Class: c}
	}

	// fcts[variant][class] collects completed FCTs in seconds; small
	// and all collect them across classes for the headline deltas.
	var small, all [2][]float64
	for variant := 0; variant < 2; variant++ {
		shards := byVariant[variant]

		perClass := make(map[workload.Class][]float64, len(classes))
		var jain float64
		var coreDel, coreDrop int
		for _, sr := range shards {
			if sr.Err != nil {
				res.Errs = append(res.Errs, sr.Err)
			}
			jain += sr.JainGoodput
			coreDel += sr.Core.DeliveredPackets
			coreDrop += sr.Core.DroppedPackets
			res.TotalDrops[variant] += sr.TotalDataDrops
			if lossAcct && sr.Ledger != nil {
				if res.Ledgers[variant] == nil {
					res.Ledgers[variant] = &obs.LossLedger{}
				}
				res.Ledgers[variant].Add(*sr.Ledger)
			}
			for _, f := range sr.Flows {
				cs := byClass[f.Class]
				if variant == 0 {
					cs.Flows++
				}
				if !f.Completed {
					res.Incomplete[variant]++
					continue
				}
				cs.Completed[variant]++
				fct := f.FCT.Seconds()
				perClass[f.Class] = append(perClass[f.Class], fct)
				all[variant] = append(all[variant], fct)
				if f.Size <= SmallFlowCutoff {
					small[variant] = append(small[variant], fct)
				}
			}
		}
		res.Jain[variant] = jain / float64(len(shards))
		if coreDel+coreDrop > 0 {
			res.CoreLossRate[variant] = float64(coreDrop) / float64(coreDel+coreDrop)
		}
		for _, c := range classes {
			byClass[c].CDF[variant] = stats.NewCDF(perClass[c])
			byClass[c].MeanFCT[variant] = stats.Mean(perClass[c])
		}
	}
	for _, c := range classes {
		res.Classes = append(res.Classes, *byClass[c])
	}
	res.SmallImprovement = Improvement(stats.Mean(small[0]), stats.Mean(small[1]))
	res.AllImprovement = Improvement(stats.Mean(all[0]), stats.Mean(all[1]))
	return res
}

// Render prints the population comparison the way the paper's tables
// read: per-class FCT quantiles off/on, then the headline deltas.
func (r FleetResult) Render() string {
	var b strings.Builder
	fc := r.Config
	fmt.Fprintf(&b, "Fleet — %d flows over %d shard(s) of %d clients (%d groups × %d), core %.0f Mbit/s\n",
		fc.Flows, fc.Shards, fc.Fleet.Groups*fc.Fleet.HostsPerGroup, fc.Fleet.Groups, fc.Fleet.HostsPerGroup,
		fc.Fleet.CoreRate/1e6)
	fmt.Fprintf(&b, "  %-7s %8s  %25s  %25s\n", "class", "flows", "SUSS off (p50/p95/p99 s)", "SUSS on (p50/p95/p99 s)")
	for _, c := range r.Classes {
		if c.Flows == 0 {
			continue
		}
		q := func(v int) string {
			return fmt.Sprintf("%7.3f/%7.3f/%7.3f", c.CDF[v].Quantile(0.50), c.CDF[v].Quantile(0.95), c.CDF[v].Quantile(0.99))
		}
		fmt.Fprintf(&b, "  %-7s %8d  %25s  %25s\n", c.Class, c.Flows, q(0), q(1))
	}
	fmt.Fprintf(&b, "  small-flow (≤%s) mean-FCT improvement: %.1f%%   all flows: %.1f%%\n",
		SizeLabel(SmallFlowCutoff), 100*r.SmallImprovement, 100*r.AllImprovement)
	fmt.Fprintf(&b, "  Jain (goodput): off=%.3f on=%.3f   core loss: off=%.3f%% on=%.3f%%   drops: off=%d on=%d\n",
		r.Jain[0], r.Jain[1], 100*r.CoreLossRate[0], 100*r.CoreLossRate[1], r.TotalDrops[0], r.TotalDrops[1])
	if n := r.Incomplete[0] + r.Incomplete[1]; n > 0 {
		fmt.Fprintf(&b, "  WARNING: %d flow-run(s) did not complete (excluded from FCT stats)\n", n)
	}
	for v, led := range r.Ledgers {
		if led == nil {
			continue
		}
		variant := [2]string{"off", "on"}[v]
		fmt.Fprintf(&b, "  loss accounting (%s): sent=%d retrans=%d (fast=%d rto=%d tlp=%d) path_drops=%d\n",
			variant, led.SegsSent, led.SegsRetrans, led.RetransFast, led.RetransRTO, led.RetransTLP, led.PathDataDrops)
		for _, p := range led.Check() {
			fmt.Fprintf(&b, "    INCONSISTENT: %s\n", p)
		}
	}
	for _, err := range r.Errs {
		fmt.Fprintf(&b, "  SHARD ERROR: %v\n", err)
	}
	return b.String()
}

// WriteCSV emits the merged per-class FCT CDFs as
// variant,class,quantile,fct_s rows — the determinism contract the
// fleet smoke test pins: identical bytes for identical (config, seed)
// at any worker count.
func (r FleetResult) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "variant,class,quantile,fct_s"); err != nil {
		return err
	}
	for v, variant := range [2]string{"off", "on"} {
		for _, c := range r.Classes {
			if c.Flows == 0 {
				continue
			}
			if err := c.CDF[v].WriteCSV(w, fmt.Sprintf("%s,%s", variant, c.Class), nil); err != nil {
				return err
			}
		}
	}
	return nil
}
