package cubic

import (
	"testing"
	"time"

	"suss/internal/cc"
)

func newHSPPCubic() (*Cubic, *fakeEnv) {
	opt := DefaultOptions()
	opt.HyStartPP = true
	env := &fakeEnv{mss: 1448}
	return New(env, opt), env
}

// driveRound feeds one round of ACKs at the given RTT, advancing the
// round boundary first.
func driveRound(c *Cubic, env *fakeEnv, cum *int64, rtt time.Duration, acks int) {
	// Round-advancing ack: jump cum past the previous round end.
	env.now += rtt
	*cum += 1448 * 1000
	c.OnAck(ackEvent(env, 1448, *cum, *cum+1448*800, rtt))
	for i := 1; i < acks; i++ {
		env.now += rtt / time.Duration(acks)
		*cum += 1448
		c.OnAck(ackEvent(env, 1448, *cum, *cum+1448*800, rtt))
	}
}

func TestHSPPStaysInSlowStartOnFlatRTT(t *testing.T) {
	c, env := newHSPPCubic()
	c.SetCwndSegments(64)
	var cum int64 = 1448
	for r := 0; r < 6; r++ {
		driveRound(c, env, &cum, 100*time.Millisecond, 12)
	}
	if !c.InSlowStart() {
		t.Fatal("flat RTT must not end slow start")
	}
	if c.InCSS() {
		t.Fatal("flat RTT must not enter CSS")
	}
}

func TestHSPPEntersCSSOnDelayIncrease(t *testing.T) {
	c, env := newHSPPCubic()
	c.SetCwndSegments(64)
	var cum int64 = 1448
	driveRound(c, env, &cum, 100*time.Millisecond, 12)
	before := c.CwndSegments()
	// RTT jumps by 20 ms > clamp(100/8, 4, 16) = 12.5→12.5ms... (16ms cap).
	driveRound(c, env, &cum, 120*time.Millisecond, 12)
	if !c.InCSS() {
		t.Fatal("a 20% RTT increase must enter CSS")
	}
	if !c.InSlowStart() {
		t.Fatal("CSS is still slow start")
	}
	// Growth continues but divided by 4.
	afterCSSEntry := c.CwndSegments()
	driveRound(c, env, &cum, 120*time.Millisecond, 12)
	growthCSS := c.CwndSegments() - afterCSSEntry
	if growthCSS <= 0 {
		t.Fatal("CSS must still grow")
	}
	growthSS := afterCSSEntry - before
	if growthCSS > growthSS {
		t.Errorf("CSS growth %v not slower than SS growth %v", growthCSS, growthSS)
	}
}

func TestHSPPExitsAfterFiveCSSRounds(t *testing.T) {
	c, env := newHSPPCubic()
	c.SetCwndSegments(64)
	var cum int64 = 1448
	driveRound(c, env, &cum, 100*time.Millisecond, 12)
	for r := 0; r < 8 && c.InSlowStart(); r++ {
		driveRound(c, env, &cum, 125*time.Millisecond, 12)
	}
	if c.InSlowStart() {
		t.Fatal("persistent delay increase must end slow start after 5 CSS rounds")
	}
	if !c.ExitedByHyStart() {
		t.Error("exit should be attributed to the slow-start heuristic")
	}
}

func TestHSPPSpuriousSignalResumesSlowStart(t *testing.T) {
	c, env := newHSPPCubic()
	c.SetCwndSegments(64)
	var cum int64 = 1448
	driveRound(c, env, &cum, 100*time.Millisecond, 12)
	driveRound(c, env, &cum, 120*time.Millisecond, 12) // enter CSS
	if !c.InCSS() {
		t.Fatal("setup: not in CSS")
	}
	// RTT falls back below the baseline: the signal was spurious.
	driveRound(c, env, &cum, 95*time.Millisecond, 12)
	if c.InCSS() {
		t.Fatal("RTT back below baseline must resume full slow start")
	}
	if !c.InSlowStart() {
		t.Fatal("must still be in slow start")
	}
	// And it can re-enter CSS later.
	driveRound(c, env, &cum, 100*time.Millisecond, 12)
	driveRound(c, env, &cum, 125*time.Millisecond, 12)
	if !c.InCSS() {
		t.Error("should re-enter CSS on a fresh delay increase")
	}
}

func TestHSPPInactiveBelowMinCwnd(t *testing.T) {
	c, env := newHSPPCubic()
	// cwnd stays below 16 segments: signals must be ignored. (Few acks
	// per round so slow-start growth does not cross the threshold.)
	var cum int64 = 1448
	driveRound(c, env, &cum, 100*time.Millisecond, 2)
	driveRound(c, env, &cum, 200*time.Millisecond, 2)
	if c.InCSS() || !c.InSlowStart() {
		t.Error("HyStart++ engaged below its minimum window")
	}
}

func TestHSPPOverridesClassicHyStart(t *testing.T) {
	opt := DefaultOptions()
	opt.HyStart = true
	opt.HyStartPP = true
	env := &fakeEnv{mss: 1448}
	c := New(env, opt)
	if c.hspp == nil {
		t.Fatal("HyStartPP not engaged")
	}
	if c.opt.HyStart {
		t.Fatal("classic HyStart should be disabled when HyStartPP is set")
	}
	_ = cc.AckEvent{}
}
