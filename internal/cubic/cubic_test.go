package cubic

import (
	"math"
	"testing"
	"time"

	"suss/internal/cc"
)

// fakeEnv satisfies cc.Env for unit tests.
type fakeEnv struct {
	now time.Duration
	mss int
}

type fakeTimer struct{}

func (fakeTimer) Stop() bool   { return false }
func (fakeTimer) Active() bool { return false }

func (f *fakeEnv) Now() time.Duration                           { return f.now }
func (f *fakeEnv) Schedule(d time.Duration, fn func()) cc.Timer { return fakeTimer{} }
func (f *fakeEnv) Kick()                                        {}
func (f *fakeEnv) MSS() int                                     { return f.mss }

func newTestCubic(opt Options) (*Cubic, *fakeEnv) {
	env := &fakeEnv{mss: 1448}
	return New(env, opt), env
}

func ackEvent(env *fakeEnv, acked int, cum, nxt int64, rtt time.Duration) cc.AckEvent {
	return cc.AckEvent{
		Now:        env.now,
		AckedBytes: acked,
		CumAck:     cum,
		SndNxt:     nxt,
		RTT:        rtt,
	}
}

func TestInitialWindow(t *testing.T) {
	c, env := newTestCubic(DefaultOptions())
	if got := c.CwndBytes(); got != int64(10*env.mss) {
		t.Errorf("initial cwnd = %d bytes, want %d", got, 10*env.mss)
	}
	if !c.InSlowStart() {
		t.Error("should start in slow start")
	}
}

func TestSlowStartDoublesPerWindow(t *testing.T) {
	opt := DefaultOptions()
	opt.HyStart = false
	c, env := newTestCubic(opt)
	mss := env.mss
	// Ack one full window: cwnd should double.
	start := c.CwndSegments()
	acked := int(start) * mss
	env.now = 100 * time.Millisecond
	c.OnAck(ackEvent(env, acked, int64(acked), int64(2*acked), 100*time.Millisecond))
	if got := c.CwndSegments(); math.Abs(got-2*start) > 0.01 {
		t.Errorf("cwnd after full-window ack = %v, want %v", got, 2*start)
	}
}

func TestRecoveryAcksDoNotGrow(t *testing.T) {
	c, env := newTestCubic(DefaultOptions())
	before := c.CwndSegments()
	ev := ackEvent(env, env.mss, 1448, 2896, 50*time.Millisecond)
	ev.InRecovery = true
	c.OnAck(ev)
	if c.CwndSegments() != before {
		t.Errorf("cwnd grew during recovery: %v → %v", before, c.CwndSegments())
	}
}

func TestLossMultiplicativeDecrease(t *testing.T) {
	c, env := newTestCubic(DefaultOptions())
	c.SetCwndSegments(100)
	c.OnLoss(cc.LossEvent{Now: env.now, Inflight: 100 * 1448})
	if got := c.CwndSegments(); math.Abs(got-70) > 0.01 {
		t.Errorf("cwnd after loss = %v, want 70", got)
	}
	if c.InSlowStart() {
		t.Error("loss must end slow start")
	}
	if math.Abs(c.SsthreshSegments()-70) > 0.01 {
		t.Errorf("ssthresh = %v, want 70", c.SsthreshSegments())
	}
}

func TestFastConvergenceShrinksWmax(t *testing.T) {
	c, _ := newTestCubic(DefaultOptions())
	c.SetCwndSegments(100)
	c.OnLoss(cc.LossEvent{})
	firstWmax := c.wMax
	// Second loss below the previous Wmax: fast convergence shrinks it.
	c.OnLoss(cc.LossEvent{})
	if c.wMax >= firstWmax {
		t.Errorf("wMax %v not shrunk from %v", c.wMax, firstWmax)
	}
	want := 70 * (2 - 0.7) / 2
	if math.Abs(c.wMax-want) > 0.01 {
		t.Errorf("wMax = %v, want %v", c.wMax, want)
	}
}

func TestRTOCollapsesWindow(t *testing.T) {
	c, _ := newTestCubic(DefaultOptions())
	c.SetCwndSegments(50)
	c.OnRTO(time.Second)
	if c.CwndSegments() != 1 {
		t.Errorf("cwnd after RTO = %v, want 1", c.CwndSegments())
	}
	if !c.InSlowStart() {
		t.Error("RTO should re-enter slow start")
	}
	if math.Abs(c.SsthreshSegments()-35) > 0.01 {
		t.Errorf("ssthresh = %v, want 35", c.SsthreshSegments())
	}
}

func TestCubicConcaveGrowthTowardWmax(t *testing.T) {
	opt := DefaultOptions()
	opt.TCPFriendly = false
	c, env := newTestCubic(opt)
	c.SetCwndSegments(100)
	env.now = time.Second
	c.OnAck(ackEvent(env, env.mss, 1448, 1448*200, 100*time.Millisecond)) // set srtt
	c.OnLoss(cc.LossEvent{Now: env.now})
	afterLoss := c.CwndSegments() // 70

	// Drive ACKs for several seconds of virtual time; window must grow
	// back toward Wmax=100 but not wildly beyond in the concave phase.
	mss := env.mss
	var cum int64 = 1448
	for i := 0; i < 4000; i++ {
		env.now += 2 * time.Millisecond
		cum += int64(mss)
		c.OnAck(ackEvent(env, mss, cum, cum+1448*100, 100*time.Millisecond))
	}
	w := c.CwndSegments()
	if w <= afterLoss {
		t.Errorf("no growth after loss: %v", w)
	}
	if w < 95 || w > 130 {
		t.Errorf("cwnd after ≈8s = %v, want near Wmax=100 (cubic plateau)", w)
	}
}

func TestCubicConvexGrowthBeyondWmax(t *testing.T) {
	opt := DefaultOptions()
	opt.TCPFriendly = false
	c, env := newTestCubic(opt)
	c.SetCwndSegments(100)
	env.now = time.Second
	c.OnAck(ackEvent(env, env.mss, 1448, 1448*200, 100*time.Millisecond))
	c.OnLoss(cc.LossEvent{Now: env.now})

	mss := env.mss
	var cum int64 = 1448
	// K = cbrt(100*0.3/0.4) ≈ 4.22 s. Run 12 s: well into convex phase.
	for i := 0; i < 12000; i++ {
		env.now += time.Millisecond
		cum += int64(mss)
		c.OnAck(ackEvent(env, mss, cum, cum+1448*100, 100*time.Millisecond))
	}
	if w := c.CwndSegments(); w < 110 {
		t.Errorf("cwnd after 12s = %v, want convex growth past Wmax", w)
	}
}

func TestHyStartAckTrainExit(t *testing.T) {
	c, env := newTestCubic(DefaultOptions())
	c.SetCwndSegments(64)
	mss := env.mss

	// Establish minRTT = 100 ms.
	env.now = 100 * time.Millisecond
	c.OnAck(ackEvent(env, mss, 1448, 1448*300, 100*time.Millisecond))

	// New round: closely spaced ACKs spanning > minRTT/2 = 50 ms.
	var cum int64 = 1448 * 300
	env.now = 200 * time.Millisecond
	c.OnAck(ackEvent(env, mss, cum+1448, cum+1448*300, 100*time.Millisecond))
	for i := 0; i < 40 && c.InSlowStart(); i++ {
		env.now += 2 * time.Millisecond // within the 2 ms train delta
		cum += 1448
		c.OnAck(ackEvent(env, mss, cum, cum+1448*300, 100*time.Millisecond))
	}
	if c.InSlowStart() {
		t.Fatal("ACK-train detection did not exit slow start")
	}
	if !c.ExitedByHyStart() {
		t.Error("exit should be attributed to HyStart")
	}
}

func TestHyStartDelayExit(t *testing.T) {
	c, env := newTestCubic(DefaultOptions())
	c.SetCwndSegments(64)
	mss := env.mss

	env.now = 100 * time.Millisecond
	c.OnAck(ackEvent(env, mss, 1448, 1448*300, 100*time.Millisecond)) // minRTT=100ms

	// New round with RTT samples at 1.2×minRTT (> 1.125 threshold),
	// spaced widely so the ACK-train detector stays quiet.
	var cum int64 = 1448 * 300
	env.now = 300 * time.Millisecond
	c.OnAck(ackEvent(env, mss, cum+1448, cum+1448*300, 120*time.Millisecond))
	for i := 0; i < 10 && c.InSlowStart(); i++ {
		env.now += 10 * time.Millisecond
		cum += 1448
		c.OnAck(ackEvent(env, mss, cum, cum+1448*300, 120*time.Millisecond))
	}
	if c.InSlowStart() {
		t.Fatal("delay detection did not exit slow start")
	}
}

func TestHyStartInactiveBelowLowWindow(t *testing.T) {
	c, env := newTestCubic(DefaultOptions())
	mss := env.mss
	env.now = 100 * time.Millisecond
	c.OnAck(ackEvent(env, mss, 1448, 1448*300, 100*time.Millisecond))
	// cwnd ≈ 11 < 16: even pathological samples must not exit.
	var cum int64 = 1448 * 300
	env.now = 300 * time.Millisecond
	for i := 0; i < 10; i++ {
		env.now += time.Millisecond
		cum += 1448
		c.OnAck(ackEvent(env, mss, cum, cum+1448*300, 500*time.Millisecond))
	}
	if !c.InSlowStart() {
		t.Error("HyStart fired below its low-window threshold")
	}
}

func TestRoundTracking(t *testing.T) {
	c, env := newTestCubic(DefaultOptions())
	mss := env.mss
	if c.RoundNum() != 0 {
		t.Fatalf("round = %d before any ack", c.RoundNum())
	}
	env.now = 100 * time.Millisecond
	c.OnAck(ackEvent(env, mss, 1448, 1448*20, 50*time.Millisecond))
	if c.RoundNum() != 1 {
		t.Fatalf("round = %d after first ack, want 1", c.RoundNum())
	}
	// ACKs at or below the round end do not advance the round (the ACK
	// carrying exactly the end sequence is the round's last ACK).
	env.now = 120 * time.Millisecond
	c.OnAck(ackEvent(env, mss, 1448*10, 1448*40, 50*time.Millisecond))
	if c.RoundNum() != 1 {
		t.Fatalf("round advanced early: %d", c.RoundNum())
	}
	env.now = 130 * time.Millisecond
	c.OnAck(ackEvent(env, mss, 1448*20, 1448*50, 50*time.Millisecond))
	if c.RoundNum() != 1 {
		t.Fatalf("round advanced on its own end sequence: %d", c.RoundNum())
	}
	// Passing strictly beyond the end sequence starts round 2.
	env.now = 150 * time.Millisecond
	c.OnAck(ackEvent(env, mss, 1448*21, 1448*60, 50*time.Millisecond))
	if c.RoundNum() != 2 {
		t.Fatalf("round = %d, want 2", c.RoundNum())
	}
	if c.RoundStart() != 150*time.Millisecond {
		t.Errorf("round start = %v, want 150ms", c.RoundStart())
	}
}

func TestExitSlowStartIdempotent(t *testing.T) {
	c, _ := newTestCubic(DefaultOptions())
	c.SetCwndSegments(40)
	c.ExitSlowStart()
	if c.InSlowStart() {
		t.Fatal("still in slow start after exit")
	}
	ss := c.SsthreshSegments()
	c.ExitSlowStart() // no-op now
	if c.SsthreshSegments() != ss {
		t.Error("second ExitSlowStart changed ssthresh")
	}
}

func TestCwndFloor(t *testing.T) {
	c, _ := newTestCubic(DefaultOptions())
	c.SetCwndSegments(1)
	if c.CwndSegments() < 2 {
		t.Errorf("SetCwndSegments allowed cwnd below 2: %v", c.CwndSegments())
	}
	c.SetCwndSegments(2.5)
	c.OnLoss(cc.LossEvent{})
	if c.CwndSegments() < 2 {
		t.Errorf("loss pushed cwnd below floor: %v", c.CwndSegments())
	}
}
