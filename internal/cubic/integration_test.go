package cubic_test

import (
	"testing"
	"time"

	"suss/internal/cubic"
	"suss/internal/netsim"
	"suss/internal/tcp"
)

func TestCubicSlowStartOverPath(t *testing.T) {
	sim := netsim.NewSimulator()
	owd := 50 * time.Millisecond
	p := netsim.NewPath(sim, netsim.PathSpec{Forward: []netsim.LinkConfig{
		{Name: "core", Rate: 1e9, Delay: 25 * time.Millisecond, QueueBytes: 16 << 20},
		{Name: "bneck", Rate: 1e8, Delay: 25 * time.Millisecond, QueueBytes: int(1e8 / 8 * 0.1)}, // 1 BDP
	}})
	cfg := tcp.DefaultConfig()
	smux, rmux := tcp.NewDemux(p.Sender), tcp.NewDemux(p.Receiver)
	// Build sender with cubic: the controller needs the sender as env,
	// so create in two steps.
	var ctrl *cubic.Cubic
	f := tcp.NewFlow(sim, cfg, 1, p.Sender, smux, p.Receiver, rmux, 20<<20, nil)
	ctrl = cubic.New(f.Sender, cubic.DefaultOptions())
	f.Sender.SetController(ctrl)

	// Sample cwnd per round during slow start.
	var cwndAt []struct {
		t time.Duration
		w float64
	}
	f.Sender.OnAckTrace = func(now time.Duration, cwnd int64, srtt time.Duration, delivered int64) {
		cwndAt = append(cwndAt, struct {
			t time.Duration
			w float64
		}{now, float64(cwnd) / float64(cfg.MSS)})
	}
	f.StartAt(sim, 0)
	sim.Run(2 * time.Minute)

	if !f.Done() {
		t.Fatal("flow did not complete")
	}
	// Early rounds: cwnd at ~3 RTT should be ≈ 40 segments (10→20→40).
	var wAt3RTT float64
	for _, s := range cwndAt {
		if s.t <= 3*2*owd {
			wAt3RTT = s.w
		}
	}
	if wAt3RTT < 30 || wAt3RTT > 90 {
		t.Errorf("cwnd after ~3 rounds = %v segments, want ≈40-80 (doubling)", wAt3RTT)
	}
	// HyStart or loss must have ended slow start near or below ~1.5 BDP
	// (BDP = 100 Mbps × 100 ms ≈ 863 segments).
	if ctrl.InSlowStart() {
		t.Error("slow start never ended on a 20 MB transfer")
	}

	// Goodput in steady state should approach the bottleneck.
	fct := f.FCT()
	goodput := float64(20<<20) * 8 / fct.Seconds()
	if goodput < 0.5e8 {
		t.Errorf("goodput %.3g bps, want > 50%% of the 100 Mbps bottleneck", goodput)
	}
}

func TestCubicFairnessTwoFlows(t *testing.T) {
	sim := netsim.NewSimulator()
	d := netsim.NewDumbbell(sim, netsim.DumbbellSpec{
		Pairs:      2,
		Access:     netsim.LinkConfig{Rate: 1e9, Delay: 5 * time.Millisecond},
		Bottleneck: netsim.LinkConfig{Rate: 5e7, Delay: 20 * time.Millisecond, QueueBytes: int(5e7 / 8 * 0.05)},
	})
	cfg := tcp.DefaultConfig()
	var flows []*tcp.Flow
	for i := 0; i < 2; i++ {
		smux, rmux := tcp.NewDemux(d.Servers[i]), tcp.NewDemux(d.Clients[i])
		f := tcp.NewFlow(sim, cfg, netsim.FlowID(i+1), d.Servers[i], smux, d.Clients[i], rmux, 60<<20, nil)
		f.Sender.SetController(cubic.New(f.Sender, cubic.DefaultOptions()))
		f.StartAt(sim, 0)
		flows = append(flows, f)
	}
	// Sample mid-transfer (before either flow can finish) so the
	// goodput denominator is honest.
	sim.Run(15 * time.Second)
	d1 := flows[0].Sender.Delivered()
	d2 := flows[1].Sender.Delivered()
	if d1 == 0 || d2 == 0 {
		t.Fatal("a flow starved completely")
	}
	ratio := float64(d1) / float64(d2)
	if ratio < 0.4 || ratio > 2.5 {
		t.Errorf("two identical CUBIC flows split %d / %d (ratio %.2f), want rough fairness", d1, d2, ratio)
	}
	// Together they should use most of the 50 Mbps over the first 15 s.
	total := float64(d1+d2) * 8 / 15
	if total < 0.7*5e7 {
		t.Errorf("aggregate goodput %.3g bps, want > 70%% of bottleneck", total)
	}
}
