// Package cubic implements the CUBIC congestion-control algorithm
// (RFC 9438, Linux-style constants) together with the HyStart
// slow-start exit heuristic (Ha & Rhee, "Taming the elephants"), which
// is the host algorithm SUSS extends and the paper's "CUBIC, SUSS off"
// baseline.
package cubic

import (
	"math"
	"time"

	"suss/internal/cc"
	"suss/internal/obs"
)

// Options configures CUBIC.
type Options struct {
	// IW is the initial window in segments (default 10, RFC 6928).
	IW int
	// C is the cubic scaling constant (default 0.4).
	C float64
	// Beta is the multiplicative decrease factor (default 0.7).
	Beta float64
	// HyStart enables the built-in HyStart slow-start exit. SUSS
	// disables it and runs its modified variant instead.
	HyStart bool
	// HyStartPP selects HyStart++ (RFC 9406) instead of classic
	// HyStart: delay signals send slow start into a conservative phase
	// rather than ending it outright. Mutually exclusive with HyStart
	// (HyStartPP wins if both are set).
	HyStartPP bool
	// FastConvergence enables Wmax shrinking when losses cluster.
	FastConvergence bool
	// TCPFriendly enables the Reno-tracking lower bound region.
	TCPFriendly bool
}

// DefaultOptions mirrors the Linux defaults.
func DefaultOptions() Options {
	return Options{IW: 10, C: 0.4, Beta: 0.7, HyStart: true, FastConvergence: true, TCPFriendly: true}
}

// HyStart constants (Linux tcp_cubic.c).
const (
	hystartLowWindow      = 16                   // segments before HyStart engages
	hystartAckDelta       = 2 * time.Millisecond // ACK-train spacing
	hystartDelayMinThresh = 4 * time.Millisecond
	hystartDelayMaxThresh = 16 * time.Millisecond
	hystartMinSamples     = 8
)

// Cubic is a cc.Controller. Windows are tracked in segments
// (float64, like the kernel's fixed-point cwnd_cnt accounting) and
// exposed in bytes.
type Cubic struct {
	env cc.Env
	opt Options

	cwnd     float64 // segments
	ssthresh float64 // segments

	// Cubic epoch state.
	wMax       float64
	k          float64
	epochStart time.Duration
	hasEpoch   bool
	ackCount   float64 // acked segments this epoch, for the Reno estimate
	wEst       float64

	minRTT cc.MinRTTTracker
	srtt   time.Duration

	// Round tracking (slow-start rounds, for HyStart).
	roundEndSeq int64
	roundStart  time.Duration
	roundNum    int

	// HyStart per-round state.
	hyLastAck   time.Duration
	hyCurrRTT   time.Duration
	hySampleCnt int
	exited      bool // slow start exited by HyStart (ssthresh set)

	// HyStart++ state (nil unless Options.HyStartPP).
	hspp *hystartPP

	// undo snapshots the window state at the last OnRTO so a spurious
	// timeout can be reverted (cc.Undoer).
	undo cubicUndo

	// rec, when non-nil, receives HyStart exit events.
	rec *obs.FlowRecorder
}

// AttachRecorder installs a flight recorder on this controller. Pass
// nil to detach.
func (c *Cubic) AttachRecorder(r *obs.FlowRecorder) { c.rec = r }

// noteHyStartExit records a slow-start exit decided by one of the
// HyStart variants.
func (c *Cubic) noteHyStartExit(now time.Duration, reason obs.HyStartReason) {
	if r := c.rec; r != nil {
		r.C.HyStartExits++
		r.Record(now, obs.EvHyStartExit, 0, 0, int64(reason), c.CwndBytes())
	}
}

// New creates a CUBIC controller bound to the transport environment.
func New(env cc.Env, opt Options) *Cubic {
	if opt.IW <= 0 {
		opt.IW = 10
	}
	if opt.C == 0 {
		opt.C = 0.4
	}
	if opt.Beta == 0 {
		opt.Beta = 0.7
	}
	c := &Cubic{
		env:      env,
		opt:      opt,
		cwnd:     float64(opt.IW),
		ssthresh: math.MaxFloat64 / 4,
	}
	if opt.HyStartPP {
		c.opt.HyStart = false
		c.hspp = &hystartPP{}
	}
	return c
}

// Name implements cc.Controller.
func (c *Cubic) Name() string { return "cubic" }

// CwndBytes implements cc.Controller.
func (c *Cubic) CwndBytes() int64 {
	return int64(c.cwnd * float64(c.env.MSS()))
}

// CwndSegments returns the window in segments.
func (c *Cubic) CwndSegments() float64 { return c.cwnd }

// SetCwndSegments overrides the window (used by tests and by SUSS when
// capping growth).
func (c *Cubic) SetCwndSegments(w float64) {
	if w < 2 {
		w = 2
	}
	c.cwnd = w
}

// AddCwndSegments opens the window by n segments (SUSS red-packet
// increments arrive through here).
func (c *Cubic) AddCwndSegments(n float64) { c.cwnd += n }

// SsthreshSegments returns the current slow-start threshold.
func (c *Cubic) SsthreshSegments() float64 { return c.ssthresh }

// InSlowStart implements cc.Controller.
func (c *Cubic) InSlowStart() bool { return c.cwnd < c.ssthresh }

// ExitSlowStart pins ssthresh to the current window, ending
// exponential growth (HyStart's action; SUSS's modified HyStart calls
// this too).
func (c *Cubic) ExitSlowStart() {
	if c.InSlowStart() {
		c.ssthresh = c.cwnd
		c.exited = true
	}
}

// ExitedByHyStart reports whether slow start ended via HyStart rather
// than loss.
func (c *Cubic) ExitedByHyStart() bool { return c.exited }

// MinRTT returns the connection minimum RTT CUBIC has observed.
func (c *Cubic) MinRTT() time.Duration { return c.minRTT.Get() }

// RoundNum returns the slow-start round counter (increments when the
// cumulative ACK passes the round's end sequence).
func (c *Cubic) RoundNum() int { return c.roundNum }

// RoundStart returns when the current round began.
func (c *Cubic) RoundStart() time.Duration { return c.roundStart }

// PacingRate implements cc.Controller: CUBIC is ACK-clocked.
func (c *Cubic) PacingRate() float64 { return 0 }

// OnPacketSent implements cc.Controller.
func (c *Cubic) OnPacketSent(now time.Duration, size int, seq int64, retrans bool) {}

// OnAck implements cc.Controller.
func (c *Cubic) OnAck(ev cc.AckEvent) {
	if ev.RTT > 0 {
		c.minRTT.Update(ev.RTT, ev.Now)
		c.srtt = ev.RTT
	}
	prevRound := c.roundNum
	c.trackRound(ev)
	if ev.InRecovery {
		return
	}
	ackedSegs := float64(ev.AckedBytes) / float64(c.env.MSS())
	if c.InSlowStart() {
		if c.hspp != nil {
			c.cwnd += ackedSegs / c.hspp.growthDivisor()
			c.hystartPPUpdate(ev, c.roundNum != prevRound)
		} else {
			c.cwnd += ackedSegs
			if c.opt.HyStart {
				c.hystartUpdate(ev)
			}
		}
		return
	}
	c.congestionAvoidance(ev.Now, ackedSegs)
}

// TrackRoundOnly advances round and RTT bookkeeping without any
// window growth. SUSS calls this instead of OnAck while it freezes
// ACK-driven growth during a pacing round.
func (c *Cubic) TrackRoundOnly(ev cc.AckEvent) {
	if ev.RTT > 0 {
		c.minRTT.Update(ev.RTT, ev.Now)
		c.srtt = ev.RTT
	}
	c.trackRound(ev)
}

// trackRound advances the slow-start round bookkeeping. The boundary
// is strictly-after (Linux after() semantics): the ACK carrying
// exactly the end sequence still belongs to the ending round.
func (c *Cubic) trackRound(ev cc.AckEvent) {
	if ev.CumAck > c.roundEndSeq || c.roundNum == 0 {
		c.roundEndSeq = ev.SndNxt
		c.roundStart = ev.Now
		c.roundNum++
		c.hyLastAck = ev.Now
		c.hyCurrRTT = 0
		c.hySampleCnt = 0
	}
}

// hystartUpdate runs the two HyStart exit detectors.
func (c *Cubic) hystartUpdate(ev cc.AckEvent) {
	minRTT := c.minRTT.Get()
	if c.cwnd < hystartLowWindow || minRTT == 0 {
		return
	}
	now := ev.Now

	// (1) ACK-train detection: closely-spaced ACKs whose span from the
	// round start exceeds minRTT/2 mean the data train is as long as
	// half the path — time to stop doubling. The spacing test uses the
	// gap to the previous ACK (rather than Linux's last-qualifying-ACK
	// timestamp, which one jittery gap poisons for the whole round).
	gap := now - c.hyLastAck
	c.hyLastAck = now
	if gap <= hystartAckDelta {
		if now-c.roundStart > minRTT/2 {
			c.ExitSlowStart()
			c.noteHyStartExit(now, obs.ExitTrain)
			return
		}
	}

	// (2) Delay detection: the minimum RTT over the first 8 samples of
	// the round exceeding minRTT by ~minRTT/8 signals queue build-up.
	if ev.RTT > 0 && c.hySampleCnt < hystartMinSamples {
		if c.hyCurrRTT == 0 || ev.RTT < c.hyCurrRTT {
			c.hyCurrRTT = ev.RTT
		}
		c.hySampleCnt++
		if c.hySampleCnt >= hystartMinSamples {
			thresh := minRTT / 8
			if thresh < hystartDelayMinThresh {
				thresh = hystartDelayMinThresh
			}
			if thresh > hystartDelayMaxThresh {
				thresh = hystartDelayMaxThresh
			}
			if c.hyCurrRTT >= minRTT+thresh {
				c.ExitSlowStart()
				c.noteHyStartExit(now, obs.ExitDelay)
			}
		}
	}
}

// congestionAvoidance applies the RFC 9438 window update.
func (c *Cubic) congestionAvoidance(now time.Duration, ackedSegs float64) {
	if !c.hasEpoch {
		c.epochStart = now
		c.hasEpoch = true
		if c.cwnd >= c.wMax {
			// Exiting slow start above the last Wmax: concave-free
			// epoch anchored at the current window.
			c.wMax = c.cwnd
			c.k = 0
		} else {
			c.k = math.Cbrt(c.wMax * (1 - c.opt.Beta) / c.opt.C)
		}
		c.ackCount = 0
		c.wEst = c.cwnd
	}
	c.ackCount += ackedSegs

	t := (now - c.epochStart).Seconds()
	rtt := c.srtt.Seconds()
	target := c.wMax + c.opt.C*math.Pow(t+rtt-c.k, 3)

	var incPerAck float64
	if target > c.cwnd {
		incPerAck = (target - c.cwnd) / c.cwnd
	} else {
		incPerAck = 0.01 / c.cwnd // minimal probing, as in the kernel
	}

	if c.opt.TCPFriendly {
		// Reno-equivalent estimate: W_est grows by ~0.5·3(1-β)/(1+β)
		// segments per window of ACKs (RFC 9438 §4.3).
		alpha := 3 * (1 - c.opt.Beta) / (1 + c.opt.Beta)
		c.wEst += alpha * ackedSegs / c.cwnd
		if c.wEst > c.cwnd+incPerAck*ackedSegs {
			c.cwnd = c.wEst
			return
		}
	}
	c.cwnd += incPerAck * ackedSegs
}

// cubicUndo is the pre-RTO window snapshot for cc.Undoer.
type cubicUndo struct {
	valid          bool
	cwnd, ssthresh float64
	wMax, k        float64
	epochStart     time.Duration
	hasEpoch       bool
	ackCount, wEst float64
}

// OnLoss implements cc.Controller: multiplicative decrease and a new
// cubic epoch.
func (c *Cubic) OnLoss(ev cc.LossEvent) {
	c.undo.valid = false // real congestion: the pre-RTO state is stale
	c.hasEpoch = false
	if c.opt.FastConvergence && c.cwnd < c.wMax {
		c.wMax = c.cwnd * (2 - c.opt.Beta) / 2
	} else {
		c.wMax = c.cwnd
	}
	c.cwnd *= c.opt.Beta
	if c.cwnd < 2 {
		c.cwnd = 2
	}
	c.ssthresh = c.cwnd
}

// OnRTO implements cc.Controller: collapse to one segment and slow
// start toward half the pre-timeout flight.
func (c *Cubic) OnRTO(now time.Duration) {
	c.undo = cubicUndo{
		valid:      true,
		cwnd:       c.cwnd,
		ssthresh:   c.ssthresh,
		wMax:       c.wMax,
		k:          c.k,
		epochStart: c.epochStart,
		hasEpoch:   c.hasEpoch,
		ackCount:   c.ackCount,
		wEst:       c.wEst,
	}
	c.hasEpoch = false
	c.wMax = c.cwnd
	c.ssthresh = math.Max(c.cwnd*c.opt.Beta, 2)
	c.cwnd = 1
}

// UndoRTO implements cc.Undoer: restore the window state snapshotted
// by the most recent OnRTO. No-op once the undo window closed (a real
// OnLoss since, or already undone).
func (c *Cubic) UndoRTO(now time.Duration) {
	if !c.undo.valid {
		return
	}
	u := c.undo
	c.undo.valid = false
	c.cwnd = u.cwnd
	c.ssthresh = u.ssthresh
	c.wMax = u.wMax
	c.k = u.k
	c.epochStart = u.epochStart
	c.hasEpoch = u.hasEpoch
	c.ackCount = u.ackCount
	c.wEst = u.wEst
}
