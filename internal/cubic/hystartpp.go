package cubic

import (
	"time"

	"suss/internal/cc"
	"suss/internal/obs"
)

// hystartPP implements HyStart++ (RFC 9406), the slow-start exit
// heuristic deployed in Windows and newer Linux kernels and cited by
// the paper as the modern alternative to HyStart. Instead of exiting
// slow start outright on a delay signal, it enters Conservative Slow
// Start (CSS) — exponential growth slowed by 4× — and either confirms
// the signal after five CSS rounds (exit to congestion avoidance) or
// detects it was spurious (RTT fell back below the baseline) and
// resumes full slow start.
type hystartPP struct {
	// Per-round RTT measurement.
	lastRoundMinRTT time.Duration
	currRoundMinRTT time.Duration
	samples         int

	// CSS state.
	inCSS          bool
	cssBaselineRTT time.Duration
	cssRounds      int
	cssStartCwnd   float64
}

// RFC 9406 constants.
const (
	hsppMinSamples      = 8
	hsppMinRTTThresh    = 4 * time.Millisecond
	hsppMaxRTTThresh    = 16 * time.Millisecond
	hsppDivisor         = 8 // RTT divisor for the threshold
	hsppCSSGrowthDiv    = 4
	hsppCSSRounds       = 5
	hsppMinCwndSegments = 16 // conservative: same low window as HyStart
)

// roundStart rolls the per-round state.
func (h *hystartPP) roundStart() {
	h.lastRoundMinRTT = h.currRoundMinRTT
	h.currRoundMinRTT = 0
	h.samples = 0
	if h.inCSS {
		h.cssRounds++
	}
}

// sample folds in one RTT observation, returning true when CSS decides
// slow start is over.
func (h *hystartPP) sample(rtt time.Duration, cwndSegments float64) (exitSlowStart bool) {
	if rtt <= 0 {
		return false
	}
	if h.currRoundMinRTT == 0 || rtt < h.currRoundMinRTT {
		h.currRoundMinRTT = rtt
	}
	h.samples++
	if cwndSegments < hsppMinCwndSegments {
		return false
	}
	if h.samples < hsppMinSamples || h.lastRoundMinRTT == 0 {
		return false
	}

	if !h.inCSS {
		// RFC 9406 §4.2: RttThresh = clamp(lastRoundMinRTT/8, 4ms, 16ms).
		thresh := h.lastRoundMinRTT / hsppDivisor
		if thresh < hsppMinRTTThresh {
			thresh = hsppMinRTTThresh
		}
		if thresh > hsppMaxRTTThresh {
			thresh = hsppMaxRTTThresh
		}
		if h.currRoundMinRTT >= h.lastRoundMinRTT+thresh {
			h.inCSS = true
			h.cssBaselineRTT = h.lastRoundMinRTT
			h.cssRounds = 0
			h.cssStartCwnd = cwndSegments
		}
		return false
	}

	// In CSS: a fall back below the baseline means the delay increase
	// was spurious — resume full slow start.
	if h.currRoundMinRTT < h.cssBaselineRTT {
		h.inCSS = false
		return false
	}
	return h.cssRounds >= hsppCSSRounds
}

// growthDivisor returns the current slow-start growth divisor (1
// normally, 4 in CSS).
func (h *hystartPP) growthDivisor() float64 {
	if h.inCSS {
		return hsppCSSGrowthDiv
	}
	return 1
}

// InCSS reports whether HyStart++ is in its conservative phase
// (exposed for traces and tests).
func (c *Cubic) InCSS() bool { return c.hspp != nil && c.hspp.inCSS }

// hystartPPUpdate drives HyStart++ from the ACK stream; it assumes the
// caller already applied the (divided) window growth.
func (c *Cubic) hystartPPUpdate(ev cc.AckEvent, newRound bool) {
	if newRound {
		c.hspp.roundStart()
	}
	if c.hspp.sample(ev.RTT, c.cwnd) {
		c.ExitSlowStart()
		c.noteHyStartExit(ev.Now, obs.ExitCSS)
	}
}
