package obs

import (
	"bufio"
	"fmt"
	"io"
	"time"
)

// WriteEventsJSONL streams the retained events as JSON Lines, oldest
// first, one object per line. Field meaning follows the EventKind
// docs; "cause" is the decoded Aux for kinds that carry one.
func WriteEventsJSONL(w io.Writer, r *Ring) error {
	bw := bufio.NewWriter(w)
	var err error
	r.Do(func(ev Event) bool {
		_, e := fmt.Fprintf(bw,
			`{"t_us":%d,"kind":%q,"flow":%d,"seq":%d,"len":%d,"aux":%d,"aux2":%d%s}`+"\n",
			ev.T.Microseconds(), ev.Kind.String(), ev.Flow, ev.Seq, ev.Len, ev.Aux, ev.Aux2,
			causeField(ev))
		if e != nil {
			err = e
			return false
		}
		return true
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}

// WriteEventsCSV streams the retained events as CSV with a header row.
func WriteEventsCSV(w io.Writer, r *Ring) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "t_us,kind,flow,seq,len,aux,aux2"); err != nil {
		return err
	}
	var err error
	r.Do(func(ev Event) bool {
		_, e := fmt.Fprintf(bw, "%d,%s,%d,%d,%d,%d,%d\n",
			ev.T.Microseconds(), ev.Kind, ev.Flow, ev.Seq, ev.Len, ev.Aux, ev.Aux2)
		if e != nil {
			err = e
			return false
		}
		return true
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}

// causeField renders the per-kind decoded Aux as an extra JSON field
// (empty for kinds whose Aux is a plain number).
func causeField(ev Event) string {
	switch ev.Kind {
	case EvSegRetrans:
		return `,"cause":"` + RetransCause(ev.Aux).String() + `"`
	case EvQdiscDrop:
		return `,"cause":"` + DropCause(ev.Aux).String() + `"`
	case EvHyStartExit:
		return `,"cause":"` + HyStartReason(ev.Aux).String() + `"`
	default:
		return ""
	}
}

// FormatEvent renders one event as the same single line the timeline
// view uses — for callers (the runner watchdog) that dump a short
// event tail into an error message rather than streaming a whole ring.
func FormatEvent(ev Event) string {
	return fmt.Sprintf("%12s flow=%-2d %-14s %s", fmtT(ev.T), ev.Flow, ev.Kind, describe(ev))
}

// WriteTimeline renders the retained events as a human-readable
// per-line narrative, oldest first — the "what did this flow actually
// do" view for debugging a single download.
func WriteTimeline(w io.Writer, r *Ring) error {
	bw := bufio.NewWriter(w)
	var err error
	r.Do(func(ev Event) bool {
		_, e := fmt.Fprintf(bw, "%12s flow=%-2d %-14s %s\n",
			fmtT(ev.T), ev.Flow, ev.Kind, describe(ev))
		if e != nil {
			err = e
			return false
		}
		return true
	})
	if err != nil {
		return err
	}
	if r.Overwritten() > 0 {
		if _, err := fmt.Fprintf(bw, "(ring overwrote %d older events)\n", r.Overwritten()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func fmtT(t time.Duration) string {
	return fmt.Sprintf("%.3fms", float64(t.Microseconds())/1000)
}

// describe expands the per-kind payload for the timeline view.
func describe(ev Event) string {
	switch ev.Kind {
	case EvSegSent:
		return fmt.Sprintf("seq=%d len=%d inflight=%d", ev.Seq, ev.Len, ev.Aux)
	case EvSegRetrans:
		return fmt.Sprintf("seq=%d len=%d cause=%s", ev.Seq, ev.Len, RetransCause(ev.Aux))
	case EvAckRecvd:
		return fmt.Sprintf("cum=%d newly_acked=%d inflight=%d", ev.Seq, ev.Len, ev.Aux)
	case EvSackRecvd:
		return fmt.Sprintf("cum=%d ranges=%d", ev.Seq, ev.Aux)
	case EvRTOFired:
		return fmt.Sprintf("rto_count=%d", ev.Aux)
	case EvTLPFired:
		return fmt.Sprintf("probe_seq=%d len=%d", ev.Seq, ev.Len)
	case EvLossDetected:
		return fmt.Sprintf("seq=%d len=%d", ev.Seq, ev.Len)
	case EvCwndChanged:
		return fmt.Sprintf("cwnd=%d (was %d)", ev.Aux, ev.Aux2)
	case EvSussRoundStart:
		return fmt.Sprintf("round=%d cwnd=%d", ev.Aux, ev.Aux2)
	case EvSussBoost:
		return fmt.Sprintf("g=%d red_bytes=%d", ev.Aux, ev.Aux2)
	case EvSussExit:
		if ev.Aux == 1 {
			return "pacing aborted"
		}
		return "slow start over"
	case EvHyStartExit:
		return fmt.Sprintf("reason=%s cwnd=%d", HyStartReason(ev.Aux), ev.Aux2)
	case EvQdiscDrop:
		return fmt.Sprintf("seq=%d size=%d cause=%s", ev.Seq, ev.Aux2, DropCause(ev.Aux))
	case EvLinkDup:
		return fmt.Sprintf("seq=%d size=%d", ev.Seq, ev.Aux2)
	case EvRTOUndone:
		return fmt.Sprintf("una=%d spurious_rtos=%d cwnd=%d", ev.Seq, ev.Aux, ev.Aux2)
	case EvSackReneged:
		return fmt.Sprintf("cum=%d discarded_bytes=%d", ev.Seq, ev.Len)
	case EvRenegDetected:
		return fmt.Sprintf("una=%d highest_sacked=%d", ev.Seq, ev.Aux)
	case EvFlowAbort:
		return fmt.Sprintf("una=%d rto_count=%d", ev.Seq, ev.Aux)
	default:
		return fmt.Sprintf("seq=%d len=%d aux=%d aux2=%d", ev.Seq, ev.Len, ev.Aux, ev.Aux2)
	}
}

// WriteCounters dumps every flow and link counter block in attach
// order as aligned name/value lines — the -counters view.
func WriteCounters(w io.Writer, g *Registry) error {
	bw := bufio.NewWriter(w)
	for _, f := range g.Flows() {
		if _, err := fmt.Fprintf(bw, "flow %d:\n", f.Flow); err != nil {
			return err
		}
		c := &f.C
		rows := []struct {
			name string
			v    int64
		}{
			{"segs_sent", c.SegsSent},
			{"segs_retrans", c.SegsRetrans},
			{"retrans_fast", c.RetransFast},
			{"retrans_rto", c.RetransRTO},
			{"retrans_tlp", c.RetransTLP},
			{"retrans_reneg", c.RetransReneg},
			{"acks_seen", c.AcksSeen},
			{"sack_ranges", c.SackRanges},
			{"rto_fires", c.RTOFires},
			{"tlp_fires", c.TLPFires},
			{"loss_detected", c.LossDetected},
			{"spurious_retrans", c.SpuriousRetrans},
			{"spurious_rto_undos", c.SpuriousRTOUndos},
			{"sack_renegings", c.SackRenegings},
			{"flow_aborts", c.FlowAborts},
			{"cwnd_changes", c.CwndChanges},
			{"rcv_segs", c.RcvSegs},
			{"rcv_dup_segs", c.RcvDupSegs},
			{"rcv_dup_bytes", c.RcvDupBytes},
			{"rcv_renege_events", c.RcvRenegeEvents},
			{"rcv_reneged_bytes", c.RcvRenegedBytes},
			{"suss_rounds", c.SussRounds},
			{"suss_boosts", c.SussBoosts},
			{"suss_exits", c.SussExits},
			{"hystart_exits", c.HyStartExits},
			{"wire_frames_out", c.WireFramesOut},
			{"wire_bytes_out", c.WireBytesOut},
			{"wire_frames_in", c.WireFramesIn},
			{"wire_bytes_in", c.WireBytesIn},
		}
		for _, r := range rows {
			if _, err := fmt.Fprintf(bw, "  %-18s %d\n", r.name, r.v); err != nil {
				return err
			}
		}
	}
	for _, l := range g.Links() {
		if _, err := fmt.Fprintf(bw, "link %s:\n", l.Name); err != nil {
			return err
		}
		c := &l.C
		rows := []struct {
			name string
			v    int64
		}{
			{"enq_pkts", c.EnqueuedPkts},
			{"enq_bytes", c.EnqueuedBytes},
			{"taildrop_pkts", c.TailDropPkts},
			{"taildrop_bytes", c.TailDropBytes},
			{"aqm_drop_pkts", c.AQMDropPkts},
			{"aqm_drop_bytes", c.AQMDropBytes},
			{"erased_pkts", c.ErasedPkts},
			{"erased_bytes", c.ErasedBytes},
			{"corrupt_pkts", c.CorruptPkts},
			{"corrupt_bytes", c.CorruptBytes},
			{"outage_pkts", c.OutagePkts},
			{"outage_bytes", c.OutageBytes},
			{"dup_pkts", c.DupPkts},
			{"dup_bytes", c.DupBytes},
			{"dup_data_pkts", c.DupDataPkts},
			{"data_drop_pkts", c.DataDropPkts},
			{"depth_hiwater", c.DepthHighWaterBytes},
		}
		for _, r := range rows {
			if _, err := fmt.Fprintf(bw, "  %-18s %d\n", r.name, r.v); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}
