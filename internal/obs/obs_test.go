package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestRingOverwritesOldest(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 7; i++ {
		r.Record(Event{Kind: EvSegSent, Seq: int64(i)})
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4", r.Len())
	}
	if r.Overwritten() != 3 {
		t.Fatalf("Overwritten = %d, want 3", r.Overwritten())
	}
	got := r.Snapshot(nil)
	for i, ev := range got {
		if want := int64(i + 3); ev.Seq != want {
			t.Errorf("event %d: Seq = %d, want %d (oldest-first order)", i, ev.Seq, want)
		}
	}
}

func TestRingPartialFillAndEarlyStop(t *testing.T) {
	r := NewRing(8)
	for i := 0; i < 3; i++ {
		r.Record(Event{Seq: int64(i)})
	}
	if r.Len() != 3 || r.Overwritten() != 0 {
		t.Fatalf("Len=%d Overwritten=%d, want 3, 0", r.Len(), r.Overwritten())
	}
	var seen int
	r.Do(func(Event) bool {
		seen++
		return seen < 2
	})
	if seen != 2 {
		t.Fatalf("Do visited %d events after early stop, want 2", seen)
	}
}

func TestNilRingIsSafe(t *testing.T) {
	var r *Ring
	r.Record(Event{Kind: EvSegSent}) // must not panic
	if r.Len() != 0 || r.Overwritten() != 0 {
		t.Fatal("nil ring should report empty")
	}
	r.Do(func(Event) bool { t.Fatal("nil ring should not iterate"); return false })
	if got := r.Snapshot(nil); got != nil {
		t.Fatalf("nil ring Snapshot = %v, want nil", got)
	}
}

func TestNilRecordersAreSafe(t *testing.T) {
	var f *FlowRecorder
	f.Record(time.Millisecond, EvSegSent, 0, 1448, 0, 0)
	var l *LinkRecorder
	l.Enqueued(1500, 3000)
	l.Dropped(time.Millisecond, DropTail, 1, 0, 1500, true)
}

func TestRegistryAttachAndOrder(t *testing.T) {
	g := NewRegistry(16)
	f2 := g.Flow(2)
	f1 := g.Flow(1)
	if g.Flow(2) != f2 {
		t.Fatal("Flow(2) not idempotent")
	}
	lb := g.Link("bottleneck")
	la := g.Link("access")
	if g.Link("bottleneck") != lb {
		t.Fatal("Link not idempotent")
	}
	flows := g.Flows()
	if len(flows) != 2 || flows[0] != f2 || flows[1] != f1 {
		t.Fatalf("Flows() not in attach order: %v", flows)
	}
	links := g.Links()
	if len(links) != 2 || links[0] != lb || links[1] != la {
		t.Fatalf("Links() not in attach order")
	}

	f1.Record(time.Second, EvSegSent, 100, 1448, 0, 0)
	lb.Dropped(2*time.Second, DropAQM, 1, 200, 1500, true)
	evs := g.Events().Snapshot(nil)
	if len(evs) != 2 {
		t.Fatalf("shared ring holds %d events, want 2", len(evs))
	}
	if evs[0].Kind != EvSegSent || evs[0].Flow != 1 {
		t.Errorf("event 0 = %+v", evs[0])
	}
	if evs[1].Kind != EvQdiscDrop || evs[1].Aux != int64(DropAQM) {
		t.Errorf("event 1 = %+v", evs[1])
	}
}

func TestLinkRecorderCounters(t *testing.T) {
	g := NewRegistry(16)
	l := g.Link("bn")
	l.Enqueued(1500, 1500)
	l.Enqueued(1500, 4500)
	l.Enqueued(100, 3000) // depth below high water: gauge must not regress
	l.Dropped(0, DropTail, 1, 0, 1500, true)
	l.Dropped(0, DropAQM, 1, 10, 1500, true)
	l.Dropped(0, DropErasure, 1, 20, 1500, true)
	l.Dropped(0, DropTail, 1, 0, 40, false) // ACK drop: not a data drop
	c := l.C
	if c.EnqueuedPkts != 3 || c.EnqueuedBytes != 3100 {
		t.Errorf("enqueue counters: %+v", c)
	}
	if c.DepthHighWaterBytes != 4500 {
		t.Errorf("DepthHighWaterBytes = %d, want 4500", c.DepthHighWaterBytes)
	}
	if c.TailDropPkts != 2 || c.AQMDropPkts != 1 || c.ErasedPkts != 1 {
		t.Errorf("drop counters: %+v", c)
	}
	// Congestion drops of data packets only: tail(data) + aqm(data).
	// The erasure and the ACK tail drop are excluded.
	if c.DataDropPkts != 2 {
		t.Errorf("DataDropPkts = %d, want 2", c.DataDropPkts)
	}
}

func TestLedgerCheck(t *testing.T) {
	ok := LossLedger{SegsRetrans: 5, RetransFast: 3, RetransRTO: 2, LossDetected: 4}
	if bad := ok.Check(); len(bad) != 0 {
		t.Fatalf("consistent ledger flagged: %v", bad)
	}
	unpart := LossLedger{SegsRetrans: 5, RetransFast: 3, LossDetected: 4}
	if bad := unpart.Check(); len(bad) != 1 || !strings.Contains(bad[0], "not partitioned") {
		t.Fatalf("unpartitioned ledger: %v", bad)
	}
	over := LossLedger{SegsRetrans: 5, RetransFast: 5, LossDetected: 3}
	if bad := over.Check(); len(bad) != 1 || !strings.Contains(bad[0], "exceed") {
		t.Fatalf("over-retransmitting ledger: %v", bad)
	}
}

func TestMakeLedgerAndAdd(t *testing.T) {
	f := FlowCounters{SegsSent: 100, SegsRetrans: 3, RetransFast: 2, RetransRTO: 1, LossDetected: 2, RTOFires: 1}
	l1 := LinkCounters{DataDropPkts: 2, ErasedPkts: 1}
	l2 := LinkCounters{DataDropPkts: 1}
	led := MakeLedger(&f, &l1, &l2)
	if led.PathDataDrops != 3 || led.PathErasures != 1 {
		t.Fatalf("path sums: %+v", led)
	}
	led.Add(led)
	if led.SegsSent != 200 || led.PathDataDrops != 6 {
		t.Fatalf("Add: %+v", led)
	}
}

func TestExportJSONL(t *testing.T) {
	g := NewRegistry(16)
	f := g.Flow(1)
	f.Record(1500*time.Microsecond, EvSegSent, 0, 1448, 1448, 0)
	f.Record(2*time.Millisecond, EvSegRetrans, 0, 1448, int64(CauseRTO), 0)
	g.Link("bn").Dropped(3*time.Millisecond, DropTail, 1, 2896, 1500, true)

	var buf bytes.Buffer
	if err := WriteEventsJSONL(&buf, g.Events()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3:\n%s", len(lines), buf.String())
	}
	for i, ln := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(ln), &m); err != nil {
			t.Fatalf("line %d not valid JSON: %v\n%s", i, err, ln)
		}
	}
	var m map[string]any
	if err := json.Unmarshal([]byte(lines[1]), &m); err != nil {
		t.Fatal(err)
	}
	if m["kind"] != "SegRetrans" || m["cause"] != "rto" {
		t.Errorf("retrans line decoded to %v", m)
	}
	if err := json.Unmarshal([]byte(lines[2]), &m); err != nil {
		t.Fatal(err)
	}
	if m["kind"] != "QdiscDrop" || m["cause"] != "tail" {
		t.Errorf("drop line decoded to %v", m)
	}
}

func TestExportCSVAndTimeline(t *testing.T) {
	g := NewRegistry(2)
	f := g.Flow(7)
	f.Record(time.Millisecond, EvAckRecvd, 1448, 1448, 0, 0)
	f.Record(2*time.Millisecond, EvCwndChanged, 0, 0, 28960, 14480)
	f.Record(3*time.Millisecond, EvHyStartExit, 0, 0, int64(ExitDelay), 500000)

	var csv bytes.Buffer
	if err := WriteEventsCSV(&csv, g.Events()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if lines[0] != "t_us,kind,flow,seq,len,aux,aux2" {
		t.Errorf("header = %q", lines[0])
	}
	if len(lines) != 3 { // header + 2 retained (cap 2, oldest overwritten)
		t.Fatalf("got %d lines, want 3:\n%s", len(lines), csv.String())
	}
	if !strings.HasPrefix(lines[1], "2000,CwndChanged,7,") {
		t.Errorf("first retained row = %q", lines[1])
	}

	var tl bytes.Buffer
	if err := WriteTimeline(&tl, g.Events()); err != nil {
		t.Fatal(err)
	}
	out := tl.String()
	for _, want := range []string{"CwndChanged", "cwnd=28960 (was 14480)", "reason=delay", "ring overwrote 1 older events"} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline missing %q:\n%s", want, out)
		}
	}
}

func TestWriteCounters(t *testing.T) {
	g := NewRegistry(4)
	f := g.Flow(1)
	f.C.SegsSent = 42
	f.C.SpuriousRetrans = 2
	l := g.Link("bn")
	l.C.DataDropPkts = 5
	var buf bytes.Buffer
	if err := WriteCounters(&buf, g); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"flow 1:", "segs_sent", "42", "spurious_retrans", "link bn:", "data_drop_pkts"} {
		if !strings.Contains(out, want) {
			t.Errorf("counters dump missing %q:\n%s", want, out)
		}
	}
}

func TestEventKindStrings(t *testing.T) {
	for k := EvNone; k < numEventKinds; k++ {
		if k.String() == "" || k.String() == "Unknown" {
			t.Errorf("EventKind %d has no name", k)
		}
	}
	if EventKind(200).String() != "Unknown" {
		t.Error("out-of-range kind should be Unknown")
	}
}

// TestRecordingAllocsZero is the recorder-path zero-alloc gate: once a
// registry is attached, recording events and bumping counters must not
// allocate, so observation never disturbs the pooled hot path.
func TestRecordingAllocsZero(t *testing.T) {
	g := NewRegistry(1024)
	f := g.Flow(1)
	l := g.Link("bn")
	var seq int64
	allocs := testing.AllocsPerRun(500, func() {
		f.Record(time.Duration(seq)*time.Microsecond, EvSegSent, seq, 1448, 0, 0)
		f.C.SegsSent++
		f.C.AcksSeen++
		l.Enqueued(1500, int(seq%100000))
		l.Dropped(time.Duration(seq)*time.Microsecond, DropTail, 1, seq, 1500, true)
		seq += 1448
	})
	if allocs > 0 {
		t.Errorf("recording path allocates %.1f per run, want 0", allocs)
	}
}

// TestNilRecorderAllocsZero proves the detached case costs nothing:
// nil-receiver calls neither allocate nor panic.
func TestNilRecorderAllocsZero(t *testing.T) {
	var f *FlowRecorder
	var l *LinkRecorder
	allocs := testing.AllocsPerRun(500, func() {
		f.Record(0, EvSegSent, 0, 1448, 0, 0)
		l.Enqueued(1500, 0)
	})
	if allocs > 0 {
		t.Errorf("nil recorder allocates %.1f per run, want 0", allocs)
	}
}
