// Package obs is the flight recorder: a structured per-flow event log
// and a counters/gauges registry for the whole stack, the userspace
// equivalent of the ftrace-style kernel instrumentation the paper's
// evaluation leans on to explain *why* SUSS wins or loses on a path.
//
// Design constraints, in order:
//
//   - Zero-allocation recording. Events are plain-scalar records
//     written into a fixed-size ring buffer that overwrites its oldest
//     entry when full; counters are struct-field increments. Recording
//     never allocates, so attaching a recorder does not disturb the
//     pooled hot path (see DESIGN.md "Memory reuse").
//   - No-op when absent. Every emission point in internal/tcp,
//     internal/netsim, internal/core, internal/cubic and internal/bbr
//     is guarded by a nil recorder check; an unobserved simulation pays
//     one predictable branch per site and nothing else.
//   - Observers copy, never retain. Events carry scalars copied out of
//     pool-owned packets at emission time; a recorder never holds a
//     *netsim.Packet. This package deliberately imports nothing from
//     the simulator, so any layer can emit into it.
//
// A Registry bundles the shared event ring with per-flow and per-link
// counter blocks for one simulation; exporters (JSONL, CSV, a
// human-readable timeline) live in export.go.
package obs

import "time"

// EventKind enumerates what the flight recorder can witness.
type EventKind uint8

const (
	// EvNone is the zero value; it never appears in a recorded ring.
	EvNone EventKind = iota
	// EvSegSent is a fresh data segment transmission.
	EvSegSent
	// EvSegRetrans is a retransmission. Aux carries the RetransCause.
	EvSegRetrans
	// EvAckRecvd is a processed cumulative ACK. Seq is the cumulative
	// ack point, Len the newly acknowledged bytes, Aux the bytes left
	// in flight.
	EvAckRecvd
	// EvSackRecvd is an ACK carrying selective acknowledgments. Aux is
	// the number of SACK ranges on the wire.
	EvSackRecvd
	// EvRTOFired is a retransmission-timeout expiry. Aux is the running
	// RTO count.
	EvRTOFired
	// EvTLPFired is a tail-loss-probe transmission. Seq is the probed
	// segment.
	EvTLPFired
	// EvLossDetected is a segment newly marked lost by fast detection
	// (RFC 6675/RACK), not by RTO. Seq/Len identify the segment.
	EvLossDetected
	// EvCwndChanged reports a congestion-window change observed after a
	// controller callback. Aux is the new cwnd in bytes, Aux2 the old.
	EvCwndChanged
	// EvSussRoundStart is a SUSS slow-start round boundary. Aux is the
	// round number, Aux2 the cwnd in bytes at the boundary.
	EvSussRoundStart
	// EvSussBoost is an accelerated SUSS round (G > 2) or a BBR
	// SUSS-boosted STARTUP round. Aux is the growth factor G (or the
	// BBR gain multiplier ×100), Aux2 the red bytes to be paced.
	EvSussBoost
	// EvSussExit is SUSS disabling itself (slow start over or aborted).
	// Aux is 1 when pacing was aborted mid-round.
	EvSussExit
	// EvHyStartExit is a slow-start exit decided by HyStart, modified
	// HyStart or HyStart++. Aux carries the HyStartReason.
	EvHyStartExit
	// EvQdiscDrop is a packet lost at a link. Aux carries the
	// DropCause, Aux2 the wire size; Seq is the packet's sequence.
	EvQdiscDrop
	// EvLinkDup is a duplicate packet injected by an impairment stage.
	// Seq is the duplicated packet's sequence, Aux2 its wire size.
	EvLinkDup
	// EvRTOUndone is an Eifel/F-RTO undo: the last timeout was proven
	// spurious and its congestion response reverted. Seq is sndUna, Aux
	// the running spurious-RTO count, Aux2 the restored cwnd in bytes.
	EvRTOUndone
	// EvSackReneged is the receiver discarding out-of-order data it had
	// SACKed (RFC 2018 permits this). Seq is the cumulative ack point,
	// Len the bytes thrown away.
	EvSackReneged
	// EvRenegDetected is the sender noticing the reneging (cumulative
	// ACK stalled on a SACKed segment) and discarding its scoreboard's
	// SACK state. Seq is sndUna, Aux the highest sequence that had been
	// SACKed.
	EvRenegDetected
	// EvFlowAbort is the sender giving the flow up with an error (the
	// consecutive-RTO cap). Seq is sndUna, Aux the total RTO count.
	EvFlowAbort

	numEventKinds
)

var eventKindNames = [numEventKinds]string{
	EvNone:           "None",
	EvSegSent:        "SegSent",
	EvSegRetrans:     "SegRetrans",
	EvAckRecvd:       "AckRecvd",
	EvSackRecvd:      "SackRecvd",
	EvRTOFired:       "RTOFired",
	EvTLPFired:       "TLPFired",
	EvLossDetected:   "LossDetected",
	EvCwndChanged:    "CwndChanged",
	EvSussRoundStart: "SussRoundStart",
	EvSussBoost:      "SussBoost",
	EvSussExit:       "SussExit",
	EvHyStartExit:    "HyStartExit",
	EvQdiscDrop:      "QdiscDrop",
	EvLinkDup:        "LinkDup",
	EvRTOUndone:      "RTOUndone",
	EvSackReneged:    "SackReneged",
	EvRenegDetected:  "RenegDetected",
	EvFlowAbort:      "FlowAbort",
}

// String implements fmt.Stringer.
func (k EventKind) String() string {
	if int(k) < len(eventKindNames) {
		return eventKindNames[k]
	}
	return "Unknown"
}

// RetransCause partitions retransmissions by what queued the segment
// for resend (EvSegRetrans Aux values).
type RetransCause int64

const (
	// CauseFast is RFC 6675/RACK fast loss detection.
	CauseFast RetransCause = iota
	// CauseRTO is the go-back-N rebuild after a retransmission timeout.
	CauseRTO
	// CauseTLP is a tail loss probe.
	CauseTLP
	// CauseReneg is the RFC 2018 repair after SACK reneging: the
	// receiver discarded data it had selectively acknowledged, so the
	// sender must retransmit it despite the earlier SACK.
	CauseReneg
)

// String implements fmt.Stringer.
func (c RetransCause) String() string {
	switch c {
	case CauseFast:
		return "fast"
	case CauseRTO:
		return "rto"
	case CauseTLP:
		return "tlp"
	case CauseReneg:
		return "reneg"
	default:
		return "unknown"
	}
}

// DropCause distinguishes why a link shed a packet (EvQdiscDrop Aux
// values).
type DropCause int64

const (
	// DropTail is a queue-full refusal on enqueue.
	DropTail DropCause = iota
	// DropAQM is an active-queue-management (CoDel) drop at dequeue.
	DropAQM
	// DropErasure is random wire loss, not congestion.
	DropErasure
	// DropCorrupt is a packet damaged in transit and discarded by the
	// next hop's checksum — modeled as an erasure with its own cause so
	// ledgers can tell corruption from plain wire loss.
	DropCorrupt
	// DropOutage is a packet lost to a link being down (handover,
	// flap, scheduled maintenance window).
	DropOutage
)

// String implements fmt.Stringer.
func (c DropCause) String() string {
	switch c {
	case DropTail:
		return "tail"
	case DropAQM:
		return "aqm"
	case DropErasure:
		return "erasure"
	case DropCorrupt:
		return "corrupt"
	case DropOutage:
		return "outage"
	default:
		return "unknown"
	}
}

// HyStartReason says which detector ended slow start (EvHyStartExit
// Aux values).
type HyStartReason int64

const (
	// ExitTrain is the ACK-train length condition.
	ExitTrain HyStartReason = iota
	// ExitDelay is the RTT-increase condition.
	ExitDelay
	// ExitCap is SUSS's postponed growth-cap stop (Fig. 8 cap branch).
	ExitCap
	// ExitCSS is HyStart++ confirming its conservative phase.
	ExitCSS
)

// String implements fmt.Stringer.
func (r HyStartReason) String() string {
	switch r {
	case ExitTrain:
		return "ack-train"
	case ExitDelay:
		return "delay"
	case ExitCap:
		return "growth-cap"
	case ExitCSS:
		return "css"
	default:
		return "unknown"
	}
}

// Event is one flight-recorder record: plain scalars only, copied at
// emission time, so recording never touches pool-owned memory. The
// meaning of Seq/Len/Aux/Aux2 is per-kind (see the EventKind docs).
type Event struct {
	T    time.Duration
	Kind EventKind
	Flow int32 // 0 for link-level events with no flow attribution
	Seq  int64
	Len  int64
	Aux  int64
	Aux2 int64
}

// Ring is a fixed-capacity event log that overwrites its oldest entry
// when full — the flight-recorder policy: recent history is always
// complete, ancient history is sacrificed, and recording cost stays
// O(1) with zero allocations after construction.
type Ring struct {
	buf       []Event
	head      int // index of the oldest retained event
	n         int
	overwrote uint64
}

// DefaultRingCap is the event capacity used when a caller passes a
// non-positive size: 1 MiB of 64-byte records, plenty for several
// seconds of per-ACK history on a fast flow.
const DefaultRingCap = 16384

// NewRing allocates a ring with the given capacity (<= 0 picks
// DefaultRingCap).
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = DefaultRingCap
	}
	return &Ring{buf: make([]Event, capacity)}
}

// Record appends an event, overwriting the oldest if the ring is full.
// It is safe on a nil ring (no-op), so recorders can share an optional
// ring without re-checking.
func (r *Ring) Record(ev Event) {
	if r == nil {
		return
	}
	if r.n < len(r.buf) {
		r.buf[(r.head+r.n)%len(r.buf)] = ev
		r.n++
		return
	}
	r.buf[r.head] = ev
	r.head = (r.head + 1) % len(r.buf)
	r.overwrote++
}

// Len returns the number of retained events.
func (r *Ring) Len() int {
	if r == nil {
		return 0
	}
	return r.n
}

// Overwritten returns how many events were evicted to make room.
func (r *Ring) Overwritten() uint64 {
	if r == nil {
		return 0
	}
	return r.overwrote
}

// Do calls fn for every retained event, oldest first. fn returning
// false stops the walk.
func (r *Ring) Do(fn func(Event) bool) {
	if r == nil {
		return
	}
	for i := 0; i < r.n; i++ {
		if !fn(r.buf[(r.head+i)%len(r.buf)]) {
			return
		}
	}
}

// Snapshot appends the retained events, oldest first, to dst and
// returns it (pass nil for a fresh slice).
func (r *Ring) Snapshot(dst []Event) []Event {
	r.Do(func(ev Event) bool {
		dst = append(dst, ev)
		return true
	})
	return dst
}

// FlowCounters aggregates one flow's transport activity. All fields
// are plain int64s incremented inline — reading them mid-simulation is
// always safe (the simulator is single-threaded).
type FlowCounters struct {
	// Sender side.
	SegsSent     int64 // fresh transmissions
	SegsRetrans  int64 // retransmissions, any cause
	RetransFast  int64 // queued by fast loss detection
	RetransRTO   int64 // queued by the post-RTO go-back-N rebuild
	RetransTLP   int64 // tail loss probes
	RetransReneg int64 // queued by SACK-reneging repair
	AcksSeen     int64 // ACKs processed
	SackRanges   int64 // SACK ranges processed off the wire
	RTOFires     int64
	TLPFires     int64
	LossDetected int64 // segments newly marked lost by fast detection
	// SpuriousRetrans counts loss markings contradicted by a later ACK
	// of the original transmission: the segment was cumulatively or
	// selectively acknowledged while still waiting in (or after leaving)
	// the retransmit queue, so the retransmission was (or would have
	// been) unnecessary.
	SpuriousRetrans int64
	// SpuriousRTOUndos counts retransmission timeouts later proven
	// spurious by Eifel/F-RTO detection and undone.
	SpuriousRTOUndos int64
	// SackRenegings counts sender-side reneging detections (scoreboard
	// SACK state discarded).
	SackRenegings int64
	// FlowAborts counts terminal give-ups (consecutive-RTO cap).
	FlowAborts  int64
	CwndChanges int64

	// Receiver side.
	RcvSegs     int64 // data segments accepted
	RcvDupSegs  int64 // arrivals contributing no new bytes (dup payload)
	RcvDupBytes int64 // payload bytes already held when they re-arrived
	// RcvRenegeEvents / RcvRenegedBytes are the receiver's ground truth
	// of its own misbehaviour: out-of-order data discarded after being
	// SACKed (chaos receiver mode only).
	RcvRenegeEvents int64
	RcvRenegedBytes int64

	// Controller side.
	SussRounds   int64
	SussBoosts   int64
	SussExits    int64
	HyStartExits int64

	// Wire layer: frames and encoded bytes through the endpoint's
	// wire.Conn. Byte counts are real framed lengths (IP total length),
	// which differ from the modeled Size accounting above — the pair
	// exposes framing overhead per flow on any backend.
	WireFramesOut int64
	WireBytesOut  int64
	WireFramesIn  int64
	WireBytesIn   int64
}

// LinkCounters aggregates one link's queue activity.
type LinkCounters struct {
	EnqueuedPkts  int64
	EnqueuedBytes int64
	TailDropPkts  int64
	TailDropBytes int64
	AQMDropPkts   int64
	AQMDropBytes  int64
	ErasedPkts    int64
	ErasedBytes   int64
	CorruptPkts   int64
	CorruptBytes  int64
	OutagePkts    int64
	OutageBytes   int64
	// DupPkts / DupBytes count duplicate packets injected by an
	// impairment stage; DupDataPkts the data-kind subset (the only ones
	// a receiver can observe as duplicate payload).
	DupPkts     int64
	DupBytes    int64
	DupDataPkts int64
	// DataDropPkts counts congestion drops (tail + AQM) of data-kind
	// packets only — the quantity a sender's loss detection can ever
	// observe, and the left side of the loss ledger.
	DataDropPkts int64
	// DepthHighWaterBytes is the deepest queue occupancy seen.
	DepthHighWaterBytes int64
}

// FlowRecorder is the per-flow handle emission points hold: a counter
// block plus the registry's shared ring. All methods are safe on a nil
// receiver, so call sites may skip their guard when arguments are free
// to compute.
type FlowRecorder struct {
	Flow int32
	C    FlowCounters
	ring *Ring
}

// Record writes one event stamped with the recorder's flow id.
func (f *FlowRecorder) Record(t time.Duration, kind EventKind, seq, length, aux, aux2 int64) {
	if f == nil {
		return
	}
	f.ring.Record(Event{T: t, Kind: kind, Flow: f.Flow, Seq: seq, Len: length, Aux: aux, Aux2: aux2})
}

// LinkRecorder is the per-link handle: queue counters plus the shared
// ring for drop events.
type LinkRecorder struct {
	Name string
	C    LinkCounters
	ring *Ring
}

// Enqueued notes an accepted packet and maintains the depth high-water
// gauge.
func (l *LinkRecorder) Enqueued(size, depth int) {
	if l == nil {
		return
	}
	l.C.EnqueuedPkts++
	l.C.EnqueuedBytes += int64(size)
	if int64(depth) > l.C.DepthHighWaterBytes {
		l.C.DepthHighWaterBytes = int64(depth)
	}
}

// Dropped notes a shed packet and records an EvQdiscDrop event. data
// reports whether the packet carried payload (vs an ACK).
func (l *LinkRecorder) Dropped(t time.Duration, cause DropCause, flow int32, seq int64, size int, data bool) {
	if l == nil {
		return
	}
	switch cause {
	case DropTail:
		l.C.TailDropPkts++
		l.C.TailDropBytes += int64(size)
	case DropAQM:
		l.C.AQMDropPkts++
		l.C.AQMDropBytes += int64(size)
	case DropErasure:
		l.C.ErasedPkts++
		l.C.ErasedBytes += int64(size)
	case DropCorrupt:
		l.C.CorruptPkts++
		l.C.CorruptBytes += int64(size)
	case DropOutage:
		l.C.OutagePkts++
		l.C.OutageBytes += int64(size)
	}
	// Only congestion drops are visible to a sender's loss-vs-queue
	// accounting; erasure-family causes (wire loss, corruption, outage)
	// are path loss, tallied on the ledger's PathErasures side.
	if data && (cause == DropTail || cause == DropAQM) {
		l.C.DataDropPkts++
	}
	l.ring.Record(Event{T: t, Kind: EvQdiscDrop, Flow: flow, Seq: seq, Aux: int64(cause), Aux2: int64(size)})
}

// Duplicated notes a duplicate packet injected by an impairment stage
// and records an EvLinkDup event.
func (l *LinkRecorder) Duplicated(t time.Duration, flow int32, seq int64, size int, data bool) {
	if l == nil {
		return
	}
	l.C.DupPkts++
	l.C.DupBytes += int64(size)
	if data {
		l.C.DupDataPkts++
	}
	l.ring.Record(Event{T: t, Kind: EvLinkDup, Flow: flow, Seq: seq, Aux2: int64(size)})
}

// Registry bundles one simulation's flight recorder: the shared event
// ring and the per-flow / per-link counter blocks. It is not safe for
// concurrent use — one Registry per Simulator, like every other
// simulation object.
type Registry struct {
	ring  *Ring
	flows map[int32]*FlowRecorder
	links map[string]*LinkRecorder
	// ordered attach lists so exports are deterministic.
	flowOrder []int32
	linkOrder []string
}

// NewRegistry creates a registry whose event ring holds ringCap
// records (<= 0 picks DefaultRingCap).
func NewRegistry(ringCap int) *Registry {
	return &Registry{
		ring:  NewRing(ringCap),
		flows: make(map[int32]*FlowRecorder),
		links: make(map[string]*LinkRecorder),
	}
}

// Events returns the shared ring.
func (g *Registry) Events() *Ring { return g.ring }

// Flow returns (creating on first use) the recorder for a flow id.
// Attachment-time only: hot paths cache the returned pointer.
func (g *Registry) Flow(id int32) *FlowRecorder {
	if f, ok := g.flows[id]; ok {
		return f
	}
	f := &FlowRecorder{Flow: id, ring: g.ring}
	g.flows[id] = f
	g.flowOrder = append(g.flowOrder, id)
	return f
}

// Link returns (creating on first use) the recorder for a link name.
func (g *Registry) Link(name string) *LinkRecorder {
	if l, ok := g.links[name]; ok {
		return l
	}
	l := &LinkRecorder{Name: name, ring: g.ring}
	g.links[name] = l
	g.linkOrder = append(g.linkOrder, name)
	return l
}

// Flows returns the flow recorders in attach order.
func (g *Registry) Flows() []*FlowRecorder {
	out := make([]*FlowRecorder, len(g.flowOrder))
	for i, id := range g.flowOrder {
		out[i] = g.flows[id]
	}
	return out
}

// Links returns the link recorders in attach order.
func (g *Registry) Links() []*LinkRecorder {
	out := make([]*LinkRecorder, len(g.linkOrder))
	for i, name := range g.linkOrder {
		out[i] = g.links[name]
	}
	return out
}

// LossLedger cross-checks the loss bookkeeping of a flow against the
// drops its path's links actually performed — the fig11-style loss
// accounting the evaluation uses to show a verdict is internally
// consistent, not an artifact of one miscounted layer.
type LossLedger struct {
	SegsSent        int64
	SegsRetrans     int64
	RetransFast     int64
	RetransRTO      int64
	RetransTLP      int64
	RetransReneg    int64
	LossDetected    int64
	SpuriousRetrans int64
	RTOFires        int64
	TLPFires        int64
	// SpuriousRTOUndos / SackRenegings / FlowAborts fold the hardening
	// paths into the ledger so sweeps can report them next to the loss
	// columns.
	SpuriousRTOUndos int64
	SackRenegings    int64
	FlowAborts       int64
	// RcvDupSegs is the receiver's ground truth for duplicate payload:
	// arrivals that contributed no new bytes. Bounded by retransmissions
	// plus path-injected duplicates (identity 3).
	RcvDupSegs int64
	// PathDataDrops sums congestion drops of data packets over the
	// links the ledger was built from (the flow's forward path).
	PathDataDrops int64
	// PathErasures sums random wire losses over the same links.
	PathErasures int64
	// PathCorrupt / PathOutage split out the impairment-stage drop
	// causes (modelled as erasures with their own cause for accounting).
	PathCorrupt int64
	PathOutage  int64
	// PathDuplicates counts data packets the path itself duplicated.
	PathDuplicates int64
}

// MakeLedger assembles a ledger from one flow's counters and the
// links of its forward path.
func MakeLedger(f *FlowCounters, links ...*LinkCounters) LossLedger {
	l := LossLedger{
		SegsSent:         f.SegsSent,
		SegsRetrans:      f.SegsRetrans,
		RetransFast:      f.RetransFast,
		RetransRTO:       f.RetransRTO,
		RetransTLP:       f.RetransTLP,
		RetransReneg:     f.RetransReneg,
		LossDetected:     f.LossDetected,
		SpuriousRetrans:  f.SpuriousRetrans,
		RTOFires:         f.RTOFires,
		TLPFires:         f.TLPFires,
		SpuriousRTOUndos: f.SpuriousRTOUndos,
		SackRenegings:    f.SackRenegings,
		FlowAborts:       f.FlowAborts,
		RcvDupSegs:       f.RcvDupSegs,
	}
	for _, lc := range links {
		l.PathDataDrops += lc.DataDropPkts
		l.PathErasures += lc.ErasedPkts
		l.PathCorrupt += lc.CorruptPkts
		l.PathOutage += lc.OutagePkts
		l.PathDuplicates += lc.DupDataPkts
	}
	return l
}

// Add accumulates another ledger (sweep aggregation).
func (l *LossLedger) Add(o LossLedger) {
	l.SegsSent += o.SegsSent
	l.SegsRetrans += o.SegsRetrans
	l.RetransFast += o.RetransFast
	l.RetransRTO += o.RetransRTO
	l.RetransTLP += o.RetransTLP
	l.RetransReneg += o.RetransReneg
	l.LossDetected += o.LossDetected
	l.SpuriousRetrans += o.SpuriousRetrans
	l.RTOFires += o.RTOFires
	l.TLPFires += o.TLPFires
	l.SpuriousRTOUndos += o.SpuriousRTOUndos
	l.SackRenegings += o.SackRenegings
	l.FlowAborts += o.FlowAborts
	l.RcvDupSegs += o.RcvDupSegs
	l.PathDataDrops += o.PathDataDrops
	l.PathErasures += o.PathErasures
	l.PathCorrupt += o.PathCorrupt
	l.PathOutage += o.PathOutage
	l.PathDuplicates += o.PathDuplicates
}

// Check verifies the ledger identities that must hold for any
// completed flow and returns human-readable violations (empty means
// consistent):
//
//  1. Every retransmission has exactly one cause:
//     SegsRetrans == RetransFast + RetransRTO + RetransTLP + RetransReneg.
//  2. Fast retransmissions never exceed fast loss detections (a lost
//     mark may be cancelled by a spurious ACK, never invented):
//     RetransFast <= LossDetected.
//  3. Duplicate payload at the receiver can only come from sender
//     retransmissions or path-level duplication — fresh transmissions
//     cover disjoint byte ranges, so they can never re-deliver bytes
//     the receiver already holds:
//     RcvDupSegs <= SegsRetrans + PathDuplicates.
//
// The stronger drop identity — PathDataDrops == LossDetected when the
// path has no random loss and the flow saw no RTO or TLP — depends on
// the scenario, so callers assert it themselves where it applies (see
// the integration test).
func (l LossLedger) Check() []string {
	var bad []string
	if l.SegsRetrans != l.RetransFast+l.RetransRTO+l.RetransTLP+l.RetransReneg {
		bad = append(bad, "retransmissions not partitioned by cause: "+
			itoa(l.SegsRetrans)+" != "+itoa(l.RetransFast)+"+"+itoa(l.RetransRTO)+"+"+itoa(l.RetransTLP)+"+"+itoa(l.RetransReneg))
	}
	if l.RetransFast > l.LossDetected {
		bad = append(bad, "fast retransmits ("+itoa(l.RetransFast)+") exceed fast loss detections ("+itoa(l.LossDetected)+")")
	}
	if l.RcvDupSegs > l.SegsRetrans+l.PathDuplicates {
		bad = append(bad, "receiver dup segments ("+itoa(l.RcvDupSegs)+") exceed retransmissions ("+
			itoa(l.SegsRetrans)+") + path duplicates ("+itoa(l.PathDuplicates)+")")
	}
	return bad
}

// itoa avoids strconv in the one diagnostic path (keeps import set
// tiny; never on a hot path).
func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		b[i] = '-'
	}
	return string(b[i:])
}
